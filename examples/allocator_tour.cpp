/**
 * @file
 * A tour of the three object metadata schemes (paper §3.3) through the
 * runtime's eyes: run the treeadd workload under both allocator
 * configurations and show which scheme served each object class, what
 * the promote engine did, and what it cost.
 */

#include <cstdio>

#include "support/logging.hh"
#include "workloads/harness.hh"

using namespace infat;
using namespace infat::workloads;

namespace {

void
show(const char *workload)
{
    std::printf("workload: %s\n", workload);
    RunResult base = runWorkload(workload, Config::Baseline);
    for (Config config : {Config::Subheap, Config::Wrapped}) {
        RunResult r = runWorkload(workload, config);
        std::printf("  %-8s instrs %8.2fx  cycles %8.2fx\n",
                    toString(config),
                    double(r.instructions) / double(base.instructions),
                    double(r.cycles) / double(base.cycles));
        std::printf("           objects: heap %llu (layout %llu), "
                    "local %llu, global %llu\n",
                    (unsigned long long)r.heapObjects,
                    (unsigned long long)r.heapObjectsWithLayout,
                    (unsigned long long)r.localObjects,
                    (unsigned long long)r.globalObjects);
        std::printf("           promotes %llu (valid %llu, null %llu, "
                    "legacy %llu)\n",
                    (unsigned long long)r.promotes,
                    (unsigned long long)r.validPromotes,
                    (unsigned long long)r.bypassNull,
                    (unsigned long long)r.bypassLegacy);
        std::printf("           narrowing: attempts %llu ok %llu "
                    "fail %llu\n",
                    (unsigned long long)r.narrowAttempts,
                    (unsigned long long)r.narrowSuccess,
                    (unsigned long long)r.narrowFail);
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    setQuiet(true);
    std::printf("Allocator and metadata-scheme tour\n");
    std::printf("==================================\n\n");
    // treeadd: same-size nodes -> the subheap allocator shines.
    show("treeadd");
    // health: embedded lists -> successful subobject narrowing.
    show("health");
    // coremark: one untyped arena -> narrowing fails, coarsens.
    show("coremark");
    return 0;
}
