/**
 * @file
 * ifpsim — command-line driver for the simulator.
 *
 * Run any evaluation workload under any configuration and print the
 * full statistics record:
 *
 *   ifpsim <workload> [baseline|subheap|wrapped|mixed]
 *          [--no-promote] [--no-mac] [--no-narrow]
 *          [--explicit-checks] [--superscalar] [--list]
 *          [--engine=<name>]
 *          [--stats-json=<path>] [--trace=<path>]
 *          [--trace-categories=<csv>]
 *          [--profile=<path>] [--flame=<path>]
 *          [--profile-trace=<path>] [--sample-interval=<cycles>]
 *          [--forensics]
 *
 * --stats-json writes the machine's full stat registry as JSON;
 * --trace writes a Chrome trace-event file loadable in Perfetto
 * (docs/OBSERVABILITY.md). --profile attaches the guest profiler and
 * writes its "profile" JSON standalone (it also joins --stats-json);
 * --flame writes collapsed stacks for flamegraph.pl / speedscope;
 * --profile-trace writes the sampled counter tracks as a Chrome
 * trace; --forensics prints a full trap report if the run traps.
 * --engine pins the host interpreter engine (general, superblock-base,
 * superblock-nofuse, superblock-noelim, superblock, threaded, jit) —
 * host-side only, simulated results are identical under every engine.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "support/logging.hh"
#include "support/profile.hh"
#include "support/trace.hh"
#include "vm/forensics.hh"
#include "vm/trap.hh"
#include "workloads/harness.hh"

using namespace infat;
using namespace infat::workloads;

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage: ifpsim <workload> "
                 "[baseline|subheap|wrapped|mixed]\n"
                 "              [--no-promote] [--no-mac] "
                 "[--no-narrow]\n"
                 "              [--explicit-checks] [--superscalar]\n"
                 "              [--engine=<name>]\n"
                 "              [--stats-json=<path>] "
                 "[--trace=<path>]\n"
                 "              [--trace-categories=<csv>]\n"
                 "              [--profile=<path>] [--flame=<path>]\n"
                 "              [--profile-trace=<path>] "
                 "[--sample-interval=<cycles>]\n"
                 "              [--forensics]\n"
                 "       ifpsim --list\n");
    return 2;
}

void
printResult(const RunResult &r, const char *config_name)
{
    std::printf("workload:        %s (%s)\n", r.workload.c_str(),
                config_name);
    std::printf("checksum:        %llu\n",
                (unsigned long long)r.checksum);
    std::printf("instructions:    %llu\n",
                (unsigned long long)r.instructions);
    std::printf("cycles:          %llu (CPI %.2f)\n",
                (unsigned long long)r.cycles,
                r.instructions
                    ? double(r.cycles) / double(r.instructions)
                    : 0.0);
    std::printf("promotes:        %llu (valid %llu, null %llu, "
                "legacy %llu)\n",
                (unsigned long long)r.promotes,
                (unsigned long long)r.validPromotes,
                (unsigned long long)r.bypassNull,
                (unsigned long long)r.bypassLegacy);
    std::printf("narrowing:       %llu attempts, %llu ok, %llu "
                "coarsened\n",
                (unsigned long long)r.narrowAttempts,
                (unsigned long long)r.narrowSuccess,
                (unsigned long long)r.narrowFail);
    std::printf("objects:         heap %llu (%llu w/ layout), local "
                "%llu, global %llu\n",
                (unsigned long long)r.heapObjects,
                (unsigned long long)r.heapObjectsWithLayout,
                (unsigned long long)r.localObjects,
                (unsigned long long)r.globalObjects);
    std::printf("ifp instr mix:   promote %llu, arith %llu, "
                "bnd-ld/st %llu\n",
                (unsigned long long)r.promoteInstrs,
                (unsigned long long)r.ifpArith,
                (unsigned long long)r.bndLdSt);
    std::printf("l1d:             %llu hits, %llu misses (%.2f%%)\n",
                (unsigned long long)r.l1dHits,
                (unsigned long long)r.l1dMisses,
                r.l1dHits + r.l1dMisses
                    ? 100.0 * double(r.l1dMisses) /
                          double(r.l1dHits + r.l1dMisses)
                    : 0.0);
    std::printf("memory:          resident %llu KiB, heap peak %llu "
                "KiB\n",
                (unsigned long long)(r.residentBytes / 1024),
                (unsigned long long)(r.heapPeak / 1024));
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc >= 2 && std::strcmp(argv[1], "--list") == 0) {
        for (const Workload &w : all())
            std::printf("%-14s [%s] %s\n", w.name, w.suite, w.notes);
        return 0;
    }
    if (argc < 2)
        return usage();

    const Workload *workload = byName(argv[1]);
    if (!workload) {
        std::fprintf(stderr, "unknown workload '%s' (try --list)\n",
                     argv[1]);
        return 2;
    }

    std::string config_name = argc >= 3 && argv[2][0] != '-'
                                  ? argv[2]
                                  : "subheap";
    CustomRun custom;
    bool baseline = false;
    if (config_name == "baseline") {
        baseline = true;
    } else if (config_name == "subheap") {
        custom.allocator = AllocatorKind::Subheap;
    } else if (config_name == "wrapped") {
        custom.allocator = AllocatorKind::Wrapped;
    } else if (config_name == "mixed") {
        custom.allocator = AllocatorKind::Mixed;
    } else {
        return usage();
    }

    Observability obs;
    std::string trace_path;
    std::string profile_path;
    std::string flame_path;
    std::string profile_trace_path;
    uint64_t sample_interval = 0;
    for (int i = 2; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg[0] != '-')
            continue;
        if (arg == "--no-promote")
            custom.ifp.noPromote = true;
        else if (arg == "--no-mac")
            custom.ifp.macEnabled = false;
        else if (arg == "--no-narrow")
            custom.ifp.narrowingEnabled = false;
        else if (arg == "--explicit-checks") {
            custom.explicitChecks = true;
            custom.implicitChecks = false;
        } else if (arg == "--superscalar")
            custom.superscalar = true;
        else if (arg.rfind("--engine=", 0) == 0) {
            std::string engine = arg.substr(9);
            EngineTuning tuning;
            if (!engineTuningForName(engine, tuning)) {
                std::fprintf(stderr,
                             "unknown --engine=%s (valid engines: "
                             "%s)\n",
                             engine.c_str(),
                             engineNamesJoined().c_str());
                return 2;
            }
            setEngineTuning(tuning);
        } else if (arg.rfind("--stats-json=", 0) == 0)
            obs.statsJsonPath = arg.substr(13);
        else if (arg.rfind("--trace=", 0) == 0)
            trace_path = arg.substr(8);
        else if (arg.rfind("--trace-categories=", 0) == 0)
            obs.traceCategories = parseTraceCategories(arg.substr(19));
        else if (arg.rfind("--profile=", 0) == 0)
            profile_path = arg.substr(10);
        else if (arg.rfind("--flame=", 0) == 0)
            flame_path = arg.substr(8);
        else if (arg.rfind("--profile-trace=", 0) == 0)
            profile_trace_path = arg.substr(16);
        else if (arg.rfind("--sample-interval=", 0) == 0)
            sample_interval =
                std::strtoull(arg.c_str() + 18, nullptr, 0);
        else if (arg == "--forensics")
            obs.forensics = true;
        else
            return usage();
    }

    std::unique_ptr<ChromeTraceSink> trace_sink;
    if (!trace_path.empty()) {
        trace_sink = std::make_unique<ChromeTraceSink>(trace_path);
        obs.traceSink = trace_sink.get();
    }

    GuestProfiler profiler;
    bool want_profile = !profile_path.empty() || !flame_path.empty() ||
                        !profile_trace_path.empty();
    if (want_profile) {
        // Flamegraphs / counter tracks need stack samples; default to
        // one sample per 512 simulated cycles unless overridden.
        if (sample_interval == 0 &&
            (!flame_path.empty() || !profile_trace_path.empty()))
            sample_interval = 512;
        profiler.setSampleInterval(sample_interval);
        obs.profiler = &profiler;
    }

    setQuiet(true);
    RunResult result;
    try {
        if (baseline) {
            result = runWorkload(*workload, Config::Baseline, obs);
        } else {
            result = runWorkloadCustom(*workload, custom, obs);
        }
    } catch (const GuestTrap &trap) {
        std::fprintf(stderr, "%s\n", trap.what());
        if (trap.report())
            std::fprintf(stderr, "%s", trap.report()->text().c_str());
        return 1;
    }
    if (trace_sink) {
        trace_sink->close();
        std::fprintf(stderr, "trace written to %s\n",
                     trace_path.c_str());
    }
    if (!profile_path.empty()) {
        std::ofstream os(profile_path);
        os << profiler.sectionJson() << "\n";
        std::fprintf(stderr, "profile written to %s\n",
                     profile_path.c_str());
    }
    if (!flame_path.empty()) {
        profiler.writeCollapsedFile(flame_path);
        std::fprintf(stderr,
                     "collapsed stacks (%llu samples) written to %s\n",
                     (unsigned long long)profiler.samples(),
                     flame_path.c_str());
    }
    if (!profile_trace_path.empty()) {
        profiler.writeChromeTrace(profile_trace_path);
        std::fprintf(stderr, "profile counter trace written to %s\n",
                     profile_trace_path.c_str());
    }
    if (!obs.statsJsonPath.empty())
        std::fprintf(stderr, "stats written to %s\n",
                     obs.statsJsonPath.c_str());
    printResult(result, config_name.c_str());
    return 0;
}
