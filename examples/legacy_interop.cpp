/**
 * @file
 * Legacy-code interoperability (paper §3, §4.1.2).
 *
 * In-Fat Pointer keeps pointer size unchanged, so instrumented code
 * can exchange pointers with uninstrumented ("legacy") code freely:
 *
 *  - pointers returned by legacy libc carry no tag; promote bypasses
 *    them and they are never bounds-checked;
 *  - tagged pointers handed to legacy code still *point at the
 *    object* (the local-offset metadata sits past the end), so legacy
 *    code can dereference them;
 *  - when a call returns through an uninstrumented function, the
 *    hardware's implicit bounds clearing prevents stale bounds from
 *    being picked up (demonstrated via an uninstrumented identity
 *    function in the module).
 */

#include <cstdio>

#include "compiler/instrument.hh"
#include "ir/builder.hh"
#include "vm/libc_model.hh"
#include "vm/machine.hh"

using namespace infat;
using namespace infat::ir;

int
main()
{
    std::printf("Legacy interop demo\n");
    std::printf("===================\n");

    Module m;
    declareLibc(m);
    TypeContext &tc = m.types();

    // An uninstrumented identity function: models a legacy library
    // routine that passes a pointer through.
    {
        FunctionBuilder fb(m, "legacy_pass", {tc.ptr(tc.i64())},
                           tc.ptr(tc.i64()));
        fb.function()->setInstrumented(false);
        fb.ret(fb.arg(0));
    }

    FunctionBuilder fb(m, "main", {}, tc.i64());
    // 1. A legacy pointer from libc: usable, never checked.
    Value raw = fb.ptrCast(fb.call("malloc", {fb.iconst(64)}),
                           tc.i64());
    fb.store(fb.iconst(1), fb.elemPtr(raw, 2));

    // 2. An instrumented allocation handed through legacy code: the
    // tag survives (it travels in the pointer value), but the bounds
    // register is cleared at the boundary; a later promote recovers
    // full checking from the in-memory metadata.
    Value prot = fb.mallocTyped(tc.i64(), fb.iconst(8));
    Value back = fb.call("legacy_pass", {prot});
    fb.store(fb.iconst(2), fb.elemPtr(back, 7)); // unchecked, in-bounds

    // 3. Re-promote by a store/load round trip, then overflow: caught.
    GlobalId slot = m.addGlobal("slot", tc.ptr(tc.i64()));
    fb.store(back, fb.globalAddr(slot));
    Value repromoted = fb.load(fb.globalAddr(slot));
    fb.store(fb.iconst(3), fb.elemPtr(repromoted, 8)); // out of bounds!
    fb.ret(fb.iconst(0));

    InstrumentResult inst = instrumentModule(m);
    VmConfig config;
    config.instrumented = true;
    Machine machine(m, &inst.layouts, config);
    installLibc(machine);
    try {
        machine.run();
        std::printf("ERROR: overflow was not detected\n");
        return 1;
    } catch (const GuestTrap &trap) {
        std::printf("legacy pointer write:            unchecked, ok\n");
        std::printf("tagged ptr through legacy code:  usable, ok\n");
        std::printf("overflow after re-promotion:     %s\n",
                    trap.what());
        std::printf("\nAll three interop behaviours as designed.\n");
    }
    return 0;
}
