/**
 * @file
 * The paper's motivating example (Listing 1): subobject-granularity
 * protection.
 *
 *     struct S {
 *         char vulnerable[12];  // attacker can overflow
 *         char sensitive[12];
 *     };
 *
 * Writing vulnerable[12] stays *inside* struct S, so object-bound
 * defenses (and of course the baseline) cannot see it. In-Fat Pointer
 * narrows the derived pointer's bounds to the subobject using the
 * per-type layout table, and catches the overflow. This example also
 * prints the layout table generated for S (paper Figure 9).
 */

#include <cstdio>

#include "compiler/instrument.hh"
#include "compiler/layout_gen.hh"
#include "ir/builder.hh"
#include "vm/libc_model.hh"
#include "vm/machine.hh"

using namespace infat;
using namespace infat::ir;

namespace {

void
buildListing1(Module &m, int64_t index, bool reload_via_memory)
{
    declareLibc(m);
    TypeContext &tc = m.types();
    StructType *s = tc.createStruct(
        "S", {tc.array(tc.i8(), 12), tc.array(tc.i8(), 12)});
    GlobalId slot = m.addGlobal("vuln_ptr", tc.ptr(tc.i8()));

    FunctionBuilder fb(m, "main", {}, tc.i64());
    Value obj = fb.mallocTyped(s);
    fb.store(fb.iconst(0x5e), fb.elemPtr(fb.fieldPtr(obj, 1), 0));

    Value vulnerable = fb.ptrCast(fb.fieldPtr(obj, 0), tc.i8());
    if (reload_via_memory) {
        // Store the subobject pointer and reload it: the bounds must
        // be *recomputed* by promote through the layout table.
        fb.store(vulnerable, fb.globalAddr(slot));
        vulnerable = fb.load(fb.globalAddr(slot));
    }
    // The overflowing write: vulnerable[index].
    fb.store(fb.iconst(0x41),
             fb.elemPtr(vulnerable, fb.iconst(index)));
    Value sensitive = fb.load(fb.elemPtr(fb.fieldPtr(obj, 1), 0));
    fb.ret(sensitive);
}

void
run(const char *label, int64_t index, bool instrument, bool reload)
{
    Module m;
    buildListing1(m, index, reload);
    InstrumentResult inst;
    if (instrument)
        inst = instrumentModule(m);
    VmConfig config;
    config.instrumented = instrument;
    Machine machine(m, instrument ? &inst.layouts : nullptr, config);
    installLibc(machine);
    std::printf("%-44s vulnerable[%2lld]: ", label, (long long)index);
    try {
        uint64_t sensitive = machine.run();
        std::printf("ran; sensitive byte = %#llx%s\n",
                    (unsigned long long)sensitive,
                    sensitive != 0x5e ? "  <-- CORRUPTED" : "");
    } catch (const GuestTrap &trap) {
        std::printf("TRAPPED (%s)\n", toString(trap.kind()));
    }
}

} // namespace

int
main()
{
    std::printf("Intra-object overflow (paper Listing 1)\n");
    std::printf("=======================================\n\n");

    // Show the layout table the compiler generates for struct S.
    {
        Module m;
        TypeContext &tc = m.types();
        StructType *s = tc.createStruct(
            "S", {tc.array(tc.i8(), 12), tc.array(tc.i8(), 12)});
        LayoutTable table = buildLayoutTable(s);
        std::printf("layout table for struct S:\n%s\n",
                    table.toString().c_str());
    }

    run("baseline", 11, false, false);
    run("baseline (overflow into sibling!)", 12, false, false);
    run("in-fat pointer, static narrowing", 11, true, false);
    run("in-fat pointer, static narrowing", 12, true, false);
    run("in-fat pointer, promote + layout walk", 11, true, true);
    run("in-fat pointer, promote + layout walk", 12, true, true);
    return 0;
}
