/**
 * @file
 * Quickstart: protect a program with In-Fat Pointer in five steps.
 *
 *  1. Build a program against the IR builder (here: a toy that writes
 *     through a heap array).
 *  2. Run it uninstrumented: the out-of-bounds write silently lands.
 *  3. Run the In-Fat Pointer compiler pass over the module.
 *  4. Execute on the machine model: the same write now traps.
 *  5. Inspect the promote statistics the hardware kept.
 */

#include <cstdio>

#include "compiler/instrument.hh"
#include "ir/builder.hh"
#include "vm/libc_model.hh"
#include "vm/machine.hh"

using namespace infat;
using namespace infat::ir;

namespace {

/** A tiny program: sum an 8-element array, then write buf[index]. */
void
buildProgram(Module &m, int64_t index)
{
    declareLibc(m);
    TypeContext &tc = m.types();
    FunctionBuilder fb(m, "main", {}, tc.i64());

    Value buf = fb.mallocTyped(tc.i64(), fb.iconst(8));
    for (int64_t i = 0; i < 8; ++i)
        fb.store(fb.iconst(i * i), fb.elemPtr(buf, i));

    Value sum = fb.var(tc.i64());
    fb.assign(sum, fb.iconst(0));
    for (int64_t i = 0; i < 8; ++i)
        fb.assign(sum, fb.add(sum, fb.load(fb.elemPtr(buf, i))));

    // The interesting access: buf[index].
    fb.store(fb.iconst(42), fb.elemPtr(buf, fb.iconst(index)));

    fb.freePtr(buf);
    fb.ret(sum);
}

void
run(const char *label, int64_t index, bool instrument)
{
    Module m;
    buildProgram(m, index);

    InstrumentResult inst;
    if (instrument)
        inst = instrumentModule(m);

    VmConfig config;
    config.instrumented = instrument;
    Machine machine(m, instrument ? &inst.layouts : nullptr, config);
    installLibc(machine);

    std::printf("%-34s buf[%lld]: ", label, (long long)index);
    try {
        uint64_t sum = machine.run();
        std::printf("completed, sum = %llu", (unsigned long long)sum);
    } catch (const GuestTrap &trap) {
        std::printf("TRAPPED (%s)", trap.what());
    }
    if (instrument) {
        std::printf("  [promotes: %llu]",
                    (unsigned long long)
                        machine.promoteEngine().stats().value(
                            "promotes"));
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    std::printf("In-Fat Pointer quickstart\n");
    std::printf("-------------------------\n");
    run("baseline, in bounds", 7, false);
    run("baseline, OUT of bounds", 8, false); // silently corrupts
    run("instrumented, in bounds", 7, true);
    run("instrumented, OUT of bounds", 8, true); // detected
    return 0;
}
