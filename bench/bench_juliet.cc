/**
 * @file
 * Section 5.1: functional evaluation on the generated Juliet-style
 * suite. Prints the detection matrix per flaw category and location,
 * for both allocators and the uninstrumented baseline.
 */

#include <cstdio>
#include <map>

#include "juliet/juliet.hh"
#include "support/logging.hh"
#include "support/table.hh"

#include "bench_util.hh"

using namespace infat;
using namespace infat::juliet;

namespace {

void
report(const char *label, const SuiteResult &result)
{
    std::printf("\n--- %s ---\n", label);
    std::printf("total cases: %zu (bad %zu / good %zu)\n", result.total,
                result.badDetected + result.badMissed,
                result.goodPassed + result.falsePositives);
    std::printf("bad detected: %zu   bad missed: %zu   "
                "false positives: %zu\n",
                result.badDetected, result.badMissed,
                result.falsePositives);

    // Per-category detection, as the paper's §5.1 categories.
    std::map<std::string, std::pair<size_t, size_t>> categories;
    for (const CaseOutcome &o : result.outcomes) {
        if (!o.testCase.bad)
            continue;
        std::string key = std::string(toString(o.testCase.flaw)) +
                          (o.testCase.intraObject() ? " (intra)" : "");
        categories[key].first += o.trapped;
        categories[key].second += 1;
    }
    TextTable table({"category", "detected", "total"});
    for (const auto &[key, counts] : categories) {
        table.addRow({key, TextTable::cell(uint64_t(counts.first)),
                      TextTable::cell(uint64_t(counts.second))});
    }
    std::printf("%s", table.render().c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    infat::bench::StatsExport stats_export("juliet", argc, argv);
    setQuiet(true);
    std::printf("====================================================\n");
    std::printf("Section 5.1: Functional Evaluation (Juliet-style)\n");
    std::printf("Reproduces: paper Sec. 5.1 (5,572 cases: all "
                "vulnerabilities detected, all good cases pass)\n");
    std::printf("====================================================\n");

    report("instrumented, wrapped allocator",
           runSuite(AllocatorKind::Wrapped));
    report("instrumented, subheap allocator",
           runSuite(AllocatorKind::Subheap));
    report("baseline (uninstrumented)",
           runSuite(AllocatorKind::Wrapped, /*instrumented=*/false));

    std::printf("\nNote: the baseline misses every intra-object case "
                "and nearly all object-granularity cases; the "
                "instrumented runs must detect 100%% with zero false "
                "positives.\n");
    return 0;
}
