/**
 * @file
 * Ablation microbenchmarks (google-benchmark) for the design choices
 * DESIGN.md calls out: the cost of promote under each metadata scheme,
 * the layout walker's cost versus nesting depth, MAC verification
 * cost, and the single-cycle tag operations. These measure the *model*
 * (host nanoseconds track simulated work), and each benchmark also
 * reports the simulated cycle count as a counter, which is the number
 * the timing model actually charges.
 */

#include <benchmark/benchmark.h>

#include "compiler/layout_gen.hh"
#include "ifp/metadata.hh"
#include "ifp/ops.hh"
#include "ifp/promote_engine.hh"
#include "ir/module.hh"
#include "support/bitops.hh"

namespace infat {
namespace {

struct Fixture
{
    GuestMemory mem;
    IfpControlRegs regs;
    PromoteEngine engine{mem, nullptr, regs};

    Fixture()
    {
        regs.macKey = {0xfeed, 0xbeef};
        regs.globalTableBase = layout::tableBase;
        regs.globalTableRows = IfpConfig::globalTableRows;
        regs.subheap[0] = {true, 16, 0};
    }

    TaggedPtr
    localObject(GuestAddr base, uint64_t size, GuestAddr lt = 0)
    {
        GuestAddr meta = base + roundUp(size, 16);
        LocalOffsetMeta::write(mem, meta, size, lt, regs.macKey);
        return TaggedPtr::make(base, Scheme::LocalOffset,
                               ((meta - base) / 16) << 6);
    }
};

void
BM_PromoteLocalOffset(benchmark::State &state)
{
    Fixture f;
    TaggedPtr p = f.localObject(0x2000, 64);
    uint64_t cycles = 0;
    for (auto _ : state) {
        PromoteResult r = f.engine.promote(p);
        benchmark::DoNotOptimize(r.bounds);
        cycles = r.cycles;
    }
    state.counters["sim_cycles"] = static_cast<double>(cycles);
}
BENCHMARK(BM_PromoteLocalOffset);

void
BM_PromoteSubheap(benchmark::State &state)
{
    Fixture f;
    SubheapBlockMeta meta;
    meta.slotsStart = 32;
    meta.slotsEnd = 32 + 64 * 64;
    meta.slotSize = 64;
    meta.objectSize = 48;
    meta.valid = true;
    SubheapBlockMeta::write(f.mem, 0x10000, 0, meta, f.regs.macKey);
    TaggedPtr p = TaggedPtr::make(0x10000 + 32 + 3 * 64,
                                  Scheme::Subheap, 0);
    uint64_t cycles = 0;
    for (auto _ : state) {
        PromoteResult r = f.engine.promote(p);
        benchmark::DoNotOptimize(r.bounds);
        cycles = r.cycles;
    }
    state.counters["sim_cycles"] = static_cast<double>(cycles);
}
BENCHMARK(BM_PromoteSubheap);

void
BM_PromoteGlobalTable(benchmark::State &state)
{
    Fixture f;
    GlobalTableRow row{0x7000, 4096, true};
    GlobalTableRow::write(f.mem, f.regs.globalTableBase, 5, row);
    TaggedPtr p = TaggedPtr::make(0x7800, Scheme::GlobalTable, 5);
    uint64_t cycles = 0;
    for (auto _ : state) {
        PromoteResult r = f.engine.promote(p);
        benchmark::DoNotOptimize(r.bounds);
        cycles = r.cycles;
    }
    state.counters["sim_cycles"] = static_cast<double>(cycles);
}
BENCHMARK(BM_PromoteGlobalTable);

/** Narrowing cost vs. array-of-struct nesting depth. */
void
BM_PromoteNarrowDepth(benchmark::State &state)
{
    auto depth = static_cast<unsigned>(state.range(0));
    Fixture f;
    ir::Module m;
    ir::TypeContext &tc = m.types();
    // Build nested: L0 { i64 x; L1 arr[2]; } with L_last = {i64, i64}.
    const ir::Type *inner = tc.createStruct(
        "L_leaf", {tc.i64(), tc.i64()});
    for (unsigned d = 0; d < depth; ++d) {
        inner = tc.createStruct(strfmt("L_%u", d),
                                {tc.i64(), tc.array(inner, 2)});
    }
    LayoutTable table = buildLayoutTable(inner);
    GuestAddr lt = 0x9000;
    table.writeTo(f.mem, lt);
    // Deepest leaf's first field: walk the chain to find its index.
    uint64_t idx = table.numEntries() - 2; // leaf's first i64 (v of last elem)
    uint64_t size = inner->size();
    TaggedPtr base = f.localObject(0x4000, size, lt);
    // Point at the first element chain throughout.
    GuestAddr addr = 0x4000 + 8 * (depth + 0); // inside first elements
    TaggedPtr p = ops::ifpAdd(base.withSubobjIndex(idx),
                              static_cast<int64_t>(addr - 0x4000),
                              Bounds::cleared());
    uint64_t cycles = 0;
    bool narrowed = false;
    for (auto _ : state) {
        PromoteResult r = f.engine.promote(p);
        benchmark::DoNotOptimize(r.bounds);
        cycles = r.cycles;
        narrowed = r.narrowSucceeded;
    }
    state.counters["sim_cycles"] = static_cast<double>(cycles);
    state.counters["narrowed"] = narrowed ? 1 : 0;
}
BENCHMARK(BM_PromoteNarrowDepth)->DenseRange(1, 5);

void
BM_PromoteMac(benchmark::State &state)
{
    Fixture f;
    IfpConfig config;
    config.macEnabled = state.range(0) != 0;
    f.engine.setConfig(config);
    TaggedPtr p = f.localObject(0x2000, 64);
    uint64_t cycles = 0;
    for (auto _ : state) {
        PromoteResult r = f.engine.promote(p);
        benchmark::DoNotOptimize(r.bounds);
        cycles = r.cycles;
    }
    state.counters["sim_cycles"] = static_cast<double>(cycles);
}
BENCHMARK(BM_PromoteMac)->Arg(0)->Arg(1);

void
BM_IfpAdd(benchmark::State &state)
{
    TaggedPtr p = TaggedPtr::make(0x2000, Scheme::LocalOffset, 4 << 6);
    Bounds b(0x2000, 0x2040);
    int64_t delta = 8;
    for (auto _ : state) {
        p = ops::ifpAdd(p, delta, b);
        delta = -delta;
        benchmark::DoNotOptimize(p);
    }
}
BENCHMARK(BM_IfpAdd);

void
BM_MacCompute(benchmark::State &state)
{
    GuestMemory mem;
    MacKey key{1, 2};
    for (auto _ : state) {
        LocalOffsetMeta::write(mem, 0x1000, 64, 0, key);
        benchmark::DoNotOptimize(mem);
    }
}
BENCHMARK(BM_MacCompute);

} // namespace
} // namespace infat

BENCHMARK_MAIN();
