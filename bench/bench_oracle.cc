/**
 * @file
 * Differential-oracle and fault-injection report (docs/TESTING.md).
 *
 * Not a paper figure: this binary is the repo's own correctness
 * evidence for the defense model. It runs
 *
 *  1. the generated Juliet-style suite with the shadow oracle diffing
 *     every checked access, under both allocators (zero false
 *     negatives / false positives expected);
 *  2. the Olden-style workload set with the oracle attached, printing
 *     per-workload check/abstain/diff counts;
 *  3. the metadata fault-injection campaign (default 2000 single-bit
 *     corruptions), printing the per-target detection matrix and the
 *     explanation buckets for by-design-uncovered bits.
 *
 * Flags: --quick (small workload subset), --trials=N, --jobs=N,
 * --stats-json=PATH (export every group through the stat registry).
 * Exits non-zero if any oracle disagreement or unexplained corruption
 * is found, so it doubles as a long-form check in CI-ish settings.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "juliet/juliet.hh"
#include "oracle/fault.hh"
#include "oracle/oracle.hh"
#include "support/table.hh"

#include "bench_util.hh"

using namespace infat;
using namespace infat::workloads;

namespace {

int failures = 0;

void
reportSuite(const char *label, const juliet::OracleSuiteResult &suite)
{
    std::printf("\n--- Juliet suite, %s ---\n", label);
    std::printf("cases: %zu   bad detected: %zu/%zu   good passed: "
                "%zu/%zu\n",
                suite.total, suite.badDetected,
                suite.badDetected + suite.badMissed, suite.goodPassed,
                suite.goodPassed + suite.suiteFalsePositives);
    std::printf("oracle: %llu checks, %llu abstained, %llu FN, "
                "%llu FP\n",
                static_cast<unsigned long long>(suite.checks),
                static_cast<unsigned long long>(suite.abstained),
                static_cast<unsigned long long>(suite.falseNegatives),
                static_cast<unsigned long long>(suite.falsePositives));
    std::printf("temporal: %llu TP, %llu FN (%llu unexplained), "
                "%llu FP, %zu explained misses\n",
                static_cast<unsigned long long>(
                    suite.temporalTruePositives),
                static_cast<unsigned long long>(
                    suite.temporalFalseNegatives),
                static_cast<unsigned long long>(
                    suite.temporalFalseNegativesUnexplained),
                static_cast<unsigned long long>(
                    suite.temporalFalsePositives),
                suite.badExplained);
    if (suite.falseNegatives + suite.falsePositives > 0) {
        TextTable table({"cell", "FN", "FP"});
        for (const auto &[cell, counts] : suite.cells) {
            if (counts.falseNegatives + counts.falsePositives == 0)
                continue;
            table.addRow({cell, TextTable::cell(counts.falseNegatives),
                          TextTable::cell(counts.falsePositives)});
        }
        std::printf("%s", table.render().c_str());
    }
    if (!suite.clean())
        ++failures;
}

void
reportFault(const oracle::FaultCampaignResult &result)
{
    std::printf("\n--- Fault-injection campaign ---\n");
    std::printf("trials: %llu   detected: %llu   benign: %llu   "
                "explained: %llu   unexplained: %llu\n",
                static_cast<unsigned long long>(result.trials),
                static_cast<unsigned long long>(result.detected),
                static_cast<unsigned long long>(result.benign),
                static_cast<unsigned long long>(
                    result.explainedUndetected),
                static_cast<unsigned long long>(result.unexplained));

    TextTable table(
        {"target", "detected", "benign", "explained", "unexplained"});
    for (const auto &[name, counts] : result.perTarget) {
        table.addRow({name, TextTable::cell(counts[0]),
                      TextTable::cell(counts[1]),
                      TextTable::cell(counts[2]),
                      TextTable::cell(counts[3])});
    }
    std::printf("%s", table.render().c_str());

    if (!result.buckets.empty()) {
        std::printf("explanation buckets (undetected by design):\n");
        for (const auto &[bucket, count] : result.buckets)
            std::printf("  %-28s %llu\n", bucket.c_str(),
                        static_cast<unsigned long long>(count));
    }
    for (const std::string &detail : result.unexplainedDetails)
        std::printf("UNEXPLAINED: %s\n", detail.c_str());
    if (!result.pass())
        ++failures;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    bool quick = false;
    uint64_t trials = 2000;
    std::string stats_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
        else if (std::strncmp(argv[i], "--trials=", 9) == 0)
            trials = std::strtoull(argv[i] + 9, nullptr, 10);
        else if (std::strncmp(argv[i], "--stats-json=", 13) == 0)
            stats_path = argv[i] + 13;
    }
    unsigned jobs = bench::parseJobs(argc, argv);

    bench::printHeader(
        "Differential bounds oracle + metadata fault injection",
        "repo correctness evidence (docs/TESTING.md), not a paper "
        "figure");

    StatRegistry registry;
    StatGroup wrapped_group("juliet_oracle_wrapped");
    StatGroup subheap_group("juliet_oracle_subheap");
    StatGroup workload_group("workload_oracle");
    StatGroup fault_group("fault_campaign");
    registry.add(&wrapped_group);
    registry.add(&subheap_group);
    registry.add(&workload_group);
    registry.add(&fault_group);

    juliet::OracleSuiteResult wrapped =
        juliet::runSuiteWithOracle(AllocatorKind::Wrapped);
    wrapped.addToStats(wrapped_group);
    reportSuite("wrapped allocator", wrapped);

    juliet::OracleSuiteResult subheap =
        juliet::runSuiteWithOracle(AllocatorKind::Subheap);
    subheap.addToStats(subheap_group);
    reportSuite("subheap allocator", subheap);

    std::printf("\n--- Workloads with oracle attached ---\n");
    std::vector<std::string> names;
    if (quick) {
        names = {"treeadd", "perimeter", "anagram"};
    } else {
        for (const Workload &w : all())
            names.push_back(w.name);
    }
    TextTable table({"workload", "config", "checks", "abstained",
                     "FN", "FP", "temporal FP"});
    for (const std::string &name : names) {
        for (Config config : {Config::Wrapped, Config::Subheap}) {
            oracle::ShadowOracle shadow;
            Observability obs;
            obs.oracle = &shadow;
            runWorkload(name, config, obs);
            table.addRow({name, toString(config),
                          TextTable::cell(shadow.checks()),
                          TextTable::cell(shadow.abstained()),
                          TextTable::cell(shadow.falseNegatives()),
                          TextTable::cell(shadow.falsePositives()),
                          TextTable::cell(
                              shadow.temporalFalsePositives())});
            std::string prefix =
                name + "_" + toString(config) + "_";
            workload_group.counter(prefix + "checks")
                .set(shadow.checks());
            workload_group.counter(prefix + "abstained")
                .set(shadow.abstained());
            workload_group.counter(prefix + "false_negatives")
                .set(shadow.falseNegatives());
            workload_group.counter(prefix + "false_positives")
                .set(shadow.falsePositives());
            workload_group.counter(prefix + "temporal_false_positives")
                .set(shadow.temporalFalsePositives());
            if (shadow.falseNegatives() + shadow.falsePositives() +
                    shadow.temporalFalsePositives() > 0)
                ++failures;
        }
    }
    std::printf("%s", table.render().c_str());

    oracle::FaultCampaignConfig fault_config;
    fault_config.trials = trials;
    fault_config.jobs = jobs;
    oracle::FaultCampaignResult fault =
        oracle::runFaultCampaign(fault_config);
    fault.addToStats(fault_group);
    reportFault(fault);

    if (!stats_path.empty()) {
        registry.snapshot().writeFile(stats_path);
        std::fprintf(stderr, "  stats written to %s\n",
                     stats_path.c_str());
    }

    if (failures) {
        std::printf("\n%d section(s) FAILED\n", failures);
        return 1;
    }
    std::printf("\nAll sections clean: the defense's verdicts match "
                "ground truth on every checked access, and every "
                "undetected corruption is explained.\n");
    return 0;
}
