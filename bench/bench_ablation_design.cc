/**
 * @file
 * Ablation of the design choices DESIGN.md calls out, measured on a
 * representative workload subset:
 *
 *  - implicit vs. explicit bounds checks (paper §4.1.1 motivates the
 *    implicit LSU checks precisely to avoid per-dereference ifpchk
 *    instructions);
 *  - metadata MAC verification on/off (the integrity/latency trade);
 *  - subobject narrowing on/off (what the §5.3 "drop the layout
 *    walker" variant would cost in protection, and save in cycles);
 *  - promote on/off (the no-promote bound, for reference).
 *
 * All variants must produce the baseline checksum (except that
 * narrowing-off weakens protection, never behaviour).
 */

#include "bench/bench_util.hh"

using namespace infat;
using namespace infat::bench;
using workloads::CustomRun;
using workloads::runWorkloadCustom;

int
main(int argc, char **argv)
{
    infat::bench::StatsExport stats_export("ablation_design", argc, argv);
    setQuiet(true);
    printHeader("Design ablation (cycle overhead vs. baseline)",
                "DESIGN.md ablation index / paper Secs. 4.1.1, 5.3");

    const char *names[] = {"treeadd", "health", "bisort", "anagram",
                           "coremark"};

    TextTable table({"benchmark", "default", "explicit-chk", "no-mac",
                     "no-narrow", "no-promote", "mixed-alloc"});
    for (const char *name : names) {
        const Workload &w = *workloads::byName(name);
        RunResult base = runWorkload(w, Config::Baseline);

        CustomRun def;
        RunResult r_def = runWorkloadCustom(w, def);

        CustomRun explicit_chk;
        explicit_chk.implicitChecks = false;
        explicit_chk.explicitChecks = true;
        RunResult r_exp = runWorkloadCustom(w, explicit_chk);

        CustomRun no_mac;
        no_mac.ifp.macEnabled = false;
        RunResult r_mac = runWorkloadCustom(w, no_mac);

        CustomRun no_narrow;
        no_narrow.ifp.narrowingEnabled = false;
        RunResult r_nar = runWorkloadCustom(w, no_narrow);

        CustomRun no_promote;
        no_promote.ifp.noPromote = true;
        RunResult r_np = runWorkloadCustom(w, no_promote);

        // The paper's future-work dynamic allocator selection.
        CustomRun mixed;
        mixed.allocator = AllocatorKind::Mixed;
        RunResult r_mix = runWorkloadCustom(w, mixed);

        fatal_if(r_def.checksum != base.checksum ||
                     r_exp.checksum != base.checksum ||
                     r_mac.checksum != base.checksum ||
                     r_nar.checksum != base.checksum ||
                     r_mix.checksum != base.checksum,
                 "%s: ablation changed behaviour", name);

        auto pct = [&](const RunResult &r) {
            return TextTable::cellPct(
                overhead(r.cycles, base.cycles), 1);
        };
        table.addRow({name, pct(r_def), pct(r_exp), pct(r_mac),
                      pct(r_nar), pct(r_np), pct(r_mix)});
    }
    std::printf("%s", table.render().c_str());
    std::printf("\nreading: explicit-chk shows the instruction cost "
                "implicit checking avoids; no-mac the integrity "
                "check's latency share; no-narrow what dropping the "
                "layout walker saves (at subobject-protection cost); "
                "no-promote bounds the total promote cost.\n");
    return 0;
}
