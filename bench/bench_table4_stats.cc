/**
 * @file
 * Table 4: dynamic event counts on object instrumentation, promotion,
 * and instructions executed.
 *
 * Columns follow the paper: instrumented global/local/heap object
 * counts with the share whose metadata carries a layout table, valid
 * promotes (metadata lookup performed) and their share of all
 * promotes, and dynamic instruction counts (baseline absolute, the
 * instrumented configurations as ratios). Layout-table and subobject
 * statistics come from the subheap-allocator runs, as in the paper.
 */

#include "bench/bench_util.hh"

using namespace infat;
using namespace infat::bench;

namespace {

std::string
objCell(uint64_t count, uint64_t with_layout)
{
    if (count == 0)
        return "0";
    double pct = 100.0 * static_cast<double>(with_layout) /
                 static_cast<double>(count);
    return strfmt("%llu, %3.0f%%", static_cast<unsigned long long>(count),
                  pct);
}

} // namespace

int
main(int argc, char **argv)
{
    infat::bench::StatsExport stats_export("table4_stats", argc, argv);
    setQuiet(true);
    printHeader("Table 4: Dynamic Event Counts",
                "paper Table 4 (subheap geo-mean instr 1.05x, "
                "wrapped 1.14x)");

    TextTable table({"benchmark", "globals(%LT)", "locals(%LT)",
                     "heap(%LT)", "valid promote", "(% total)",
                     "baseline instrs", "subheap", "wrapped"});
    std::vector<double> sub_ratios, wrap_ratios;
    uint64_t total_promotes = 0, total_valid = 0;
    ThreadPool pool(poolThreadsForJobs(parseJobs(argc, argv)));
    for (const WorkloadMatrix &m : runAllMatrices(pool)) {
        const RunResult &s = m.subheap;
        double sub = ratio(m.subheap.instructions,
                           m.baseline.instructions);
        double wrap = ratio(m.wrapped.instructions,
                            m.baseline.instructions);
        sub_ratios.push_back(sub);
        wrap_ratios.push_back(wrap);
        total_promotes += s.promotes;
        total_valid += s.validPromotes;
        table.addRow(
            {m.workload->name,
             objCell(s.globalObjects, s.globalObjectsWithLayout),
             objCell(s.localObjects, s.localObjectsWithLayout),
             objCell(s.heapObjects, s.heapObjectsWithLayout),
             TextTable::cellSci(
                 static_cast<double>(s.validPromotes)),
             TextTable::cellPct(ratio(s.validPromotes, s.promotes), 0),
             TextTable::cellSci(
                 static_cast<double>(m.baseline.instructions)),
             strfmt("%.2fx", sub), strfmt("%.2fx", wrap)});
    }
    table.addRow({"GEO-MEAN", "", "", "", "", "", "",
                  strfmt("%.2fx", geomean(sub_ratios)),
                  strfmt("%.2fx", geomean(wrap_ratios))});
    std::printf("%s", table.render().c_str());
    std::printf("\nshare of promotes bypassing metadata lookup "
                "(NULL/legacy/poisoned): %.0f%%\n",
                100.0 * (1.0 - ratio(total_valid, total_promotes)));
    std::printf("paper reference: >20%% of promotes take NULL or "
                "legacy operands on average\n");
    return 0;
}
