/**
 * @file
 * Shared helpers for the experiment harness binaries.
 *
 * Each bench binary reproduces one table or figure from the paper's
 * evaluation (see DESIGN.md §3 for the index) and prints the same rows
 * or series the paper reports, plus the paper's headline value for
 * comparison where one exists.
 */

#ifndef INFAT_BENCH_BENCH_UTIL_HH
#define INFAT_BENCH_BENCH_UTIL_HH

#include <atomic>
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "support/json.hh"
#include "support/logging.hh"
#include "support/stats.hh"
#include "support/table.hh"
#include "support/thread_pool.hh"
#include "vm/jit.hh"
#include "vm/machine.hh"
#include "workloads/harness.hh"

// CMake-generated build provenance (git commit, configure preset);
// absent when the header is compiled outside the CMake build.
#if __has_include("infat_provenance.hh")
#include "infat_provenance.hh"
#endif

namespace infat {
namespace bench {

using workloads::Config;
using workloads::RunResult;
using workloads::Workload;

/** The five §5.2 configurations, in the paper's reporting order. */
constexpr Config kMatrixConfigs[] = {
    Config::Baseline,        Config::Subheap,
    Config::Wrapped,         Config::SubheapNoPromote,
    Config::WrappedNoPromote,
};
constexpr size_t kNumMatrixConfigs =
    sizeof(kMatrixConfigs) / sizeof(kMatrixConfigs[0]);

/** Results for one workload across all five configurations. */
struct WorkloadMatrix
{
    const Workload *workload;
    RunResult baseline;
    RunResult subheap;
    RunResult wrapped;
    RunResult subheapNp;
    RunResult wrappedNp;
};

inline RunResult &
matrixSlot(WorkloadMatrix &matrix, Config config)
{
    switch (config) {
      case Config::Baseline:
        return matrix.baseline;
      case Config::Subheap:
        return matrix.subheap;
      case Config::Wrapped:
        return matrix.wrapped;
      case Config::SubheapNoPromote:
        return matrix.subheapNp;
      case Config::WrappedNoPromote:
        return matrix.wrappedNp;
    }
    panic("bad config %d", static_cast<int>(config));
}

inline const RunResult &
matrixSlot(const WorkloadMatrix &matrix, Config config)
{
    return matrixSlot(const_cast<WorkloadMatrix &>(matrix), config);
}

/**
 * Every configuration of a workload must reproduce the baseline
 * checksum (the workloads are written to be config-invariant); a
 * mismatch is a simulator bug, reported with the configuration that
 * diverged so it can be re-run in isolation.
 */
inline void
checkMatrix(WorkloadMatrix &matrix)
{
    const Workload &w = *matrix.workload;
    for (Config config : kMatrixConfigs) {
        const RunResult &run = matrixSlot(matrix, config);
        fatal_if(run.checksum != matrix.baseline.checksum,
                 "%s: configuration %s checksum %016llx diverged from "
                 "baseline checksum %016llx",
                 w.name, toString(config),
                 static_cast<unsigned long long>(run.checksum),
                 static_cast<unsigned long long>(
                     matrix.baseline.checksum));
    }
}

/** Run one workload under every configuration (serially). */
inline WorkloadMatrix
runMatrix(const Workload &w)
{
    WorkloadMatrix matrix;
    matrix.workload = &w;
    for (Config config : kMatrixConfigs)
        matrixSlot(matrix, config) = runWorkload(w, config);
    checkMatrix(matrix);
    return matrix;
}

/**
 * Run a set of workloads under every configuration, spreading the
 * independent (workload, config) runs across @p pool. Each run is one
 * self-contained Machine, so results are bit-identical to the serial
 * loop; results land in fixed slots, so the returned order is the
 * input order regardless of which run finishes first.
 */
inline std::vector<WorkloadMatrix>
runMatrices(const std::vector<const Workload *> &ws, ThreadPool &pool)
{
    std::vector<WorkloadMatrix> matrices(ws.size());
    for (size_t i = 0; i < ws.size(); ++i)
        matrices[i].workload = ws[i];
    std::atomic<size_t> finished{0};
    size_t jobs = ws.size() * kNumMatrixConfigs;
    pool.forEach(jobs, [&](size_t job) {
        size_t wi = job / kNumMatrixConfigs;
        Config config = kMatrixConfigs[job % kNumMatrixConfigs];
        matrixSlot(matrices[wi], config) =
            runWorkload(*ws[wi], config);
        size_t done = finished.fetch_add(1) + 1;
        if (done % kNumMatrixConfigs == 0)
            std::fprintf(stderr, "  %zu/%zu runs done\n", done, jobs);
    });
    for (WorkloadMatrix &matrix : matrices)
        checkMatrix(matrix);
    return matrices;
}

/** Run the full 18-workload matrix serially, with progress lines. */
inline std::vector<WorkloadMatrix>
runAllMatrices()
{
    std::vector<WorkloadMatrix> matrices;
    for (const Workload &w : workloads::all()) {
        std::fprintf(stderr, "  running %s...\n", w.name);
        matrices.push_back(runMatrix(w));
    }
    return matrices;
}

/** Run the full matrix on @p pool (serial when the pool is inline). */
inline std::vector<WorkloadMatrix>
runAllMatrices(ThreadPool &pool)
{
    if (pool.threadCount() == 0)
        return runAllMatrices();
    std::vector<const Workload *> ws;
    for (const Workload &w : workloads::all())
        ws.push_back(&w);
    return runMatrices(ws, pool);
}

/**
 * Worker-thread count for a pool that should run @p jobs harness runs
 * concurrently: the forEach caller participates, so N jobs need N-1
 * workers (and jobs=1 needs none — the pure serial path).
 */
inline unsigned
poolThreadsForJobs(unsigned jobs)
{
    return jobs > 0 ? jobs - 1 : 0;
}

/**
 * The `--jobs=N` flag shared by the bench binaries: how many runs to
 * execute concurrently. Defaults to INFAT_JOBS or the host's core
 * count; 1 means the classic serial loop.
 */
inline unsigned
parseJobs(int argc, char **argv)
{
    const std::string prefix = "--jobs=";
    unsigned jobs = ThreadPool::defaultJobs();
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind(prefix, 0) == 0) {
            long n = std::strtol(arg.c_str() + prefix.size(),
                                 nullptr, 10);
            fatal_if(n <= 0, "--jobs needs a positive integer, got %s",
                     arg.c_str());
            jobs = static_cast<unsigned>(n);
        }
    }
    return jobs;
}

/**
 * Build/run provenance stamped into every bench JSON artifact: the git
 * commit and configure preset (baked in by CMake at configure time)
 * and the host interpreter engine the process is pinned to. Lets a
 * BENCH_*.json trajectory always answer "what produced this number".
 */
inline const char *
provenanceGitCommit()
{
#ifdef INFAT_GIT_COMMIT
    return INFAT_GIT_COMMIT;
#else
    return "unknown";
#endif
}

inline const char *
provenanceBuildPreset()
{
#ifdef INFAT_BUILD_PRESET
    return INFAT_BUILD_PRESET;
#else
    return "unknown";
#endif
}

inline const char *
provenanceEngine()
{
    workloads::EngineTuning t = workloads::engineTuning();
    if (!t.superblocks)
        return "general";
    if (!t.superblockFusion && !t.superblockCheckElim)
        return "superblock-base";
    if (!t.superblockFusion)
        return "superblock-nofuse";
    if (!t.superblockCheckElim)
        return "superblock-noelim";
    if (!t.threadedDispatch)
        return "superblock";
    return t.jit ? "jit" : "threaded";
}

/** Emit the "provenance" member (call between key/value pairs). */
inline void
writeProvenance(JsonWriter &json)
{
    json.key("provenance");
    json.beginObject();
    json.field("git_commit", std::string_view(provenanceGitCommit()));
    json.field("build_preset",
               std::string_view(provenanceBuildPreset()));
    json.field("engine", std::string_view(provenanceEngine()));
    // Tier configuration: enough to reproduce (or explain) the host
    // execution strategy behind a BENCH number on any machine.
    workloads::EngineTuning tuning = workloads::engineTuning();
    json.key("tier");
    json.beginObject();
    json.field("threaded_dispatch", tuning.threadedDispatch);
    json.field("jit_requested", tuning.jit);
    json.field("jit_available", jit::available());
    if (!jit::available())
        json.field("jit_fallback_reason",
                   std::string_view(jit::unavailableReason()));
    json.field("jit_threshold",
               uint64_t(tuning.jitThreshold != 0
                            ? tuning.jitThreshold
                            : VmConfig{}.jitThreshold));
    json.endObject();
    json.endObject();
}

inline double
ratio(uint64_t a, uint64_t b)
{
    return b == 0 ? 0.0 : static_cast<double>(a) / static_cast<double>(b);
}

/** Overhead of a configuration relative to baseline, as a fraction. */
inline double
overhead(uint64_t value, uint64_t base)
{
    return ratio(value, base) - 1.0;
}

inline void
printHeader(const char *what, const char *paper_ref)
{
    std::printf("==============================================="
                "=========================\n");
    std::printf("%s\n", what);
    std::printf("Reproduces: %s\n", paper_ref);
    std::printf("==============================================="
                "=========================\n");
}

/**
 * Per-run stat export for the bench binaries (docs/OBSERVABILITY.md).
 *
 * Instantiate at the top of main(argc, argv); when the process was
 * invoked with `--stats-json=<path>`, harness run recording is turned
 * on and, at scope exit, every run the binary performed is written to
 * <path> as one JSON document:
 *
 *   {"bench": "<name>", "runs": [
 *     {"workload": ..., "config": ..., "stats": {"groups": {...}}}, ...]}
 *
 * With no flag this is a no-op, so every bench target gets the export
 * path from the same two lines of code.
 */
class StatsExport
{
  public:
    StatsExport(const char *bench_name, int argc, char **argv)
        : bench_(bench_name)
    {
        const std::string prefix = "--stats-json=";
        for (int i = 1; i < argc; ++i) {
            std::string arg = argv[i];
            if (arg.rfind(prefix, 0) == 0)
                path_ = arg.substr(prefix.size());
        }
        if (!path_.empty()) {
            workloads::clearRecordedRuns();
            workloads::setRunRecording(true);
        }
    }

    ~StatsExport() { write(); }

    StatsExport(const StatsExport &) = delete;
    StatsExport &operator=(const StatsExport &) = delete;

    /** Write the recorded runs now (idempotent). */
    void
    write()
    {
        if (path_.empty() || written_)
            return;
        written_ = true;
        // Concurrent harness runs append in completion order; sort by
        // (workload, label) so the exported JSON is identical no
        // matter how many jobs produced it. stable_sort keeps repeated
        // (workload, label) pairs — some ablation binaries re-run a
        // configuration — in recording order.
        std::vector<workloads::RecordedRun> runs =
            workloads::recordedRuns();
        std::stable_sort(
            runs.begin(), runs.end(),
            [](const workloads::RecordedRun &a,
               const workloads::RecordedRun &b) {
                if (a.workload != b.workload)
                    return a.workload < b.workload;
                return a.label < b.label;
            });
        std::ofstream f(path_);
        fatal_if(!f, "cannot write %s", path_.c_str());
        JsonWriter json(f, /*pretty=*/true);
        json.beginObject();
        json.field("bench", std::string_view(bench_));
        writeProvenance(json);
        json.key("runs");
        json.beginArray();
        for (const workloads::RecordedRun &run : runs) {
            json.beginObject();
            json.field("workload", std::string_view(run.workload));
            json.field("config", std::string_view(run.label));
            json.key("stats");
            run.stats.writeJson(json);
            json.endObject();
        }
        json.endArray();
        json.endObject();
        f << "\n";
        std::fprintf(stderr, "  stats written to %s (%zu runs)\n",
                     path_.c_str(), runs.size());
        workloads::setRunRecording(false);
    }

  private:
    std::string bench_;
    std::string path_;
    bool written_ = false;
};

} // namespace bench
} // namespace infat

#endif // INFAT_BENCH_BENCH_UTIL_HH
