/**
 * @file
 * Shared helpers for the experiment harness binaries.
 *
 * Each bench binary reproduces one table or figure from the paper's
 * evaluation (see DESIGN.md §3 for the index) and prints the same rows
 * or series the paper reports, plus the paper's headline value for
 * comparison where one exists.
 */

#ifndef INFAT_BENCH_BENCH_UTIL_HH
#define INFAT_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "support/json.hh"
#include "support/logging.hh"
#include "support/stats.hh"
#include "support/table.hh"
#include "workloads/harness.hh"

namespace infat {
namespace bench {

using workloads::Config;
using workloads::RunResult;
using workloads::Workload;

/** Results for one workload across all five configurations. */
struct WorkloadMatrix
{
    const Workload *workload;
    RunResult baseline;
    RunResult subheap;
    RunResult wrapped;
    RunResult subheapNp;
    RunResult wrappedNp;
};

/** Run one workload under every configuration. */
inline WorkloadMatrix
runMatrix(const Workload &w)
{
    WorkloadMatrix matrix;
    matrix.workload = &w;
    matrix.baseline = runWorkload(w, Config::Baseline);
    matrix.subheap = runWorkload(w, Config::Subheap);
    matrix.wrapped = runWorkload(w, Config::Wrapped);
    matrix.subheapNp = runWorkload(w, Config::SubheapNoPromote);
    matrix.wrappedNp = runWorkload(w, Config::WrappedNoPromote);
    fatal_if(matrix.subheap.checksum != matrix.baseline.checksum ||
                 matrix.wrapped.checksum != matrix.baseline.checksum,
             "%s: checksum mismatch between configurations", w.name);
    return matrix;
}

/** Run the full 18-workload matrix, printing progress to stderr. */
inline std::vector<WorkloadMatrix>
runAllMatrices()
{
    std::vector<WorkloadMatrix> matrices;
    for (const Workload &w : workloads::all()) {
        std::fprintf(stderr, "  running %s...\n", w.name);
        matrices.push_back(runMatrix(w));
    }
    return matrices;
}

inline double
ratio(uint64_t a, uint64_t b)
{
    return b == 0 ? 0.0 : static_cast<double>(a) / static_cast<double>(b);
}

/** Overhead of a configuration relative to baseline, as a fraction. */
inline double
overhead(uint64_t value, uint64_t base)
{
    return ratio(value, base) - 1.0;
}

inline void
printHeader(const char *what, const char *paper_ref)
{
    std::printf("==============================================="
                "=========================\n");
    std::printf("%s\n", what);
    std::printf("Reproduces: %s\n", paper_ref);
    std::printf("==============================================="
                "=========================\n");
}

/**
 * Per-run stat export for the bench binaries (docs/OBSERVABILITY.md).
 *
 * Instantiate at the top of main(argc, argv); when the process was
 * invoked with `--stats-json=<path>`, harness run recording is turned
 * on and, at scope exit, every run the binary performed is written to
 * <path> as one JSON document:
 *
 *   {"bench": "<name>", "runs": [
 *     {"workload": ..., "config": ..., "stats": {"groups": {...}}}, ...]}
 *
 * With no flag this is a no-op, so every bench target gets the export
 * path from the same two lines of code.
 */
class StatsExport
{
  public:
    StatsExport(const char *bench_name, int argc, char **argv)
        : bench_(bench_name)
    {
        const std::string prefix = "--stats-json=";
        for (int i = 1; i < argc; ++i) {
            std::string arg = argv[i];
            if (arg.rfind(prefix, 0) == 0)
                path_ = arg.substr(prefix.size());
        }
        if (!path_.empty()) {
            workloads::clearRecordedRuns();
            workloads::setRunRecording(true);
        }
    }

    ~StatsExport() { write(); }

    StatsExport(const StatsExport &) = delete;
    StatsExport &operator=(const StatsExport &) = delete;

    /** Write the recorded runs now (idempotent). */
    void
    write()
    {
        if (path_.empty() || written_)
            return;
        written_ = true;
        std::ofstream f(path_);
        fatal_if(!f, "cannot write %s", path_.c_str());
        JsonWriter json(f, /*pretty=*/true);
        json.beginObject();
        json.field("bench", std::string_view(bench_));
        json.key("runs");
        json.beginArray();
        for (const workloads::RecordedRun &run :
             workloads::recordedRuns()) {
            json.beginObject();
            json.field("workload", std::string_view(run.workload));
            json.field("config", std::string_view(run.label));
            json.key("stats");
            run.stats.writeJson(json);
            json.endObject();
        }
        json.endArray();
        json.endObject();
        f << "\n";
        std::fprintf(stderr, "  stats written to %s (%zu runs)\n",
                     path_.c_str(), workloads::recordedRuns().size());
        workloads::setRunRecording(false);
    }

  private:
    std::string bench_;
    std::string path_;
    bool written_ = false;
};

} // namespace bench
} // namespace infat

#endif // INFAT_BENCH_BENCH_UTIL_HH
