/**
 * @file
 * Figure 12: memory overhead of applicable benchmarks.
 *
 * Maximum resident size (touched-page model, the analogue of the
 * paper's `time -v` measurement) of the subheap and wrapped versions,
 * normalized to baseline. The paper excludes ks, yacr2 and CoreMark
 * because they use <6 MB; this harness prints every workload but
 * flags the small ones and excludes them from the geo-mean the same
 * way. Paper headline: subheap -6%, wrapped +21% geo-mean; em3d worst
 * for subheap.
 */

#include "bench/bench_util.hh"

using namespace infat;
using namespace infat::bench;

int
main(int argc, char **argv)
{
    infat::bench::StatsExport stats_export("fig12_memory", argc, argv);
    setQuiet(true);
    printHeader("Figure 12: Memory Overhead",
                "paper Fig. 12 (subheap -6%, wrapped +21% geo-mean)");

    // The paper's cutoff was 6 MB on a 1 GB board; the simulated runs
    // are scaled down heavily, so the smallness cutoff scales too.
    constexpr uint64_t small_cutoff = 40 * 1024;
    // The paper measures whole-process maximum resident size, which
    // includes the program image, libc, and loader (~0.5 MiB of fixed
    // pages on the board) on top of the heap; the simulation tracks
    // only guest data pages, so the fixed share is added back here.
    constexpr uint64_t process_fixed = 512 * 1024;

    TextTable table({"benchmark", "baseline KiB", "subheap", "wrapped",
                     "note"});
    std::vector<double> sub_ratios, wrap_ratios;
    ThreadPool pool(poolThreadsForJobs(parseJobs(argc, argv)));
    for (const WorkloadMatrix &m : runAllMatrices(pool)) {
        double sub = overhead(m.subheap.residentBytes + process_fixed,
                              m.baseline.residentBytes + process_fixed);
        double wrap = overhead(m.wrapped.residentBytes + process_fixed,
                               m.baseline.residentBytes + process_fixed);
        bool small = m.baseline.residentBytes < small_cutoff;
        if (!small) {
            sub_ratios.push_back(1.0 + sub);
            wrap_ratios.push_back(1.0 + wrap);
        }
        table.addRow({m.workload->name,
                      TextTable::cell(m.baseline.residentBytes / 1024),
                      TextTable::cellPct(sub, 1),
                      TextTable::cellPct(wrap, 1),
                      small ? "(small: excluded)" : ""});
    }
    table.addRow({"GEO-MEAN (applicable)", "",
                  TextTable::cellPct(geomean(sub_ratios) - 1.0, 1),
                  TextTable::cellPct(geomean(wrap_ratios) - 1.0, 1),
                  ""});
    std::printf("%s", table.render().c_str());
    std::printf("\npaper reference: subheap -6%%, wrapped +21%%; "
                "Intel MPX 1.9x-2.1x\n");
    return 0;
}
