/**
 * @file
 * Figure 10: performance overhead of all benchmarks.
 *
 * For every workload, the normalized runtime (cycle) overhead of the
 * subheap and wrapped allocator versions, plus both no-promote
 * variants that isolate the cost of the promote instruction (paper
 * §5.2.2). Paper headline: ~12% geo-mean for subheap, ~24% for
 * wrapped; perimeter and treeadd run *faster* than baseline under the
 * subheap allocator.
 */

#include "bench/bench_util.hh"

using namespace infat;
using namespace infat::bench;

int
main(int argc, char **argv)
{
    infat::bench::StatsExport stats_export("fig10_perf", argc, argv);
    setQuiet(true);
    printHeader("Figure 10: Performance Overhead of All Benchmarks",
                "paper Fig. 10 (subheap 12%, wrapped 24% geo-mean)");

    ThreadPool pool(poolThreadsForJobs(parseJobs(argc, argv)));
    TextTable table({"benchmark", "subheap", "wrapped", "subheap-np",
                     "wrapped-np"});
    std::vector<double> sub_ratios, wrap_ratios, sub_np_ratios,
        wrap_np_ratios;
    for (const WorkloadMatrix &m : runAllMatrices(pool)) {
        double sub = overhead(m.subheap.cycles, m.baseline.cycles);
        double wrap = overhead(m.wrapped.cycles, m.baseline.cycles);
        double sub_np = overhead(m.subheapNp.cycles, m.baseline.cycles);
        double wrap_np =
            overhead(m.wrappedNp.cycles, m.baseline.cycles);
        sub_ratios.push_back(1.0 + sub);
        wrap_ratios.push_back(1.0 + wrap);
        sub_np_ratios.push_back(1.0 + sub_np);
        wrap_np_ratios.push_back(1.0 + wrap_np);
        table.addRow({m.workload->name, TextTable::cellPct(sub, 1),
                      TextTable::cellPct(wrap, 1),
                      TextTable::cellPct(sub_np, 1),
                      TextTable::cellPct(wrap_np, 1)});
    }
    table.addRow({"GEO-MEAN",
                  TextTable::cellPct(geomean(sub_ratios) - 1.0, 1),
                  TextTable::cellPct(geomean(wrap_ratios) - 1.0, 1),
                  TextTable::cellPct(geomean(sub_np_ratios) - 1.0, 1),
                  TextTable::cellPct(geomean(wrap_np_ratios) - 1.0, 1)});
    std::printf("%s", table.render().c_str());
    std::printf("\npaper reference: subheap 12%%, wrapped 24%% "
                "geo-mean; FRAMER 223%%, Intel MPX 50%%\n");
    return 0;
}
