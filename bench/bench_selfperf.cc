/**
 * @file
 * Self-performance of the simulator itself: suite wall-clock, serial
 * vs. parallel, and interpreter throughput.
 *
 * Unlike every other bench target (which reproduces a figure from the
 * paper), this one measures the *reproduction's* speed so the repo can
 * hold itself to a number across PRs. It runs the workload matrix
 * twice — once serially, once across a ThreadPool — verifies the two
 * passes produced bit-identical simulated results (checksums,
 * instruction and cycle counts, full stat-snapshot JSON), and writes
 * the measurements to BENCH_selfperf.json (see docs/PERFORMANCE.md).
 *
 * Flags:
 *   --jobs=N      concurrent runs in the parallel pass (default: cores)
 *   --smoke       small 4-workload subset; used by the
 *                 infat_parallel_smoke ctest and the CI smoke job
 *   --repeat=N    time the serial pass (and each engine ablation
 *                 pass) N times and record the best-of-N wall clock
 *                 alongside the first run; every repeat is verified
 *                 bit-identical to the first. Suite wall-clock on a
 *                 shared machine is noisy — the perf target in
 *                 ROADMAP.md is judged on the best-of number.
 *   --out=PATH    output JSON path (default BENCH_selfperf.json)
 *   --engine=E    pin the host interpreter engine for every run:
 *                 general | superblock-base | superblock-nofuse |
 *                 superblock-noelim | superblock | threaded | jit
 *                 (default; see workloads::engineNames()). Used for
 *                 the ablation table in docs/PERFORMANCE.md; simulated
 *                 results are identical under every engine.
 *   --matrix      additionally time one serial pass per engine and
 *                 record the ablation in the JSON `engine_matrix`
 *                 array, verifying every engine's simulated results
 *                 bit-identical to the main pass along the way.
 *                 Implied by the full (non-smoke) run; --no-matrix
 *                 turns it off.
 *   --stats-json=PATH
 *                 also export every recorded run's full stat snapshot
 *                 (bench_util.hh StatsExport); uploaded as a CI
 *                 artifact by the smoke job.
 */

#include <sys/utsname.h>

#include <algorithm>
#include <chrono>
#include <thread>

#include "bench/bench_util.hh"

using namespace infat;
using namespace infat::bench;

namespace {

struct SuitePass
{
    std::vector<WorkloadMatrix> matrices;
    double millis = 0.0;
};

SuitePass
runSuite(const std::vector<const Workload *> &ws, unsigned jobs)
{
    auto t0 = std::chrono::steady_clock::now();
    SuitePass pass;
    if (jobs <= 1) {
        for (const Workload *w : ws)
            pass.matrices.push_back(runMatrix(*w));
    } else {
        ThreadPool pool(poolThreadsForJobs(jobs));
        pass.matrices = runMatrices(ws, pool);
    }
    pass.millis = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    return pass;
}

/**
 * The determinism guarantee, enforced: every simulated observable of
 * @p other must equal the reference pass bit for bit. Used both for
 * serial-vs-parallel and for the cross-engine ablation passes (every
 * tier must be bit-identical to every other; @p what names the
 * diverging pass in the failure message). Simulated stat snapshots
 * exclude the host-side vm.superblock / vm.tier groups (the only
 * groups engines legitimately differ on; see tools/tier_diff.cc).
 */
std::string
simStatsJson(const StatSnapshot &snap)
{
    StatSnapshot sim = snap;
    sim.groups.erase(
        std::remove_if(sim.groups.begin(), sim.groups.end(),
                       [](const StatSnapshot::Group &g) {
                           return g.name == "vm.superblock" ||
                                  g.name == "vm.tier";
                       }),
        sim.groups.end());
    return sim.toJson();
}

void
verifyIdentical(const SuitePass &ref, const SuitePass &other,
                const char *what, bool sim_only = false)
{
    fatal_if(ref.matrices.size() != other.matrices.size(),
             "pass size mismatch");
    for (size_t i = 0; i < ref.matrices.size(); ++i) {
        const WorkloadMatrix &s = ref.matrices[i];
        // Safe: runMatrices never reorders results.
        const WorkloadMatrix &p = other.matrices[i];
        for (Config config : kMatrixConfigs) {
            const RunResult &sr = matrixSlot(s, config);
            const RunResult &pr = matrixSlot(p, config);
            fatal_if(sr.checksum != pr.checksum ||
                         sr.instructions != pr.instructions ||
                         sr.cycles != pr.cycles,
                     "%s/%s: %s run diverged from reference "
                     "(checksum %016llx vs %016llx, instrs %llu vs "
                     "%llu, cycles %llu vs %llu)",
                     s.workload->name, toString(config), what,
                     (unsigned long long)sr.checksum,
                     (unsigned long long)pr.checksum,
                     (unsigned long long)sr.instructions,
                     (unsigned long long)pr.instructions,
                     (unsigned long long)sr.cycles,
                     (unsigned long long)pr.cycles);
            bool stats_equal =
                sim_only ? simStatsJson(sr.stats) ==
                               simStatsJson(pr.stats)
                         : sr.stats.toJson() == pr.stats.toJson();
            fatal_if(!stats_equal,
                     "%s/%s: %s stat snapshot JSON diverged from "
                     "reference",
                     s.workload->name, toString(config), what);
        }
    }
}

uint64_t
totalInstructions(const SuitePass &pass)
{
    uint64_t total = 0;
    for (const WorkloadMatrix &m : pass.matrices)
        for (Config config : kMatrixConfigs)
            total += matrixSlot(m, config).instructions;
    return total;
}

/** Map an --engine= label onto the process-global engine tuning. */
workloads::EngineTuning
tuningForEngine(const std::string &engine)
{
    workloads::EngineTuning tuning;
    fatal_if(!workloads::engineTuningForName(engine, tuning),
             "unknown --engine=%s (valid engines: %s)", engine.c_str(),
             workloads::engineNamesJoined().c_str());
    return tuning;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    infat::bench::StatsExport stats_export("selfperf", argc, argv);
    unsigned jobs = parseJobs(argc, argv);
    bool smoke = false;
    bool matrix = false;
    bool no_matrix = false;
    unsigned repeat = 1;
    std::string out = "BENCH_selfperf.json";
    std::string engine = "jit";
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--smoke")
            smoke = true;
        else if (arg == "--matrix")
            matrix = true;
        else if (arg == "--no-matrix")
            no_matrix = true;
        else if (arg.rfind("--repeat=", 0) == 0)
            repeat = std::max(1, std::atoi(arg.c_str() + 9));
        else if (arg.rfind("--out=", 0) == 0)
            out = arg.substr(6);
        else if (arg.rfind("--engine=", 0) == 0)
            engine = arg.substr(9);
    }
    // The full run records the engine ablation by default; smoke runs
    // (ctest / CI) skip it unless explicitly requested.
    if (!matrix)
        matrix = !smoke;
    if (no_matrix)
        matrix = false;
    workloads::setEngineTuning(tuningForEngine(engine));

    printHeader("Self-performance: suite wall-clock and parallel "
                "speedup",
                "repo perf trajectory (BENCH_selfperf.json), not a "
                "paper figure");

    std::vector<const Workload *> ws;
    if (smoke) {
        for (const char *name :
             {"treeadd", "power", "anagram", "ks"}) {
            const Workload *w = workloads::byName(name);
            fatal_if(!w, "unknown smoke workload %s", name);
            ws.push_back(w);
        }
    } else {
        for (const Workload &w : workloads::all())
            ws.push_back(&w);
    }
    size_t runs = ws.size() * kNumMatrixConfigs;

    std::fprintf(stderr, "  serial pass (%zu runs)...\n", runs);
    SuitePass serial = runSuite(ws, 1);

    // Best-of-N: rerun the serial pass repeat-1 more times, verify
    // each repeat bit-identical to the first, keep the minimum wall
    // clock. The first run's matrices stay the reference everywhere.
    auto repeatBest = [&](const SuitePass &first, bool sim_only) {
        double best = first.millis;
        for (unsigned r = 1; r < repeat; ++r) {
            std::fprintf(stderr, "    repeat %u/%u...\n", r + 1,
                         repeat);
            SuitePass pass = runSuite(ws, 1);
            verifyIdentical(first, pass, "repeat", sim_only);
            best = std::min(best, pass.millis);
        }
        return best;
    };
    double serial_best = repeatBest(serial, /*sim_only=*/false);

    std::fprintf(stderr, "  parallel pass (--jobs=%u)...\n", jobs);
    SuitePass parallel = runSuite(ws, jobs);
    verifyIdentical(serial, parallel, "parallel");

    // Engine ablation: one timed serial pass per engine, each verified
    // bit-identical (simulated stats) to the main pass above.
    struct EngineRow
    {
        std::string engine;
        double millis = 0.0;     ///< first timed pass
        double bestMillis = 0.0; ///< best of --repeat passes
    };
    std::vector<EngineRow> ablation;
    if (matrix) {
        for (const std::string &name : workloads::engineNames()) {
            if (name == engine) {
                ablation.push_back({name, serial.millis,
                                    serial_best});
                continue;
            }
            std::fprintf(stderr, "  ablation pass (--engine=%s)...\n",
                         name.c_str());
            workloads::setEngineTuning(tuningForEngine(name));
            SuitePass pass = runSuite(ws, 1);
            verifyIdentical(serial, pass, name.c_str(),
                            /*sim_only=*/true);
            double best = repeatBest(pass, /*sim_only=*/false);
            ablation.push_back({name, pass.millis, best});
        }
        workloads::setEngineTuning(tuningForEngine(engine));
    }

    // Temporal lock-and-key overhead: the instrumented matrix with
    // IfpConfig::temporalEnabled on vs. off (everything else pinned),
    // diffed on suite wall-clock, simulated cycles, and memory
    // footprint. The resident-byte delta is the metadata cost of the
    // generation locks (per-slot guest lock bytes in the subheap,
    // widened metadata granules elsewhere); see DESIGN.md §8,
    // "Temporal extension".
    struct TemporalPass
    {
        double millis = 0.0;
        uint64_t cycles = 0;
        uint64_t residentBytes = 0;
        uint64_t heapPeak = 0;
    };
    auto runTemporalPass = [&](bool enabled) {
        auto t0 = std::chrono::steady_clock::now();
        TemporalPass pass;
        for (const Workload *w : ws) {
            for (AllocatorKind alloc : {AllocatorKind::Subheap,
                                        AllocatorKind::Wrapped}) {
                workloads::CustomRun custom;
                custom.allocator = alloc;
                custom.ifp.temporalEnabled = enabled;
                RunResult r = workloads::runWorkloadCustom(*w, custom);
                pass.cycles += r.cycles;
                pass.residentBytes += r.residentBytes;
                pass.heapPeak += r.heapPeak;
            }
        }
        pass.millis = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
        return pass;
    };
    std::fprintf(stderr, "  temporal pass (locks on)...\n");
    TemporalPass temporal_on = runTemporalPass(true);
    std::fprintf(stderr, "  temporal pass (locks off)...\n");
    TemporalPass temporal_off = runTemporalPass(false);
    double temporal_cycle_pct =
        temporal_off.cycles > 0
            ? 100.0 * (double(temporal_on.cycles) -
                       double(temporal_off.cycles)) /
                  double(temporal_off.cycles)
            : 0.0;
    int64_t temporal_meta_bytes =
        int64_t(temporal_on.residentBytes) -
        int64_t(temporal_off.residentBytes);

    double speedup =
        parallel.millis > 0.0 ? serial.millis / parallel.millis : 0.0;
    uint64_t instrs = totalInstructions(serial);
    double serial_sec = serial.millis / 1000.0;
    double guest_mips =
        serial_sec > 0.0 ? instrs / serial_sec / 1e6 : 0.0;

    utsname host{};
    uname(&host);

    TextTable table({"metric", "value"});
    table.addRow({"engine", engine});
    table.addRow({"workloads", TextTable::cell(uint64_t(ws.size()))});
    table.addRow({"runs", TextTable::cell(uint64_t(runs))});
    table.addRow({"host cores",
                  TextTable::cell(uint64_t(
                      std::thread::hardware_concurrency()))});
    table.addRow({"jobs", TextTable::cell(uint64_t(jobs))});
    table.addRow({"serial wall-clock (ms)",
                  TextTable::cell(uint64_t(serial.millis))});
    if (repeat > 1)
        table.addRow({strfmt("serial best-of-%u (ms)", repeat),
                      TextTable::cell(uint64_t(serial_best))});
    table.addRow({"parallel wall-clock (ms)",
                  TextTable::cell(uint64_t(parallel.millis))});
    table.addRow({"speedup", strfmt("%.2fx", speedup)});
    table.addRow({"guest instrs (serial pass)",
                  TextTable::cell(instrs)});
    table.addRow({"interpreter MIPS (serial)",
                  strfmt("%.1f", guest_mips)});
    for (const EngineRow &row : ablation) {
        table.addRow({strfmt("engine %s serial (ms)",
                             row.engine.c_str()),
                      TextTable::cell(uint64_t(row.millis))});
        if (repeat > 1)
            table.addRow({strfmt("engine %s best-of-%u (ms)",
                                 row.engine.c_str(), repeat),
                          TextTable::cell(uint64_t(row.bestMillis))});
    }
    table.addRow({"temporal-on pass (ms)",
                  TextTable::cell(uint64_t(temporal_on.millis))});
    table.addRow({"temporal-off pass (ms)",
                  TextTable::cell(uint64_t(temporal_off.millis))});
    table.addRow({"temporal cycle overhead",
                  strfmt("%.2f%%", temporal_cycle_pct)});
    table.addRow({"temporal metadata bytes",
                  strfmt("%lld", (long long)temporal_meta_bytes)});
    std::printf("%s", table.render().c_str());
    std::printf("\nserial and parallel passes produced bit-identical "
                "simulated results (%zu runs compared)\n", runs);

    std::ofstream f(out);
    fatal_if(!f, "cannot write %s", out.c_str());
    JsonWriter json(f, /*pretty=*/true);
    json.beginObject();
    json.field("bench", std::string_view("selfperf"));
    writeProvenance(json);
    json.field("smoke", smoke);
    json.field("engine", std::string_view(engine));
    json.field("host_cores",
               uint64_t(std::thread::hardware_concurrency()));
    json.key("host");
    json.beginObject();
    json.field("sysname", std::string_view(host.sysname));
    json.field("release", std::string_view(host.release));
    json.field("machine", std::string_view(host.machine));
    json.endObject();
    json.field("jobs", uint64_t(jobs));
    json.field("workloads", uint64_t(ws.size()));
    json.field("runs", uint64_t(runs));
    json.field("repeat", uint64_t(repeat));
    json.field("serial_ms", serial.millis);
    json.field("serial_best_ms", serial_best);
    json.field("parallel_ms", parallel.millis);
    json.field("speedup", speedup);
    json.field("runs_per_sec_serial",
               serial_sec > 0.0 ? runs / serial_sec : 0.0);
    json.field("runs_per_sec_parallel",
               parallel.millis > 0.0
                   ? runs / (parallel.millis / 1000.0)
                   : 0.0);
    json.field("guest_instructions", instrs);
    json.field("interpreter_mips_serial", guest_mips);
    json.field("identical_results", true);
    if (!ablation.empty()) {
        json.key("engine_matrix");
        json.beginArray();
        for (const EngineRow &row : ablation) {
            double sec = row.millis / 1000.0;
            double best_sec = row.bestMillis / 1000.0;
            json.beginObject();
            json.field("engine", std::string_view(row.engine));
            json.field("serial_ms", row.millis);
            json.field("serial_best_ms", row.bestMillis);
            json.field("interpreter_mips_serial",
                       sec > 0.0 ? instrs / sec / 1e6 : 0.0);
            json.field("interpreter_mips_serial_best",
                       best_sec > 0.0 ? instrs / best_sec / 1e6
                                      : 0.0);
            json.endObject();
        }
        json.endArray();
    }
    json.key("temporal_overhead");
    json.beginObject();
    json.field("runs_per_pass", uint64_t(ws.size() * 2));
    json.field("on_ms", temporal_on.millis);
    json.field("off_ms", temporal_off.millis);
    json.field("on_cycles", temporal_on.cycles);
    json.field("off_cycles", temporal_off.cycles);
    json.field("cycle_overhead_pct", temporal_cycle_pct);
    json.field("on_resident_bytes", temporal_on.residentBytes);
    json.field("off_resident_bytes", temporal_off.residentBytes);
    json.field("metadata_bytes_delta", double(temporal_meta_bytes));
    json.field("on_heap_peak", temporal_on.heapPeak);
    json.field("off_heap_peak", temporal_off.heapPeak);
    json.endObject();
    json.key("per_workload");
    json.beginArray();
    for (const WorkloadMatrix &m : serial.matrices) {
        double workload_ms = 0.0;
        uint64_t workload_instrs = 0;
        for (Config config : kMatrixConfigs) {
            const RunResult &r = matrixSlot(m, config);
            workload_ms += r.hostMillis;
            workload_instrs += r.instructions;
        }
        json.beginObject();
        json.field("workload", std::string_view(m.workload->name));
        json.field("serial_ms", workload_ms);
        json.field("guest_instructions", workload_instrs);
        json.endObject();
    }
    json.endArray();
    json.endObject();
    f << "\n";
    std::fprintf(stderr, "  wrote %s\n", out.c_str());
    return 0;
}
