/**
 * @file
 * Table 2: object metadata schemes comparison.
 *
 * Prints each scheme's constraints (base-address control, maximum
 * object size, object-count limit) as configured, then *demonstrates*
 * them with live probes against the runtime: the local-offset size
 * cliff at 1008 bytes, the subheap's power-of-2 block alignment, and
 * the global table's row capacity.
 */

#include <cstdio>

#include "ifp/config.hh"
#include "mem/guest_memory.hh"
#include "runtime/runtime.hh"
#include "support/bitops.hh"
#include "support/logging.hh"
#include "support/table.hh"

#include "bench_util.hh"

using namespace infat;

int
main(int argc, char **argv)
{
    infat::bench::StatsExport stats_export("table2_schemes", argc, argv);
    setQuiet(true);
    std::printf("====================================================\n");
    std::printf("Table 2: Object Metadata Schemes Comparison\n");
    std::printf("Reproduces: paper Table 2 + Sec. 3.3 parameters\n");
    std::printf("====================================================\n");

    TextTable table({"scheme", "base ctrl", "max size", "count limit",
                     "tag bits: meta+subobj", "use scenario"});
    table.addRow({"local offset", "-",
                  strfmt("%llu B", static_cast<unsigned long long>(
                                       IfpConfig::localMaxObjectBytes)),
                  "-",
                  strfmt("%u+%u", IfpConfig::localOffsetBits,
                         IfpConfig::localSubobjBits),
                  "small objects, locals"});
    table.addRow({"subheap", "pow2 blocks", "-", "-",
                  strfmt("%u+%u", IfpConfig::subheapCtrlRegBits,
                         IfpConfig::subheapSubobjBits),
                  "heap-allocated objects"});
    table.addRow({"global table", "-", "-",
                  strfmt("%u rows", IfpConfig::globalTableRows),
                  strfmt("%u+0", IfpConfig::globalIndexBits),
                  "global arrays, fallback"});
    std::printf("%s", table.render().c_str());

    // --- live probes ---
    GuestMemory mem;
    IfpControlRegs regs;
    Runtime runtime(mem, regs, AllocatorKind::Wrapped, true);
    runtime.init(nullptr);

    std::printf("\nprobes:\n");
    {
        RuntimeCost cost;
        IfpAllocation at_limit = runtime.ifpMalloc(1008, ir::noLayout,
                                                   cost);
        IfpAllocation over = runtime.ifpMalloc(1009, ir::noLayout,
                                               cost);
        std::printf("  wrapped alloc of 1008 B -> %s scheme\n",
                    toString(at_limit.ptr.scheme()));
        std::printf("  wrapped alloc of 1009 B -> %s scheme "
                    "(fallback)\n",
                    toString(over.ptr.scheme()));
    }
    {
        GuestMemory mem2;
        IfpControlRegs regs2;
        Runtime sub(mem2, regs2, AllocatorKind::Subheap, true);
        sub.init(nullptr);
        RuntimeCost cost;
        IfpAllocation a = sub.ifpMalloc(48, ir::noLayout, cost);
        IfpAllocation b = sub.ifpMalloc(48, ir::noLayout, cost);
        const SubheapCtrlReg &ctrl =
            regs2.subheap[a.ptr.subheapCtrlIndex()];
        GuestAddr block_a =
            roundDown(a.ptr.addr(), 1ULL << ctrl.blockOrderLog2);
        GuestAddr block_b =
            roundDown(b.ptr.addr(), 1ULL << ctrl.blockOrderLog2);
        std::printf("  subheap: two 48 B objects share one %llu KiB "
                    "aligned block: %s\n",
                    (1ULL << ctrl.blockOrderLog2) / 1024,
                    block_a == block_b ? "yes" : "NO");
        IfpAllocation big = sub.ifpMalloc(100000, ir::noLayout, cost);
        std::printf("  subheap alloc of 100000 B -> %s "
                    "(order above block cap falls back)\n",
                    toString(big.ptr.scheme()));
    }
    {
        // Global table capacity: rows are a hard limit (12 tag bits).
        std::printf("  global table rows: %u (row size %u B, total "
                    "%u KiB reserved)\n",
                    IfpConfig::globalTableRows, IfpConfig::globalRowBytes,
                    IfpConfig::globalTableRows *
                        IfpConfig::globalRowBytes / 1024);
    }
    return 0;
}
