/**
 * @file
 * Section 5.2.2 cache discussion: L1D behaviour of the thrashing
 * workloads.
 *
 * The paper singles out health and ft: their baselines already thrash
 * the L1D, the wrapped allocator's per-object metadata inflates misses
 * by ~95%, and the subheap scheme's shared per-block metadata keeps
 * the increase far smaller. This harness prints the measured miss
 * counts and increases for every workload, with health and ft first.
 */

#include "bench/bench_util.hh"

using namespace infat;
using namespace infat::bench;

int
main(int argc, char **argv)
{
    infat::bench::StatsExport stats_export("cache_effects", argc, argv);
    setQuiet(true);
    printHeader("Section 5.2.2: L1D Cache Effects",
                "paper Sec. 5.2.2 (health/ft: wrapped +93%/+96% "
                "misses, subheap +26%/~0%)");

    TextTable table({"benchmark", "base miss-rate", "base misses",
                     "subheap dMiss", "wrapped dMiss"});
    auto add_row = [&](const WorkloadMatrix &m) {
        double base_rate =
            ratio(m.baseline.l1dMisses,
                  m.baseline.l1dMisses + m.baseline.l1dHits);
        table.addRow(
            {m.workload->name, TextTable::cellPct(base_rate, 2),
             TextTable::cell(m.baseline.l1dMisses),
             TextTable::cellPct(
                 overhead(m.subheap.l1dMisses, m.baseline.l1dMisses),
                 1),
             TextTable::cellPct(
                 overhead(m.wrapped.l1dMisses, m.baseline.l1dMisses),
                 1)});
    };

    // The paper's two call-outs first, then the rest.
    std::vector<const Workload *> ws = {workloads::byName("health"),
                                        workloads::byName("ft")};
    for (const Workload &w : workloads::all()) {
        if (std::string(w.name) == "health" ||
            std::string(w.name) == "ft")
            continue;
        ws.push_back(&w);
    }
    ThreadPool pool(poolThreadsForJobs(parseJobs(argc, argv)));
    for (const WorkloadMatrix &m : runMatrices(ws, pool))
        add_row(m);
    std::printf("%s", table.render().c_str());
    std::printf("\npaper reference: metadata sharing in the subheap "
                "scheme reduces the metadata footprint and therefore "
                "instrumented cache misses\n");
    return 0;
}
