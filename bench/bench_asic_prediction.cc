/**
 * @file
 * Section 5.2.4: performance prediction for an ASIC implementation.
 *
 * The paper argues an out-of-order, superscalar ASIC would hide most
 * of the single-cycle IFP arithmetic (the bulk of the added dynamic
 * instructions) but not the promote's metadata-load latency, so
 * promote-heavy programs keep most of their overhead while
 * arithmetic-heavy programs improve. The machine model's `superscalar`
 * switch implements exactly that: ifpadd/ifpidx/ifpbnd issue for free,
 * memory and promote latency remain.
 */

#include "bench/bench_util.hh"

using namespace infat;
using namespace infat::bench;
using workloads::CustomRun;
using workloads::runWorkloadCustom;

int
main(int argc, char **argv)
{
    infat::bench::StatsExport stats_export("asic_prediction", argc, argv);
    setQuiet(true);
    printHeader("Section 5.2.4: ASIC (superscalar) prediction",
                "paper Sec. 5.2.4");

    TextTable table({"benchmark", "in-order (FPGA model)",
                     "superscalar (ASIC model)", "promote share"});
    std::vector<double> fpga_ratios, asic_ratios;
    for (const Workload &w : workloads::all()) {
        RunResult base = runWorkload(w, Config::Baseline);
        CustomRun fpga;
        RunResult r_fpga = runWorkloadCustom(w, fpga);

        // The ASIC comparison must normalize against an ASIC
        // *baseline* (same L2), or the cache upgrade masquerades as
        // IFP speedup.
        CustomRun asic_base;
        asic_base.instrumented = false;
        asic_base.useL2 = true;
        asic_base.superscalar = true;
        RunResult r_asic_base = runWorkloadCustom(w, asic_base);
        CustomRun asic = asic_base;
        asic.instrumented = true;
        RunResult r_asic = runWorkloadCustom(w, asic);

        fpga_ratios.push_back(ratio(r_fpga.cycles, base.cycles));
        asic_ratios.push_back(
            ratio(r_asic.cycles, r_asic_base.cycles));
        table.addRow(
            {w.name,
             TextTable::cellPct(overhead(r_fpga.cycles, base.cycles),
                                1),
             TextTable::cellPct(
                 overhead(r_asic.cycles, r_asic_base.cycles), 1),
             TextTable::cellPct(
                 ratio(r_fpga.promoteInstrs, base.instructions), 2)});
    }
    table.addRow({"GEO-MEAN",
                  TextTable::cellPct(geomean(fpga_ratios) - 1.0, 1),
                  TextTable::cellPct(geomean(asic_ratios) - 1.0, 1),
                  ""});
    std::printf("%s", table.render().c_str());
    std::printf("\npaper reference: an OoO superscalar core hides the "
                "arithmetic; programs whose promotes dominate stay "
                "overhead-bound (data dependencies on pointer "
                "values).\n");
    return 0;
}
