/**
 * @file
 * Figure 13 / §5.3: LUT increase in the modified processor.
 *
 * Structural area model (see src/ifp/area_model.hh for the
 * substitution rationale): per-pipeline-stage vanilla LUTs and the
 * LUT growth from the In-Fat Pointer hardware, plus the IFP-unit
 * internal breakdown (layout walker vs. the three metadata schemes)
 * and the §5.3 trade-off of dropping the walker.
 */

#include <cstdio>

#include "ifp/area_model.hh"
#include "support/table.hh"

#include "bench_util.hh"

using namespace infat;

int
main(int argc, char **argv)
{
    infat::bench::StatsExport stats_export("fig13_area", argc, argv);
    AreaModel model;

    std::printf("====================================================\n");
    std::printf("Figure 13: LUT Increase in the Modified Processor\n");
    std::printf("Reproduces: paper Fig. 13 / Section 5.3\n");
    std::printf("====================================================\n");

    TextTable table({"stage", "vanilla LUTs", "growth LUTs"});
    for (const StageArea &stage : model.stages()) {
        table.addRow({stage.stage,
                      TextTable::cell(static_cast<uint64_t>(
                          stage.vanillaLuts)),
                      TextTable::cell(static_cast<uint64_t>(
                          stage.growthLuts))});
    }
    table.addRow({"TOTAL",
                  TextTable::cell(
                      static_cast<uint64_t>(model.vanillaTotal())),
                  TextTable::cell(
                      static_cast<uint64_t>(model.growthTotal()))});
    std::printf("%s", table.render().c_str());

    double growth_pct = 100.0 * model.growthTotal() /
                        model.vanillaTotal();
    std::printf("\nLUT growth: %.0f%% (paper: ~60%%, 37,088 -> "
                "59,261 LUTs)\n\n", growth_pct);

    std::printf("IFP unit decomposition:\n");
    TextTable unit({"component", "LUTs", "share"});
    double unit_total = 0;
    for (const AreaItem &item : model.ifpUnitBreakdown())
        unit_total += item.luts;
    for (const AreaItem &item : model.ifpUnitBreakdown()) {
        unit.addRow({item.component,
                     TextTable::cell(static_cast<uint64_t>(item.luts)),
                     TextTable::cellPct(item.luts / unit_total, 0)});
    }
    std::printf("%s", unit.render().c_str());
    std::printf("\npaper reference: layout walker 3,059 LUTs (36%% of "
                "the IFP unit), schemes 2,501 (30%%)\n");

    std::printf("\nSection 5.3 trade-off: dropping the layout walker "
                "cuts growth to %.0f%% of vanilla\n",
                100.0 * model.growthWithoutWalker() /
                    model.vanillaTotal());
    return 0;
}
