/**
 * @file
 * Figure 11: dynamic instruction counts for the instructions In-Fat
 * Pointer introduces, split into the paper's three categories —
 * promote, IFP arithmetic (tag/bounds updates and metadata
 * maintenance), and bounds load/store (callee-saved ldbnd/stbnd) —
 * normalized to the baseline instruction count. Shown for both
 * allocator configurations.
 */

#include "bench/bench_util.hh"

using namespace infat;
using namespace infat::bench;

int
main(int argc, char **argv)
{
    infat::bench::StatsExport stats_export("fig11_instrmix", argc, argv);
    setQuiet(true);
    printHeader("Figure 11: IFP Instruction Mix (% of baseline instrs)",
                "paper Fig. 11");

    TextTable table({"benchmark", "sub:promote", "sub:arith",
                     "sub:bndldst", "wrap:promote", "wrap:arith",
                     "wrap:bndldst"});
    ThreadPool pool(poolThreadsForJobs(parseJobs(argc, argv)));
    for (const WorkloadMatrix &m : runAllMatrices(pool)) {
        double base = static_cast<double>(m.baseline.instructions);
        auto pct = [&](uint64_t v) {
            return TextTable::cellPct(static_cast<double>(v) / base, 2);
        };
        table.addRow({m.workload->name, pct(m.subheap.promoteInstrs),
                      pct(m.subheap.ifpArith), pct(m.subheap.bndLdSt),
                      pct(m.wrapped.promoteInstrs),
                      pct(m.wrapped.ifpArith), pct(m.wrapped.bndLdSt)});
    }
    std::printf("%s", table.render().c_str());
    std::printf("\npaper reference: promotes are <2%% of executed "
                "instructions in 10 of 18 benchmarks; arithmetic "
                "dominates the added instructions\n");
    return 0;
}
