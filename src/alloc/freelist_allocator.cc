#include "alloc/freelist_allocator.hh"

#include <algorithm>

#include "support/bitops.hh"
#include "support/logging.hh"

namespace infat {

FreeListAllocator::FreeListAllocator(GuestAddr arena_base,
                                     GuestAddr arena_limit)
    // Chunks sit at 16k+8 so user pointers (chunk + 8-byte header)
    // are 16-aligned, as glibc lays them out.
    : arenaBase_(roundUp(arena_base, alignment) + alignment -
                 headerBytes),
      arenaLimit_(arena_limit), brk_(arenaBase_), peak_(arenaBase_),
      stats_("freelist")
{
    fatal_if(arenaBase_ >= arenaLimit_, "empty freelist arena");
}

GuestAddr
FreeListAllocator::allocate(uint64_t size)
{
    uint64_t total = std::max(roundUp(size + headerBytes, alignment),
                              minChunkBytes);
    stats_.counter("allocs")++;

    // Address-ordered first fit over the free list, with splitting.
    for (auto it = freeChunks_.begin(); it != freeChunks_.end(); ++it) {
        if (it->second < total)
            continue;
        GuestAddr chunk = it->first;
        uint64_t chunk_size = it->second;
        freeChunks_.erase(it);
        if (chunk_size - total >= headerBytes + alignment) {
            freeChunks_[chunk + total] = chunk_size - total;
        } else {
            total = chunk_size; // absorb the remainder
        }
        GuestAddr user = chunk + headerBytes;
        live_[user] = total;
        liveBytes_ += total;
        stats_.counter("reuse_allocs")++;
        return user;
    }

    // Grow the arena.
    if (brk_ + total > arenaLimit_) {
        stats_.counter("failed_allocs")++;
        return 0;
    }
    GuestAddr chunk = brk_;
    brk_ += total;
    if (brk_ > peak_)
        peak_ = brk_;
    GuestAddr user = chunk + headerBytes;
    live_[user] = total;
    liveBytes_ += total;
    return user;
}

void
FreeListAllocator::deallocate(GuestAddr addr)
{
    if (addr == 0)
        return;
    auto it = live_.find(addr);
    panic_if(it == live_.end(), "free of unknown pointer %#llx",
             static_cast<unsigned long long>(addr));
    GuestAddr chunk = addr - headerBytes;
    uint64_t size = it->second;
    live_.erase(it);
    liveBytes_ -= size;
    stats_.counter("frees")++;

    // Coalesce with neighbours.
    auto [ins, ok] = freeChunks_.emplace(chunk, size);
    panic_if(!ok, "double free at %#llx",
             static_cast<unsigned long long>(addr));
    if (ins != freeChunks_.begin()) {
        auto prev = std::prev(ins);
        if (prev->first + prev->second == ins->first) {
            prev->second += ins->second;
            freeChunks_.erase(ins);
            ins = prev;
        }
    }
    auto next = std::next(ins);
    if (next != freeChunks_.end() &&
        ins->first + ins->second == next->first) {
        ins->second += next->second;
        freeChunks_.erase(next);
    }
    // Return a trailing chunk to the brk so footprints can shrink.
    if (ins->first + ins->second == brk_) {
        brk_ = ins->first;
        freeChunks_.erase(ins);
    }
}

uint64_t
FreeListAllocator::usableSize(GuestAddr addr) const
{
    auto it = live_.find(addr);
    panic_if(it == live_.end(), "usableSize of unknown pointer");
    return it->second - headerBytes;
}

} // namespace infat
