/**
 * @file
 * Binary buddy allocator for power-of-2-sized, aligned memory blocks.
 *
 * The subheap metadata scheme (paper §3.3.2) requires objects to live
 * inside power-of-2-sized *and aligned* memory blocks so that hardware
 * can find the block base by masking the pointer. The paper's subheap
 * allocator is "a pool allocator on top of a buddy allocator" (§4.2.1);
 * this class is that buddy layer.
 */

#ifndef INFAT_ALLOC_BUDDY_ALLOCATOR_HH
#define INFAT_ALLOC_BUDDY_ALLOCATOR_HH

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "mem/address_space.hh"
#include "support/stats.hh"

namespace infat {

class BuddyAllocator
{
  public:
    /**
     * Manage [region_base, region_base + 2^region_order_log2). The base
     * must itself be aligned to the region size so every block the buddy
     * scheme produces is naturally aligned.
     */
    BuddyAllocator(GuestAddr region_base, unsigned region_order_log2,
                   unsigned min_order_log2);

    /** Allocate a block of exactly 2^order bytes; 0 on exhaustion. */
    GuestAddr allocate(unsigned order);

    /** Free a block previously returned for @p order. */
    void deallocate(GuestAddr addr, unsigned order);

    /** Bytes spanned from region base to highest block ever in use. */
    uint64_t peakFootprint() const { return peak_; }

    uint64_t liveBytes() const { return liveBytes_; }

    unsigned minOrder() const { return minOrder_; }
    unsigned maxOrder() const { return maxOrder_; }

    StatGroup &stats() { return stats_; }

  private:
    GuestAddr buddyOf(GuestAddr addr, unsigned order) const;

    GuestAddr base_;
    unsigned maxOrder_;
    unsigned minOrder_;

    /** Free blocks per order. */
    std::vector<std::set<GuestAddr>> freeBlocks_;
    uint64_t liveBytes_ = 0;
    uint64_t peak_ = 0;
    StatGroup stats_;
};

} // namespace infat

#endif // INFAT_ALLOC_BUDDY_ALLOCATOR_HH
