#include "alloc/buddy_allocator.hh"

#include "support/bitops.hh"
#include "support/logging.hh"

namespace infat {

BuddyAllocator::BuddyAllocator(GuestAddr region_base,
                               unsigned region_order_log2,
                               unsigned min_order_log2)
    : base_(region_base), maxOrder_(region_order_log2),
      minOrder_(min_order_log2), stats_("buddy")
{
    fatal_if(minOrder_ > maxOrder_, "buddy min order above region order");
    fatal_if(base_ & mask(maxOrder_),
             "buddy region base not aligned to region size");
    freeBlocks_.resize(maxOrder_ + 1);
    freeBlocks_[maxOrder_].insert(base_);
}

GuestAddr
BuddyAllocator::buddyOf(GuestAddr addr, unsigned order) const
{
    return ((addr - base_) ^ (GuestAddr{1} << order)) + base_;
}

GuestAddr
BuddyAllocator::allocate(unsigned order)
{
    fatal_if(order < minOrder_ || order > maxOrder_,
             "buddy order %u out of [%u, %u]", order, minOrder_, maxOrder_);
    stats_.counter("allocs")++;

    unsigned avail = order;
    while (avail <= maxOrder_ && freeBlocks_[avail].empty())
        ++avail;
    if (avail > maxOrder_) {
        stats_.counter("failed_allocs")++;
        return 0;
    }

    GuestAddr block = *freeBlocks_[avail].begin();
    freeBlocks_[avail].erase(freeBlocks_[avail].begin());
    while (avail > order) {
        --avail;
        freeBlocks_[avail].insert(buddyOf(block, avail));
        stats_.counter("splits")++;
    }
    liveBytes_ += GuestAddr{1} << order;
    uint64_t end_off = (block - base_) + (GuestAddr{1} << order);
    if (end_off > peak_)
        peak_ = end_off;
    return block;
}

void
BuddyAllocator::deallocate(GuestAddr addr, unsigned order)
{
    panic_if(addr & mask(order), "buddy free of unaligned block");
    liveBytes_ -= GuestAddr{1} << order;
    stats_.counter("frees")++;

    while (order < maxOrder_) {
        GuestAddr buddy = buddyOf(addr, order);
        auto it = freeBlocks_[order].find(buddy);
        if (it == freeBlocks_[order].end())
            break;
        freeBlocks_[order].erase(it);
        stats_.counter("merges")++;
        addr = std::min(addr, buddy);
        ++order;
    }
    bool inserted = freeBlocks_[order].insert(addr).second;
    panic_if(!inserted, "buddy double free at %#llx",
             static_cast<unsigned long long>(addr));
}

} // namespace infat
