/**
 * @file
 * First-fit free-list allocator modelling glibc malloc.
 *
 * The paper's "wrapped allocator" (§4.2.1) sits on top of libc's
 * malloc/free. What matters for the reproduction is the cost structure
 * glibc imposes: a 16-byte boundary tag per allocation, 16-byte
 * alignment, address-ordered first-fit reuse with coalescing, and linear
 * sbrk-style growth of the arena. This model provides exactly those.
 *
 * The allocator manages guest address space only; all bookkeeping lives
 * in host-side structures, but the *layout* (headers occupying guest
 * bytes between objects) is reproduced so memory-overhead measurements
 * see the same packing as the paper's baseline.
 */

#ifndef INFAT_ALLOC_FREELIST_ALLOCATOR_HH
#define INFAT_ALLOC_FREELIST_ALLOCATOR_HH

#include <cstdint>
#include <map>

#include "mem/address_space.hh"
#include "support/stats.hh"

namespace infat {

class FreeListAllocator
{
  public:
    /** Per-allocation boundary-tag overhead, as in glibc (the next
     *  chunk's prev_size field overlays user data, so 8 bytes). */
    static constexpr uint64_t headerBytes = 8;
    static constexpr uint64_t alignment = 16;
    /** Smallest chunk glibc hands out. */
    static constexpr uint64_t minChunkBytes = 32;

    FreeListAllocator(GuestAddr arena_base, GuestAddr arena_limit);

    /** Allocate @p size usable bytes; returns 0 on exhaustion. */
    GuestAddr allocate(uint64_t size);

    /** Free a pointer previously returned by allocate(). */
    void deallocate(GuestAddr addr);

    /** Usable size of a live allocation. */
    uint64_t usableSize(GuestAddr addr) const;

    /**
     * Whether @p addr is the base of a live allocation. The runtime's
     * free paths consult this before deallocate() so an invalid guest
     * free (double free, interior pointer, wild address) becomes a
     * guest-visible event instead of a host panic.
     */
    bool isLive(GuestAddr addr) const { return live_.count(addr) != 0; }

    /** High-water mark of arena consumption, headers included. */
    uint64_t peakFootprint() const { return peak_ - arenaBase_; }

    uint64_t liveBytes() const { return liveBytes_; }
    uint64_t liveAllocations() const { return live_.size(); }

    StatGroup &stats() { return stats_; }

  private:
    struct FreeChunk
    {
        uint64_t size; // total bytes including header
    };

    GuestAddr arenaBase_;
    GuestAddr arenaLimit_;
    GuestAddr brk_;  // first never-used byte
    GuestAddr peak_; // high-water mark of brk_

    /** Address-ordered free chunks (address -> total size). */
    std::map<GuestAddr, uint64_t> freeChunks_;
    /** Live allocations (user address -> total chunk size). */
    std::map<GuestAddr, uint64_t> live_;

    uint64_t liveBytes_ = 0;
    StatGroup stats_;
};

} // namespace infat

#endif // INFAT_ALLOC_FREELIST_ALLOCATOR_HH
