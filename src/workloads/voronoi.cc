/**
 * @file
 * Olden voronoi — documented substitution (DESIGN.md §4).
 *
 * The original builds a Voronoi diagram with a divide-and-conquer
 * Delaunay triangulation over quad-edge records. What the evaluation
 * measures, though, is pointer behaviour: a point set in a balanced
 * tree, heavy edge-record allocation, and a large share of promotes
 * taking legacy pointers. This substitute keeps those: a kd-tree of
 * individually-allocated points, nearest-neighbour searches that walk
 * the tree, and malloc'd edge records linking each point to its
 * neighbour; point coordinates come from the legacy rand() in libc.
 */

#include "vm/libc_model.hh"
#include "workloads/dsl.hh"
#include "workloads/workload.hh"

namespace infat {
namespace workloads {

using namespace ir;

void
buildVoronoi(Module &m)
{
    declareLibc(m);
    TypeContext &tc = m.types();
    const Type *i64 = tc.i64();
    const Type *f64 = tc.f64();

    StructType *point = tc.createStruct("Vertex");
    // x, y, left, right (kd-tree links)
    point->setBody({f64, f64, tc.ptr(point), tc.ptr(point)});
    const Type *pointPtr = tc.ptr(point);

    StructType *edge = tc.createStruct("Edge");
    // from, to, length, next (global edge list)
    edge->setBody({pointPtr, pointPtr, f64, tc.ptr(edge)});
    const Type *edgePtr = tc.ptr(edge);

    constexpr int64_t nPoints = 900;

    // kd-tree insert (axis alternates by depth parity).
    {
        FunctionBuilder fb(m, "kd_insert",
                           {tc.ptr(pointPtr), pointPtr, i64},
                           tc.voidTy());
        Value slot = fb.arg(0);
        Value p = fb.arg(1);
        Value depth = fb.arg(2);
        Value cur = fb.load(slot);
        IfElse empty(fb, fb.eq(cur, fb.iconst(0)));
        fb.store(p, slot);
        fb.retVoid();
        empty.otherwise();
        Value axis = fb.and_(depth, fb.iconst(1));
        Value key_p = fb.select(fb.eq(axis, fb.iconst(0)),
                                fb.loadField(p, 0), fb.loadField(p, 1));
        Value key_c = fb.select(fb.eq(axis, fb.iconst(0)),
                                fb.loadField(cur, 0),
                                fb.loadField(cur, 1));
        Value go_left = fb.fcmp(FCmpPred::Lt, key_p, key_c);
        IfElse left(fb, go_left);
        fb.call("kd_insert",
                {fb.fieldPtr(cur, 2), p, fb.addImm(depth, 1)});
        left.otherwise();
        fb.call("kd_insert",
                {fb.fieldPtr(cur, 3), p, fb.addImm(depth, 1)});
        left.finish();
        fb.retVoid();
        empty.finish();
        fb.trap(1);
    }

    {
        FunctionBuilder fb(m, "dist2", {pointPtr, pointPtr}, f64);
        Value a = fb.arg(0);
        Value b = fb.arg(1);
        Value dx = fb.fsub(fb.loadField(a, 0), fb.loadField(b, 0));
        Value dy = fb.fsub(fb.loadField(a, 1), fb.loadField(b, 1));
        fb.ret(fb.fadd(fb.fmul(dx, dx), fb.fmul(dy, dy)));
    }

    // Nearest neighbour to q in the subtree, excluding q itself.
    // Returns the best point; best-so-far squared distance threaded
    // through memory (out-params keep bounds flowing).
    {
        FunctionBuilder fb(m, "kd_nn",
                           {pointPtr, pointPtr, i64, tc.ptr(pointPtr),
                            tc.ptr(f64)},
                           tc.voidTy());
        Value node = fb.arg(0);
        Value q = fb.arg(1);
        Value depth = fb.arg(2);
        Value best_out = fb.arg(3);
        Value best_d2 = fb.arg(4);
        IfElse null_check(fb, fb.eq(node, fb.iconst(0)));
        fb.retVoid();
        null_check.otherwise();
        {
            IfElse not_self(fb, fb.ne(node, q));
            Value d2 = fb.call("dist2", {node, q});
            IfElse closer(fb,
                          fb.fcmp(FCmpPred::Lt, d2, fb.load(best_d2)));
            fb.store(d2, best_d2);
            fb.store(node, best_out);
            closer.finish();
            not_self.finish();
        }
        Value axis = fb.and_(depth, fb.iconst(1));
        Value key_q = fb.select(fb.eq(axis, fb.iconst(0)),
                                fb.loadField(q, 0), fb.loadField(q, 1));
        Value key_n = fb.select(fb.eq(axis, fb.iconst(0)),
                                fb.loadField(node, 0),
                                fb.loadField(node, 1));
        Value diff = fb.fsub(key_q, key_n);
        Value d1 = fb.addImm(depth, 1);
        IfElse side(fb, fb.fcmp(FCmpPred::Lt, diff, fb.fconst(0.0)));
        fb.call("kd_nn", {fb.loadField(node, 2), q, d1, best_out,
                          best_d2});
        // Cross the split when the slab could contain a closer point.
        {
            IfElse cross(fb, fb.fcmp(FCmpPred::Lt,
                                     fb.fmul(diff, diff),
                                     fb.load(best_d2)));
            fb.call("kd_nn", {fb.loadField(node, 3), q, d1, best_out,
                              best_d2});
            cross.finish();
        }
        side.otherwise();
        fb.call("kd_nn", {fb.loadField(node, 3), q, d1, best_out,
                          best_d2});
        {
            IfElse cross(fb, fb.fcmp(FCmpPred::Lt,
                                     fb.fmul(diff, diff),
                                     fb.load(best_d2)));
            fb.call("kd_nn", {fb.loadField(node, 2), q, d1, best_out,
                              best_d2});
            cross.finish();
        }
        side.finish();
        fb.retVoid();
        null_check.finish();
        fb.trap(2);
    }

    {
        FunctionBuilder fb(m, "main", {}, i64);
        fb.call("srand", {fb.iconst(4242)});
        Value points = fb.mallocTyped(pointPtr, fb.iconst(nPoints));
        Value rootp = fb.stackAlloc(pointPtr);
        fb.store(fb.nullPtr(point), rootp);
        {
            ForLoop i(fb, fb.iconst(0), fb.iconst(nPoints));
            Value p = fb.mallocTyped(point);
            auto unit_rand = [&]() {
                return fb.fdiv(fb.sitofp(fb.and_(fb.call("rand"),
                                                 fb.iconst(0xfffff))),
                               fb.fconst(1048576.0));
            };
            fb.storeField(p, 0, unit_rand());
            fb.storeField(p, 1, unit_rand());
            fb.storeField(p, 2, fb.nullPtr(point));
            fb.storeField(p, 3, fb.nullPtr(point));
            fb.store(p, fb.elemPtr(points, i.index()));
            fb.call("kd_insert", {rootp, p, fb.iconst(0)});
            i.finish();
        }
        // Build nearest-neighbour edge records.
        Value edges = fb.var(edgePtr);
        fb.assign(edges, fb.nullPtr(edge));
        Value total = fb.var(f64);
        fb.assign(total, fb.fconst(0.0));
        {
            ForLoop i(fb, fb.iconst(0), fb.iconst(nPoints));
            Value q = fb.load(fb.elemPtr(points, i.index()));
            Value best = fb.stackAlloc(pointPtr);
            Value best_d2 = fb.stackAlloc(f64);
            fb.store(fb.nullPtr(point), best);
            fb.store(fb.fconst(1e18), best_d2);
            fb.call("kd_nn", {fb.load(rootp), q, fb.iconst(0), best,
                              best_d2});
            Value e = fb.mallocTyped(edge);
            fb.storeField(e, 0, q);
            fb.storeField(e, 1, fb.load(best));
            Value len = fb.call("sqrt", {fb.load(best_d2)});
            fb.storeField(e, 2, len);
            fb.storeField(e, 3, edges);
            fb.assign(edges, e);
            fb.assign(total, fb.fadd(total, len));
            i.finish();
        }
        fb.ret(fb.fptosi(fb.fmul(total, fb.fconst(1024.0))));
    }
}

} // namespace workloads
} // namespace infat
