/**
 * @file
 * PtrDist yacr2: VLSI channel routing, simplified to left-edge track
 * assignment under vertical constraints.
 *
 * Preserved behaviours: few heap allocations, almost all of them
 * whole arrays (terminal rows, per-net interval records, the vertical
 * constraint lists), with array-scanning inner loops — the same shape
 * that makes yacr2's promote traffic almost entirely valid heap
 * pointers in Table 4. The input channel is embedded (the paper also
 * embeds yacr2's input to work around a parsing bug).
 */

#include "vm/libc_model.hh"
#include "workloads/dsl.hh"
#include "workloads/workload.hh"

namespace infat {
namespace workloads {

using namespace ir;

void
buildYacr2(Module &m)
{
    declareLibc(m);
    TypeContext &tc = m.types();
    const Type *i64 = tc.i64();

    constexpr int64_t nCols = 160;
    constexpr int64_t nNets = 48;
    constexpr int64_t maxTracks = 64;
    constexpr int64_t rounds = 12;

    StructType *interval = tc.createStruct("NetInterval");
    // net id, left, right, assigned track
    interval->setBody({i64, i64, i64, i64});
    const Type *ivPtr = tc.ptr(interval);

    // yacr2 keeps the channel description in globals; the router
    // reloads these pointers every pass (its promote traffic).
    GlobalId ivs_g = m.addGlobal("g_intervals", ivPtr);
    GlobalId tracks_g = m.addGlobal("g_track_right", tc.ptr(i64));
    GlobalId above_g = m.addGlobal("g_above", tc.ptr(i64));

    // Greedy left-edge assignment with a vertical-constraint check:
    // net A must be above net B if A is on top of B in some column.
    {
        FunctionBuilder fb(m, "assign_tracks",
                           {ivPtr, i64, tc.ptr(i64), tc.ptr(i64)}, i64);
        Value ivs = fb.arg(0);
        Value count = fb.arg(1);
        Value track_right = fb.arg(2); // per-track rightmost end
        Value above = fb.arg(3);       // above[a*nNets+b] != 0
        Value used = fb.var(i64);
        fb.assign(used, fb.iconst(0));
        ForLoop n(fb, fb.iconst(0), count);
        {
            Value iv = fb.elemPtr(ivs, n.index());
            Value left = fb.loadField(iv, 1);
            Value id = fb.loadField(iv, 0);
            Value placed = fb.var(i64);
            fb.assign(placed, fb.iconst(0));
            ForLoop t(fb, fb.iconst(0), fb.iconst(maxTracks));
            {
                IfElse done(fb, placed);
                done.otherwise();
                Value fits = fb.slt(
                    fb.load(fb.elemPtr(track_right, t.index())), left);
                // Constraint: every net already on a lower track must
                // not be required to be above this net.
                Value ok = fb.var(i64);
                fb.assign(ok, fb.iconst(1));
                ForLoop prev(fb, fb.iconst(0), n.index());
                Value p_iv = fb.elemPtr(ivs, prev.index());
                Value p_track = fb.loadField(p_iv, 3);
                IfElse lower(fb, fb.and_(fb.sge(p_track, fb.iconst(0)),
                                         fb.slt(p_track, t.index())));
                Value p_id = fb.loadField(p_iv, 0);
                Value key = fb.add(fb.mulImm(p_id, nNets), id);
                Value must_above = fb.load(fb.elemPtr(above, key));
                IfElse conflict(fb, must_above);
                fb.assign(ok, fb.iconst(0));
                conflict.finish();
                lower.finish();
                prev.finish();

                IfElse take(fb, fb.and_(fits, ok));
                fb.storeField(iv, 3, t.index());
                fb.store(fb.loadField(iv, 2),
                         fb.elemPtr(track_right, t.index()));
                fb.assign(placed, fb.iconst(1));
                Value t1 = fb.addImm(t.index(), 1);
                IfElse grows(fb, fb.sgt(t1, used));
                fb.assign(used, t1);
                grows.finish();
                take.finish();
                done.finish();
            }
            t.finish();
        }
        n.finish();
        fb.ret(used);
    }

    {
        FunctionBuilder fb(m, "main", {}, i64);
        fb.call("srand", {fb.iconst(77)});
        // Terminal rows (top/bottom net id per column, 0 = empty).
        Value top = fb.mallocTyped(i64, fb.iconst(nCols));
        Value bot = fb.mallocTyped(i64, fb.iconst(nCols));
        {
            ForLoop c(fb, fb.iconst(0), fb.iconst(nCols));
            fb.store(fb.srem(fb.call("rand"), fb.iconst(nNets)),
                     fb.elemPtr(top, c.index()));
            fb.store(fb.srem(fb.call("rand"), fb.iconst(nNets)),
                     fb.elemPtr(bot, c.index()));
            c.finish();
        }
        // Net intervals from terminal extents.
        Value ivs = fb.mallocTyped(interval, fb.iconst(nNets));
        {
            ForLoop n(fb, fb.iconst(0), fb.iconst(nNets));
            Value iv = fb.elemPtr(ivs, n.index());
            fb.storeField(iv, 0, n.index());
            fb.storeField(iv, 1, fb.iconst(nCols));
            fb.storeField(iv, 2, fb.iconst(-1));
            fb.storeField(iv, 3, fb.iconst(-1));
            n.finish();
        }
        {
            ForLoop c(fb, fb.iconst(0), fb.iconst(nCols));
            auto extend = [&](Value row) {
                Value id = fb.load(fb.elemPtr(row, c.index()));
                Value iv = fb.elemPtr(ivs, id);
                IfElse new_left(fb, fb.slt(c.index(),
                                           fb.loadField(iv, 1)));
                fb.storeField(iv, 1, c.index());
                new_left.finish();
                IfElse new_right(fb, fb.sgt(c.index(),
                                            fb.loadField(iv, 2)));
                fb.storeField(iv, 2, c.index());
                new_right.finish();
            };
            extend(top);
            extend(bot);
            c.finish();
        }
        // Vertical constraint matrix: top net above bottom net.
        Value above = fb.mallocTyped(i64, fb.iconst(nNets * nNets));
        fb.call("memset", {fb.opaqueCast(above), fb.iconst(0),
                           fb.iconst(nNets * nNets * 8)});
        {
            ForLoop c(fb, fb.iconst(0), fb.iconst(nCols));
            Value t_id = fb.load(fb.elemPtr(top, c.index()));
            Value b_id = fb.load(fb.elemPtr(bot, c.index()));
            IfElse differ(fb, fb.ne(t_id, b_id));
            fb.store(fb.iconst(1),
                     fb.elemPtr(above,
                                fb.add(fb.mulImm(t_id, nNets), b_id)));
            differ.finish();
            c.finish();
        }

        Value track_right = fb.mallocTyped(i64, fb.iconst(maxTracks));
        fb.store(ivs, fb.globalAddr(ivs_g));
        fb.store(track_right, fb.globalAddr(tracks_g));
        fb.store(above, fb.globalAddr(above_g));
        Value check = fb.var(i64);
        fb.assign(check, fb.iconst(0));
        ForLoop r(fb, fb.iconst(0), fb.iconst(rounds));
        {
            // Reload the channel description from the globals, as the
            // original does per routed channel.
            Value ivs_l = fb.load(fb.globalAddr(ivs_g));
            Value tracks_l = fb.load(fb.globalAddr(tracks_g));
            Value above_l = fb.load(fb.globalAddr(above_g));
            // Reset and re-route (the original routes many channels).
            ForLoop t(fb, fb.iconst(0), fb.iconst(maxTracks));
            fb.store(fb.iconst(-1), fb.elemPtr(tracks_l, t.index()));
            t.finish();
            ForLoop n2(fb, fb.iconst(0), fb.iconst(nNets));
            fb.storeField(fb.elemPtr(ivs_l, n2.index()), 3,
                          fb.iconst(-1));
            n2.finish();
            Value tracks = fb.call("assign_tracks",
                                   {ivs_l, fb.iconst(nNets), tracks_l,
                                    above_l});
            fb.assign(check, fb.add(fb.mulImm(check, 7), tracks));
        }
        r.finish();
        fb.ret(check);
    }
}

} // namespace workloads
} // namespace infat
