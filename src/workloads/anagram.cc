/**
 * @file
 * PtrDist anagram: find word pairs that exactly cover a phrase's
 * letters.
 *
 * Preserved behaviours: the dictionary is a flat global byte buffer
 * parsed with isalpha() — compiled, as glibc does, to a
 * __ctype_b_loc() call returning a double pointer into legacy libc
 * data, so the classifying loop promotes a *legacy* pointer per
 * character (the dominant promote-bypass source the paper reports for
 * anagram). Word records are individually malloc'd and keep pointers
 * into the instrumented global dictionary buffer.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "support/rng.hh"
#include "vm/libc_model.hh"
#include "workloads/dsl.hh"
#include "workloads/workload.hh"

namespace infat {
namespace workloads {

using namespace ir;

namespace {

/** Deterministic pseudo-dictionary, newline separated. */
std::vector<uint8_t>
makeDictionary(size_t words)
{
    Rng rng(0xd1c7);
    std::vector<uint8_t> out;
    for (size_t w = 0; w < words; ++w) {
        size_t len = 3 + rng.below(7);
        for (size_t i = 0; i < len; ++i)
            out.push_back(static_cast<uint8_t>('a' + rng.below(26)));
        out.push_back('\n');
    }
    out.push_back('\0');
    return out;
}

} // namespace

void
buildAnagram(Module &m)
{
    declareLibc(m);
    TypeContext &tc = m.types();
    const Type *i64 = tc.i64();
    const Type *i8 = tc.i8();
    const Type *i16 = tc.i16();

    constexpr size_t dictWords = 560;
    std::vector<uint8_t> dict_data = makeDictionary(dictWords);
    GlobalId dict = m.addGlobal(
        "dictionary", tc.array(i8, dict_data.size()), dict_data);

    StructType *word = tc.createStruct("Word");
    // letter mask, length, chars (into the dictionary), next
    word->setBody({i64, i64, tc.ptr(i8), tc.ptr(word)});
    const Type *wordPtr = tc.ptr(word);

    // isalpha via the ctype trait table double pointer.
    {
        FunctionBuilder fb(m, "is_alpha", {i64}, i64);
        Value c = fb.arg(0);
        Value table_pp = fb.call("__ctype_b_loc");
        Value table = fb.load(fb.ptrCast(table_pp, tc.ptr(i16)));
        Value traits = fb.load(
            fb.elemPtr(fb.ptrCast(table, i16), c));
        fb.ret(fb.and_(traits, fb.iconst(1)));
    }

    // Parse the dictionary into a list of Word records.
    {
        FunctionBuilder fb(m, "parse", {tc.ptr(i8), i64}, wordPtr);
        Value buf = fb.arg(0);
        Value len = fb.arg(1);
        Value head = fb.var(wordPtr);
        fb.assign(head, fb.nullPtr(word));
        Value start = fb.var(i64);
        Value mask = fb.var(i64);
        fb.assign(start, fb.iconst(0));
        fb.assign(mask, fb.iconst(0));
        ForLoop i(fb, fb.iconst(0), len);
        Value c = fb.load(fb.elemPtr(buf, i.index()));
        IfElse alpha(fb, fb.call("is_alpha", {c}));
        {
            Value bit = fb.shl(fb.iconst(1),
                               fb.sub(c, fb.iconst('a')));
            fb.assign(mask, fb.or_(mask, bit));
        }
        alpha.otherwise();
        {
            IfElse nonempty(fb, fb.slt(start, i.index()));
            Value w = fb.mallocTyped(word);
            fb.storeField(w, 0, mask);
            fb.storeField(w, 1, fb.sub(i.index(), start));
            fb.storeField(w, 2, fb.elemPtr(buf, start));
            fb.storeField(w, 3, head);
            fb.assign(head, w);
            nonempty.finish();
            fb.assign(mask, fb.iconst(0));
            fb.assign(start, fb.addImm(i.index(), 1));
        }
        alpha.finish();
        i.finish();
        fb.ret(head);
    }

    // Count word pairs whose masks exactly partition the phrase mask.
    {
        FunctionBuilder fb(m, "solve", {wordPtr, i64}, i64);
        Value words = fb.arg(0);
        Value phrase = fb.arg(1);
        Value count = fb.var(i64);
        fb.assign(count, fb.iconst(0));
        Value a = fb.var(wordPtr);
        fb.assign(a, words);
        WhileLoop outer(fb);
        outer.test(fb.ne(a, fb.iconst(0)));
        {
            Value ma = fb.loadField(a, 0);
            IfElse viable(fb,
                          fb.eq(fb.and_(ma, fb.xor_(phrase,
                                                    fb.iconst(-1))),
                                fb.iconst(0)));
            {
                Value b = fb.var(wordPtr);
                fb.assign(b, fb.loadField(a, 3));
                WhileLoop inner(fb);
                inner.test(fb.ne(b, fb.iconst(0)));
                Value mb = fb.loadField(b, 0);
                Value covers = fb.eq(fb.or_(ma, mb), phrase);
                IfElse hit(fb, covers);
                fb.assign(count, fb.addImm(count, 1));
                // Touch the first character through the stored
                // dictionary pointer (promote of a loaded pointer to
                // an instrumented global).
                Value chars = fb.loadField(b, 2);
                fb.assign(count,
                          fb.add(count,
                                 fb.and_(fb.load(chars),
                                         fb.iconst(1))));
                hit.finish();
                fb.assign(b, fb.loadField(b, 3));
                inner.finish();
            }
            viable.finish();
            fb.assign(a, fb.loadField(a, 3));
        }
        outer.finish();
        fb.ret(count);
    }

    {
        FunctionBuilder fb(m, "main", {}, i64);
        Value buf = fb.ptrCast(fb.globalAddr(dict), i8);
        Value words = fb.call(
            "parse", {buf, fb.iconst(static_cast<int64_t>(
                               makeDictionary(dictWords).size()))});
        Value total = fb.var(i64);
        fb.assign(total, fb.iconst(0));
        // A few phrase masks of increasing size.
        for (int64_t phrase :
             {0x0000ffffll, 0x00ffff00ll, 0x03ffffffll, 0x000fff0fll}) {
            fb.assign(total,
                      fb.add(total, fb.call("solve",
                                            {words,
                                             fb.iconst(phrase)})));
        }
        fb.ret(total);
    }
}

} // namespace workloads
} // namespace infat
