/**
 * @file
 * WolfCrypt Diffie-Hellman: modular exponentiation over big integers.
 *
 * Preserved behaviours: wolfSSL allocates through XMALLOC, a wrapper
 * reached via a *function pointer* — so the instrumentation cannot see
 * the allocated type and the mp_int objects carry no layout table
 * (Table 4 reports no layout-table coverage for wolfcrypt). Limbs are
 * accessed as `n->dp[i]`, a per-access struct-field GEP exactly like
 * wolfSSL's fp_int code, which is where the IFP-arithmetic overhead
 * comes from. The temporaries live inside an xmalloc'd context and are
 * reloaded per iteration (promote traffic). The computation validates
 * the DH property (g^a)^b == (g^b)^a mod p.
 *
 * Arithmetic: 32 limbs of 28 bits (stored in 64-bit slots) modulo the
 * pseudo-Mersenne p = 2^896 - 569. The 28-bit radix leaves enough
 * 64-bit headroom that limbs may stay slightly unnormalized between
 * multiplications; a final canonical reduction precedes the equality
 * check.
 */

#include "vm/libc_model.hh"
#include "workloads/dsl.hh"
#include "workloads/workload.hh"

namespace infat {
namespace workloads {

using namespace ir;

void
buildWolfcryptDh(Module &m)
{
    declareLibc(m);
    TypeContext &tc = m.types();
    const Type *i64 = tc.i64();
    const Type *vp = tc.opaquePtr();

    constexpr int64_t limbs = 32;
    constexpr int64_t limbBits = 28;
    constexpr int64_t limbMask = (1 << limbBits) - 1;
    constexpr int64_t foldC = 569; // p = 2^(28*32) - foldC
    constexpr int64_t expBits = 84;

    // wolfSSL's fp_int: used-count plus the digit array.
    StructType *mpInt = tc.createStruct("mp_int");
    mpInt->setBody({i64, tc.array(i64, limbs)});
    const Type *numPtr = tc.ptr(mpInt);

    GlobalId alloc_fn = m.addGlobal("xmalloc_fn", i64);

    {
        FunctionBuilder fb(m, "wc_malloc_impl", {i64}, vp);
        fb.ret(fb.call("malloc", {fb.arg(0)}));
    }
    {
        FunctionBuilder fb(m, "xmalloc", {i64}, vp);
        Value fn = fb.load(fb.globalAddr(alloc_fn));
        fb.ret(fb.callPtr(fn, vp, {fb.arg(0)}));
    }

    // n->dp[i], as a per-access GEP (no hoisting, like the source).
    auto dp = [&](FunctionBuilder &fb, Value n, Value idx) {
        return fb.elemPtr(fb.fieldPtr(n, 1), idx);
    };

    {
        FunctionBuilder fb(m, "bn_new", {}, numPtr);
        Value p = fb.call("xmalloc",
                          {fb.iconst(static_cast<int64_t>(
                              mpInt->size()))});
        Value n = fb.ptrCast(p, mpInt);
        fb.storeField(n, 0, fb.iconst(limbs));
        ForLoop i(fb, fb.iconst(0), fb.iconst(limbs));
        fb.store(fb.iconst(0), dp(fb, n, i.index()));
        i.finish();
        fb.ret(n);
    }
    {
        FunctionBuilder fb(m, "bn_copy", {numPtr, numPtr}, tc.voidTy());
        ForLoop i(fb, fb.iconst(0), fb.iconst(limbs));
        fb.store(fb.load(dp(fb, fb.arg(1), i.index())),
                 dp(fb, fb.arg(0), i.index()));
        i.finish();
        fb.retVoid();
    }
    // One carry-propagation + fold pass: leaves limbs <= limbMask
    // except possibly r->dp[0], which stays well under 2^29.
    {
        FunctionBuilder fb(m, "bn_normalize", {numPtr}, tc.voidTy());
        Value r = fb.arg(0);
        Value carry = fb.var(i64);
        fb.assign(carry, fb.iconst(0));
        {
            ForLoop i(fb, fb.iconst(0), fb.iconst(limbs));
            Value v = fb.add(fb.load(dp(fb, r, i.index())), carry);
            fb.store(fb.and_(v, fb.iconst(limbMask)),
                     dp(fb, r, i.index()));
            fb.assign(carry, fb.lshr(v, fb.iconst(limbBits)));
            i.finish();
        }
        Value r0 = dp(fb, r, fb.iconst(0));
        fb.store(fb.add(fb.load(r0), fb.mulImm(carry, foldC)), r0);
        fb.retVoid();
    }
    // r = (a * b) mod p. r must not alias a or b.
    {
        FunctionBuilder fb(m, "bn_mulmod", {numPtr, numPtr, numPtr},
                           tc.voidTy());
        Value r = fb.arg(0);
        Value a = fb.arg(1);
        Value b = fb.arg(2);
        Value acc = fb.call("xmalloc", {fb.iconst(limbs * 16)});
        Value t = fb.ptrCast(acc, i64);
        {
            ForLoop i(fb, fb.iconst(0), fb.iconst(limbs * 2));
            fb.store(fb.iconst(0), fb.elemPtr(t, i.index()));
            i.finish();
        }
        {
            ForLoop i(fb, fb.iconst(0), fb.iconst(limbs));
            Value ai = fb.load(dp(fb, a, i.index()));
            ForLoop j(fb, fb.iconst(0), fb.iconst(limbs));
            Value bj = fb.load(dp(fb, b, j.index()));
            Value k = fb.add(i.index(), j.index());
            Value slot = fb.elemPtr(t, k);
            // 2^30 * 2^30 * 32 accumulations < 2^63: no overflow.
            fb.store(fb.add(fb.load(slot), fb.mul(ai, bj)), slot);
            j.finish();
            i.finish();
        }
        // Carry-propagate the double-width accumulator.
        Value carry = fb.var(i64);
        fb.assign(carry, fb.iconst(0));
        {
            ForLoop i(fb, fb.iconst(0), fb.iconst(limbs * 2));
            Value v = fb.add(fb.load(fb.elemPtr(t, i.index())), carry);
            fb.store(fb.and_(v, fb.iconst(limbMask)),
                     fb.elemPtr(t, i.index()));
            fb.assign(carry, fb.lshr(v, fb.iconst(limbBits)));
            i.finish();
        }
        // Fold: 2^896 == foldC (mod p); the final carry folds twice.
        {
            ForLoop i(fb, fb.iconst(0), fb.iconst(limbs));
            Value hi = fb.load(
                fb.elemPtr(t, fb.add(i.index(), fb.iconst(limbs))));
            fb.store(fb.add(fb.load(fb.elemPtr(t, i.index())),
                            fb.mulImm(hi, foldC)),
                     fb.elemPtr(t, i.index()));
            i.finish();
        }
        Value t0 = fb.elemPtr(t, fb.iconst(0));
        fb.store(fb.add(fb.load(t0),
                        fb.mul(carry, fb.iconst(foldC * foldC))),
                 t0);
        {
            ForLoop i(fb, fb.iconst(0), fb.iconst(limbs));
            fb.store(fb.load(fb.elemPtr(t, i.index())),
                     dp(fb, r, i.index()));
            i.finish();
        }
        fb.call("bn_normalize", {r});
        fb.call("free", {fb.opaqueCast(t)});
        fb.retVoid();
    }
    // Canonical reduction into [0, p): full normalization followed by
    // conditional subtractions of p.
    {
        FunctionBuilder fb(m, "bn_reduce", {numPtr}, tc.voidTy());
        Value r = fb.arg(0);
        for (int pass = 0; pass < 3; ++pass)
            fb.call("bn_normalize", {r});
        // p's limbs: p[0] = 2^28 - foldC, p[1..31] = limbMask.
        ForLoop round(fb, fb.iconst(0), fb.iconst(2));
        {
            Value borrow = fb.var(i64);
            fb.assign(borrow, fb.iconst(0));
            Value tmp = fb.call("xmalloc", {fb.iconst(limbs * 8)});
            Value t = fb.ptrCast(tmp, i64);
            {
                ForLoop i(fb, fb.iconst(0), fb.iconst(limbs));
                Value pi = fb.select(fb.eq(i.index(), fb.iconst(0)),
                                     fb.iconst((1 << limbBits) - foldC),
                                     fb.iconst(limbMask));
                Value d = fb.sub(
                    fb.sub(fb.load(dp(fb, r, i.index())), pi), borrow);
                fb.assign(borrow,
                          fb.and_(fb.lshr(d, fb.iconst(63)),
                                  fb.iconst(1)));
                fb.store(fb.and_(d, fb.iconst(limbMask)),
                         fb.elemPtr(t, i.index()));
                i.finish();
            }
            IfElse fits(fb, fb.eq(borrow, fb.iconst(0)));
            {
                ForLoop i(fb, fb.iconst(0), fb.iconst(limbs));
                fb.store(fb.load(fb.elemPtr(t, i.index())),
                         dp(fb, r, i.index()));
                i.finish();
            }
            fits.finish();
            fb.call("free", {fb.opaqueCast(t)});
        }
        round.finish();
        fb.retVoid();
    }
    // r = base ^ exp mod p (square and multiply, LSB first), with the
    // working mp_ints parked in an xmalloc'd context and reloaded
    // every iteration, as wolfSSL keeps them in the key structure.
    {
        FunctionBuilder fb(m, "bn_modexp", {numPtr, numPtr, numPtr},
                           tc.voidTy());
        Value r = fb.arg(0);
        Value base = fb.arg(1);
        Value exp = fb.arg(2);
        Value ctx = fb.ptrCast(fb.call("xmalloc", {fb.iconst(24)}),
                               numPtr);
        {
            Value acc0 = fb.call("bn_new");
            fb.store(fb.iconst(1), dp(fb, acc0, fb.iconst(0)));
            fb.store(acc0, fb.elemPtr(ctx, fb.iconst(0)));
            Value sq0 = fb.call("bn_new");
            fb.call("bn_copy", {sq0, base});
            fb.store(sq0, fb.elemPtr(ctx, fb.iconst(1)));
            fb.store(fb.call("bn_new"), fb.elemPtr(ctx, fb.iconst(2)));
        }
        ForLoop bit(fb, fb.iconst(0), fb.iconst(expBits));
        {
            Value acc = fb.load(fb.elemPtr(ctx, fb.iconst(0)));
            Value sq = fb.load(fb.elemPtr(ctx, fb.iconst(1)));
            Value tmp = fb.load(fb.elemPtr(ctx, fb.iconst(2)));
            Value limb = fb.sdiv(bit.index(), fb.iconst(limbBits));
            Value off = fb.srem(bit.index(), fb.iconst(limbBits));
            Value word = fb.load(dp(fb, exp, limb));
            Value set = fb.and_(fb.lshr(word, off), fb.iconst(1));
            IfElse on(fb, set);
            fb.call("bn_mulmod", {tmp, acc, sq});
            fb.call("bn_copy", {acc, tmp});
            on.finish();
            fb.call("bn_mulmod", {tmp, sq, sq});
            fb.call("bn_copy", {sq, tmp});
        }
        bit.finish();
        Value acc_final = fb.load(fb.elemPtr(ctx, fb.iconst(0)));
        fb.call("bn_copy", {r, acc_final});
        fb.retVoid();
    }

    {
        FunctionBuilder fb(m, "main", {}, i64);
        // Install the allocation callback through the function-pointer
        // slot (hiding the allocation type from the compiler).
        fb.store(fb.funcAddr("wc_malloc_impl"),
                 fb.globalAddr(alloc_fn));
        fb.call("srand", {fb.iconst(20210419)});
        Value g = fb.call("bn_new");
        Value a = fb.call("bn_new");
        Value b = fb.call("bn_new");
        fb.store(fb.iconst(5), dp(fb, g, fb.iconst(0)));
        {
            ForLoop i(fb, fb.iconst(0),
                      fb.iconst((expBits + limbBits - 1) / limbBits));
            fb.store(fb.and_(fb.call("rand"), fb.iconst(limbMask)),
                     dp(fb, a, i.index()));
            fb.store(fb.and_(fb.call("rand"), fb.iconst(limbMask)),
                     dp(fb, b, i.index()));
            i.finish();
        }
        Value ya = fb.call("bn_new");
        Value yb = fb.call("bn_new");
        Value s1 = fb.call("bn_new");
        Value s2 = fb.call("bn_new");
        fb.call("bn_modexp", {ya, g, a});
        fb.call("bn_modexp", {yb, g, b});
        fb.call("bn_modexp", {s1, yb, a});
        fb.call("bn_modexp", {s2, ya, b});
        fb.call("bn_reduce", {s1});
        fb.call("bn_reduce", {s2});
        Value check = fb.var(i64);
        fb.assign(check, fb.iconst(0));
        ForLoop i(fb, fb.iconst(0), fb.iconst(limbs));
        Value l1 = fb.load(dp(fb, s1, i.index()));
        Value l2 = fb.load(dp(fb, s2, i.index()));
        IfElse mismatch(fb, fb.ne(l1, l2));
        fb.trap(9); // DH agreement failure
        mismatch.finish();
        fb.assign(check, fb.xor_(fb.mulImm(check, 31), l1));
        i.finish();
        fb.ret(check);
    }
}

} // namespace workloads
} // namespace infat
