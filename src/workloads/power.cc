/**
 * @file
 * Olden power: power-system pricing over a fixed three-level tree.
 *
 * Preserved behaviours: a root -> lateral -> branch -> leaf structure
 * built once (moderate allocation count) and then repeatedly swept by
 * floating-point optimization passes; almost no promote traffic in the
 * steady state (bounds travel through call arguments), matching the
 * paper's "100% valid promotes, tiny count" row.
 */

#include "vm/libc_model.hh"
#include "workloads/dsl.hh"
#include "workloads/workload.hh"

namespace infat {
namespace workloads {

using namespace ir;

void
buildPower(Module &m)
{
    declareLibc(m);
    TypeContext &tc = m.types();
    const Type *i64 = tc.i64();
    const Type *f64 = tc.f64();

    StructType *leaf = tc.createStruct("Leaf");
    leaf->setBody({f64 /*pi_R*/, f64 /*pi_I*/});
    StructType *branch = tc.createStruct("Branch");
    branch->setBody({f64 /*R*/, f64 /*X*/, tc.ptr(leaf), i64 /*nleaf*/,
                     tc.ptr(branch) /*next*/});
    StructType *lateral = tc.createStruct("Lateral");
    lateral->setBody({f64 /*R*/, f64 /*X*/, tc.ptr(branch),
                      tc.ptr(lateral) /*next*/});
    StructType *root = tc.createStruct("Root");
    root->setBody({f64 /*theta_R*/, f64 /*theta_I*/, tc.ptr(lateral)});

    constexpr int64_t numLaterals = 24;
    constexpr int64_t numBranches = 10;
    constexpr int64_t numLeaves = 24;
    constexpr int64_t iterations = 10;

    {
        FunctionBuilder fb(m, "build_branch", {}, tc.ptr(branch));
        Value b = fb.mallocTyped(branch);
        fb.storeField(b, 0, fb.fconst(0.0001));
        fb.storeField(b, 1, fb.fconst(0.00002));
        Value leaves = fb.mallocTyped(leaf, fb.iconst(numLeaves));
        ForLoop i(fb, fb.iconst(0), fb.iconst(numLeaves));
        Value cell = fb.elemPtr(leaves, i.index());
        fb.storeField(cell, 0, fb.fconst(1.0));
        fb.storeField(cell, 1, fb.fconst(1.0));
        i.finish();
        fb.storeField(b, 2, leaves);
        fb.storeField(b, 3, fb.iconst(numLeaves));
        fb.storeField(b, 4, fb.nullPtr(branch));
        fb.ret(b);
    }
    {
        FunctionBuilder fb(m, "build_lateral", {}, tc.ptr(lateral));
        Value l = fb.mallocTyped(lateral);
        fb.storeField(l, 0, fb.fconst(0.0003));
        fb.storeField(l, 1, fb.fconst(0.00006));
        Value head = fb.var(tc.ptr(branch));
        fb.assign(head, fb.nullPtr(branch));
        ForLoop i(fb, fb.iconst(0), fb.iconst(numBranches));
        Value b = fb.call("build_branch");
        fb.storeField(b, 4, head);
        fb.assign(head, b);
        i.finish();
        fb.storeField(l, 2, head);
        fb.storeField(l, 3, fb.nullPtr(lateral));
        fb.ret(l);
    }

    // One optimization sweep over a branch: returns complex demand.
    // Demand is accumulated into caller-provided out-params, which
    // keeps pointer arguments (and their bounds) flowing through calls.
    {
        FunctionBuilder fb(m, "compute_branch",
                           {tc.ptr(branch), f64, tc.ptr(f64), tc.ptr(f64)},
                           tc.voidTy());
        Value b = fb.arg(0);
        Value price = fb.arg(1);
        Value out_r = fb.arg(2);
        Value out_i = fb.arg(3);
        Value dr = fb.var(f64);
        Value di = fb.var(f64);
        fb.assign(dr, fb.fconst(0.0));
        fb.assign(di, fb.fconst(0.0));
        Value leaves = fb.loadField(b, 2);
        Value n = fb.loadField(b, 3);
        ForLoop i(fb, fb.iconst(0), n);
        Value cell = fb.elemPtr(leaves, i.index());
        Value pr = fb.loadField(cell, 0);
        Value pi = fb.loadField(cell, 1);
        // Optimal leaf demand given the price signal.
        Value demand = fb.fdiv(fb.fconst(1.0),
                               fb.fadd(price, fb.fadd(pr, pi)));
        fb.storeField(cell, 0, fb.fmul(pr, fb.fconst(0.999)));
        fb.storeField(cell, 1, fb.fmul(pi, fb.fconst(1.001)));
        fb.assign(dr, fb.fadd(dr, demand));
        fb.assign(di, fb.fadd(di, fb.fmul(demand, fb.fconst(0.2))));
        i.finish();
        // Line losses.
        Value r = fb.loadField(b, 0);
        Value x = fb.loadField(b, 1);
        Value mag = fb.fadd(fb.fmul(dr, dr), fb.fmul(di, di));
        fb.store(fb.fadd(fb.load(out_r), fb.fadd(dr, fb.fmul(mag, r))),
                 out_r);
        fb.store(fb.fadd(fb.load(out_i), fb.fadd(di, fb.fmul(mag, x))),
                 out_i);
        fb.retVoid();
    }
    {
        FunctionBuilder fb(m, "compute_lateral",
                           {tc.ptr(lateral), f64, tc.ptr(f64),
                            tc.ptr(f64)},
                           tc.voidTy());
        Value l = fb.arg(0);
        Value price = fb.arg(1);
        Value cur = fb.var(tc.ptr(branch));
        fb.assign(cur, fb.loadField(l, 2));
        WhileLoop walk(fb);
        walk.test(fb.ne(cur, fb.iconst(0)));
        fb.call("compute_branch", {cur, price, fb.arg(2), fb.arg(3)});
        fb.assign(cur, fb.loadField(cur, 4));
        walk.finish();
        fb.retVoid();
    }

    {
        FunctionBuilder fb(m, "main", {}, i64);
        Value r = fb.mallocTyped(root);
        fb.storeField(r, 0, fb.fconst(0.7));
        fb.storeField(r, 1, fb.fconst(0.2));
        Value head = fb.var(tc.ptr(lateral));
        fb.assign(head, fb.nullPtr(lateral));
        {
            ForLoop i(fb, fb.iconst(0), fb.iconst(numLaterals));
            Value l = fb.call("build_lateral");
            fb.storeField(l, 3, head);
            fb.assign(head, l);
            i.finish();
        }
        fb.storeField(r, 2, head);

        Value acc_r = fb.stackAlloc(f64);
        Value acc_i = fb.stackAlloc(f64);
        Value price = fb.var(f64);
        fb.assign(price, fb.fconst(0.5));
        {
            ForLoop it(fb, fb.iconst(0), fb.iconst(iterations));
            fb.store(fb.fconst(0.0), acc_r);
            fb.store(fb.fconst(0.0), acc_i);
            Value cur = fb.var(tc.ptr(lateral));
            fb.assign(cur, fb.loadField(r, 2));
            WhileLoop walk(fb);
            walk.test(fb.ne(cur, fb.iconst(0)));
            fb.call("compute_lateral", {cur, price, acc_r, acc_i});
            fb.assign(cur, fb.loadField(cur, 3));
            walk.finish();
            // Gradient step on the price from total demand.
            Value total = fb.load(acc_r);
            fb.assign(price,
                      fb.fadd(price,
                              fb.fmul(fb.fsub(total, fb.fconst(900.0)),
                                      fb.fconst(0.000001))));
            it.finish();
        }
        // Fixed-point checksum of the converged state.
        Value scaled = fb.fmul(fb.load(acc_r), fb.fconst(1e6));
        fb.ret(fb.fptosi(scaled));
    }
}

} // namespace workloads
} // namespace infat
