/**
 * @file
 * Structured control-flow helpers over the IR builder.
 *
 * The builder exposes raw blocks and branches; these RAII-ish helpers
 * provide for/while/if so the 18 workloads (and the Juliet generator)
 * read like the C they transliterate.
 *
 * Usage:
 *   ForLoop loop(fb, fb.iconst(0), n);        // for (i = 0; i < n; ++i)
 *   ... loop.index() ...
 *   loop.finish();
 *
 *   IfElse branch(fb, cond);                   // if (cond) { ... }
 *   ... then-side code ...
 *   branch.otherwise();                        // optional else
 *   ... else-side code ...
 *   branch.finish();
 */

#ifndef INFAT_WORKLOADS_DSL_HH
#define INFAT_WORKLOADS_DSL_HH

#include "ir/builder.hh"

namespace infat {
namespace workloads {

/** Counted loop: for (i = from; i < to; i += step). */
class ForLoop
{
  public:
    ForLoop(ir::FunctionBuilder &fb, ir::Value from, ir::Value to,
            int64_t step = 1)
        : fb_(fb), step_(step)
    {
        index_ = fb_.var(from.type);
        limit_ = fb_.var(to.type);
        fb_.assign(index_, from);
        fb_.assign(limit_, to);
        cond_ = fb_.newBlock("for.cond");
        body_ = fb_.newBlock("for.body");
        done_ = fb_.newBlock("for.done");
        fb_.jmp(cond_);
        fb_.setBlock(cond_);
        fb_.br(step_ > 0 ? fb_.slt(index_, limit_)
                         : fb_.sgt(index_, limit_),
               body_, done_);
        fb_.setBlock(body_);
    }

    ir::Value index() const { return index_; }

    /** Jump to the increment/condition (a `continue`). */
    void
    continueLoop()
    {
        fb_.assign(index_, fb_.addImm(index_, step_));
        fb_.jmp(cond_);
    }

    /** Branch target that exits the loop (a `break`). */
    ir::BlockId breakTarget() const { return done_; }

    void
    finish()
    {
        fb_.assign(index_, fb_.addImm(index_, step_));
        fb_.jmp(cond_);
        fb_.setBlock(done_);
    }

  private:
    ir::FunctionBuilder &fb_;
    int64_t step_;
    ir::Value index_, limit_;
    ir::BlockId cond_, body_, done_;
};

/** while (<cond computed each iteration>). */
class WhileLoop
{
  public:
    explicit WhileLoop(ir::FunctionBuilder &fb) : fb_(fb)
    {
        cond_ = fb_.newBlock("while.cond");
        body_ = fb_.newBlock("while.body");
        done_ = fb_.newBlock("while.done");
        fb_.jmp(cond_);
        fb_.setBlock(cond_);
    }

    /** Call once, after emitting the condition computation. */
    void
    test(ir::Value cond)
    {
        fb_.br(cond, body_, done_);
        fb_.setBlock(body_);
    }

    ir::BlockId breakTarget() const { return done_; }
    ir::BlockId continueTarget() const { return cond_; }

    void
    finish()
    {
        fb_.jmp(cond_);
        fb_.setBlock(done_);
    }

  private:
    ir::FunctionBuilder &fb_;
    ir::BlockId cond_, body_, done_;
};

/** if (cond) { ... } [ else { ... } ]. */
class IfElse
{
  public:
    IfElse(ir::FunctionBuilder &fb, ir::Value cond) : fb_(fb)
    {
        then_ = fb_.newBlock("if.then");
        else_ = fb_.newBlock("if.else");
        done_ = fb_.newBlock("if.done");
        fb_.br(cond, then_, else_);
        fb_.setBlock(then_);
    }

    /** Switch to emitting the else side. */
    void
    otherwise()
    {
        if (!fb_.function()->block(fb_.currentBlock()).terminated())
            fb_.jmp(done_);
        fb_.setBlock(else_);
        hasElse_ = true;
    }

    void
    finish()
    {
        if (!fb_.function()->block(fb_.currentBlock()).terminated())
            fb_.jmp(done_);
        if (!hasElse_) {
            fb_.setBlock(else_);
            fb_.jmp(done_);
        }
        fb_.setBlock(done_);
    }

  private:
    ir::FunctionBuilder &fb_;
    ir::BlockId then_, else_, done_;
    bool hasElse_ = false;
};

} // namespace workloads
} // namespace infat

#endif // INFAT_WORKLOADS_DSL_HH
