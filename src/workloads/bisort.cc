/**
 * @file
 * Olden bisort: bitonic sort of values held in a perfect binary tree.
 *
 * Preserved behaviours: a perfect tree of individually malloc'd nodes
 * filled with pseudo-random values, then recursive merge passes that
 * chase child pointers and swap values in place. About half of the
 * executed promotes take NULL operands (leaf children), matching the
 * paper's observation for bisort.
 */

#include "vm/libc_model.hh"
#include "workloads/dsl.hh"
#include "workloads/workload.hh"

namespace infat {
namespace workloads {

using namespace ir;

void
buildBisort(Module &m)
{
    declareLibc(m);
    TypeContext &tc = m.types();
    StructType *node = tc.createStruct("HANDLE");
    node->setBody({tc.i64(), tc.ptr(node), tc.ptr(node)});
    const Type *nodePtr = tc.ptr(node);
    const Type *i64 = tc.i64();

    constexpr int64_t depth = 13; // 8191 nodes

    // Build a perfect tree of random values.
    {
        FunctionBuilder fb(m, "rand_tree", {i64}, nodePtr);
        Value level = fb.arg(0);
        IfElse leaf(fb, fb.sle(level, fb.iconst(0)));
        fb.ret(fb.nullPtr(node));
        leaf.otherwise();
        Value n = fb.mallocTyped(node);
        fb.storeField(n, 0, fb.call("rand"));
        Value next = fb.addImm(level, -1);
        fb.storeField(n, 1, fb.call("rand_tree", {next}));
        fb.storeField(n, 2, fb.call("rand_tree", {next}));
        fb.ret(n);
        leaf.finish();
        fb.trap(1);
    }

    // One merge pass: order each parent against its children in the
    // requested direction, recursively (bitonic-style compare/swap
    // sweep over the tree).
    {
        FunctionBuilder fb(m, "bimerge", {nodePtr, i64}, i64);
        Value t = fb.arg(0);
        Value dir = fb.arg(1);
        IfElse null_check(fb, fb.eq(t, fb.iconst(0)));
        fb.ret(fb.iconst(0));
        null_check.otherwise();
        Value swaps = fb.var(i64);
        fb.assign(swaps, fb.iconst(0));

        auto order_child = [&](unsigned field, Value flip_dir) {
            Value child = fb.loadField(t, field);
            IfElse has(fb, fb.ne(child, fb.iconst(0)));
            {
                Value pv = fb.loadField(t, 0);
                Value cv = fb.loadField(child, 0);
                Value wrong =
                    fb.select(flip_dir, fb.slt(pv, cv), fb.sgt(pv, cv));
                IfElse do_swap(fb, wrong);
                fb.storeField(t, 0, cv);
                fb.storeField(child, 0, pv);
                fb.assign(swaps, fb.addImm(swaps, 1));
                do_swap.finish();
            }
            has.finish();
        };
        order_child(1, dir);
        order_child(2, fb.xor_(dir, fb.iconst(1)));

        Value flipped = fb.xor_(dir, fb.iconst(1));
        Value down = fb.call("bimerge", {fb.loadField(t, 1), dir});
        Value up = fb.call("bimerge", {fb.loadField(t, 2), flipped});
        fb.ret(fb.add(swaps, fb.add(down, up)));
        null_check.finish();
        fb.trap(2);
    }

    // Weighted in-order checksum so every configuration must agree on
    // the final arrangement.
    {
        FunctionBuilder fb(m, "checksum", {nodePtr, i64}, i64);
        Value t = fb.arg(0);
        Value mix = fb.arg(1);
        IfElse null_check(fb, fb.eq(t, fb.iconst(0)));
        fb.ret(fb.iconst(0));
        null_check.otherwise();
        Value v = fb.loadField(t, 0);
        Value here = fb.mul(v, mix);
        Value l = fb.call("checksum",
                          {fb.loadField(t, 1), fb.addImm(mix, 7)});
        Value r = fb.call("checksum",
                          {fb.loadField(t, 2), fb.addImm(mix, 13)});
        fb.ret(fb.add(here, fb.add(l, r)));
        null_check.finish();
        fb.trap(3);
    }

    {
        FunctionBuilder fb(m, "main", {}, i64);
        fb.call("srand", {fb.iconst(1729)});
        Value root = fb.call("rand_tree", {fb.iconst(depth)});
        Value total_swaps = fb.var(i64);
        fb.assign(total_swaps, fb.iconst(0));
        // Merge passes until a pass makes no swaps (or a pass cap).
        ForLoop pass(fb, fb.iconst(0), fb.iconst(24));
        Value s = fb.call("bimerge", {root, fb.iconst(0)});
        fb.assign(total_swaps, fb.add(total_swaps, s));
        pass.finish();
        Value sum = fb.call("checksum", {root, fb.iconst(3)});
        fb.ret(fb.xor_(sum, total_swaps));
    }
}

} // namespace workloads
} // namespace infat
