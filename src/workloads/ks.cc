/**
 * @file
 * PtrDist ks: Kernighan-Lin netlist bipartitioning.
 *
 * Preserved behaviours: modules and nets are connected through
 * individually-allocated adjacency cells (about 2e3 heap objects, as
 * in the paper), and each KL pass repeatedly walks those cells to
 * compute swap gains. Checksum is the final cut cost.
 */

#include "vm/libc_model.hh"
#include "workloads/dsl.hh"
#include "workloads/workload.hh"

namespace infat {
namespace workloads {

using namespace ir;

void
buildKs(Module &m)
{
    declareLibc(m);
    TypeContext &tc = m.types();
    const Type *i64 = tc.i64();

    constexpr int64_t nModules = 96;
    constexpr int64_t nNets = 240;
    constexpr int64_t pinsPerNet = 4;
    constexpr int64_t klPasses = 6;

    StructType *cell = tc.createStruct("NetCell");
    // module index, next
    cell->setBody({i64, tc.ptr(cell)});
    const Type *cellPtr = tc.ptr(cell);

    StructType *net = tc.createStruct("Net");
    // pin list, pin count
    net->setBody({cellPtr, i64});
    const Type *netPtr = tc.ptr(net);

    // Cut cost: a net is cut if it has pins on both sides.
    {
        FunctionBuilder fb(m, "cut_cost", {netPtr, i64, tc.ptr(i64)},
                           i64);
        Value nets = fb.arg(0);
        Value count = fb.arg(1);
        Value side = fb.arg(2);
        Value cost = fb.var(i64);
        fb.assign(cost, fb.iconst(0));
        ForLoop n(fb, fb.iconst(0), count);
        Value cur_net = fb.elemPtr(nets, n.index());
        Value left = fb.var(i64);
        Value right = fb.var(i64);
        fb.assign(left, fb.iconst(0));
        fb.assign(right, fb.iconst(0));
        Value pin = fb.var(cellPtr);
        fb.assign(pin, fb.loadField(cur_net, 0));
        WhileLoop pins(fb);
        pins.test(fb.ne(pin, fb.iconst(0)));
        Value s = fb.load(fb.elemPtr(side, fb.loadField(pin, 0)));
        fb.assign(left, fb.add(left, fb.eq(s, fb.iconst(0))));
        fb.assign(right, fb.add(right, fb.ne(s, fb.iconst(0))));
        fb.assign(pin, fb.loadField(pin, 1));
        pins.finish();
        IfElse cut(fb, fb.and_(fb.sgt(left, fb.iconst(0)),
                               fb.sgt(right, fb.iconst(0))));
        fb.assign(cost, fb.addImm(cost, 1));
        cut.finish();
        n.finish();
        fb.ret(cost);
    }

    {
        FunctionBuilder fb(m, "main", {}, i64);
        fb.call("srand", {fb.iconst(808)});
        Value nets = fb.mallocTyped(net, fb.iconst(nNets));
        {
            ForLoop n(fb, fb.iconst(0), fb.iconst(nNets));
            Value cur = fb.elemPtr(nets, n.index());
            fb.storeField(cur, 0, fb.nullPtr(cell));
            fb.storeField(cur, 1, fb.iconst(0));
            ForLoop p(fb, fb.iconst(0), fb.iconst(pinsPerNet));
            Value c = fb.mallocTyped(cell);
            fb.storeField(c, 0, fb.srem(fb.call("rand"),
                                        fb.iconst(nModules)));
            fb.storeField(c, 1, fb.loadField(cur, 0));
            fb.storeField(cur, 0, c);
            fb.storeField(cur, 1, fb.addImm(fb.loadField(cur, 1), 1));
            p.finish();
            n.finish();
        }
        // side[i]: 0 = A, 1 = B; initial half/half split.
        Value side = fb.mallocTyped(i64, fb.iconst(nModules));
        {
            ForLoop i(fb, fb.iconst(0), fb.iconst(nModules));
            fb.store(fb.sge(i.index(), fb.iconst(nModules / 2)),
                     fb.elemPtr(side, i.index()));
            i.finish();
        }

        // KL passes: greedily try swapping (a, b) module pairs and
        // keep any swap that reduces the cut.
        Value cost = fb.var(i64);
        fb.assign(cost, fb.call("cut_cost", {nets, fb.iconst(nNets),
                                             side}));
        {
            ForLoop pass(fb, fb.iconst(0), fb.iconst(klPasses));
            ForLoop a(fb, fb.iconst(0), fb.iconst(nModules / 2));
            Value b = fb.add(a.index(), fb.iconst(nModules / 2));
            // Tentatively swap.
            Value sa = fb.load(fb.elemPtr(side, a.index()));
            Value sb = fb.load(fb.elemPtr(side, b));
            fb.store(sb, fb.elemPtr(side, a.index()));
            fb.store(sa, fb.elemPtr(side, b));
            Value new_cost = fb.call(
                "cut_cost", {nets, fb.iconst(nNets), side});
            IfElse worse(fb, fb.sge(new_cost, cost));
            {
                // Revert.
                fb.store(sa, fb.elemPtr(side, a.index()));
                fb.store(sb, fb.elemPtr(side, b));
            }
            worse.otherwise();
            fb.assign(cost, new_cost);
            worse.finish();
            a.finish();
            pass.finish();
        }
        fb.ret(cost);
    }
}

} // namespace workloads
} // namespace infat
