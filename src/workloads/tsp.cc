/**
 * @file
 * Olden tsp: closest-point divide-and-conquer tour construction.
 *
 * Preserved behaviours: cities are individually-allocated tree nodes
 * holding coordinates, split recursively by coordinate (the "build"
 * phase), and the conquer phase stitches circular doubly-linked tours
 * through the same nodes (next/prev fields), so the hot phase is
 * pointer-surgery on heap objects. The merge heuristic is simplified
 * to nearest-endpoint concatenation (DESIGN.md §4).
 */

#include "vm/libc_model.hh"
#include "workloads/dsl.hh"
#include "workloads/workload.hh"

namespace infat {
namespace workloads {

using namespace ir;

void
buildTsp(Module &m)
{
    declareLibc(m);
    TypeContext &tc = m.types();
    const Type *i64 = tc.i64();
    const Type *f64 = tc.f64();

    StructType *tree = tc.createStruct("Tree");
    // x, y, left, right, next, prev
    tree->setBody({f64, f64, tc.ptr(tree), tc.ptr(tree), tc.ptr(tree),
                   tc.ptr(tree)});
    const Type *treePtr = tc.ptr(tree);

    constexpr int64_t nCities = 2048;

    {
        FunctionBuilder fb(m, "distance", {treePtr, treePtr}, f64);
        Value a = fb.arg(0);
        Value b = fb.arg(1);
        Value dx = fb.fsub(fb.loadField(a, 0), fb.loadField(b, 0));
        Value dy = fb.fsub(fb.loadField(a, 1), fb.loadField(b, 1));
        fb.ret(fb.call("sqrt",
                       {fb.fadd(fb.fmul(dx, dx), fb.fmul(dy, dy))}));
    }

    // Build a balanced tree of n cities in [lo,hi]x[lo,hi], splitting
    // the range by the given axis (0 = x, 1 = y).
    {
        FunctionBuilder fb(m, "build_tree",
                           {i64, i64, f64, f64, f64, f64}, treePtr);
        Value n = fb.arg(0);
        Value axis = fb.arg(1);
        Value x_lo = fb.arg(2);
        Value x_hi = fb.arg(3);
        Value y_lo = fb.arg(4);
        Value y_hi = fb.arg(5);
        IfElse base(fb, fb.sle(n, fb.iconst(0)));
        fb.ret(fb.nullPtr(tree));
        base.otherwise();
        Value node = fb.mallocTyped(tree);
        Value mid_x = fb.fmul(fb.fadd(x_lo, x_hi), fb.fconst(0.5));
        Value mid_y = fb.fmul(fb.fadd(y_lo, y_hi), fb.fconst(0.5));
        // Jitter the midpoint pseudo-randomly for irregularity.
        Value r = fb.call("rand");
        Value jitter = fb.fmul(
            fb.sitofp(fb.addImm(fb.and_(r, fb.iconst(255)), -128)),
            fb.fconst(1.0 / 4096.0));
        fb.storeField(node, 0, fb.fadd(mid_x, jitter));
        fb.storeField(node, 1, fb.fsub(mid_y, jitter));
        fb.storeField(node, 4, fb.nullPtr(tree));
        fb.storeField(node, 5, fb.nullPtr(tree));
        Value half = fb.ashr(fb.addImm(n, -1), fb.iconst(1));
        Value rest = fb.sub(fb.addImm(n, -1), half);
        Value next_axis = fb.xor_(axis, fb.iconst(1));
        IfElse split_x(fb, fb.eq(axis, fb.iconst(0)));
        {
            fb.storeField(node, 2,
                          fb.call("build_tree", {half, next_axis, x_lo,
                                                 mid_x, y_lo, y_hi}));
            fb.storeField(node, 3,
                          fb.call("build_tree", {rest, next_axis, mid_x,
                                                 x_hi, y_lo, y_hi}));
        }
        split_x.otherwise();
        {
            fb.storeField(node, 2,
                          fb.call("build_tree", {half, next_axis, x_lo,
                                                 x_hi, y_lo, mid_y}));
            fb.storeField(node, 3,
                          fb.call("build_tree", {rest, next_axis, x_lo,
                                                 x_hi, mid_y, y_hi}));
        }
        split_x.finish();
        fb.ret(node);
        base.finish();
        fb.trap(1);
    }

    // Conquer: produce a circular doubly-linked tour through the
    // subtree, returning any node on it. Tours are merged by linking
    // the child tours after the root.
    {
        FunctionBuilder fb(m, "make_tour", {treePtr}, treePtr);
        Value t = fb.arg(0);
        IfElse null_check(fb, fb.eq(t, fb.iconst(0)));
        fb.ret(fb.nullPtr(tree));
        null_check.otherwise();
        // Self-loop for the root city.
        fb.storeField(t, 4, t);
        fb.storeField(t, 5, t);
        auto splice = [&](unsigned field) {
            Value sub = fb.call("make_tour", {fb.loadField(t, field)});
            IfElse has(fb, fb.ne(sub, fb.iconst(0)));
            {
                // Insert sub's tour after t: t .. t_next becomes
                // t sub..sub_prev t_next.
                Value t_next = fb.loadField(t, 4);
                Value sub_prev = fb.loadField(sub, 5);
                fb.storeField(t, 4, sub);
                fb.storeField(sub, 5, t);
                fb.storeField(sub_prev, 4, t_next);
                fb.storeField(t_next, 5, sub_prev);
            }
            has.finish();
        };
        splice(2);
        splice(3);
        fb.ret(t);
        null_check.finish();
        fb.trap(2);
    }

    // 2-opt-ish improvement pass: for each city, if swapping with the
    // node after next shortens the tour, swap coordinates.
    {
        FunctionBuilder fb(m, "improve", {treePtr, i64}, f64);
        Value start = fb.arg(0);
        Value laps = fb.arg(1);
        Value total = fb.var(f64);
        fb.assign(total, fb.fconst(0.0));
        ForLoop lap(fb, fb.iconst(0), laps);
        {
            Value cur = fb.var(treePtr);
            fb.assign(cur, start);
            Value steps = fb.var(i64);
            fb.assign(steps, fb.iconst(0));
            WhileLoop walk(fb);
            walk.test(fb.slt(steps, fb.iconst(nCities)));
            {
                Value a = cur;
                Value b = fb.loadField(a, 4);
                Value c = fb.loadField(b, 4);
                Value d = fb.loadField(c, 4);
                Value now = fb.fadd(fb.call("distance", {a, b}),
                                    fb.call("distance", {c, d}));
                Value swapped = fb.fadd(fb.call("distance", {a, c}),
                                        fb.call("distance", {b, d}));
                IfElse better(fb, fb.flt(swapped, now));
                {
                    // Swap b and c by exchanging coordinates.
                    Value bx = fb.loadField(b, 0);
                    Value by = fb.loadField(b, 1);
                    fb.storeField(b, 0, fb.loadField(c, 0));
                    fb.storeField(b, 1, fb.loadField(c, 1));
                    fb.storeField(c, 0, bx);
                    fb.storeField(c, 1, by);
                }
                better.finish();
                fb.assign(cur, fb.loadField(cur, 4));
                fb.assign(steps, fb.addImm(steps, 1));
            }
            walk.finish();
        }
        lap.finish();
        // Final tour length.
        Value cur = fb.var(treePtr);
        fb.assign(cur, start);
        Value steps = fb.var(i64);
        fb.assign(steps, fb.iconst(0));
        WhileLoop len(fb);
        len.test(fb.slt(steps, fb.iconst(nCities)));
        Value next = fb.loadField(cur, 4);
        fb.assign(total, fb.fadd(total, fb.call("distance",
                                                {cur, next})));
        fb.assign(cur, next);
        fb.assign(steps, fb.addImm(steps, 1));
        len.finish();
        fb.ret(total);
    }

    {
        FunctionBuilder fb(m, "main", {}, i64);
        fb.call("srand", {fb.iconst(7)});
        Value root = fb.call("build_tree",
                             {fb.iconst(nCities), fb.iconst(0),
                              fb.fconst(0.0), fb.fconst(1.0),
                              fb.fconst(0.0), fb.fconst(1.0)});
        Value tour = fb.call("make_tour", {root});
        Value length = fb.call("improve", {tour, fb.iconst(3)});
        fb.ret(fb.fptosi(fb.fmul(length, fb.fconst(1024.0))));
    }
}

} // namespace workloads
} // namespace infat
