/**
 * @file
 * Olden perimeter: quadtree over a raster image, perimeter estimate.
 *
 * Preserved behaviours: the program is dominated by allocating quadtree
 * nodes (1.4e6 heap objects in the paper) of one fixed type, which is
 * the best case for the subheap allocator's size-class pooling — the
 * subheap configuration outruns the baseline, as the paper reports.
 * The neighbour-finding perimeter algorithm is simplified to a
 * recursive contribution count at colour boundaries (DESIGN.md §4).
 */

#include "vm/libc_model.hh"
#include "workloads/dsl.hh"
#include "workloads/workload.hh"

namespace infat {
namespace workloads {

using namespace ir;

void
buildPerimeter(Module &m)
{
    declareLibc(m);
    TypeContext &tc = m.types();
    const Type *i64 = tc.i64();
    // color: 0 white, 1 black, 2 grey (has children)
    StructType *quad = tc.createStruct("QuadTree");
    quad->setBody({i64 /*color*/, tc.ptr(quad), tc.ptr(quad),
                   tc.ptr(quad), tc.ptr(quad)});
    const Type *quadPtr = tc.ptr(quad);

    constexpr int64_t levels = 8; // up to 4^8 leaves
    constexpr int64_t size = 1 << levels;

    // Inside-circle test on the implicit raster.
    {
        FunctionBuilder fb(m, "pixel", {i64, i64}, i64);
        Value x = fb.arg(0);
        Value y = fb.arg(1);
        Value cx = fb.addImm(x, -size / 2);
        Value cy = fb.addImm(y, -size / 2);
        Value d2 = fb.add(fb.mul(cx, cx), fb.mul(cy, cy));
        fb.ret(fb.slt(d2, fb.iconst((size / 2 - 2) * (size / 2 - 2))));
    }

    // Recursive build: uniform regions become leaves.
    {
        FunctionBuilder fb(m, "build", {i64, i64, i64}, quadPtr);
        Value x = fb.arg(0);
        Value y = fb.arg(1);
        Value extent = fb.arg(2);
        Value n = fb.mallocTyped(quad);

        IfElse base(fb, fb.eq(extent, fb.iconst(1)));
        {
            fb.storeField(n, 0, fb.call("pixel", {x, y}));
            fb.storeField(n, 1, fb.nullPtr(quad));
            fb.storeField(n, 2, fb.nullPtr(quad));
            fb.storeField(n, 3, fb.nullPtr(quad));
            fb.storeField(n, 4, fb.nullPtr(quad));
            fb.ret(n);
        }
        base.otherwise();
        {
            // Quick uniformity probe at the four corners and centre.
            Value half = fb.ashr(extent, fb.iconst(1));
            Value e1 = fb.addImm(extent, -1);
            Value c0 = fb.call("pixel", {x, y});
            Value c1 = fb.call("pixel", {fb.add(x, e1), y});
            Value c2 = fb.call("pixel", {x, fb.add(y, e1)});
            Value c3 = fb.call("pixel", {fb.add(x, e1), fb.add(y, e1)});
            Value c4 =
                fb.call("pixel", {fb.add(x, half), fb.add(y, half)});
            Value all = fb.and_(fb.and_(c0, c1),
                                fb.and_(c2, fb.and_(c3, c4)));
            Value none = fb.eq(fb.or_(fb.or_(c0, c1),
                                      fb.or_(c2, fb.or_(c3, c4))),
                               fb.iconst(0));
            // Uniform probes below a cutoff extent: make a leaf.
            Value small = fb.sle(extent, fb.iconst(8));
            IfElse uniform(fb,
                           fb.and_(small, fb.or_(all, none)));
            {
                fb.storeField(n, 0, c4);
                fb.storeField(n, 1, fb.nullPtr(quad));
                fb.storeField(n, 2, fb.nullPtr(quad));
                fb.storeField(n, 3, fb.nullPtr(quad));
                fb.storeField(n, 4, fb.nullPtr(quad));
                fb.ret(n);
            }
            uniform.otherwise();
            {
                fb.storeField(n, 0, fb.iconst(2)); // grey
                Value xh = fb.add(x, half);
                Value yh = fb.add(y, half);
                fb.storeField(n, 1, fb.call("build", {x, y, half}));
                fb.storeField(n, 2, fb.call("build", {xh, y, half}));
                fb.storeField(n, 3, fb.call("build", {x, yh, half}));
                fb.storeField(n, 4, fb.call("build", {xh, yh, half}));
                fb.ret(n);
            }
            uniform.finish();
        }
        base.finish();
        fb.trap(1);
    }

    // Simplified perimeter: count black/white sibling boundaries,
    // weighted by region extent.
    {
        FunctionBuilder fb(m, "perim", {quadPtr, i64}, i64);
        Value t = fb.arg(0);
        Value extent = fb.arg(1);
        IfElse null_check(fb, fb.eq(t, fb.iconst(0)));
        fb.ret(fb.iconst(0));
        null_check.otherwise();
        Value color = fb.loadField(t, 0);
        IfElse leaf(fb, fb.ne(color, fb.iconst(2)));
        fb.ret(fb.iconst(0));
        leaf.otherwise();
        Value half = fb.ashr(extent, fb.iconst(1));
        Value total = fb.var(i64);
        fb.assign(total, fb.iconst(0));
        // Horizontal and vertical sibling boundary contributions.
        auto boundary = [&](unsigned a, unsigned b) {
            Value ca = fb.loadField(fb.loadField(t, a), 0);
            Value cb = fb.loadField(fb.loadField(t, b), 0);
            Value differs = fb.and_(
                fb.and_(fb.ne(ca, fb.iconst(2)), fb.ne(cb, fb.iconst(2))),
                fb.ne(ca, cb));
            fb.assign(total,
                      fb.add(total, fb.select(differs, half,
                                              fb.iconst(0))));
        };
        boundary(1, 2);
        boundary(3, 4);
        boundary(1, 3);
        boundary(2, 4);
        for (unsigned child = 1; child <= 4; ++child) {
            fb.assign(total,
                      fb.add(total, fb.call("perim",
                                            {fb.loadField(t, child),
                                             half})));
        }
        fb.ret(total);
        leaf.finish();
        null_check.finish();
        fb.trap(2);
    }

    {
        FunctionBuilder fb(m, "main", {}, i64);
        Value root = fb.call("build", {fb.iconst(0), fb.iconst(0),
                                       fb.iconst(size)});
        Value p = fb.call("perim", {root, fb.iconst(size)});
        fb.ret(p);
    }
}

} // namespace workloads
} // namespace infat
