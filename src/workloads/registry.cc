#include "workloads/workload.hh"

namespace infat {
namespace workloads {

const std::vector<Workload> &
all()
{
    static const std::vector<Workload> workloads = {
        {"bh", "olden",
         "2-D Barnes-Hut with per-call stack vector temporaries "
         "(dominant local-object count, as in the paper)",
         buildBh},
        {"bisort", "olden",
         "bitonic sort over a perfect binary tree of heap nodes",
         buildBisort},
        {"em3d", "olden",
         "bipartite E/H graph relaxation; neighbour arrays are "
         "malloc(n*sizeof(T)) allocations (drives subheap memory "
         "overhead)",
         buildEm3d},
        {"health", "olden",
         "hospital queue simulation; list heads embedded in the "
         "village struct give promotes of subobject pointers that "
         "narrow successfully",
         buildHealth},
        {"mst", "olden",
         "Prim's MST over per-vertex hash tables of heap nodes",
         buildMst},
        {"perimeter", "olden",
         "quadtree build + perimeter estimate; allocation-heavy "
         "(subheap allocator outruns the baseline, as in the paper)",
         buildPerimeter},
        {"power", "olden",
         "fixed 3-level pricing tree with floating-point optimization "
         "passes",
         buildPower},
        {"treeadd", "olden",
         "binary tree build + recursive sum; allocation-dominated",
         buildTreeadd},
        {"tsp", "olden",
         "divide-and-conquer tour construction over a point tree with "
         "circular doubly-linked tours",
         buildTsp},
        {"voronoi", "olden",
         "SUBSTITUTION: full Delaunay D&C replaced by kd-tree "
         "nearest-neighbour edge construction with linked edge records",
         buildVoronoi},
        {"anagram", "ptrdist",
         "dictionary anagram search; isalpha via the __ctype_b_loc "
         "double-pointer pattern (legacy-pointer promotes)",
         buildAnagram},
        {"ft", "ptrdist",
         "minimum spanning tree via a pointer-based heap of malloc'd "
         "nodes (cache-thrashing, metadata sharing matters)",
         buildFt},
        {"ks", "ptrdist",
         "Kernighan-Lin graph partitioning with malloc'd adjacency "
         "nodes",
         buildKs},
        {"yacr2", "ptrdist",
         "channel routing simplified to VCG-constrained track "
         "assignment; few, mostly-array allocations",
         buildYacr2},
        {"wolfcrypt-dh", "other",
         "Diffie-Hellman modexp over schoolbook bignums; allocation "
         "goes through a wrapper invoked by function pointer, so no "
         "layout tables (as the paper reports)",
         buildWolfcryptDh},
        {"sjeng", "other",
         "small negamax chess search; per-node move lists are "
         "escaping stack arrays (dominant local-object count)",
         buildSjeng},
        {"coremark", "other",
         "list/matrix/state-machine kernels inside one arena "
         "allocation via a wrapper; subobject promotes whose "
         "narrowing fails (no layout table), as the paper reports",
         buildCoremark},
        {"bzip2", "other",
         "RLE+MTF compressor; state allocated via function-pointer "
         "alloc wrapper, field pointers stored/reloaded (subobject "
         "promotes, failed narrowing)",
         buildBzip2},
    };
    return workloads;
}

const Workload *
byName(std::string_view name)
{
    for (const Workload &w : all()) {
        if (name == w.name)
            return &w;
    }
    return nullptr;
}

} // namespace workloads
} // namespace infat
