/**
 * @file
 * bzip2 (scaled): RLE -> move-to-front -> RLE2 compression pipeline.
 *
 * Preserved behaviours: the compressor state (EState) is one large
 * struct allocated through a *function-pointer* allocation hook
 * (bzalloc), so it carries no layout table; pointers to its embedded
 * buffers are stored into the state and reloaded across phases, so
 * roughly half of the promotes take subobject pointers whose
 * narrowing fails and coarsens to the object bounds, matching the
 * paper's description of bzip2. Input is a deterministic repetitive
 * text, compressing "its own source", scaled.
 */

#include "vm/libc_model.hh"
#include "workloads/dsl.hh"
#include "workloads/workload.hh"

namespace infat {
namespace workloads {

using namespace ir;

void
buildBzip2(Module &m)
{
    declareLibc(m);
    TypeContext &tc = m.types();
    const Type *i64 = tc.i64();
    const Type *i8 = tc.i8();
    const Type *vp = tc.opaquePtr();

    constexpr int64_t inputLen = 24000;
    constexpr int64_t bufCap = inputLen + 1024;

    StructType *estate = tc.createStruct("EState");
    // in(ptr), rle(ptr), out(ptr), mtf table(ptr), lens, crc
    estate->setBody({tc.ptr(i8), tc.ptr(i8), tc.ptr(i8), tc.ptr(i64),
                     i64 /*in_len*/, i64 /*rle_len*/, i64 /*out_len*/,
                     i64 /*crc*/});
    const Type *statePtr = tc.ptr(estate);

    GlobalId alloc_hook = m.addGlobal("bzalloc", i64);
    GlobalId state_g = m.addGlobal("g_state", statePtr);
    // Pointer to the state's crc *field*: reloading it yields promotes
    // of subobject-indexed pointers whose narrowing fails (no layout
    // table on the wrapper-allocated state).
    GlobalId crc_ptr_g = m.addGlobal("g_crc_ptr", tc.ptr(i64));

    {
        FunctionBuilder fb(m, "default_bzalloc", {i64}, vp);
        fb.ret(fb.call("malloc", {fb.arg(0)}));
    }
    {
        FunctionBuilder fb(m, "bz_malloc", {i64}, vp);
        Value fn = fb.load(fb.globalAddr(alloc_hook));
        fb.ret(fb.callPtr(fn, vp, {fb.arg(0)}));
    }

    // Phase 1: run-length encode in -> rle (byte, count pairs).
    {
        FunctionBuilder fb(m, "do_rle", {statePtr}, tc.voidTy());
        Value st = fb.arg(0);
        Value in = fb.loadField(st, 0);
        Value rle = fb.loadField(st, 1);
        Value n = fb.loadField(st, 4);
        Value out = fb.var(i64);
        Value i = fb.var(i64);
        fb.assign(out, fb.iconst(0));
        fb.assign(i, fb.iconst(0));
        WhileLoop scan(fb);
        scan.test(fb.slt(i, n));
        {
            Value c = fb.load(fb.elemPtr(in, i));
            Value run = fb.var(i64);
            fb.assign(run, fb.iconst(1));
            WhileLoop ext(fb);
            ext.test(fb.and_(
                fb.slt(fb.add(i, run), n),
                fb.and_(fb.eq(fb.load(fb.elemPtr(in, fb.add(i, run))),
                              c),
                        fb.slt(run, fb.iconst(255)))));
            fb.assign(run, fb.addImm(run, 1));
            ext.finish();
            fb.store(c, fb.elemPtr(rle, out));
            fb.store(fb.trunc(run, tc.i8()),
                     fb.elemPtr(rle, fb.addImm(out, 1)));
            fb.assign(out, fb.addImm(out, 2));
            // bzip2 keeps its cursors in the state struct and updates
            // them per run (per-access field GEPs).
            fb.storeField(st, 5, out);
            fb.assign(i, fb.add(i, run));
        }
        scan.finish();
        fb.storeField(st, 5, out);
        fb.retVoid();
    }

    // Phase 2: move-to-front transform of the RLE bytes, then a
    // zero-run second RLE into out.
    {
        FunctionBuilder fb(m, "do_mtf", {statePtr}, tc.voidTy());
        Value st = fb.arg(0);
        Value rle = fb.loadField(st, 1);
        Value out = fb.loadField(st, 2);
        Value table = fb.loadField(st, 3);
        Value n = fb.loadField(st, 5);
        // Initialize the MTF table.
        {
            ForLoop i(fb, fb.iconst(0), fb.iconst(256));
            fb.store(i.index(), fb.elemPtr(table, i.index()));
            i.finish();
        }
        Value out_len = fb.var(i64);
        Value zero_run = fb.var(i64);
        fb.assign(out_len, fb.iconst(0));
        fb.assign(zero_run, fb.iconst(0));
        ForLoop i(fb, fb.iconst(0), n);
        {
            Value c = fb.and_(fb.load(fb.elemPtr(rle, i.index())),
                              fb.iconst(0xff));
            // Find c's rank and move it to front.
            Value rank = fb.var(i64);
            fb.assign(rank, fb.iconst(0));
            WhileLoop find(fb);
            find.test(fb.ne(fb.load(fb.elemPtr(table, rank)), c));
            fb.assign(rank, fb.addImm(rank, 1));
            find.finish();
            Value j = fb.var(i64);
            fb.assign(j, rank);
            WhileLoop shift(fb);
            shift.test(fb.sgt(j, fb.iconst(0)));
            fb.store(fb.load(fb.elemPtr(table, fb.addImm(j, -1))),
                     fb.elemPtr(table, j));
            fb.assign(j, fb.addImm(j, -1));
            shift.finish();
            fb.store(c, fb.elemPtr(table, fb.iconst(0)));
            // Zero-run encoding of ranks.
            IfElse zero(fb, fb.eq(rank, fb.iconst(0)));
            fb.assign(zero_run, fb.addImm(zero_run, 1));
            zero.otherwise();
            {
                IfElse flush(fb, fb.sgt(zero_run, fb.iconst(0)));
                fb.store(fb.iconst(0), fb.elemPtr(out, out_len));
                fb.store(fb.trunc(fb.and_(zero_run, fb.iconst(0xff)),
                                  tc.i8()),
                         fb.elemPtr(out, fb.addImm(out_len, 1)));
                fb.assign(out_len, fb.addImm(out_len, 2));
                fb.assign(zero_run, fb.iconst(0));
                flush.finish();
                fb.store(fb.trunc(rank, tc.i8()),
                         fb.elemPtr(out, out_len));
                fb.assign(out_len, fb.addImm(out_len, 1));
            }
            zero.finish();
            fb.storeField(st, 6, out_len);
        }
        i.finish();
        fb.storeField(st, 6, out_len);
        fb.retVoid();
    }

    // CRC of the output buffer.
    {
        FunctionBuilder fb(m, "do_crc", {statePtr}, i64);
        Value st = fb.arg(0);
        Value out = fb.loadField(st, 2);
        Value n = fb.loadField(st, 6);
        Value crc = fb.var(i64);
        fb.assign(crc, fb.iconst(0xffffffff));
        ForLoop i(fb, fb.iconst(0), n);
        Value c = fb.and_(fb.load(fb.elemPtr(out, i.index())),
                          fb.iconst(0xff));
        fb.assign(crc, fb.xor_(crc, c));
        ForLoop bit(fb, fb.iconst(0), fb.iconst(8));
        Value lsb = fb.and_(crc, fb.iconst(1));
        fb.assign(crc, fb.lshr(crc, fb.iconst(1)));
        IfElse tap(fb, lsb);
        fb.assign(crc, fb.xor_(crc, fb.iconst(0xedb88320)));
        tap.finish();
        bit.finish();
        fb.storeField(st, 7, crc);
        i.finish();
        fb.storeField(st, 7, crc);
        fb.ret(crc);
    }

    {
        FunctionBuilder fb(m, "main", {}, i64);
        fb.store(fb.funcAddr("default_bzalloc"),
                 fb.globalAddr(alloc_hook));
        // Allocate the state and its buffers through the hook: none of
        // them get layout tables.
        Value st = fb.ptrCast(
            fb.call("bz_malloc", {fb.iconst(estate->size())}), estate);
        fb.storeField(st, 0,
                      fb.ptrCast(fb.call("bz_malloc",
                                         {fb.iconst(bufCap)}),
                                 i8));
        fb.storeField(st, 1,
                      fb.ptrCast(fb.call("bz_malloc",
                                         {fb.iconst(bufCap * 2)}),
                                 i8));
        fb.storeField(st, 2,
                      fb.ptrCast(fb.call("bz_malloc",
                                         {fb.iconst(bufCap * 2)}),
                                 i8));
        fb.storeField(st, 3,
                      fb.ptrCast(fb.call("bz_malloc",
                                         {fb.iconst(256 * 8)}),
                                 i64));
        fb.store(st, fb.globalAddr(state_g));
        fb.store(fb.fieldPtr(st, 7), fb.globalAddr(crc_ptr_g));

        // Deterministic repetitive "source code" input.
        Value in = fb.loadField(st, 0);
        Value seed = fb.var(i64);
        fb.assign(seed, fb.iconst(0x1234567));
        {
            ForLoop i(fb, fb.iconst(0), fb.iconst(inputLen));
            fb.assign(seed,
                      fb.and_(fb.addImm(fb.mulImm(seed, 1103515245),
                                        12345),
                              fb.iconst(0x7fffffff)));
            // Mostly runs with occasional noise: RLE-friendly.
            Value noise = fb.srem(seed, fb.iconst(17));
            Value c = fb.select(fb.slt(noise, fb.iconst(13)),
                                fb.iconst(' '),
                                fb.add(fb.iconst('a'),
                                       fb.and_(seed, fb.iconst(15))));
            fb.store(fb.trunc(c, tc.i8()),
                     fb.elemPtr(in, i.index()));
            i.finish();
        }
        fb.storeField(st, 4, fb.iconst(inputLen));

        // The pipeline reloads the global state pointer per phase
        // (promote of the untyped, tagged pointer each time).
        Value s1 = fb.load(fb.globalAddr(state_g));
        fb.call("do_rle", {s1});
        Value s2 = fb.load(fb.globalAddr(state_g));
        fb.call("do_mtf", {s2});
        Value s3 = fb.load(fb.globalAddr(state_g));
        Value crc = fb.call("do_crc", {s3});
        Value ratio = fb.sdiv(fb.mulImm(fb.loadField(s3, 6), 100),
                              fb.iconst(inputLen));
        // Re-read the crc through the stored field pointer.
        Value cp = fb.load(fb.globalAddr(crc_ptr_g));
        Value crc2 = fb.and_(fb.load(cp), fb.iconst(0xff));
        fb.ret(fb.add(crc, fb.add(ratio, crc2)));
    }
}

} // namespace workloads
} // namespace infat
