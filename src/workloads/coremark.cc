/**
 * @file
 * CoreMark (scaled): list processing, matrix work and a CRC state
 * machine, all inside ONE dynamically-allocated arena.
 *
 * Preserved behaviours (Table 4 / §5.2.1): CoreMark performs a single
 * dynamic allocation through a portable wrapper, so the object has no
 * layout table; data structures are carved out of the arena by
 * pointer arithmetic, and pointers to interior structs acquire
 * subobject indices whose promote-time narrowing *fails* (coarsened to
 * object bounds), exactly the behaviour the paper reports (29% of
 * CoreMark promotes take subobject pointers, all narrowing fails).
 */

#include "vm/libc_model.hh"
#include "workloads/dsl.hh"
#include "workloads/workload.hh"

namespace infat {
namespace workloads {

using namespace ir;

void
buildCoremark(Module &m)
{
    declareLibc(m);
    TypeContext &tc = m.types();
    const Type *i64 = tc.i64();
    const Type *i8 = tc.i8();
    const Type *vp = tc.opaquePtr();

    constexpr int64_t listLen = 96;
    constexpr int64_t matDim = 10;
    constexpr int64_t iterations = 40;

    StructType *item = tc.createStruct("list_data");
    // value, index, next
    item->setBody({i64, i64, tc.ptr(item)});
    const Type *itemPtr = tc.ptr(item);

    StructType *crcState = tc.createStruct("core_state");
    // crc, fsm state, byte counter
    crcState->setBody({i64, i64, i64});
    const Type *crcPtr = tc.ptr(crcState);

    // Arena slot for the list head pointer (stored & reloaded, so it
    // is promoted with a subobject-ish tag into the untyped arena).
    GlobalId list_head_g = m.addGlobal("list_head", tc.ptr(item));
    GlobalId crc_state_g = m.addGlobal("crc_state", crcPtr);
    // A pointer to a *field* of the in-arena state: reloading it gives
    // a promote with a non-zero subobject index whose narrowing fails
    // (the arena has no layout table), as the paper reports.
    GlobalId crc_field_g = m.addGlobal("crc_field", tc.ptr(i64));

    // CoreMark's portable allocation wrapper.
    {
        FunctionBuilder fb(m, "portable_malloc", {i64}, vp);
        fb.ret(fb.call("malloc", {fb.arg(0)}));
    }

    // crc16 step over a value, updating the in-arena state struct.
    {
        FunctionBuilder fb(m, "crc_step", {crcPtr, i64}, i64);
        Value st = fb.arg(0);
        Value data = fb.arg(1);
        Value crc = fb.var(i64);
        fb.assign(crc, fb.loadField(st, 0));
        ForLoop bit(fb, fb.iconst(0), fb.iconst(16));
        Value mix = fb.and_(fb.xor_(crc, fb.lshr(data, bit.index())),
                            fb.iconst(1));
        fb.assign(crc, fb.lshr(crc, fb.iconst(1)));
        IfElse tap(fb, mix);
        fb.assign(crc, fb.xor_(crc, fb.iconst(0xa001)));
        tap.finish();
        bit.finish();
        fb.storeField(st, 0, crc);
        fb.storeField(st, 2, fb.addImm(fb.loadField(st, 2), 1));
        fb.ret(crc);
    }

    // One benchmark iteration over the pre-carved arena structures.
    {
        FunctionBuilder fb(m, "bench_iter", {tc.ptr(i64), i64}, i64);
        Value matrix = fb.arg(0);
        Value seed = fb.arg(1);
        // List phase: reverse the list in place, then scan for a key.
        Value head = fb.var(itemPtr);
        fb.assign(head, fb.load(fb.globalAddr(list_head_g)));
        Value prev = fb.var(itemPtr);
        fb.assign(prev, fb.nullPtr(item));
        {
            WhileLoop rev(fb);
            rev.test(fb.ne(head, fb.iconst(0)));
            Value next = fb.loadField(head, 2);
            fb.storeField(head, 2, prev);
            fb.assign(prev, head);
            fb.assign(head, next);
            rev.finish();
        }
        fb.store(prev, fb.globalAddr(list_head_g));
        Value found = fb.var(i64);
        fb.assign(found, fb.iconst(0));
        {
            Value cur = fb.var(itemPtr);
            fb.assign(cur, prev);
            WhileLoop scan(fb);
            scan.test(fb.ne(cur, fb.iconst(0)));
            IfElse hit(fb, fb.eq(fb.loadField(cur, 0),
                                 fb.and_(seed, fb.iconst(63))));
            fb.assign(found, fb.add(found, fb.loadField(cur, 1)));
            hit.finish();
            fb.assign(cur, fb.loadField(cur, 2));
            scan.finish();
        }
        // Matrix phase: one multiply-accumulate sweep.
        Value mat_sum = fb.var(i64);
        fb.assign(mat_sum, fb.iconst(0));
        {
            ForLoop i(fb, fb.iconst(0), fb.iconst(matDim));
            ForLoop j(fb, fb.iconst(0), fb.iconst(matDim));
            Value acc = fb.var(i64);
            fb.assign(acc, fb.iconst(0));
            ForLoop k(fb, fb.iconst(0), fb.iconst(matDim));
            Value a = fb.load(fb.elemPtr(
                matrix, fb.add(fb.mulImm(i.index(), matDim),
                               k.index())));
            Value b = fb.load(fb.elemPtr(
                matrix, fb.add(fb.mulImm(k.index(), matDim),
                               j.index())));
            fb.assign(acc, fb.add(acc, fb.mul(a, b)));
            k.finish();
            fb.assign(mat_sum,
                      fb.xor_(mat_sum, fb.and_(acc, fb.iconst(0xffff))));
            j.finish();
            i.finish();
        }
        // State-machine phase: CRC over the derived values via the
        // reloaded in-arena state pointer (subobject promote).
        Value st = fb.load(fb.globalAddr(crc_state_g));
        Value crc = fb.call("crc_step", {st, fb.add(found, mat_sum)});
        // Reload the stored field pointer: subobject-indexed promote.
        Value field = fb.load(fb.globalAddr(crc_field_g));
        fb.ret(fb.xor_(crc, fb.and_(fb.load(field), fb.iconst(0xff))));
    }

    {
        FunctionBuilder fb(m, "main", {}, i64);
        // The single arena allocation. Everything lives inside.
        constexpr int64_t list_bytes = listLen * 24;
        constexpr int64_t mat_bytes = matDim * matDim * 8;
        constexpr int64_t crc_bytes = 24;
        Value arena = fb.call("portable_malloc",
                              {fb.iconst(list_bytes + mat_bytes +
                                         crc_bytes)});
        Value bytes = fb.ptrCast(arena, i8);
        // Carve: list items, matrix, crc state.
        Value first = fb.ptrCast(bytes, item);
        {
            ForLoop i(fb, fb.iconst(0), fb.iconst(listLen));
            Value it = fb.elemPtr(first, i.index());
            fb.storeField(it, 0, fb.and_(fb.mulImm(i.index(), 7),
                                         fb.iconst(63)));
            fb.storeField(it, 1, i.index());
            IfElse last(fb, fb.eq(i.index(), fb.iconst(listLen - 1)));
            fb.storeField(it, 2, fb.nullPtr(item));
            last.otherwise();
            fb.storeField(it, 2, fb.elemPtr(first,
                                            fb.addImm(i.index(), 1)));
            last.finish();
            i.finish();
        }
        fb.store(first, fb.globalAddr(list_head_g));
        Value matrix =
            fb.ptrCast(fb.elemPtr(bytes, fb.iconst(list_bytes)), i64);
        {
            ForLoop i(fb, fb.iconst(0), fb.iconst(matDim * matDim));
            fb.store(fb.and_(fb.mulImm(i.index(), 13),
                             fb.iconst(255)),
                     fb.elemPtr(matrix, i.index()));
            i.finish();
        }
        Value st = fb.ptrCast(
            fb.elemPtr(bytes, fb.iconst(list_bytes + mat_bytes)),
            crcState);
        fb.storeField(st, 0, fb.iconst(0xffff));
        fb.storeField(st, 1, fb.iconst(0));
        fb.storeField(st, 2, fb.iconst(0));
        fb.store(st, fb.globalAddr(crc_state_g));
        fb.store(fb.fieldPtr(st, 0), fb.globalAddr(crc_field_g));

        Value check = fb.var(i64);
        fb.assign(check, fb.iconst(0));
        ForLoop it(fb, fb.iconst(0), fb.iconst(iterations));
        Value crc = fb.call("bench_iter", {matrix, it.index()});
        fb.assign(check, fb.xor_(fb.mulImm(check, 5), crc));
        it.finish();
        fb.ret(check);
    }
}

} // namespace workloads
} // namespace infat
