/**
 * @file
 * Olden treeadd: build a binary tree, sum it recursively.
 *
 * Preserved behaviours: every node is an individual
 * malloc(sizeof(tree_t)) (2.1e6 in the paper, scaled down here), the
 * hot loop is pure pointer chasing, and the instruction mix is
 * dominated by the allocator during the build phase — which is why the
 * subheap allocator beats the glibc baseline on this program.
 */

#include "vm/libc_model.hh"
#include "workloads/dsl.hh"
#include "workloads/workload.hh"

namespace infat {
namespace workloads {

using namespace ir;

void
buildTreeadd(Module &m)
{
    declareLibc(m);
    TypeContext &tc = m.types();
    StructType *node = tc.createStruct("tree_t");
    node->setBody({tc.i64(), tc.ptr(node), tc.ptr(node)});
    const Type *nodePtr = tc.ptr(node);

    constexpr int64_t depth = 16;
    constexpr int64_t passes = 4;

    {
        FunctionBuilder fb(m, "tree_alloc", {tc.i64()}, nodePtr);
        Value level = fb.arg(0);
        IfElse leaf(fb, fb.sle(level, fb.iconst(0)));
        fb.ret(fb.nullPtr(node));
        leaf.otherwise();
        Value n = fb.mallocTyped(node);
        fb.storeField(n, 0, fb.iconst(1));
        Value next = fb.addImm(level, -1);
        fb.storeField(n, 1, fb.call("tree_alloc", {next}));
        fb.storeField(n, 2, fb.call("tree_alloc", {next}));
        fb.ret(n);
        leaf.finish();
        fb.trap(1); // unreachable
    }
    {
        FunctionBuilder fb(m, "tree_add", {nodePtr}, tc.i64());
        Value t = fb.arg(0);
        IfElse null_check(fb, fb.eq(t, fb.iconst(0)));
        fb.ret(fb.iconst(0));
        null_check.otherwise();
        Value left = fb.call("tree_add", {fb.loadField(t, 1)});
        Value right = fb.call("tree_add", {fb.loadField(t, 2)});
        fb.ret(fb.add(fb.loadField(t, 0), fb.add(left, right)));
        null_check.finish();
        fb.trap(2);
    }
    {
        FunctionBuilder fb(m, "main", {}, tc.i64());
        Value root = fb.call("tree_alloc", {fb.iconst(depth)});
        Value total = fb.var(tc.i64());
        fb.assign(total, fb.iconst(0));
        ForLoop pass(fb, fb.iconst(0), fb.iconst(passes));
        fb.assign(total, fb.add(total, fb.call("tree_add", {root})));
        pass.finish();
        fb.ret(total);
    }
}

} // namespace workloads
} // namespace infat
