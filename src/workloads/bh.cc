/**
 * @file
 * Olden bh: Barnes-Hut N-body (2-D quadtree variant).
 *
 * Preserved behaviours: per timestep the quadtree is rebuilt from
 * scratch (cell churn for the allocators), forces are computed by a
 * recursive descent with an opening criterion, and — the signature bh
 * behaviour in Table 4 — the inner force kernel passes *stack-allocated
 * vector temporaries by address* into a helper, so the local-object
 * registration count dwarfs every other workload's. The cell's child
 * pointers are a true array subobject, exercising array-of-pointer
 * narrowing in the layout table.
 */

#include "vm/libc_model.hh"
#include "workloads/dsl.hh"
#include "workloads/workload.hh"

namespace infat {
namespace workloads {

using namespace ir;

void
buildBh(Module &m)
{
    declareLibc(m);
    TypeContext &tc = m.types();
    const Type *i64 = tc.i64();
    const Type *f64 = tc.f64();

    StructType *body = tc.createStruct("Body");
    // mass, x, y, z, vx, vy, vz
    body->setBody({f64, f64, f64, f64, f64, f64, f64});
    const Type *bodyPtr = tc.ptr(body);

    StructType *cell = tc.createStruct("Cell");
    const Type *cellPtr = tc.ptr(cell);
    // mass, cx, cy, children[4], body (leaf payload)
    cell->setBody({f64, f64, f64, tc.array(cellPtr, 4), bodyPtr});

    StructType *vec = tc.createStruct("Vec");
    vec->setBody({f64, f64, f64});
    const Type *vecPtr = tc.ptr(vec);

    constexpr int64_t nBodies = 160;
    constexpr int64_t nSteps = 3;

    // Insert a body into the quadtree rooted at *rootp covering
    // [x0,x0+ext) x [y0,y0+ext).
    {
        FunctionBuilder fb(m, "insert",
                           {tc.ptr(cellPtr), bodyPtr, f64, f64, f64},
                           tc.voidTy());
        Value rootp = fb.arg(0);
        Value b = fb.arg(1);
        Value x0 = fb.arg(2);
        Value y0 = fb.arg(3);
        Value ext = fb.arg(4);
        Value node = fb.load(rootp);
        IfElse empty(fb, fb.eq(node, fb.iconst(0)));
        {
            Value leaf = fb.mallocTyped(cell);
            fb.storeField(leaf, 0, fb.loadField(b, 0));
            fb.storeField(leaf, 1, fb.loadField(b, 1));
            fb.storeField(leaf, 2, fb.loadField(b, 2));
            Value kids = fb.fieldPtr(leaf, 3);
            for (int64_t c = 0; c < 4; ++c)
                fb.store(fb.nullPtr(cell), fb.elemPtr(kids, c));
            fb.storeField(leaf, 4, b);
            fb.store(leaf, rootp);
            fb.retVoid();
        }
        empty.otherwise();
        {
            Value old_body = fb.loadField(node, 4);
            // Update aggregate mass / centre of mass.
            Value mass = fb.loadField(node, 0);
            Value bm = fb.loadField(b, 0);
            Value new_mass = fb.fadd(mass, bm);
            Value cx = fb.fdiv(
                fb.fadd(fb.fmul(fb.loadField(node, 1), mass),
                        fb.fmul(fb.loadField(b, 1), bm)),
                new_mass);
            Value cy = fb.fdiv(
                fb.fadd(fb.fmul(fb.loadField(node, 2), mass),
                        fb.fmul(fb.loadField(b, 2), bm)),
                new_mass);
            fb.storeField(node, 0, new_mass);
            fb.storeField(node, 1, cx);
            fb.storeField(node, 2, cy);

            Value half = fb.fmul(ext, fb.fconst(0.5));
            Value mid_x = fb.fadd(x0, half);
            Value mid_y = fb.fadd(y0, half);
            auto quadrant_insert = [&](Value qb) {
                Value right = fb.fcmp(FCmpPred::Ge,
                                      fb.loadField(qb, 1), mid_x);
                Value top = fb.fcmp(FCmpPred::Ge,
                                    fb.loadField(qb, 2), mid_y);
                Value quad = fb.add(right, fb.mulImm(top, 2));
                Value child_slot =
                    fb.elemPtr(fb.fieldPtr(node, 3), quad);
                Value nx = fb.select(right, mid_x, x0);
                Value ny = fb.select(top, mid_y, y0);
                fb.call("insert", {child_slot, qb, nx, ny, half});
            };
            // If this node was a leaf, push its body down first.
            IfElse was_leaf(fb, fb.ne(old_body, fb.iconst(0)));
            fb.storeField(node, 4, fb.nullPtr(body));
            quadrant_insert(old_body);
            was_leaf.finish();
            quadrant_insert(b);
            fb.retVoid();
        }
        empty.finish();
        fb.trap(1);
    }

    // Pairwise acceleration contribution, accumulated through a
    // caller-provided stack vector (the escaping-local signature).
    {
        FunctionBuilder fb(m, "gravsub",
                           {bodyPtr, f64, f64, f64, vecPtr},
                           tc.voidTy());
        Value b = fb.arg(0);
        Value mass = fb.arg(1);
        Value px = fb.arg(2);
        Value py = fb.arg(3);
        Value acc = fb.arg(4);
        Value dx = fb.fsub(px, fb.loadField(b, 1));
        Value dy = fb.fsub(py, fb.loadField(b, 2));
        Value d2 = fb.fadd(fb.fadd(fb.fmul(dx, dx), fb.fmul(dy, dy)),
                           fb.fconst(0.0025)); // softening
        Value r = fb.call("sqrt", {d2});
        Value inv = fb.fdiv(mass, fb.fmul(d2, r));
        // Potential well plus a quadrupole-ish correction term, as the
        // original's vector kernel (keeps per-interaction work close
        // to the 3-D original's).
        Value phi = fb.fdiv(mass, r);
        Value corr = fb.fmul(fb.fdiv(phi, d2), fb.fconst(0.05));
        Value gx = fb.fmul(dx, fb.fadd(inv, corr));
        Value gy = fb.fmul(dy, fb.fadd(inv, corr));
        fb.storeField(acc, 0, fb.fadd(fb.loadField(acc, 0), gx));
        fb.storeField(acc, 1, fb.fadd(fb.loadField(acc, 1), gy));
        fb.storeField(acc, 2, fb.fsub(fb.loadField(acc, 2), phi));
        fb.retVoid();
    }

    // Recursive force walk with opening criterion ext^2 < theta * d^2.
    {
        FunctionBuilder fb(m, "hackgrav",
                           {cellPtr, bodyPtr, f64, vecPtr}, tc.voidTy());
        Value node = fb.arg(0);
        Value b = fb.arg(1);
        Value ext = fb.arg(2);
        Value acc_out = fb.arg(3);
        IfElse null_check(fb, fb.eq(node, fb.iconst(0)));
        fb.retVoid();
        null_check.otherwise();
        // Per-node stack temporary, passed by address (escaping
        // local -> RegisterObj per call).
        Value tmp = fb.stackAlloc(vec);
        fb.storeField(tmp, 0, fb.fconst(0.0));
        fb.storeField(tmp, 1, fb.fconst(0.0));
        fb.storeField(tmp, 2, fb.fconst(0.0));
        Value dx = fb.fsub(fb.loadField(node, 1), fb.loadField(b, 1));
        Value dy = fb.fsub(fb.loadField(node, 2), fb.loadField(b, 2));
        Value d2 = fb.fadd(fb.fmul(dx, dx), fb.fmul(dy, dy));
        Value is_leaf = fb.ne(fb.loadField(node, 4), fb.iconst(0));
        Value far = fb.flt(fb.fmul(ext, ext),
                           fb.fmul(d2, fb.fconst(0.25)));
        IfElse approx(fb, fb.or_(is_leaf, far));
        {
            IfElse self(fb, fb.eq(fb.loadField(node, 4), b));
            self.otherwise();
            fb.call("gravsub", {b, fb.loadField(node, 0),
                                fb.loadField(node, 1),
                                fb.loadField(node, 2), tmp});
            self.finish();
        }
        approx.otherwise();
        {
            Value half = fb.fmul(ext, fb.fconst(0.5));
            Value kids = fb.fieldPtr(node, 3);
            for (int64_t c = 0; c < 4; ++c) {
                fb.call("hackgrav", {fb.load(fb.elemPtr(kids, c)), b,
                                     half, tmp});
            }
        }
        approx.finish();
        fb.storeField(acc_out, 0, fb.fadd(fb.loadField(acc_out, 0),
                                          fb.loadField(tmp, 0)));
        fb.storeField(acc_out, 1, fb.fadd(fb.loadField(acc_out, 1),
                                          fb.loadField(tmp, 1)));
        fb.storeField(acc_out, 2, fb.fadd(fb.loadField(acc_out, 2),
                                          fb.loadField(tmp, 2)));
        fb.retVoid();
        null_check.finish();
        fb.trap(2);
    }

    {
        FunctionBuilder fb(m, "main", {}, i64);
        fb.call("srand", {fb.iconst(17)});
        Value bodies = fb.mallocTyped(body, fb.iconst(nBodies));
        {
            ForLoop i(fb, fb.iconst(0), fb.iconst(nBodies));
            Value cur = fb.elemPtr(bodies, i.index());
            fb.storeField(cur, 0, fb.fconst(1.0));
            auto unit_rand = [&]() {
                return fb.fdiv(fb.sitofp(fb.and_(fb.call("rand"),
                                                 fb.iconst(0xffff))),
                               fb.fconst(65536.0));
            };
            fb.storeField(cur, 1, unit_rand());
            fb.storeField(cur, 2, unit_rand());
            for (unsigned f = 3; f <= 6; ++f)
                fb.storeField(cur, f, fb.fconst(0.0));
            i.finish();
        }
        Value checksum = fb.var(f64);
        fb.assign(checksum, fb.fconst(0.0));
        {
            ForLoop step(fb, fb.iconst(0), fb.iconst(nSteps));
            // Rebuild the tree each step.
            Value rootp = fb.stackAlloc(cellPtr);
            fb.store(fb.nullPtr(cell), rootp);
            {
                ForLoop i(fb, fb.iconst(0), fb.iconst(nBodies));
                fb.call("insert",
                        {rootp, fb.elemPtr(bodies, i.index()),
                         fb.fconst(0.0), fb.fconst(0.0),
                         fb.fconst(1.0)});
                i.finish();
            }
            // Forces + leapfrog-ish integration.
            {
                ForLoop i(fb, fb.iconst(0), fb.iconst(nBodies));
                Value cur = fb.elemPtr(bodies, i.index());
                Value acc = fb.stackAlloc(vec);
                fb.storeField(acc, 0, fb.fconst(0.0));
                fb.storeField(acc, 1, fb.fconst(0.0));
                fb.storeField(acc, 2, fb.fconst(0.0));
                fb.call("hackgrav",
                        {fb.load(rootp), cur, fb.fconst(1.0), acc});
                Value dt = fb.fconst(0.001);
                Value vx = fb.fadd(fb.loadField(cur, 3),
                                   fb.fmul(fb.loadField(acc, 0), dt));
                Value vy = fb.fadd(fb.loadField(cur, 4),
                                   fb.fmul(fb.loadField(acc, 1), dt));
                fb.storeField(cur, 3, vx);
                fb.storeField(cur, 4, vy);
                fb.storeField(cur, 1, fb.fadd(fb.loadField(cur, 1),
                                              fb.fmul(vx, dt)));
                fb.storeField(cur, 2, fb.fadd(fb.loadField(cur, 2),
                                              fb.fmul(vy, dt)));
                fb.assign(checksum, fb.fadd(checksum, vx));
                i.finish();
            }
            step.finish();
        }
        fb.ret(fb.fptosi(fb.fmul(checksum, fb.fconst(1e9))));
    }
}

} // namespace workloads
} // namespace infat
