/**
 * @file
 * Registry of the 18 evaluation workloads (paper §5.2).
 *
 * Each workload is a behavioural rewrite of the corresponding benchmark
 * as an IR-builder program: the Olden suite (bh, bisort, em3d, health,
 * mst, perimeter, power, treeadd, tsp, voronoi), four PtrDist programs
 * (anagram, ft, ks, yacr2), and wolfcrypt-dh, sjeng, coremark, bzip2.
 * DESIGN.md §4 documents, per workload, which behaviours of the
 * original are preserved (allocation pattern, pointer traffic, layout
 * table availability) and which are simplified.
 *
 * Every workload's main() returns a checksum; a workload must produce
 * the same checksum in every configuration, which the test suite
 * enforces.
 */

#ifndef INFAT_WORKLOADS_WORKLOAD_HH
#define INFAT_WORKLOADS_WORKLOAD_HH

#include <string_view>
#include <vector>

#include "ir/module.hh"

namespace infat {
namespace workloads {

struct Workload
{
    const char *name;
    const char *suite; // "olden" | "ptrdist" | "other"
    /** What the rewrite preserves / simplifies. */
    const char *notes;
    void (*build)(ir::Module &module);
};

/** All workloads, in the paper's Table 4 order. */
const std::vector<Workload> &all();

/** Lookup by name; null when unknown. */
const Workload *byName(std::string_view name);

// One builder per workload (each in its own translation unit).
void buildBh(ir::Module &);
void buildBisort(ir::Module &);
void buildEm3d(ir::Module &);
void buildHealth(ir::Module &);
void buildMst(ir::Module &);
void buildPerimeter(ir::Module &);
void buildPower(ir::Module &);
void buildTreeadd(ir::Module &);
void buildTsp(ir::Module &);
void buildVoronoi(ir::Module &);
void buildAnagram(ir::Module &);
void buildFt(ir::Module &);
void buildKs(ir::Module &);
void buildYacr2(ir::Module &);
void buildWolfcryptDh(ir::Module &);
void buildSjeng(ir::Module &);
void buildCoremark(ir::Module &);
void buildBzip2(ir::Module &);

} // namespace workloads
} // namespace infat

#endif // INFAT_WORKLOADS_WORKLOAD_HH
