/**
 * @file
 * Olden em3d: electromagnetic wave propagation on a bipartite graph.
 *
 * Preserved behaviours: E and H nodes live on linked lists of
 * individually-allocated structs; each node owns malloc'd neighbour
 * and coefficient arrays (the paper's em3d input uses a fixed
 * out-degree, so the per-node arrays form a handful of size classes);
 * and the builder allocates two large whole-graph node tables. Under
 * the subheap allocator the large one-off arrays each claim a
 * power-of-2 block far bigger than needed, giving em3d the worst
 * subheap memory overhead (paper Fig. 12).
 */

#include "vm/libc_model.hh"
#include "workloads/dsl.hh"
#include "workloads/workload.hh"

namespace infat {
namespace workloads {

using namespace ir;

void
buildEm3d(Module &m)
{
    declareLibc(m);
    TypeContext &tc = m.types();
    const Type *i64 = tc.i64();
    const Type *f64 = tc.f64();

    StructType *node = tc.createStruct("node_t");
    // value, from_count, to_nodes(ptr array), coeffs(f64 array), next
    node->setBody({f64, i64, tc.ptr(tc.ptr(node)), tc.ptr(f64),
                   tc.ptr(node)});
    const Type *nodePtr = tc.ptr(node);

    constexpr int64_t nNodes = 600; // per side
    constexpr int64_t degree = 8;   // fixed out-degree (paper input)
    constexpr int64_t iterations = 18;

    // Build one side: a linked list plus a node table for wiring.
    // The table is a single large malloc (its own oversized subheap
    // block), as in the original's make_table().
    {
        FunctionBuilder fb(m, "make_list", {i64, tc.ptr(tc.ptr(node))},
                           nodePtr);
        Value count = fb.arg(0);
        Value table = fb.arg(1);
        Value head = fb.var(nodePtr);
        fb.assign(head, fb.nullPtr(node));
        ForLoop i(fb, fb.iconst(0), count);
        Value n = fb.mallocTyped(node);
        Value seed = fb.call("rand");
        fb.storeField(n, 0,
                      fb.fdiv(fb.sitofp(fb.and_(seed, fb.iconst(1023))),
                              fb.fconst(1024.0)));
        fb.storeField(n, 1, fb.iconst(degree));
        fb.storeField(n, 2, fb.mallocTyped(tc.ptr(node),
                                           fb.iconst(degree)));
        fb.storeField(n, 3, fb.mallocTyped(f64, fb.iconst(degree)));
        fb.storeField(n, 4, head);
        fb.assign(head, n);
        fb.store(n, fb.elemPtr(table, i.index()));
        i.finish();
        fb.ret(head);
    }

    // Wire each node of `from` to pseudo-random nodes of `to_table`.
    {
        FunctionBuilder fb(m, "wire",
                           {nodePtr, tc.ptr(tc.ptr(node)), i64},
                           tc.voidTy());
        Value from = fb.arg(0);
        Value to_table = fb.arg(1);
        Value to_count = fb.arg(2);
        Value cur = fb.var(nodePtr);
        fb.assign(cur, from);
        WhileLoop walk(fb);
        walk.test(fb.ne(cur, fb.iconst(0)));
        {
            Value neighbors = fb.loadField(cur, 2);
            Value coeffs = fb.loadField(cur, 3);
            ForLoop j(fb, fb.iconst(0), fb.iconst(degree));
            Value k = fb.srem(fb.call("rand"), to_count);
            Value target = fb.load(fb.elemPtr(to_table, k));
            fb.store(target, fb.elemPtr(neighbors, j.index()));
            fb.store(fb.fconst(0.0078125),
                     fb.elemPtr(coeffs, j.index()));
            j.finish();
        }
        fb.assign(cur, fb.loadField(cur, 4));
        walk.finish();
        fb.retVoid();
    }

    // One relaxation sweep over a list.
    {
        FunctionBuilder fb(m, "relax", {nodePtr}, tc.voidTy());
        Value cur = fb.var(nodePtr);
        fb.assign(cur, fb.arg(0));
        WhileLoop walk(fb);
        walk.test(fb.ne(cur, fb.iconst(0)));
        {
            Value count = fb.loadField(cur, 1);
            Value neighbors = fb.loadField(cur, 2);
            Value coeffs = fb.loadField(cur, 3);
            Value acc = fb.var(f64);
            fb.assign(acc, fb.loadField(cur, 0));
            ForLoop j(fb, fb.iconst(0), count);
            Value other = fb.load(fb.elemPtr(neighbors, j.index()));
            Value c = fb.load(fb.elemPtr(coeffs, j.index()));
            fb.assign(acc,
                      fb.fsub(acc, fb.fmul(c, fb.loadField(other, 0))));
            j.finish();
            fb.storeField(cur, 0, acc);
        }
        fb.assign(cur, fb.loadField(cur, 4));
        walk.finish();
        fb.retVoid();
    }

    {
        FunctionBuilder fb(m, "main", {}, i64);
        fb.call("srand", {fb.iconst(99)});
        Value e_table = fb.mallocTyped(tc.ptr(node), fb.iconst(nNodes));
        Value h_table = fb.mallocTyped(tc.ptr(node), fb.iconst(nNodes));
        Value e_list = fb.call("make_list", {fb.iconst(nNodes),
                                             e_table});
        Value h_list = fb.call("make_list", {fb.iconst(nNodes),
                                             h_table});
        fb.call("wire", {e_list, h_table, fb.iconst(nNodes)});
        fb.call("wire", {h_list, e_table, fb.iconst(nNodes)});
        {
            ForLoop it(fb, fb.iconst(0), fb.iconst(iterations));
            fb.call("relax", {e_list});
            fb.call("relax", {h_list});
            it.finish();
        }
        // Checksum: scaled sum of E values.
        Value acc = fb.var(f64);
        fb.assign(acc, fb.fconst(0.0));
        Value cur = fb.var(nodePtr);
        fb.assign(cur, e_list);
        WhileLoop walk(fb);
        walk.test(fb.ne(cur, fb.iconst(0)));
        fb.assign(acc, fb.fadd(acc, fb.loadField(cur, 0)));
        fb.assign(cur, fb.loadField(cur, 4));
        walk.finish();
        fb.ret(fb.fptosi(fb.fmul(acc, fb.fconst(4096.0))));
    }
}

} // namespace workloads
} // namespace infat
