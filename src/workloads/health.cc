/**
 * @file
 * Olden health: Colombian health-care simulation.
 *
 * Preserved behaviours: a 4-ary village tree whose nodes *embed* the
 * patient queues as struct-typed fields. Taking the address of an
 * embedded list head produces a pointer with a non-zero subobject
 * index; when such a pointer is stored and reloaded, the promote must
 * narrow through the village's layout table. health is the paper's
 * only workload whose subobject-pointer promotes all narrow
 * *successfully* (<1% of promotes, Table 4) — this rewrite keeps that
 * property. Patients are allocated and freed continuously.
 */

#include "vm/libc_model.hh"
#include "workloads/dsl.hh"
#include "workloads/workload.hh"

namespace infat {
namespace workloads {

using namespace ir;

void
buildHealth(Module &m)
{
    declareLibc(m);
    TypeContext &tc = m.types();
    const Type *i64 = tc.i64();

    StructType *patient = tc.createStruct("Patient");
    // hosps_visited, time, time_left, next
    patient->setBody({i64, i64, i64, tc.ptr(patient)});
    const Type *patPtr = tc.ptr(patient);

    StructType *list = tc.createStruct("List");
    // head, tail, length  (embedded twice in Village)
    list->setBody({patPtr, patPtr, i64});

    StructType *village = tc.createStruct("Village");
    // children[4], waiting(List), assess(List), id, seed,
    // hosp (cached pointer to the embedded assess list)
    village->setBody({tc.ptr(village), tc.ptr(village), tc.ptr(village),
                      tc.ptr(village), list, list, i64, i64,
                      tc.ptr(list)});
    const Type *vilPtr = tc.ptr(village);
    const Type *listPtr = tc.ptr(list);

    constexpr int64_t levels = 5;  // 341 villages
    constexpr int64_t timesteps = 110;

    // --- queue ops on an embedded list (subobject pointers!) ---
    {
        FunctionBuilder fb(m, "list_put", {listPtr, patPtr},
                           tc.voidTy());
        Value l = fb.arg(0);
        Value p = fb.arg(1);
        fb.storeField(p, 3, fb.nullPtr(patient));
        Value tail = fb.loadField(l, 1);
        IfElse empty(fb, fb.eq(tail, fb.iconst(0)));
        fb.storeField(l, 0, p);
        empty.otherwise();
        fb.storeField(tail, 3, p);
        empty.finish();
        fb.storeField(l, 1, p);
        fb.storeField(l, 2, fb.addImm(fb.loadField(l, 2), 1));
        fb.retVoid();
    }
    {
        FunctionBuilder fb(m, "list_get", {listPtr}, patPtr);
        Value l = fb.arg(0);
        Value head = fb.loadField(l, 0);
        IfElse empty(fb, fb.eq(head, fb.iconst(0)));
        fb.ret(fb.nullPtr(patient));
        empty.otherwise();
        Value next = fb.loadField(head, 3);
        fb.storeField(l, 0, next);
        IfElse was_last(fb, fb.eq(next, fb.iconst(0)));
        fb.storeField(l, 1, fb.nullPtr(patient));
        was_last.finish();
        fb.storeField(l, 2, fb.addImm(fb.loadField(l, 2), -1));
        fb.ret(head);
        empty.finish();
        fb.trap(1);
    }

    // --- build the village tree ---
    {
        FunctionBuilder fb(m, "make_village", {i64, i64}, vilPtr);
        Value level = fb.arg(0);
        Value id = fb.arg(1);
        IfElse base(fb, fb.sle(level, fb.iconst(0)));
        fb.ret(fb.nullPtr(village));
        base.otherwise();
        Value v = fb.mallocTyped(village);
        Value next_level = fb.addImm(level, -1);
        for (unsigned c = 0; c < 4; ++c) {
            Value cid = fb.addImm(fb.mulImm(id, 4), c + 1);
            fb.storeField(v, c,
                          fb.call("make_village", {next_level, cid}));
        }
        // Zero the embedded lists.
        for (unsigned f = 4; f <= 5; ++f) {
            Value l = fb.fieldPtr(v, f);
            fb.storeField(l, 0, fb.nullPtr(patient));
            fb.storeField(l, 1, fb.nullPtr(patient));
            fb.storeField(l, 2, fb.iconst(0));
        }
        fb.storeField(v, 6, id);
        fb.storeField(v, 7, fb.add(id, fb.iconst(42)));
        // Cache a pointer to the embedded assess list: reloading it
        // later forces a promote of a subobject pointer that must
        // narrow through the village layout table.
        fb.storeField(v, 8, fb.fieldPtr(v, 5));
        fb.ret(v);
        base.finish();
        fb.trap(2);
    }

    // --- one simulation step (post-order over the tree) ---
    // Returns number of patients still in the system below v.
    {
        FunctionBuilder fb(m, "sim", {vilPtr}, i64);
        Value v = fb.arg(0);
        IfElse null_check(fb, fb.eq(v, fb.iconst(0)));
        fb.ret(fb.iconst(0));
        null_check.otherwise();
        Value load_total = fb.var(i64);
        fb.assign(load_total, fb.iconst(0));
        for (unsigned c = 0; c < 4; ++c) {
            fb.assign(load_total,
                      fb.add(load_total,
                             fb.call("sim", {fb.loadField(v, c)})));
        }
        // Local PRNG step.
        Value seed = fb.loadField(v, 7);
        Value new_seed = fb.and_(
            fb.addImm(fb.mulImm(seed, 1103515245), 12345),
            fb.iconst(0x7fffffff));
        fb.storeField(v, 7, new_seed);

        // Leaf villages generate patients with ~1/3 probability.
        Value is_leaf = fb.eq(fb.loadField(v, 0), fb.iconst(0));
        IfElse gen(fb, fb.and_(is_leaf,
                               fb.eq(fb.srem(new_seed, fb.iconst(3)),
                                     fb.iconst(0))));
        {
            Value p = fb.mallocTyped(patient);
            fb.storeField(p, 0, fb.iconst(0));
            fb.storeField(p, 1, fb.iconst(0));
            fb.storeField(p, 2,
                          fb.addImm(fb.srem(new_seed, fb.iconst(4)), 1));
            // &v->waiting escapes into the queue helper: a subobject
            // pointer that is also stored into the struct by list ops.
            fb.call("list_put", {fb.fieldPtr(v, 4), p});
        }
        gen.finish();

        // Move one waiting patient into assessment, going through
        // the *stored* subobject pointer (promote + narrowing).
        Value assess = fb.loadField(v, 8);
        Value w = fb.call("list_get", {fb.fieldPtr(v, 4)});
        IfElse has_w(fb, fb.ne(w, fb.iconst(0)));
        fb.call("list_put", {assess, w});
        has_w.finish();

        // Treat the head of assessment; done patients either leave or
        // are referred up (freed here, re-created at the parent by the
        // caller's count: simplified referral).
        Value a = fb.call("list_get", {fb.fieldPtr(v, 5)});
        IfElse has_a(fb, fb.ne(a, fb.iconst(0)));
        {
            Value left = fb.addImm(fb.loadField(a, 2), -1);
            IfElse done(fb, fb.sle(left, fb.iconst(0)));
            fb.freePtr(a);
            done.otherwise();
            fb.storeField(a, 2, left);
            fb.storeField(a, 1, fb.addImm(fb.loadField(a, 1), 1));
            fb.call("list_put", {fb.fieldPtr(v, 5), a});
            fb.assign(load_total, fb.addImm(load_total, 1));
            done.finish();
        }
        has_a.finish();

        Value waiting_len = fb.load(fb.fieldPtr(fb.fieldPtr(v, 4), 2));
        fb.ret(fb.add(load_total, waiting_len));
        null_check.finish();
        fb.trap(3);
    }

    {
        FunctionBuilder fb(m, "main", {}, i64);
        Value top = fb.call("make_village",
                            {fb.iconst(levels), fb.iconst(0)});
        Value check = fb.var(i64);
        fb.assign(check, fb.iconst(0));
        ForLoop t(fb, fb.iconst(0), fb.iconst(timesteps));
        Value in_system = fb.call("sim", {top});
        fb.assign(check, fb.add(fb.mulImm(check, 3), in_system));
        t.finish();
        fb.ret(check);
    }
}

} // namespace workloads
} // namespace infat
