/**
 * @file
 * PtrDist ft: minimum spanning tree with a pointer-based priority
 * queue.
 *
 * Preserved behaviours: the graph's adjacency structure and every
 * queue element are individually malloc'd nodes (9e4 heap objects in
 * the paper), and the deleteMin/meld phases chase cold pointers across
 * the whole heap — ft is one of the two workloads the paper calls out
 * for L1D thrashing, where the subheap scheme's shared metadata cuts
 * the instrumented miss rate. The Fibonacci heap is simplified to a
 * pairing heap with lazy decrease-key (re-insertion), which preserves
 * the allocation and pointer-chasing profile.
 */

#include "vm/libc_model.hh"
#include "workloads/dsl.hh"
#include "workloads/workload.hh"

namespace infat {
namespace workloads {

using namespace ir;

void
buildFt(Module &m)
{
    declareLibc(m);
    TypeContext &tc = m.types();
    const Type *i64 = tc.i64();

    constexpr int64_t nVertices = 420;
    constexpr int64_t arcsPerVertex = 10;

    StructType *arc = tc.createStruct("Arc");
    // to, weight, next
    arc->setBody({i64, i64, tc.ptr(arc)});
    const Type *arcPtr = tc.ptr(arc);

    StructType *vertex = tc.createStruct("VertexFt");
    // key (best distance), in_tree, arcs
    vertex->setBody({i64, i64, arcPtr});
    const Type *vtxPtr = tc.ptr(vertex);

    StructType *heapNode = tc.createStruct("HeapNode");
    // key, vertex index, child, sibling
    heapNode->setBody({i64, i64, tc.ptr(heapNode), tc.ptr(heapNode)});
    const Type *hnPtr = tc.ptr(heapNode);

    // meld two pairing-heap roots.
    {
        FunctionBuilder fb(m, "meld", {hnPtr, hnPtr}, hnPtr);
        Value a = fb.arg(0);
        Value b = fb.arg(1);
        IfElse a_null(fb, fb.eq(a, fb.iconst(0)));
        fb.ret(b);
        a_null.finish();
        IfElse b_null(fb, fb.eq(b, fb.iconst(0)));
        fb.ret(a);
        b_null.finish();
        IfElse order(fb, fb.sle(fb.loadField(a, 0),
                                fb.loadField(b, 0)));
        fb.storeField(b, 3, fb.loadField(a, 2));
        fb.storeField(a, 2, b);
        fb.ret(a);
        order.otherwise();
        fb.storeField(a, 3, fb.loadField(b, 2));
        fb.storeField(b, 2, a);
        fb.ret(b);
        order.finish();
        fb.trap(1);
    }

    // Two-pass merge of a deleted root's children.
    {
        FunctionBuilder fb(m, "merge_children", {hnPtr}, hnPtr);
        Value first = fb.arg(0);
        Value result = fb.var(hnPtr);
        fb.assign(result, fb.nullPtr(heapNode));
        Value cur = fb.var(hnPtr);
        fb.assign(cur, first);
        WhileLoop pairs(fb);
        pairs.test(fb.ne(cur, fb.iconst(0)));
        {
            Value next = fb.loadField(cur, 3);
            fb.storeField(cur, 3, fb.nullPtr(heapNode));
            IfElse has_two(fb, fb.ne(next, fb.iconst(0)));
            {
                Value after = fb.loadField(next, 3);
                fb.storeField(next, 3, fb.nullPtr(heapNode));
                Value merged = fb.call("meld", {cur, next});
                fb.assign(result, fb.call("meld", {result, merged}));
                fb.assign(cur, after);
            }
            has_two.otherwise();
            {
                fb.assign(result, fb.call("meld", {result, cur}));
                fb.assign(cur, fb.nullPtr(heapNode));
            }
            has_two.finish();
        }
        pairs.finish();
        fb.ret(result);
    }

    {
        FunctionBuilder fb(m, "main", {}, i64);
        fb.call("srand", {fb.iconst(1903)});
        Value vertices = fb.mallocTyped(vertex, fb.iconst(nVertices));
        {
            ForLoop i(fb, fb.iconst(0), fb.iconst(nVertices));
            Value v = fb.elemPtr(vertices, i.index());
            fb.storeField(v, 0, fb.iconst(1 << 30));
            fb.storeField(v, 1, fb.iconst(0));
            fb.storeField(v, 2, fb.nullPtr(arc));
            i.finish();
        }
        // Random symmetric arcs.
        {
            ForLoop i(fb, fb.iconst(0), fb.iconst(nVertices));
            ForLoop k(fb, fb.iconst(0), fb.iconst(arcsPerVertex));
            Value j = fb.srem(fb.call("rand"), fb.iconst(nVertices));
            IfElse self(fb, fb.eq(j, i.index()));
            self.otherwise();
            Value w = fb.addImm(
                fb.srem(fb.call("rand"), fb.iconst(4096)), 1);
            auto add_arc = [&](Value from, Value to) {
                Value v = fb.elemPtr(vertices, from);
                Value a = fb.mallocTyped(arc);
                fb.storeField(a, 0, to);
                fb.storeField(a, 1, w);
                fb.storeField(a, 2, fb.loadField(v, 2));
                fb.storeField(v, 2, a);
            };
            add_arc(i.index(), j);
            add_arc(j, i.index());
            self.finish();
            k.finish();
            i.finish();
        }

        // Prim with a pairing heap and lazy decrease-key.
        Value heap = fb.var(hnPtr);
        fb.assign(heap, fb.nullPtr(heapNode));
        auto push = [&](Value key, Value idx) {
            Value n = fb.mallocTyped(heapNode);
            fb.storeField(n, 0, key);
            fb.storeField(n, 1, idx);
            fb.storeField(n, 2, fb.nullPtr(heapNode));
            fb.storeField(n, 3, fb.nullPtr(heapNode));
            fb.assign(heap, fb.call("meld", {heap, n}));
        };
        push(fb.iconst(0), fb.iconst(0));
        Value total = fb.var(i64);
        fb.assign(total, fb.iconst(0));
        WhileLoop prim(fb);
        prim.test(fb.ne(heap, fb.iconst(0)));
        {
            // deleteMin. Copy the root handle first: `heap` is a
            // mutable variable and is reassigned below.
            Value min = fb.var(hnPtr);
            fb.assign(min, heap);
            Value key = fb.loadField(min, 0);
            Value idx = fb.loadField(min, 1);
            Value kids = fb.loadField(min, 2);
            fb.assign(heap, fb.call("merge_children", {kids}));
            fb.freePtr(min);

            Value v = fb.elemPtr(vertices, idx);
            IfElse fresh(fb, fb.eq(fb.loadField(v, 1), fb.iconst(0)));
            {
                fb.storeField(v, 1, fb.iconst(1));
                fb.assign(total, fb.add(total, key));
                // Relax arcs: lazy insertion of improved keys.
                Value a = fb.var(arcPtr);
                fb.assign(a, fb.loadField(v, 2));
                WhileLoop relax(fb);
                relax.test(fb.ne(a, fb.iconst(0)));
                {
                    Value to = fb.loadField(a, 0);
                    Value w = fb.loadField(a, 1);
                    Value u = fb.elemPtr(vertices, to);
                    IfElse open(fb, fb.eq(fb.loadField(u, 1),
                                          fb.iconst(0)));
                    IfElse better(fb, fb.slt(w, fb.loadField(u, 0)));
                    fb.storeField(u, 0, w);
                    push(w, to);
                    better.finish();
                    open.finish();
                }
                fb.assign(a, fb.loadField(a, 2));
                relax.finish();
            }
            fresh.finish();
        }
        prim.finish();
        fb.ret(total);
    }
}

} // namespace workloads
} // namespace infat
