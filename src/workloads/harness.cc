#include "workloads/harness.hh"

#include <atomic>
#include <chrono>
#include <mutex>

#include "compiler/instrument.hh"
#include "ir/verifier.hh"
#include "support/logging.hh"
#include "support/profile.hh"
#include "vm/libc_model.hh"
#include "vm/machine.hh"

namespace infat {
namespace workloads {

const char *
toString(Config config)
{
    switch (config) {
      case Config::Baseline:
        return "baseline";
      case Config::Subheap:
        return "subheap";
      case Config::Wrapped:
        return "wrapped";
      case Config::SubheapNoPromote:
        return "subheap-np";
      case Config::WrappedNoPromote:
        return "wrapped-np";
    }
    return "?";
}

std::string
describe(const CustomRun &custom)
{
    if (!custom.instrumented)
        return "custom-baseline";
    std::string label = strfmt("custom-%s", toString(custom.allocator));
    if (custom.ifp.noPromote)
        label += "+np";
    if (!custom.ifp.temporalEnabled)
        label += "-notemporal";
    if (custom.explicitChecks)
        label += "+explicit";
    if (!custom.implicitChecks)
        label += "-nochecks";
    if (custom.superscalar)
        label += "+ss";
    if (custom.useL2)
        label += "+l2";
    return label;
}

namespace {

// Run recording is process-wide mutable state; runs may finish on
// ThreadPool workers concurrently, so the list lives behind a mutex
// and the enable flag is atomic (checked on every run's hot exit).
std::atomic<bool> recordRuns{false};
std::mutex recordedMutex;
std::vector<RecordedRun> recorded;

EngineTuning globalTuning;

/** Execute a built (and possibly instrumented) module; collect stats. */
RunResult
execute(const Workload &workload, ir::Module &module,
        const InstrumentResult *inst, VmConfig vm_config,
        const Observability *obs, const std::string &label,
        std::chrono::steady_clock::time_point run_start)
{
    // Host-engine tuning composes: a feature runs only if both the
    // per-run config and the process-global tuning allow it.
    vm_config.superblocks &= globalTuning.superblocks;
    vm_config.superblockFusion &= globalTuning.superblockFusion;
    vm_config.superblockCheckElim &= globalTuning.superblockCheckElim;
    vm_config.threadedDispatch &= globalTuning.threadedDispatch;
    vm_config.jit &= globalTuning.jit;
    vm_config.jitCalls &= globalTuning.jitCalls;
    if (globalTuning.jitThreshold != 0)
        vm_config.jitThreshold = globalTuning.jitThreshold;
    if (obs && obs->forensics)
        vm_config.forensics = true;

    Machine machine(module, inst ? &inst->layouts : nullptr, vm_config);
    installLibc(machine);
    if (obs && obs->traceSink)
        machine.setTraceSink(obs->traceSink, obs->traceCategories);
    if (obs && obs->oracle)
        machine.setOracle(obs->oracle);
    if (obs && obs->profiler)
        machine.setProfiler(obs->profiler);

    RunResult result;
    result.workload = workload.name;
    result.checksum = machine.run();

    result.instructions = machine.instructions();
    result.cycles = machine.cycles();

    StatGroup &vm = machine.stats();
    result.promoteInstrs = vm.value("promote_instrs");
    result.ifpArith = vm.value("ifp_arith");
    result.bndLdSt = vm.value("bnd_ldst");
    result.localObjects = vm.value("local_objects");
    result.localObjectsWithLayout = vm.value("local_objects_with_layout");
    result.heapObjects = vm.value("heap_objects");
    result.heapObjectsWithLayout = vm.value("heap_objects_with_layout");
    result.globalObjects = vm.value("global_objects_registered");
    result.globalObjectsWithLayout =
        vm.value("global_objects_with_layout");

    StatGroup &promote = machine.promoteEngine().stats();
    result.promotes = promote.value("promotes");
    result.validPromotes = promote.value("valid_promotes");
    result.bypassNull = promote.value("bypass_null");
    result.bypassLegacy = promote.value("bypass_legacy");
    result.narrowAttempts = promote.value("narrow_attempts");
    result.narrowSuccess = promote.value("narrow_success");
    result.narrowFail = promote.value("narrow_fail");

    result.l1dHits = machine.l1d().hits();
    result.l1dMisses = machine.l1d().misses();

    result.residentBytes = machine.mem().residentBytes();
    result.heapPeak = machine.runtime().heapPeakFootprint();

    machine.syncStats();
    result.stats = machine.statRegistry().snapshot();
    if (obs && obs->profiler)
        result.stats.sections["profile"] = obs->profiler->sectionJson();
    if (obs && !obs->statsJsonPath.empty())
        result.stats.writeFile(obs->statsJsonPath);
    if (obs && obs->traceSink)
        obs->traceSink->flush();
    result.hostMillis =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - run_start)
            .count();
    if (recordRuns.load(std::memory_order_relaxed)) {
        std::lock_guard<std::mutex> lock(recordedMutex);
        recorded.push_back({workload.name, label, result.stats});
    }
    return result;
}

RunResult
runWorkloadConfig(const Workload &workload, Config config,
                  const Observability *obs)
{
    auto run_start = std::chrono::steady_clock::now();
    ir::Module module;
    workload.build(module);

    bool instrumented = config != Config::Baseline;
    InstrumentResult inst;
    if (instrumented) {
        inst = instrumentModule(module);
        ir::verifyOrDie(module);
    }

    VmConfig vm_config;
    vm_config.instrumented = instrumented;
    vm_config.allocator = (config == Config::Subheap ||
                           config == Config::SubheapNoPromote)
                              ? AllocatorKind::Subheap
                              : AllocatorKind::Wrapped;
    vm_config.ifp.noPromote = config == Config::SubheapNoPromote ||
                              config == Config::WrappedNoPromote;

    RunResult result =
        execute(workload, module, instrumented ? &inst : nullptr,
                vm_config, obs, toString(config), run_start);
    result.config = config;
    return result;
}

RunResult
runWorkloadCustomImpl(const Workload &workload, const CustomRun &custom,
                      const Observability *obs)
{
    auto run_start = std::chrono::steady_clock::now();
    ir::Module module;
    workload.build(module);

    InstrumentResult inst;
    if (custom.instrumented) {
        InstrumentOptions options;
        options.explicitChecks = custom.explicitChecks;
        inst = instrumentModule(module, options);
        ir::verifyOrDie(module);
    }

    VmConfig vm_config;
    vm_config.instrumented = custom.instrumented;
    vm_config.allocator = custom.allocator;
    vm_config.ifp = custom.ifp;
    vm_config.implicitChecks = custom.implicitChecks;
    vm_config.superscalar = custom.superscalar;
    vm_config.useL2 = custom.useL2;
    vm_config.superblocks = custom.superblocks;
    vm_config.superblockFusion = custom.superblockFusion;
    vm_config.superblockCheckElim = custom.superblockCheckElim;
    vm_config.threadedDispatch = custom.threadedDispatch;
    vm_config.jit = custom.jit;

    return execute(workload, module,
                   custom.instrumented ? &inst : nullptr, vm_config,
                   obs, describe(custom), run_start);
}

} // namespace

void
setEngineTuning(const EngineTuning &tuning)
{
    globalTuning = tuning;
}

EngineTuning
engineTuning()
{
    return globalTuning;
}

namespace {

struct NamedEngine
{
    const char *name;
    EngineTuning tuning;
};

/** Order matters: ablation tables iterate slowest-to-fastest. */
const NamedEngine namedEngines[] = {
    // name               sb     fuse   elim   thread jit    thr calls
    {"general", {false, false, false, false, false, 0}},
    {"superblock-base", {true, false, false, false, false, 0}},
    {"superblock-nofuse", {true, false, true, false, false, 0}},
    {"superblock-noelim", {true, true, false, false, false, 0}},
    {"superblock", {true, true, true, false, false, 0}},
    {"threaded", {true, true, true, true, false, 0}},
    {"jit-nocalls", {true, true, true, true, true, 0, false}},
    {"jit", {true, true, true, true, true, 0}},
};

} // namespace

std::vector<std::string>
engineNames()
{
    std::vector<std::string> names;
    for (const NamedEngine &e : namedEngines)
        names.push_back(e.name);
    return names;
}

bool
engineTuningForName(std::string_view name, EngineTuning &out)
{
    for (const NamedEngine &e : namedEngines) {
        if (name == e.name) {
            out = e.tuning;
            return true;
        }
    }
    return false;
}

std::string
engineNamesJoined()
{
    std::string joined;
    for (const NamedEngine &e : namedEngines) {
        if (!joined.empty())
            joined += ", ";
        joined += e.name;
    }
    return joined;
}

void
setRunRecording(bool enabled)
{
    recordRuns.store(enabled);
}

bool
runRecordingEnabled()
{
    return recordRuns.load();
}

std::vector<RecordedRun>
recordedRuns()
{
    std::lock_guard<std::mutex> lock(recordedMutex);
    return recorded;
}

void
clearRecordedRuns()
{
    std::lock_guard<std::mutex> lock(recordedMutex);
    recorded.clear();
}

RunResult
runWorkload(const Workload &workload, Config config)
{
    return runWorkloadConfig(workload, config, nullptr);
}

RunResult
runWorkload(const Workload &workload, Config config,
            const Observability &obs)
{
    return runWorkloadConfig(workload, config, &obs);
}

RunResult
runWorkloadCustom(const Workload &workload, const CustomRun &custom)
{
    return runWorkloadCustomImpl(workload, custom, nullptr);
}

RunResult
runWorkloadCustom(const Workload &workload, const CustomRun &custom,
                  const Observability &obs)
{
    return runWorkloadCustomImpl(workload, custom, &obs);
}

RunResult
runWorkload(std::string_view name, Config config)
{
    const Workload *workload = byName(name);
    fatal_if(workload == nullptr, "unknown workload %.*s",
             static_cast<int>(name.size()), name.data());
    return runWorkload(*workload, config);
}

RunResult
runWorkload(std::string_view name, Config config,
            const Observability &obs)
{
    const Workload *workload = byName(name);
    fatal_if(workload == nullptr, "unknown workload %.*s",
             static_cast<int>(name.size()), name.data());
    return runWorkload(*workload, config, obs);
}

} // namespace workloads
} // namespace infat
