/**
 * @file
 * 458.sjeng (scaled): alpha-beta game-tree search on a small board.
 *
 * Preserved behaviours: the board and history tables are globals whose
 * addresses escape into helper functions (sjeng instruments a handful
 * of globals, one via the global-table scheme because it is large),
 * and every search node fills a *stack-allocated move list* whose
 * address is passed to the move generator — the source of sjeng's
 * 4.7e6 local-object registrations in Table 4. The game is a 5x5
 * capture variant searched to fixed depth.
 */

#include "vm/libc_model.hh"
#include "workloads/dsl.hh"
#include "workloads/workload.hh"

namespace infat {
namespace workloads {

using namespace ir;

void
buildSjeng(Module &m)
{
    declareLibc(m);
    TypeContext &tc = m.types();
    const Type *i64 = tc.i64();

    constexpr int64_t boardSize = 25; // 5x5
    constexpr int64_t maxMoves = 32;
    constexpr int64_t searchDepth = 5;

    // Globals: the board, and a large history table that exceeds the
    // local-offset size limit (forced into the global-table scheme).
    GlobalId board_g = m.addGlobal("board", tc.array(i64, boardSize));
    GlobalId history_g =
        m.addGlobal("history", tc.array(i64, boardSize * boardSize));
    // sjeng accesses its tables through pointer globals; reloading
    // them inside the search is what generates its promote traffic.
    GlobalId hist_ptr_g = m.addGlobal("hist_ptr", tc.ptr(i64));

    // Generate pseudo-moves for `side` into the caller's move array;
    // returns the count. Moves are encoded as from*32 + to.
    {
        FunctionBuilder fb(m, "gen_moves",
                           {tc.ptr(i64), tc.ptr(i64), i64}, i64);
        Value board = fb.arg(0);
        Value moves = fb.arg(1);
        Value side = fb.arg(2);
        Value count = fb.var(i64);
        fb.assign(count, fb.iconst(0));
        ForLoop sq(fb, fb.iconst(0), fb.iconst(boardSize));
        {
            Value piece = fb.load(fb.elemPtr(board, sq.index()));
            IfElse mine(fb, fb.eq(piece, side));
            {
                // Orthogonal steps; stay on the 5x5 grid.
                struct Step { int64_t d, colGuard; };
                const Step steps[4] = {{1, 4}, {-1, 0}, {5, -1},
                                       {-5, -1}};
                for (const Step &s : steps) {
                    Value to = fb.addImm(sq.index(), s.d);
                    Value on_board =
                        fb.and_(fb.sge(to, fb.iconst(0)),
                                fb.slt(to, fb.iconst(boardSize)));
                    Value col_ok = fb.iconst(1);
                    if (s.colGuard >= 0) {
                        col_ok = fb.ne(fb.srem(sq.index(),
                                               fb.iconst(5)),
                                       fb.iconst(s.colGuard));
                    }
                    IfElse legal(fb, fb.and_(on_board, col_ok));
                    {
                        Value target = fb.load(fb.elemPtr(board, to));
                        IfElse open(fb, fb.ne(target, side));
                        {
                            Value code =
                                fb.add(fb.mulImm(sq.index(), 32), to);
                            IfElse room(fb, fb.slt(count,
                                                   fb.iconst(maxMoves)));
                            fb.store(code, fb.elemPtr(moves, count));
                            fb.assign(count, fb.addImm(count, 1));
                            room.finish();
                        }
                        open.finish();
                    }
                    legal.finish();
                }
            }
            mine.finish();
        }
        sq.finish();
        fb.ret(count);
    }

    // Material + history evaluation.
    {
        FunctionBuilder fb(m, "evaluate", {tc.ptr(i64), i64}, i64);
        Value board = fb.arg(0);
        Value side = fb.arg(1);
        Value score = fb.var(i64);
        fb.assign(score, fb.iconst(0));
        ForLoop sq(fb, fb.iconst(0), fb.iconst(boardSize));
        Value piece = fb.load(fb.elemPtr(board, sq.index()));
        fb.assign(score,
                  fb.add(score,
                         fb.sub(fb.eq(piece, side),
                                fb.eq(piece, fb.sub(fb.iconst(3),
                                                    side)))));
        sq.finish();
        fb.ret(fb.mulImm(score, 100));
    }

    // Negamax with a per-node stack move list.
    {
        FunctionBuilder fb(m, "search", {tc.ptr(i64), i64, i64, i64,
                                         i64},
                           i64);
        Value board = fb.arg(0);
        Value depth = fb.arg(1);
        Value alpha = fb.var(i64);
        fb.assign(alpha, fb.arg(2));
        Value beta = fb.arg(3);
        Value side = fb.arg(4);
        IfElse leaf(fb, fb.sle(depth, fb.iconst(0)));
        fb.ret(fb.call("evaluate", {board, side}));
        leaf.otherwise();
        // Escaping stack array: one registration per search node.
        Value moves = fb.stackAlloc(i64, maxMoves);
        Value count = fb.call("gen_moves", {board, moves, side});
        IfElse none(fb, fb.eq(count, fb.iconst(0)));
        fb.ret(fb.iconst(-9999));
        none.otherwise();
        Value best = fb.var(i64);
        fb.assign(best, fb.iconst(-100000));
        // Reload the history pointer from its global slot: a promote
        // of a pointer to the large (global-table scheme) history.
        Value hist = fb.load(fb.globalAddr(hist_ptr_g));
        ForLoop i(fb, fb.iconst(0), count);
        {
            Value code = fb.load(fb.elemPtr(moves, i.index()));
            Value from = fb.sdiv(code, fb.iconst(32));
            Value to = fb.srem(code, fb.iconst(32));
            // Make the move.
            Value from_slot = fb.elemPtr(board, from);
            Value to_slot = fb.elemPtr(board, to);
            Value captured = fb.load(to_slot);
            Value mover = fb.load(from_slot);
            fb.store(fb.iconst(0), from_slot);
            fb.store(mover, to_slot);
            Value score = fb.sub(
                fb.iconst(0),
                fb.call("search",
                        {board, fb.addImm(depth, -1),
                         fb.sub(fb.iconst(0), beta),
                         fb.sub(fb.iconst(0), alpha),
                         fb.sub(fb.iconst(3), side)}));
            // Unmake.
            fb.store(mover, from_slot);
            fb.store(captured, to_slot);
            IfElse improve(fb, fb.sgt(score, best));
            fb.assign(best, score);
            // History heuristic update (large global array).
            Value h = fb.elemPtr(
                fb.ptrCast(hist, i64),
                fb.add(fb.mulImm(from, boardSize), to));
            fb.store(fb.add(fb.load(h), depth), h);
            improve.finish();
            IfElse raise(fb, fb.sgt(score, alpha));
            fb.assign(alpha, score);
            raise.finish();
            IfElse cut(fb, fb.sge(alpha, beta));
            fb.jmp(i.breakTarget());
            cut.finish();
        }
        i.finish();
        fb.ret(best);
        none.finish();
        leaf.finish();
        fb.trap(1);
    }

    {
        FunctionBuilder fb(m, "main", {}, i64);
        Value board = fb.ptrCast(fb.globalAddr(board_g), i64);
        fb.store(fb.ptrCast(fb.globalAddr(history_g), i64),
                 fb.globalAddr(hist_ptr_g));
        // Initial position: side 1 on the top two rows, side 2 on the
        // bottom two.
        ForLoop sq(fb, fb.iconst(0), fb.iconst(boardSize));
        Value row = fb.sdiv(sq.index(), fb.iconst(5));
        Value piece = fb.select(
            fb.sle(row, fb.iconst(1)), fb.iconst(1),
            fb.select(fb.sge(row, fb.iconst(3)), fb.iconst(2),
                      fb.iconst(0)));
        fb.store(piece, fb.elemPtr(board, sq.index()));
        sq.finish();
        Value score = fb.call("search",
                              {board, fb.iconst(searchDepth),
                               fb.iconst(-100000), fb.iconst(100000),
                               fb.iconst(1)});
        // Mix in a history-table digest.
        Value hist = fb.ptrCast(fb.globalAddr(history_g), i64);
        Value digest = fb.var(i64);
        fb.assign(digest, fb.iconst(0));
        ForLoop h(fb, fb.iconst(0), fb.iconst(boardSize * boardSize));
        fb.assign(digest, fb.add(fb.mulImm(digest, 3),
                                 fb.load(fb.elemPtr(hist, h.index()))));
        h.finish();
        fb.ret(fb.add(score, digest));
    }
}

} // namespace workloads
} // namespace infat
