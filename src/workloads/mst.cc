/**
 * @file
 * Olden mst: minimum spanning tree over per-vertex hash tables.
 *
 * Preserved behaviours: the vertex list is a chain of malloc'd structs
 * and every edge weight lives in a separately-allocated hash-table
 * entry reached by two pointer hops (vertex -> bucket array -> entry
 * chain), so the BlueRule scan is dominated by dependent loads. The
 * promote mix is mostly heap pointers with a sizeable NULL/legacy
 * bypass share, as the paper reports for mst.
 */

#include "vm/libc_model.hh"
#include "workloads/dsl.hh"
#include "workloads/workload.hh"

namespace infat {
namespace workloads {

using namespace ir;

void
buildMst(Module &m)
{
    declareLibc(m);
    TypeContext &tc = m.types();
    const Type *i64 = tc.i64();

    constexpr int64_t nVertices = 192;
    constexpr int64_t nBuckets = 8;

    StructType *hashEntry = tc.createStruct("HashEntry");
    // key (vertex id), weight, next
    hashEntry->setBody({i64, i64, tc.ptr(hashEntry)});
    const Type *entryPtr = tc.ptr(hashEntry);

    StructType *vertex = tc.createStruct("Vertex");
    // id, mindist, buckets(ptr array), next
    vertex->setBody({i64, i64, tc.ptr(entryPtr), tc.ptr(vertex)});
    const Type *vtxPtr = tc.ptr(vertex);

    // Insert (key, weight) into a vertex's hash table.
    {
        FunctionBuilder fb(m, "hash_insert", {vtxPtr, i64, i64},
                           tc.voidTy());
        Value v = fb.arg(0);
        Value key = fb.arg(1);
        Value weight = fb.arg(2);
        Value buckets = fb.loadField(v, 2);
        Value slot = fb.elemPtr(buckets, fb.srem(key,
                                                 fb.iconst(nBuckets)));
        Value e = fb.mallocTyped(hashEntry);
        fb.storeField(e, 0, key);
        fb.storeField(e, 1, weight);
        fb.storeField(e, 2, fb.load(slot));
        fb.store(e, slot);
        fb.retVoid();
    }
    // Lookup weight of edge to `key`; -1 when absent.
    {
        FunctionBuilder fb(m, "hash_find", {vtxPtr, i64}, i64);
        Value v = fb.arg(0);
        Value key = fb.arg(1);
        Value buckets = fb.loadField(v, 2);
        Value cur = fb.var(entryPtr);
        fb.assign(cur,
                  fb.load(fb.elemPtr(buckets,
                                     fb.srem(key, fb.iconst(nBuckets)))));
        WhileLoop walk(fb);
        walk.test(fb.ne(cur, fb.iconst(0)));
        IfElse hit(fb, fb.eq(fb.loadField(cur, 0), key));
        fb.ret(fb.loadField(cur, 1));
        hit.finish();
        fb.assign(cur, fb.loadField(cur, 2));
        walk.finish();
        fb.ret(fb.iconst(-1));
    }

    // Deterministic symmetric edge weight.
    {
        FunctionBuilder fb(m, "edge_weight", {i64, i64}, i64);
        Value a = fb.arg(0);
        Value b = fb.arg(1);
        Value mixed = fb.xor_(fb.mulImm(fb.add(a, b), 2654435761),
                              fb.mul(a, b));
        fb.ret(fb.addImm(fb.and_(mixed, fb.iconst(1023)), 1));
    }

    {
        FunctionBuilder fb(m, "make_graph", {}, vtxPtr);
        Value head = fb.var(vtxPtr);
        fb.assign(head, fb.nullPtr(vertex));
        Value vertices = fb.mallocTyped(tc.ptr(vertex),
                                        fb.iconst(nVertices));
        {
            ForLoop i(fb, fb.iconst(0), fb.iconst(nVertices));
            Value v = fb.mallocTyped(vertex);
            fb.storeField(v, 0, i.index());
            fb.storeField(v, 1, fb.iconst(1 << 30));
            Value buckets = fb.mallocTyped(entryPtr,
                                           fb.iconst(nBuckets));
            {
                ForLoop b(fb, fb.iconst(0), fb.iconst(nBuckets));
                fb.store(fb.nullPtr(hashEntry),
                         fb.elemPtr(buckets, b.index()));
                b.finish();
            }
            fb.storeField(v, 2, buckets);
            fb.storeField(v, 3, head);
            fb.assign(head, v);
            fb.store(v, fb.elemPtr(vertices, i.index()));
            i.finish();
        }
        // Sparse edges: each vertex connects to ~12 pseudo-random
        // others (weights symmetric by construction).
        {
            ForLoop i(fb, fb.iconst(0), fb.iconst(nVertices));
            ForLoop k(fb, fb.iconst(1), fb.iconst(13));
            Value j = fb.srem(
                fb.xor_(fb.mulImm(i.index(), 31),
                        fb.mulImm(k.index(), 2246822519)),
                fb.iconst(nVertices));
            IfElse self(fb, fb.eq(j, i.index()));
            self.otherwise();
            Value w = fb.call("edge_weight", {i.index(), j});
            fb.call("hash_insert",
                    {fb.load(fb.elemPtr(vertices, i.index())), j, w});
            fb.call("hash_insert",
                    {fb.load(fb.elemPtr(vertices, j)), i.index(), w});
            self.finish();
            k.finish();
            i.finish();
        }
        fb.freePtr(vertices);
        fb.ret(head);
    }

    // Prim's algorithm over the vertex list (BlueRule scans).
    {
        FunctionBuilder fb(m, "compute_mst", {vtxPtr}, i64);
        Value graph = fb.arg(0);
        Value total = fb.var(i64);
        fb.assign(total, fb.iconst(0));
        // Take the first vertex into the tree.
        Value in_tree_id = fb.var(i64);
        fb.assign(in_tree_id, fb.loadField(graph, 0));
        fb.storeField(graph, 1, fb.iconst(-1)); // mark in tree
        ForLoop round(fb, fb.iconst(1), fb.iconst(nVertices));
        {
            // Relax distances against the vertex added last round.
            Value cur = fb.var(vtxPtr);
            fb.assign(cur, graph);
            WhileLoop scan(fb);
            scan.test(fb.ne(cur, fb.iconst(0)));
            {
                Value dist = fb.loadField(cur, 1);
                IfElse not_in_tree(fb, fb.sge(dist, fb.iconst(0)));
                Value w = fb.call("hash_find", {cur, in_tree_id});
                IfElse better(fb,
                              fb.and_(fb.sge(w, fb.iconst(0)),
                                      fb.slt(w, dist)));
                fb.storeField(cur, 1, w);
                better.finish();
                not_in_tree.finish();
            }
            fb.assign(cur, fb.loadField(cur, 3));
            scan.finish();

            // Pick the closest fringe vertex.
            Value best = fb.var(vtxPtr);
            Value best_d = fb.var(i64);
            fb.assign(best, fb.nullPtr(vertex));
            fb.assign(best_d, fb.iconst(1 << 30));
            fb.assign(cur, graph);
            WhileLoop pick(fb);
            pick.test(fb.ne(cur, fb.iconst(0)));
            {
                Value dist = fb.loadField(cur, 1);
                IfElse cand(fb, fb.and_(fb.sge(dist, fb.iconst(0)),
                                        fb.slt(dist, best_d)));
                fb.assign(best, cur);
                fb.assign(best_d, dist);
                cand.finish();
            }
            fb.assign(cur, fb.loadField(cur, 3));
            pick.finish();

            IfElse found(fb, fb.ne(best, fb.iconst(0)));
            fb.assign(total, fb.add(total, best_d));
            fb.assign(in_tree_id, fb.loadField(best, 0));
            fb.storeField(best, 1, fb.iconst(-1));
            found.otherwise();
            fb.jmp(round.breakTarget());
            found.finish();
        }
        round.finish();
        fb.ret(total);
    }

    {
        FunctionBuilder fb(m, "main", {}, i64);
        Value graph = fb.call("make_graph");
        fb.ret(fb.call("compute_mst", {graph}));
    }
}

} // namespace workloads
} // namespace infat
