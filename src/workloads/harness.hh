/**
 * @file
 * The experiment harness: runs a workload under one of the paper's
 * five configurations and collects everything Table 4 and Figures
 * 10-12 report.
 */

#ifndef INFAT_WORKLOADS_HARNESS_HH
#define INFAT_WORKLOADS_HARNESS_HH

#include <string>
#include <vector>

#include "ifp/config.hh"
#include "runtime/runtime.hh"
#include "support/stats.hh"
#include "support/trace.hh"
#include "workloads/workload.hh"

namespace infat {

class GuestProfiler;

namespace oracle {
class ShadowOracle;
} // namespace oracle

namespace workloads {

/** The configurations of §5.2. */
enum class Config
{
    /** Uninstrumented program, glibc-model allocator. */
    Baseline,
    /** Instrumented, subheap allocator. */
    Subheap,
    /** Instrumented, wrapped allocator. */
    Wrapped,
    /** Instrumented, subheap, promote behaves as a nop. */
    SubheapNoPromote,
    /** Instrumented, wrapped, promote behaves as a nop. */
    WrappedNoPromote,
};

const char *toString(Config config);

struct RunResult
{
    std::string workload;
    Config config = Config::Baseline;

    uint64_t checksum = 0;
    uint64_t instructions = 0;
    uint64_t cycles = 0;

    // Figure 11 categories.
    uint64_t promoteInstrs = 0;
    uint64_t ifpArith = 0;
    uint64_t bndLdSt = 0;

    // Table 4: promote behaviour.
    uint64_t promotes = 0;
    uint64_t validPromotes = 0;
    uint64_t bypassNull = 0;
    uint64_t bypassLegacy = 0;
    uint64_t narrowAttempts = 0;
    uint64_t narrowSuccess = 0;
    uint64_t narrowFail = 0;

    // Table 4: object instrumentation.
    uint64_t localObjects = 0;
    uint64_t localObjectsWithLayout = 0;
    uint64_t heapObjects = 0;
    uint64_t heapObjectsWithLayout = 0;
    uint64_t globalObjects = 0;
    uint64_t globalObjectsWithLayout = 0;

    // Cache behaviour (§5.2.2 discussion).
    uint64_t l1dHits = 0;
    uint64_t l1dMisses = 0;

    // Figure 12.
    uint64_t residentBytes = 0;
    uint64_t heapPeak = 0;

    /**
     * Host wall-clock spent executing this run (build + instrument +
     * simulate + stat collection), for the BENCH_selfperf.json
     * trajectory. Measured per run with a steady clock, so it is valid
     * when runs execute concurrently on a ThreadPool — but beware that
     * concurrent runs time-share the host's cores, so per-run times
     * rise with the job count even as suite wall-clock falls.
     */
    double hostMillis = 0.0;

    /**
     * Detached copy of the machine's full stat registry (vm, promote,
     * l1d, l2, runtime, mem groups), taken after syncStats(); outlives
     * the Machine that produced it.
     */
    StatSnapshot stats;
};

/**
 * Optional observability attachments for a run: a structured trace
 * sink (support/trace.hh) and/or a path to write the full stat
 * registry as JSON.
 */
struct Observability
{
    /** When non-empty, the stat snapshot is written here as JSON. */
    std::string statsJsonPath;
    /** When non-null, installed on the machine for the whole run. */
    TraceSink *traceSink = nullptr;
    /** Category mask for traceSink (default: all categories). */
    uint32_t traceCategories = traceMaskAll;
    /**
     * When non-null, attached to the machine before run() — every
     * checked access is diffed against the oracle's independent
     * verdict, and its "oracle" stat group joins the run's snapshot.
     * Must outlive the run. Attaching disables the interpreter's fast
     * path, so only use on functional (correctness) runs.
     */
    oracle::ShadowOracle *oracle = nullptr;
    /**
     * When non-null, attached to the machine for the whole run — the
     * interpreter feeds it per-block cycle/instruction attribution and
     * per-check-site hotness (support/profile.hh), and the run's stat
     * snapshot gains a "profile" JSON section. Host-side only: the
     * superblock engine stays active and simulated stats are
     * bit-identical with or without a profiler attached. Must outlive
     * the run.
     */
    GuestProfiler *profiler = nullptr;
    /**
     * Enable trap forensics allocation records (VmConfig::forensics):
     * guest traps carry a TrapReport with a nearest-object diagnosis
     * and allocation site. Host-side only, like the profiler.
     */
    bool forensics = false;
};

/** Build, (optionally) instrument, and execute one workload. */
RunResult runWorkload(const Workload &workload, Config config);
RunResult runWorkload(const Workload &workload, Config config,
                      const Observability &obs);

/** Convenience: run by name (fatal on unknown workload). */
RunResult runWorkload(std::string_view name, Config config);
RunResult runWorkload(std::string_view name, Config config,
                      const Observability &obs);

/**
 * Fully parameterized run for ablation studies: any combination of
 * allocator, IFP feature toggles, check placement, and the §5.2.4
 * superscalar timing model.
 */
struct CustomRun
{
    bool instrumented = true;
    AllocatorKind allocator = AllocatorKind::Subheap;
    IfpConfig ifp;
    bool implicitChecks = true;
    bool explicitChecks = false;
    bool superscalar = false;
    bool useL2 = false;
    /**
     * Host interpreter engine selection (VmConfig equivalents). These
     * never affect simulated results — they exist so the differential
     * tests and the bench ablation can pin an engine per run. Both the
     * per-run flags and the process-global engineTuning() must enable
     * a feature for it to be active (they are ANDed).
     */
    bool superblocks = true;
    bool superblockFusion = true;
    bool superblockCheckElim = true;
    bool threadedDispatch = true;
    bool jit = true;
};

/** Human-readable label for a CustomRun ("custom-subheap+ss+l2"…). */
std::string describe(const CustomRun &custom);

RunResult runWorkloadCustom(const Workload &workload,
                            const CustomRun &custom);
RunResult runWorkloadCustom(const Workload &workload,
                            const CustomRun &custom,
                            const Observability &obs);

/**
 * Process-wide run recording: when enabled, every harness run appends
 * its (workload, config label, stat snapshot) triple to a global list.
 * The bench binaries use this to export full stat trajectories as JSON
 * without threading state through every table-printing loop.
 *
 * Recording is guarded by a mutex, so runs may execute on ThreadPool
 * workers; recordedRuns() returns a snapshot taken under the lock.
 * With concurrent runs the append order is nondeterministic — readers
 * that need stable output (bench_util's StatsExport) sort by
 * (workload, label) before writing.
 */
struct RecordedRun
{
    std::string workload;
    std::string label;
    StatSnapshot stats;
};

void setRunRecording(bool enabled);
bool runRecordingEnabled();
std::vector<RecordedRun> recordedRuns();
void clearRecordedRuns();

/**
 * Process-wide host-engine tuning, applied (ANDed) on top of whatever
 * VmConfig a harness entry point builds — including the fixed
 * five-configuration runWorkload path, which has no per-run knob. Lets
 * a bench binary or test pin every run in the process to one engine
 * (e.g. bench_selfperf --engine=general). Host-side only: simulated
 * results are identical under any setting. Not thread-safe against
 * concurrent runs; set it before spawning ThreadPool work.
 */
struct EngineTuning
{
    bool superblocks = true;
    bool superblockFusion = true;
    bool superblockCheckElim = true;
    bool threadedDispatch = true;
    bool jit = true;
    /** When nonzero, overrides VmConfig::jitThreshold for every run. */
    uint32_t jitThreshold = 0;
    /**
     * Emit Call/CallPtr/Ret templates in jitted code (VmConfig::
     * jitCalls). Off = the jit-nocalls ablation engine: every guest
     * call bails to the interpreter, as in PR 7.
     */
    bool jitCalls = true;
};

void setEngineTuning(const EngineTuning &tuning);
EngineTuning engineTuning();

/**
 * Named host-engine selections, shared by every binary exposing an
 * `--engine=` flag (bench_selfperf, ifpsim, the differential tools).
 * From slowest to fastest:
 *
 *   general           general interpreter (superblocks off)
 *   superblock-base   superblocks, no fusion / no check elimination
 *   superblock-nofuse superblocks + check elimination, no fusion
 *   superblock-noelim superblocks + fusion, no check elimination
 *   superblock        full PR-4 superblock interpreter (switch dispatch)
 *   threaded          superblock + tier-1 direct-threaded dispatch
 *   jit-nocalls       threaded + tier-2 JIT, guest calls bail (PR-7 shape)
 *   jit               threaded + tier-2 x86-64 template JIT (default)
 *
 * All of them produce bit-identical simulated results; the name only
 * picks the host execution strategy.
 */
std::vector<std::string> engineNames();

/** Resolve @p name to its tuning; false (out untouched) if unknown. */
bool engineTuningForName(std::string_view name, EngineTuning &out);

/** Comma-separated engineNames() for error messages. */
std::string engineNamesJoined();

} // namespace workloads
} // namespace infat

#endif // INFAT_WORKLOADS_HARNESS_HH
