/**
 * @file
 * Juliet-style functional test-case generator (paper §5.1).
 *
 * The paper evaluates detection on the NIST Juliet 1.3 buffer
 * overflow / underwrite / overread / underread categories: each test
 * case pairs a *good* (in-bounds) and a *bad* (out-of-bounds) code
 * fragment, and the defense must trap every bad fragment while passing
 * every good one. The suite is proprietary-ish in spirit but entirely
 * mechanical, so this generator reproduces its structure: a cross
 * product of flaw kind, object location, and access pattern, each
 * emitted as a small IR program.
 *
 * Beyond Juliet's object-granularity cases, the generator also emits
 * *intra-object* cases (overflow from one struct field into a sibling)
 * that only a subobject-granularity defense can catch — the paper
 * notes all such Juliet cases were optimized away by the compiler in
 * their runs; here they execute.
 */

#ifndef INFAT_JULIET_JULIET_HH
#define INFAT_JULIET_JULIET_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ir/module.hh"
#include "runtime/runtime.hh"
#include "support/stats.hh"
#include "vm/forensics.hh"

namespace infat {
namespace juliet {

enum class Flaw
{
    Overflow,   // write past the upper bound
    Underwrite, // write below the lower bound
    Overread,   // read past the upper bound
    Underread,  // read below the lower bound

    // Temporal classes (lock-and-key scheme, DESIGN.md). Unlike the
    // spatial flaws, these are generated over an explicit cell list
    // (not the full location x pattern cross product), because a
    // lifetime bug needs an end-of-lifetime event the location must
    // support (free, or a returned stack frame).
    UseAfterFree,   // CWE-416: dangling pointer held in a register
    DanglingReload, // CWE-416: dangling pointer reloaded (promote path)
    DoubleFree,     // CWE-415: second free of the same allocation
};

enum class Location
{
    Stack,
    Heap,
    Global,
};

enum class Pattern
{
    DirectIndex,   // buf[k], constant k
    VarIndex,      // buf[k], k via an opaque helper
    LoopBound,     // for (i = 0; i <= n; ++i) buf[i]  (off by one)
    PtrArith,      // q = buf + k; *q
    CrossFunction, // helper(buf, k) dereferences
    ReloadPromote, // store buf to a global, reload (promote), index
    IntraField,    // struct { buf[8]; sensitive; }: buf[k] directly
    IntraReload,   // same, with &s.buf stored and reloaded first

    // Temporal-only patterns.
    Recycle,    // free + same-size realloc recycles the slot first
    Wraparound, // 16 reuses alias the 4-bit generation (residual FN)
};

const char *toString(Flaw flaw);
const char *toString(Location location);
const char *toString(Pattern pattern);

struct TestCase
{
    Flaw flaw;
    Location location;
    Pattern pattern;
    /** Bad variant (must trap) vs good variant (must pass). */
    bool bad;

    std::string name() const;
    /** Whether detection requires subobject granularity. */
    bool intraObject() const;
    /** Whether the flaw is a lifetime (temporal) violation. */
    bool temporal() const;
    /**
     * Non-null iff this cell's bad variant lies outside the temporal
     * scheme's coverage: the name of the documented residual bucket
     * ("register_held", "generation_wraparound") the expected miss is
     * accounted under. Suites count such misses as explained rather
     * than as detection failures — but only when the cell indeed
     * misses; a trap still counts as detected.
     */
    const char *expectedMissBucket() const;

    /** Build the case's module (main performs the access). */
    void build(ir::Module &module) const;
};

/** The full generated suite (good + bad variants). */
std::vector<TestCase> generateSuite();

struct CaseOutcome
{
    TestCase testCase;
    bool trapped = false;
    std::string trapDetail;
    /** bad && trapped, or good && !trapped. */
    bool correct = false;
    /**
     * Trap forensics report (vm/forensics.hh) for trapped cases:
     * symbolized guest stack, decoded faulting pointer, metadata
     * decode, and nearest-object diagnosis with allocation site. The
     * suite always runs with VmConfig::forensics enabled — host-side
     * only, so detection outcomes are unaffected.
     */
    std::shared_ptr<const TrapReport> report;
};

struct SuiteResult
{
    std::vector<CaseOutcome> outcomes;
    size_t total = 0;
    size_t badDetected = 0;
    /** Unexplained misses only; gates pin this to zero. */
    size_t badMissed = 0;
    /** Expected misses of cells outside the temporal coverage,
     *  accounted per named bucket in missBuckets. */
    size_t badExplained = 0;
    size_t falsePositives = 0;
    size_t goodPassed = 0;
    /** Explained-miss counts keyed by TestCase::expectedMissBucket. */
    std::map<std::string, size_t> missBuckets;
};

/**
 * Run the suite instrumented with the given allocator. When
 * @p instrumented is false the baseline is run instead (expected to
 * miss everything except wild accesses).
 */
SuiteResult runSuite(AllocatorKind allocator, bool instrumented = true);

/** Run a single case; returns its outcome. */
CaseOutcome runCase(const TestCase &test_case, AllocatorKind allocator,
                    bool instrumented = true);

/**
 * One case run with the differential bounds oracle attached
 * (oracle/oracle.hh): beyond the pass/trap outcome, the oracle's
 * verdict diff for every checked access in the run.
 */
struct OracleCaseOutcome
{
    CaseOutcome outcome;
    uint64_t checks = 0;
    uint64_t abstained = 0;
    uint64_t falseNegatives = 0;
    uint64_t falsePositives = 0;
    // Temporal axis (Stale verdicts and free-path diffs), kept apart
    // from the spatial counters so the spatial zero-FN gate retains
    // its meaning.
    uint64_t temporalTruePositives = 0;
    uint64_t temporalFalseNegatives = 0;
    uint64_t temporalFalsePositives = 0;
};

/**
 * Differential results for the whole suite, broken down per
 * (flaw, location, pattern) cell so a hole in one corner of the
 * defense shows up as that cell's counter instead of vanishing into
 * a total.
 */
struct OracleSuiteResult
{
    struct Cell
    {
        uint64_t falseNegatives = 0;
        uint64_t falsePositives = 0;
        uint64_t temporalFalseNegatives = 0;
        uint64_t temporalFalsePositives = 0;
    };

    std::vector<OracleCaseOutcome> outcomes;
    /** Keyed "<flaw>_<location>_<pattern>". */
    std::map<std::string, Cell> cells;
    size_t total = 0;
    size_t badDetected = 0;
    /** Unexplained misses only (see SuiteResult::badMissed). */
    size_t badMissed = 0;
    size_t badExplained = 0;
    size_t goodPassed = 0;
    size_t suiteFalsePositives = 0;
    std::map<std::string, size_t> missBuckets;
    uint64_t checks = 0;
    uint64_t abstained = 0;
    uint64_t falseNegatives = 0;
    uint64_t falsePositives = 0;
    uint64_t temporalTruePositives = 0;
    uint64_t temporalFalseNegatives = 0;
    /** Temporal FNs from cells with no explanation bucket; the
     *  version-covered zero-FN gate pins this (not the total). */
    uint64_t temporalFalseNegativesUnexplained = 0;
    uint64_t temporalFalsePositives = 0;

    /** Zero oracle FN/FP (spatial; temporal outside the documented
     *  residual buckets) and full good/bad suite correctness. */
    bool clean() const;
    /** Export totals plus per-cell fn_/fp_ counters into @p group. */
    void addToStats(StatGroup &group) const;
};

/** Run one case with an oracle attached (always instrumented). */
OracleCaseOutcome runCaseWithOracle(const TestCase &test_case,
                                    AllocatorKind allocator);

/** Run the full suite with the oracle attached. */
OracleSuiteResult runSuiteWithOracle(AllocatorKind allocator);

} // namespace juliet
} // namespace infat

#endif // INFAT_JULIET_JULIET_HH
