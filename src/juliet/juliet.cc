#include "juliet/juliet.hh"

#include "compiler/instrument.hh"
#include "ir/builder.hh"
#include "oracle/oracle.hh"
#include "support/logging.hh"
#include "vm/libc_model.hh"
#include "vm/machine.hh"
#include "workloads/dsl.hh"

namespace infat {
namespace juliet {

using namespace ir;
using workloads::ForLoop;
using workloads::IfElse;

const char *
toString(Flaw flaw)
{
    switch (flaw) {
      case Flaw::Overflow: return "overflow";
      case Flaw::Underwrite: return "underwrite";
      case Flaw::Overread: return "overread";
      case Flaw::Underread: return "underread";
      case Flaw::UseAfterFree: return "uaf";
      case Flaw::DanglingReload: return "dangling";
      case Flaw::DoubleFree: return "doublefree";
    }
    return "?";
}

const char *
toString(Location location)
{
    switch (location) {
      case Location::Stack: return "stack";
      case Location::Heap: return "heap";
      case Location::Global: return "global";
    }
    return "?";
}

const char *
toString(Pattern pattern)
{
    switch (pattern) {
      case Pattern::DirectIndex: return "direct";
      case Pattern::VarIndex: return "varindex";
      case Pattern::LoopBound: return "loop";
      case Pattern::PtrArith: return "ptrarith";
      case Pattern::CrossFunction: return "crossfn";
      case Pattern::ReloadPromote: return "reload";
      case Pattern::IntraField: return "intrafield";
      case Pattern::IntraReload: return "intrareload";
      case Pattern::Recycle: return "recycle";
      case Pattern::Wraparound: return "wrap";
    }
    return "?";
}

std::string
TestCase::name() const
{
    return strfmt("%s_%s_%s_%s", toString(flaw), toString(location),
                  toString(pattern), bad ? "bad" : "good");
}

bool
TestCase::intraObject() const
{
    return pattern == Pattern::IntraField ||
           pattern == Pattern::IntraReload;
}

bool
TestCase::temporal() const
{
    return flaw == Flaw::UseAfterFree ||
           flaw == Flaw::DanglingReload || flaw == Flaw::DoubleFree;
}

const char *
TestCase::expectedMissBucket() const
{
    // The documented residual undetectables (DESIGN.md, temporal
    // section): a dangling pointer that never round-trips through
    // promote keeps its stale key unexamined, and a slot reused
    // exactly 16 times aliases the 4-bit generation.
    if (flaw == Flaw::UseAfterFree)
        return "register_held";
    if (flaw == Flaw::DanglingReload && pattern == Pattern::Wraparound)
        return "generation_wraparound";
    return nullptr;
}

namespace {

constexpr int64_t bufElems = 8;

bool
isWrite(Flaw flaw)
{
    return flaw == Flaw::Overflow || flaw == Flaw::Underwrite;
}

bool
isUnder(Flaw flaw)
{
    return flaw == Flaw::Underwrite || flaw == Flaw::Underread;
}

/** The accessed element index for a variant. */
int64_t
accessIndex(Flaw flaw, bool bad)
{
    if (isUnder(flaw))
        return bad ? -1 : 0;
    return bad ? bufElems : bufElems - 1;
}

class CaseBuilder
{
  public:
    CaseBuilder(Module &m, const TestCase &tc) : m_(m), tc_(tc)
    {
        declareLibc(m_);
        TypeContext &types = m_.types();
        elem_ = types.i64();
        // A guarded struct so both intra-overflow and intra-underflow
        // stay inside the object: { guard; buf[8]; sensitive; }.
        intraTy_ = types.createStruct(
            "JulietS",
            {types.i64(), types.array(types.i64(), bufElems),
             types.i64()});
    }

    void
    build()
    {
        TypeContext &types = m_.types();
        // Opaque identity for indices (defeats any constant folding).
        {
            FunctionBuilder fb(m_, "opaque_id", {types.i64()},
                               types.i64());
            fb.ret(fb.arg(0));
        }
        // Pointer laundering helper: forces escape, keeps bounds via
        // the calling convention.
        {
            FunctionBuilder fb(m_, "launder", {types.ptr(elem_)},
                               types.ptr(elem_));
            fb.ret(fb.arg(0));
        }
        // Cross-function accessors.
        {
            FunctionBuilder fb(m_, "helper_read",
                               {types.ptr(elem_), types.i64()},
                               types.i64());
            fb.ret(fb.load(fb.elemPtr(fb.arg(0), fb.arg(1))));
        }
        {
            FunctionBuilder fb(m_, "helper_write",
                               {types.ptr(elem_), types.i64()},
                               types.voidTy());
            fb.store(fb.iconst(7), fb.elemPtr(fb.arg(0), fb.arg(1)));
            fb.retVoid();
        }

        // Globals used by locations/patterns.
        if (tc_.location == Location::Global) {
            if (tc_.intraObject())
                globalObj_ = m_.addGlobal("g_struct", intraTy_);
            else
                globalObj_ = m_.addGlobal(
                    "g_buf", types.array(elem_, bufElems));
        }
        slot_ = m_.addGlobal("g_slot", types.ptr(elem_));

        FunctionBuilder fb(m_, "main", {}, types.i64());
        Value buf = makeBuffer(fb);
        Value k = fb.iconst(accessIndex(tc_.flaw, tc_.bad));
        emitAccess(fb, buf, k);
        fb.ret(fb.iconst(0));
    }

  private:
    /** Produce the buffer pointer (element-typed, 8 elements). */
    Value
    makeBuffer(FunctionBuilder &fb)
    {
        TypeContext &types = m_.types();
        Value base;
        if (tc_.intraObject()) {
            Value obj;
            switch (tc_.location) {
              case Location::Stack:
                obj = fb.stackAlloc(intraTy_);
                break;
              case Location::Heap:
                obj = fb.mallocTyped(intraTy_);
                break;
              case Location::Global:
                obj = fb.globalAddr(globalObj_);
                break;
            }
            // Make the object escape so it is instrumented.
            fb.call("launder", {fb.ptrCast(obj, elem_)});
            fb.storeField(obj, 0, fb.iconst(1)); // guard
            fb.storeField(obj, 2, fb.iconst(2)); // sensitive
            base = fb.fieldPtr(obj, 1); // &obj->buf
            return fb.ptrCast(base, elem_);
        }
        switch (tc_.location) {
          case Location::Stack:
            base = fb.stackAlloc(elem_, bufElems);
            break;
          case Location::Heap:
            base = fb.mallocTyped(elem_, fb.iconst(bufElems));
            break;
          case Location::Global:
            base = fb.ptrCast(fb.globalAddr(globalObj_), elem_);
            break;
        }
        return fb.call("launder", {fb.ptrCast(base, elem_)});
    }

    void
    emitAccess(FunctionBuilder &fb, Value buf, Value k)
    {
        bool write = isWrite(tc_.flaw);
        auto touch = [&](Value ptr) {
            if (write)
                fb.store(fb.iconst(7), ptr);
            else
                fb.load(ptr);
        };

        switch (tc_.pattern) {
          case Pattern::DirectIndex:
          case Pattern::IntraField:
            touch(fb.elemPtr(buf,
                             accessIndex(tc_.flaw, tc_.bad)));
            return;
          case Pattern::VarIndex: {
            Value idx = fb.call("opaque_id", {k});
            touch(fb.elemPtr(buf, idx));
            return;
          }
          case Pattern::LoopBound: {
            // Off-by-one loop: the bad variant includes the index one
            // past (or one before) the valid range.
            int64_t start = isUnder(tc_.flaw)
                                ? accessIndex(tc_.flaw, tc_.bad)
                                : 0;
            int64_t limit = isUnder(tc_.flaw)
                                ? bufElems
                                : accessIndex(tc_.flaw, tc_.bad) + 1;
            ForLoop i(fb, fb.iconst(start), fb.iconst(limit));
            touch(fb.elemPtr(buf, i.index()));
            i.finish();
            return;
          }
          case Pattern::PtrArith: {
            Value mid = fb.elemPtr(buf, fb.call("opaque_id",
                                                {fb.iconst(4)}));
            Value target = fb.elemPtr(mid, fb.addImm(k, -4));
            touch(target);
            return;
          }
          case Pattern::CrossFunction: {
            if (write)
                fb.call("helper_write", {buf, k});
            else
                fb.call("helper_read", {buf, k});
            return;
          }
          case Pattern::ReloadPromote:
          case Pattern::IntraReload: {
            fb.store(buf, fb.globalAddr(slot_));
            Value reloaded = fb.load(fb.globalAddr(slot_));
            touch(fb.elemPtr(reloaded, fb.call("opaque_id", {k})));
            return;
          }
          case Pattern::Recycle:
          case Pattern::Wraparound:
            panic("temporal-only pattern in a spatial case");
        }
    }

    Module &m_;
    const TestCase &tc_;
    const Type *elem_ = nullptr;
    StructType *intraTy_ = nullptr;
    GlobalId globalObj_ = 0;
    GlobalId slot_ = 0;
};

/**
 * Builder for the temporal (lifetime) cells. Each cell pairs a good
 * variant that exercises the same allocator churn with every access
 * inside the object's lifetime (pinning the no-false-positive side of
 * the lock-and-key scheme) against a bad variant whose access or free
 * happens after the lifetime ended.
 */
class TemporalCaseBuilder
{
  public:
    TemporalCaseBuilder(Module &m, const TestCase &tc) : m_(m), tc_(tc)
    {
        declareLibc(m_);
        elem_ = m_.types().i64();
    }

    void
    build()
    {
        TypeContext &types = m_.types();
        {
            FunctionBuilder fb(m_, "opaque_id", {types.i64()},
                               types.i64());
            fb.ret(fb.arg(0));
        }
        {
            FunctionBuilder fb(m_, "launder", {types.ptr(elem_)},
                               types.ptr(elem_));
            fb.ret(fb.arg(0));
        }
        {
            FunctionBuilder fb(m_, "helper_read",
                               {types.ptr(elem_), types.i64()},
                               types.i64());
            fb.ret(fb.load(fb.elemPtr(fb.arg(0), fb.arg(1))));
        }
        {
            FunctionBuilder fb(m_, "helper_free", {types.ptr(elem_)},
                               types.voidTy());
            fb.freePtr(fb.arg(0));
            fb.retVoid();
        }
        slot_ = m_.addGlobal("g_slot", types.ptr(elem_));

        switch (tc_.flaw) {
          case Flaw::UseAfterFree:
            buildUseAfterFree();
            return;
          case Flaw::DanglingReload:
            buildDanglingReload();
            return;
          case Flaw::DoubleFree:
            buildDoubleFree();
            return;
          default:
            panic("not a temporal flaw");
        }
    }

  private:
    Value
    mallocBuf(FunctionBuilder &fb)
    {
        return fb.mallocTyped(elem_, fb.iconst(bufElems));
    }

    /** An escaping (hence registered/instrumented) stack buffer. */
    Value
    stackBuf(FunctionBuilder &fb)
    {
        Value local =
            fb.ptrCast(fb.stackAlloc(elem_, bufElems), elem_);
        return fb.call("launder", {local});
    }

    /**
     * CWE-416 with the dangling pointer held in a register: the stale
     * key never round-trips through promote, so the bad variants land
     * in the "register_held" residual bucket by design.
     */
    void
    buildUseAfterFree()
    {
        TypeContext &types = m_.types();
        if (tc_.location == Location::Stack) {
            if (tc_.bad) {
                // Callee returns a pointer to its own registered
                // local; main dereferences it after the frame died.
                FunctionBuilder cb(m_, "make_buf", {},
                                   types.ptr(elem_));
                Value p = stackBuf(cb);
                cb.store(cb.iconst(7), cb.elemPtr(p, int64_t{0}));
                cb.ret(p);

                FunctionBuilder fb(m_, "main", {}, types.i64());
                Value dangling = fb.call("make_buf", {});
                fb.ret(fb.load(fb.elemPtr(dangling, int64_t{0})));
            } else {
                FunctionBuilder fb(m_, "main", {}, types.i64());
                Value p = stackBuf(fb);
                fb.store(fb.iconst(7), fb.elemPtr(p, int64_t{0}));
                fb.ret(fb.load(fb.elemPtr(p, int64_t{0})));
            }
            return;
        }
        FunctionBuilder fb(m_, "main", {}, types.i64());
        Value p = mallocBuf(fb);
        fb.store(fb.iconst(7), fb.elemPtr(p, int64_t{0}));
        auto access = [&]() -> Value {
            if (tc_.pattern == Pattern::CrossFunction)
                return fb.call("helper_read", {p, fb.iconst(0)});
            return fb.load(fb.elemPtr(p, int64_t{0}));
        };
        if (tc_.bad) {
            fb.freePtr(p);
            fb.ret(access());
        } else {
            Value x = access();
            fb.freePtr(p);
            fb.ret(x);
        }
    }

    /**
     * CWE-416 through the promote path: the dangling pointer is
     * reloaded from memory, so its stale key meets the bumped lock.
     */
    void
    buildDanglingReload()
    {
        TypeContext &types = m_.types();
        if (tc_.location == Location::Stack) {
            buildStackDanglingReload();
            return;
        }
        FunctionBuilder fb(m_, "main", {}, types.i64());
        Value p = mallocBuf(fb);
        fb.store(fb.iconst(7), fb.elemPtr(p, int64_t{0}));
        switch (tc_.pattern) {
          case Pattern::ReloadPromote:
            fb.store(p, fb.globalAddr(slot_));
            if (tc_.bad)
                fb.freePtr(p);
            break;
          case Pattern::Recycle: {
            // The replacement allocation recycles the freed slot, so
            // only the bumped generation distinguishes the dangling
            // reload (bad) from the live one (good).
            if (tc_.bad)
                fb.store(p, fb.globalAddr(slot_));
            fb.freePtr(p);
            Value q = mallocBuf(fb);
            fb.store(fb.iconst(9), fb.elemPtr(q, int64_t{0}));
            if (!tc_.bad)
                fb.store(q, fb.globalAddr(slot_));
            break;
          }
          case Pattern::Wraparound: {
            // 16 reuses wrap the 4-bit generation back onto the
            // stale key: the documented residual miss.
            fb.store(p, fb.globalAddr(slot_));
            fb.freePtr(p);
            ForLoop i(fb, fb.iconst(0), fb.iconst(15));
            fb.freePtr(mallocBuf(fb));
            i.finish();
            Value last = mallocBuf(fb);
            fb.store(fb.iconst(9), fb.elemPtr(last, int64_t{0}));
            if (!tc_.bad)
                fb.store(last, fb.globalAddr(slot_));
            break;
          }
          default:
            panic("unsupported dangling-reload pattern");
        }
        Value reloaded = fb.load(fb.globalAddr(slot_));
        Value x = fb.load(fb.elemPtr(reloaded, int64_t{0}));
        if (!tc_.bad && tc_.pattern == Pattern::ReloadPromote)
            fb.freePtr(p);
        fb.ret(x);
    }

    void
    buildStackDanglingReload()
    {
        TypeContext &types = m_.types();
        if (tc_.pattern == Pattern::ReloadPromote) {
            {
                FunctionBuilder cb(m_, "stash", {}, types.i64());
                Value p = stackBuf(cb);
                cb.store(cb.iconst(7), cb.elemPtr(p, int64_t{0}));
                cb.store(p, cb.globalAddr(slot_));
                if (tc_.bad) {
                    cb.ret(cb.iconst(0));
                } else {
                    // Good: reload and access while the frame lives.
                    Value d = cb.load(cb.globalAddr(slot_));
                    cb.ret(cb.load(cb.elemPtr(d, int64_t{0})));
                }
            }
            FunctionBuilder fb(m_, "main", {}, types.i64());
            Value v = fb.call("stash", {});
            if (!tc_.bad) {
                fb.ret(v);
                return;
            }
            Value d = fb.load(fb.globalAddr(slot_));
            fb.ret(fb.load(fb.elemPtr(d, int64_t{0})));
            return;
        }
        // Pattern::Recycle: two calls of the same function reuse the
        // frame slot, re-registering the local at the same address
        // with a bumped generation. The bad second call reloads the
        // first call's pointer (stale key, recycled slot); the good
        // one re-publishes its own live local first.
        {
            FunctionBuilder cb(m_, "phase", {types.i64()},
                               types.i64());
            Value p = stackBuf(cb);
            Value r = cb.var(types.i64());
            IfElse branch(cb, cb.eq(cb.arg(0), cb.iconst(0)));
            cb.store(cb.iconst(7), cb.elemPtr(p, int64_t{0}));
            cb.store(p, cb.globalAddr(slot_));
            cb.assign(r, cb.iconst(0));
            branch.otherwise();
            if (!tc_.bad) {
                cb.store(cb.iconst(9), cb.elemPtr(p, int64_t{0}));
                cb.store(p, cb.globalAddr(slot_));
            }
            Value d = cb.load(cb.globalAddr(slot_));
            cb.assign(r, cb.load(cb.elemPtr(d, int64_t{0})));
            branch.finish();
            cb.ret(r);
        }
        FunctionBuilder fb(m_, "main", {}, types.i64());
        fb.call("phase", {fb.call("opaque_id", {fb.iconst(0)})});
        fb.ret(fb.call("phase", {fb.call("opaque_id", {fb.iconst(1)})}));
    }

    /** CWE-415: the second free meets the already-bumped lock. */
    void
    buildDoubleFree()
    {
        TypeContext &types = m_.types();
        FunctionBuilder fb(m_, "main", {}, types.i64());
        Value p = mallocBuf(fb);
        fb.store(fb.iconst(7), fb.elemPtr(p, int64_t{0}));
        switch (tc_.pattern) {
          case Pattern::DirectIndex:
            fb.freePtr(p);
            if (tc_.bad)
                fb.freePtr(p);
            break;
          case Pattern::Recycle: {
            // Free through the stale pointer after the slot was
            // recycled: only the generation tells it from a correct
            // free of the new object.
            fb.freePtr(p);
            Value q = mallocBuf(fb);
            fb.store(fb.iconst(9), fb.elemPtr(q, int64_t{0}));
            fb.freePtr(tc_.bad ? p : q);
            break;
          }
          case Pattern::CrossFunction:
            fb.call("helper_free", {p});
            if (tc_.bad)
                fb.call("helper_free", {p});
            break;
          default:
            panic("unsupported double-free pattern");
        }
        fb.ret(fb.iconst(0));
    }

    Module &m_;
    const TestCase &tc_;
    const Type *elem_ = nullptr;
    GlobalId slot_ = 0;
};

} // namespace

void
TestCase::build(Module &module) const
{
    if (temporal())
        TemporalCaseBuilder(module, *this).build();
    else
        CaseBuilder(module, *this).build();
}

std::vector<TestCase>
generateSuite()
{
    std::vector<TestCase> cases;
    const Flaw flaws[] = {Flaw::Overflow, Flaw::Underwrite,
                          Flaw::Overread, Flaw::Underread};
    const Location locations[] = {Location::Stack, Location::Heap,
                                  Location::Global};
    const Pattern patterns[] = {
        Pattern::DirectIndex,   Pattern::VarIndex,
        Pattern::LoopBound,     Pattern::PtrArith,
        Pattern::CrossFunction, Pattern::ReloadPromote,
        Pattern::IntraField,    Pattern::IntraReload,
    };
    for (Flaw flaw : flaws) {
        for (Location location : locations) {
            for (Pattern pattern : patterns) {
                for (bool bad : {false, true})
                    cases.push_back({flaw, location, pattern, bad});
            }
        }
    }

    // Temporal cells: an explicit list rather than a cross product —
    // each needs an end-of-lifetime event its location supports (a
    // heap free or a returning stack frame; globals never die).
    struct TemporalCell
    {
        Flaw flaw;
        Location location;
        Pattern pattern;
    };
    const TemporalCell temporal_cells[] = {
        {Flaw::UseAfterFree, Location::Heap, Pattern::DirectIndex},
        {Flaw::UseAfterFree, Location::Heap, Pattern::CrossFunction},
        {Flaw::UseAfterFree, Location::Stack, Pattern::DirectIndex},
        {Flaw::DanglingReload, Location::Heap, Pattern::ReloadPromote},
        {Flaw::DanglingReload, Location::Heap, Pattern::Recycle},
        {Flaw::DanglingReload, Location::Heap, Pattern::Wraparound},
        {Flaw::DanglingReload, Location::Stack, Pattern::ReloadPromote},
        {Flaw::DanglingReload, Location::Stack, Pattern::Recycle},
        {Flaw::DoubleFree, Location::Heap, Pattern::DirectIndex},
        {Flaw::DoubleFree, Location::Heap, Pattern::Recycle},
        {Flaw::DoubleFree, Location::Heap, Pattern::CrossFunction},
    };
    for (const TemporalCell &cell : temporal_cells) {
        for (bool bad : {false, true})
            cases.push_back({cell.flaw, cell.location, cell.pattern,
                             bad});
    }
    return cases;
}

CaseOutcome
runCase(const TestCase &test_case, AllocatorKind allocator,
        bool instrumented)
{
    Module module;
    test_case.build(module);
    InstrumentResult inst;
    if (instrumented)
        inst = instrumentModule(module);

    VmConfig config;
    config.instrumented = instrumented;
    config.allocator = allocator;
    config.useCache = false; // functional runs
    config.forensics = true; // capture allocation sites for reports
    Machine machine(module, instrumented ? &inst.layouts : nullptr,
                    config);
    installLibc(machine);

    CaseOutcome outcome;
    outcome.testCase = test_case;
    try {
        machine.run();
    } catch (const GuestTrap &trap) {
        // Temporal cells count any safety trap as detection (a freed
        // wrapped-allocator object poisons the promote spatially);
        // spatial cells still accept only the spatial kinds.
        bool detected = test_case.temporal()
                            ? trap.isSafetyViolation()
                            : trap.isSpatialViolation();
        outcome.trapped = detected;
        outcome.trapDetail = trap.what();
        outcome.report = trap.reportPtr();
        if (!detected)
            throw; // unexpected trap kind: a harness bug
    }
    outcome.correct = test_case.bad == outcome.trapped;
    return outcome;
}

SuiteResult
runSuite(AllocatorKind allocator, bool instrumented)
{
    SuiteResult result;
    for (const TestCase &test_case : generateSuite()) {
        CaseOutcome outcome = runCase(test_case, allocator,
                                      instrumented);
        result.total++;
        if (test_case.bad) {
            const char *bucket = test_case.expectedMissBucket();
            if (outcome.trapped) {
                result.badDetected++;
            } else if (instrumented && bucket != nullptr) {
                // A documented residual of the temporal scheme, not a
                // detection failure; baseline runs keep counting every
                // miss so the defense's contribution stays visible.
                result.badExplained++;
                result.missBuckets[bucket]++;
            } else {
                result.badMissed++;
            }
        } else {
            if (outcome.trapped)
                result.falsePositives++;
            else
                result.goodPassed++;
        }
        result.outcomes.push_back(std::move(outcome));
    }
    return result;
}

OracleCaseOutcome
runCaseWithOracle(const TestCase &test_case, AllocatorKind allocator)
{
    Module module;
    test_case.build(module);
    InstrumentResult inst = instrumentModule(module);

    VmConfig config;
    config.instrumented = true;
    config.allocator = allocator;
    config.useCache = false; // functional runs

    // The oracle must outlive the machine (the machine holds a raw
    // pointer to it until destruction).
    oracle::ShadowOracle shadow;
    Machine machine(module, &inst.layouts, config);
    installLibc(machine);
    machine.setOracle(&shadow);

    OracleCaseOutcome result;
    result.outcome.testCase = test_case;
    try {
        machine.run();
    } catch (const GuestTrap &trap) {
        bool detected = test_case.temporal()
                            ? trap.isSafetyViolation()
                            : trap.isSpatialViolation();
        result.outcome.trapped = detected;
        result.outcome.trapDetail = trap.what();
        if (!detected)
            throw; // unexpected trap kind: a harness bug
    }
    result.outcome.correct =
        test_case.bad == result.outcome.trapped;
    result.checks = shadow.checks();
    result.abstained = shadow.abstained();
    result.falseNegatives = shadow.falseNegatives();
    result.falsePositives = shadow.falsePositives();
    result.temporalTruePositives = shadow.temporalTruePositives();
    result.temporalFalseNegatives = shadow.temporalFalseNegatives();
    result.temporalFalsePositives = shadow.temporalFalsePositives();
    // Temporal false negatives are expected exactly in the cells with
    // an explanation bucket; everywhere else they are discrepancies
    // worth shouting about, as are temporal false positives anywhere.
    bool temporal_noise =
        result.temporalFalsePositives > 0 ||
        (result.temporalFalseNegatives > 0 &&
         test_case.expectedMissBucket() == nullptr);
    if (result.falseNegatives + result.falsePositives > 0 ||
        temporal_noise) {
        for (const oracle::Discrepancy &d : shadow.discrepancies()) {
            warn("juliet-oracle %s: %s oracle=%s addr=0x%llx "
                 "size=%llu obj=[0x%llx,+%llu)",
                 test_case.name().c_str(),
                 d.falseNegative ? "FALSE-NEGATIVE" : "FALSE-POSITIVE",
                 oracle::toString(d.verdict),
                 static_cast<unsigned long long>(d.addr),
                 static_cast<unsigned long long>(d.size),
                 static_cast<unsigned long long>(d.objBase),
                 static_cast<unsigned long long>(d.objSize));
        }
    }
    return result;
}

OracleSuiteResult
runSuiteWithOracle(AllocatorKind allocator)
{
    OracleSuiteResult result;
    for (const TestCase &test_case : generateSuite()) {
        OracleCaseOutcome c = runCaseWithOracle(test_case, allocator);
        result.total++;
        const char *bucket = test_case.expectedMissBucket();
        if (test_case.bad) {
            if (c.outcome.trapped) {
                result.badDetected++;
            } else if (bucket != nullptr) {
                result.badExplained++;
                result.missBuckets[bucket]++;
            } else {
                result.badMissed++;
            }
        } else {
            if (c.outcome.trapped)
                result.suiteFalsePositives++;
            else
                result.goodPassed++;
        }
        std::string cell = std::string(toString(test_case.flaw)) + "_" +
                           toString(test_case.location) + "_" +
                           toString(test_case.pattern);
        result.cells[cell].falseNegatives += c.falseNegatives;
        result.cells[cell].falsePositives += c.falsePositives;
        result.cells[cell].temporalFalseNegatives +=
            c.temporalFalseNegatives;
        result.cells[cell].temporalFalsePositives +=
            c.temporalFalsePositives;
        result.checks += c.checks;
        result.abstained += c.abstained;
        result.falseNegatives += c.falseNegatives;
        result.falsePositives += c.falsePositives;
        result.temporalTruePositives += c.temporalTruePositives;
        result.temporalFalseNegatives += c.temporalFalseNegatives;
        if (bucket == nullptr) {
            result.temporalFalseNegativesUnexplained +=
                c.temporalFalseNegatives;
        }
        result.temporalFalsePositives += c.temporalFalsePositives;
        result.outcomes.push_back(std::move(c));
    }
    return result;
}

bool
OracleSuiteResult::clean() const
{
    return falseNegatives == 0 && falsePositives == 0 &&
           badMissed == 0 && suiteFalsePositives == 0 &&
           temporalFalsePositives == 0 &&
           temporalFalseNegativesUnexplained == 0 && checks > 0;
}

void
OracleSuiteResult::addToStats(StatGroup &group) const
{
    group.counter("cases").set(total);
    group.counter("bad_detected").set(badDetected);
    group.counter("bad_missed").set(badMissed);
    group.counter("bad_explained").set(badExplained);
    group.counter("good_passed").set(goodPassed);
    group.counter("suite_false_positives").set(suiteFalsePositives);
    group.counter("checks").set(checks);
    group.counter("abstained").set(abstained);
    group.counter("false_negatives").set(falseNegatives);
    group.counter("false_positives").set(falsePositives);
    group.counter("temporal_true_positives")
        .set(temporalTruePositives);
    group.counter("temporal_false_negatives")
        .set(temporalFalseNegatives);
    group.counter("temporal_false_negatives_unexplained")
        .set(temporalFalseNegativesUnexplained);
    group.counter("temporal_false_positives")
        .set(temporalFalsePositives);
    for (const auto &[bucket, count] : missBuckets)
        group.counter("miss_bucket_" + bucket).set(count);
    for (const auto &[name, cell] : cells) {
        group.counter("fn_" + name).set(cell.falseNegatives);
        group.counter("fp_" + name).set(cell.falsePositives);
        // Per-cell temporal counters only where they fired: the
        // spatial cells would otherwise double the export for
        // counters that are zero by construction.
        if (cell.temporalFalseNegatives != 0) {
            group.counter("tfn_" + name)
                .set(cell.temporalFalseNegatives);
        }
        if (cell.temporalFalsePositives != 0) {
            group.counter("tfp_" + name)
                .set(cell.temporalFalsePositives);
        }
    }
}

} // namespace juliet
} // namespace infat
