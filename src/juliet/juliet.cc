#include "juliet/juliet.hh"

#include "compiler/instrument.hh"
#include "ir/builder.hh"
#include "oracle/oracle.hh"
#include "support/logging.hh"
#include "vm/libc_model.hh"
#include "vm/machine.hh"
#include "workloads/dsl.hh"

namespace infat {
namespace juliet {

using namespace ir;
using workloads::ForLoop;
using workloads::IfElse;

const char *
toString(Flaw flaw)
{
    switch (flaw) {
      case Flaw::Overflow: return "overflow";
      case Flaw::Underwrite: return "underwrite";
      case Flaw::Overread: return "overread";
      case Flaw::Underread: return "underread";
    }
    return "?";
}

const char *
toString(Location location)
{
    switch (location) {
      case Location::Stack: return "stack";
      case Location::Heap: return "heap";
      case Location::Global: return "global";
    }
    return "?";
}

const char *
toString(Pattern pattern)
{
    switch (pattern) {
      case Pattern::DirectIndex: return "direct";
      case Pattern::VarIndex: return "varindex";
      case Pattern::LoopBound: return "loop";
      case Pattern::PtrArith: return "ptrarith";
      case Pattern::CrossFunction: return "crossfn";
      case Pattern::ReloadPromote: return "reload";
      case Pattern::IntraField: return "intrafield";
      case Pattern::IntraReload: return "intrareload";
    }
    return "?";
}

std::string
TestCase::name() const
{
    return strfmt("%s_%s_%s_%s", toString(flaw), toString(location),
                  toString(pattern), bad ? "bad" : "good");
}

bool
TestCase::intraObject() const
{
    return pattern == Pattern::IntraField ||
           pattern == Pattern::IntraReload;
}

namespace {

constexpr int64_t bufElems = 8;

bool
isWrite(Flaw flaw)
{
    return flaw == Flaw::Overflow || flaw == Flaw::Underwrite;
}

bool
isUnder(Flaw flaw)
{
    return flaw == Flaw::Underwrite || flaw == Flaw::Underread;
}

/** The accessed element index for a variant. */
int64_t
accessIndex(Flaw flaw, bool bad)
{
    if (isUnder(flaw))
        return bad ? -1 : 0;
    return bad ? bufElems : bufElems - 1;
}

class CaseBuilder
{
  public:
    CaseBuilder(Module &m, const TestCase &tc) : m_(m), tc_(tc)
    {
        declareLibc(m_);
        TypeContext &types = m_.types();
        elem_ = types.i64();
        // A guarded struct so both intra-overflow and intra-underflow
        // stay inside the object: { guard; buf[8]; sensitive; }.
        intraTy_ = types.createStruct(
            "JulietS",
            {types.i64(), types.array(types.i64(), bufElems),
             types.i64()});
    }

    void
    build()
    {
        TypeContext &types = m_.types();
        // Opaque identity for indices (defeats any constant folding).
        {
            FunctionBuilder fb(m_, "opaque_id", {types.i64()},
                               types.i64());
            fb.ret(fb.arg(0));
        }
        // Pointer laundering helper: forces escape, keeps bounds via
        // the calling convention.
        {
            FunctionBuilder fb(m_, "launder", {types.ptr(elem_)},
                               types.ptr(elem_));
            fb.ret(fb.arg(0));
        }
        // Cross-function accessors.
        {
            FunctionBuilder fb(m_, "helper_read",
                               {types.ptr(elem_), types.i64()},
                               types.i64());
            fb.ret(fb.load(fb.elemPtr(fb.arg(0), fb.arg(1))));
        }
        {
            FunctionBuilder fb(m_, "helper_write",
                               {types.ptr(elem_), types.i64()},
                               types.voidTy());
            fb.store(fb.iconst(7), fb.elemPtr(fb.arg(0), fb.arg(1)));
            fb.retVoid();
        }

        // Globals used by locations/patterns.
        if (tc_.location == Location::Global) {
            if (tc_.intraObject())
                globalObj_ = m_.addGlobal("g_struct", intraTy_);
            else
                globalObj_ = m_.addGlobal(
                    "g_buf", types.array(elem_, bufElems));
        }
        slot_ = m_.addGlobal("g_slot", types.ptr(elem_));

        FunctionBuilder fb(m_, "main", {}, types.i64());
        Value buf = makeBuffer(fb);
        Value k = fb.iconst(accessIndex(tc_.flaw, tc_.bad));
        emitAccess(fb, buf, k);
        fb.ret(fb.iconst(0));
    }

  private:
    /** Produce the buffer pointer (element-typed, 8 elements). */
    Value
    makeBuffer(FunctionBuilder &fb)
    {
        TypeContext &types = m_.types();
        Value base;
        if (tc_.intraObject()) {
            Value obj;
            switch (tc_.location) {
              case Location::Stack:
                obj = fb.stackAlloc(intraTy_);
                break;
              case Location::Heap:
                obj = fb.mallocTyped(intraTy_);
                break;
              case Location::Global:
                obj = fb.globalAddr(globalObj_);
                break;
            }
            // Make the object escape so it is instrumented.
            fb.call("launder", {fb.ptrCast(obj, elem_)});
            fb.storeField(obj, 0, fb.iconst(1)); // guard
            fb.storeField(obj, 2, fb.iconst(2)); // sensitive
            base = fb.fieldPtr(obj, 1); // &obj->buf
            return fb.ptrCast(base, elem_);
        }
        switch (tc_.location) {
          case Location::Stack:
            base = fb.stackAlloc(elem_, bufElems);
            break;
          case Location::Heap:
            base = fb.mallocTyped(elem_, fb.iconst(bufElems));
            break;
          case Location::Global:
            base = fb.ptrCast(fb.globalAddr(globalObj_), elem_);
            break;
        }
        return fb.call("launder", {fb.ptrCast(base, elem_)});
    }

    void
    emitAccess(FunctionBuilder &fb, Value buf, Value k)
    {
        bool write = isWrite(tc_.flaw);
        auto touch = [&](Value ptr) {
            if (write)
                fb.store(fb.iconst(7), ptr);
            else
                fb.load(ptr);
        };

        switch (tc_.pattern) {
          case Pattern::DirectIndex:
          case Pattern::IntraField:
            touch(fb.elemPtr(buf,
                             accessIndex(tc_.flaw, tc_.bad)));
            return;
          case Pattern::VarIndex: {
            Value idx = fb.call("opaque_id", {k});
            touch(fb.elemPtr(buf, idx));
            return;
          }
          case Pattern::LoopBound: {
            // Off-by-one loop: the bad variant includes the index one
            // past (or one before) the valid range.
            int64_t start = isUnder(tc_.flaw)
                                ? accessIndex(tc_.flaw, tc_.bad)
                                : 0;
            int64_t limit = isUnder(tc_.flaw)
                                ? bufElems
                                : accessIndex(tc_.flaw, tc_.bad) + 1;
            ForLoop i(fb, fb.iconst(start), fb.iconst(limit));
            touch(fb.elemPtr(buf, i.index()));
            i.finish();
            return;
          }
          case Pattern::PtrArith: {
            Value mid = fb.elemPtr(buf, fb.call("opaque_id",
                                                {fb.iconst(4)}));
            Value target = fb.elemPtr(mid, fb.addImm(k, -4));
            touch(target);
            return;
          }
          case Pattern::CrossFunction: {
            if (write)
                fb.call("helper_write", {buf, k});
            else
                fb.call("helper_read", {buf, k});
            return;
          }
          case Pattern::ReloadPromote:
          case Pattern::IntraReload: {
            fb.store(buf, fb.globalAddr(slot_));
            Value reloaded = fb.load(fb.globalAddr(slot_));
            touch(fb.elemPtr(reloaded, fb.call("opaque_id", {k})));
            return;
          }
        }
    }

    Module &m_;
    const TestCase &tc_;
    const Type *elem_ = nullptr;
    StructType *intraTy_ = nullptr;
    GlobalId globalObj_ = 0;
    GlobalId slot_ = 0;
};

} // namespace

void
TestCase::build(Module &module) const
{
    CaseBuilder(module, *this).build();
}

std::vector<TestCase>
generateSuite()
{
    std::vector<TestCase> cases;
    const Flaw flaws[] = {Flaw::Overflow, Flaw::Underwrite,
                          Flaw::Overread, Flaw::Underread};
    const Location locations[] = {Location::Stack, Location::Heap,
                                  Location::Global};
    const Pattern patterns[] = {
        Pattern::DirectIndex,   Pattern::VarIndex,
        Pattern::LoopBound,     Pattern::PtrArith,
        Pattern::CrossFunction, Pattern::ReloadPromote,
        Pattern::IntraField,    Pattern::IntraReload,
    };
    for (Flaw flaw : flaws) {
        for (Location location : locations) {
            for (Pattern pattern : patterns) {
                for (bool bad : {false, true})
                    cases.push_back({flaw, location, pattern, bad});
            }
        }
    }
    return cases;
}

CaseOutcome
runCase(const TestCase &test_case, AllocatorKind allocator,
        bool instrumented)
{
    Module module;
    test_case.build(module);
    InstrumentResult inst;
    if (instrumented)
        inst = instrumentModule(module);

    VmConfig config;
    config.instrumented = instrumented;
    config.allocator = allocator;
    config.useCache = false; // functional runs
    config.forensics = true; // capture allocation sites for reports
    Machine machine(module, instrumented ? &inst.layouts : nullptr,
                    config);
    installLibc(machine);

    CaseOutcome outcome;
    outcome.testCase = test_case;
    try {
        machine.run();
    } catch (const GuestTrap &trap) {
        outcome.trapped = trap.isSpatialViolation();
        outcome.trapDetail = trap.what();
        outcome.report = trap.reportPtr();
        if (!trap.isSpatialViolation())
            throw; // unexpected trap kind: a harness bug
    }
    outcome.correct = test_case.bad == outcome.trapped;
    return outcome;
}

SuiteResult
runSuite(AllocatorKind allocator, bool instrumented)
{
    SuiteResult result;
    for (const TestCase &test_case : generateSuite()) {
        CaseOutcome outcome = runCase(test_case, allocator,
                                      instrumented);
        result.total++;
        if (test_case.bad) {
            if (outcome.trapped)
                result.badDetected++;
            else
                result.badMissed++;
        } else {
            if (outcome.trapped)
                result.falsePositives++;
            else
                result.goodPassed++;
        }
        result.outcomes.push_back(std::move(outcome));
    }
    return result;
}

OracleCaseOutcome
runCaseWithOracle(const TestCase &test_case, AllocatorKind allocator)
{
    Module module;
    test_case.build(module);
    InstrumentResult inst = instrumentModule(module);

    VmConfig config;
    config.instrumented = true;
    config.allocator = allocator;
    config.useCache = false; // functional runs

    // The oracle must outlive the machine (the machine holds a raw
    // pointer to it until destruction).
    oracle::ShadowOracle shadow;
    Machine machine(module, &inst.layouts, config);
    installLibc(machine);
    machine.setOracle(&shadow);

    OracleCaseOutcome result;
    result.outcome.testCase = test_case;
    try {
        machine.run();
    } catch (const GuestTrap &trap) {
        result.outcome.trapped = trap.isSpatialViolation();
        result.outcome.trapDetail = trap.what();
        if (!trap.isSpatialViolation())
            throw; // unexpected trap kind: a harness bug
    }
    result.outcome.correct =
        test_case.bad == result.outcome.trapped;
    result.checks = shadow.checks();
    result.abstained = shadow.abstained();
    result.falseNegatives = shadow.falseNegatives();
    result.falsePositives = shadow.falsePositives();
    if (result.falseNegatives + result.falsePositives > 0) {
        for (const oracle::Discrepancy &d : shadow.discrepancies()) {
            warn("juliet-oracle %s: %s oracle=%s addr=0x%llx "
                 "size=%llu obj=[0x%llx,+%llu)",
                 test_case.name().c_str(),
                 d.falseNegative ? "FALSE-NEGATIVE" : "FALSE-POSITIVE",
                 oracle::toString(d.verdict),
                 static_cast<unsigned long long>(d.addr),
                 static_cast<unsigned long long>(d.size),
                 static_cast<unsigned long long>(d.objBase),
                 static_cast<unsigned long long>(d.objSize));
        }
    }
    return result;
}

OracleSuiteResult
runSuiteWithOracle(AllocatorKind allocator)
{
    OracleSuiteResult result;
    for (const TestCase &test_case : generateSuite()) {
        OracleCaseOutcome c = runCaseWithOracle(test_case, allocator);
        result.total++;
        if (test_case.bad) {
            if (c.outcome.trapped)
                result.badDetected++;
            else
                result.badMissed++;
        } else {
            if (c.outcome.trapped)
                result.suiteFalsePositives++;
            else
                result.goodPassed++;
        }
        std::string cell = std::string(toString(test_case.flaw)) + "_" +
                           toString(test_case.location) + "_" +
                           toString(test_case.pattern);
        result.cells[cell].falseNegatives += c.falseNegatives;
        result.cells[cell].falsePositives += c.falsePositives;
        result.checks += c.checks;
        result.abstained += c.abstained;
        result.falseNegatives += c.falseNegatives;
        result.falsePositives += c.falsePositives;
        result.outcomes.push_back(std::move(c));
    }
    return result;
}

bool
OracleSuiteResult::clean() const
{
    return falseNegatives == 0 && falsePositives == 0 &&
           badMissed == 0 && suiteFalsePositives == 0 && checks > 0;
}

void
OracleSuiteResult::addToStats(StatGroup &group) const
{
    group.counter("cases").set(total);
    group.counter("bad_detected").set(badDetected);
    group.counter("bad_missed").set(badMissed);
    group.counter("good_passed").set(goodPassed);
    group.counter("suite_false_positives").set(suiteFalsePositives);
    group.counter("checks").set(checks);
    group.counter("abstained").set(abstained);
    group.counter("false_negatives").set(falseNegatives);
    group.counter("false_positives").set(falsePositives);
    for (const auto &[name, cell] : cells) {
        group.counter("fn_" + name).set(cell.falseNegatives);
        group.counter("fp_" + name).set(cell.falsePositives);
    }
}

} // namespace juliet
} // namespace infat
