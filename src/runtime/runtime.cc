#include "runtime/runtime.hh"

#include "ifp/config.hh"
#include "ifp/metadata.hh"
#include "support/bitops.hh"
#include "support/logging.hh"
#include "vm/trap.hh"

namespace infat {

namespace {

/**
 * Guest-instruction cost constants for the allocator models. These are
 * the knobs DESIGN.md §6 documents: flat per-call costs approximating
 * glibc malloc/free, the subheap pool fast path, and the metadata
 * maintenance the instrumentation adds.
 */
constexpr uint64_t plainMallocCost = 60;
constexpr uint64_t plainFreeCost = 40;
constexpr uint64_t wrappedMetaCost = 12;  // meta encode + ifpmac + ifpmd
constexpr uint64_t wrappedFreeMetaCost = 6;
constexpr uint64_t subheapFastCost = 22;  // pool lookup + slot pop
constexpr uint64_t subheapFastIfpCost = 6;
constexpr uint64_t subheapRefillCost = 150; // buddy + block meta init
constexpr uint64_t subheapRefillIfpCost = 30;
constexpr uint64_t subheapFreeCost = 18;
constexpr uint64_t subheapFreeIfpCost = 4;
constexpr uint64_t registerLocalCost = 14;
constexpr uint64_t registerGlobalCost = 18;
constexpr uint64_t deregisterCost = 8;

} // namespace

const char *
toString(AllocatorKind kind)
{
    switch (kind) {
      case AllocatorKind::Wrapped:
        return "wrapped";
      case AllocatorKind::Subheap:
        return "subheap";
      case AllocatorKind::Mixed:
        return "mixed";
    }
    return "?";
}

Runtime::Runtime(GuestMemory &mem, IfpControlRegs &regs,
                 AllocatorKind kind, bool instrumented, IfpConfig ifp)
    : mem_(mem), regs_(regs), kind_(kind), instrumented_(instrumented),
      config_(ifp),
      freelist_(layout::freelistBase, layout::freelistLimit),
      buddy_(layout::buddyBase, layout::buddyOrderLog2, 12),
      stats_("runtime"),
      allocBytes_(stats_.histogram("alloc_bytes", Histogram::log2(28))),
      plainAllocBytes_(
          stats_.histogram("plain_alloc_bytes", Histogram::log2(28))),
      localOffsetBytes_(
          stats_.histogram("local_offset_bytes", Histogram::log2(28))),
      globalTableBytes_(
          stats_.histogram("global_table_bytes", Histogram::log2(28))),
      subheapBytes_(
          stats_.histogram("subheap_bytes", Histogram::log2(28))),
      ifpMallocCost_(stats_.distribution("ifp_malloc_cost"))
{
}

void
Runtime::init(const LayoutRegistry *layouts)
{
    // Per-process MAC key. A real system derives this from kernel
    // entropy at exec time; the simulation needs determinism.
    regs_.macKey = {0x0ddc0ffee0ddba11ULL, 0x5eedf00d5eedf00dULL};

    regs_.globalTableBase = layout::tableBase;
    regs_.globalTableRows = IfpConfig::globalTableRows;
    globalRowUsed_.assign(IfpConfig::globalTableRows, false);

    // Materialize compile-time layout tables after the global table.
    GuestAddr cursor = layout::tableBase +
                       uint64_t{IfpConfig::globalTableRows} *
                           IfpConfig::globalRowBytes;
    layoutAddrs_.clear();
    if (layouts) {
        for (const LayoutTable &table : layouts->tables()) {
            table.writeTo(mem_, cursor);
            layoutAddrs_.push_back(cursor);
            cursor += roundUp(table.byteSize(), 16);
        }
    }
}

GuestAddr
Runtime::layoutAddr(ir::LayoutId id) const
{
    if (id == ir::noLayout)
        return 0;
    return layoutAddrs_.at(id);
}

uint64_t
Runtime::paddedSlotSize(uint64_t object_size)
{
    if (object_size <= IfpConfig::localMaxObjectBytes) {
        return roundUp(object_size, IfpConfig::granuleBytes) +
               IfpConfig::localMetadataBytes;
    }
    return roundUp(object_size, IfpConfig::granuleBytes);
}

// --- Temporal generation keys ---

uint64_t
Runtime::takeGen(GuestAddr addr)
{
    if (!config_.temporalEnabled)
        return 0;
    auto it = addrGen_.find(addr);
    return it == addrGen_.end() ? 0 : it->second;
}

void
Runtime::retireGen(GuestAddr addr, uint64_t gen)
{
    if (!config_.temporalEnabled)
        return;
    addrGen_[addr] = static_cast<uint8_t>(
        (gen + 1) & mask(IfpConfig::temporalGenBits));
}

void
Runtime::invalidFree(const char *what, TaggedPtr ptr)
{
    stats_.counter("invalid_frees")++;
    throw GuestTrap(TrapKind::InvalidFree, invalidFreeDetail(what, ptr));
}

// --- Baseline allocation ---

GuestAddr
Runtime::plainMalloc(uint64_t size, RuntimeCost &cost)
{
    GuestAddr addr = freelist_.allocate(size);
    fatal_if(addr == 0, "guest heap exhausted (freelist, %llu bytes)",
             static_cast<unsigned long long>(size));
    cost.instructions += plainMallocCost;
    cost.touch(addr - FreeListAllocator::headerBytes, 16, true);
    stats_.counter("plain_mallocs")++;
    plainAllocBytes_.sample(size);
    return addr;
}

void
Runtime::plainFree(GuestAddr addr, RuntimeCost &cost)
{
    if (addr == 0)
        return;
    cost.instructions += plainFreeCost;
    if (!freelist_.isLive(addr)) {
        // glibc model: a double/interior/wild free silently corrupts
        // the arena rather than failing fast, so the baseline run
        // survives the bug (ground truth for the bad case comes from
        // the oracle and the instrumented run). Modelled as a no-op so
        // the simulation's own bookkeeping stays intact.
        stats_.counter("plain_invalid_frees")++;
        return;
    }
    freelist_.deallocate(addr);
    cost.touch(addr - FreeListAllocator::headerBytes, 16, true);
    stats_.counter("plain_frees")++;
}

// --- Instrumented allocation ---

IfpAllocation
Runtime::ifpMalloc(uint64_t size, ir::LayoutId layout, RuntimeCost &cost)
{
    stats_.counter("ifp_mallocs")++;
    if (layout != ir::noLayout)
        stats_.counter("ifp_mallocs_with_layout")++;
    allocBytes_.sample(size);
    uint64_t cost_before = cost.instructions;
    IfpAllocation alloc;
    switch (kind_) {
      case AllocatorKind::Subheap:
        alloc = subheapMalloc(size, layout, cost);
        break;
      case AllocatorKind::Wrapped:
        alloc = wrappedMalloc(size, layout, cost);
        break;
      case AllocatorKind::Mixed:
        // Pool the small size-classed objects (where sharing one block
        // metadata pays off); let one-off and large allocations take
        // the wrapped path.
        alloc = size <= 512 ? subheapMalloc(size, layout, cost)
                            : wrappedMalloc(size, layout, cost);
        break;
    }
    ifpMallocCost_.sample(cost.instructions - cost_before);
    return alloc;
}

void
Runtime::ifpFree(TaggedPtr ptr, RuntimeCost &cost)
{
    if (ptr.isNull())
        return;
    stats_.counter("ifp_frees")++;
    if (ptr.scheme() == Scheme::Subheap)
        return subheapFree(ptr, cost);
    return wrappedFree(ptr, cost);
}

IfpAllocation
Runtime::makeLocalOffset(GuestAddr addr, uint64_t size,
                         GuestAddr layout_addr, RuntimeCost &cost)
{
    panic_if(addr & (IfpConfig::granuleBytes - 1),
             "local-offset object base not granule aligned");
    GuestAddr meta_addr = addr + roundUp(size, IfpConfig::granuleBytes);
    uint64_t gen = takeGen(addr);
    LocalOffsetMeta::write(mem_, meta_addr, size, layout_addr,
                           regs_.macKey, gen);
    cost.touch(meta_addr, IfpConfig::localMetadataBytes, true);

    uint64_t offset = (meta_addr - roundDown(addr, IfpConfig::granuleBytes)) /
                      IfpConfig::granuleBytes;
    panic_if(offset > mask(IfpConfig::localOffsetBits),
             "local-offset granule offset overflow");
    TaggedPtr ptr = TaggedPtr::make(
        addr, Scheme::LocalOffset,
        offset << IfpConfig::localSubobjBits).withGeneration(gen);
    stats_.counter("local_offset_objects")++;
    localOffsetBytes_.sample(size);
    return {ptr, Bounds(addr, addr + size)};
}

IfpAllocation
Runtime::makeGlobalTable(GuestAddr addr, uint64_t size, RuntimeCost &cost)
{
    uint32_t row = allocGlobalRow();
    uint64_t gen = takeGen(addr);
    GlobalTableRow entry;
    entry.base = addr;
    entry.size = size;
    entry.generation = static_cast<uint8_t>(gen);
    entry.valid = true;
    GlobalTableRow::write(mem_, regs_.globalTableBase, row, entry);
    cost.touch(GlobalTableRow::rowAddr(regs_.globalTableBase, row),
               IfpConfig::globalRowBytes, true);
    TaggedPtr ptr = TaggedPtr::make(addr, Scheme::GlobalTable, row)
                        .withGeneration(gen);
    stats_.counter("global_table_objects")++;
    globalTableBytes_.sample(size);
    return {ptr, Bounds(addr, addr + size)};
}

IfpAllocation
Runtime::wrappedMalloc(uint64_t size, ir::LayoutId layout,
                       RuntimeCost &cost)
{
    // The wrapped allocator transparently over-allocates so the
    // local-offset metadata fits after the object (paper §4.2.1).
    GuestAddr addr = plainMalloc(paddedSlotSize(size), cost);
    cost.instructions += wrappedMetaCost;
    cost.ifpInstructions += wrappedMetaCost;
    if (size <= IfpConfig::localMaxObjectBytes)
        return makeLocalOffset(addr, size, layoutAddr(layout), cost);
    return makeGlobalTable(addr, size, cost);
}

void
Runtime::wrappedFree(TaggedPtr ptr, RuntimeCost &cost)
{
    GuestAddr addr = ptr.addr();
    cost.instructions += wrappedFreeMetaCost;
    cost.ifpInstructions += wrappedFreeMetaCost;
    switch (ptr.scheme()) {
      case Scheme::LocalOffset: {
        GuestAddr meta_addr =
            roundDown(addr, IfpConfig::granuleBytes) +
            ptr.localGranuleOffset() * IfpConfig::granuleBytes;
        cost.touch(meta_addr, IfpConfig::localMetadataBytes, false);
        LocalOffsetMeta m = LocalOffsetMeta::read(mem_, meta_addr);
        bool shape_ok = m.magic == LocalOffsetMeta::magicValue &&
                        m.objectSize != 0 &&
                        m.objectSize <= IfpConfig::localMaxObjectBytes;
        if (!shape_ok)
            invalidFree("double or wild free", ptr);
        // The metadata sits at the granule-rounded end of the object,
        // so the only base it certifies is meta_addr minus the rounded
        // object size: anything else is an interior free.
        GuestAddr base =
            meta_addr - roundUp(m.objectSize, IfpConfig::granuleBytes);
        if (addr != base)
            invalidFree("interior free", ptr);
        if (config_.temporalEnabled && ptr.generation() != m.generation)
            invalidFree("stale free", ptr);
        LocalOffsetMeta::erase(mem_, meta_addr);
        cost.touch(meta_addr, IfpConfig::localMetadataBytes, true);
        retireGen(addr, m.generation);
        break;
      }
      case Scheme::GlobalTable: {
        auto row = static_cast<uint32_t>(ptr.globalTableIndex());
        if (regs_.globalTableBase == 0 || row >= regs_.globalTableRows)
            invalidFree("free with out-of-range global row", ptr);
        cost.touch(GlobalTableRow::rowAddr(regs_.globalTableBase, row),
                   IfpConfig::globalRowBytes, false);
        GlobalTableRow entry =
            GlobalTableRow::read(mem_, regs_.globalTableBase, row);
        if (!entry.valid || entry.size == 0)
            invalidFree("double or wild free", ptr);
        if (entry.base != addr)
            invalidFree("interior free", ptr);
        if (config_.temporalEnabled &&
            ptr.generation() != entry.generation) {
            invalidFree("stale free", ptr);
        }
        freeGlobalRow(row);
        GlobalTableRow::erase(mem_, regs_.globalTableBase, row);
        cost.touch(GlobalTableRow::rowAddr(regs_.globalTableBase, row),
                   IfpConfig::globalRowBytes, true);
        retireGen(addr, entry.generation);
        break;
      }
      case Scheme::Legacy:
        // Untagged pointer freed by instrumented code: no metadata to
        // validate, but the chunk must still be live in the glibc
        // model or the free is invalid.
        if (!freelist_.isLive(addr))
            invalidFree("free of unknown pointer", ptr);
        break;
      default:
        panic("wrapped free of %s pointer", infat::toString(ptr.scheme()));
    }
    plainFree(addr, cost);
}

unsigned
Runtime::ctrlRegForOrder(unsigned order)
{
    auto it = orderCtrlReg_.find(order);
    if (it != orderCtrlReg_.end())
        return it->second;
    fatal_if(nextCtrlReg_ >= IfpConfig::numSubheapCtrlRegs,
             "out of subheap control registers");
    unsigned reg = nextCtrlReg_++;
    regs_.subheap[reg].valid = true;
    regs_.subheap[reg].blockOrderLog2 = static_cast<uint8_t>(order);
    regs_.subheap[reg].metaOffset = 0;
    orderCtrlReg_.emplace(order, reg);
    return reg;
}

IfpAllocation
Runtime::subheapMalloc(uint64_t size, ir::LayoutId layout,
                       RuntimeCost &cost)
{
    GuestAddr layout_addr = layoutAddr(layout);
    uint64_t slot_size = roundUp(std::max<uint64_t>(size, 1),
                                 IfpConfig::granuleBytes);

    // Objects too large even for the biggest blocks fall back to the
    // wrapped path (global table; the paper's runtime could also mix
    // allocators, §4.2.1). The temporal lock array costs up to one
    // granule of extra headroom in the worst (single-slot) case.
    unsigned min_order = log2Ceil(
        slot_size + IfpConfig::subheapMetadataBytes +
        (config_.temporalEnabled ? IfpConfig::granuleBytes : 0));
    unsigned order = std::max(16u, min_order); // default 64 KiB blocks
    if (order > 24) {
        stats_.counter("subheap_fallbacks")++;
        return wrappedMalloc(size, layout, cost);
    }

    auto key = std::make_pair(size, layout_addr);
    auto [pool_it, created] = pools_.try_emplace(key);
    SubheapPool &pool = pool_it->second;
    if (created) {
        pool.order = order;
        pool.ctrlReg = ctrlRegForOrder(order);
        pool.objectSize = size;
        pool.slotSize = slot_size;
        uint64_t block_bytes = uint64_t{1} << order;
        uint32_t slots_start =
            roundUp(IfpConfig::subheapMetadataBytes,
                    IfpConfig::granuleBytes);
        if (config_.temporalEnabled) {
            // Reserve one generation-lock byte per slot between the
            // block metadata and the slot array. More slots need more
            // lock bytes, which leave room for fewer slots; iterate to
            // the fixed point (monotone, converges in a few steps).
            for (;;) {
                auto n = static_cast<uint32_t>(
                    (block_bytes - slots_start) / slot_size);
                auto needed = static_cast<uint32_t>(
                    roundUp(IfpConfig::subheapMetadataBytes + n,
                            IfpConfig::granuleBytes));
                if (needed <= slots_start)
                    break;
                slots_start = needed;
            }
        }
        pool.slotsStart = slots_start;
        pool.numSlots = static_cast<uint32_t>(
            (block_bytes - slots_start) / slot_size);
        pool.layoutAddr = layout_addr;
    }

    cost.instructions += subheapFastCost;
    cost.ifpInstructions += subheapFastIfpCost;

    // Find a block with a free slot, dropping stale entries.
    GuestAddr block_base = 0;
    while (!pool.partialBlocks.empty()) {
        GuestAddr candidate = pool.partialBlocks.back();
        auto bit = pool.blocks.find(candidate);
        if (bit == pool.blocks.end() || bit->second.freeSlots.empty()) {
            pool.partialBlocks.pop_back();
            continue;
        }
        block_base = candidate;
        break;
    }

    if (block_base == 0) {
        // Refill: carve a new block and publish its shared metadata.
        block_base = buddy_.allocate(pool.order);
        fatal_if(block_base == 0, "guest heap exhausted (buddy)");
        SubheapBlock block;
        block.freeSlots.reserve(pool.numSlots);
        for (uint32_t i = pool.numSlots; i-- > 0;)
            block.freeSlots.push_back(i);
        block.liveSlots.assign(pool.numSlots, false);
        pool.blocks.emplace(block_base, std::move(block));
        pool.partialBlocks.push_back(block_base);
        blockOwner_.emplace(block_base, key);

        SubheapBlockMeta meta;
        meta.slotsStart = pool.slotsStart;
        meta.slotsEnd = static_cast<uint32_t>(
            pool.slotsStart + uint64_t{pool.numSlots} * pool.slotSize);
        meta.slotSize = static_cast<uint32_t>(pool.slotSize);
        meta.objectSize = static_cast<uint32_t>(pool.objectSize);
        meta.layoutTable = pool.layoutAddr;
        meta.valid = true;
        SubheapBlockMeta::write(mem_, block_base, 0, meta, regs_.macKey);
        cost.instructions += subheapRefillCost;
        cost.ifpInstructions += subheapRefillIfpCost;
        cost.touch(block_base, IfpConfig::subheapMetadataBytes, true);
        stats_.counter("subheap_blocks")++;
    }

    SubheapBlock &block = pool.blocks.at(block_base);
    uint32_t slot = block.freeSlots.back();
    block.freeSlots.pop_back();
    block.liveSlots[slot] = true;
    block.liveCount++;
    if (block.freeSlots.empty())
        pool.partialBlocks.pop_back();

    GuestAddr addr = block_base + pool.slotsStart + slot * pool.slotSize;
    cost.touch(addr, 8, true); // free-list link update
    // The slot's current lock (bumped at every free of this slot)
    // becomes the pointer's generation key; a fresh block starts at
    // whatever the lock array holds (zero-filled pages, or surviving
    // locks when buddy memory is recycled).
    uint64_t gen = 0;
    if (config_.temporalEnabled) {
        GuestAddr gen_addr =
            SubheapBlockMeta::genAddr(block_base, 0, slot);
        gen = mem_.load<uint8_t>(gen_addr) &
              mask(IfpConfig::temporalGenBits);
        cost.touch(gen_addr, 1, false);
    }
    TaggedPtr ptr = TaggedPtr::make(
        addr, Scheme::Subheap,
        static_cast<uint64_t>(pool.ctrlReg)
            << IfpConfig::subheapSubobjBits).withGeneration(gen);
    stats_.counter("subheap_objects")++;
    subheapBytes_.sample(size);
    return {ptr, Bounds(addr, addr + size)};
}

void
Runtime::subheapFree(TaggedPtr ptr, RuntimeCost &cost)
{
    GuestAddr addr = ptr.addr();
    cost.instructions += subheapFreeCost;
    cost.ifpInstructions += subheapFreeIfpCost;
    const SubheapCtrlReg &ctrl = regs_.subheap[ptr.subheapCtrlIndex()];
    if (!ctrl.valid)
        invalidFree("free with invalid subheap control register", ptr);
    GuestAddr block_base = roundDown(addr, uint64_t{1}
                                               << ctrl.blockOrderLog2);
    auto owner = blockOwner_.find(block_base);
    if (owner == blockOwner_.end())
        invalidFree("free of unknown subheap block", ptr);
    SubheapPool &pool = pools_.at(owner->second);
    SubheapBlock &block = pool.blocks.at(block_base);

    uint64_t rel = addr - block_base;
    if (rel < pool.slotsStart ||
        rel >= pool.slotsStart +
                   uint64_t{pool.numSlots} * pool.slotSize ||
        (rel - pool.slotsStart) % pool.slotSize != 0) {
        invalidFree("interior free", ptr);
    }
    auto slot = static_cast<uint32_t>(
        (rel - pool.slotsStart) / pool.slotSize);
    // Liveness is checked before the free list is touched: the old
    // path pushed the slot first, so a double free put the same slot
    // on the free list twice and corrupted the pool.
    if (!block.liveSlots[slot])
        invalidFree("double free", ptr);
    GuestAddr gen_addr =
        SubheapBlockMeta::genAddr(block_base, ctrl.metaOffset, slot);
    uint64_t lock = 0;
    if (config_.temporalEnabled) {
        lock = mem_.load<uint8_t>(gen_addr) &
               mask(IfpConfig::temporalGenBits);
        cost.touch(gen_addr, 1, false);
        if (ptr.generation() != lock)
            invalidFree("stale free", ptr);
    }

    block.liveSlots[slot] = false;
    block.freeSlots.push_back(slot);
    panic_if(block.liveCount == 0, "subheap live count underflow");
    block.liveCount--;
    if (config_.temporalEnabled) {
        // Bump the slot lock: every outstanding pointer to this slot
        // incarnation now fails the promote-time key comparison.
        mem_.store<uint8_t>(
            gen_addr, static_cast<uint8_t>(
                          (lock + 1) & mask(IfpConfig::temporalGenBits)));
        cost.touch(gen_addr, 1, true);
    }
    cost.touch(addr, 8, true);

    if (block.freeSlots.size() == 1)
        pool.partialBlocks.push_back(block_base);

    if (block.liveCount == 0 && pool.blocks.size() > 1) {
        // Return fully-free blocks (keep one warm per pool).
        SubheapBlockMeta::erase(mem_, block_base, 0);
        cost.touch(block_base, IfpConfig::subheapMetadataBytes, true);
        pool.blocks.erase(block_base);
        blockOwner_.erase(block_base);
        buddy_.deallocate(block_base, pool.order);
        stats_.counter("subheap_blocks_released")++;
    }
}

// --- Registration ---

IfpAllocation
Runtime::registerObject(GuestAddr addr, uint64_t size,
                        ir::LayoutId layout, RuntimeCost &cost)
{
    stats_.counter("registered_objects")++;
    if (layout != ir::noLayout)
        stats_.counter("registered_objects_with_layout")++;
    if (size <= IfpConfig::localMaxObjectBytes) {
        cost.instructions += registerLocalCost;
        cost.ifpInstructions += registerLocalCost;
        return makeLocalOffset(addr, size, layoutAddr(layout), cost);
    }
    cost.instructions += registerGlobalCost;
    cost.ifpInstructions += registerGlobalCost;
    return makeGlobalTable(addr, size, cost);
}

void
Runtime::deregisterObject(TaggedPtr ptr, RuntimeCost &cost)
{
    cost.instructions += deregisterCost;
    cost.ifpInstructions += deregisterCost;
    switch (ptr.scheme()) {
      case Scheme::LocalOffset: {
        GuestAddr meta_addr =
            roundDown(ptr.addr(), IfpConfig::granuleBytes) +
            ptr.localGranuleOffset() * IfpConfig::granuleBytes;
        LocalOffsetMeta::erase(mem_, meta_addr);
        cost.touch(meta_addr, IfpConfig::localMetadataBytes, true);
        // Retire the key so re-registration at the same stack slot
        // gets a fresh generation and dangling pointers to the old
        // object fail the lock comparison.
        retireGen(ptr.addr(), ptr.generation());
        break;
      }
      case Scheme::GlobalTable: {
        auto row = static_cast<uint32_t>(ptr.globalTableIndex());
        freeGlobalRow(row);
        GlobalTableRow::erase(mem_, regs_.globalTableBase, row);
        cost.touch(GlobalTableRow::rowAddr(regs_.globalTableBase, row),
                   IfpConfig::globalRowBytes, true);
        retireGen(ptr.addr(), ptr.generation());
        break;
      }
      default:
        // Deregistering a pointer that lost its tag: nothing to do.
        break;
    }
}

uint32_t
Runtime::allocGlobalRow()
{
    for (uint32_t i = 0; i < globalRowUsed_.size(); ++i) {
        uint32_t row = (globalRowHint_ + i) %
                       static_cast<uint32_t>(globalRowUsed_.size());
        if (!globalRowUsed_[row]) {
            globalRowUsed_[row] = true;
            globalRowHint_ = row + 1;
            return row;
        }
    }
    fatal("global metadata table exhausted (%u rows)",
          IfpConfig::globalTableRows);
}

void
Runtime::freeGlobalRow(uint32_t row)
{
    panic_if(!globalRowUsed_.at(row), "double free of global row %u", row);
    globalRowUsed_[row] = false;
}

uint64_t
Runtime::heapPeakFootprint() const
{
    return freelist_.peakFootprint() + buddy_.peakFootprint();
}

} // namespace infat
