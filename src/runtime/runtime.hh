/**
 * @file
 * The In-Fat Pointer runtime library model (paper §4.2).
 *
 * The runtime owns everything the paper's libifp runtime does:
 *  - process startup: MAC key, subheap control registers, the global
 *    metadata table, and materialization of compile-time layout tables
 *    into guest memory;
 *  - the two dynamic allocators of §4.2.1: the *wrapped* allocator
 *    (over-allocating on a glibc-model free-list malloc, using the
 *    local-offset scheme with a global-table fallback) and the
 *    *subheap* allocator (a pool allocator over a buddy allocator using
 *    the subheap scheme);
 *  - stack/global object registration and deregistration for the
 *    compiler-instrumented RegisterObj/DeregisterObj operations.
 *
 * Every entry point reports a RuntimeCost: the number of guest
 * instructions the operation would execute and the memory accesses it
 * makes, so the VM can charge realistic dynamic-instruction counts for
 * allocator work in both baseline and instrumented runs. The constants
 * are documented with each operation (DESIGN.md §6).
 */

#ifndef INFAT_RUNTIME_RUNTIME_HH
#define INFAT_RUNTIME_RUNTIME_HH

#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "alloc/buddy_allocator.hh"
#include "alloc/freelist_allocator.hh"
#include "compiler/layout_gen.hh"
#include "ifp/bounds.hh"
#include "ifp/config.hh"
#include "ifp/control_regs.hh"
#include "ifp/tag.hh"
#include "mem/guest_memory.hh"
#include "support/stats.hh"

namespace infat {

enum class AllocatorKind
{
    /** glibc malloc wrapped with metadata (local offset / global). */
    Wrapped,
    /** Pool-over-buddy allocator using the subheap scheme. */
    Subheap,
    /**
     * Dynamic selection (the paper's §4.2.1 future-work variant):
     * small fixed-size allocations that benefit from metadata sharing
     * go to the subheap pools; everything else takes the wrapped
     * path. free() dispatches on the pointer's scheme selector.
     */
    Mixed,
};

const char *toString(AllocatorKind kind);

/** Guest-side cost of a runtime operation, charged by the VM. */
struct RuntimeCost
{
    uint64_t instructions = 0;
    /** Memory accesses to send through the cache model, as
     *  (address, bytes, is_write) triples. */
    struct Access
    {
        GuestAddr addr;
        uint32_t bytes;
        bool write;
    };
    std::vector<Access> accesses;
    /** The subset of `instructions` attributable to IFP metadata
     *  maintenance (counted as IFP arithmetic in Figure 11). */
    uint64_t ifpInstructions = 0;

    void
    touch(GuestAddr addr, uint32_t bytes, bool write)
    {
        accesses.push_back({addr, bytes, write});
    }
};

/** Result of an instrumented allocation or registration. */
struct IfpAllocation
{
    TaggedPtr ptr;
    Bounds bounds;
};

class Runtime
{
  public:
    /**
     * @p ifp carries the temporal (lock-and-key) settings: when
     * temporalEnabled, allocations draw a 4-bit generation key
     * (pointer bits 47:44) matched by a lock in the scheme metadata,
     * and the free paths validate double/stale/interior frees,
     * throwing GuestTrap(InvalidFree) on violation.
     */
    Runtime(GuestMemory &mem, IfpControlRegs &regs, AllocatorKind kind,
            bool instrumented, IfpConfig ifp = {});

    // Holds references into stats_ (see stats.hh on reference
    // stability); copying would alias another instance's stats.
    Runtime(const Runtime &) = delete;
    Runtime &operator=(const Runtime &) = delete;

    /**
     * Process startup: key material, the global table, control
     * registers, and layout-table materialization. @p layouts may be
     * null for baseline runs.
     */
    void init(const LayoutRegistry *layouts);

    GuestAddr layoutAddr(ir::LayoutId id) const;

    // --- Baseline (uninstrumented) allocation: the glibc model ---
    GuestAddr plainMalloc(uint64_t size, RuntimeCost &cost);
    void plainFree(GuestAddr addr, RuntimeCost &cost);

    // --- Instrumented allocation (rewritten malloc/free, §4.2.1) ---
    IfpAllocation ifpMalloc(uint64_t size, ir::LayoutId layout,
                            RuntimeCost &cost);
    void ifpFree(TaggedPtr ptr, RuntimeCost &cost);

    // --- Stack / global object registration (§4.2.2) ---
    /**
     * Register an object at @p addr of @p size bytes. Picks the local
     * offset scheme when the object fits (the caller must have padded
     * the slot: granule alignment plus 16 metadata bytes), falling back
     * to the global table.
     */
    IfpAllocation registerObject(GuestAddr addr, uint64_t size,
                                 ir::LayoutId layout, RuntimeCost &cost);
    void deregisterObject(TaggedPtr ptr, RuntimeCost &cost);

    /**
     * Stack-slot footprint for an alloca of @p object_size bytes when
     * the object will be registered (granule padding + metadata).
     */
    static uint64_t paddedSlotSize(uint64_t object_size);

    AllocatorKind allocatorKind() const { return kind_; }
    bool instrumented() const { return instrumented_; }

    /** Peak heap footprint in bytes (for the Figure 12 measurement). */
    uint64_t heapPeakFootprint() const;

    StatGroup &stats() { return stats_; }

  private:
    struct SubheapBlock
    {
        std::vector<uint32_t> freeSlots;
        /** Per-slot liveness, so a double free of a slot is detected
         *  before the free list is corrupted. */
        std::vector<bool> liveSlots;
        uint32_t liveCount = 0;
    };

    struct SubheapPool
    {
        unsigned order = 0;
        unsigned ctrlReg = 0;
        uint64_t objectSize = 0;
        uint64_t slotSize = 0;
        uint32_t slotsStart = 0;
        uint32_t numSlots = 0;
        GuestAddr layoutAddr = 0;
        std::vector<GuestAddr> partialBlocks;
        std::map<GuestAddr, SubheapBlock> blocks;
    };

    IfpAllocation wrappedMalloc(uint64_t size, ir::LayoutId layout,
                                RuntimeCost &cost);
    IfpAllocation subheapMalloc(uint64_t size, ir::LayoutId layout,
                                RuntimeCost &cost);
    void wrappedFree(TaggedPtr ptr, RuntimeCost &cost);
    void subheapFree(TaggedPtr ptr, RuntimeCost &cost);

    IfpAllocation makeLocalOffset(GuestAddr addr, uint64_t size,
                                  GuestAddr layout_addr,
                                  RuntimeCost &cost);
    IfpAllocation makeGlobalTable(GuestAddr addr, uint64_t size,
                                  RuntimeCost &cost);

    /** Allocate/find the control register for a block order. */
    unsigned ctrlRegForOrder(unsigned order);

    uint32_t allocGlobalRow();
    void freeGlobalRow(uint32_t row);

    /**
     * Generation key for a new allocation / registration at @p addr.
     * Non-subheap locks live in metadata that is erased on free, so
     * the next generation per base is remembered host-side (the
     * hardware analogue: the lock survives in the freed chunk until
     * its memory is reused, giving the same mod-16 sequence).
     */
    uint64_t takeGen(GuestAddr addr);
    /** Retire @p gen at @p addr: the next allocation gets gen+1 mod 16. */
    void retireGen(GuestAddr addr, uint64_t gen);
    /** Count and raise a free-path violation as a guest trap. */
    [[noreturn]] void invalidFree(const char *what, TaggedPtr ptr);

    GuestMemory &mem_;
    IfpControlRegs &regs_;
    AllocatorKind kind_;
    bool instrumented_;
    IfpConfig config_;

    FreeListAllocator freelist_;
    BuddyAllocator buddy_;

    std::vector<GuestAddr> layoutAddrs_;
    std::vector<bool> globalRowUsed_;
    uint32_t globalRowHint_ = 0;

    /** Next generation key per object base (see takeGen). */
    std::unordered_map<GuestAddr, uint8_t> addrGen_;

    /** Subheap pools keyed by (slot size, layout table address). */
    std::map<std::pair<uint64_t, GuestAddr>, SubheapPool> pools_;
    /** Block base -> owning pool key, for free(). */
    std::map<GuestAddr, std::pair<uint64_t, GuestAddr>> blockOwner_;
    /** Block order -> control register index. */
    std::map<unsigned, unsigned> orderCtrlReg_;
    unsigned nextCtrlReg_ = 0;

    StatGroup stats_;
    /** Requested size of every instrumented (ifpMalloc) allocation. */
    Histogram &allocBytes_;
    /** Requested size of every glibc-model (plainMalloc) allocation;
     *  includes the padded requests the wrapped allocator makes. */
    Histogram &plainAllocBytes_;
    // Object sizes per metadata scheme, filled at metadata-creation
    // time (heap allocations and stack/global registrations alike).
    Histogram &localOffsetBytes_;
    Histogram &globalTableBytes_;
    Histogram &subheapBytes_;
    /** Modeled guest-instruction cost of each ifpMalloc call. */
    Distribution &ifpMallocCost_;
};

} // namespace infat

#endif // INFAT_RUNTIME_RUNTIME_HH
