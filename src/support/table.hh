/**
 * @file
 * Plain-text table formatter used by the benchmark harnesses to print
 * the paper's tables and figure series in aligned columns.
 */

#ifndef INFAT_SUPPORT_TABLE_HH
#define INFAT_SUPPORT_TABLE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace infat {

class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> headers);

    /** Append a row; it may have fewer cells than there are headers. */
    void addRow(std::vector<std::string> cells);

    /** Convenience cell renderers. */
    static std::string cell(const std::string &s) { return s; }
    static std::string cell(uint64_t v);
    static std::string cell(int64_t v);
    static std::string cellF(double v, int precision = 2);
    static std::string cellPct(double ratio, int precision = 0);
    static std::string cellSci(double v);

    /** Render the table with a header rule. */
    std::string render() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace infat

#endif // INFAT_SUPPORT_TABLE_HH
