#include "support/table.hh"

#include "support/logging.hh"

namespace infat {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

std::string
TextTable::cell(uint64_t v)
{
    return strfmt("%llu", static_cast<unsigned long long>(v));
}

std::string
TextTable::cell(int64_t v)
{
    return strfmt("%lld", static_cast<long long>(v));
}

std::string
TextTable::cellF(double v, int precision)
{
    return strfmt("%.*f", precision, v);
}

std::string
TextTable::cellPct(double ratio, int precision)
{
    return strfmt("%.*f%%", precision, ratio * 100.0);
}

std::string
TextTable::cellSci(double v)
{
    return strfmt("%.2e", v);
}

std::string
TextTable::render() const
{
    std::vector<size_t> widths(headers_.size(), 0);
    for (size_t i = 0; i < headers_.size(); ++i)
        widths[i] = headers_[i].size();
    for (const auto &row : rows_) {
        for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
            if (row[i].size() > widths[i])
                widths[i] = row[i].size();
        }
    }

    auto render_row = [&](const std::vector<std::string> &row) {
        std::string out;
        for (size_t i = 0; i < widths.size(); ++i) {
            const std::string &text = i < row.size() ? row[i] : "";
            out += text;
            if (i + 1 < widths.size())
                out += std::string(widths[i] - text.size() + 2, ' ');
        }
        out += "\n";
        return out;
    };

    std::string out = render_row(headers_);
    size_t total = 0;
    for (size_t i = 0; i < widths.size(); ++i)
        total += widths[i] + (i + 1 < widths.size() ? 2 : 0);
    out += std::string(total, '-') + "\n";
    for (const auto &row : rows_)
        out += render_row(row);
    return out;
}

} // namespace infat
