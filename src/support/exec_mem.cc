#include "support/exec_mem.hh"

#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#include <unistd.h>
#define INFAT_EXEC_MEM_MMAP 1
#else
#define INFAT_EXEC_MEM_MMAP 0
#endif

namespace infat {

namespace {

constexpr size_t kChunkSize = 256 * 1024;

#if INFAT_EXEC_MEM_MMAP
size_t
pageAlign(size_t n)
{
    static const size_t page =
        static_cast<size_t>(sysconf(_SC_PAGESIZE));
    return (n + page - 1) & ~(page - 1);
}
#endif

} // namespace

ExecArena::~ExecArena()
{
    releaseAll();
}

bool
ExecArena::supported()
{
#if INFAT_EXEC_MEM_MMAP
    // Probe once: some hardened kernels refuse PROT_EXEC mappings for
    // unprivileged processes; detect that up front so the tier
    // controller can report "jit unavailable" instead of failing every
    // block compile.
    static const bool ok = [] {
        size_t len = pageAlign(1);
        void *p = mmap(nullptr, len, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
        if (p == MAP_FAILED)
            return false;
        bool exec_ok = mprotect(p, len, PROT_READ | PROT_EXEC) == 0;
        munmap(p, len);
        return exec_ok;
    }();
    return ok;
#else
    return false;
#endif
}

ExecArena::Chunk *
ExecArena::grow(size_t need)
{
#if INFAT_EXEC_MEM_MMAP
    size_t size = pageAlign(need > kChunkSize ? need : kChunkSize);
    void *p = mmap(nullptr, size, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (p == MAP_FAILED)
        return nullptr;
    chunks_.push_back({static_cast<uint8_t *>(p), size, 0});
    return &chunks_.back();
#else
    (void)need;
    return nullptr;
#endif
}

const void *
ExecArena::add(const uint8_t *code, size_t len)
{
#if INFAT_EXEC_MEM_MMAP
    if (!supported() || len == 0)
        return nullptr;
    // Keep emitted blocks 16-byte aligned.
    size_t aligned = (len + 15) & ~size_t{15};
    Chunk *c = nullptr;
    if (!chunks_.empty() &&
        chunks_.back().used + aligned <= chunks_.back().size)
        c = &chunks_.back();
    else
        c = grow(aligned);
    if (c == nullptr)
        return nullptr;
    uint8_t *dst = c->base + c->used;
    // W^X: the chunk is RX between publishes; flip to RW only for the
    // copy. Block compiles are rare (once per hot block), so the two
    // mprotect calls are noise.
    if (mprotect(c->base, c->size, PROT_READ | PROT_WRITE) != 0)
        return nullptr;
    std::memcpy(dst, code, len);
    if (mprotect(c->base, c->size, PROT_READ | PROT_EXEC) != 0)
        return nullptr;
    c->used += aligned;
    bytesUsed_ += len;
#if defined(__GNUC__)
    __builtin___clear_cache(reinterpret_cast<char *>(dst),
                            reinterpret_cast<char *>(dst + len));
#endif
    return dst;
#else
    (void)code;
    (void)len;
    return nullptr;
#endif
}

void
ExecArena::releaseAll()
{
#if INFAT_EXEC_MEM_MMAP
    for (Chunk &c : chunks_)
        munmap(c.base, c.size);
#endif
    chunks_.clear();
    bytesUsed_ = 0;
}

} // namespace infat
