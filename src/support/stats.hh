/**
 * @file
 * The named-statistics package.
 *
 * Components own a StatGroup and register named stats in it; harnesses
 * read them back by name, dump the whole group, or export everything as
 * JSON. This is a cousin of gem5's Stats package sized for this
 * simulator: alongside scalar Counters there are bucketed Histograms
 * (latency and size distributions), moment-tracking Distributions, and
 * Formulas (derived ratios evaluated at read time, e.g. CPI or an L1D
 * miss rate).
 *
 * A StatRegistry aggregates the groups of one simulated machine (or of
 * the whole process) under hierarchical names ("vm", "l1d", "promote",
 * ...) and can snapshot them into a StatSnapshot — a plain-data copy
 * that survives the machine's destruction and serializes to JSON
 * through support/json.hh (the --stats-json code path).
 *
 * Reference stability: counters/histograms/distributions live in
 * node-based maps, so the reference returned by counter()/histogram()
 * stays valid for the group's lifetime. Hot paths should fetch the
 * reference once (typically in a constructor) instead of looking the
 * name up per event.
 */

#ifndef INFAT_SUPPORT_STATS_HH
#define INFAT_SUPPORT_STATS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "support/logging.hh"

namespace infat {

class JsonWriter;

/** One named 64-bit counter. */
class Counter
{
  public:
    Counter() = default;

    /** Pre-increment: returns the new value. */
    uint64_t operator++() { return ++value_; }
    /** Post-increment: returns the value before the increment. */
    uint64_t operator++(int) { return value_++; }
    Counter &
    operator+=(uint64_t n)
    {
        value_ += n;
        return *this;
    }
    void set(uint64_t v) { value_ = v; }
    void reset() { value_ = 0; }

    /**
     * Address of the raw storage, for updates from outside C++ (the
     * template JIT bakes it into emitted code). Stable for the owning
     * group's lifetime (node-based map storage).
     */
    uint64_t *cell() { return &value_; }

    /** Explicit accessor; there is deliberately no operator uint64_t. */
    uint64_t value() const { return value_; }

  private:
    uint64_t value_ = 0;
};

/**
 * A bucketed histogram over uint64 samples.
 *
 * Two bucketing shapes:
 *  - linear(lo, width, n): bucket i covers [lo + i*width, lo + (i+1)*width)
 *  - log2(n): bucket 0 counts the value 0; bucket i (i >= 1) covers
 *    [2^(i-1), 2^i)
 *
 * Samples below the first bucket land in the underflow count, samples
 * at or above the last bucket's upper edge in the overflow count; both
 * still contribute to count/sum/min/max.
 */
class Histogram
{
  public:
    enum class Scale { Linear, Log2 };

    /** Default shape: 32 log2 buckets (covers values up to 2^31 - 1). */
    Histogram() : Histogram(Scale::Log2, 0, 1, 32) {}

    static Histogram
    linear(uint64_t lo, uint64_t bucket_width, unsigned num_buckets)
    {
        return Histogram(Scale::Linear, lo, bucket_width, num_buckets);
    }

    static Histogram
    log2(unsigned num_buckets)
    {
        return Histogram(Scale::Log2, 0, 1, num_buckets);
    }

    void sample(uint64_t value, uint64_t count = 1);
    void reset();

    uint64_t count() const { return count_; }
    uint64_t sum() const { return sum_; }
    /** Smallest/largest sampled value; 0 when no samples yet. */
    uint64_t minValue() const { return count_ == 0 ? 0 : min_; }
    uint64_t maxValue() const { return max_; }
    uint64_t underflow() const { return underflow_; }
    uint64_t overflow() const { return overflow_; }
    double
    mean() const
    {
        return count_ == 0 ? 0.0
                           : static_cast<double>(sum_) /
                                 static_cast<double>(count_);
    }

    Scale scale() const { return scale_; }
    unsigned numBuckets() const
    {
        return static_cast<unsigned>(buckets_.size());
    }
    uint64_t bucketCount(unsigned i) const { return buckets_.at(i); }
    /** Inclusive lower edge of bucket @p i. */
    uint64_t bucketLo(unsigned i) const;
    /** Exclusive upper edge of bucket @p i. */
    uint64_t bucketHi(unsigned i) const;

  private:
    Histogram(Scale scale, uint64_t lo, uint64_t width,
              unsigned num_buckets);

    Scale scale_;
    uint64_t lo_;
    uint64_t width_;
    std::vector<uint64_t> buckets_;
    uint64_t underflow_ = 0;
    uint64_t overflow_ = 0;
    uint64_t count_ = 0;
    uint64_t sum_ = 0;
    uint64_t min_ = ~0ULL;
    uint64_t max_ = 0;
};

/** Bucket-free moment tracker: count, mean, stddev, min, max. */
class Distribution
{
  public:
    void sample(uint64_t value, uint64_t count = 1);
    void reset();

    uint64_t count() const { return count_; }
    uint64_t sum() const { return sum_; }
    uint64_t minValue() const { return count_ == 0 ? 0 : min_; }
    uint64_t maxValue() const { return max_; }
    double mean() const;
    /** Population standard deviation (0 for fewer than 2 samples). */
    double stddev() const;

  private:
    uint64_t count_ = 0;
    uint64_t sum_ = 0;
    double sumSq_ = 0.0;
    uint64_t min_ = ~0ULL;
    uint64_t max_ = 0;
};

/** Options for textual stat dumps. */
struct DumpOptions
{
    /**
     * Skip zero-valued counters and empty histograms/distributions.
     * Defaults to the global quiet() flag, so quiet benchmark runs get
     * terse dumps without threading options through every call site;
     * pass an explicit DumpOptions to override either way.
     */
    bool suppressZero = quiet();
};

/**
 * The named stats owned by one component.
 *
 * Stats are created on first use; reading a counter that was never
 * touched returns zero, which keeps harness code free of existence
 * checks. All dump/export orderings are deterministic: stats appear in
 * lexicographic name order, counters before histograms before
 * distributions before formulas.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    Counter &counter(const std::string &stat_name);
    /** Histogram with the default shape (32 log2 buckets). */
    Histogram &histogram(const std::string &stat_name);
    /** Histogram created with @p shape on first use (shape is ignored
     *  when the histogram already exists). */
    Histogram &histogram(const std::string &stat_name,
                         const Histogram &shape);
    Distribution &distribution(const std::string &stat_name);
    /**
     * Register a derived value evaluated lazily at dump/snapshot time.
     * The callable must stay valid for the group's lifetime; non-finite
     * results are reported as 0.
     */
    void formula(const std::string &stat_name,
                 std::function<double()> fn);

    uint64_t value(const std::string &stat_name) const;
    double formulaValue(const std::string &stat_name) const;

    void resetAll();

    const std::string &name() const { return name_; }
    const std::map<std::string, Counter> &counters() const
    {
        return counters_;
    }
    const std::map<std::string, Histogram> &histograms() const
    {
        return histograms_;
    }
    const std::map<std::string, Distribution> &distributions() const
    {
        return distributions_;
    }
    const std::map<std::string, std::function<double()>> &formulas() const
    {
        return formulas_;
    }

    /**
     * Render "group.stat value" lines for every stat, in deterministic
     * (lexicographic) order. Histograms render one summary line plus
     * one line per non-empty bucket.
     */
    std::string dump(const DumpOptions &opts = {}) const;

  private:
    std::string name_;
    std::map<std::string, Counter> counters_;
    std::map<std::string, Histogram> histograms_;
    std::map<std::string, Distribution> distributions_;
    std::map<std::string, std::function<double()>> formulas_;
};

/** Plain-data copy of a registry, detached from the live components. */
struct StatSnapshot
{
    struct HistogramData
    {
        struct Bucket
        {
            uint64_t lo = 0;
            uint64_t hi = 0;
            uint64_t count = 0;
        };
        std::string scale;
        uint64_t count = 0;
        uint64_t sum = 0;
        uint64_t min = 0;
        uint64_t max = 0;
        uint64_t underflow = 0;
        uint64_t overflow = 0;
        /** Non-empty buckets only, in ascending edge order. */
        std::vector<Bucket> buckets;
    };

    struct DistributionData
    {
        uint64_t count = 0;
        uint64_t sum = 0;
        double mean = 0.0;
        double stddev = 0.0;
        uint64_t min = 0;
        uint64_t max = 0;
    };

    struct Group
    {
        std::string name;
        std::map<std::string, uint64_t> scalars;
        std::map<std::string, HistogramData> histograms;
        std::map<std::string, DistributionData> distributions;
        std::map<std::string, double> formulas;
    };

    std::vector<Group> groups;

    /**
     * Extra top-level sections spliced verbatim into the JSON export
     * next to "groups": section name -> pre-rendered JSON value. Used
     * by the harness to attach the profiler's "profile" object to a
     * --stats-json document without the stat registry (and hence the
     * engine-differential stat comparisons) ever seeing it. Sections
     * are ignored by findGroup()/scalar() and by textual dumps.
     */
    std::map<std::string, std::string> sections;

    const Group *findGroup(const std::string &name) const;
    uint64_t scalar(const std::string &group,
                    const std::string &stat) const;

    /** Emit {"groups": {...}, <sections...>} through @p w. */
    void writeJson(JsonWriter &w) const;
    std::string toJson(bool pretty = false) const;
    /** Write toJson() to @p path (fatal on I/O error). */
    void writeFile(const std::string &path, bool pretty = true) const;
};

/**
 * An ordered collection of StatGroups under hierarchical names.
 *
 * The registry does not own the groups; components register the groups
 * they own (typically once, at machine construction) and must outlive
 * the registry or deregister before dying. Name collisions are resolved
 * by suffixing "#2", "#3", ... so every registered group stays
 * addressable; add() returns the name actually used.
 */
class StatRegistry
{
  public:
    /** Register under the group's own name. */
    std::string add(StatGroup *group);
    /** Register under an explicit (hierarchical) name. */
    std::string add(std::string name, StatGroup *group);

    StatGroup *find(const std::string &name) const;
    const std::vector<std::pair<std::string, StatGroup *>> &groups() const
    {
        return groups_;
    }

    void resetAll();

    /** Concatenated dumps of all groups in registration order. */
    std::string dump(const DumpOptions &opts = {}) const;

    StatSnapshot snapshot() const;

  private:
    std::vector<std::pair<std::string, StatGroup *>> groups_;
};

/**
 * Geometric mean of a vector of ratios. Empty input yields 1.0 (the
 * identity for a product of ratios); any non-positive input yields 0.0
 * since the log-domain mean is undefined there.
 */
double geomean(const std::vector<double> &values);

} // namespace infat

#endif // INFAT_SUPPORT_STATS_HH
