/**
 * @file
 * A small named-statistics package.
 *
 * Components own a StatGroup and register named counters in it; harnesses
 * read them back by name or dump the whole group. This is a deliberately
 * tiny cousin of gem5's Stats package: scalar counters and derived values
 * only, because that is all the evaluation needs.
 */

#ifndef INFAT_SUPPORT_STATS_HH
#define INFAT_SUPPORT_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace infat {

/** One named 64-bit counter. */
class Counter
{
  public:
    Counter() = default;

    void operator++() { ++value_; }
    void operator++(int) { ++value_; }
    void operator+=(uint64_t n) { value_ += n; }
    void reset() { value_ = 0; }

    uint64_t value() const { return value_; }

  private:
    uint64_t value_ = 0;
};

/**
 * A flat registry of counters owned by one component.
 *
 * Counters are created on first use; reading a counter that was never
 * touched returns zero, which keeps harness code free of existence checks.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    Counter &counter(const std::string &stat_name);
    uint64_t value(const std::string &stat_name) const;

    void resetAll();

    const std::string &name() const { return name_; }
    const std::map<std::string, Counter> &counters() const
    {
        return counters_;
    }

    /** Render "group.stat value" lines for every counter. */
    std::string dump() const;

  private:
    std::string name_;
    std::map<std::string, Counter> counters_;
};

/** Geometric mean of a vector of ratios; empty input yields 1.0. */
double geomean(const std::vector<double> &values);

} // namespace infat

#endif // INFAT_SUPPORT_STATS_HH
