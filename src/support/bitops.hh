/**
 * @file
 * Bit-manipulation helpers used throughout the tag and metadata codecs.
 */

#ifndef INFAT_SUPPORT_BITOPS_HH
#define INFAT_SUPPORT_BITOPS_HH

#include <bit>
#include <cstdint>

namespace infat {

/** A mask of the low @p nbits bits. */
constexpr uint64_t
mask(unsigned nbits)
{
    return nbits >= 64 ? ~0ULL : (1ULL << nbits) - 1;
}

/** Extract bits [first, last] (inclusive, last >= first) from @p val. */
constexpr uint64_t
bits(uint64_t val, unsigned last, unsigned first)
{
    return (val >> first) & mask(last - first + 1);
}

/** Return @p val with bits [first, last] replaced by @p field. */
constexpr uint64_t
insertBits(uint64_t val, unsigned last, unsigned first, uint64_t field)
{
    uint64_t m = mask(last - first + 1) << first;
    return (val & ~m) | ((field << first) & m);
}

/** Sign-extend the low @p nbits bits of @p val to 64 bits. */
constexpr int64_t
sext(uint64_t val, unsigned nbits)
{
    uint64_t m = 1ULL << (nbits - 1);
    val &= mask(nbits);
    return static_cast<int64_t>((val ^ m) - m);
}

/** True if @p val is a power of two (and nonzero). */
constexpr bool
isPowerOf2(uint64_t val)
{
    return val != 0 && (val & (val - 1)) == 0;
}

/** Round @p val up to the next multiple of @p align (a power of two). */
constexpr uint64_t
roundUp(uint64_t val, uint64_t align)
{
    return (val + align - 1) & ~(align - 1);
}

/** Round @p val down to a multiple of @p align (a power of two). */
constexpr uint64_t
roundDown(uint64_t val, uint64_t align)
{
    return val & ~(align - 1);
}

/** Ceiling of log2; log2Ceil(1) == 0. */
constexpr unsigned
log2Ceil(uint64_t val)
{
    unsigned n = 0;
    uint64_t v = 1;
    while (v < val) {
        v <<= 1;
        ++n;
    }
    return n;
}

/** Floor of log2; undefined for 0. */
constexpr unsigned
log2Floor(uint64_t val)
{
    return 63 - static_cast<unsigned>(std::countl_zero(val));
}

} // namespace infat

#endif // INFAT_SUPPORT_BITOPS_HH
