/**
 * @file
 * Executable-memory arena for the template JIT (vm/jit.hh).
 *
 * Code is assembled into ordinary heap buffers and then published
 * here: the arena copies the bytes into mmap'd chunks and flips the
 * chunk protection between RW (while adding) and RX (while executing),
 * so there is never a writable+executable mapping (W^X). Chunks are
 * never freed individually — invalidation drops whole arenas, which is
 * how the tier controller deoptimizes (vm/tier.hh).
 */

#ifndef INFAT_SUPPORT_EXEC_MEM_HH
#define INFAT_SUPPORT_EXEC_MEM_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace infat {

class ExecArena
{
  public:
    ExecArena() = default;
    ~ExecArena();

    ExecArena(const ExecArena &) = delete;
    ExecArena &operator=(const ExecArena &) = delete;

    /**
     * Whether this host can map executable memory at all (probed once
     * on first use; false on hardened kernels that refuse PROT_EXEC).
     */
    static bool supported();

    /**
     * Publish @p len bytes of machine code; returns the executable
     * address, or nullptr if mapping failed. The returned code stays
     * valid and executable until releaseAll()/destruction.
     */
    const void *add(const uint8_t *code, size_t len);

    /** Unmap every chunk (all published code becomes invalid). */
    void releaseAll();

    size_t bytesUsed() const { return bytesUsed_; }

  private:
    struct Chunk
    {
        uint8_t *base = nullptr;
        size_t size = 0;
        size_t used = 0;
    };

    Chunk *grow(size_t need);

    std::vector<Chunk> chunks_;
    size_t bytesUsed_ = 0;
};

} // namespace infat

#endif // INFAT_SUPPORT_EXEC_MEM_HH
