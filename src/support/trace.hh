/**
 * @file
 * Structured trace events.
 *
 * Components emit typed events through a Tracer, which forwards them to
 * a TraceSink when (a) a sink is attached and (b) the event's category
 * is enabled. With no sink attached the enabled() check is two loads
 * and a branch, so instrumentation sites cost nothing measurable when
 * tracing is off — and never perturb the simulated instruction/cycle
 * counts either way.
 *
 * Categories:
 *   exec     one event per executed guest instruction (huge; debugging)
 *   check    implicit/explicit bounds checks and the traps they raise
 *   promote  promote-instruction outcomes with cycle cost
 *   cache    cache misses per level
 *   alloc    allocator and object-registration activity
 *
 * Sinks:
 *   ChromeTraceSink  Chrome trace-event JSON ({"traceEvents": [...]}),
 *                    loadable in Perfetto / chrome://tracing; the
 *                    simulated cycle count is used as the microsecond
 *                    timestamp.
 *   StreamTraceSink  human-readable one-line-per-event text.
 *   CollectTraceSink in-memory vector, for tests.
 */

#ifndef INFAT_SUPPORT_TRACE_HH
#define INFAT_SUPPORT_TRACE_HH

#include <cstdint>
#include <fstream>
#include <initializer_list>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

namespace infat {

enum class TraceCategory : unsigned
{
    Exec = 0,
    Check,
    Promote,
    Cache,
    Alloc,
    NumCategories,
};

constexpr uint32_t
traceBit(TraceCategory c)
{
    return 1u << static_cast<unsigned>(c);
}

constexpr uint32_t traceMaskAll =
    traceBit(TraceCategory::NumCategories) - 1;

const char *toString(TraceCategory c);

/**
 * Parse a comma-separated category list ("exec,promote,cache"; "all"
 * and "none" are accepted). Fatal on an unknown category name.
 */
uint32_t parseTraceCategories(const std::string &list);

/** One key/value annotation on an event. */
struct TraceArg
{
    TraceArg(const char *k, uint64_t v) : key(k), num(v) {}
    TraceArg(const char *k, std::string v)
        : key(k), isString(true), str(std::move(v))
    {
    }
    TraceArg(const char *k, const char *v)
        : key(k), isString(true), str(v)
    {
    }

    const char *key;
    bool isString = false;
    uint64_t num = 0;
    std::string str;
};

struct TraceEvent
{
    TraceCategory category = TraceCategory::Exec;
    /** Chrome phase: 'i' instant, 'X' complete (has dur), 'C' counter. */
    char phase = 'i';
    /** Timestamp in simulated cycles. */
    uint64_t ts = 0;
    /** Duration in cycles ('X' events only). */
    uint64_t dur = 0;
    std::string name;
    std::vector<TraceArg> args;
};

class TraceSink
{
  public:
    virtual ~TraceSink() = default;
    virtual void event(const TraceEvent &ev) = 0;
    virtual void flush() {}
};

/**
 * Chrome trace-event JSON sink. The file is valid JSON only after
 * close() (or destruction); events are streamed, not buffered.
 */
class ChromeTraceSink : public TraceSink
{
  public:
    /** Write to @p os (not owned). */
    explicit ChromeTraceSink(std::ostream &os);
    /** Write to a file at @p path (fatal if it cannot be opened). */
    explicit ChromeTraceSink(const std::string &path);
    ~ChromeTraceSink() override;

    void event(const TraceEvent &ev) override;
    void flush() override;
    /** Emit the closing bracket; further events are ignored. */
    void close();

  private:
    std::unique_ptr<std::ofstream> owned_;
    std::ostream *os_;
    bool first_ = true;
    bool closed_ = false;
};

/** Human-readable text sink: "cycle [category] name key=value ...". */
class StreamTraceSink : public TraceSink
{
  public:
    explicit StreamTraceSink(std::ostream &os) : os_(os) {}
    void event(const TraceEvent &ev) override;
    void flush() override { os_.flush(); }

  private:
    std::ostream &os_;
};

/** Buffers events in memory (test support). */
class CollectTraceSink : public TraceSink
{
  public:
    void event(const TraceEvent &ev) override { events.push_back(ev); }
    std::vector<TraceEvent> events;
};

/**
 * The emission frontend owned by a Machine. Holds the sink pointer, the
 * category mask, and a pointer to the cycle counter used as the clock.
 */
class Tracer
{
  public:
    void
    setSink(TraceSink *sink, uint32_t category_mask = traceMaskAll)
    {
        sink_ = sink;
        mask_ = category_mask;
    }
    void setClock(const uint64_t *cycles) { clock_ = cycles; }

    bool
    enabled(TraceCategory c) const
    {
        return sink_ != nullptr && (mask_ & traceBit(c)) != 0;
    }

    /**
     * Whether any sink is attached at all (regardless of category
     * mask). The interpreter's superblock engine skips every trace
     * site, so it only engages while this is false.
     */
    bool active() const { return sink_ != nullptr; }
    uint64_t now() const { return clock_ ? *clock_ : 0; }

    /** Emit an instant event at the current clock. */
    void instant(TraceCategory c, std::string name,
                 std::initializer_list<TraceArg> args = {});
    /** Emit a complete ('X') event spanning [start, start+dur). */
    void complete(TraceCategory c, std::string name, uint64_t start,
                  uint64_t dur, std::initializer_list<TraceArg> args = {});
    /** Emit a counter ('C') sample. */
    void counter(TraceCategory c, std::string name, uint64_t value);

    void
    flush()
    {
        if (sink_)
            sink_->flush();
    }

  private:
    TraceSink *sink_ = nullptr;
    uint32_t mask_ = traceMaskAll;
    const uint64_t *clock_ = nullptr;
};

} // namespace infat

#endif // INFAT_SUPPORT_TRACE_HH
