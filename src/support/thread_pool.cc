#include "support/thread_pool.hh"

#include <atomic>
#include <cstdlib>

namespace infat {

ThreadPool::ThreadPool(unsigned threads)
{
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stop_ and nothing left to do
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
    }
}

/**
 * Shared state of one forEach loop. Owns a copy of the body, so helper
 * tasks left in the queue after the loop completes (because the live
 * participants claimed every index first) reference nothing on the
 * caller's stack: they wake, see no index left, and return.
 */
struct ThreadPool::ForEachState
{
    std::function<void(size_t)> fn;
    size_t n = 0;
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::mutex mutex;
    std::condition_variable cv;
    std::exception_ptr error;
};

void
ThreadPool::drainForEach(const std::shared_ptr<ForEachState> &state)
{
    for (;;) {
        size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
        if (i >= state->n)
            return;
        try {
            state->fn(i);
        } catch (...) {
            std::lock_guard<std::mutex> lock(state->mutex);
            if (!state->error)
                state->error = std::current_exception();
        }
        if (state->done.fetch_add(1) + 1 == state->n) {
            std::lock_guard<std::mutex> lock(state->mutex);
            state->cv.notify_all();
        }
    }
}

void
ThreadPool::forEach(size_t n, const std::function<void(size_t)> &fn)
{
    if (n == 0)
        return;
    auto state = std::make_shared<ForEachState>();
    state->fn = fn;
    state->n = n;

    // One helper task per worker that could usefully join in; the
    // calling thread is the (n == 1 or zero-thread pool) fast path.
    size_t helpers = std::min<size_t>(n - 1, workers_.size());
    if (helpers > 0) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            for (size_t i = 0; i < helpers; ++i)
                queue_.emplace_back([state] { drainForEach(state); });
        }
        cv_.notify_all();
    }

    drainForEach(state);

    std::unique_lock<std::mutex> lock(state->mutex);
    state->cv.wait(lock,
                   [&] { return state->done.load() >= state->n; });
    if (state->error)
        std::rethrow_exception(state->error);
}

unsigned
ThreadPool::defaultJobs()
{
    if (const char *env = std::getenv("INFAT_JOBS")) {
        long jobs = std::strtol(env, nullptr, 10);
        if (jobs > 0)
            return static_cast<unsigned>(jobs);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

} // namespace infat
