#include "support/profile.hh"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "support/json.hh"
#include "support/logging.hh"
#include "support/trace.hh"

namespace infat {

namespace {

const std::string &
fallbackName(uint32_t func)
{
    // Deterministic placeholder for functions that trapped or exited
    // before registration could happen. Cached so the by-reference
    // accessor stays cheap.
    static std::map<uint32_t, std::string> cache;
    auto it = cache.find(func);
    if (it == cache.end())
        it = cache.emplace(func, strfmt("fn%u", func)).first;
    return it->second;
}

} // namespace

void
GuestProfiler::noteFunction(uint32_t func, std::string name,
                            std::vector<std::string> block_names)
{
    ensure(func);
    FunctionData &f = funcs_[func];
    f.known = true;
    f.name = std::move(name);
    f.blockNames = std::move(block_names);
    if (f.blocks.size() < f.blockNames.size())
        f.blocks.resize(f.blockNames.size());
}

void
GuestProfiler::countCheckSite(uint32_t func, uint32_t block, uint32_t ip,
                              uint64_t cycles, uint64_t checks,
                              uint64_t elided)
{
    ensure(func);
    uint64_t key = (static_cast<uint64_t>(block) << 32) | ip;
    CheckSiteCounters &s = funcs_[func].sites[key];
    ++s.accesses;
    s.executions += checks;
    s.elided += elided;
    s.cycles += cycles;
}

void
GuestProfiler::addSample(const std::vector<uint32_t> &stack, uint64_t now,
                         uint64_t instructions, uint64_t checks)
{
    ++stacks_[stack];
    series_.push_back({now, instructions, checks});
    ++sampleCount_;
    // Skip ahead past `now` rather than stepping interval by interval:
    // a long-running block can cross many sample periods at once.
    nextSample_ = now - now % sampleInterval_ + sampleInterval_;
}

const std::string &
GuestProfiler::functionName(uint32_t func) const
{
    if (func < funcs_.size() && funcs_[func].known &&
        !funcs_[func].name.empty())
        return funcs_[func].name;
    return fallbackName(func);
}

void
GuestProfiler::writeCollapsed(std::ostream &os) const
{
    for (const auto &[stack, count] : stacks_) {
        std::string line;
        for (size_t i = 0; i < stack.size(); ++i) {
            if (i != 0)
                line += ';';
            line += functionName(stack[i]);
        }
        os << line << ' ' << count << '\n';
    }
}

void
GuestProfiler::writeCollapsedFile(const std::string &path) const
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    fatal_if(!out, "cannot open %s for writing", path.c_str());
    writeCollapsed(out);
    fatal_if(!out.good(), "error writing %s", path.c_str());
    log_info("profiler: wrote %llu collapsed stacks to %s",
             static_cast<unsigned long long>(stacks_.size()),
             path.c_str());
}

void
GuestProfiler::writeChromeTrace(const std::string &path) const
{
    ChromeTraceSink sink(path);
    TraceEvent ev;
    ev.phase = 'C';
    for (const CounterSample &s : series_) {
        ev.ts = s.ts;
        ev.category = TraceCategory::Exec;
        ev.name = "guest_instructions";
        ev.args = {{"value", s.instructions}};
        sink.event(ev);
        ev.category = TraceCategory::Check;
        ev.name = "implicit_checks";
        ev.args = {{"value", s.checks}};
        sink.event(ev);
    }
    sink.close();
    log_info("profiler: wrote %llu counter samples to %s",
             static_cast<unsigned long long>(series_.size()),
             path.c_str());
}

uint64_t
GuestProfiler::totalBlockCycles() const
{
    uint64_t total = 0;
    for (const FunctionData &f : funcs_)
        for (const BlockCounters &b : f.blocks)
            total += b.cycles;
    return total;
}

uint64_t
GuestProfiler::totalBlockInstructions() const
{
    uint64_t total = 0;
    for (const FunctionData &f : funcs_)
        for (const BlockCounters &b : f.blocks)
            total += b.instructions;
    return total;
}

uint64_t
GuestProfiler::totalCheckExecutions() const
{
    uint64_t total = 0;
    for (const FunctionData &f : funcs_)
        for (const auto &[key, s] : f.sites)
            total += s.executions;
    return total;
}

uint64_t
GuestProfiler::totalCheckElided() const
{
    uint64_t total = 0;
    for (const FunctionData &f : funcs_)
        for (const auto &[key, s] : f.sites)
            total += s.elided;
    return total;
}

uint64_t
GuestProfiler::totalCheckCycles() const
{
    uint64_t total = 0;
    for (const FunctionData &f : funcs_)
        for (const auto &[key, s] : f.sites)
            total += s.cycles;
    return total;
}

uint64_t
GuestProfiler::totalCallSiteCalls() const
{
    uint64_t total = 0;
    for (const FunctionData &f : funcs_)
        for (const auto &[key, s] : f.callSites)
            total += s.calls;
    return total;
}

uint64_t
GuestProfiler::totalCallSiteCycles() const
{
    uint64_t total = 0;
    for (const FunctionData &f : funcs_)
        for (const auto &[key, s] : f.callSites)
            total += s.cycles;
    return total;
}

uint64_t
GuestProfiler::totalBndCycles() const
{
    uint64_t total = 0;
    for (const FunctionData &f : funcs_)
        total += f.bndCycles;
    return total;
}

std::string
GuestProfiler::sectionJson(size_t top_k) const
{
    struct BlockRef
    {
        uint32_t func;
        uint32_t block;
        const BlockCounters *c;
    };
    struct SiteRef
    {
        uint32_t func;
        uint32_t block;
        uint32_t ip;
        const CheckSiteCounters *c;
    };
    struct CallRef
    {
        uint32_t func;
        uint32_t block;
        uint32_t ip;
        const CallSiteCounters *c;
    };

    std::vector<BlockRef> blocks;
    std::vector<SiteRef> sites;
    std::vector<CallRef> callSites;
    for (uint32_t fid = 0; fid < funcs_.size(); ++fid) {
        const FunctionData &f = funcs_[fid];
        for (uint32_t b = 0; b < f.blocks.size(); ++b)
            if (f.blocks[b].executions != 0 || f.blocks[b].cycles != 0)
                blocks.push_back({fid, b, &f.blocks[b]});
        for (const auto &[key, s] : f.sites)
            sites.push_back({fid, static_cast<uint32_t>(key >> 32),
                             static_cast<uint32_t>(key), &s});
        for (const auto &[key, s] : f.callSites)
            callSites.push_back({fid, static_cast<uint32_t>(key >> 32),
                                 static_cast<uint32_t>(key), &s});
    }
    // Rank by cycles; ties broken by static id so the export is
    // deterministic across runs of the same simulation.
    std::sort(blocks.begin(), blocks.end(),
              [](const BlockRef &a, const BlockRef &b) {
                  if (a.c->cycles != b.c->cycles)
                      return a.c->cycles > b.c->cycles;
                  return std::tie(a.func, a.block) <
                         std::tie(b.func, b.block);
              });
    std::sort(sites.begin(), sites.end(),
              [](const SiteRef &a, const SiteRef &b) {
                  if (a.c->cycles != b.c->cycles)
                      return a.c->cycles > b.c->cycles;
                  return std::tie(a.func, a.block, a.ip) <
                         std::tie(b.func, b.block, b.ip);
              });
    std::sort(callSites.begin(), callSites.end(),
              [](const CallRef &a, const CallRef &b) {
                  if (a.c->cycles != b.c->cycles)
                      return a.c->cycles > b.c->cycles;
                  return std::tie(a.func, a.block, a.ip) <
                         std::tie(b.func, b.block, b.ip);
              });

    auto blockName = [this](uint32_t func, uint32_t block)
        -> std::string {
        const FunctionData &f = funcs_[func];
        if (block < f.blockNames.size() && !f.blockNames[block].empty())
            return f.blockNames[block];
        return strfmt("bb%u", block);
    };

    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.field("sample_interval", sampleInterval_);
    w.field("samples", sampleCount_);

    w.key("functions");
    w.beginArray();
    for (uint32_t fid = 0; fid < funcs_.size(); ++fid) {
        const FunctionData &f = funcs_[fid];
        uint64_t cycles = 0, instructions = 0;
        for (const BlockCounters &b : f.blocks) {
            cycles += b.cycles;
            instructions += b.instructions;
        }
        if (f.calls == 0 && cycles == 0 && f.bndCycles == 0)
            continue;
        w.beginObject();
        w.field("id", fid);
        w.field("name", functionName(fid));
        w.field("calls", f.calls);
        w.field("cycles", cycles);
        w.field("instructions", instructions);
        w.field("bnd_ldst_cycles", f.bndCycles);
        w.endObject();
    }
    w.endArray();

    w.key("hot_blocks");
    w.beginArray();
    for (size_t i = 0; i < blocks.size() && i < top_k; ++i) {
        const BlockRef &b = blocks[i];
        w.beginObject();
        w.field("func", b.func);
        w.field("function", functionName(b.func));
        w.field("block", b.block);
        w.field("name", blockName(b.func, b.block));
        w.field("executions", b.c->executions);
        w.field("cycles", b.c->cycles);
        w.field("instructions", b.c->instructions);
        w.endObject();
    }
    w.endArray();

    w.key("check_sites");
    w.beginArray();
    for (size_t i = 0; i < sites.size() && i < top_k; ++i) {
        const SiteRef &s = sites[i];
        w.beginObject();
        w.field("func", s.func);
        w.field("function", functionName(s.func));
        w.field("block", s.block);
        w.field("ip", s.ip);
        w.field("accesses", s.c->accesses);
        w.field("executions", s.c->executions);
        w.field("elided", s.c->elided);
        w.field("cycles", s.c->cycles);
        w.endObject();
    }
    w.endArray();

    w.key("call_sites");
    w.beginArray();
    for (size_t i = 0; i < callSites.size() && i < top_k; ++i) {
        const CallRef &s = callSites[i];
        w.beginObject();
        w.field("func", s.func);
        w.field("function", functionName(s.func));
        w.field("block", s.block);
        w.field("ip", s.ip);
        w.field("calls", s.c->calls);
        w.field("cycles", s.c->cycles);
        w.endObject();
    }
    w.endArray();

    w.key("totals");
    w.beginObject();
    w.field("block_cycles", totalBlockCycles());
    w.field("block_instructions", totalBlockInstructions());
    w.field("check_sites", static_cast<uint64_t>(sites.size()));
    w.field("check_accesses", [&] {
        uint64_t total = 0;
        for (const SiteRef &s : sites)
            total += s.c->accesses;
        return total;
    }());
    w.field("check_executions", totalCheckExecutions());
    w.field("check_elided", totalCheckElided());
    w.field("check_cycles", totalCheckCycles());
    w.field("call_sites", static_cast<uint64_t>(callSites.size()));
    w.field("call_site_calls", totalCallSiteCalls());
    w.field("call_site_cycles", totalCallSiteCycles());
    w.field("bnd_ldst_cycles", totalBndCycles());
    w.endObject();

    w.endObject();
    return os.str();
}

} // namespace infat
