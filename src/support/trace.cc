#include "support/trace.hh"

#include <sstream>

#include "support/json.hh"
#include "support/logging.hh"

namespace infat {

const char *
toString(TraceCategory c)
{
    switch (c) {
      case TraceCategory::Exec:
        return "exec";
      case TraceCategory::Check:
        return "check";
      case TraceCategory::Promote:
        return "promote";
      case TraceCategory::Cache:
        return "cache";
      case TraceCategory::Alloc:
        return "alloc";
      case TraceCategory::NumCategories:
        break;
    }
    return "?";
}

uint32_t
parseTraceCategories(const std::string &list)
{
    if (list.empty() || list == "all")
        return traceMaskAll;
    if (list == "none")
        return 0;
    uint32_t mask = 0;
    size_t pos = 0;
    while (pos <= list.size()) {
        size_t comma = list.find(',', pos);
        if (comma == std::string::npos)
            comma = list.size();
        std::string name = list.substr(pos, comma - pos);
        pos = comma + 1;
        if (name.empty())
            continue;
        bool found = false;
        for (unsigned i = 0;
             i < static_cast<unsigned>(TraceCategory::NumCategories);
             ++i) {
            auto c = static_cast<TraceCategory>(i);
            if (name == toString(c)) {
                mask |= traceBit(c);
                found = true;
                break;
            }
        }
        fatal_if(!found, "unknown trace category '%s' (valid: exec, "
                         "check, promote, cache, alloc, all, none)",
                 name.c_str());
    }
    return mask;
}

// --- ChromeTraceSink ---

ChromeTraceSink::ChromeTraceSink(std::ostream &os) : os_(&os)
{
    *os_ << "{\"traceEvents\":[";
}

ChromeTraceSink::ChromeTraceSink(const std::string &path)
    : owned_(std::make_unique<std::ofstream>(
          path, std::ios::binary | std::ios::trunc)),
      os_(owned_.get())
{
    fatal_if(!*owned_, "cannot open trace file %s", path.c_str());
    *os_ << "{\"traceEvents\":[";
}

ChromeTraceSink::~ChromeTraceSink()
{
    close();
}

void
ChromeTraceSink::event(const TraceEvent &ev)
{
    if (closed_)
        return;
    if (!first_)
        *os_ << ',';
    first_ = false;
    *os_ << "\n";
    JsonWriter w(*os_);
    w.beginObject();
    w.field("name", ev.name);
    w.field("cat", toString(ev.category));
    w.field("ph", std::string_view(&ev.phase, 1));
    w.field("ts", ev.ts);
    if (ev.phase == 'X')
        w.field("dur", ev.dur);
    // Perfetto requires pid/tid; the simulator is one process, one
    // hart, so use the category as the "thread" for separate rows.
    w.field("pid", uint64_t{1});
    w.field("tid",
            static_cast<uint64_t>(static_cast<unsigned>(ev.category)) + 1);
    if (!ev.args.empty()) {
        w.key("args");
        w.beginObject();
        for (const TraceArg &arg : ev.args) {
            if (arg.isString)
                w.field(arg.key, arg.str);
            else
                w.field(arg.key, arg.num);
        }
        w.endObject();
    }
    w.endObject();
}

void
ChromeTraceSink::flush()
{
    os_->flush();
}

void
ChromeTraceSink::close()
{
    if (closed_)
        return;
    closed_ = true;
    *os_ << "\n]}\n";
    os_->flush();
}

// --- StreamTraceSink ---

void
StreamTraceSink::event(const TraceEvent &ev)
{
    os_ << strfmt("%12llu  [%s] %s",
                  static_cast<unsigned long long>(ev.ts),
                  toString(ev.category), ev.name.c_str());
    if (ev.phase == 'X')
        os_ << strfmt(" dur=%llu",
                      static_cast<unsigned long long>(ev.dur));
    for (const TraceArg &arg : ev.args) {
        if (arg.isString)
            os_ << ' ' << arg.key << '=' << arg.str;
        else
            os_ << strfmt(" %s=%llu", arg.key,
                          static_cast<unsigned long long>(arg.num));
    }
    os_ << '\n';
}

// --- Tracer ---

void
Tracer::instant(TraceCategory c, std::string name,
                std::initializer_list<TraceArg> args)
{
    if (!enabled(c))
        return;
    TraceEvent ev;
    ev.category = c;
    ev.phase = 'i';
    ev.ts = now();
    ev.name = std::move(name);
    ev.args.assign(args.begin(), args.end());
    sink_->event(ev);
}

void
Tracer::complete(TraceCategory c, std::string name, uint64_t start,
                 uint64_t dur, std::initializer_list<TraceArg> args)
{
    if (!enabled(c))
        return;
    TraceEvent ev;
    ev.category = c;
    ev.phase = 'X';
    ev.ts = start;
    ev.dur = dur;
    ev.name = std::move(name);
    ev.args.assign(args.begin(), args.end());
    sink_->event(ev);
}

void
Tracer::counter(TraceCategory c, std::string name, uint64_t value)
{
    if (!enabled(c))
        return;
    TraceEvent ev;
    ev.category = c;
    ev.phase = 'C';
    ev.ts = now();
    ev.name = std::move(name);
    ev.args.emplace_back("value", value);
    sink_->event(ev);
}

} // namespace infat
