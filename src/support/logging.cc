#include "support/logging.hh"

#include <cstdio>
#include <cstring>
#include <vector>

namespace infat {

namespace {
bool gQuiet = false;

LogLevel
parseLogLevelEnv()
{
    const char *env = std::getenv("IFP_LOG");
    if (env == nullptr || *env == '\0')
        return LogLevel::Warn;
    if (std::strcmp(env, "error") == 0 || std::strcmp(env, "0") == 0)
        return LogLevel::Error;
    if (std::strcmp(env, "warn") == 0 || std::strcmp(env, "1") == 0)
        return LogLevel::Warn;
    if (std::strcmp(env, "info") == 0 || std::strcmp(env, "2") == 0)
        return LogLevel::Info;
    if (std::strcmp(env, "debug") == 0 || std::strcmp(env, "3") == 0)
        return LogLevel::Debug;
    std::fprintf(stderr,
                 "ifp-warn: unrecognized IFP_LOG=\"%s\" "
                 "(want error|warn|info|debug or 0-3); using warn\n",
                 env);
    return LogLevel::Warn;
}

LogLevel gLogLevel = parseLogLevelEnv();

const char *
logLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Error: return "error";
      case LogLevel::Warn: return "warn";
      case LogLevel::Info: return "info";
      case LogLevel::Debug: return "debug";
    }
    return "?";
}

} // namespace

void
setQuiet(bool quiet)
{
    gQuiet = quiet;
}

bool
quiet()
{
    return gQuiet;
}

LogLevel
logLevel()
{
    return gLogLevel;
}

void
setLogLevel(LogLevel level)
{
    gLogLevel = level;
}

bool
logEnabled(LogLevel level)
{
    return static_cast<int>(level) <= static_cast<int>(gLogLevel);
}

void
logFmt(LogLevel level, const char *fmt, ...)
{
    if (!logEnabled(level))
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "ifp-%s: %s\n", logLevelName(level), s.c_str());
}

std::string
vstrfmt(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data(), static_cast<size_t>(n));
}

std::string
strfmt(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    return s;
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (!gQuiet)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (!gQuiet)
        std::fprintf(stdout, "info: %s\n", msg.c_str());
}

void
panicFmt(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    panicImpl(file, line, s);
}

void
fatalFmt(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    fatalImpl(file, line, s);
}

void
warnFmt(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    warnImpl(s);
}

void
informFmt(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    informImpl(s);
}

} // namespace infat
