/**
 * @file
 * Logging and error-reporting primitives, in the gem5 spirit.
 *
 * panic()  — an internal invariant of the simulator itself was violated;
 *            aborts so a debugger or core dump can inspect the state.
 * fatal()  — the user asked for something the simulator cannot do
 *            (bad configuration, unsupported workload parameter);
 *            exits with an error code.
 * warn()   — something is probably fine but worth knowing about.
 * inform() — plain status output.
 */

#ifndef INFAT_SUPPORT_LOGGING_HH
#define INFAT_SUPPORT_LOGGING_HH

#include <cstdarg>
#include <cstdlib>
#include <string>

namespace infat {

/** Printf-style formatting into a std::string. */
std::string vstrfmt(const char *fmt, va_list ap);
std::string strfmt(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Suppress inform()/warn() output (benchmarks want quiet runs). */
void setQuiet(bool quiet);
bool quiet();

/**
 * Leveled diagnostic logging, independent of the warn()/inform()
 * channel above (which reports on behalf of the *simulated* run and is
 * gated by quiet()). The leveled channel is for simulator-internal
 * subsystems — the profiler, trap forensics — whose chatter must not
 * pollute bench stdout unless explicitly requested.
 *
 * The threshold is read once from the IFP_LOG environment variable
 * ("error" | "warn" | "info" | "debug", or a numeric 0-3); unset or
 * unparsable means Warn. setLogLevel() overrides it (tests). Messages
 * at or below the threshold go to stderr as "ifp-<level>: ...";
 * everything else is dropped. quiet() does not apply: IFP_LOG is an
 * explicit opt-in.
 */
enum class LogLevel { Error = 0, Warn = 1, Info = 2, Debug = 3 };

LogLevel logLevel();
void setLogLevel(LogLevel level);
bool logEnabled(LogLevel level);
void logFmt(LogLevel level, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

[[noreturn]] void panicFmt(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));
[[noreturn]] void fatalFmt(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));
void warnFmt(const char *fmt, ...) __attribute__((format(printf, 1, 2)));
void informFmt(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace infat

#define panic(...) ::infat::panicFmt(__FILE__, __LINE__, __VA_ARGS__)
#define fatal(...) ::infat::fatalFmt(__FILE__, __LINE__, __VA_ARGS__)
#define warn(...) ::infat::warnFmt(__VA_ARGS__)
#define inform(...) ::infat::informFmt(__VA_ARGS__)

#define log_error(...) ::infat::logFmt(::infat::LogLevel::Error, __VA_ARGS__)
#define log_warn(...) ::infat::logFmt(::infat::LogLevel::Warn, __VA_ARGS__)
#define log_info(...) ::infat::logFmt(::infat::LogLevel::Info, __VA_ARGS__)
#define log_debug(...) ::infat::logFmt(::infat::LogLevel::Debug, __VA_ARGS__)

/** Simulator-internal assertion: condition must hold or it is a bug here. */
#define panic_if(cond, ...)                                                   \
    do {                                                                      \
        if (cond)                                                             \
            panic(__VA_ARGS__);                                              \
    } while (0)

#define fatal_if(cond, ...)                                                   \
    do {                                                                      \
        if (cond)                                                             \
            fatal(__VA_ARGS__);                                              \
    } while (0)

#endif // INFAT_SUPPORT_LOGGING_HH
