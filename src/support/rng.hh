/**
 * @file
 * Deterministic xoshiro256** pseudo-random generator.
 *
 * Workloads and the Juliet generator must be reproducible run-to-run, so
 * everything random in the repository flows through this generator with an
 * explicit seed rather than std::random_device.
 */

#ifndef INFAT_SUPPORT_RNG_HH
#define INFAT_SUPPORT_RNG_HH

#include <cstdint>

namespace infat {

class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

    /** Re-initialize state from a 64-bit seed via splitmix64. */
    void
    reseed(uint64_t seed)
    {
        for (auto &word : state) {
            seed += 0x9e3779b97f4a7c15ULL;
            uint64_t z = seed;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    uint64_t
    next()
    {
        uint64_t result = rotl(state[1] * 5, 7) * 9;
        uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be nonzero. */
    uint64_t
    below(uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    range(int64_t lo, int64_t hi)
    {
        return lo + static_cast<int64_t>(below(
            static_cast<uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

  private:
    static constexpr uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t state[4];
};

} // namespace infat

#endif // INFAT_SUPPORT_RNG_HH
