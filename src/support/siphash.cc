#include "support/siphash.hh"

#include <cstring>

namespace infat {

namespace {

constexpr uint64_t
rotl(uint64_t x, int b)
{
    return (x << b) | (x >> (64 - b));
}

struct SipState
{
    uint64_t v0, v1, v2, v3;

    void
    round()
    {
        v0 += v1;
        v1 = rotl(v1, 13);
        v1 ^= v0;
        v0 = rotl(v0, 32);
        v2 += v3;
        v3 = rotl(v3, 16);
        v3 ^= v2;
        v0 += v3;
        v3 = rotl(v3, 21);
        v3 ^= v0;
        v2 += v1;
        v1 = rotl(v1, 17);
        v1 ^= v2;
        v2 = rotl(v2, 32);
    }
};

} // namespace

uint64_t
siphash24(const void *data, size_t len, uint64_t key0, uint64_t key1)
{
    SipState s;
    s.v0 = 0x736f6d6570736575ULL ^ key0;
    s.v1 = 0x646f72616e646f6dULL ^ key1;
    s.v2 = 0x6c7967656e657261ULL ^ key0;
    s.v3 = 0x7465646279746573ULL ^ key1;

    const uint8_t *p = static_cast<const uint8_t *>(data);
    const uint8_t *end = p + (len & ~size_t{7});
    for (; p != end; p += 8) {
        uint64_t m;
        std::memcpy(&m, p, 8);
        s.v3 ^= m;
        s.round();
        s.round();
        s.v0 ^= m;
    }

    uint64_t b = static_cast<uint64_t>(len) << 56;
    size_t left = len & 7;
    for (size_t i = 0; i < left; ++i)
        b |= static_cast<uint64_t>(p[i]) << (8 * i);

    s.v3 ^= b;
    s.round();
    s.round();
    s.v0 ^= b;

    s.v2 ^= 0xff;
    s.round();
    s.round();
    s.round();
    s.round();
    return s.v0 ^ s.v1 ^ s.v2 ^ s.v3;
}

uint64_t
mac48(uint64_t word0, uint64_t word1, uint64_t key0, uint64_t key1)
{
    uint64_t words[2] = {word0, word1};
    return mac48Words(words, 2, key0, key1);
}

uint64_t
mac48Words(const uint64_t *words, size_t count, uint64_t key0,
           uint64_t key1)
{
    return siphash24(words, count * sizeof(uint64_t), key0, key1) &
           ((1ULL << 48) - 1);
}

} // namespace infat
