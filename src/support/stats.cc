#include "support/stats.hh"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "support/bitops.hh"
#include "support/json.hh"
#include "support/logging.hh"

namespace infat {

// --- Histogram ---

Histogram::Histogram(Scale scale, uint64_t lo, uint64_t width,
                     unsigned num_buckets)
    : scale_(scale), lo_(lo), width_(width)
{
    panic_if(num_buckets == 0, "histogram needs at least one bucket");
    panic_if(scale == Scale::Linear && width == 0,
             "linear histogram needs a non-zero bucket width");
    panic_if(scale == Scale::Log2 && num_buckets > 65,
             "log2 histogram limited to 65 buckets (full uint64 range)");
    buckets_.assign(num_buckets, 0);
}

void
Histogram::sample(uint64_t value, uint64_t count)
{
    if (count == 0)
        return;
    count_ += count;
    sum_ += value * count;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);

    if (scale_ == Scale::Linear) {
        if (value < lo_) {
            underflow_ += count;
            return;
        }
        uint64_t index = (value - lo_) / width_;
        if (index >= buckets_.size()) {
            overflow_ += count;
            return;
        }
        buckets_[index] += count;
        return;
    }

    // Log2: bucket 0 holds the value 0; bucket i holds [2^(i-1), 2^i).
    unsigned index = value == 0 ? 0 : log2Floor(value) + 1;
    if (index >= buckets_.size()) {
        overflow_ += count;
        return;
    }
    buckets_[index] += count;
}

uint64_t
Histogram::bucketLo(unsigned i) const
{
    panic_if(i >= buckets_.size(), "histogram bucket out of range");
    if (scale_ == Scale::Linear)
        return lo_ + i * width_;
    return i == 0 ? 0 : uint64_t{1} << (i - 1);
}

uint64_t
Histogram::bucketHi(unsigned i) const
{
    panic_if(i >= buckets_.size(), "histogram bucket out of range");
    if (scale_ == Scale::Linear)
        return lo_ + (uint64_t{i} + 1) * width_;
    return i >= 64 ? ~0ULL : uint64_t{1} << i;
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    underflow_ = overflow_ = count_ = sum_ = 0;
    min_ = ~0ULL;
    max_ = 0;
}

// --- Distribution ---

void
Distribution::sample(uint64_t value, uint64_t count)
{
    if (count == 0)
        return;
    count_ += count;
    sum_ += value * count;
    double v = static_cast<double>(value);
    sumSq_ += v * v * static_cast<double>(count);
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
}

double
Distribution::mean() const
{
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) /
                             static_cast<double>(count_);
}

double
Distribution::stddev() const
{
    if (count_ < 2)
        return 0.0;
    double n = static_cast<double>(count_);
    double m = mean();
    double var = sumSq_ / n - m * m;
    return var <= 0.0 ? 0.0 : std::sqrt(var);
}

void
Distribution::reset()
{
    count_ = sum_ = 0;
    sumSq_ = 0.0;
    min_ = ~0ULL;
    max_ = 0;
}

// --- StatGroup ---

Counter &
StatGroup::counter(const std::string &stat_name)
{
    return counters_[stat_name];
}

Histogram &
StatGroup::histogram(const std::string &stat_name)
{
    return histograms_[stat_name];
}

Histogram &
StatGroup::histogram(const std::string &stat_name, const Histogram &shape)
{
    return histograms_.try_emplace(stat_name, shape).first->second;
}

Distribution &
StatGroup::distribution(const std::string &stat_name)
{
    return distributions_[stat_name];
}

void
StatGroup::formula(const std::string &stat_name,
                   std::function<double()> fn)
{
    formulas_[stat_name] = std::move(fn);
}

uint64_t
StatGroup::value(const std::string &stat_name) const
{
    auto it = counters_.find(stat_name);
    return it == counters_.end() ? 0 : it->second.value();
}

double
StatGroup::formulaValue(const std::string &stat_name) const
{
    auto it = formulas_.find(stat_name);
    if (it == formulas_.end() || !it->second)
        return 0.0;
    double v = it->second();
    return std::isfinite(v) ? v : 0.0;
}

void
StatGroup::resetAll()
{
    for (auto &kv : counters_)
        kv.second.reset();
    for (auto &kv : histograms_)
        kv.second.reset();
    for (auto &kv : distributions_)
        kv.second.reset();
}

std::string
StatGroup::dump(const DumpOptions &opts) const
{
    std::string out;
    for (const auto &kv : counters_) {
        if (opts.suppressZero && kv.second.value() == 0)
            continue;
        out += strfmt("%s.%s %llu\n", name_.c_str(), kv.first.c_str(),
                      static_cast<unsigned long long>(kv.second.value()));
    }
    for (const auto &kv : histograms_) {
        const Histogram &h = kv.second;
        if (opts.suppressZero && h.count() == 0)
            continue;
        out += strfmt("%s.%s count=%llu sum=%llu min=%llu max=%llu "
                      "mean=%.2f\n",
                      name_.c_str(), kv.first.c_str(),
                      static_cast<unsigned long long>(h.count()),
                      static_cast<unsigned long long>(h.sum()),
                      static_cast<unsigned long long>(h.minValue()),
                      static_cast<unsigned long long>(h.maxValue()),
                      h.mean());
        if (h.underflow()) {
            out += strfmt("%s.%s.underflow %llu\n", name_.c_str(),
                          kv.first.c_str(),
                          static_cast<unsigned long long>(h.underflow()));
        }
        for (unsigned i = 0; i < h.numBuckets(); ++i) {
            if (h.bucketCount(i) == 0)
                continue;
            out += strfmt(
                "%s.%s[%llu,%llu) %llu\n", name_.c_str(),
                kv.first.c_str(),
                static_cast<unsigned long long>(h.bucketLo(i)),
                static_cast<unsigned long long>(h.bucketHi(i)),
                static_cast<unsigned long long>(h.bucketCount(i)));
        }
        if (h.overflow()) {
            out += strfmt("%s.%s.overflow %llu\n", name_.c_str(),
                          kv.first.c_str(),
                          static_cast<unsigned long long>(h.overflow()));
        }
    }
    for (const auto &kv : distributions_) {
        const Distribution &d = kv.second;
        if (opts.suppressZero && d.count() == 0)
            continue;
        out += strfmt("%s.%s count=%llu mean=%.2f stddev=%.2f min=%llu "
                      "max=%llu\n",
                      name_.c_str(), kv.first.c_str(),
                      static_cast<unsigned long long>(d.count()),
                      d.mean(), d.stddev(),
                      static_cast<unsigned long long>(d.minValue()),
                      static_cast<unsigned long long>(d.maxValue()));
    }
    for (const auto &kv : formulas_) {
        out += strfmt("%s.%s %.6g\n", name_.c_str(), kv.first.c_str(),
                      formulaValue(kv.first));
    }
    return out;
}

// --- StatSnapshot ---

const StatSnapshot::Group *
StatSnapshot::findGroup(const std::string &name) const
{
    for (const Group &g : groups) {
        if (g.name == name)
            return &g;
    }
    return nullptr;
}

uint64_t
StatSnapshot::scalar(const std::string &group,
                     const std::string &stat) const
{
    const Group *g = findGroup(group);
    if (!g)
        return 0;
    auto it = g->scalars.find(stat);
    return it == g->scalars.end() ? 0 : it->second;
}

void
StatSnapshot::writeJson(JsonWriter &w) const
{
    w.beginObject();
    w.key("groups");
    w.beginObject();
    for (const Group &g : groups) {
        w.key(g.name);
        w.beginObject();
        w.key("scalars");
        w.beginObject();
        for (const auto &kv : g.scalars)
            w.field(kv.first, kv.second);
        w.endObject();
        if (!g.histograms.empty()) {
            w.key("histograms");
            w.beginObject();
            for (const auto &kv : g.histograms) {
                const HistogramData &h = kv.second;
                w.key(kv.first);
                w.beginObject();
                w.field("scale", h.scale);
                w.field("count", h.count);
                w.field("sum", h.sum);
                w.field("min", h.min);
                w.field("max", h.max);
                w.field("underflow", h.underflow);
                w.field("overflow", h.overflow);
                w.key("buckets");
                w.beginArray();
                for (const auto &b : h.buckets) {
                    w.beginObject();
                    w.field("lo", b.lo);
                    w.field("hi", b.hi);
                    w.field("count", b.count);
                    w.endObject();
                }
                w.endArray();
                w.endObject();
            }
            w.endObject();
        }
        if (!g.distributions.empty()) {
            w.key("distributions");
            w.beginObject();
            for (const auto &kv : g.distributions) {
                const DistributionData &d = kv.second;
                w.key(kv.first);
                w.beginObject();
                w.field("count", d.count);
                w.field("sum", d.sum);
                w.field("mean", d.mean);
                w.field("stddev", d.stddev);
                w.field("min", d.min);
                w.field("max", d.max);
                w.endObject();
            }
            w.endObject();
        }
        if (!g.formulas.empty()) {
            w.key("formulas");
            w.beginObject();
            for (const auto &kv : g.formulas)
                w.field(kv.first, kv.second);
            w.endObject();
        }
        w.endObject();
    }
    w.endObject();
    for (const auto &[name, json] : sections) {
        w.key(name);
        w.raw(json);
    }
    w.endObject();
}

std::string
StatSnapshot::toJson(bool pretty) const
{
    std::ostringstream os;
    JsonWriter w(os, pretty);
    writeJson(w);
    return os.str();
}

void
StatSnapshot::writeFile(const std::string &path, bool pretty) const
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    fatal_if(!out, "cannot open %s for writing", path.c_str());
    out << toJson(pretty) << "\n";
    fatal_if(!out.good(), "error writing %s", path.c_str());
}

// --- StatRegistry ---

std::string
StatRegistry::add(StatGroup *group)
{
    return add(group->name(), group);
}

std::string
StatRegistry::add(std::string name, StatGroup *group)
{
    panic_if(group == nullptr, "registering null stat group");
    std::string candidate = name;
    unsigned suffix = 2;
    while (find(candidate) != nullptr)
        candidate = strfmt("%s#%u", name.c_str(), suffix++);
    groups_.emplace_back(candidate, group);
    return candidate;
}

StatGroup *
StatRegistry::find(const std::string &name) const
{
    for (const auto &kv : groups_) {
        if (kv.first == name)
            return kv.second;
    }
    return nullptr;
}

void
StatRegistry::resetAll()
{
    for (auto &kv : groups_)
        kv.second->resetAll();
}

std::string
StatRegistry::dump(const DumpOptions &opts) const
{
    std::string out;
    for (const auto &kv : groups_)
        out += kv.second->dump(opts);
    return out;
}

StatSnapshot
StatRegistry::snapshot() const
{
    StatSnapshot snap;
    snap.groups.reserve(groups_.size());
    for (const auto &[name, group] : groups_) {
        StatSnapshot::Group g;
        g.name = name;
        for (const auto &kv : group->counters())
            g.scalars.emplace(kv.first, kv.second.value());
        for (const auto &kv : group->histograms()) {
            const Histogram &h = kv.second;
            StatSnapshot::HistogramData data;
            data.scale =
                h.scale() == Histogram::Scale::Linear ? "linear" : "log2";
            data.count = h.count();
            data.sum = h.sum();
            data.min = h.minValue();
            data.max = h.maxValue();
            data.underflow = h.underflow();
            data.overflow = h.overflow();
            for (unsigned i = 0; i < h.numBuckets(); ++i) {
                if (h.bucketCount(i) == 0)
                    continue;
                data.buckets.push_back(
                    {h.bucketLo(i), h.bucketHi(i), h.bucketCount(i)});
            }
            g.histograms.emplace(kv.first, std::move(data));
        }
        for (const auto &kv : group->distributions()) {
            const Distribution &d = kv.second;
            StatSnapshot::DistributionData data;
            data.count = d.count();
            data.sum = d.sum();
            data.mean = d.mean();
            data.stddev = d.stddev();
            data.min = d.minValue();
            data.max = d.maxValue();
            g.distributions.emplace(kv.first, data);
        }
        for (const auto &kv : group->formulas())
            g.formulas.emplace(kv.first, group->formulaValue(kv.first));
        snap.groups.push_back(std::move(g));
    }
    return snap;
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 1.0;
    double log_sum = 0.0;
    for (double v : values) {
        if (v <= 0.0)
            return 0.0;
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace infat
