#include "support/stats.hh"

#include <cmath>

#include "support/logging.hh"

namespace infat {

Counter &
StatGroup::counter(const std::string &stat_name)
{
    return counters_[stat_name];
}

uint64_t
StatGroup::value(const std::string &stat_name) const
{
    auto it = counters_.find(stat_name);
    return it == counters_.end() ? 0 : it->second.value();
}

void
StatGroup::resetAll()
{
    for (auto &kv : counters_)
        kv.second.reset();
}

std::string
StatGroup::dump() const
{
    std::string out;
    for (const auto &kv : counters_) {
        out += strfmt("%s.%s %llu\n", name_.c_str(), kv.first.c_str(),
                      static_cast<unsigned long long>(kv.second.value()));
    }
    return out;
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 1.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace infat
