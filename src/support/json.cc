#include "support/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "support/logging.hh"

namespace infat {

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

// --- JsonWriter ---

void
JsonWriter::newline()
{
    if (!pretty_)
        return;
    os_ << '\n';
    for (size_t i = 1; i < stack_.size(); ++i)
        os_ << "  ";
}

void
JsonWriter::preValue()
{
    if (afterKey_) {
        afterKey_ = false;
        return;
    }
    auto &[ctx, emitted] = stack_.back();
    panic_if(ctx == Ctx::Object, "JsonWriter: value without key in object");
    if (emitted)
        os_ << ',';
    emitted = true;
    if (ctx == Ctx::Array)
        newline();
}

void
JsonWriter::beginObject()
{
    preValue();
    os_ << '{';
    stack_.emplace_back(Ctx::Object, false);
}

void
JsonWriter::endObject()
{
    panic_if(stack_.back().first != Ctx::Object,
             "JsonWriter: endObject outside object");
    stack_.pop_back();
    newline();
    os_ << '}';
}

void
JsonWriter::beginArray()
{
    preValue();
    os_ << '[';
    stack_.emplace_back(Ctx::Array, false);
}

void
JsonWriter::endArray()
{
    panic_if(stack_.back().first != Ctx::Array,
             "JsonWriter: endArray outside array");
    stack_.pop_back();
    newline();
    os_ << ']';
}

void
JsonWriter::key(std::string_view name)
{
    auto &[ctx, emitted] = stack_.back();
    panic_if(ctx != Ctx::Object, "JsonWriter: key outside object");
    if (emitted)
        os_ << ',';
    emitted = true;
    newline();
    os_ << '"' << jsonEscape(name) << "\":";
    if (pretty_)
        os_ << ' ';
    afterKey_ = true;
}

void
JsonWriter::value(std::nullptr_t)
{
    preValue();
    os_ << "null";
}

void
JsonWriter::value(bool v)
{
    preValue();
    os_ << (v ? "true" : "false");
}

void
JsonWriter::value(uint64_t v)
{
    preValue();
    os_ << v;
}

void
JsonWriter::value(int64_t v)
{
    preValue();
    os_ << v;
}

void
JsonWriter::value(double v)
{
    if (!std::isfinite(v)) {
        value(nullptr);
        return;
    }
    preValue();
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os_ << buf;
}

void
JsonWriter::value(std::string_view v)
{
    preValue();
    os_ << '"' << jsonEscape(v) << '"';
}

void
JsonWriter::raw(std::string_view json)
{
    preValue();
    os_ << json;
}

// --- Parser ---

const JsonValue *
JsonValue::find(const std::string &name) const
{
    if (kind != Kind::Object)
        return nullptr;
    auto it = obj.find(name);
    return it == obj.end() ? nullptr : &it->second;
}

namespace {

class Parser
{
  public:
    Parser(std::string_view text, std::string *error)
        : text_(text), error_(error)
    {
    }

    std::optional<JsonValue>
    run()
    {
        JsonValue v;
        if (!parseValue(v))
            return std::nullopt;
        skipWs();
        if (pos_ != text_.size()) {
            fail("trailing characters");
            return std::nullopt;
        }
        return v;
    }

  private:
    void
    fail(const char *what)
    {
        if (error_ && error_->empty())
            *error_ = std::string(what) + " at offset " +
                      std::to_string(pos_);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    literal(const char *word, size_t len)
    {
        if (text_.substr(pos_, len) != std::string_view(word, len)) {
            fail("bad literal");
            return false;
        }
        pos_ += len;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (!consume('"')) {
            fail("expected string");
            return false;
        }
        out.clear();
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (pos_ >= text_.size())
                    break;
                char e = text_[pos_++];
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'u': {
                    if (pos_ + 4 > text_.size()) {
                        fail("bad \\u escape");
                        return false;
                    }
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        char h = text_[pos_++];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code |= static_cast<unsigned>(h - 'A' + 10);
                        else {
                            fail("bad \\u escape");
                            return false;
                        }
                    }
                    // UTF-8 encode the BMP code point (surrogate pairs
                    // are passed through as-is; stats output is ASCII).
                    if (code < 0x80) {
                        out += static_cast<char>(code);
                    } else if (code < 0x800) {
                        out += static_cast<char>(0xc0 | (code >> 6));
                        out += static_cast<char>(0x80 | (code & 0x3f));
                    } else {
                        out += static_cast<char>(0xe0 | (code >> 12));
                        out += static_cast<char>(0x80 |
                                                 ((code >> 6) & 0x3f));
                        out += static_cast<char>(0x80 | (code & 0x3f));
                    }
                    break;
                  }
                  default:
                    fail("bad escape");
                    return false;
                }
            } else {
                out += c;
            }
        }
        fail("unterminated string");
        return false;
    }

    bool
    parseNumber(JsonValue &out)
    {
        size_t start = pos_;
        if (consume('-')) {
        }
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start) {
            fail("expected number");
            return false;
        }
        std::string num(text_.substr(start, pos_ - start));
        char *end = nullptr;
        out.number = std::strtod(num.c_str(), &end);
        if (end == nullptr || *end != '\0') {
            fail("malformed number");
            return false;
        }
        out.kind = JsonValue::Kind::Number;
        return true;
    }

    bool
    parseValue(JsonValue &out)
    {
        if (++depth_ > maxDepth) {
            fail("nesting too deep");
            return false;
        }
        skipWs();
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
            return false;
        }
        bool ok = false;
        char c = text_[pos_];
        switch (c) {
          case '{': {
            ++pos_;
            out.kind = JsonValue::Kind::Object;
            skipWs();
            if (consume('}')) {
                ok = true;
                break;
            }
            while (true) {
                skipWs();
                std::string name;
                if (!parseString(name))
                    break;
                skipWs();
                if (!consume(':')) {
                    fail("expected ':'");
                    break;
                }
                JsonValue member;
                if (!parseValue(member))
                    break;
                out.obj.emplace(std::move(name), std::move(member));
                skipWs();
                if (consume(','))
                    continue;
                if (consume('}')) {
                    ok = true;
                    break;
                }
                fail("expected ',' or '}'");
                break;
            }
            break;
          }
          case '[': {
            ++pos_;
            out.kind = JsonValue::Kind::Array;
            skipWs();
            if (consume(']')) {
                ok = true;
                break;
            }
            while (true) {
                JsonValue element;
                if (!parseValue(element))
                    break;
                out.arr.push_back(std::move(element));
                skipWs();
                if (consume(','))
                    continue;
                if (consume(']')) {
                    ok = true;
                    break;
                }
                fail("expected ',' or ']'");
                break;
            }
            break;
          }
          case '"':
            out.kind = JsonValue::Kind::String;
            ok = parseString(out.str);
            break;
          case 't':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            ok = literal("true", 4);
            break;
          case 'f':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            ok = literal("false", 5);
            break;
          case 'n':
            out.kind = JsonValue::Kind::Null;
            ok = literal("null", 4);
            break;
          default:
            ok = parseNumber(out);
            break;
        }
        --depth_;
        return ok;
    }

    static constexpr unsigned maxDepth = 128;

    std::string_view text_;
    std::string *error_;
    size_t pos_ = 0;
    unsigned depth_ = 0;
};

} // namespace

std::optional<JsonValue>
jsonParse(std::string_view text, std::string *error)
{
    if (error)
        error->clear();
    return Parser(text, error).run();
}

std::optional<JsonValue>
jsonParseFile(const std::string &path, std::string *error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (error)
            *error = "cannot open " + path;
        return std::nullopt;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string text = buf.str();
    return jsonParse(text, error);
}

} // namespace infat
