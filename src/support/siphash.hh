/**
 * @file
 * SipHash-2-4 keyed pseudo-random function.
 *
 * In-Fat Pointer protects in-memory object metadata with a 48-bit MAC
 * (paper §3.3); the prototype hardware computes it with the ifpmac
 * instruction. We model the MAC as SipHash-2-4 truncated to 48 bits with
 * a per-process 128-bit key.
 */

#ifndef INFAT_SUPPORT_SIPHASH_HH
#define INFAT_SUPPORT_SIPHASH_HH

#include <cstddef>
#include <cstdint>

namespace infat {

/** Full 64-bit SipHash-2-4 of @p len bytes under a 128-bit key. */
uint64_t siphash24(const void *data, size_t len, uint64_t key0,
                   uint64_t key1);

/** SipHash-2-4 of two 64-bit words, truncated to 48 bits. */
uint64_t mac48(uint64_t word0, uint64_t word1, uint64_t key0, uint64_t key1);

/** SipHash-2-4 of @p count 64-bit words, truncated to 48 bits. */
uint64_t mac48Words(const uint64_t *words, size_t count, uint64_t key0,
                    uint64_t key1);

} // namespace infat

#endif // INFAT_SUPPORT_SIPHASH_HH
