/**
 * @file
 * A small work-sharing thread pool for run-level parallelism.
 *
 * The experiment harness's unit of work is one self-contained Machine
 * run, so the pool only needs to spread independent jobs across cores;
 * it does not try to parallelize inside a run. Two usage shapes:
 *
 *  - submit(fn): enqueue one task, get a std::future back.
 *  - forEach(n, fn): run fn(0..n-1) across the pool. The calling
 *    thread participates in the loop (it claims indices like any
 *    worker), which makes nested use safe: a pool task may itself call
 *    forEach and will at worst execute every inner index itself rather
 *    than deadlock waiting for occupied workers.
 *
 * Exceptions thrown by tasks are captured; forEach rethrows the first
 * one after the loop drains, and submit's future rethrows on get().
 *
 * A pool constructed with 0 threads degenerates to inline execution on
 * the calling thread (submit runs the task immediately), so callers can
 * treat "--jobs=1" and "no pool" uniformly.
 */

#ifndef INFAT_SUPPORT_THREAD_POOL_HH
#define INFAT_SUPPORT_THREAD_POOL_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace infat {

class ThreadPool
{
  public:
    /** Spawn @p threads workers; 0 means execute inline. */
    explicit ThreadPool(unsigned threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    unsigned
    threadCount() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /**
     * Enqueue one task. Do not block on the returned future from inside
     * a pool task (the pool may have no free worker to run it); use
     * forEach for nested parallelism instead.
     */
    template <typename Fn>
    auto
    submit(Fn &&fn) -> std::future<std::invoke_result_t<std::decay_t<Fn>>>
    {
        using R = std::invoke_result_t<std::decay_t<Fn>>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<Fn>(fn));
        std::future<R> future = task->get_future();
        if (workers_.empty()) {
            (*task)();
            return future;
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            queue_.emplace_back([task] { (*task)(); });
        }
        cv_.notify_one();
        return future;
    }

    /**
     * Run fn(i) for every i in [0, n); returns when all indices have
     * finished. Indices are claimed dynamically (work sharing), so
     * completion order is arbitrary — callers that need ordered output
     * write into slot i of a preallocated result vector. Rethrows the
     * first exception any index threw; the remaining indices still run.
     */
    void forEach(size_t n, const std::function<void(size_t)> &fn);

    /**
     * Job count for `--jobs=N` defaults: the INFAT_JOBS environment
     * variable when set, else std::thread::hardware_concurrency(),
     * never less than 1.
     */
    static unsigned defaultJobs();

  private:
    struct ForEachState;

    static void drainForEach(const std::shared_ptr<ForEachState> &state);
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stop_ = false;
};

} // namespace infat

#endif // INFAT_SUPPORT_THREAD_POOL_HH
