/**
 * @file
 * Minimal JSON support: a streaming writer and a small recursive-descent
 * parser.
 *
 * The writer backs every machine-readable artifact the simulator emits
 * (the --stats-json registry export, the Chrome trace-event sink, the
 * bench_* JSON trajectories) so they all share one escaping/formatting
 * code path. The parser exists for round-trip validation in tests and
 * the stats smoke check; it accepts strict JSON only and is not meant
 * to be fast.
 */

#ifndef INFAT_SUPPORT_JSON_HH
#define INFAT_SUPPORT_JSON_HH

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace infat {

/** Escape @p s for inclusion inside a JSON string literal (no quotes). */
std::string jsonEscape(std::string_view s);

/**
 * Streaming JSON writer with automatic comma placement.
 *
 * Usage:
 *   JsonWriter w(os);
 *   w.beginObject();
 *   w.key("answer"); w.value(42);
 *   w.endObject();
 *
 * Nesting is tracked internally; misuse (e.g. a key at array level)
 * trips an assertion in debug builds and produces malformed output
 * otherwise.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os, bool pretty = false)
        : os_(os), pretty_(pretty)
    {
    }

    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    void key(std::string_view name);

    void value(std::nullptr_t);
    void value(bool v);
    void value(uint64_t v);
    void value(int64_t v);
    void value(int v) { value(static_cast<int64_t>(v)); }
    void value(unsigned v) { value(static_cast<uint64_t>(v)); }
    /** Non-finite doubles are emitted as null (JSON has no NaN/Inf). */
    void value(double v);
    void value(std::string_view v);
    void value(const char *v) { value(std::string_view(v)); }

    /** key + value in one call. */
    template <typename T>
    void
    field(std::string_view name, T v)
    {
        key(name);
        value(v);
    }

    /**
     * Emit @p json verbatim in value position. The caller is
     * responsible for @p json being a complete, well-formed JSON value
     * (object, array, or scalar); comma placement around it is still
     * handled by the writer. Used to splice pre-rendered sections
     * (e.g. the profiler's "profile" object) into a larger document.
     */
    void raw(std::string_view json);

  private:
    enum class Ctx : uint8_t { Top, Object, Array };

    void preValue();
    void newline();

    std::ostream &os_;
    bool pretty_;
    /** (context, element-emitted-yet) stack. */
    std::vector<std::pair<Ctx, bool>> stack_{{Ctx::Top, false}};
    bool afterKey_ = false;
};

/** Parsed JSON document node. */
struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> arr;
    std::map<std::string, JsonValue> obj;

    bool isNull() const { return kind == Kind::Null; }
    bool isBool() const { return kind == Kind::Bool; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** Object member lookup; null when absent or not an object. */
    const JsonValue *find(const std::string &name) const;

    uint64_t
    asUint() const
    {
        return number < 0 ? 0 : static_cast<uint64_t>(number);
    }
};

/**
 * Parse strict JSON. Returns nullopt on any syntax error; when @p error
 * is non-null it receives a short description with a byte offset.
 */
std::optional<JsonValue> jsonParse(std::string_view text,
                                   std::string *error = nullptr);

/** Parse the contents of a file (nullopt if unreadable or invalid). */
std::optional<JsonValue> jsonParseFile(const std::string &path,
                                       std::string *error = nullptr);

} // namespace infat

#endif // INFAT_SUPPORT_JSON_HH
