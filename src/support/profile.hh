/**
 * @file
 * Guest profiler: host-side attribution of simulated cycles and
 * instructions to guest functions, basic blocks, and IFP check sites.
 *
 * The profiler is a passive accumulator attached to a Machine with
 * setProfiler(). Unlike the tracer and the shadow oracle, attaching it
 * does NOT disable the superblock engine: the superblock interpreter
 * batches whole-block deltas into it at block exit, while the general
 * interpreter falls back to per-instruction attribution. Every hook is
 * host-side only — simulated instruction/cycle counts and the stat
 * registry are bit-identical with the profiler attached or not, which
 * the engine-differential gates (infat_superblock_diff and the
 * superblock gtests) enforce.
 *
 * Identity model: functions and blocks use the IR's FuncId/BlockId; a
 * check site is the static id (func, block, ip) of the memory-access
 * instruction carrying the implicit check — for superblock fused
 * records (chk+load, gep+load, ...) that is the access instruction the
 * record ends with, so the same site id is produced by both engines.
 * Block cycles are *self* cycles: callee time is flushed out around
 * calls and attributed to the callee's own blocks.
 *
 * Exports:
 *  - sectionJson(): the "profile" object spliced into --stats-json;
 *    this is the input contract for the future JIT tier (top-K hot
 *    blocks and check sites with cycles, executions, elision stats).
 *  - writeCollapsed(): collapsed-stack text ("main;a;b <weight>") from
 *    guest call stacks sampled every sampleInterval simulated cycles,
 *    ready for flamegraph.pl / speedscope / inferno.
 *  - writeChromeTrace(): Perfetto counter tracks (instructions,
 *    implicit checks) riding the Chrome trace-event sink.
 *
 * Exact reconciliation invariants (tested by infat_profile_smoke and
 * tests/profile_test.cc, documented in docs/OBSERVABILITY.md):
 *  - sum of per-function bnd_ldst_cycles == vm.cycles_bnd_ldst
 *  - sum of check-site executions == vm.implicit_checks
 *  - sum of call-site calls == vm.calls
 *  - sum of block self cycles <= vm.cycles (trap/abandoned partial
 *    blocks are the only unattributed remainder)
 */

#ifndef INFAT_SUPPORT_PROFILE_HH
#define INFAT_SUPPORT_PROFILE_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace infat {

class GuestProfiler
{
  public:
    struct BlockCounters
    {
        uint64_t executions = 0;
        uint64_t cycles = 0;       ///< self cycles (callees excluded)
        uint64_t instructions = 0; ///< self instructions
    };

    struct CheckSiteCounters
    {
        uint64_t accesses = 0;   ///< memory accesses through the site
        uint64_t executions = 0; ///< implicit checks actually evaluated
        uint64_t elided = 0;     ///< host-side elisions (superblock)
        uint64_t cycles = 0;     ///< access cost: 1 + cache latency
    };

    /**
     * Per-call-site attribution: the static id (func, block, ip) of a
     * Call/CallPtr instruction. `calls` is bumped exactly where the
     * engines bump vm.calls, so the reconciliation invariant is
     * sum(call-site calls) == vm.calls, exact (infat_profile_smoke
     * asserts it). `cycles` is the *inclusive* callee time observed
     * across the call — flushed out of the caller block's self cost,
     * and counted again at every enclosing site of a nested chain, so
     * site cycles may sum past vm.cycles — and is abandoned when the
     * callee traps (same partial-attribution rule as block self
     * cycles). These sites are the profiler-side view of
     * the call sites the tier-2 JIT inlines (vm.tier.call_inlined);
     * attaching the profiler forces the interpreter engines, so both
     * views are never live in one run.
     */
    struct CallSiteCounters
    {
        uint64_t calls = 0;  ///< guest calls made through the site
        uint64_t cycles = 0; ///< callee cycles attributed to the site
    };

    // --- registration (once per function, on first activation) ---

    bool
    knowsFunction(uint32_t func) const
    {
        return func < funcs_.size() && funcs_[func].known;
    }

    void noteFunction(uint32_t func, std::string name,
                      std::vector<std::string> block_names);

    // --- hot-path accumulation hooks (host-side only) ---

    void
    countCall(uint32_t func)
    {
        ensure(func);
        ++funcs_[func].calls;
    }

    void
    countBlockEntry(uint32_t func, uint32_t block)
    {
        ++blockSlot(func, block).executions;
    }

    void
    addBlock(uint32_t func, uint32_t block, uint64_t cycles,
             uint64_t instructions)
    {
        BlockCounters &b = blockSlot(func, block);
        b.cycles += cycles;
        b.instructions += instructions;
    }

    void countCheckSite(uint32_t func, uint32_t block, uint32_t ip,
                        uint64_t cycles, uint64_t checks,
                        uint64_t elided);

    /** One guest call through the site; made before the call runs so
     *  a trapping callee still counts (vm.calls does too). */
    void
    countCallSite(uint32_t func, uint32_t block, uint32_t ip)
    {
        ensure(func);
        ++funcs_[func].callSites[key(block, ip)].calls;
    }

    /** Callee cycle delta for a completed call through the site. */
    void
    addCallSiteCycles(uint32_t func, uint32_t block, uint32_t ip,
                      uint64_t cycles)
    {
        funcs_[func].callSites[key(block, ip)].cycles += cycles;
    }

    void
    addBndCycles(uint32_t func, uint64_t cycles)
    {
        ensure(func);
        funcs_[func].bndCycles += cycles;
    }

    // --- stack sampling (flamegraph + counter tracks) ---

    /** Sample every @p cycles simulated cycles; 0 disables (default). */
    void
    setSampleInterval(uint64_t cycles)
    {
        sampleInterval_ = cycles;
        nextSample_ = cycles;
    }
    uint64_t sampleInterval() const { return sampleInterval_; }

    /** Cheap check the engines make at block boundaries. */
    bool
    sampleDue(uint64_t now) const
    {
        return sampleInterval_ != 0 && now >= nextSample_;
    }

    /**
     * Record one sample: @p stack is the guest call chain as function
     * ids, outermost first; @p now the cycle clock; @p instructions
     * and @p checks the cumulative counters for the Perfetto tracks.
     */
    void addSample(const std::vector<uint32_t> &stack, uint64_t now,
                   uint64_t instructions, uint64_t checks);

    uint64_t samples() const { return sampleCount_; }

    // --- exports ---

    /** Collapsed-stack text: one "main;a;b <count>" line per stack. */
    void writeCollapsed(std::ostream &os) const;
    void writeCollapsedFile(const std::string &path) const;

    /** Perfetto/Chrome counter tracks from the sampled series. */
    void writeChromeTrace(const std::string &path) const;

    /**
     * The "profile" JSON object (not a document: splice it into
     * --stats-json via StatSnapshot::sections, or write standalone).
     * Blocks and check sites are ranked by cycles, truncated to
     * @p top_k each; totals cover everything including what the
     * truncation dropped.
     */
    std::string sectionJson(size_t top_k = 32) const;

    // --- aggregate accessors (tests / reconciliation) ---

    uint64_t totalBlockCycles() const;
    uint64_t totalBlockInstructions() const;
    uint64_t totalCheckExecutions() const;
    uint64_t totalCheckElided() const;
    uint64_t totalCheckCycles() const;
    uint64_t totalBndCycles() const;
    uint64_t totalCallSiteCalls() const;
    uint64_t totalCallSiteCycles() const;

    const std::string &functionName(uint32_t func) const;

  private:
    struct FunctionData
    {
        bool known = false;
        std::string name;
        std::vector<std::string> blockNames;
        std::vector<BlockCounters> blocks;
        /** Check sites keyed by (block << 32) | ip. */
        std::map<uint64_t, CheckSiteCounters> sites;
        /** Call sites, same key scheme. */
        std::map<uint64_t, CallSiteCounters> callSites;
        uint64_t calls = 0;
        uint64_t bndCycles = 0;
    };

    struct CounterSample
    {
        uint64_t ts = 0; ///< simulated cycles
        uint64_t instructions = 0;
        uint64_t checks = 0;
    };

    void
    ensure(uint32_t func)
    {
        if (func >= funcs_.size())
            funcs_.resize(func + 1);
    }

    static uint64_t
    key(uint32_t block, uint32_t ip)
    {
        return (static_cast<uint64_t>(block) << 32) | ip;
    }

    BlockCounters &
    blockSlot(uint32_t func, uint32_t block)
    {
        ensure(func);
        FunctionData &f = funcs_[func];
        if (block >= f.blocks.size())
            f.blocks.resize(block + 1);
        return f.blocks[block];
    }

    std::vector<FunctionData> funcs_;

    uint64_t sampleInterval_ = 0;
    uint64_t nextSample_ = 0;
    uint64_t sampleCount_ = 0;
    /** Collapsed stacks: function-id chain -> sample count. */
    std::map<std::vector<uint32_t>, uint64_t> stacks_;
    std::vector<CounterSample> series_;
};

} // namespace infat

#endif // INFAT_SUPPORT_PROFILE_HH
