#include "vm/trap.hh"

namespace infat {

const char *
toString(TrapKind kind)
{
    switch (kind) {
      case TrapKind::PoisonedAccess:
        return "poisoned access";
      case TrapKind::BoundsViolation:
        return "bounds violation";
      case TrapKind::NullDereference:
        return "null dereference";
      case TrapKind::DivisionByZero:
        return "division by zero";
      case TrapKind::StackOverflow:
        return "stack overflow";
      case TrapKind::WorkloadAssert:
        return "workload assertion";
      case TrapKind::BadIndirectCall:
        return "bad indirect call";
      case TrapKind::InstructionLimit:
        return "instruction limit";
    }
    return "?";
}

} // namespace infat
