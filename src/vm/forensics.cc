#include "vm/forensics.hh"

#include <sstream>

#include "ifp/config.hh"
#include "ifp/metadata.hh"
#include "ifp/tag.hh"
#include "support/bitops.hh"
#include "support/json.hh"
#include "support/logging.hh"
#include "vm/machine.hh"

namespace infat {

namespace {
using ull = unsigned long long;
} // namespace

const char *
toString(AllocKind kind)
{
    switch (kind) {
      case AllocKind::IfpHeap: return "ifp-heap";
      case AllocKind::PlainHeap: return "heap";
      case AllocKind::Stack: return "stack";
      case AllocKind::Global: return "global";
    }
    return "?";
}

const TrapForensics::AllocRecord *
TrapForensics::findBelow(GuestAddr addr) const
{
    auto it = records_.upper_bound(addr);
    if (it == records_.begin())
        return nullptr;
    --it;
    return &it->second;
}

const TrapForensics::FreedRecord *
TrapForensics::findFreedBelow(GuestAddr addr) const
{
    auto it = freed_.upper_bound(addr);
    if (it == freed_.begin())
        return nullptr;
    --it;
    return &it->second;
}

std::string
TrapReport::text() const
{
    std::string out;
    out += strfmt("trap: %s\n", detail.c_str());
    out += "guest stack (outermost first):\n";
    for (size_t i = 0; i < stack.size(); ++i) {
        out += strfmt("  #%zu %s @ %s\n", i, stack[i].function.c_str(),
                      stack[i].blockName.c_str());
    }
    if (!faultKnown)
        return out;

    out += strfmt("fault: %s of %llu bytes at %#llx through pointer "
                  "%#llx\n",
                  write ? "store" : "load",
                  static_cast<ull>(accessSize), static_cast<ull>(addr),
                  static_cast<ull>(ptrRaw));
    out += strfmt("  poison=%s scheme=%s", poison.c_str(),
                  scheme.c_str());
    if (!schemeFields.empty())
        out += strfmt(" (%s)", schemeFields.c_str());
    out += "\n";
    if (boundsKnown) {
        out += strfmt("  bounds=[%#llx, %#llx)\n",
                      static_cast<ull>(boundsLower),
                      static_cast<ull>(boundsUpper));
    } else {
        out += "  bounds=[cleared]\n";
    }

    if (meta.present) {
        out += strfmt("metadata: %s at %#llx", meta.note.c_str(),
                      static_cast<ull>(meta.metaAddr));
        if (meta.valid) {
            out += strfmt(", object [%#llx, +%llu)",
                          static_cast<ull>(meta.objectBase),
                          static_cast<ull>(meta.objectSize));
            if (meta.layoutTable != 0)
                out += strfmt(", layout table %#llx",
                              static_cast<ull>(meta.layoutTable));
        }
        out += "\n";
    }

    if (temporalKnown) {
        out += strfmt("temporal: key=%llu lock=%llu delta=%llu reuse%s\n",
                      static_cast<ull>(ptrGeneration),
                      static_cast<ull>(lockGeneration),
                      static_cast<ull>(generationDelta),
                      generationDelta == 1 ? "" : "s");
        if (freeSiteKnown)
            out += strfmt("  freed at %s @ %s\n", freeFunction.c_str(),
                          freeBlock.c_str());
    }

    if (object.present) {
        out += strfmt("object: %s [%#llx, +%llu) — %s",
                      toString(object.kind),
                      static_cast<ull>(object.base),
                      static_cast<ull>(object.size),
                      object.relation.c_str());
        if (object.distance != 0)
            out += strfmt(" by %llu bytes",
                          static_cast<ull>(object.distance));
        out += "\n";
        if (object.siteKnown)
            out += strfmt("  allocated at %s @ %s\n",
                          object.siteFunction.c_str(),
                          object.siteBlock.c_str());
    }
    return out;
}

std::string
TrapReport::json() const
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.field("kind", kind);
    w.field("detail", detail);

    w.key("stack");
    w.beginArray();
    for (const TrapFrame &f : stack) {
        w.beginObject();
        w.field("func", f.func);
        w.field("function", f.function);
        w.field("block", f.block);
        w.field("block_name", f.blockName);
        w.endObject();
    }
    w.endArray();

    w.field("fault_known", faultKnown);
    if (faultKnown) {
        w.key("pointer");
        w.beginObject();
        w.field("raw", ptrRaw);
        w.field("addr", addr);
        w.field("poison", poison);
        w.field("scheme", scheme);
        w.field("meta12", meta12);
        w.field("scheme_fields", schemeFields);
        w.endObject();
        w.field("access_size", accessSize);
        w.field("write", write);
        w.field("bounds_known", boundsKnown);
        if (boundsKnown) {
            w.field("bounds_lower", boundsLower);
            w.field("bounds_upper", boundsUpper);
        }
        if (meta.present) {
            w.key("metadata");
            w.beginObject();
            w.field("valid", meta.valid);
            w.field("addr", meta.metaAddr);
            w.field("object_base", meta.objectBase);
            w.field("object_size", meta.objectSize);
            w.field("layout_table", meta.layoutTable);
            w.field("note", meta.note);
            w.endObject();
        }
        w.field("temporal_known", temporalKnown);
        if (temporalKnown) {
            w.key("temporal");
            w.beginObject();
            w.field("ptr_generation", ptrGeneration);
            w.field("lock_generation", lockGeneration);
            w.field("generation_delta", generationDelta);
            w.field("free_site_known", freeSiteKnown);
            if (freeSiteKnown) {
                w.field("free_function", freeFunction);
                w.field("free_block", freeBlock);
            }
            w.endObject();
        }
        if (object.present) {
            w.key("object");
            w.beginObject();
            w.field("kind", toString(object.kind));
            w.field("base", object.base);
            w.field("size", object.size);
            w.field("relation", object.relation);
            w.field("distance", object.distance);
            w.field("site_known", object.siteKnown);
            if (object.siteKnown) {
                w.field("site_function", object.siteFunction);
                w.field("site_block", object.siteBlock);
            }
            w.endObject();
        }
    }
    w.endObject();
    return os.str();
}

std::shared_ptr<const TrapReport>
Machine::buildTrapReport(const GuestTrap &trap)
{
    auto rep = std::make_shared<TrapReport>();
    rep->kind = toString(trap.kind());
    rep->detail = trap.what();

    // Symbolized guest stack: frames 0..curDepth_ are exactly the live
    // chain (calls nest strictly and curDepth_ froze when the trap
    // unwound through callFunction).
    for (unsigned d = 0; d <= curDepth_ && d < framePool_.size(); ++d) {
        const Frame *f = framePool_[d].get();
        if (f == nullptr || f->func == nullptr)
            break;
        TrapFrame tf;
        tf.func = f->func->id();
        tf.function = f->func->name();
        tf.block = f->curBlock;
        tf.blockName =
            static_cast<size_t>(f->curBlock) < f->func->numBlocks()
                ? f->func->block(f->curBlock).name
                : strfmt("bb%u", f->curBlock);
        rep->stack.push_back(std::move(tf));
    }

    if (!lastFault_.valid)
        return rep;

    TaggedPtr ptr(lastFault_.raw);
    rep->faultKnown = true;
    rep->ptrRaw = lastFault_.raw;
    rep->addr = ptr.addr();
    rep->accessSize = lastFault_.size;
    rep->write = lastFault_.write;
    rep->poison = toString(ptr.poison());
    rep->scheme = toString(ptr.scheme());
    rep->meta12 = ptr.meta12();
    switch (ptr.scheme()) {
      case Scheme::LocalOffset:
        rep->schemeFields =
            strfmt("granule_offset=%llu subobject=%llu",
                   static_cast<ull>(ptr.localGranuleOffset()),
                   static_cast<ull>(ptr.localSubobjIndex()));
        break;
      case Scheme::Subheap:
        rep->schemeFields =
            strfmt("ctrl_reg=%llu subobject=%llu",
                   static_cast<ull>(ptr.subheapCtrlIndex()),
                   static_cast<ull>(ptr.subheapSubobjIndex()));
        break;
      case Scheme::GlobalTable:
        rep->schemeFields = strfmt(
            "row=%llu", static_cast<ull>(ptr.globalTableIndex()));
        break;
      case Scheme::Legacy:
        rep->schemeFields = "untagged";
        break;
    }
    rep->boundsKnown = lastFault_.hasBounds;
    if (lastFault_.hasBounds) {
        rep->boundsLower = lastFault_.bounds.lower();
        rep->boundsUpper = lastFault_.bounds.upper();
    }

    // Decode the metadata the scheme resolves to, with the same address
    // arithmetic as PromoteEngine::retrieve* but purely functional:
    // reads go through the raw GuestMemory path and no simulated
    // counter moves.
    MetaDecode &md = rep->meta;
    switch (ptr.scheme()) {
      case Scheme::LocalOffset: {
        GuestAddr meta_addr =
            roundDown(rep->addr, IfpConfig::granuleBytes) +
            ptr.localGranuleOffset() * IfpConfig::granuleBytes;
        LocalOffsetMeta m = LocalOffsetMeta::read(mem_, meta_addr);
        md.present = true;
        md.metaAddr = meta_addr;
        md.objectSize = m.objectSize;
        md.layoutTable = m.layoutTable;
        md.generation = m.generation;
        md.valid = m.magic == LocalOffsetMeta::magicValue &&
                   m.objectSize != 0 &&
                   m.objectSize <= IfpConfig::localMaxObjectBytes;
        if (md.valid)
            md.objectBase = meta_addr -
                            roundUp(m.objectSize, IfpConfig::granuleBytes);
        md.note = md.valid ? "local-offset metadata"
                           : "local-offset metadata invalid "
                             "(bad magic or size)";
        break;
      }
      case Scheme::Subheap: {
        const SubheapCtrlReg &ctrl =
            regs_.subheap[ptr.subheapCtrlIndex()];
        md.present = true;
        if (!ctrl.valid) {
            md.note = "subheap control register invalid";
            break;
        }
        GuestAddr block_base =
            roundDown(rep->addr, 1ULL << ctrl.blockOrderLog2);
        SubheapBlockMeta m =
            SubheapBlockMeta::read(mem_, block_base, ctrl.metaOffset);
        md.metaAddr = block_base + ctrl.metaOffset;
        md.objectSize = m.objectSize;
        md.layoutTable = m.layoutTable;
        bool shape_ok = m.valid && m.slotSize != 0 &&
                        m.slotsEnd > m.slotsStart && m.objectSize != 0 &&
                        m.objectSize <= m.slotSize;
        uint64_t rel = rep->addr - block_base;
        if (shape_ok && rel >= m.slotsStart && rel < m.slotsEnd) {
            uint64_t slot = (rel - m.slotsStart) / m.slotSize;
            md.objectBase =
                block_base + m.slotsStart + slot * m.slotSize;
            md.valid = true;
            md.generation = mem_.load<uint8_t>(SubheapBlockMeta::genAddr(
                block_base, ctrl.metaOffset, slot));
            md.note = strfmt("subheap block %#llx slot %llu",
                             static_cast<ull>(block_base),
                             static_cast<ull>(slot));
        } else {
            md.note = shape_ok ? "pointer outside the slot array"
                               : "subheap block metadata invalid";
        }
        break;
      }
      case Scheme::GlobalTable: {
        uint64_t index = ptr.globalTableIndex();
        md.present = true;
        if (regs_.globalTableBase == 0 ||
            index >= regs_.globalTableRows) {
            md.note = "row index out of table range";
            break;
        }
        md.metaAddr = GlobalTableRow::rowAddr(regs_.globalTableBase,
                                              index);
        GlobalTableRow row =
            GlobalTableRow::read(mem_, regs_.globalTableBase, index);
        md.valid = row.valid && row.size != 0;
        md.objectBase = row.base;
        md.objectSize = row.size;
        md.generation = row.generation;
        md.note = md.valid
                      ? strfmt("global table row %llu",
                               static_cast<ull>(index))
                      : strfmt("global table row %llu invalid",
                               static_cast<ull>(index));
        break;
      }
      case Scheme::Legacy:
        break;
    }

    // Temporal traps: report both ends of the lock-and-key comparison
    // and, when the forensics registry retired a record covering this
    // address, the free site that ended the object's lifetime.
    if (trap.kind() == TrapKind::TemporalViolation ||
        trap.kind() == TrapKind::InvalidFree) {
        rep->temporalKnown = true;
        rep->ptrGeneration = ptr.generation();
        rep->lockGeneration = rep->meta.generation;
        rep->generationDelta =
            (rep->lockGeneration - rep->ptrGeneration) &
            (layout::genLimit - 1);
        if (forensics_ != nullptr) {
            const TrapForensics::FreedRecord *fr =
                forensics_->findFreedBelow(rep->addr);
            if (fr != nullptr && rep->addr >= fr->alloc.base &&
                rep->addr < fr->alloc.base + fr->alloc.size) {
                if (fr->freeSite.known &&
                    fr->freeSite.func < module_.numFunctions()) {
                    const ir::Function *ff =
                        module_.function(fr->freeSite.func);
                    rep->freeSiteKnown = true;
                    rep->freeFunction = ff->name();
                    rep->freeBlock =
                        static_cast<size_t>(fr->freeSite.block) <
                                ff->numBlocks()
                            ? ff->block(fr->freeSite.block).name
                            : strfmt("bb%u", fr->freeSite.block);
                }
                // The live-record diagnosis below describes the slot's
                // current occupant (if any); seed the freed object's
                // identity here so the report names the allocation the
                // stale pointer was actually derived from.
                ObjectDiagnosis &o = rep->object;
                if (!o.present) {
                    o.present = true;
                    o.base = fr->alloc.base;
                    o.size = fr->alloc.size;
                    o.kind = fr->alloc.kind;
                    o.relation = "freed";
                    if (fr->alloc.site.known &&
                        fr->alloc.site.func < module_.numFunctions()) {
                        const ir::Function *af =
                            module_.function(fr->alloc.site.func);
                        o.siteKnown = true;
                        o.siteFunction = af->name();
                        o.siteBlock =
                            static_cast<size_t>(fr->alloc.site.block) <
                                    af->numBlocks()
                                ? af->block(fr->alloc.site.block).name
                                : strfmt("bb%u", fr->alloc.site.block);
                    }
                }
            }
        }
    }

    // Nearest-object diagnosis against the allocation records. Prefer
    // the object the bounds register points into (that is the object
    // the pointer was derived from); fall back to the nearest record
    // below the faulting address. A freed-record diagnosis seeded above
    // wins: the stale pointer's own object is more useful than the
    // slot's current occupant.
    if (forensics_ != nullptr && !rep->object.present) {
        const TrapForensics::AllocRecord *rec = nullptr;
        if (lastFault_.hasBounds) {
            rec = forensics_->findBelow(lastFault_.bounds.lower());
            if (rec != nullptr &&
                lastFault_.bounds.lower() >= rec->base + rec->size)
                rec = nullptr;
        }
        if (rec == nullptr)
            rec = forensics_->findBelow(rep->addr);
        if (rec != nullptr) {
            ObjectDiagnosis &o = rep->object;
            o.present = true;
            o.base = rec->base;
            o.size = rec->size;
            o.kind = rec->kind;
            GuestAddr end = rec->base + rec->size;
            uint64_t sz = rep->accessSize != 0 ? rep->accessSize : 1;
            if (rep->addr < rec->base) {
                o.relation = "underflow";
                o.distance = rec->base - rep->addr;
            } else if (rep->addr + sz > end) {
                o.relation = "overflow";
                o.distance = rep->addr + sz - end;
            } else {
                // Inside the object: a subobject (narrowed-bounds)
                // violation. Distance is how far the access escapes
                // the narrowed bounds.
                o.relation = "intra-object";
                if (lastFault_.hasBounds) {
                    GuestAddr lo = lastFault_.bounds.lower();
                    GuestAddr hi = lastFault_.bounds.upper();
                    if (rep->addr < lo)
                        o.distance = lo - rep->addr;
                    else if (rep->addr + sz > hi)
                        o.distance = rep->addr + sz - hi;
                }
            }
            if (rec->site.known &&
                rec->site.func < module_.numFunctions()) {
                const ir::Function *sf =
                    module_.function(rec->site.func);
                o.siteKnown = true;
                o.siteFunction = sf->name();
                o.siteBlock =
                    static_cast<size_t>(rec->site.block) <
                            sf->numBlocks()
                        ? sf->block(rec->site.block).name
                        : strfmt("bb%u", rec->site.block);
            }
        }
    }
    return rep;
}

} // namespace infat
