/**
 * @file
 * Trap forensics: structured post-mortem reports for guest traps.
 *
 * When any TrapKind fires, the machine's top-level trap handler
 * (Machine::run) assembles a TrapReport and attaches it to the GuestTrap
 * before the exception propagates to the harness:
 *
 *  - the symbolized guest call stack (function + current basic block per
 *    frame, outermost first), walked from the machine's frame pool;
 *  - for the dereference traps, the faulting pointer fully decoded
 *    (poison bits, scheme selector, per-scheme tag fields) plus the
 *    bounds register it was checked against;
 *  - the in-memory metadata the pointer's scheme resolves to (local
 *    offset / subheap block / global-table row), decoded functionally
 *    with the same address arithmetic as the promote engine — read via
 *    the raw GuestMemory path so no simulated counter moves;
 *  - a nearest-object diagnosis (overflow / underflow / intra-object
 *    with byte distances) against the runtime allocation records, and
 *    the allocation site that created the object.
 *
 * The allocation records come from TrapForensics, a registry the
 * interpreter feeds at IfpMalloc/malloc/alloca-registration time when
 * VmConfig::forensics is set (cheap: one map insert per allocation,
 * erased on free). With the flag off the report still carries the
 * stack, pointer decode, and metadata decode — only the nearest-object
 * diagnosis needs the records.
 *
 * Everything here is host-side only: capture and report assembly never
 * touch simulated instruction/cycle counts or the stat registry, so
 * runs are bit-identical with forensics on or off (the engine
 * differential gates check this).
 */

#ifndef INFAT_VM_FORENSICS_HH
#define INFAT_VM_FORENSICS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ifp/bounds.hh"
#include "mem/address_space.hh"

namespace infat {

/** Which allocation path created a forensics record. */
enum class AllocKind : uint8_t
{
    IfpHeap,   ///< ifpmalloc (tagged, scheme-carrying)
    PlainHeap, ///< plain malloc (legacy pointer)
    Stack,     ///< registered stack object (alloca + objreg)
    Global,    ///< module global
};

const char *toString(AllocKind kind);

/** One frame of the symbolized guest call stack, outermost first. */
struct TrapFrame
{
    uint32_t func = 0;
    std::string function;
    uint32_t block = 0;
    std::string blockName;
};

/** The in-memory metadata the faulting pointer's scheme resolves to. */
struct MetaDecode
{
    bool present = false;   ///< a non-legacy scheme was decoded
    bool valid = false;     ///< magic/valid checks passed
    GuestAddr metaAddr = 0; ///< metadata / row address resolved
    GuestAddr objectBase = 0;
    uint64_t objectSize = 0;
    GuestAddr layoutTable = 0;
    /** Current generation lock at the metadata (temporal scheme). */
    uint64_t generation = 0;
    std::string note; ///< human-oriented decode detail
};

/** Nearest-object diagnosis against the runtime allocation records. */
struct ObjectDiagnosis
{
    bool present = false;
    GuestAddr base = 0;
    uint64_t size = 0;
    AllocKind kind = AllocKind::PlainHeap;
    /** "overflow" | "underflow" | "intra-object" */
    std::string relation;
    /** Bytes by which [addr, addr+size) escapes the object (overflow /
     *  underflow) or the narrowed subobject bounds (intra-object). */
    uint64_t distance = 0;
    bool siteKnown = false;
    std::string siteFunction;
    std::string siteBlock;
};

struct TrapReport
{
    std::string kind;   ///< toString(TrapKind)
    std::string detail; ///< GuestTrap::what()
    std::vector<TrapFrame> stack;

    // --- dereference-fault details (faultKnown == true) ---
    bool faultKnown = false;
    uint64_t ptrRaw = 0;
    GuestAddr addr = 0;
    uint64_t accessSize = 0;
    bool write = false;
    std::string poison;
    std::string scheme;
    uint64_t meta12 = 0;
    std::string schemeFields; ///< per-scheme decode of the 12 tag bits
    bool boundsKnown = false;
    GuestAddr boundsLower = 0;
    GuestAddr boundsUpper = 0;

    MetaDecode meta;
    ObjectDiagnosis object;

    // --- temporal-trap details (temporalKnown == true) ---
    bool temporalKnown = false;
    uint64_t ptrGeneration = 0;  ///< the pointer's key
    uint64_t lockGeneration = 0; ///< current lock at the metadata
    /** Slot reuses between the pointer's allocation and now (mod 16). */
    uint64_t generationDelta = 0;
    bool freeSiteKnown = false;
    std::string freeFunction;
    std::string freeBlock;

    /** Multi-line human-readable rendering. */
    std::string text() const;
    /** JSON object rendering (same fields, machine-consumable). */
    std::string json() const;
};

/**
 * Allocation-record registry feeding the nearest-object diagnosis.
 * Owned by Machine, populated only when VmConfig::forensics is set.
 */
class TrapForensics
{
  public:
    struct AllocSite
    {
        bool known = false;
        uint32_t func = 0;
        uint32_t block = 0;
    };

    struct AllocRecord
    {
        GuestAddr base = 0;
        uint64_t size = 0;
        AllocKind kind = AllocKind::PlainHeap;
        AllocSite site;
    };

    /** A retired allocation: the original record plus the free site,
     *  kept so temporal traps can name both ends of the lifetime. */
    struct FreedRecord
    {
        AllocRecord alloc;
        AllocSite freeSite;
    };

    void
    noteAlloc(GuestAddr base, uint64_t size, AllocKind kind,
              AllocSite site)
    {
        records_[base] = AllocRecord{base, size, kind, site};
    }

    /**
     * Retire the record at @p base, remembering it (with @p free_site)
     * for temporal-trap reports. Re-allocation at the same base keeps
     * the most recent freed record, matching the generation scheme's
     * notion of "the object this stale pointer referred to".
     * (Defined below the class: a default argument of AllocSite{}
     * would need the nested class's member initializers before the
     * enclosing class is complete.)
     */
    inline void noteFree(GuestAddr base, AllocSite free_site);
    inline void noteFree(GuestAddr base);

    /** The record with the greatest base <= @p addr, or null. */
    const AllocRecord *findBelow(GuestAddr addr) const;

    /** The freed record with the greatest base <= @p addr, or null. */
    const FreedRecord *findFreedBelow(GuestAddr addr) const;

    size_t recordCount() const { return records_.size(); }

  private:
    std::map<GuestAddr, AllocRecord> records_;
    std::map<GuestAddr, FreedRecord> freed_;
};

inline void
TrapForensics::noteFree(GuestAddr base, AllocSite free_site)
{
    auto it = records_.find(base);
    if (it != records_.end()) {
        freed_[base] = FreedRecord{it->second, free_site};
        records_.erase(it);
    }
}

inline void
TrapForensics::noteFree(GuestAddr base)
{
    noteFree(base, AllocSite());
}

} // namespace infat

#endif // INFAT_VM_FORENSICS_HH
