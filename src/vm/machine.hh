/**
 * @file
 * The machine model: an in-order core executing IR with the In-Fat
 * Pointer extension.
 *
 * One Machine instance is one simulated process on one core:
 *  - guest memory, an L1 data cache, and the IFP promote engine;
 *  - the runtime library (allocators, registration, layout tables);
 *  - the interpreter, which executes base instructions at 1 cycle each,
 *    sends loads/stores (and allocator/metadata traffic) through the
 *    cache, pairs every virtual register with a bounds register (IFPR),
 *    applies the calling-convention rules of §4.1.2 (bounds passing,
 *    implicit clearing at uninstrumented boundaries, callee-saved
 *    ldbnd/stbnd), and performs the implicit poison/bounds checks of
 *    §4.1.1 on every dereference.
 *
 * Dynamic-instruction and cycle accounting feed Table 4 and Figures
 * 10-12; the per-category counters (promote / IFP arithmetic / bounds
 * load-store) feed Figure 11.
 */

#ifndef INFAT_VM_MACHINE_HH
#define INFAT_VM_MACHINE_HH

#include <array>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cache/cache.hh"
#include "compiler/layout_gen.hh"
#include "ifp/promote_engine.hh"
#include "ir/module.hh"
#include "mem/guest_memory.hh"
#include "runtime/runtime.hh"
#include "support/stats.hh"
#include "support/trace.hh"
#include "vm/forensics.hh"
#include "vm/superblock.hh"
#include "vm/trap.hh"

namespace infat {

class GuestProfiler;
class TierController;

namespace oracle {
class ShadowOracle;
struct Prov;
} // namespace oracle

struct VmConfig
{
    /** Whether the module was instrumented (run instrumentModule). */
    bool instrumented = false;
    AllocatorKind allocator = AllocatorKind::Wrapped;
    IfpConfig ifp;
    /** Model the L1D (timing); functional behaviour is unaffected. */
    bool useCache = true;
    /**
     * Implicit bounds checking on dereferences (paper §4.1.1). Turn
     * off only for the explicit-ifpchk ablation (combine with
     * InstrumentOptions::explicitChecks to keep detection).
     */
    bool implicitChecks = true;
    /**
     * Crude out-of-order/superscalar model for the §5.2.4 ASIC
     * prediction: single-cycle IFP arithmetic issues in parallel with
     * the surrounding code (costs no extra cycle); memory and promote
     * latency remain.
     */
    bool superscalar = false;
    CacheConfig l1d;
    /** Chain an L2 behind the L1D (the FPGA board has none; the ASIC
     *  model enables it, paper §5.2.4 "larger caches"). */
    bool useL2 = false;
    CacheConfig l2 = {256 * 1024, 8, 64, 8, 60};
    uint64_t stackBytes = 16ULL << 20;
    /**
     * Superblock interpreter engine (vm/superblock.hh): predecoded
     * per-block records, fused instruction pairs, batched charging,
     * redundant-check elimination. Host-side only — simulated
     * instructions, cycles, checksums, traps, and stats are
     * bit-identical to the general path. Automatically bypassed while
     * a trace sink or the differential oracle is attached.
     */
    bool superblocks = true;
    /** Fused records (cmp+br, gep/ifpadd/ifpchk + load/store, ...). */
    bool superblockFusion = true;
    /** In-block redundant-check elimination. */
    bool superblockCheckElim = true;
    /**
     * Tier 1: direct-threaded dispatch (computed goto) of superblock
     * records. Pure host-code-layout change — same record bodies, same
     * simulated behaviour; silently falls back to the switch dispatch
     * on compilers without the labels-as-values extension.
     */
    bool threadedDispatch = true;
    /**
     * Tier 2: x86-64 template JIT for hot superblocks (vm/jit.hh,
     * vm/tier.hh). Host-side only, bit-identical by construction;
     * automatically inactive when unsupported on this host or while a
     * profiler/tracer/oracle is attached.
     */
    bool jit = true;
    /** Block entries before a block is promoted to jitted code. */
    uint32_t jitThreshold = 16;
    /**
     * Emitted guest-call convention: let jitted blocks execute
     * Call/CallPtr/Ret/Alloca/Promote records through the
     * jitGuestCall/jitPromote runtime entries instead of bailing to
     * the interpreter at every call boundary. Bit-identical either
     * way; exists as the ablation switch behind the bench harness's
     * `jit-nocalls` engine.
     */
    bool jitCalls = true;
    /**
     * Capture allocation records (base, size, kind, allocating
     * function/block) for trap forensics (vm/forensics.hh). Host-side
     * only — one map insert per allocation, no simulated cost — but
     * off by default to keep the hot allocation paths lean. Trap
     * reports are always assembled; without this flag they simply lack
     * the nearest-object diagnosis and allocation site.
     */
    bool forensics = false;
    /** Runaway guard. */
    uint64_t maxInstructions = 20'000'000'000ULL;
    /**
     * Simulated call-depth guard. The interpreter recurses one host
     * frame per simulated call, so this also bounds host stack use
     * (relevant under sanitizers, whose frames are much larger).
     */
    unsigned maxCallDepth = 4000;
};

class Machine
{
  public:
    using NativeFn =
        std::function<uint64_t(Machine &, const std::vector<uint64_t> &)>;

    /**
     * @param layouts Layout registry from instrumentation; null for
     *                baseline runs.
     */
    Machine(ir::Module &module, const LayoutRegistry *layouts,
            VmConfig config = {});
    ~Machine();

    /** Bind a host implementation to a declared native function. */
    void registerNative(const std::string &name, NativeFn fn);

    /** Execute @p entry (default main) to completion. */
    uint64_t run(const std::string &entry = "main",
                 const std::vector<uint64_t> &args = {});

    // --- Component access ---
    GuestMemory &mem() { return mem_; }
    Runtime &runtime() { return *runtime_; }
    Cache &l1d() { return l1d_; }
    Cache *l2() { return config_.useL2 ? &l2_ : nullptr; }

    /**
     * Attach a structured trace sink (support/trace.hh). Events in the
     * categories of @p category_mask flow to @p sink; pass nullptr to
     * disable. The `exec` category emits one event per executed guest
     * instruction — costly, meant for debugging small programs; with
     * no sink attached every trace site is a two-load check and the
     * simulated instruction/cycle counts are identical either way.
     */
    void
    setTraceSink(TraceSink *sink, uint32_t category_mask = traceMaskAll)
    {
        tracer_.setSink(sink, category_mask);
    }
    Tracer &tracer() { return tracer_; }
    PromoteEngine &promoteEngine() { return *promote_; }

    /**
     * Attach a differential bounds oracle (oracle/oracle.hh). Call
     * before run(): instrumented globals are registered with the
     * oracle immediately, its stat group joins statRegistry(), and the
     * interpreter's predecoded fast path is disabled so every
     * dereference flows through the full checkAccess diff. Attachment
     * is host-side only — simulated instruction/cycle counts and
     * checksums are unchanged. Pass nullptr to detach.
     */
    void setOracle(oracle::ShadowOracle *oracle);

    /**
     * Attach a guest profiler (support/profile.hh). Unlike the tracer
     * and the oracle, the profiler does NOT bypass the superblock
     * engine: the superblock interpreter batches per-block deltas into
     * it at block exit, the general interpreter attributes
     * per-instruction. Host-side only — simulated counts and the stat
     * registry are bit-identical with or without it (enforced by the
     * engine-differential gates). Pass nullptr to detach.
     */
    void setProfiler(GuestProfiler *profiler) { prof_ = profiler; }
    GuestProfiler *profiler() { return prof_; }

    /**
     * Deoptimize tier 2 (vm/tier.hh): un-publish every jitted block
     * (promotion state resets to cold) and release their executable
     * memory. Call whenever something jitted code baked in becomes
     * stale — predecoded records, the layout table, counter addresses.
     * Host-side only: execution continues interpreted and blocks
     * re-promote deterministically; vm.tier.deopts records it. Safe to
     * call at any interpreter-visible point (jitted code never holds
     * control across records).
     */
    void invalidateTieredCode(const char *reason);

    /**
     * Assemble the forensics report for @p trap from the current
     * machine state (vm/forensics.cc). Called by run()'s top-level
     * handler before the trap propagates; harmless to call again.
     */
    std::shared_ptr<const TrapReport> buildTrapReport(const GuestTrap &trap);

    const VmConfig &config() const { return config_; }
    ir::Module &module() { return module_; }

    // --- JIT runtime entries (vm/jit.cc emitted code only) ---

    /**
     * Execute one Call/CallPtr record on behalf of a jitted block:
     * resolve the callee, marshal arguments straight into the pooled
     * callee frame, run it through the normal tiered machinery (so hot
     * callees execute their own jitted blocks), and write the return
     * value back. Returns jit::kCallOk to continue in emitted code,
     * jit::kCallTrapPending when a guest trap was parked in
     * pendingTrap_ (a C++ exception must not unwind through an
     * emitted frame), or jit::kCallResumeGeneral when the rest of the
     * caller's activation must replay on the general engine (post-call
     * budget pressure, or a deopt inside the callee draining every
     * live emitted frame).
     */
    uint64_t jitGuestCall(const sb::Record &rec) noexcept;
    /** Execute one Promote record's engine decision; returns the
     *  (possibly rewritten) pointer, writes bounds through @p out. */
    uint64_t jitPromote(uint64_t raw, Bounds *out);

    // --- Statistics ---
    uint64_t instructions() const { return instrs_; }
    uint64_t cycles() const { return cycles_; }
    StatGroup &stats() { return stats_; }

    /**
     * Cycle attribution classes (vm.cycles_* counters). Every cycle
     * charged to cycles() lands in exactly one class, so the class
     * counters sum to cycles() after syncStats().
     */
    enum class CycleClass : unsigned
    {
        Base,     ///< 1-cycle base cost of ordinary instructions
        Mem,      ///< data-cache latency beyond the first cycle
        BndLdSt,  ///< callee-saved bounds spill/reload (stbnd/ldbnd)
        Promote,  ///< promote instructions incl. metadata fetch latency
        IfpArith, ///< single-cycle IFP arithmetic instructions
        Runtime,  ///< allocator / registration runtime work
        NumClasses,
    };

    uint64_t
    classCycles(CycleClass c) const
    {
        return classCycles_[static_cast<unsigned>(c)];
    }

    /**
     * The registry aggregating this machine's stat groups ("vm",
     * "promote", "l1d", "l2", "runtime", "mem"). Call syncStats()
     * first so derived scalars (instructions, cycles_* attribution,
     * memory footprint) are current.
     */
    StatRegistry &statRegistry() { return registry_; }
    void syncStats();

    // --- Services for native (libc model) handlers ---
    void
    chargeInstructions(uint64_t n)
    {
        instrs_ += n;
        cycles_ += n;
    }
    void chargeMemAccess(GuestAddr addr, uint32_t bytes, bool write);
    /** Bump allocation for libc-owned static data (legacy arena). */
    GuestAddr legacyArenaAlloc(uint64_t size, uint64_t align = 16);

    /** Resolved guest address of a module global. */
    GuestAddr globalAddr(ir::GlobalId id) const;

  private:
    struct Frame
    {
        const ir::Function *func = nullptr;
        std::vector<uint64_t> regs;
        std::vector<Bounds> bounds;
        /** Call depth; keys the oracle's per-frame provenance. */
        unsigned depth = 0;
        /**
         * Block currently executing in this frame, maintained by both
         * engines for trap-time stack symbolization (host-side only).
         */
        ir::BlockId curBlock = 0;
    };

    /**
     * Lazily predecode @p func into superblock records (cached by
     * function id; vm/superblock.hh).
     */
    const sb::FunctionCode &sbCode(const ir::Function *func);

    void placeGlobals();
    void registerGlobals();

    uint64_t callFunction(const ir::Function *func,
                          const std::vector<uint64_t> &args,
                          const std::vector<Bounds> &arg_bounds,
                          Bounds *ret_bounds, unsigned depth);
    /** Engine selection: prologue charges, then superblock or general. */
    uint64_t execFunction(const ir::Function *func, Frame &frame,
                          Bounds *ret_bounds, unsigned depth);
    /**
     * The reference interpreter: the full per-instruction switch,
     * resumable from any (block, ip) boundary so the superblock engine
     * can bail out to it mid-block with exact semantics.
     */
    uint64_t execGeneral(const ir::Function *func, Frame &frame,
                         Bounds *ret_bounds, unsigned depth,
                         ir::BlockId start_block, size_t start_ip,
                         unsigned saved_bounds);
    /** The superblock engine (vm/superblock.cc): selects the dispatch
     *  tier (switch vs computed goto) from config and host support. */
    uint64_t execSuperblock(const ir::Function *func, Frame &frame,
                            Bounds *ret_bounds, unsigned depth,
                            unsigned saved_bounds);
    /**
     * One shared engine body, instantiated per dispatch tier.
     * @tparam Threaded direct-threaded (computed goto) dispatch; the
     *         false instantiation is the PR 4 switch dispatch. Both
     *         run the tier-2 JIT hook when the controller is live.
     */
    template <bool Threaded>
    uint64_t execSuperblockImpl(const ir::Function *func, Frame &frame,
                                Bounds *ret_bounds, unsigned depth,
                                unsigned saved_bounds);

    /**
     * Rethrow the trap parked by jitGuestCall once control has exited
     * every emitted frame between the trap site and the dispatch
     * loop's kExitTrapBit decode. Each enclosing jitted activation
     * re-parks and rethrows in turn, so the trap cascades out of the
     * machine exactly as an interpreter throw would, with curDepth_
     * and sp_ frozen at the trap site for stack symbolization.
     */
    [[noreturn]] void rethrowPendingTrap();

    uint64_t evalOperand(const Frame &frame, const ir::Operand &operand);
    const Bounds &operandBounds(const Frame &frame,
                                const ir::Operand &operand);
    /** Oracle provenance of a pointer operand ({} when untracked). */
    oracle::Prov operandProv(const Frame &frame,
                             const ir::Operand &operand);

    /** Poison + implicit bounds check + timing for one dereference. */
    void checkAccess(const Frame &frame, const ir::Operand &addr_op,
                     uint64_t raw, uint64_t size, bool write);

    void applyCost(const RuntimeCost &cost);
    void countInstr(ir::Opcode op);

    // --- profiler support (host-side only) ---

    /** Register @p func's name and block names on first activation. */
    void profileNoteFunction(const ir::Function *func);
    /** Record one guest-stack sample at the current cycle clock. */
    void profileSample(unsigned depth);

    // --- forensics support (host-side only) ---

    /** Capture a dereference fault just before a spatial trap throws. */
    void
    noteFault(uint64_t raw, uint64_t size, bool write,
              const Bounds *bounds)
    {
        lastFault_.valid = true;
        lastFault_.raw = raw;
        lastFault_.size = size;
        lastFault_.write = write;
        lastFault_.hasBounds = bounds != nullptr && bounds->valid();
        lastFault_.bounds = lastFault_.hasBounds ? *bounds : Bounds();
    }

    void
    noteAllocRecord(GuestAddr base, uint64_t size, AllocKind kind,
                    const ir::Function *func, ir::BlockId block)
    {
        forensics_->noteAlloc(base, size, kind,
                              {true, func->id(), block});
    }

    void
    chargeClass(CycleClass c, uint64_t cycles)
    {
        classCycles_[static_cast<unsigned>(c)] += cycles;
    }

    ir::Module &module_;
    const LayoutRegistry *layouts_;
    VmConfig config_;
    GuestMemory mem_;
    Cache l1d_;
    Cache l2_;
    Tracer tracer_;
    IfpControlRegs regs_;
    std::unique_ptr<PromoteEngine> promote_;
    std::unique_ptr<Runtime> runtime_;

    std::map<std::string, NativeFn> natives_;

    std::vector<GuestAddr> globalAddrs_;
    std::vector<uint64_t> globalPtrRaw_;

    /**
     * Call-frame pool, indexed by call depth. Calls nest strictly, so
     * depth identifies a unique active frame; reusing the slot lets
     * regs/bounds keep their vector capacity across the millions of
     * calls a run makes instead of reallocating per call.
     */
    std::vector<std::unique_ptr<Frame>> framePool_;

    /**
     * Depth-indexed scratch for call-argument marshalling, pooled for
     * the same reason as framePool_: a call site at depth d fills slot
     * d, the callee's own call sites use slot d+1, and the next call
     * at depth d only starts after this one returned — so the vectors
     * keep their capacity instead of being allocated per call.
     */
    struct ArgScratch
    {
        std::vector<uint64_t> args;
        std::vector<Bounds> bounds;
    };
    ArgScratch &
    argScratch(unsigned depth)
    {
        if (argScratchPool_.size() <= depth)
            argScratchPool_.resize(depth + 1);
        if (!argScratchPool_[depth])
            argScratchPool_[depth] = std::make_unique<ArgScratch>();
        return *argScratchPool_[depth];
    }
    std::vector<std::unique_ptr<ArgScratch>> argScratchPool_;

    /** Predecoded superblock code, indexed by function id. */
    std::vector<std::unique_ptr<sb::FunctionCode>> sbCode_;

    /** Tier-2 promotion/compile/deopt state (vm/tier.hh). */
    std::unique_ptr<TierController> tier_;

    GuestAddr sp_ = 0;
    GuestAddr legacyArena_ = 0;

    /** Differential bounds oracle; null = detached (the default). */
    oracle::ShadowOracle *oracle_ = nullptr;

    /** Guest profiler; null = detached (the default). */
    GuestProfiler *prof_ = nullptr;
    /** Scratch for profileSample stack walks (avoids per-sample alloc). */
    std::vector<uint32_t> sampleStack_;

    /** Allocation records for forensics; null unless config_.forensics. */
    std::unique_ptr<TrapForensics> forensics_;
    /** Dereference details captured at the spatial-trap throw sites. */
    struct FaultContext
    {
        bool valid = false;
        uint64_t raw = 0;
        uint64_t size = 0;
        bool write = false;
        bool hasBounds = false;
        Bounds bounds;
    };
    FaultContext lastFault_;
    /** Depth of the innermost live frame, for trap-time stack walks. */
    unsigned curDepth_ = 0;
    /** Trap caught at a jitted call boundary, awaiting its rethrow
     *  from the dispatch loop (see rethrowPendingTrap). */
    std::unique_ptr<GuestTrap> pendingTrap_;

    uint64_t instrs_ = 0;
    uint64_t cycles_ = 0;
    std::array<uint64_t,
               static_cast<size_t>(CycleClass::NumClasses)>
        classCycles_{};
    StatGroup stats_;
    // Hot-path stats, resolved once (stats.hh reference stability).
    Counter &cLoads_;
    Counter &cStores_;
    Counter &cCalls_;
    Counter &cImplicitChecks_;
    Counter &cIfpArith_;
    Counter &cBndLdSt_;
    Counter &cPromoteInstrs_;
    /**
     * Host-engine stats ("vm.superblock" group): predecode shape,
     * fusion counts, check-elimination rate. Describes how the host
     * executed the simulation, never what was simulated — excluded
     * from engine-differential stat comparisons.
     */
    StatGroup sbStats_;
    sb::Stats sbCounters_;
    StatRegistry registry_;
};

} // namespace infat

#endif // INFAT_VM_MACHINE_HH
