/**
 * @file
 * Tier controller for the tiered execution subsystem.
 *
 * The superblock engine runs at three tiers behind one bit-identical
 * contract (simulated stats never move by a single count between
 * tiers; see docs/PERFORMANCE.md "Tiered execution"):
 *
 *   tier 0  switch-dispatched superblock interpreter (PR 4)
 *   tier 1  direct-threaded dispatch (computed goto) of the same
 *           record arrays — pure code-layout change, no state here
 *   tier 2  x86-64 template JIT (vm/jit.hh) for hot blocks
 *
 * This controller owns tier 2's moving parts: the promotion policy
 * (a block is compiled when its execution counter crosses a
 * deterministic threshold, VmConfig::jitThreshold), the executable
 * arena and compiled-unit table, and deoptimization (invalidateAll
 * drops every unit; Machine::invalidateTieredCode resets the
 * per-block promotion state and calls it when predecoded code or the
 * layout table is invalidated). It also owns the `vm.tier.*` stat
 * group — host-side observability, excluded from engine diffs exactly
 * like `vm.superblock.*` (see docs/OBSERVABILITY.md).
 */

#ifndef INFAT_VM_TIER_HH
#define INFAT_VM_TIER_HH

#include <cstdint>
#include <vector>

#include "support/exec_mem.hh"
#include "support/stats.hh"
#include "vm/jit.hh"

namespace infat {

class TierController
{
  public:
    TierController();

    /** Bake machine-state addresses into subsequently compiled code. */
    void bind(const jit::MachineBinding &binding) { bind_ = binding; }

    /**
     * Record the resolved tier configuration (shown by vm.tier.* and
     * the bench provenance block).
     */
    void configure(bool threaded, bool jit_on, uint32_t threshold);

    /**
     * Returned by compile() while a deferred deopt is draining: the
     * caller must not cache a never-retry verdict, just reset the
     * block's counter and re-promote once the stale units are freed.
     */
    static constexpr int32_t kRetryLater = -2;

    /**
     * Compile block @p block_id of @p fc after it crossed the
     * promotion threshold, publishing its chained entry point in
     * fc.jitEntries on success. Returns a unit id >= 0, kRetryLater
     * while a deferred deopt is draining, or -1 when the block has no
     * usable template prefix (callers cache it as "never retry").
     */
    int32_t compile(const sb::FunctionCode &fc, uint32_t block_id);

    const jit::CompiledBlock &
    unit(int32_t id) const
    {
        return units_[static_cast<size_t>(id)];
    }

    /** One compiled-block entry (from the dispatch loop). */
    void noteEnter() { blocksRun_++; }
    /** jit_blocks cell, for chained entries to count themselves. */
    uint64_t *blocksRunCell() { return blocksRun_.cell(); }
    /** call_jit_rets cell, for emitted Rets to count themselves. */
    uint64_t *inlineRetsCell() { return callRets_.cell(); }
    /** One bailout back to the interpreter. */
    void noteBail() { bailouts_++; }

    // Emitted-call accounting (Machine::jitGuestCall).
    void noteInlineCall() { callsInlined_++; }
    void noteCallTrapUnwind() { callTrapUnwinds_++; }
    void noteCallBudgetExit() { callBudgetExits_++; }
    void noteCallDeoptExit() { callDeoptExits_++; }

    /**
     * Emitted-frame tracking: the dispatch loop brackets every
     * compiled-block invocation so a deopt arriving while emitted
     * frames are live (a jitted callee invalidating layout tables
     * below a jitted caller) can defer freeing the executable memory
     * those frames will still return through. While the deferred
     * deopt drains, jitGuestCall forces every live emitted frame to
     * unwind to the general engine (deoptUnwindPending), and the last
     * leaveJitFrame() frees the stale units.
     */
    void enterJitFrame() { jitFramesLive_++; }
    void
    leaveJitFrame()
    {
        if (--jitFramesLive_ == 0 && pendingInvalidate_)
            dropUnits();
    }
    bool deoptUnwindPending() const { return pendingInvalidate_; }

    /**
     * Deoptimize: drop every compiled unit and its executable memory.
     * The caller must already have un-published every cached unit id
     * (Machine::invalidateTieredCode does), since block code freed
     * here must never be re-entered. With emitted frames live the
     * drop is deferred (see enterJitFrame); the stale code stays
     * mapped but unreachable for new entries, and every live frame is
     * forced out through the deopt-unwind path.
     */
    void invalidateAll();

    StatGroup &stats() { return stats_; }

  private:
    StatGroup stats_;
    Counter &promotions_;
    Counter &compileFailures_;
    Counter &blocksRun_;
    Counter &bailouts_;
    Counter &coveredRecords_;
    Counter &fullBlocks_;
    Counter &codeBytes_;
    Counter &deopts_;
    Counter &thresholdStat_;
    Counter &threadedStat_;
    Counter &jitStat_;
    Counter &callsInlined_;
    Counter &callRets_;
    Counter &callTrapUnwinds_;
    Counter &callBudgetExits_;
    Counter &callDeoptExits_;

    void dropUnits();

    ExecArena arena_;
    std::vector<jit::CompiledBlock> units_;
    jit::MachineBinding bind_;
    /** Emitted-block invocations currently on the host stack. */
    uint32_t jitFramesLive_ = 0;
    /** A deopt arrived while emitted frames were live. */
    bool pendingInvalidate_ = false;
};

} // namespace infat

#endif // INFAT_VM_TIER_HH
