#include "vm/libc_model.hh"

#include <bit>
#include <cmath>
#include <memory>

#include "vm/machine.hh"

namespace infat {

using namespace ir;

void
declareLibc(Module &module)
{
    TypeContext &tc = module.types();
    const Type *vp = tc.opaquePtr();
    const Type *i64 = tc.i64();
    const Type *f64 = tc.f64();
    const Type *voidTy = tc.voidTy();

    module.declareNative("malloc", {i64}, vp);
    module.declareNative("free", {vp}, voidTy);
    module.declareNative("memcpy", {vp, vp, i64}, vp);
    module.declareNative("memset", {vp, i64, i64}, vp);
    module.declareNative("strlen", {vp}, i64);
    module.declareNative("strcmp", {vp, vp}, i64);
    module.declareNative("strcpy", {vp, vp}, vp);
    module.declareNative("rand", {}, i64);
    module.declareNative("srand", {i64}, voidTy);
    module.declareNative("sqrt", {f64}, f64);
    module.declareNative("log", {f64}, f64);
    module.declareNative("exp", {f64}, f64);
    module.declareNative("atan", {f64}, f64);
    module.declareNative("__ctype_b_loc", {},
                         tc.ptr(tc.ptr(tc.i16())));
    module.declareNative("putchar", {i64}, i64);
}

namespace {

double
argF64(uint64_t raw)
{
    return std::bit_cast<double>(raw);
}

uint64_t
retF64(double v)
{
    return std::bit_cast<uint64_t>(v);
}

/** State shared by the handlers of one machine. */
struct LibcState
{
    uint64_t randState = 0x853c49e6748fea9bULL;
    GuestAddr ctypeSlot = 0; // address of the table *pointer*
};

} // namespace

void
installLibc(Machine &machine)
{
    auto state = std::make_shared<LibcState>();

    machine.registerNative(
        "malloc", [](Machine &m, const std::vector<uint64_t> &args) {
            RuntimeCost cost;
            GuestAddr addr = m.runtime().plainMalloc(
                args.empty() ? 0 : args[0], cost);
            m.chargeInstructions(cost.instructions);
            for (const auto &a : cost.accesses)
                m.chargeMemAccess(a.addr, a.bytes, a.write);
            return addr; // legacy pointer: no tag
        });

    machine.registerNative(
        "free", [](Machine &m, const std::vector<uint64_t> &args) {
            RuntimeCost cost;
            m.runtime().plainFree(
                layout::canonical(args.empty() ? 0 : args[0]), cost);
            m.chargeInstructions(cost.instructions);
            return uint64_t{0};
        });

    machine.registerNative(
        "memcpy", [](Machine &m, const std::vector<uint64_t> &args) {
            GuestAddr dst = layout::canonical(args[0]);
            GuestAddr src = layout::canonical(args[1]);
            uint64_t len = args[2];
            m.mem().copy(dst, src, len);
            m.chargeInstructions(10 + len / 4);
            for (uint64_t off = 0; off < len; off += 64) {
                m.chargeMemAccess(src + off, 16, false);
                m.chargeMemAccess(dst + off, 16, true);
            }
            return args[0];
        });

    machine.registerNative(
        "memset", [](Machine &m, const std::vector<uint64_t> &args) {
            GuestAddr dst = layout::canonical(args[0]);
            uint64_t len = args[2];
            m.mem().fill(dst, static_cast<uint8_t>(args[1]), len);
            m.chargeInstructions(8 + len / 8);
            for (uint64_t off = 0; off < len; off += 64)
                m.chargeMemAccess(dst + off, 16, true);
            return args[0];
        });

    machine.registerNative(
        "strlen", [](Machine &m, const std::vector<uint64_t> &args) {
            GuestAddr addr = layout::canonical(args[0]);
            uint64_t len = 0;
            while (len < (1 << 20) &&
                   m.mem().load<uint8_t>(addr + len) != 0)
                ++len;
            m.chargeInstructions(6 + len);
            m.chargeMemAccess(addr, static_cast<uint32_t>(
                                        std::min<uint64_t>(len + 1, 64)),
                              false);
            return len;
        });

    machine.registerNative(
        "strcmp", [](Machine &m, const std::vector<uint64_t> &args) {
            GuestAddr a = layout::canonical(args[0]);
            GuestAddr b = layout::canonical(args[1]);
            uint64_t i = 0;
            uint8_t ca = 0, cb = 0;
            for (; i < (1 << 20); ++i) {
                ca = m.mem().load<uint8_t>(a + i);
                cb = m.mem().load<uint8_t>(b + i);
                if (ca != cb || ca == 0)
                    break;
            }
            m.chargeInstructions(6 + 2 * i);
            m.chargeMemAccess(a + i, 1, false);
            m.chargeMemAccess(b + i, 1, false);
            return static_cast<uint64_t>(
                static_cast<int64_t>(ca) - static_cast<int64_t>(cb));
        });

    machine.registerNative(
        "strcpy", [](Machine &m, const std::vector<uint64_t> &args) {
            GuestAddr dst = layout::canonical(args[0]);
            GuestAddr src = layout::canonical(args[1]);
            uint64_t i = 0;
            for (; i < (1 << 20); ++i) {
                uint8_t c = m.mem().load<uint8_t>(src + i);
                m.mem().store<uint8_t>(dst + i, c);
                if (c == 0)
                    break;
            }
            m.chargeInstructions(6 + 2 * i);
            m.chargeMemAccess(src, 16, false);
            m.chargeMemAccess(dst, 16, true);
            return args[0];
        });

    machine.registerNative(
        "rand", [state](Machine &m, const std::vector<uint64_t> &) {
            // glibc-style LCG, truncated to 31 bits.
            state->randState =
                state->randState * 6364136223846793005ULL +
                1442695040888963407ULL;
            m.chargeInstructions(12);
            return (state->randState >> 33) & 0x7fffffffULL;
        });

    machine.registerNative(
        "srand", [state](Machine &m, const std::vector<uint64_t> &args) {
            state->randState = args.empty() ? 1 : args[0] * 2654435761ULL;
            m.chargeInstructions(4);
            return uint64_t{0};
        });

    machine.registerNative(
        "sqrt", [](Machine &m, const std::vector<uint64_t> &args) {
            m.chargeInstructions(1); // hardware fsqrt
            return retF64(std::sqrt(argF64(args[0])));
        });
    machine.registerNative(
        "log", [](Machine &m, const std::vector<uint64_t> &args) {
            m.chargeInstructions(30);
            return retF64(std::log(argF64(args[0])));
        });
    machine.registerNative(
        "exp", [](Machine &m, const std::vector<uint64_t> &args) {
            m.chargeInstructions(30);
            return retF64(std::exp(argF64(args[0])));
        });
    machine.registerNative(
        "atan", [](Machine &m, const std::vector<uint64_t> &args) {
            m.chargeInstructions(35);
            return retF64(std::atan(argF64(args[0])));
        });

    machine.registerNative(
        "__ctype_b_loc",
        [state](Machine &m, const std::vector<uint64_t> &) {
            if (state->ctypeSlot == 0) {
                // 256-entry trait table plus the pointer slot the call
                // returns; everything is legacy libc data.
                GuestAddr table = m.legacyArenaAlloc(256 * 2);
                for (unsigned c = 0; c < 256; ++c) {
                    uint16_t traits = 0;
                    if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z'))
                        traits |= 0x1; // alpha
                    if (c >= '0' && c <= '9')
                        traits |= 0x2; // digit
                    if (c == ' ' || c == '\t' || c == '\n')
                        traits |= 0x4; // space
                    m.mem().store<uint16_t>(table + c * 2, traits);
                }
                state->ctypeSlot = m.legacyArenaAlloc(8);
                m.mem().store<uint64_t>(state->ctypeSlot, table);
            }
            m.chargeInstructions(4);
            return state->ctypeSlot;
        });

    machine.registerNative(
        "putchar", [](Machine &m, const std::vector<uint64_t> &args) {
            // Output is discarded: workloads validate via checksums.
            m.chargeInstructions(15);
            return args.empty() ? 0 : args[0];
        });
}

} // namespace infat
