/**
 * @file
 * The legacy libc model.
 *
 * The paper's experiments link instrumented programs against an
 * *uninstrumented* glibc; pointers coming out of libc are legacy
 * pointers, and a large share of promotes take legacy or NULL operands
 * (§5.2.1, e.g. anagram's __ctype_b_loc pattern). This model provides
 * host-implemented native functions that behave exactly that way: they
 * operate directly on guest memory, return untagged pointers, and
 * charge approximate guest instruction counts so baselines are not
 * skewed.
 */

#ifndef INFAT_VM_LIBC_MODEL_HH
#define INFAT_VM_LIBC_MODEL_HH

#include "ir/module.hh"

namespace infat {

class Machine;

/** Declare the libc natives into a module (call before building IR). */
void declareLibc(ir::Module &module);

/** Bind host handlers for the declared natives on a machine. */
void installLibc(Machine &machine);

} // namespace infat

#endif // INFAT_VM_LIBC_MODEL_HH
