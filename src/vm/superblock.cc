/**
 * @file
 * Superblock predecoder and execution engine (see superblock.hh).
 *
 * Layout of this file:
 *  - sb::predecode(): instruction -> record translation, pair fusion,
 *    batched-charge (pre*) accumulation, the backward `rest` pass, and
 *    the in-block redundant-check analysis;
 *  - Machine::execSuperblock(): the record dispatch loop.
 *
 * Invariant both halves are built around: at every point where the
 * simulation can throw a GuestTrap or touch the timing model (cache,
 * promote engine, runtime), instrs_ / cycles_ / class attribution /
 * stat counters equal the general interpreter's at the same point.
 */

#include "vm/machine.hh"

#include <bit>

#include "ifp/ops.hh"
#include "support/bitops.hh"
#include "support/logging.hh"
#include "support/profile.hh"
#include "vm/jit.hh"
#include "vm/tier.hh"

namespace infat {
namespace sb {

using namespace ir;

namespace {

/** Sign-extension width for an integer result; 0 = none. */
uint8_t
sextBitsOf(const Type *type)
{
    if (type && type->isInt()) {
        unsigned bits = static_cast<const IntType *>(type)->bits();
        if (bits < 64)
            return static_cast<uint8_t>(bits);
    }
    return 0;
}

/** Memory access width class: the general path's 1/2/4/8 switch. */
uint8_t
ldClassOf(uint64_t size)
{
    return (size == 1 || size == 2 || size == 4)
               ? static_cast<uint8_t>(size)
               : 8;
}

/** Fold a non-register operand to its constant value. Globals resolve
 *  through the machine's registered (tagged) pointer table, which is
 *  final before the first predecode. */
uint64_t
foldOperand(const Operand &op, const PredecodeOptions &opts)
{
    if (op.kind == Operand::Kind::Global)
        return (*opts.globalPtrRaw)[op.payload];
    return op.payload; // ImmInt / ImmF64 / FuncAddr (and None as 0)
}

/** Batched charges of a run of pure records. */
struct Pend
{
    uint32_t instr = 0;
    uint32_t cycles = 0;
    uint32_t base = 0;
    uint32_t ifp = 0;
    uint32_t ifpCnt = 0;

    void
    add(uint32_t n_instr, uint32_t n_cycles, uint32_t n_base,
        uint32_t n_ifp, uint32_t n_ifp_cnt)
    {
        instr += n_instr;
        cycles += n_cycles;
        base += n_base;
        ifp += n_ifp;
        ifpCnt += n_ifp_cnt;
    }
};

/** Static instruction charge a sync record applies for itself (its
 *  preceding pure run is carried separately in preInstr). */
uint32_t
ownStaticInstr(const Record &r)
{
    switch (r.op) {
      case Op::FusedGepLoad:
      case Op::FusedGepStore:
        return r.sub + 1u;
      case Op::FusedIfpAddLoad:
      case Op::FusedIfpAddStore:
      case Op::FusedChkLoad:
      case Op::FusedChkStore:
      case Op::FusedCmpBr:
        return 2;
      case Op::Load:
      case Op::Store:
      case Op::Div:
      case Op::Alloca:
      case Op::Call:
      case Op::CallPtr:
      case Op::MallocTyped:
      case Op::FreePtr:
      case Op::Promote:
      case Op::RegisterObj:
      case Op::DeregisterObj:
      case Op::IfpMallocTyped:
      case Op::IfpFree:
      case Op::Jmp:
      case Op::Br:
      case Op::Ret:
      case Op::Trap:
        return 1;
      default:
        return 0; // pure: charged via a later record's pre fields
    }
}

bool
isPure(Op op)
{
    return ownStaticInstr(Record{.op = op, .sub = 0}) == 0;
}

// ---------------------------------------------------------------------
// Redundant-check analysis
// ---------------------------------------------------------------------

/**
 * A cached check fact: "a full dereference check over this address
 * expression, with this access size, passed earlier in the block, and
 * no register the expression (or its bounds) depends on has been
 * written since". The verdict of a later check with the same key and a
 * size it covers is therefore Ok, and its implicit-check counting
 * condition evaluates identically — so the host may skip the predicate
 * evaluation entirely. Cache timing and the data access itself are
 * never skipped.
 */
struct CkEntry
{
    enum Kind : uint8_t
    {
        Direct,  ///< address = regs[r0]
        GepImm,  ///< address = regs[r0] + k0
        GepReg,  ///< address = regs[r0] + regs[r1] * k0
        IfpImm,  ///< address = ifpadd(regs[r0], (int64_t)k0)
        IfpReg,  ///< address = ifpadd(regs[r0], regs[r1])
    };
    Kind kind = Direct;
    uint32_t r0 = 0;
    uint32_t r1 = 0;
    uint64_t k0 = 0;
    uint64_t size = 0;

    bool
    sameKey(const CkEntry &o) const
    {
        return kind == o.kind && r0 == o.r0 && r1 == o.r1 && k0 == o.k0;
    }

    bool
    uses(uint32_t reg) const
    {
        if (r0 == reg)
            return true;
        return (kind == GepReg || kind == IfpReg) && r1 == reg;
    }
};

class CkTable
{
  public:
    void
    kill(uint32_t reg)
    {
        for (size_t i = 0; i < entries_.size();) {
            if (entries_[i].uses(reg)) {
                entries_[i] = entries_.back();
                entries_.pop_back();
            } else {
                ++i;
            }
        }
    }

    /** Whether an existing fact subsumes a check of @p size. */
    bool
    covers(const CkEntry &key, uint64_t size) const
    {
        for (const CkEntry &e : entries_) {
            if (e.sameKey(key))
                return e.size >= size;
        }
        return false;
    }

    /**
     * Record that a full check with @p size passed (or would pass) at
     * this point. A narrower existing fact widens: both checks hold,
     * so the wider one subsumes.
     */
    void
    insert(const CkEntry &key, uint64_t size)
    {
        for (CkEntry &e : entries_) {
            if (e.sameKey(key)) {
                e.size = std::max(e.size, size);
                return;
            }
        }
        if (entries_.size() < kMaxEntries)
            entries_.push_back(CkEntry{key.kind, key.r0, key.r1, key.k0,
                                       size});
    }

  private:
    static constexpr size_t kMaxEntries = 16;
    std::vector<CkEntry> entries_;
};

/** Registers a record writes (register file and/or bounds file). */
void
recordWrites(const Record &r, uint32_t out[2], int &n)
{
    n = 0;
    switch (r.op) {
      case Op::Store:
      case Op::FreePtr:
      case Op::DeregisterObj:
      case Op::IfpFree:
      case Op::Jmp:
      case Op::Br:
      case Op::Ret:
      case Op::Trap:
        return;
      case Op::FusedGepStore:
      case Op::FusedIfpAddStore:
      case Op::FusedChkStore:
        out[n++] = r.b; // intermediate address register
        return;
      case Op::FusedGepLoad:
      case Op::FusedIfpAddLoad:
      case Op::FusedChkLoad:
        out[n++] = r.b;
        out[n++] = r.dst;
        return;
      case Op::Call:
      case Op::CallPtr:
        if (r.dst != noReg)
            out[n++] = r.dst;
        return;
      default:
        out[n++] = r.dst;
        return;
    }
}

/**
 * Run the redundant-check analysis over one block's records, setting
 * kElide on checks an earlier same-block check subsumes.
 *
 * Per-record order is load-bearing: (1) look up the record's key
 * against the PRE-state (the table describes register values before
 * this record executes); (2) kill every register the record writes;
 * (3) re-insert facts the record itself establishes, guarded so that a
 * fact is never keyed on a register the record overwrote (e.g.
 * `b = gep b, 8; load [b]` must not leave a fact keyed on the old b).
 *
 * Facts derived from fused ifpchk records are deliberately never
 * created or consumed: ifpchk writes the address register without its
 * paired bounds register, so the bounds the subsequent dereference
 * check sees are not a function of the record's key.
 */
void
analyzeBlock(std::vector<Record> &records, const PredecodeOptions &opts,
             Stats &stats)
{
    CkTable table;
    uint32_t writes[2];
    int nwrites = 0;
    for (Record &r : records) {
        recordWrites(r, writes, nwrites);
        auto written = [&](uint32_t reg) {
            for (int i = 0; i < nwrites; ++i) {
                if (writes[i] == reg)
                    return true;
            }
            return false;
        };
        auto killWrites = [&] {
            for (int i = 0; i < nwrites; ++i)
                table.kill(writes[i]);
        };

        switch (r.op) {
          case Op::Load:
          case Op::Store: {
            bool addr_reg = r.op == Op::Load ? (r.flags & kAReg) != 0
                                             : (r.flags & kBReg) != 0;
            uint32_t reg = r.op == Op::Load ? r.a : r.b;
            if (addr_reg) {
                CkEntry key{CkEntry::Direct, reg, 0, 0, 0};
                if (table.covers(key, r.size)) {
                    r.flags |= kElide;
                    stats.elideSites++;
                }
                killWrites();
                if (!written(reg))
                    table.insert(key, r.size);
            } else {
                // Constant address: the verdict is decidable now. No
                // bounds register is consulted (kCheckBounds is only
                // set for register addresses), so Ok means the whole
                // predicate evaluation can be skipped.
                uint64_t raw = r.op == Op::Load ? r.immA : r.immB;
                if (ops::checkAccessVerdict(TaggedPtr(raw), nullptr,
                                            r.size, opts.nullGuard) ==
                    ops::CheckVerdict::Ok) {
                    r.flags |= kElide;
                    stats.elideConstSites++;
                }
                killWrites();
            }
            break;
          }
          case Op::FusedGepLoad:
          case Op::FusedGepStore: {
            if (r.flags & kAReg) {
                CkEntry key = (r.flags & kCReg)
                                  ? CkEntry{CkEntry::GepReg, r.a, r.c,
                                            r.immB, 0}
                                  : CkEntry{CkEntry::GepImm, r.a, 0,
                                            r.immB, 0};
                if (table.covers(key, r.size)) {
                    r.flags |= kElide;
                    stats.elideSites++;
                }
                killWrites();
                bool key_stable = !written(r.a) &&
                                  (!(r.flags & kCReg) || !written(r.c));
                if (key_stable)
                    table.insert(key, r.size);
            } else {
                if (!(r.flags & kCReg)) {
                    // Constant base and offset: the intermediate
                    // register is freshly written with cleared bounds,
                    // so the bounds predicate statically cannot fire
                    // and the poison/null verdict is a constant.
                    uint64_t raw = r.immA + r.immB;
                    if (ops::checkAccessVerdict(TaggedPtr(raw), nullptr,
                                                r.size,
                                                opts.nullGuard) ==
                        ops::CheckVerdict::Ok) {
                        r.flags |= kElide;
                        stats.elideConstSites++;
                    }
                }
                killWrites();
            }
            // The intermediate register now holds the checked address
            // with the checked bounds — unless the load overwrote it.
            if (r.op == Op::FusedGepStore || r.dst != r.b)
                table.insert(CkEntry{CkEntry::Direct, r.b, 0, 0, 0},
                             r.size);
            break;
          }
          case Op::FusedIfpAddLoad:
          case Op::FusedIfpAddStore: {
            CkEntry key = (r.flags & kCReg)
                              ? CkEntry{CkEntry::IfpReg, r.a, r.c, 0, 0}
                              : CkEntry{CkEntry::IfpImm, r.a, 0, r.immB,
                                        0};
            if (table.covers(key, r.size)) {
                r.flags |= kElide;
                stats.elideSites++;
            }
            killWrites();
            bool key_stable = !written(r.a) &&
                              (!(r.flags & kCReg) || !written(r.c));
            if (key_stable)
                table.insert(key, r.size);
            if (r.op == Op::FusedIfpAddStore || r.dst != r.b)
                table.insert(CkEntry{CkEntry::Direct, r.b, 0, 0, 0},
                             r.size);
            break;
          }
          default:
            killWrites();
            break;
        }
    }
}

// ---------------------------------------------------------------------
// Predecoder
// ---------------------------------------------------------------------

class BlockBuilder
{
  public:
    BlockBuilder(const Function &func, const PredecodeOptions &opts,
                 Stats &stats)
        : func_(func), opts_(opts), stats_(stats)
    {
    }

    Block
    build(BlockId bid)
    {
        const std::vector<Instr> &instrs = func_.block(bid).instrs;
        Block blk;
        pend_ = Pend{};
        size_t i = 0;
        while (i < instrs.size()) {
            size_t consumed = 1;
            Record r = decodeOne(instrs, i, consumed);
            r.nextIp = static_cast<uint32_t>(i + consumed);
            if (isPure(r.op)) {
                addPurePend(r);
            } else {
                r.preInstr = pend_.instr;
                r.preCycles = pend_.cycles;
                r.preBase = pend_.base;
                r.preIfp = pend_.ifp;
                r.preIfpCnt = pend_.ifpCnt;
                pend_ = Pend{};
            }
            blk.records.push_back(r);
            i += consumed;
        }

        if (opts_.checkElim)
            analyzeBlock(blk.records, opts_, stats_);

        // Backward pass: static charges remaining after each record,
        // and the block's total static charge (the block-entry
        // instruction-budget guard).
        uint64_t rest = 0;
        for (size_t j = blk.records.size(); j-- > 0;) {
            Record &r = blk.records[j];
            r.rest = static_cast<uint32_t>(rest);
            rest += r.preInstr + ownStaticInstr(r);
        }
        blk.totalInstr = rest;

        stats_.blocks++;
        stats_.records += blk.records.size();
        return blk;
    }

  private:
    /** Operand helper: set reg flag + index, or fold to an immediate. */
    void
    setOperand(Record &r, const Operand &op, uint8_t reg_flag,
               uint32_t Record::*reg_field, uint64_t Record::*imm_field)
    {
        if (op.isReg()) {
            r.flags |= reg_flag;
            r.*reg_field = static_cast<uint32_t>(op.payload);
        } else {
            r.*imm_field = foldOperand(op, opts_);
        }
    }

    void
    addPurePend(const Record &r)
    {
        switch (r.op) {
          case Op::GepReg:
            // Address computation is mul + add at machine level when
            // the index is a register and the element is wider than a
            // byte (the general path's GepIndex extra charge).
            pend_.add(r.sub, r.sub, r.sub, 0, 0);
            break;
          case Op::IfpAdd:
          case Op::IfpChk:
            pend_.add(1, 1, 0, 1, 1);
            break;
          case Op::IfpIdx:
          case Op::IfpBnd:
            // countInstr charges IfpArith, then the superscalar model
            // refunds the cycle without touching the class counter —
            // replicated exactly: class +1, net cycles +0.
            pend_.add(1, opts_.superscalar ? 0 : 1, 0, 1, 1);
            break;
          case Op::MovGlobalBnd:
            pend_.add(2, opts_.superscalar ? 1 : 2, 1, 1, 1);
            break;
          default:
            pend_.add(1, 1, 1, 0, 0);
            break;
        }
    }

    /** Whether @p op names a gep the fuser/predecoder understands. */
    static bool
    isGep(Opcode op)
    {
        return op == Opcode::GepField || op == Opcode::GepIndex;
    }

    /** Fill the gep part of a record (GepConst/GepReg or a fused gep):
     *  base operand, constant offset or reg index + scale, and the
     *  gep's own static charge in `sub`. */
    void
    fillGep(Record &r, const Instr &gep)
    {
        setOperand(r, gep.a, kAReg, &Record::a, &Record::immA);
        if (gep.op == Opcode::GepField) {
            const auto *st = static_cast<const StructType *>(gep.type);
            r.immB = st->fieldOffset(static_cast<size_t>(gep.imm0));
            r.sub = 1;
        } else {
            uint64_t elem = gep.type->size();
            if (gep.b.isReg()) {
                r.flags |= kCReg;
                r.c = static_cast<uint32_t>(gep.b.payload);
                r.immB = elem;
                r.sub = elem > 1 ? 2 : 1;
            } else {
                r.immB = gep.b.payload * elem;
                r.sub = 1;
            }
        }
    }

    /** Fill the load part of a fused record / plain load. */
    void
    fillLoad(Record &r, const Instr &load)
    {
        r.dst = load.dst;
        r.size = load.type->size();
        r.ldClass = ldClassOf(r.size);
        r.sextBits = load.type->isInt() ? sextBitsOf(load.type) : 0;
    }

    /** Fill the store part of a fused record (value in d / immC). */
    void
    fillStoreValue(Record &r, const Instr &store)
    {
        r.size = store.type->size();
        r.ldClass = ldClassOf(r.size);
        if (store.a.isReg()) {
            r.flags |= kDReg;
            r.d = static_cast<uint32_t>(store.a.payload);
        } else {
            r.immC = foldOperand(store.a, opts_);
        }
    }

    /** Try to fuse instrs[i] with instrs[i + 1]; Op::Jmp-default record
     *  plus consumed == 1 means no fusion applied. */
    bool
    tryFuse(const std::vector<Instr> &instrs, size_t i, Record &r)
    {
        if (!opts_.fuse || i + 1 >= instrs.size())
            return false;
        const Instr &a = instrs[i];
        const Instr &b = instrs[i + 1];

        if (a.op == Opcode::ICmp && b.op == Opcode::Br &&
            b.a.isReg() && b.a.payload == a.dst) {
            r.op = Op::FusedCmpBr;
            r.sub = static_cast<uint8_t>(a.icmp);
            r.dst = a.dst;
            setOperand(r, a.a, kAReg, &Record::a, &Record::immA);
            setOperand(r, a.b, kBReg, &Record::b, &Record::immB);
            r.target0 = b.target0;
            r.target1 = b.target1;
            stats_.fusedCmpBr++;
            return true;
        }

        if (isGep(a.op) && b.op == Opcode::Load && b.a.isReg() &&
            b.a.payload == a.dst) {
            r.op = Op::FusedGepLoad;
            fillGep(r, a);
            r.b = a.dst;
            fillLoad(r, b);
            if (opts_.implicitChecks)
                r.flags |= kCheckBounds;
            stats_.fusedGepLoad++;
            return true;
        }
        if (isGep(a.op) && b.op == Opcode::Store && b.b.isReg() &&
            b.b.payload == a.dst) {
            r.op = Op::FusedGepStore;
            fillGep(r, a);
            r.b = a.dst;
            fillStoreValue(r, b);
            if (opts_.implicitChecks)
                r.flags |= kCheckBounds;
            stats_.fusedGepStore++;
            return true;
        }

        if (a.op == Opcode::IfpAdd && b.op == Opcode::Load &&
            b.a.isReg() && b.a.payload == a.dst && a.a.isReg()) {
            r.op = Op::FusedIfpAddLoad;
            r.a = static_cast<uint32_t>(a.a.payload);
            r.flags |= kAReg;
            setOperand(r, a.b, kCReg, &Record::c, &Record::immB);
            r.b = a.dst;
            fillLoad(r, b);
            if (opts_.implicitChecks)
                r.flags |= kCheckBounds;
            stats_.fusedIfpAddLoad++;
            return true;
        }
        if (a.op == Opcode::IfpAdd && b.op == Opcode::Store &&
            b.b.isReg() && b.b.payload == a.dst && a.a.isReg()) {
            r.op = Op::FusedIfpAddStore;
            r.a = static_cast<uint32_t>(a.a.payload);
            r.flags |= kAReg;
            setOperand(r, a.b, kCReg, &Record::c, &Record::immB);
            r.b = a.dst;
            fillStoreValue(r, b);
            if (opts_.implicitChecks)
                r.flags |= kCheckBounds;
            stats_.fusedIfpAddStore++;
            return true;
        }

        if (a.op == Opcode::IfpChk && b.op == Opcode::Load &&
            b.a.isReg() && b.a.payload == a.dst && a.a.isReg()) {
            r.op = Op::FusedChkLoad;
            r.a = static_cast<uint32_t>(a.a.payload);
            r.flags |= kAReg;
            r.immB = a.imm0;
            r.b = a.dst;
            fillLoad(r, b);
            if (opts_.implicitChecks)
                r.flags |= kCheckBounds;
            stats_.fusedChkLoad++;
            return true;
        }
        if (a.op == Opcode::IfpChk && b.op == Opcode::Store &&
            b.b.isReg() && b.b.payload == a.dst && a.a.isReg()) {
            r.op = Op::FusedChkStore;
            r.a = static_cast<uint32_t>(a.a.payload);
            r.flags |= kAReg;
            r.immB = a.imm0;
            r.b = a.dst;
            fillStoreValue(r, b);
            if (opts_.implicitChecks)
                r.flags |= kCheckBounds;
            stats_.fusedChkStore++;
            return true;
        }

        if (a.op == Opcode::Mov && !a.a.isReg() &&
            a.a.kind != Operand::Kind::None && b.op == Opcode::IfpBnd &&
            b.a.isReg() && b.a.payload == a.dst && b.dst == a.dst) {
            r.op = Op::MovGlobalBnd;
            r.dst = a.dst;
            r.immA = foldOperand(a.a, opts_);
            r.immB = b.imm0;
            stats_.fusedMovBnd++;
            return true;
        }
        return false;
    }

    Record
    decodeOne(const std::vector<Instr> &instrs, size_t i,
              size_t &consumed)
    {
        Record r;
        if (tryFuse(instrs, i, r)) {
            consumed = 2;
            stats_.fusedRecords++;
            r.orig = &instrs[i];
            return r;
        }
        consumed = 1;
        const Instr &in = instrs[i];
        r.orig = &in;
        r.dst = in.dst;
        switch (in.op) {
          case Opcode::Mov:
            if (in.a.isReg()) {
                r.op = Op::MovRR;
                r.a = static_cast<uint32_t>(in.a.payload);
            } else {
                r.op = Op::MovImm;
                r.immA = foldOperand(in.a, opts_);
            }
            break;
          case Opcode::Add:
            r.sextBits = sextBitsOf(in.type);
            if (in.a.isReg() && in.b.isReg()) {
                r.op = Op::AddRR;
                r.a = static_cast<uint32_t>(in.a.payload);
                r.b = static_cast<uint32_t>(in.b.payload);
            } else if (in.a.isReg()) {
                r.op = Op::AddRI;
                r.a = static_cast<uint32_t>(in.a.payload);
                r.immB = foldOperand(in.b, opts_);
            } else if (in.b.isReg()) {
                // Addition commutes; canonicalize to reg + imm.
                r.op = Op::AddRI;
                r.a = static_cast<uint32_t>(in.b.payload);
                r.immB = foldOperand(in.a, opts_);
            } else {
                r.op = Op::AddRI;
                r.a = 0;
                r.flags = 0;
                r.op = Op::MovImm;
                r.immA = static_cast<uint64_t>(
                    r.sextBits
                        ? static_cast<uint64_t>(
                              sext(foldOperand(in.a, opts_) +
                                       foldOperand(in.b, opts_),
                                   r.sextBits))
                        : foldOperand(in.a, opts_) +
                              foldOperand(in.b, opts_));
                r.sextBits = 0;
            }
            break;
          case Opcode::Sub:
          case Opcode::Mul:
          case Opcode::Shl:
          case Opcode::AShr:
            r.op = Op::IntBin;
            r.sub = static_cast<uint8_t>(in.op);
            r.sextBits = sextBitsOf(in.type);
            setOperand(r, in.a, kAReg, &Record::a, &Record::immA);
            setOperand(r, in.b, kBReg, &Record::b, &Record::immB);
            break;
          case Opcode::And:
          case Opcode::Or:
          case Opcode::Xor:
            // The general path applies no result canonicalization to
            // the bitwise ops; keep sextBits 0.
            r.op = Op::IntBin;
            r.sub = static_cast<uint8_t>(in.op);
            setOperand(r, in.a, kAReg, &Record::a, &Record::immA);
            setOperand(r, in.b, kBReg, &Record::b, &Record::immB);
            break;
          case Opcode::LShr:
            r.op = Op::IntBin;
            r.sub = static_cast<uint8_t>(in.op);
            r.sextBits = sextBitsOf(in.type);
            if (in.type && in.type->isInt())
                r.width = static_cast<uint8_t>(
                    static_cast<const IntType *>(in.type)->bits());
            setOperand(r, in.a, kAReg, &Record::a, &Record::immA);
            setOperand(r, in.b, kBReg, &Record::b, &Record::immB);
            break;
          case Opcode::ICmp:
            r.op = Op::ICmp;
            r.sub = static_cast<uint8_t>(in.icmp);
            setOperand(r, in.a, kAReg, &Record::a, &Record::immA);
            setOperand(r, in.b, kBReg, &Record::b, &Record::immB);
            break;
          case Opcode::FAdd:
          case Opcode::FSub:
          case Opcode::FMul:
          case Opcode::FDiv:
            r.op = Op::FBin;
            r.sub = static_cast<uint8_t>(in.op);
            setOperand(r, in.a, kAReg, &Record::a, &Record::immA);
            setOperand(r, in.b, kBReg, &Record::b, &Record::immB);
            break;
          case Opcode::FNeg:
            r.op = Op::FNeg;
            setOperand(r, in.a, kAReg, &Record::a, &Record::immA);
            break;
          case Opcode::FCmp:
            r.op = Op::FCmp;
            r.sub = static_cast<uint8_t>(in.fcmp);
            setOperand(r, in.a, kAReg, &Record::a, &Record::immA);
            setOperand(r, in.b, kBReg, &Record::b, &Record::immB);
            break;
          case Opcode::SIToFP:
          case Opcode::FPToSI:
          case Opcode::SExt:
          case Opcode::ZExt:
          case Opcode::Trunc:
            r.op = Op::Cast;
            r.sub = static_cast<uint8_t>(in.op);
            setOperand(r, in.a, kAReg, &Record::a, &Record::immA);
            if (in.op == Opcode::SExt || in.op == Opcode::ZExt)
                r.immB = in.imm0;
            else if (in.op == Opcode::Trunc)
                r.sextBits = sextBitsOf(in.type);
            break;
          case Opcode::Select:
            r.op = Op::Select;
            setOperand(r, in.a, kAReg, &Record::a, &Record::immA);
            setOperand(r, in.b, kBReg, &Record::b, &Record::immB);
            setOperand(r, in.c, kCReg, &Record::c, &Record::immC);
            break;
          case Opcode::GepField:
          case Opcode::GepIndex:
            fillGep(r, in);
            r.op = (r.flags & kCReg) ? Op::GepReg : Op::GepConst;
            break;
          case Opcode::IfpAdd:
            r.op = Op::IfpAdd;
            r.a = static_cast<uint32_t>(in.a.payload);
            r.flags |= kAReg;
            setOperand(r, in.b, kCReg, &Record::c, &Record::immB);
            break;
          case Opcode::IfpIdx:
            r.op = Op::IfpIdx;
            r.a = static_cast<uint32_t>(in.a.payload);
            r.flags |= kAReg;
            r.immB = in.imm0;
            break;
          case Opcode::IfpBnd:
            r.op = Op::IfpBnd;
            r.a = static_cast<uint32_t>(in.a.payload);
            r.flags |= kAReg;
            r.immB = in.imm0;
            break;
          case Opcode::IfpChk:
            r.op = Op::IfpChk;
            r.a = static_cast<uint32_t>(in.a.payload);
            r.flags |= kAReg;
            r.immB = in.imm0;
            break;
          case Opcode::Load:
            r.op = Op::Load;
            setOperand(r, in.a, kAReg, &Record::a, &Record::immA);
            fillLoad(r, in);
            if (in.a.isReg() && opts_.implicitChecks)
                r.flags |= kCheckBounds;
            break;
          case Opcode::Store:
            r.op = Op::Store;
            setOperand(r, in.a, kAReg, &Record::a, &Record::immA);
            setOperand(r, in.b, kBReg, &Record::b, &Record::immB);
            r.size = in.type->size();
            r.ldClass = ldClassOf(r.size);
            if (in.b.isReg() && opts_.implicitChecks)
                r.flags |= kCheckBounds;
            break;
          case Opcode::Alloca: {
            r.op = Op::Alloca;
            uint64_t size = in.type->size() * in.imm0;
            r.size = (in.imm1 && opts_.instrumented)
                         ? Runtime::paddedSlotSize(size)
                         : std::max<uint64_t>(roundUp(size, 16), 16);
            break;
          }
          case Opcode::SDiv:
          case Opcode::UDiv:
          case Opcode::SRem:
          case Opcode::URem:
            r.op = Op::Div;
            r.sub = static_cast<uint8_t>(in.op);
            r.sextBits = sextBitsOf(in.type);
            setOperand(r, in.a, kAReg, &Record::a, &Record::immA);
            setOperand(r, in.b, kBReg, &Record::b, &Record::immB);
            break;
          case Opcode::Jmp:
            r.op = Op::Jmp;
            r.target0 = in.target0;
            break;
          case Opcode::Br:
            r.op = Op::Br;
            setOperand(r, in.a, kAReg, &Record::a, &Record::immA);
            r.target0 = in.target0;
            r.target1 = in.target1;
            break;
          case Opcode::Call: {
            r.op = Op::Call;
            r.callee = opts_.module->function(in.callee);
            if (opts_.instrumented && func_.isInstrumented() &&
                r.callee->isInstrumented())
                r.flags |= kPassBounds;
            break;
          }
          case Opcode::CallPtr:
            r.op = Op::CallPtr;
            setOperand(r, in.a, kAReg, &Record::a, &Record::immA);
            // Caller half of the bounds-passing predicate; the callee
            // half resolves at dispatch.
            if (opts_.instrumented && func_.isInstrumented())
                r.flags |= kPassBounds;
            break;
          case Opcode::Ret:
            r.op = Op::Ret;
            if (in.a.isNone())
                r.flags |= kMisc;
            else
                setOperand(r, in.a, kAReg, &Record::a, &Record::immA);
            break;
          case Opcode::Trap:
            r.op = Op::Trap;
            r.immA = in.imm0;
            break;
          case Opcode::MallocTyped:
            r.op = Op::MallocTyped;
            setOperand(r, in.a, kAReg, &Record::a, &Record::immA);
            r.size = in.type->size();
            break;
          case Opcode::FreePtr:
            r.op = Op::FreePtr;
            setOperand(r, in.a, kAReg, &Record::a, &Record::immA);
            break;
          case Opcode::Promote:
            r.op = Op::Promote;
            r.a = static_cast<uint32_t>(in.a.payload);
            r.flags |= kAReg;
            break;
          case Opcode::RegisterObj:
            r.op = Op::RegisterObj;
            r.a = static_cast<uint32_t>(in.a.payload);
            r.flags |= kAReg;
            r.immB = in.imm0;
            r.c = in.layout;
            break;
          case Opcode::DeregisterObj:
            r.op = Op::DeregisterObj;
            setOperand(r, in.a, kAReg, &Record::a, &Record::immA);
            break;
          case Opcode::IfpMallocTyped:
            r.op = Op::IfpMallocTyped;
            setOperand(r, in.a, kAReg, &Record::a, &Record::immA);
            r.size = in.type->size();
            r.c = in.layout;
            break;
          case Opcode::IfpFree:
            r.op = Op::IfpFree;
            setOperand(r, in.a, kAReg, &Record::a, &Record::immA);
            break;
        }
        return r;
    }

    const Function &func_;
    const PredecodeOptions &opts_;
    Stats &stats_;
    Pend pend_;
};

} // namespace

FunctionCode
predecode(const Function &func, const PredecodeOptions &opts,
          Stats &stats)
{
    FunctionCode fc;
    fc.blocks.resize(func.numBlocks());
    BlockBuilder builder(func, opts, stats);
    for (BlockId b = 0; b < func.numBlocks(); ++b)
        fc.blocks[b] = builder.build(b);
    // Chained-entry table for tier 2 (vm/jit.hh). Sized once, here:
    // emitted code bakes slot addresses in, so the vector must never
    // reallocate (deopt clears it with fill, not assign).
    fc.jitEntries.assign(func.numBlocks(), nullptr);
    // Return-path saved-bounds charge, mirroring the entry-path spill
    // in Machine::execFunction so the JIT's emitted Ret replays it.
    unsigned sbnd = (opts.instrumented && func.isInstrumented())
                        ? func.savedBoundsRegs()
                        : 0;
    fc.savedBounds = sbnd;
    fc.savedBoundsCycles = opts.superscalar ? (sbnd + 1) / 2 : sbnd;
    stats.functions++;
    return fc;
}

} // namespace sb

// ---------------------------------------------------------------------
// Execution engine
// ---------------------------------------------------------------------

using namespace ir;

namespace {

double
asF64(uint64_t raw)
{
    return std::bit_cast<double>(raw);
}

uint64_t
fromF64(double v)
{
    return std::bit_cast<uint64_t>(v);
}

bool
evalICmp(uint8_t pred, uint64_t ua, uint64_t ub)
{
    auto sa = static_cast<int64_t>(ua);
    auto sb_ = static_cast<int64_t>(ub);
    switch (static_cast<ICmpPred>(pred)) {
      case ICmpPred::Eq: return ua == ub;
      case ICmpPred::Ne: return ua != ub;
      case ICmpPred::Slt: return sa < sb_;
      case ICmpPred::Sle: return sa <= sb_;
      case ICmpPred::Sgt: return sa > sb_;
      case ICmpPred::Sge: return sa >= sb_;
      case ICmpPred::Ult: return ua < ub;
      case ICmpPred::Ule: return ua <= ub;
      case ICmpPred::Ugt: return ua > ub;
      case ICmpPred::Uge: return ua >= ub;
    }
    return false;
}

} // namespace

// ---------------------------------------------------------------------
// Dispatch tiers. One body serves both: SB_CASE places a computed-goto
// label on every case so tier 1 (Threaded) jumps straight to record
// bodies through a label table, each body ending in its own indirect
// jump (SB_NEXT) so the host BTB learns per-predecessor patterns —
// the "direct-threaded" property the central switch branch lacks.
// Tier 0 takes the same macros down the classic switch. Non-GCC/Clang
// builds lack labels-as-values and compile tier 0 only.
// ---------------------------------------------------------------------

#if defined(__GNUC__) || defined(__clang__)
#define INFAT_SB_THREADED 1
#else
#define INFAT_SB_THREADED 0
#endif

#if INFAT_SB_THREADED
#define SB_CASE(name)                                                  \
    case sb::Op::name:                                                 \
    L_##name:
#define SB_NEXT                                                        \
    {                                                                  \
        ++rec;                                                         \
        if constexpr (Threaded)                                        \
            goto *kLabels[static_cast<size_t>(rec->op)];               \
        else                                                           \
            goto dispatch;                                             \
    }
#else
#define SB_CASE(name) case sb::Op::name:
#define SB_NEXT                                                        \
    {                                                                  \
        ++rec;                                                         \
        goto dispatch;                                                 \
    }
#endif

template <bool Threaded>
uint64_t
Machine::execSuperblockImpl(const Function *func, Frame &frame,
                            Bounds *ret_bounds, unsigned depth,
                            unsigned saved_bounds)
{
    const sb::FunctionCode &fc = sbCode(func);
    auto &regs = frame.regs;
    auto &bounds = frame.bounds;
    BlockId cur = 0;

    // Profiler attribution state (host-side only; see
    // support/profile.hh). Per-block deltas are batched: snapshot at
    // block entry, flush the whole block's self cost at block exit, and
    // re-snapshot around calls so callee time lands in the callee's own
    // blocks. No simulated counter is touched.
    GuestProfiler *const prof = prof_;
    const uint32_t pfid = func->id();
    uint64_t pb_cycles = cycles_;
    uint64_t pb_instrs = instrs_;
    auto pflush = [&](BlockId block) {
        prof->addBlock(pfid, block, cycles_ - pb_cycles,
                       instrs_ - pb_instrs);
        pb_cycles = cycles_;
        pb_instrs = instrs_;
    };

    // Batched charges of the pure run preceding a sync record.
    auto pre = [&](const sb::Record &fi) {
        instrs_ += fi.preInstr;
        cycles_ += fi.preCycles;
        classCycles_[static_cast<size_t>(CycleClass::Base)] +=
            fi.preBase;
        classCycles_[static_cast<size_t>(CycleClass::IfpArith)] +=
            fi.preIfp;
        cIfpArith_ += fi.preIfpCnt;
    };
    auto charge = [&](uint32_t n, CycleClass c) {
        instrs_ += n;
        cycles_ += n;
        classCycles_[static_cast<size_t>(c)] += n;
    };
    // The general path's checkAccess, driven off the record: verdict
    // first (shared predicates, shared order), then the counter bump
    // and trap the general path interleaves, then cache timing.
    auto access = [&](const sb::Record &fi, uint64_t raw,
                      uint32_t ck_reg, bool write) {
        TaggedPtr ptr(raw);
        bool p_checked = false;
        bool p_elided = false;
        if (fi.flags & sb::kElide) {
            // An earlier same-block check over the same (unchanged)
            // address expression passed, or the address is a constant
            // with a statically Ok verdict: skip the predicates, keep
            // the simulated accounting identical.
            if ((fi.flags & sb::kCheckBounds) &&
                bounds[ck_reg].valid()) {
                cImplicitChecks_++;
                p_checked = true;
            }
            p_elided = true;
            sbCounters_.checksElided++;
        } else {
            const Bounds *bp = (fi.flags & sb::kCheckBounds)
                                   ? &bounds[ck_reg]
                                   : nullptr;
            ops::CheckVerdict v = ops::checkAccessVerdict(
                ptr, bp, fi.size, GuestMemory::pageSize);
            if (v == ops::CheckVerdict::Poisoned) {
                noteFault(raw, fi.size, write, bp);
                throw GuestTrap(poisonTrapKind(ptr.poison()),
                                poisonedAccessDetail(ptr, write));
            }
            if (v == ops::CheckVerdict::Null) {
                noteFault(raw, fi.size, write, bp);
                throw GuestTrap(TrapKind::NullDereference,
                                nullDerefDetail(ptr.addr()));
            }
            if (bp && bp->valid()) {
                cImplicitChecks_++;
                p_checked = true;
            }
            if (v == ops::CheckVerdict::OutOfBounds) {
                noteFault(raw, fi.size, write, bp);
                throw GuestTrap(TrapKind::BoundsViolation,
                                boundsViolationDetail(ptr.addr(),
                                                      fi.size, *bp,
                                                      write));
            }
            sbCounters_.checksFull++;
        }
        uint64_t extra = 0;
        if (config_.useCache) {
            extra = l1d_.access(ptr.addr(), fi.size, write).latency - 1;
            cycles_ += extra;
            chargeClass(CycleClass::Mem, extra);
        }
        if (prof) {
            // Same site identity and cost definition as the general
            // path: the record ends at the access instruction
            // (nextIp - 1), and the cost is 1 base cycle + cache
            // latency; fused chk/gep portions stay in block cycles.
            prof->countCheckSite(pfid, cur, fi.nextIp - 1, 1 + extra,
                                 p_checked, p_elided);
        }
    };
    auto doLoad = [&](const sb::Record &fi, uint64_t raw) {
        access(fi, raw, fi.flags & sb::kCheckBounds
                            ? (fi.op == sb::Op::Load ? fi.a : fi.b)
                            : 0,
               false);
        GuestAddr addr = layout::canonical(raw);
        uint64_t value;
        switch (fi.ldClass) {
          case 1: value = mem_.load<uint8_t>(addr); break;
          case 2: value = mem_.load<uint16_t>(addr); break;
          case 4: value = mem_.load<uint32_t>(addr); break;
          default: value = mem_.load<uint64_t>(addr); break;
        }
        if (fi.sextBits)
            value = static_cast<uint64_t>(sext(value, fi.sextBits));
        regs[fi.dst] = value;
        bounds[fi.dst] = Bounds::cleared();
        cLoads_++;
    };
    auto doStore = [&](const sb::Record &fi, uint64_t raw,
                       uint64_t value) {
        access(fi, raw, fi.flags & sb::kCheckBounds
                            ? (fi.op == sb::Op::Store ? fi.b : fi.b)
                            : 0,
               true);
        GuestAddr addr = layout::canonical(raw);
        switch (fi.ldClass) {
          case 1:
            mem_.store<uint8_t>(addr, static_cast<uint8_t>(value));
            break;
          case 2:
            mem_.store<uint16_t>(addr, static_cast<uint16_t>(value));
            break;
          case 4:
            mem_.store<uint32_t>(addr, static_cast<uint32_t>(value));
            break;
          default:
            mem_.store<uint64_t>(addr, value);
            break;
        }
        cStores_++;
    };
    // Run a call (direct or resolved indirect) from a record.
    auto doCall = [&](const sb::Record &fi, const Function *callee,
                      bool pass_bounds) {
        const Instr &instr = *fi.orig;
        ArgScratch &scratch = argScratch(depth);
        std::vector<uint64_t> &call_args = scratch.args;
        std::vector<Bounds> &call_bounds = scratch.bounds;
        call_args.clear();
        call_bounds.clear();
        for (const Operand &arg : instr.args) {
            call_args.push_back(evalOperand(frame, arg));
            call_bounds.push_back(pass_bounds
                                      ? operandBounds(frame, arg)
                                      : Bounds::cleared());
        }
        cCalls_++;
        Bounds ret_b = Bounds::cleared();
        uint64_t call_c0 = 0;
        if (prof) {
            pflush(cur);
            // Call-site id: the record's original Call/CallPtr
            // instruction (fusion never folds calls, so nextIp - 1 is
            // exactly the instruction the general engine sees too).
            prof->countCallSite(pfid, cur, fi.nextIp - 1);
            call_c0 = cycles_;
        }
        uint64_t ret = callFunction(callee, call_args, call_bounds,
                                    &ret_b, depth + 1);
        if (prof) {
            prof->addCallSiteCycles(pfid, cur, fi.nextIp - 1,
                                    cycles_ - call_c0);
            // Discard the callee's delta from this block's self cost;
            // the callee attributed it to its own blocks.
            pb_cycles = cycles_;
            pb_instrs = instrs_;
            if (prof->sampleDue(cycles_))
                profileSample(depth);
        }
        if (fi.dst != noReg) {
            regs[fi.dst] = ret;
            bounds[fi.dst] =
                pass_bounds ? ret_b : Bounds::cleared();
        }
    };

#if INFAT_SB_THREADED
    // Label table for tier-1 dispatch; order must match sb::Op exactly.
    static const void *const kLabels[] = {
        &&L_MovRR,        &&L_MovImm,
        &&L_AddRR,        &&L_AddRI,
        &&L_IntBin,       &&L_ICmp,
        &&L_FBin,         &&L_FNeg,
        &&L_FCmp,         &&L_Cast,
        &&L_Select,       &&L_GepConst,
        &&L_GepReg,       &&L_IfpAdd,
        &&L_IfpIdx,       &&L_IfpBnd,
        &&L_IfpChk,       &&L_MovGlobalBnd,
        &&L_Load,         &&L_Store,
        &&L_FusedGepLoad, &&L_FusedGepStore,
        &&L_FusedIfpAddLoad, &&L_FusedIfpAddStore,
        &&L_FusedChkLoad, &&L_FusedChkStore,
        &&L_Div,          &&L_Alloca,
        &&L_Call,         &&L_CallPtr,
        &&L_MallocTyped,  &&L_FreePtr,
        &&L_Promote,      &&L_RegisterObj,
        &&L_DeregisterObj, &&L_IfpMallocTyped,
        &&L_IfpFree,      &&L_Jmp,
        &&L_Br,           &&L_FusedCmpBr,
        &&L_Ret,          &&L_Trap,
    };
    (void)kLabels; // referenced only by the Threaded instantiation
#endif

    // Tier 2 is live when configured on, compilable on this host, and
    // no profiler is attached (the profiler's per-block attribution
    // needs the interpreter loop; the engine itself is already gated
    // off tracer/oracle attachment by execFunction). Promotion
    // counting only advances while live, so two identical runs promote
    // identical blocks at identical points.
    const bool jit_live = config_.jit && tier_ != nullptr &&
                          prof == nullptr && jit::available();

    const sb::Record *rec = nullptr;
// From here to the end of the dispatch loop, record fields are read
// through the cursor: the computed-goto path re-enters a case body
// without passing the loop head, so a loop-scoped `fi` reference
// would go stale. The lambdas above keep `fi` as a parameter name and
// must stay ahead of this define.
#define fi (*rec)

    for (;;) {
        const sb::Block &blk = fc.blocks[cur];
        // Block-entry budget guard: if the block's static charges
        // could cross the instruction limit, replay it on the general
        // interpreter, which traps at the exact instruction.
        if (instrs_ + blk.totalInstr > config_.maxInstructions)
            return execGeneral(func, frame, ret_bounds, depth, cur, 0,
                               saved_bounds);
        frame.curBlock = cur;
        // Terminators reassign `cur` before block_done; remember which
        // block this iteration's deltas belong to.
        const BlockId pcur = cur;
        if (prof)
            prof->countBlockEntry(pfid, cur);
        rec = blk.records.data();
        if (jit_live && blk.jitId != sb::kJitNever) {
            if (blk.jitId == sb::kJitNone &&
                ++blk.hotCount >= config_.jitThreshold) {
                int32_t id = tier_->compile(fc, cur);
                if (id >= 0)
                    blk.jitId = id;
                else if (id == TierController::kRetryLater)
                    blk.hotCount = 0; // deferred deopt draining
                else
                    blk.jitId = sb::kJitNever;
            }
            if (blk.jitId >= 0) {
                tier_->noteEnter();
                jit::RunCtx ctx{regs.data(), bounds.data(),
                                &frame.curBlock, 0, ret_bounds};
                tier_->enterJitFrame();
                uint64_t exit = tier_->unit(blk.jitId).fn(&ctx);
                tier_->leaveJitFrame();
                if (exit & jit::kExitBail) {
                    // Bits 60:32 carry the exiting block's id —
                    // compiled blocks chain into each other, so it is
                    // not necessarily the block entered above.
                    cur = static_cast<BlockId>(
                        (exit >> 32) & jit::kExitBlockMask);
                    frame.curBlock = cur;
                    if (exit & jit::kExitTrapBit) {
                        // A trap inside a jitted callee, parked at
                        // the call boundary; rethrow now that control
                        // is out of the emitted frame.
                        rethrowPendingTrap();
                    }
                    if (exit & jit::kExitGeneralBit) {
                        // Post-call budget pressure or a deopt-unwind
                        // inside the callee: replay the rest of this
                        // activation on the general engine, resuming
                        // just after the call record.
                        uint32_t idx = static_cast<uint32_t>(exit);
                        return execGeneral(
                            func, frame, ret_bounds, depth, cur,
                            fc.blocks[cur].records[idx].nextIp,
                            saved_bounds);
                    }
                    // Plain bailout: resume interpretation at the
                    // bail record; the jitted code applied none of
                    // its effects.
                    tier_->noteBail();
                    rec = fc.blocks[cur].records.data() +
                          static_cast<uint32_t>(exit);
                    goto dispatch;
                }
                if (exit == jit::kExitRet) {
                    // An emitted Ret completed the activation; the
                    // return value and bounds are already in place.
                    return ctx.retVal;
                }
                cur = static_cast<BlockId>(exit);
                goto block_done;
            }
        }
        {
          dispatch:
#if INFAT_SB_THREADED
            if constexpr (Threaded)
                goto *kLabels[static_cast<size_t>(rec->op)];
#endif
            switch (fi.op) {
              // --- pure ---
              SB_CASE(MovRR)
                regs[fi.dst] = regs[fi.a];
                bounds[fi.dst] = bounds[fi.a];
                SB_NEXT;
              SB_CASE(MovImm)
                regs[fi.dst] = fi.immA;
                bounds[fi.dst] = Bounds::cleared();
                SB_NEXT;
              SB_CASE(AddRR) {
                uint64_t sum = regs[fi.a] + regs[fi.b];
                if (fi.sextBits)
                    sum = static_cast<uint64_t>(
                        sext(sum, fi.sextBits));
                regs[fi.dst] = sum;
                bounds[fi.dst] = Bounds::cleared();
                SB_NEXT;
              }
              SB_CASE(AddRI) {
                uint64_t sum = regs[fi.a] + fi.immB;
                if (fi.sextBits)
                    sum = static_cast<uint64_t>(
                        sext(sum, fi.sextBits));
                regs[fi.dst] = sum;
                bounds[fi.dst] = Bounds::cleared();
                SB_NEXT;
              }
              SB_CASE(IntBin) {
                uint64_t va =
                    (fi.flags & sb::kAReg) ? regs[fi.a] : fi.immA;
                uint64_t vb =
                    (fi.flags & sb::kBReg) ? regs[fi.b] : fi.immB;
                uint64_t res = 0;
                switch (static_cast<Opcode>(fi.sub)) {
                  case Opcode::Sub: res = va - vb; break;
                  case Opcode::Mul: res = va * vb; break;
                  case Opcode::And: res = va & vb; break;
                  case Opcode::Or: res = va | vb; break;
                  case Opcode::Xor: res = va ^ vb; break;
                  case Opcode::Shl: res = va << (vb & 63); break;
                  case Opcode::LShr:
                    if (fi.width)
                        va &= mask(fi.width);
                    res = va >> (vb & 63);
                    break;
                  case Opcode::AShr:
                    res = static_cast<uint64_t>(
                        static_cast<int64_t>(va) >> (vb & 63));
                    break;
                  default: break;
                }
                if (fi.sextBits)
                    res = static_cast<uint64_t>(
                        sext(res, fi.sextBits));
                regs[fi.dst] = res;
                bounds[fi.dst] = Bounds::cleared();
                SB_NEXT;
              }
              SB_CASE(ICmp) {
                uint64_t va =
                    (fi.flags & sb::kAReg) ? regs[fi.a] : fi.immA;
                uint64_t vb =
                    (fi.flags & sb::kBReg) ? regs[fi.b] : fi.immB;
                regs[fi.dst] = evalICmp(fi.sub, va, vb) ? 1 : 0;
                bounds[fi.dst] = Bounds::cleared();
                SB_NEXT;
              }
              SB_CASE(FBin) {
                double fa = asF64(
                    (fi.flags & sb::kAReg) ? regs[fi.a] : fi.immA);
                double fb = asF64(
                    (fi.flags & sb::kBReg) ? regs[fi.b] : fi.immB);
                double res = 0;
                switch (static_cast<Opcode>(fi.sub)) {
                  case Opcode::FAdd: res = fa + fb; break;
                  case Opcode::FSub: res = fa - fb; break;
                  case Opcode::FMul: res = fa * fb; break;
                  case Opcode::FDiv: res = fa / fb; break;
                  default: break;
                }
                regs[fi.dst] = fromF64(res);
                SB_NEXT; // float ops leave the bounds register alone
              }
              SB_CASE(FNeg)
                regs[fi.dst] = fromF64(-asF64(
                    (fi.flags & sb::kAReg) ? regs[fi.a] : fi.immA));
                SB_NEXT;
              SB_CASE(FCmp) {
                double fa = asF64(
                    (fi.flags & sb::kAReg) ? regs[fi.a] : fi.immA);
                double fb = asF64(
                    (fi.flags & sb::kBReg) ? regs[fi.b] : fi.immB);
                bool res = false;
                switch (static_cast<FCmpPred>(fi.sub)) {
                  case FCmpPred::Eq: res = fa == fb; break;
                  case FCmpPred::Ne: res = fa != fb; break;
                  case FCmpPred::Lt: res = fa < fb; break;
                  case FCmpPred::Le: res = fa <= fb; break;
                  case FCmpPred::Gt: res = fa > fb; break;
                  case FCmpPred::Ge: res = fa >= fb; break;
                }
                regs[fi.dst] = res ? 1 : 0;
                SB_NEXT;
              }
              SB_CASE(Cast) {
                uint64_t va =
                    (fi.flags & sb::kAReg) ? regs[fi.a] : fi.immA;
                switch (static_cast<Opcode>(fi.sub)) {
                  case Opcode::SIToFP:
                    regs[fi.dst] = fromF64(static_cast<double>(
                        static_cast<int64_t>(va)));
                    break;
                  case Opcode::FPToSI:
                    regs[fi.dst] = static_cast<uint64_t>(
                        static_cast<int64_t>(asF64(va)));
                    break;
                  case Opcode::SExt:
                    regs[fi.dst] = static_cast<uint64_t>(
                        sext(va, static_cast<unsigned>(fi.immB)));
                    break;
                  case Opcode::ZExt:
                    regs[fi.dst] =
                        va & mask(static_cast<unsigned>(fi.immB));
                    break;
                  case Opcode::Trunc:
                    regs[fi.dst] =
                        fi.sextBits
                            ? static_cast<uint64_t>(
                                  sext(va, fi.sextBits))
                            : va;
                    break;
                  default: break;
                }
                SB_NEXT; // casts leave the bounds register alone
              }
              SB_CASE(Select) {
                bool cond =
                    ((fi.flags & sb::kAReg) ? regs[fi.a] : fi.immA) !=
                    0;
                if (cond) {
                    bool breg = (fi.flags & sb::kBReg) != 0;
                    uint64_t v = breg ? regs[fi.b] : fi.immB;
                    Bounds nb =
                        breg ? bounds[fi.b] : Bounds::cleared();
                    regs[fi.dst] = v;
                    bounds[fi.dst] = nb;
                } else {
                    bool creg = (fi.flags & sb::kCReg) != 0;
                    uint64_t v = creg ? regs[fi.c] : fi.immC;
                    Bounds nb =
                        creg ? bounds[fi.c] : Bounds::cleared();
                    regs[fi.dst] = v;
                    bounds[fi.dst] = nb;
                }
                SB_NEXT;
              }
              SB_CASE(GepConst) {
                bool areg = (fi.flags & sb::kAReg) != 0;
                uint64_t base = areg ? regs[fi.a] : fi.immA;
                Bounds nb = areg ? bounds[fi.a] : Bounds::cleared();
                regs[fi.dst] = base + fi.immB;
                bounds[fi.dst] = nb;
                SB_NEXT;
              }
              SB_CASE(GepReg) {
                bool areg = (fi.flags & sb::kAReg) != 0;
                uint64_t base = areg ? regs[fi.a] : fi.immA;
                Bounds nb = areg ? bounds[fi.a] : Bounds::cleared();
                regs[fi.dst] = base + regs[fi.c] * fi.immB;
                bounds[fi.dst] = nb;
                SB_NEXT;
              }
              SB_CASE(IfpAdd) {
                auto delta = static_cast<int64_t>(
                    (fi.flags & sb::kCReg) ? regs[fi.c] : fi.immB);
                Bounds src_bounds = bounds[fi.a];
                TaggedPtr res = ops::ifpAdd(TaggedPtr(regs[fi.a]),
                                            delta, src_bounds);
                regs[fi.dst] = res.raw();
                bounds[fi.dst] = src_bounds;
                SB_NEXT;
              }
              SB_CASE(IfpIdx) {
                TaggedPtr ptr(regs[fi.a]);
                uint64_t new_index = ptr.subobjIndex() + fi.immB;
                Bounds src_bounds = bounds[fi.a];
                regs[fi.dst] = ops::ifpIdx(ptr, new_index).raw();
                bounds[fi.dst] = src_bounds;
                SB_NEXT;
              }
              SB_CASE(IfpBnd) {
                TaggedPtr ptr(regs[fi.a]);
                regs[fi.dst] = ptr.raw();
                bounds[fi.dst] = ops::ifpBnd(ptr, fi.immB);
                SB_NEXT;
              }
              SB_CASE(IfpChk)
                // Writes the register only; the paired bounds register
                // is untouched (matches the general path).
                regs[fi.dst] = ops::ifpChk(TaggedPtr(regs[fi.a]),
                                           bounds[fi.a], fi.immB)
                                   .raw();
                SB_NEXT;
              SB_CASE(MovGlobalBnd) {
                TaggedPtr ptr(fi.immA);
                regs[fi.dst] = fi.immA;
                bounds[fi.dst] = ops::ifpBnd(ptr, fi.immB);
                SB_NEXT;
              }

              // --- sync: memory ---
              SB_CASE(Load) {
                pre(fi);
                charge(1, CycleClass::Mem);
                uint64_t raw =
                    (fi.flags & sb::kAReg) ? regs[fi.a] : fi.immA;
                doLoad(fi, raw);
                SB_NEXT;
              }
              SB_CASE(Store) {
                pre(fi);
                charge(1, CycleClass::Mem);
                uint64_t value =
                    (fi.flags & sb::kAReg) ? regs[fi.a] : fi.immA;
                uint64_t raw =
                    (fi.flags & sb::kBReg) ? regs[fi.b] : fi.immB;
                doStore(fi, raw, value);
                SB_NEXT;
              }
              SB_CASE(FusedGepLoad)
              SB_CASE(FusedGepStore) {
                pre(fi);
                instrs_ += fi.sub + 1u;
                cycles_ += fi.sub + 1u;
                classCycles_[static_cast<size_t>(
                    CycleClass::Base)] += fi.sub;
                classCycles_[static_cast<size_t>(CycleClass::Mem)] +=
                    1;
                bool areg = (fi.flags & sb::kAReg) != 0;
                uint64_t base = areg ? regs[fi.a] : fi.immA;
                uint64_t raw = (fi.flags & sb::kCReg)
                                   ? base + regs[fi.c] * fi.immB
                                   : base + fi.immB;
                Bounds nb = areg ? bounds[fi.a] : Bounds::cleared();
                regs[fi.b] = raw;
                bounds[fi.b] = nb;
                sbCounters_.fusedExec++;
                if (fi.op == sb::Op::FusedGepLoad) {
                    doLoad(fi, raw);
                } else {
                    uint64_t value = (fi.flags & sb::kDReg)
                                         ? regs[fi.d]
                                         : fi.immC;
                    doStore(fi, raw, value);
                }
                SB_NEXT;
              }
              SB_CASE(FusedIfpAddLoad)
              SB_CASE(FusedIfpAddStore) {
                pre(fi);
                instrs_ += 2;
                cycles_ += 2;
                classCycles_[static_cast<size_t>(
                    CycleClass::IfpArith)] += 1;
                classCycles_[static_cast<size_t>(CycleClass::Mem)] +=
                    1;
                cIfpArith_++;
                auto delta = static_cast<int64_t>(
                    (fi.flags & sb::kCReg) ? regs[fi.c] : fi.immB);
                Bounds src_bounds = bounds[fi.a];
                TaggedPtr res = ops::ifpAdd(TaggedPtr(regs[fi.a]),
                                            delta, src_bounds);
                regs[fi.b] = res.raw();
                bounds[fi.b] = src_bounds;
                sbCounters_.fusedExec++;
                if (fi.op == sb::Op::FusedIfpAddLoad) {
                    doLoad(fi, res.raw());
                } else {
                    uint64_t value = (fi.flags & sb::kDReg)
                                         ? regs[fi.d]
                                         : fi.immC;
                    doStore(fi, res.raw(), value);
                }
                SB_NEXT;
              }
              SB_CASE(FusedChkLoad)
              SB_CASE(FusedChkStore) {
                pre(fi);
                instrs_ += 2;
                cycles_ += 2;
                classCycles_[static_cast<size_t>(
                    CycleClass::IfpArith)] += 1;
                classCycles_[static_cast<size_t>(CycleClass::Mem)] +=
                    1;
                cIfpArith_++;
                // ifpchk writes the register but not the bounds
                // register; the dereference check then consults
                // bounds[b] as the general path would.
                uint64_t raw = ops::ifpChk(TaggedPtr(regs[fi.a]),
                                           bounds[fi.a], fi.immB)
                                   .raw();
                regs[fi.b] = raw;
                sbCounters_.fusedExec++;
                if (fi.op == sb::Op::FusedChkLoad) {
                    doLoad(fi, raw);
                } else {
                    uint64_t value = (fi.flags & sb::kDReg)
                                         ? regs[fi.d]
                                         : fi.immC;
                    doStore(fi, raw, value);
                }
                SB_NEXT;
              }

              // --- sync: other ---
              SB_CASE(Div) {
                pre(fi);
                charge(1, CycleClass::Base);
                uint64_t va =
                    (fi.flags & sb::kAReg) ? regs[fi.a] : fi.immA;
                uint64_t vb =
                    (fi.flags & sb::kBReg) ? regs[fi.b] : fi.immB;
                if (vb == 0)
                    throw GuestTrap(TrapKind::DivisionByZero,
                                    func->name());
                uint64_t res;
                Opcode op = static_cast<Opcode>(fi.sub);
                if (op == Opcode::SDiv || op == Opcode::SRem) {
                    auto lhs = static_cast<int64_t>(va);
                    auto rhs = static_cast<int64_t>(vb);
                    int64_t sres;
                    if (lhs == INT64_MIN && rhs == -1)
                        sres = op == Opcode::SDiv ? lhs : 0;
                    else
                        sres = op == Opcode::SDiv ? lhs / rhs
                                                  : lhs % rhs;
                    res = static_cast<uint64_t>(sres);
                } else {
                    res = op == Opcode::UDiv ? va / vb : va % vb;
                }
                if (fi.sextBits)
                    res = static_cast<uint64_t>(
                        sext(res, fi.sextBits));
                regs[fi.dst] = res;
                bounds[fi.dst] = Bounds::cleared();
                SB_NEXT;
              }
              SB_CASE(Alloca)
                pre(fi);
                charge(1, CycleClass::Base);
                sp_ = roundDown(sp_ - fi.size, 16);
                if (sp_ < layout::stackLimit)
                    throw GuestTrap(TrapKind::StackOverflow,
                                    func->name());
                regs[fi.dst] = sp_;
                bounds[fi.dst] = Bounds::cleared();
                SB_NEXT;
              SB_CASE(Call)
                pre(fi);
                charge(1, CycleClass::Base);
                doCall(fi, fi.callee,
                       (fi.flags & sb::kPassBounds) != 0);
                if (instrs_ + fi.rest > config_.maxInstructions) {
                    if (prof)
                        pflush(cur);
                    return execGeneral(func, frame, ret_bounds, depth,
                                       cur, fi.nextIp, saved_bounds);
                }
                SB_NEXT;
              SB_CASE(CallPtr) {
                pre(fi);
                charge(1, CycleClass::Base);
                uint64_t fid =
                    (fi.flags & sb::kAReg) ? regs[fi.a] : fi.immA;
                if (fid >= module_.numFunctions())
                    throw GuestTrap(
                        TrapKind::BadIndirectCall,
                        strfmt("index %llu",
                               static_cast<unsigned long long>(fid)));
                const Function *callee =
                    module_.function(static_cast<FuncId>(fid));
                doCall(fi, callee,
                       (fi.flags & sb::kPassBounds) &&
                           callee->isInstrumented());
                if (instrs_ + fi.rest > config_.maxInstructions) {
                    if (prof)
                        pflush(cur);
                    return execGeneral(func, frame, ret_bounds, depth,
                                       cur, fi.nextIp, saved_bounds);
                }
                SB_NEXT;
              }
              SB_CASE(MallocTyped) {
                pre(fi);
                charge(1, CycleClass::Runtime);
                uint64_t count =
                    (fi.flags & sb::kAReg) ? regs[fi.a] : fi.immA;
                uint64_t size = count * fi.size;
                RuntimeCost cost;
                regs[fi.dst] = runtime_->plainMalloc(size, cost);
                bounds[fi.dst] = Bounds::cleared();
                if (forensics_)
                    noteAllocRecord(layout::canonical(regs[fi.dst]),
                                    size, AllocKind::PlainHeap, func,
                                    cur);
                applyCost(cost);
                if (instrs_ + fi.rest > config_.maxInstructions) {
                    if (prof)
                        pflush(cur);
                    return execGeneral(func, frame, ret_bounds, depth,
                                       cur, fi.nextIp, saved_bounds);
                }
                SB_NEXT;
              }
              SB_CASE(FreePtr) {
                pre(fi);
                charge(1, CycleClass::Runtime);
                GuestAddr addr = layout::canonical(
                    (fi.flags & sb::kAReg) ? regs[fi.a] : fi.immA);
                RuntimeCost cost;
                runtime_->plainFree(addr, cost);
                if (forensics_)
                    forensics_->noteFree(addr, {true, func->id(), cur});
                applyCost(cost);
                if (instrs_ + fi.rest > config_.maxInstructions) {
                    if (prof)
                        pflush(cur);
                    return execGeneral(func, frame, ret_bounds, depth,
                                       cur, fi.nextIp, saved_bounds);
                }
                SB_NEXT;
              }
              SB_CASE(Promote) {
                pre(fi);
                charge(1, CycleClass::Promote);
                PromoteResult result =
                    promote_->promote(TaggedPtr(regs[fi.a]));
                regs[fi.dst] = result.ptr.raw();
                bounds[fi.dst] = result.bounds;
                uint64_t extra =
                    result.cycles > 0 ? result.cycles - 1 : 0;
                cycles_ += extra;
                chargeClass(CycleClass::Promote, extra);
                cPromoteInstrs_++;
                SB_NEXT;
              }
              SB_CASE(RegisterObj) {
                pre(fi);
                charge(1, CycleClass::Runtime);
                RuntimeCost cost;
                IfpAllocation alloc = runtime_->registerObject(
                    layout::canonical(regs[fi.a]), fi.immB,
                    static_cast<LayoutId>(fi.c), cost);
                regs[fi.dst] = alloc.ptr.raw();
                bounds[fi.dst] = alloc.bounds;
                if (forensics_)
                    noteAllocRecord(alloc.ptr.addr(), fi.immB,
                                    AllocKind::Stack, func, cur);
                applyCost(cost);
                cIfpArith_++;
                stats_.counter("local_objects")++;
                if (static_cast<LayoutId>(fi.c) != noLayout)
                    stats_.counter("local_objects_with_layout")++;
                if (instrs_ + fi.rest > config_.maxInstructions) {
                    if (prof)
                        pflush(cur);
                    return execGeneral(func, frame, ret_bounds, depth,
                                       cur, fi.nextIp, saved_bounds);
                }
                SB_NEXT;
              }
              SB_CASE(DeregisterObj) {
                pre(fi);
                charge(1, CycleClass::Runtime);
                TaggedPtr ptr((fi.flags & sb::kAReg) ? regs[fi.a]
                                                     : fi.immA);
                RuntimeCost cost;
                runtime_->deregisterObject(ptr, cost);
                if (forensics_)
                    forensics_->noteFree(ptr.addr(),
                                         {true, func->id(), cur});
                applyCost(cost);
                cIfpArith_++;
                if (instrs_ + fi.rest > config_.maxInstructions) {
                    if (prof)
                        pflush(cur);
                    return execGeneral(func, frame, ret_bounds, depth,
                                       cur, fi.nextIp, saved_bounds);
                }
                SB_NEXT;
              }
              SB_CASE(IfpMallocTyped) {
                pre(fi);
                charge(1, CycleClass::Runtime);
                uint64_t count =
                    (fi.flags & sb::kAReg) ? regs[fi.a] : fi.immA;
                uint64_t size = count * fi.size;
                RuntimeCost cost;
                IfpAllocation alloc = runtime_->ifpMalloc(
                    size, static_cast<LayoutId>(fi.c), cost);
                regs[fi.dst] = alloc.ptr.raw();
                bounds[fi.dst] = alloc.bounds;
                if (forensics_)
                    noteAllocRecord(alloc.ptr.addr(), size,
                                    AllocKind::IfpHeap, func, cur);
                applyCost(cost);
                stats_.counter("heap_objects")++;
                if (static_cast<LayoutId>(fi.c) != noLayout)
                    stats_.counter("heap_objects_with_layout")++;
                if (instrs_ + fi.rest > config_.maxInstructions) {
                    if (prof)
                        pflush(cur);
                    return execGeneral(func, frame, ret_bounds, depth,
                                       cur, fi.nextIp, saved_bounds);
                }
                SB_NEXT;
              }
              SB_CASE(IfpFree) {
                pre(fi);
                charge(1, CycleClass::Runtime);
                TaggedPtr ptr((fi.flags & sb::kAReg) ? regs[fi.a]
                                                     : fi.immA);
                RuntimeCost cost;
                try {
                    runtime_->ifpFree(ptr, cost);
                } catch (const GuestTrap &) {
                    noteFault(ptr.raw(), 0, false, nullptr);
                    applyCost(cost);
                    throw;
                }
                if (forensics_ && !ptr.isNull())
                    forensics_->noteFree(ptr.addr(),
                                         {true, func->id(), cur});
                applyCost(cost);
                if (instrs_ + fi.rest > config_.maxInstructions) {
                    if (prof)
                        pflush(cur);
                    return execGeneral(func, frame, ret_bounds, depth,
                                       cur, fi.nextIp, saved_bounds);
                }
                SB_NEXT;
              }

              // --- terminators ---
              SB_CASE(Jmp)
                pre(fi);
                charge(1, CycleClass::Base);
                cur = fi.target0;
                goto block_done;
              SB_CASE(Br) {
                pre(fi);
                charge(1, CycleClass::Base);
                uint64_t cond =
                    (fi.flags & sb::kAReg) ? regs[fi.a] : fi.immA;
                cur = cond != 0 ? fi.target0 : fi.target1;
                goto block_done;
              }
              SB_CASE(FusedCmpBr) {
                pre(fi);
                charge(2, CycleClass::Base);
                uint64_t va =
                    (fi.flags & sb::kAReg) ? regs[fi.a] : fi.immA;
                uint64_t vb =
                    (fi.flags & sb::kBReg) ? regs[fi.b] : fi.immB;
                bool res = evalICmp(fi.sub, va, vb);
                regs[fi.dst] = res ? 1 : 0;
                bounds[fi.dst] = Bounds::cleared();
                sbCounters_.fusedExec++;
                cur = res ? fi.target0 : fi.target1;
                goto block_done;
              }
              SB_CASE(Ret) {
                pre(fi);
                charge(1, CycleClass::Base);
                if (saved_bounds) {
                    instrs_ += saved_bounds;
                    uint64_t reload_cycles =
                        config_.superscalar ? (saved_bounds + 1) / 2
                                            : saved_bounds;
                    cycles_ += reload_cycles;
                    chargeClass(CycleClass::BndLdSt, reload_cycles);
                    cBndLdSt_ += saved_bounds;
                    if (prof)
                        prof->addBndCycles(pfid, reload_cycles);
                }
                if (prof)
                    pflush(cur);
                bool areg = (fi.flags & sb::kAReg) != 0;
                if (ret_bounds)
                    *ret_bounds =
                        areg ? bounds[fi.a] : Bounds::cleared();
                if (fi.flags & sb::kMisc)
                    return 0;
                return areg ? regs[fi.a] : fi.immA;
              }
              SB_CASE(Trap)
                pre(fi);
                charge(1, CycleClass::Base);
                throw GuestTrap(
                    TrapKind::WorkloadAssert,
                    strfmt("%s code %llu", func->name().c_str(),
                           static_cast<unsigned long long>(fi.immA)));
            }
        }
      block_done:;
        if (prof) {
            pflush(pcur);
            if (prof->sampleDue(cycles_))
                profileSample(depth);
        }
    }
}

#undef fi
#undef SB_NEXT
#undef SB_CASE

uint64_t
Machine::execSuperblock(const Function *func, Frame &frame,
                        Bounds *ret_bounds, unsigned depth,
                        unsigned saved_bounds)
{
#if INFAT_SB_THREADED
    if (config_.threadedDispatch)
        return execSuperblockImpl<true>(func, frame, ret_bounds,
                                        depth, saved_bounds);
#endif
    return execSuperblockImpl<false>(func, frame, ret_bounds, depth,
                                     saved_bounds);
}

void
Machine::invalidateTieredCode(const char *reason)
{
    if (tier_ == nullptr)
        return;
    // Un-publish before freeing: once jitId drops back to kJitNone
    // and the chain entries are nulled, no dispatch loop, chained
    // terminator, or jitted call site can reach the stale units — the
    // emitted call convention bakes nothing cross-function (call
    // sites enter callees through the live jitEntries/jitId state),
    // so nulling these tables unlinks every call-site patch too. With
    // emitted frames live on the host stack (a jitted callee
    // triggered this deopt), TierController defers the actual free
    // until the last frame unwinds through the general engine
    // (jitGuestCall's deopt-unwind exit); until then compile()
    // returns kRetryLater so no new code lands in the doomed arena.
    for (const std::unique_ptr<sb::FunctionCode> &fc : sbCode_) {
        if (!fc)
            continue;
        for (const sb::Block &blk : fc->blocks) {
            blk.jitId = sb::kJitNone;
            blk.hotCount = 0;
        }
        // fill, not assign: emitted code bakes slot addresses, so the
        // storage must stay put for code compiled after the deopt.
        std::fill(fc->jitEntries.begin(), fc->jitEntries.end(),
                  nullptr);
    }
    tier_->invalidateAll();
    log_debug("tier: deoptimized jitted code (%s)", reason);
}

} // namespace infat
