#include "vm/machine.hh"

#include <bit>

#include "ifp/ops.hh"
#include "ir/printer.hh"
#include "oracle/oracle.hh"
#include "support/bitops.hh"
#include "support/logging.hh"
#include "support/profile.hh"
#include "vm/tier.hh"

namespace infat {

using namespace ir;

namespace {

double
asF64(uint64_t raw)
{
    return std::bit_cast<double>(raw);
}

uint64_t
fromF64(double v)
{
    return std::bit_cast<uint64_t>(v);
}

/** Canonicalize an integer result to sign-extended 64-bit form. */
uint64_t
intResult(const Type *type, uint64_t value)
{
    if (type && type->isInt()) {
        unsigned bits = static_cast<const IntType *>(type)->bits();
        if (bits < 64)
            return static_cast<uint64_t>(sext(value, bits));
    }
    return value;
}

/** Cycle-attribution class of an opcode's 1-cycle base cost. */
Machine::CycleClass
classOf(Opcode op)
{
    switch (op) {
      case Opcode::Load:
      case Opcode::Store:
        return Machine::CycleClass::Mem;
      case Opcode::Promote:
        return Machine::CycleClass::Promote;
      case Opcode::IfpAdd:
      case Opcode::IfpIdx:
      case Opcode::IfpBnd:
      case Opcode::IfpChk:
        return Machine::CycleClass::IfpArith;
      case Opcode::MallocTyped:
      case Opcode::FreePtr:
      case Opcode::IfpMallocTyped:
      case Opcode::IfpFree:
      case Opcode::RegisterObj:
      case Opcode::DeregisterObj:
        return Machine::CycleClass::Runtime;
      default:
        return Machine::CycleClass::Base;
    }
}

} // namespace

Machine::Machine(Module &module, const LayoutRegistry *layouts,
                 VmConfig config)
    : module_(module), layouts_(layouts), config_(config),
      l1d_("l1d", config.l1d), l2_("l2", config.l2), stats_("vm"),
      cLoads_(stats_.counter("loads")),
      cStores_(stats_.counter("stores")),
      cCalls_(stats_.counter("calls")),
      cImplicitChecks_(stats_.counter("implicit_checks")),
      cIfpArith_(stats_.counter("ifp_arith")),
      cBndLdSt_(stats_.counter("bnd_ldst")),
      cPromoteInstrs_(stats_.counter("promote_instrs")),
      sbStats_("vm.superblock"), sbCounters_(sbStats_)
{
    stats_.formula("cpi", [this] {
        return instrs_ == 0 ? 0.0
                            : static_cast<double>(cycles_) /
                                  static_cast<double>(instrs_);
    });
    stats_.formula("checks_per_kiloinstr", [this] {
        return instrs_ == 0
                   ? 0.0
                   : 1000.0 *
                         static_cast<double>(cImplicitChecks_.value()) /
                         static_cast<double>(instrs_);
    });
    tracer_.setClock(&cycles_);
    l1d_.setTracer(&tracer_);
    l2_.setTracer(&tracer_);
    if (config_.useL2)
        l1d_.setNextLevel(&l2_);
    promote_ = std::make_unique<PromoteEngine>(
        mem_, config_.useCache ? &l1d_ : nullptr, regs_, config_.ifp);
    runtime_ = std::make_unique<Runtime>(mem_, regs_, config_.allocator,
                                         config_.instrumented, config_.ifp);
    registry_.add(&stats_);
    registry_.add(&promote_->stats());
    registry_.add(&l1d_.stats());
    registry_.add(&l2_.stats());
    registry_.add(&runtime_->stats());
    registry_.add(&mem_.stats());
    registry_.add(&sbStats_);
    // Tier controller (vm/tier.hh): constructed unconditionally so
    // every run exposes the same stat-group set; compilation only
    // happens when the dispatch loop finds tier 2 live.
    tier_ = std::make_unique<TierController>();
    tier_->configure(config_.threadedDispatch,
                     config_.jit && jit::available(),
                     config_.jitThreshold);
    jit::MachineBinding bind;
    bind.instrs = &instrs_;
    bind.cycles = &cycles_;
    bind.classBase =
        &classCycles_[static_cast<size_t>(CycleClass::Base)];
    bind.classMem =
        &classCycles_[static_cast<size_t>(CycleClass::Mem)];
    bind.classIfp =
        &classCycles_[static_cast<size_t>(CycleClass::IfpArith)];
    bind.cLoads = cLoads_.cell();
    bind.cStores = cStores_.cell();
    bind.cImplicitChecks = cImplicitChecks_.cell();
    bind.cIfpArith = cIfpArith_.cell();
    bind.mem = &mem_;
    bind.l1d = &l1d_;
    bind.useCache = config_.useCache;
    bind.maxInstructions = config_.maxInstructions;
    bind.tierBlocksRun = tier_->blocksRunCell();
    bind.tierInlineRets = tier_->inlineRetsCell();
    bind.classBndLdSt =
        &classCycles_[static_cast<size_t>(CycleClass::BndLdSt)];
    bind.cBndLdSt = cBndLdSt_.cell();
    bind.classPromote =
        &classCycles_[static_cast<size_t>(CycleClass::Promote)];
    bind.sp = &sp_;
    bind.machine = this;
    bind.inlineCalls = config_.jitCalls;
    tier_->bind(bind);
    registry_.add(&tier_->stats());
    runtime_->init(layouts);
    if (config_.forensics)
        forensics_ = std::make_unique<TrapForensics>();
    placeGlobals();
    legacyArena_ = layout::globalBase + 0x0800'0000ULL;
}

void
Machine::syncStats()
{
    stats_.counter("instructions").set(instrs_);
    stats_.counter("cycles").set(cycles_);
    stats_.counter("cycles_base").set(classCycles(CycleClass::Base));
    stats_.counter("cycles_mem").set(classCycles(CycleClass::Mem));
    stats_.counter("cycles_bnd_ldst")
        .set(classCycles(CycleClass::BndLdSt));
    stats_.counter("cycles_promote")
        .set(classCycles(CycleClass::Promote));
    stats_.counter("cycles_ifp_arith")
        .set(classCycles(CycleClass::IfpArith));
    stats_.counter("cycles_runtime")
        .set(classCycles(CycleClass::Runtime));
    stats_.counter("heap_peak_bytes").set(runtime_->heapPeakFootprint());
}

Machine::~Machine() = default;

void
Machine::registerNative(const std::string &name, NativeFn fn)
{
    natives_[name] = std::move(fn);
}

GuestAddr
Machine::legacyArenaAlloc(uint64_t size, uint64_t align)
{
    legacyArena_ = roundUp(legacyArena_, align);
    GuestAddr addr = legacyArena_;
    legacyArena_ += size;
    fatal_if(legacyArena_ > layout::globalLimit, "legacy arena exhausted");
    return addr;
}

GuestAddr
Machine::globalAddr(GlobalId id) const
{
    return globalAddrs_.at(id);
}

void
Machine::placeGlobals()
{
    GuestAddr cursor = layout::globalBase;
    globalAddrs_.clear();
    globalPtrRaw_.clear();
    for (Global &global : module_.globals()) {
        uint64_t size = global.type->size();
        cursor = roundUp(cursor, 16);
        uint64_t slot = (global.instrumented && config_.instrumented)
                            ? Runtime::paddedSlotSize(size)
                            : std::max<uint64_t>(size, 1);
        fatal_if(cursor + slot > layout::globalBase + 0x0800'0000ULL,
                 "global region exhausted");
        globalAddrs_.push_back(cursor);
        globalPtrRaw_.push_back(cursor);
        if (!global.init.empty())
            mem_.write(cursor, global.init.data(),
                       std::min<uint64_t>(global.init.size(), size));
        cursor += slot;
    }
    registerGlobals();
}

void
Machine::registerGlobals()
{
    if (!config_.instrumented)
        return;
    for (const Global &global : module_.globals()) {
        if (!global.instrumented)
            continue;
        // The paper's lazy "getptr" registration collapses to startup
        // registration here; the cost is charged once.
        ir::LayoutId layout_id =
            layouts_ ? layouts_->find(global.type) : ir::noLayout;
        RuntimeCost cost;
        IfpAllocation alloc = runtime_->registerObject(
            globalAddrs_[global.id], global.type->size(), layout_id,
            cost);
        globalPtrRaw_[global.id] = alloc.ptr.raw();
        if (forensics_)
            forensics_->noteAlloc(globalAddrs_[global.id],
                                  global.type->size(),
                                  AllocKind::Global, {});
        applyCost(cost);
        stats_.counter("global_objects_registered")++;
        if (layout_id != ir::noLayout)
            stats_.counter("global_objects_with_layout")++;
    }
}

void
Machine::setOracle(oracle::ShadowOracle *oracle)
{
    oracle_ = oracle;
    if (!oracle_)
        return;
    registry_.add(&oracle_->stats());
    if (!config_.instrumented)
        return;
    // Globals were registered with the runtime in the constructor;
    // give the oracle the same ground truth. Uninstrumented globals
    // carry no IFP bounds, so the oracle abstains on them too.
    for (const Global &global : module_.globals()) {
        if (!global.instrumented)
            continue;
        oracle_->noteGlobal(
            static_cast<uint32_t>(global.id),
            oracle_->registerObject(globalAddrs_[global.id],
                                    global.type->size(),
                                    oracle::ObjectKind::Global));
    }
}

void
Machine::chargeMemAccess(GuestAddr addr, uint32_t bytes, bool write)
{
    if (config_.useCache) {
        uint64_t extra = l1d_.access(addr, bytes, write).latency - 1;
        cycles_ += extra;
        chargeClass(CycleClass::Mem, extra);
    }
}

void
Machine::applyCost(const RuntimeCost &cost)
{
    instrs_ += cost.instructions;
    cycles_ += cost.instructions;
    chargeClass(CycleClass::Runtime, cost.instructions);
    if (config_.superscalar) {
        // Metadata-maintenance arithmetic dual-issues with the
        // allocator's own work on a wide core.
        cycles_ -= cost.ifpInstructions / 2;
        classCycles_[static_cast<size_t>(CycleClass::Runtime)] -=
            cost.ifpInstructions / 2;
    }
    cIfpArith_ += cost.ifpInstructions;
    for (const auto &access : cost.accesses)
        chargeMemAccess(access.addr, access.bytes, access.write);
}

void
Machine::countInstr(ir::Opcode op)
{
    ++instrs_;
    ++cycles_;
    chargeClass(classOf(op), 1);
    if (instrs_ > config_.maxInstructions)
        throw GuestTrap(TrapKind::InstructionLimit,
                        "dynamic instruction budget exceeded");
}

uint64_t
Machine::run(const std::string &entry, const std::vector<uint64_t> &args)
{
    Function *func = module_.functionByName(entry);
    fatal_if(func == nullptr, "entry function %s not found",
             entry.c_str());
    sp_ = layout::stackBase;
    std::vector<Bounds> arg_bounds(args.size(), Bounds::cleared());
    try {
        return callFunction(func, args, arg_bounds, nullptr, 0);
    } catch (GuestTrap &trap) {
        // Attach the forensics report before the trap escapes; the
        // frame pool still holds the faulting call chain. Host-side
        // only: what() and every simulated count are untouched.
        trap.attachReport(buildTrapReport(trap));
        throw;
    }
}

void
Machine::profileNoteFunction(const ir::Function *func)
{
    if (prof_->knowsFunction(func->id()))
        return;
    std::vector<std::string> block_names;
    block_names.reserve(func->numBlocks());
    for (size_t b = 0; b < func->numBlocks(); ++b)
        block_names.push_back(
            func->block(static_cast<BlockId>(b)).name);
    prof_->noteFunction(func->id(), func->name(),
                        std::move(block_names));
}

void
Machine::profileSample(unsigned depth)
{
    sampleStack_.clear();
    for (unsigned d = 0; d <= depth && d < framePool_.size(); ++d) {
        const Frame *f = framePool_[d].get();
        if (f == nullptr || f->func == nullptr)
            break;
        sampleStack_.push_back(f->func->id());
    }
    prof_->addSample(sampleStack_, cycles_, instrs_,
                     cImplicitChecks_.value());
}

uint64_t
Machine::evalOperand(const Frame &frame, const Operand &operand)
{
    switch (operand.kind) {
      case Operand::Kind::Reg:
        return frame.regs[operand.payload];
      case Operand::Kind::ImmInt:
      case Operand::Kind::ImmF64:
        return operand.payload;
      case Operand::Kind::Global:
        return globalPtrRaw_[operand.payload];
      case Operand::Kind::FuncAddr:
        return operand.payload;
      case Operand::Kind::None:
        // Legitimate None operands (a void return's value) are handled
        // before evaluation; reaching here means a decoder/builder bug
        // that would otherwise silently read as a zero operand.
#ifndef NDEBUG
        panic("evalOperand: None operand in %s",
              frame.func ? frame.func->name().c_str() : "?");
#else
        return 0;
#endif
    }
#ifndef NDEBUG
    panic("evalOperand: invalid operand kind %u",
          static_cast<unsigned>(operand.kind));
#else
    return 0;
#endif
}

const Bounds &
Machine::operandBounds(const Frame &frame, const Operand &operand)
{
    static const Bounds cleared = Bounds::cleared();
    if (operand.isReg())
        return frame.bounds[operand.payload];
    return cleared;
}

oracle::Prov
Machine::operandProv(const Frame &frame, const Operand &operand)
{
    if (!oracle_)
        return {};
    if (operand.isReg())
        return oracle_->frameRegs(frame.depth)[operand.payload];
    if (operand.kind == Operand::Kind::Global)
        return oracle_->globalProv(
            static_cast<uint32_t>(operand.payload));
    return {};
}

void
Machine::checkAccess(const Frame &frame, const Operand &addr_op,
                     uint64_t raw, uint64_t size, bool write)
{
    TaggedPtr ptr(raw);
    if (oracle_) {
        // Predict the verdict of the checks below (same predicates,
        // same order) and diff it against the oracle's ground truth
        // before any of them can throw.
        bool traps =
            ptr.isPoisoned() || ptr.addr() < GuestMemory::pageSize;
        if (!traps && addr_op.isReg() && config_.implicitChecks) {
            const Bounds &b = frame.bounds[addr_op.payload];
            traps = b.valid() && !b.contains(ptr.addr(), size);
        }
        oracle_->check(operandProv(frame, addr_op), ptr.addr(), size,
                       write, traps,
                       ptr.poison() == Poison::TemporalStale);
    }
    const Bounds *fault_bounds =
        addr_op.isReg() ? &frame.bounds[addr_op.payload] : nullptr;
    if (ptr.isPoisoned()) {
        if (tracer_.enabled(TraceCategory::Check)) {
            tracer_.instant(TraceCategory::Check, "poisoned_access",
                            {{"raw", raw},
                             {"write", uint64_t{write}}});
        }
        noteFault(raw, size, write, fault_bounds);
        throw GuestTrap(poisonTrapKind(ptr.poison()),
                        poisonedAccessDetail(ptr, write));
    }
    GuestAddr addr = ptr.addr();
    if (addr < GuestMemory::pageSize) {
        if (tracer_.enabled(TraceCategory::Check)) {
            tracer_.instant(TraceCategory::Check, "null_deref",
                            {{"addr", addr},
                             {"write", uint64_t{write}}});
        }
        noteFault(raw, size, write, fault_bounds);
        throw GuestTrap(TrapKind::NullDereference,
                        nullDerefDetail(addr));
    }
    if (addr_op.isReg() && config_.implicitChecks) {
        // Implicit bounds check at dereference (paper §4.1.1).
        const Bounds &bounds = frame.bounds[addr_op.payload];
        if (bounds.valid()) {
            cImplicitChecks_++;
            bool ok = bounds.contains(addr, size);
            if (tracer_.enabled(TraceCategory::Check)) {
                tracer_.instant(TraceCategory::Check,
                                ok ? "bounds_check"
                                   : "bounds_violation",
                                {{"addr", addr},
                                 {"bytes", size},
                                 {"write", uint64_t{write}}});
            }
            if (!ok) {
                noteFault(raw, size, write, &bounds);
                throw GuestTrap(
                    TrapKind::BoundsViolation,
                    boundsViolationDetail(addr, size, bounds, write));
            }
        }
    }
    if (config_.useCache) {
        uint64_t extra = l1d_.access(addr, size, write).latency - 1;
        cycles_ += extra;
        chargeClass(CycleClass::Mem, extra);
    }
}

uint64_t
Machine::callFunction(const Function *func,
                      const std::vector<uint64_t> &args,
                      const std::vector<Bounds> &arg_bounds,
                      Bounds *ret_bounds, unsigned depth)
{
    if (depth > config_.maxCallDepth)
        throw GuestTrap(TrapKind::StackOverflow, "call depth");
    if (func->isNative()) {
        auto it = natives_.find(func->name());
        fatal_if(it == natives_.end(), "native %s has no host handler",
                 func->name().c_str());
        if (oracle_)
            oracle_->clearCallState();
        uint64_t ret = it->second(*this, args);
        if (ret_bounds)
            *ret_bounds = Bounds::cleared();
        return ret;
    }

    // Frames come from a depth-indexed pool: calls nest strictly, so
    // slot `depth` is free here, and assign() below reuses the
    // capacity its vectors grew on earlier calls at this depth.
    if (framePool_.size() <= depth)
        framePool_.resize(depth + 1);
    if (!framePool_[depth])
        framePool_[depth] = std::make_unique<Frame>();
    Frame &frame = *framePool_[depth];
    frame.func = func;
    frame.depth = depth;
    frame.regs.assign(func->numRegs(), 0);
    frame.bounds.assign(func->numRegs(), Bounds::cleared());
    if (oracle_)
        oracle_->enterFrame(depth, func->numRegs());
    for (size_t i = 0; i < args.size() && i < func->numParams(); ++i) {
        frame.regs[i] = args[i];
        if (i < arg_bounds.size())
            frame.bounds[i] = arg_bounds[i];
    }

    GuestAddr saved_sp = sp_;
    curDepth_ = depth;
    uint64_t ret = execFunction(func, frame, ret_bounds, depth);
    // On normal return control is back in the caller's frame; on a
    // trap the throw skips this and curDepth_ stays frozen at the
    // faulting depth for buildTrapReport's stack walk.
    curDepth_ = depth == 0 ? 0 : depth - 1;
    sp_ = saved_sp;
    if (oracle_)
        oracle_->unwindStack(saved_sp);
    return ret;
}

// ---------------------------------------------------------------------
// JIT runtime entries: the emitted guest-call convention. These mirror
// the superblock interpreter's Call/CallPtr handling (doCall in
// superblock.cc) effect for effect — same counter order, same trap
// order, same budget replay — with one host-side difference: arguments
// marshal straight into the pooled callee frame instead of bouncing
// through the depth-indexed ArgScratch, which removes a copy from
// every one of the suite's ~16M guest calls. The oracle, tracer, and
// profiler all force the general engine, so they are never attached
// on this path.
// ---------------------------------------------------------------------

uint64_t
Machine::jitGuestCall(const sb::Record &rec) noexcept
{
    // The emitted caller is always the innermost live activation.
    const unsigned depth = curDepth_;
    Frame &frame = *framePool_[depth];
    try {
        const Function *callee;
        bool pass_bounds;
        if (rec.op == sb::Op::Call) {
            callee = rec.callee;
            pass_bounds = (rec.flags & sb::kPassBounds) != 0;
        } else {
            uint64_t fid = (rec.flags & sb::kAReg) ? frame.regs[rec.a]
                                                   : rec.immA;
            if (fid >= module_.numFunctions())
                throw GuestTrap(
                    TrapKind::BadIndirectCall,
                    strfmt("index %llu",
                           static_cast<unsigned long long>(fid)));
            callee = module_.function(static_cast<FuncId>(fid));
            pass_bounds = (rec.flags & sb::kPassBounds) &&
                          callee->isInstrumented();
        }
        tier_->noteInlineCall();

        if (callee->isNative()) {
            // Natives take the interpreter's exact path (ArgScratch +
            // callFunction); they are host handlers, not guest code.
            ArgScratch &scratch = argScratch(depth);
            scratch.args.clear();
            scratch.bounds.clear();
            for (const Operand &arg : rec.orig->args) {
                scratch.args.push_back(evalOperand(frame, arg));
                scratch.bounds.push_back(
                    pass_bounds ? operandBounds(frame, arg)
                                : Bounds::cleared());
            }
            cCalls_++;
            Bounds ret_b = Bounds::cleared();
            uint64_t ret = callFunction(callee, scratch.args,
                                        scratch.bounds, &ret_b,
                                        depth + 1);
            if (rec.dst != noReg) {
                frame.regs[rec.dst] = ret;
                frame.bounds[rec.dst] =
                    pass_bounds ? ret_b : Bounds::cleared();
            }
        } else {
            cCalls_++;
            const unsigned cdepth = depth + 1;
            if (cdepth > config_.maxCallDepth)
                throw GuestTrap(TrapKind::StackOverflow, "call depth");
            if (framePool_.size() <= cdepth)
                framePool_.resize(cdepth + 1);
            if (!framePool_[cdepth])
                framePool_[cdepth] = std::make_unique<Frame>();
            Frame &cf = *framePool_[cdepth];
            cf.func = callee;
            cf.depth = cdepth;
            cf.regs.assign(callee->numRegs(), 0);
            cf.bounds.assign(callee->numRegs(), Bounds::cleared());
            const size_t nparams = callee->numParams();
            size_t i = 0;
            for (const Operand &arg : rec.orig->args) {
                if (i >= nparams)
                    break;
                cf.regs[i] = evalOperand(frame, arg);
                if (pass_bounds)
                    cf.bounds[i] = operandBounds(frame, arg);
                ++i;
            }
            GuestAddr saved_sp = sp_;
            curDepth_ = cdepth;
            Bounds ret_b = Bounds::cleared();
            // execFunction runs the callee through the normal tiered
            // machinery: its hot blocks promote (on first miss) and
            // execute their own jitted code.
            uint64_t ret = execFunction(callee, cf, &ret_b, cdepth);
            curDepth_ = depth;
            sp_ = saved_sp;
            if (rec.dst != noReg) {
                frame.regs[rec.dst] = ret;
                frame.bounds[rec.dst] =
                    pass_bounds ? ret_b : Bounds::cleared();
            }
        }
    } catch (const GuestTrap &trap) {
        // A C++ exception must not unwind through the emitted caller
        // frame (no unwind tables). Park the trap and let the emitted
        // code exit through its kExitTrapBit stub; the dispatch loop
        // rethrows, and each enclosing jitted activation re-parks and
        // rethrows in turn. curDepth_/sp_ stay frozen at the trap
        // site, exactly like an interpreter throw, so the forensics
        // stack walk sees the same frames.
        pendingTrap_ = std::make_unique<GuestTrap>(trap);
        tier_->noteCallTrapUnwind();
        return jit::kCallTrapPending;
    }
    if (tier_->deoptUnwindPending()) {
        // A deopt inside the callee: every live emitted frame must
        // leave its (now stale) code. Replaying the rest of this
        // activation on the general engine is exact and jit-free.
        tier_->noteCallDeoptExit();
        return jit::kCallResumeGeneral;
    }
    if (instrs_ + rec.rest > config_.maxInstructions) {
        // Post-call budget replay, as the interpreter's Call case
        // does it: the rest of the block could cross the instruction
        // limit, so it must run on the general engine for an
        // exact-instruction InstructionLimit trap.
        tier_->noteCallBudgetExit();
        return jit::kCallResumeGeneral;
    }
    return jit::kCallOk;
}

uint64_t
Machine::jitPromote(uint64_t raw, Bounds *out)
{
    // Mirrors the interpreter's Promote case. The record's 1-cycle
    // base charge is in the emitted prefix sums (Promote class); only
    // the engine's extra cycles land here.
    PromoteResult result = promote_->promote(TaggedPtr(raw));
    *out = result.bounds;
    uint64_t extra = result.cycles > 0 ? result.cycles - 1 : 0;
    cycles_ += extra;
    chargeClass(CycleClass::Promote, extra);
    cPromoteInstrs_++;
    return result.ptr.raw();
}

void
Machine::rethrowPendingTrap()
{
    fatal_if(!pendingTrap_, "kExitTrapBit exit with no pending trap");
    GuestTrap trap = *pendingTrap_;
    pendingTrap_.reset();
    throw trap;
}

namespace jit {

uint64_t
guestCallRuntime(Machine *m, const sb::Record *rec)
{
    return m->jitGuestCall(*rec);
}

uint64_t
promoteRuntime(Machine *m, uint64_t raw, Bounds *out_bounds)
{
    return m->jitPromote(raw, out_bounds);
}

} // namespace jit

const sb::FunctionCode &
Machine::sbCode(const ir::Function *func)
{
    if (sbCode_.size() <= func->id())
        sbCode_.resize(module_.numFunctions());
    std::unique_ptr<sb::FunctionCode> &slot = sbCode_[func->id()];
    if (!slot) {
        sb::PredecodeOptions opts;
        opts.fuse = config_.superblockFusion;
        opts.checkElim = config_.superblockCheckElim;
        opts.implicitChecks = config_.implicitChecks;
        opts.superscalar = config_.superscalar;
        opts.instrumented = config_.instrumented;
        opts.nullGuard = GuestMemory::pageSize;
        opts.globalPtrRaw = &globalPtrRaw_;
        opts.module = &module_;
        slot = std::make_unique<sb::FunctionCode>(
            sb::predecode(*func, opts, sbCounters_));
    }
    return *slot;
}

uint64_t
Machine::execFunction(const Function *func, Frame &frame,
                      Bounds *ret_bounds, unsigned depth)
{
    // Callee-saved bounds registers: stbnd on entry, ldbnd at return
    // (paper §4.1.2).
    unsigned saved_bounds = 0;
    if (config_.instrumented && func->isInstrumented())
        saved_bounds = func->savedBoundsRegs();
    if (saved_bounds) {
        instrs_ += saved_bounds;
        // stbnd spills dual-issue with the regular prologue stores on
        // a superscalar core.
        uint64_t spill_cycles = config_.superscalar
                                    ? (saved_bounds + 1) / 2
                                    : saved_bounds;
        cycles_ += spill_cycles;
        chargeClass(CycleClass::BndLdSt, spill_cycles);
        cBndLdSt_ += saved_bounds;
        if (prof_)
            prof_->addBndCycles(func->id(), spill_cycles);
    }
    if (prof_) {
        profileNoteFunction(func);
        prof_->countCall(func->id());
    }

    // Engine selection, once per activation — a sink cannot appear
    // mid-run. The superblock engine skips every trace site and has no
    // oracle hooks, so any attached sink or oracle routes the whole
    // activation through the general path.
    if (config_.superblocks && !tracer_.active() && oracle_ == nullptr)
        return execSuperblock(func, frame, ret_bounds, depth,
                              saved_bounds);
    return execGeneral(func, frame, ret_bounds, depth, 0, 0,
                       saved_bounds);
}

uint64_t
Machine::execGeneral(const Function *func, Frame &frame,
                     Bounds *ret_bounds, unsigned depth,
                     BlockId start_block, size_t start_ip,
                     unsigned saved_bounds)
{
    BlockId cur = start_block;
    size_t ip = start_ip;
    auto &regs = frame.regs;
    auto &bounds = frame.bounds;

    // Per-register provenance for this frame, mirroring the bounds
    // registers case by case (null when no oracle is attached). The
    // pointer stays valid across nested calls: frames_ reallocation
    // moves the inner vectors without touching their heap buffers.
    oracle::Prov *prov =
        oracle_ ? oracle_->frameRegs(depth) : nullptr;
    const Instr *code = func->block(cur).instrs.data();
    frame.curBlock = cur;

    // Profiler attribution state (host-side only). Deltas since the
    // last flush are the current block's *self* cost: flushed at block
    // changes, and re-snapshotted around calls so callee time lands in
    // the callee's own blocks. A mid-block superblock bailout enters
    // here with start_ip != 0; the superblock engine flushed and
    // counted the block entry already.
    GuestProfiler *const prof = prof_;
    const uint32_t fid = func->id();
    uint64_t pb_cycles = cycles_;
    uint64_t pb_instrs = instrs_;
    auto pflush = [&](BlockId block) {
        prof->addBlock(fid, block, cycles_ - pb_cycles,
                       instrs_ - pb_instrs);
        pb_cycles = cycles_;
        pb_instrs = instrs_;
    };
    if (prof && start_ip == 0)
        prof->countBlockEntry(fid, cur);

    while (true) {
        const Instr &instr = code[ip];
        ++ip;
        countInstr(instr.op);
        if (tracer_.enabled(TraceCategory::Exec)) {
            tracer_.instant(TraceCategory::Exec,
                            ir::toString(instr.op),
                            {{"fn", func->name()},
                             {"block", static_cast<uint64_t>(cur)},
                             {"ip", static_cast<uint64_t>(ip - 1)},
                             {"text", ir::print(instr, module_)}});
        }

        switch (instr.op) {
          case Opcode::Mov: {
            regs[instr.dst] = evalOperand(frame, instr.a);
            bounds[instr.dst] = operandBounds(frame, instr.a);
            if (prov)
                prov[instr.dst] = operandProv(frame, instr.a);
            break;
          }
          case Opcode::Add:
            regs[instr.dst] = intResult(
                instr.type, evalOperand(frame, instr.a) +
                                evalOperand(frame, instr.b));
            bounds[instr.dst] = Bounds::cleared();
            if (prov)
                prov[instr.dst] = oracle::Prov{};
            break;
          case Opcode::Sub:
            regs[instr.dst] = intResult(
                instr.type, evalOperand(frame, instr.a) -
                                evalOperand(frame, instr.b));
            bounds[instr.dst] = Bounds::cleared();
            if (prov)
                prov[instr.dst] = oracle::Prov{};
            break;
          case Opcode::Mul:
            regs[instr.dst] = intResult(
                instr.type, evalOperand(frame, instr.a) *
                                evalOperand(frame, instr.b));
            bounds[instr.dst] = Bounds::cleared();
            if (prov)
                prov[instr.dst] = oracle::Prov{};
            break;
          case Opcode::SDiv:
          case Opcode::SRem: {
            auto lhs = static_cast<int64_t>(evalOperand(frame, instr.a));
            auto rhs = static_cast<int64_t>(evalOperand(frame, instr.b));
            if (rhs == 0)
                throw GuestTrap(TrapKind::DivisionByZero,
                                func->name());
            int64_t res;
            if (lhs == INT64_MIN && rhs == -1)
                res = instr.op == Opcode::SDiv ? lhs : 0;
            else
                res = instr.op == Opcode::SDiv ? lhs / rhs : lhs % rhs;
            regs[instr.dst] =
                intResult(instr.type, static_cast<uint64_t>(res));
            bounds[instr.dst] = Bounds::cleared();
            if (prov)
                prov[instr.dst] = oracle::Prov{};
            break;
          }
          case Opcode::UDiv:
          case Opcode::URem: {
            uint64_t lhs = evalOperand(frame, instr.a);
            uint64_t rhs = evalOperand(frame, instr.b);
            if (rhs == 0)
                throw GuestTrap(TrapKind::DivisionByZero,
                                func->name());
            regs[instr.dst] = intResult(
                instr.type,
                instr.op == Opcode::UDiv ? lhs / rhs : lhs % rhs);
            bounds[instr.dst] = Bounds::cleared();
            if (prov)
                prov[instr.dst] = oracle::Prov{};
            break;
          }
          case Opcode::And:
            regs[instr.dst] = evalOperand(frame, instr.a) &
                              evalOperand(frame, instr.b);
            bounds[instr.dst] = Bounds::cleared();
            if (prov)
                prov[instr.dst] = oracle::Prov{};
            break;
          case Opcode::Or:
            regs[instr.dst] = evalOperand(frame, instr.a) |
                              evalOperand(frame, instr.b);
            bounds[instr.dst] = Bounds::cleared();
            if (prov)
                prov[instr.dst] = oracle::Prov{};
            break;
          case Opcode::Xor:
            regs[instr.dst] = evalOperand(frame, instr.a) ^
                              evalOperand(frame, instr.b);
            bounds[instr.dst] = Bounds::cleared();
            if (prov)
                prov[instr.dst] = oracle::Prov{};
            break;
          case Opcode::Shl:
            regs[instr.dst] = intResult(
                instr.type, evalOperand(frame, instr.a)
                                << (evalOperand(frame, instr.b) & 63));
            bounds[instr.dst] = Bounds::cleared();
            if (prov)
                prov[instr.dst] = oracle::Prov{};
            break;
          case Opcode::LShr: {
            uint64_t val = evalOperand(frame, instr.a);
            if (instr.type && instr.type->isInt()) {
                unsigned width =
                    static_cast<const IntType *>(instr.type)->bits();
                val &= mask(width);
            }
            regs[instr.dst] = intResult(
                instr.type, val >> (evalOperand(frame, instr.b) & 63));
            bounds[instr.dst] = Bounds::cleared();
            if (prov)
                prov[instr.dst] = oracle::Prov{};
            break;
          }
          case Opcode::AShr:
            regs[instr.dst] = intResult(
                instr.type,
                static_cast<uint64_t>(
                    static_cast<int64_t>(evalOperand(frame, instr.a)) >>
                    (evalOperand(frame, instr.b) & 63)));
            bounds[instr.dst] = Bounds::cleared();
            if (prov)
                prov[instr.dst] = oracle::Prov{};
            break;
          case Opcode::ICmp: {
            uint64_t ua = evalOperand(frame, instr.a);
            uint64_t ub = evalOperand(frame, instr.b);
            auto sa = static_cast<int64_t>(ua);
            auto sb = static_cast<int64_t>(ub);
            bool res = false;
            switch (instr.icmp) {
              case ICmpPred::Eq: res = ua == ub; break;
              case ICmpPred::Ne: res = ua != ub; break;
              case ICmpPred::Slt: res = sa < sb; break;
              case ICmpPred::Sle: res = sa <= sb; break;
              case ICmpPred::Sgt: res = sa > sb; break;
              case ICmpPred::Sge: res = sa >= sb; break;
              case ICmpPred::Ult: res = ua < ub; break;
              case ICmpPred::Ule: res = ua <= ub; break;
              case ICmpPred::Ugt: res = ua > ub; break;
              case ICmpPred::Uge: res = ua >= ub; break;
            }
            regs[instr.dst] = res ? 1 : 0;
            bounds[instr.dst] = Bounds::cleared();
            if (prov)
                prov[instr.dst] = oracle::Prov{};
            break;
          }
          case Opcode::FAdd:
            regs[instr.dst] = fromF64(asF64(evalOperand(frame, instr.a)) +
                                      asF64(evalOperand(frame, instr.b)));
            break;
          case Opcode::FSub:
            regs[instr.dst] = fromF64(asF64(evalOperand(frame, instr.a)) -
                                      asF64(evalOperand(frame, instr.b)));
            break;
          case Opcode::FMul:
            regs[instr.dst] = fromF64(asF64(evalOperand(frame, instr.a)) *
                                      asF64(evalOperand(frame, instr.b)));
            break;
          case Opcode::FDiv:
            regs[instr.dst] = fromF64(asF64(evalOperand(frame, instr.a)) /
                                      asF64(evalOperand(frame, instr.b)));
            break;
          case Opcode::FNeg:
            regs[instr.dst] =
                fromF64(-asF64(evalOperand(frame, instr.a)));
            break;
          case Opcode::FCmp: {
            double fa = asF64(evalOperand(frame, instr.a));
            double fb = asF64(evalOperand(frame, instr.b));
            bool res = false;
            switch (instr.fcmp) {
              case FCmpPred::Eq: res = fa == fb; break;
              case FCmpPred::Ne: res = fa != fb; break;
              case FCmpPred::Lt: res = fa < fb; break;
              case FCmpPred::Le: res = fa <= fb; break;
              case FCmpPred::Gt: res = fa > fb; break;
              case FCmpPred::Ge: res = fa >= fb; break;
            }
            regs[instr.dst] = res ? 1 : 0;
            break;
          }
          case Opcode::SIToFP:
            regs[instr.dst] = fromF64(static_cast<double>(
                static_cast<int64_t>(evalOperand(frame, instr.a))));
            break;
          case Opcode::FPToSI:
            regs[instr.dst] = static_cast<uint64_t>(static_cast<int64_t>(
                asF64(evalOperand(frame, instr.a))));
            break;
          case Opcode::SExt:
            regs[instr.dst] = static_cast<uint64_t>(sext(
                evalOperand(frame, instr.a),
                static_cast<unsigned>(instr.imm0)));
            break;
          case Opcode::ZExt:
            regs[instr.dst] = evalOperand(frame, instr.a) &
                              mask(static_cast<unsigned>(instr.imm0));
            break;
          case Opcode::Trunc:
            regs[instr.dst] =
                intResult(instr.type, evalOperand(frame, instr.a));
            break;
          case Opcode::Select: {
            bool cond = evalOperand(frame, instr.a) != 0;
            const Operand &pick = cond ? instr.b : instr.c;
            regs[instr.dst] = evalOperand(frame, pick);
            bounds[instr.dst] = operandBounds(frame, pick);
            if (prov)
                prov[instr.dst] = operandProv(frame, pick);
            break;
          }
          case Opcode::Load: {
            uint64_t raw = evalOperand(frame, instr.a);
            uint64_t size = instr.type->size();
            if (prof) {
                // Check-site attribution: 1 base cycle + the cache
                // latency checkAccess charges; checks evaluated is the
                // implicit-check counter delta. Same definition as the
                // superblock engine's access hook.
                uint64_t c0 = cycles_;
                uint64_t k0 = cImplicitChecks_.value();
                checkAccess(frame, instr.a, raw, size, false);
                prof->countCheckSite(fid, cur,
                                     static_cast<uint32_t>(ip - 1),
                                     cycles_ - c0 + 1,
                                     cImplicitChecks_.value() - k0, 0);
            } else {
                checkAccess(frame, instr.a, raw, size, false);
            }
            GuestAddr addr = layout::canonical(raw);
            uint64_t value = 0;
            switch (size) {
              case 1: value = mem_.load<uint8_t>(addr); break;
              case 2: value = mem_.load<uint16_t>(addr); break;
              case 4: value = mem_.load<uint32_t>(addr); break;
              default: value = mem_.load<uint64_t>(addr); break;
            }
            if (instr.type->isInt())
                value = intResult(instr.type, value);
            regs[instr.dst] = value;
            bounds[instr.dst] = Bounds::cleared();
            if (prov) {
                prov[instr.dst] =
                    size == 8 ? oracle_->loadProv(addr, value)
                              : oracle::Prov{};
            }
            cLoads_++;
            break;
          }
          case Opcode::Store: {
            uint64_t value = evalOperand(frame, instr.a);
            uint64_t raw = evalOperand(frame, instr.b);
            uint64_t size = instr.type->size();
            if (prof) {
                uint64_t c0 = cycles_;
                uint64_t k0 = cImplicitChecks_.value();
                checkAccess(frame, instr.b, raw, size, true);
                prof->countCheckSite(fid, cur,
                                     static_cast<uint32_t>(ip - 1),
                                     cycles_ - c0 + 1,
                                     cImplicitChecks_.value() - k0, 0);
            } else {
                checkAccess(frame, instr.b, raw, size, true);
            }
            GuestAddr addr = layout::canonical(raw);
            switch (size) {
              case 1:
                mem_.store<uint8_t>(addr, static_cast<uint8_t>(value));
                break;
              case 2:
                mem_.store<uint16_t>(addr, static_cast<uint16_t>(value));
                break;
              case 4:
                mem_.store<uint32_t>(addr, static_cast<uint32_t>(value));
                break;
              default:
                mem_.store<uint64_t>(addr, value);
                break;
            }
            cStores_++;
            if (oracle_) {
                if (size == 8)
                    oracle_->recordStore(addr, value,
                                         operandProv(frame, instr.a));
                else
                    oracle_->clobberStore(addr);
            }
            break;
          }
          case Opcode::Alloca: {
            uint64_t size = instr.type->size() * instr.imm0;
            uint64_t slot =
                (instr.imm1 && config_.instrumented)
                    ? Runtime::paddedSlotSize(size)
                    : std::max<uint64_t>(roundUp(size, 16), 16);
            sp_ = roundDown(sp_ - slot, 16);
            if (sp_ < layout::stackLimit)
                throw GuestTrap(TrapKind::StackOverflow, func->name());
            regs[instr.dst] = sp_;
            bounds[instr.dst] = Bounds::cleared();
            if (prov) {
                // Only registered (escaping) allocas carry IFP bounds;
                // the oracle mirrors that claim and abstains on the
                // rest rather than flagging accesses the defense never
                // promised to check.
                prov[instr.dst] =
                    (instr.imm1 && config_.instrumented)
                        ? oracle_->registerObject(
                              sp_, size, oracle::ObjectKind::Stack)
                        : oracle::Prov{};
            }
            break;
          }
          case Opcode::GepField: {
            const auto *st = static_cast<const StructType *>(instr.type);
            regs[instr.dst] =
                evalOperand(frame, instr.a) +
                st->fieldOffset(static_cast<size_t>(instr.imm0));
            bounds[instr.dst] = operandBounds(frame, instr.a);
            if (prov)
                prov[instr.dst] = operandProv(frame, instr.a);
            break;
          }
          case Opcode::GepIndex: {
            uint64_t elem_size = instr.type->size();
            uint64_t index = evalOperand(frame, instr.b);
            regs[instr.dst] =
                evalOperand(frame, instr.a) + index * elem_size;
            bounds[instr.dst] = operandBounds(frame, instr.a);
            if (prov)
                prov[instr.dst] = operandProv(frame, instr.a);
            if (instr.b.isReg() && elem_size > 1) {
                // Address computation is mul + add at machine level.
                ++instrs_;
                ++cycles_;
                chargeClass(CycleClass::Base, 1);
            }
            break;
          }
          case Opcode::Jmp:
            if (prof) {
                pflush(cur);
                if (prof->sampleDue(cycles_))
                    profileSample(depth);
            }
            cur = instr.target0;
            ip = 0;
            code = func->block(cur).instrs.data();
            frame.curBlock = cur;
            if (prof)
                prof->countBlockEntry(fid, cur);
            break;
          case Opcode::Br:
            if (prof) {
                pflush(cur);
                if (prof->sampleDue(cycles_))
                    profileSample(depth);
            }
            cur = evalOperand(frame, instr.a) != 0 ? instr.target0
                                                   : instr.target1;
            ip = 0;
            code = func->block(cur).instrs.data();
            frame.curBlock = cur;
            if (prof)
                prof->countBlockEntry(fid, cur);
            break;
          case Opcode::Call:
          case Opcode::CallPtr: {
            const Function *callee;
            if (instr.op == Opcode::Call) {
                callee = module_.function(instr.callee);
            } else {
                uint64_t fid = evalOperand(frame, instr.a);
                if (fid >= module_.numFunctions())
                    throw GuestTrap(TrapKind::BadIndirectCall,
                                    strfmt("index %llu",
                                           static_cast<unsigned long long>(
                                               fid)));
                callee = module_.function(static_cast<FuncId>(fid));
            }
            ArgScratch &scratch = argScratch(depth);
            std::vector<uint64_t> &call_args = scratch.args;
            std::vector<Bounds> &call_bounds = scratch.bounds;
            call_args.clear();
            call_bounds.clear();
            bool pass_bounds = config_.instrumented &&
                               callee->isInstrumented() &&
                               func->isInstrumented();
            for (const Operand &arg : instr.args) {
                call_args.push_back(evalOperand(frame, arg));
                call_bounds.push_back(pass_bounds
                                          ? operandBounds(frame, arg)
                                          : Bounds::cleared());
            }
            if (oracle_) {
                // Provenance follows the bounds-passing convention:
                // uninstrumented boundaries pass neither.
                std::vector<oracle::Prov> arg_prov;
                if (pass_bounds) {
                    arg_prov.reserve(instr.args.size());
                    for (const Operand &arg : instr.args)
                        arg_prov.push_back(operandProv(frame, arg));
                }
                oracle_->stageCallArgs(std::move(arg_prov));
            }
            cCalls_++;
            Bounds ret_b = Bounds::cleared();
            uint64_t call_c0 = 0;
            if (prof) {
                pflush(cur);
                prof->countCallSite(fid, cur, ip - 1);
                call_c0 = cycles_;
            }
            uint64_t ret = callFunction(callee, call_args, call_bounds,
                                        &ret_b, depth + 1);
            if (prof) {
                prof->addCallSiteCycles(fid, cur, ip - 1,
                                        cycles_ - call_c0);
                // Discard the callee's delta from this block's self
                // cost; the callee attributed it to its own blocks.
                pb_cycles = cycles_;
                pb_instrs = instrs_;
                if (prof->sampleDue(cycles_))
                    profileSample(depth);
            }
            if (oracle_) {
                oracle::Prov ret_prov = oracle_->takeRetProv();
                if (prov && instr.dst != noReg) {
                    prov[instr.dst] =
                        pass_bounds ? ret_prov : oracle::Prov{};
                }
            }
            if (instr.dst != noReg) {
                regs[instr.dst] = ret;
                // Implicit bounds clearing handles uninstrumented
                // callees: only instrumented callees return bounds.
                bounds[instr.dst] =
                    pass_bounds ? ret_b : Bounds::cleared();
            }
            break;
          }
          case Opcode::Ret: {
            if (saved_bounds) {
                instrs_ += saved_bounds;
                uint64_t reload_cycles = config_.superscalar
                                             ? (saved_bounds + 1) / 2
                                             : saved_bounds;
                cycles_ += reload_cycles;
                chargeClass(CycleClass::BndLdSt, reload_cycles);
                cBndLdSt_ += saved_bounds;
                if (prof)
                    prof->addBndCycles(fid, reload_cycles);
            }
            if (prof)
                pflush(cur);
            if (ret_bounds)
                *ret_bounds = operandBounds(frame, instr.a);
            if (oracle_)
                oracle_->setRetProv(operandProv(frame, instr.a));
            // Void returns carry a None operand; return 0 without
            // hitting the evalOperand decoder-bug assertion.
            return instr.a.isNone() ? 0 : evalOperand(frame, instr.a);
          }
          case Opcode::Trap:
            throw GuestTrap(TrapKind::WorkloadAssert,
                            strfmt("%s code %llu", func->name().c_str(),
                                   static_cast<unsigned long long>(
                                       instr.imm0)));
          case Opcode::MallocTyped: {
            uint64_t count = evalOperand(frame, instr.a);
            uint64_t size = count * instr.type->size();
            uint64_t start = cycles_;
            RuntimeCost cost;
            regs[instr.dst] = runtime_->plainMalloc(size, cost);
            bounds[instr.dst] = Bounds::cleared();
            if (prov)
                prov[instr.dst] = oracle::Prov{};
            if (forensics_)
                noteAllocRecord(layout::canonical(regs[instr.dst]),
                                size, AllocKind::PlainHeap, func, cur);
            applyCost(cost);
            if (tracer_.enabled(TraceCategory::Alloc)) {
                tracer_.complete(TraceCategory::Alloc, "malloc",
                                 start, cycles_ - start,
                                 {{"bytes", size},
                                  {"addr", regs[instr.dst]}});
            }
            break;
          }
          case Opcode::FreePtr: {
            GuestAddr addr =
                layout::canonical(evalOperand(frame, instr.a));
            RuntimeCost cost;
            runtime_->plainFree(addr, cost);
            if (forensics_)
                forensics_->noteFree(addr, {true, func->id(), cur});
            applyCost(cost);
            if (tracer_.enabled(TraceCategory::Alloc)) {
                tracer_.instant(TraceCategory::Alloc, "free",
                                {{"addr", addr}});
            }
            break;
          }
          case Opcode::Promote: {
            Reg src = static_cast<Reg>(instr.a.payload);
            PromoteResult result =
                promote_->promote(TaggedPtr(regs[src]));
            regs[instr.dst] = result.ptr.raw();
            bounds[instr.dst] = result.bounds;
            if (prov)
                prov[instr.dst] = prov[src];
            uint64_t extra = result.cycles > 0 ? result.cycles - 1 : 0;
            cycles_ += extra;
            chargeClass(CycleClass::Promote, extra);
            cPromoteInstrs_++;
            if (tracer_.enabled(TraceCategory::Promote)) {
                uint64_t dur = extra + 1;
                tracer_.complete(TraceCategory::Promote, "promote",
                                 cycles_ - dur, dur,
                                 {{"outcome",
                                   toString(result.outcome)},
                                  {"cycles", uint64_t{result.cycles}},
                                  {"narrowed",
                                   uint64_t{result.narrowSucceeded}}});
            }
            break;
          }
          case Opcode::IfpAdd: {
            Reg src = static_cast<Reg>(instr.a.payload);
            auto delta =
                static_cast<int64_t>(evalOperand(frame, instr.b));
            TaggedPtr res = ops::ifpAdd(TaggedPtr(regs[src]), delta,
                                        frame.bounds[src]);
            Bounds src_bounds = frame.bounds[src];
            if (prov) {
                // Instrumentation annotates the field entries it
                // narrows with the field's byte size (imm1, unused by
                // the ifpadd semantics themselves); that is the
                // ground-truth subobject extent the narrowing below
                // (ifpbnd / promote) claims to enforce.
                oracle::Prov p = prov[src];
                if (instr.imm1 != 0 && p.valid()) {
                    p.subLower = res.addr();
                    p.subUpper = res.addr() + instr.imm1;
                }
                prov[instr.dst] = p;
            }
            regs[instr.dst] = res.raw();
            bounds[instr.dst] = src_bounds;
            cIfpArith_++;
            // Note: ifpadd replaces the baseline's address arithmetic,
            // so it is NOT hidden by the superscalar model (only the
            // net-new tag/bounds updates are).
            break;
          }
          case Opcode::IfpIdx: {
            Reg src = static_cast<Reg>(instr.a.payload);
            TaggedPtr ptr(regs[src]);
            uint64_t new_index = ptr.subobjIndex() + instr.imm0;
            Bounds src_bounds = frame.bounds[src];
            if (prov)
                prov[instr.dst] = prov[src];
            regs[instr.dst] = ops::ifpIdx(ptr, new_index).raw();
            bounds[instr.dst] = src_bounds;
            cIfpArith_++;
            if (config_.superscalar)
                --cycles_;
            break;
          }
          case Opcode::IfpBnd: {
            Reg src = static_cast<Reg>(instr.a.payload);
            TaggedPtr ptr(regs[src]);
            regs[instr.dst] = ptr.raw();
            bounds[instr.dst] = ops::ifpBnd(ptr, instr.imm0);
            if (prov)
                prov[instr.dst] = prov[src];
            cIfpArith_++;
            if (config_.superscalar)
                --cycles_;
            break;
          }
          case Opcode::IfpChk: {
            Reg src = static_cast<Reg>(instr.a.payload);
            regs[instr.dst] = ops::ifpChk(TaggedPtr(regs[src]),
                                          frame.bounds[src], instr.imm0)
                                  .raw();
            if (prov)
                prov[instr.dst] = prov[src];
            cIfpArith_++;
            break;
          }
          case Opcode::RegisterObj: {
            Reg src = static_cast<Reg>(instr.a.payload);
            RuntimeCost cost;
            IfpAllocation alloc = runtime_->registerObject(
                layout::canonical(regs[src]), instr.imm0, instr.layout,
                cost);
            regs[instr.dst] = alloc.ptr.raw();
            bounds[instr.dst] = alloc.bounds;
            if (prov)
                prov[instr.dst] = prov[src];
            if (forensics_)
                noteAllocRecord(alloc.ptr.addr(), instr.imm0,
                                AllocKind::Stack, func, cur);
            applyCost(cost);
            cIfpArith_++;
            stats_.counter("local_objects")++;
            if (instr.layout != noLayout)
                stats_.counter("local_objects_with_layout")++;
            if (tracer_.enabled(TraceCategory::Alloc)) {
                tracer_.instant(TraceCategory::Alloc, "register_obj",
                                {{"bytes", instr.imm0},
                                 {"ptr", alloc.ptr.raw()}});
            }
            break;
          }
          case Opcode::DeregisterObj: {
            TaggedPtr dereg_ptr(evalOperand(frame, instr.a));
            RuntimeCost cost;
            runtime_->deregisterObject(dereg_ptr, cost);
            if (forensics_)
                forensics_->noteFree(dereg_ptr.addr(),
                                     {true, func->id(), cur});
            applyCost(cost);
            cIfpArith_++;
            if (oracle_)
                oracle_->freeObjectAt(dereg_ptr.addr());
            break;
          }
          case Opcode::IfpMallocTyped: {
            uint64_t count = evalOperand(frame, instr.a);
            uint64_t size = count * instr.type->size();
            uint64_t start = cycles_;
            RuntimeCost cost;
            IfpAllocation alloc =
                runtime_->ifpMalloc(size, instr.layout, cost);
            regs[instr.dst] = alloc.ptr.raw();
            bounds[instr.dst] = alloc.bounds;
            if (prov) {
                prov[instr.dst] = oracle_->registerObject(
                    alloc.ptr.addr(), size, oracle::ObjectKind::Heap);
            }
            if (forensics_)
                noteAllocRecord(alloc.ptr.addr(), size,
                                AllocKind::IfpHeap, func, cur);
            applyCost(cost);
            stats_.counter("heap_objects")++;
            if (instr.layout != noLayout)
                stats_.counter("heap_objects_with_layout")++;
            if (tracer_.enabled(TraceCategory::Alloc)) {
                tracer_.complete(TraceCategory::Alloc, "ifp_malloc",
                                 start, cycles_ - start,
                                 {{"bytes", size},
                                  {"ptr", alloc.ptr.raw()}});
            }
            break;
          }
          case Opcode::IfpFree: {
            TaggedPtr ptr(evalOperand(frame, instr.a));
            RuntimeCost cost;
            try {
                runtime_->ifpFree(ptr, cost);
            } catch (const GuestTrap &) {
                // Free-path validation trapped (double/stale/interior
                // free). Diff the verdict before the trap propagates,
                // and capture the pointer so the trap report decodes
                // its metadata and generations.
                noteFault(ptr.raw(), 0, false, nullptr);
                if (oracle_ && !ptr.isNull())
                    oracle_->checkFree(ptr.addr(), true,
                                       operandProv(frame, instr.a));
                applyCost(cost);
                throw;
            }
            if (oracle_ && !ptr.isNull())
                oracle_->checkFree(ptr.addr(), false,
                                   operandProv(frame, instr.a));
            if (forensics_ && !ptr.isNull())
                forensics_->noteFree(ptr.addr(),
                                     {true, func->id(), cur});
            applyCost(cost);
            if (oracle_ && !ptr.isNull())
                oracle_->freeObjectAt(ptr.addr());
            if (tracer_.enabled(TraceCategory::Alloc)) {
                tracer_.instant(TraceCategory::Alloc, "ifp_free",
                                {{"ptr", ptr.raw()}});
            }
            break;
          }
        }
    }
}

} // namespace infat
