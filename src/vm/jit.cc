/**
 * @file
 * x86-64 template emitter for hot superblocks. See jit.hh for the
 * exactness contract; see docs/PERFORMANCE.md ("Tiered execution")
 * for the template coverage list and bailout rules.
 *
 * Register convention inside a compiled block (all callee-saved, so
 * they survive the out-of-line helper calls):
 *   rbx  the invocation's RunCtx*  (curBlock/retVal/retBounds access)
 *   r12  guest register file base   (RunCtx::regs)
 *   r13  bounds register file base  (RunCtx::bounds)
 *   r14  raw address of the memory record in flight
 *   r15  canonical (layout::addrBits-wide) form of r14
 * rax/rcx/rdx and r11 are scratch; rdi/rsi/rdx/rcx carry helper
 * arguments (SysV).  Simulated counters are updated through absolute
 * addresses baked into the code (`movabs r11, &ctr; add [r11], n`).
 */

#include "vm/jit.hh"

#include <cstddef>
#include <cstring>
#include <deque>
#include <limits>
#include <vector>

#include "cache/cache.hh"
#include "ifp/ops.hh"
#include "ifp/tag.hh"
#include "ir/instr.hh"
#include "mem/guest_memory.hh"
#include "support/bitops.hh"
#include "support/exec_mem.hh"

namespace infat {
namespace jit {

#if defined(__x86_64__)

namespace {

// ---------------------------------------------------------------------
// Out-of-line helpers called from emitted code. Plain functions with
// integer/pointer args keep the SysV calling convention trivial; they
// exist so the jitted path moves the simulator's own models (cache
// timing, uTLB counters, IFP arithmetic) exactly as the interpreter
// does. None of these can throw (checked: GuestMemory materializes
// pages on demand, ops:: return poisoned pointers instead of
// trapping), which matters because emitted frames carry no unwind
// info.
// ---------------------------------------------------------------------

uint64_t
helpCacheAccess(Cache *c, uint64_t addr, uint64_t len, uint64_t write)
{
    return c->access(addr, len, write != 0).latency - 1;
}

template <typename T>
uint64_t
helpLoad(GuestMemory *m, uint64_t addr)
{
    return m->load<T>(addr);
}

template <typename T>
void
helpStore(GuestMemory *m, uint64_t addr, uint64_t value)
{
    m->store<T>(addr, static_cast<T>(value));
}

uint64_t
helpIfpAdd(uint64_t raw, int64_t delta, const Bounds *b)
{
    return ops::ifpAdd(TaggedPtr(raw), delta, *b).raw();
}

uint64_t
helpIfpIdx(uint64_t raw, uint64_t delta)
{
    TaggedPtr ptr(raw);
    return ops::ifpIdx(ptr, ptr.subobjIndex() + delta).raw();
}

void
helpIfpBnd(uint64_t raw, uint64_t size, Bounds *out)
{
    *out = ops::ifpBnd(TaggedPtr(raw), size);
}

uint64_t
helpIfpChk(uint64_t raw, const Bounds *b, uint64_t size)
{
    return ops::ifpChk(TaggedPtr(raw), *b, size).raw();
}

// ---------------------------------------------------------------------
// Minimal x86-64 assembler: exactly the encodings the templates need.
// ---------------------------------------------------------------------

enum Reg64
{
    RAX = 0,
    RCX = 1,
    RDX = 2,
    RBX = 3,
    RSP = 4,
    RBP = 5,
    RSI = 6,
    RDI = 7,
    R8 = 8,
    R11 = 11,
    R12 = 12,
    R13 = 13,
    R14 = 14,
    R15 = 15,
};

// Condition codes (low nibble of 0F 9x / 0F 8x / 0F 4x).
enum Cond
{
    CC_B = 0x2,  // unsigned <   (carry)
    CC_AE = 0x3, // unsigned >=
    CC_E = 0x4,  // equal / zero
    CC_NE = 0x5, // not equal / not zero
    CC_BE = 0x6, // unsigned <=
    CC_A = 0x7,  // unsigned >
    CC_P = 0xA,  // parity (unordered after ucomisd)
    CC_NP = 0xB,
    CC_L = 0xC, // signed <
    CC_GE = 0xD,
    CC_LE = 0xE,
    CC_G = 0xF,
};

// /ext fields of the 81/83 (ALU) and C1/D3 (shift) groups.
enum AluExt
{
    EXT_ADD = 0,
    EXT_AND = 4,
    EXT_SUB = 5,
    EXT_CMP = 7,
};
enum ShiftExt
{
    EXT_SHL = 4,
    EXT_SHR = 5,
    EXT_SAR = 7,
};

struct Label
{
    int32_t pos = -1;                // byte offset once bound
    std::vector<uint32_t> fixups;    // rel32 patch sites
};

class Asm
{
  public:
    std::vector<uint8_t> code;

    uint32_t pos() const { return static_cast<uint32_t>(code.size()); }

    void u8(uint8_t b) { code.push_back(b); }
    void
    u32(uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            u8(static_cast<uint8_t>(v >> (8 * i)));
    }
    void
    u64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            u8(static_cast<uint8_t>(v >> (8 * i)));
    }

    void
    rex(bool w, unsigned reg, unsigned base)
    {
        uint8_t r = 0x40 | (w ? 8 : 0) | ((reg >> 3) << 2) | (base >> 3);
        if (r != 0x40)
            u8(r);
    }
    void
    modrm(unsigned mod, unsigned reg, unsigned rm)
    {
        u8(static_cast<uint8_t>((mod << 6) | ((reg & 7) << 3) |
                                (rm & 7)));
    }
    /** ModRM(+SIB)+disp for a [base + disp] operand. */
    void
    mem(unsigned spare, unsigned base, int32_t disp)
    {
        unsigned b = base & 7;
        bool sib = b == 4; // rsp/r12 encodings require a SIB byte
        if (disp == 0 && b != 5) { // rbp/r13 require an explicit disp
            modrm(0, spare, sib ? 4 : b);
            if (sib)
                u8(0x24);
        } else if (disp >= -128 && disp <= 127) {
            modrm(1, spare, sib ? 4 : b);
            if (sib)
                u8(0x24);
            u8(static_cast<uint8_t>(disp));
        } else {
            modrm(2, spare, sib ? 4 : b);
            if (sib)
                u8(0x24);
            u32(static_cast<uint32_t>(disp));
        }
    }

    // --- moves ---
    void
    movRR(unsigned d, unsigned s)
    {
        rex(true, s, d);
        u8(0x89);
        modrm(3, s, d);
    }
    void
    movRM(unsigned d, unsigned base, int32_t disp)
    {
        rex(true, d, base);
        u8(0x8B);
        mem(d, base, disp);
    }
    void
    movMR(unsigned base, int32_t disp, unsigned s)
    {
        rex(true, s, base);
        u8(0x89);
        mem(s, base, disp);
    }
    void
    movRI(unsigned d, uint64_t imm)
    {
        if (imm <= 0xFFFFFFFFull) {
            rex(false, 0, d);
            u8(0xB8 + (d & 7)); // mov r32, imm32 zero-extends
            u32(static_cast<uint32_t>(imm));
        } else if (static_cast<int64_t>(imm) ==
                   static_cast<int64_t>(static_cast<int32_t>(imm))) {
            rex(true, 0, d);
            u8(0xC7);
            modrm(3, 0, d);
            u32(static_cast<uint32_t>(imm));
        } else {
            rex(true, 0, d);
            u8(0xB8 + (d & 7)); // movabs
            u64(imm);
        }
    }
    /** mov qword [base+disp], imm32 (sign-extended). */
    void
    movMI(unsigned base, int32_t disp, int32_t imm)
    {
        rex(true, 0, base);
        u8(0xC7);
        mem(0, base, disp);
        u32(static_cast<uint32_t>(imm));
    }

    // --- ALU ---
    /** Two-register ALU, store form (opc = 01 add, 29 sub, 21 and,
     *  09 or, 31 xor, 39 cmp, 85 test). */
    void
    aluRR(uint8_t opc, unsigned d, unsigned s)
    {
        rex(true, s, d);
        u8(opc);
        modrm(3, s, d);
    }
    void
    aluRI(unsigned ext, unsigned r, int32_t imm)
    {
        rex(true, 0, r);
        if (imm >= -128 && imm <= 127) {
            u8(0x83);
            modrm(3, ext, r);
            u8(static_cast<uint8_t>(imm));
        } else {
            u8(0x81);
            modrm(3, ext, r);
            u32(static_cast<uint32_t>(imm));
        }
    }
    /** add/cmp... qword [base+disp], imm. */
    void
    aluMI(unsigned ext, unsigned base, int32_t disp, int32_t imm)
    {
        rex(true, 0, base);
        if (imm >= -128 && imm <= 127) {
            u8(0x83);
            mem(ext, base, disp);
            u8(static_cast<uint8_t>(imm));
        } else {
            u8(0x81);
            mem(ext, base, disp);
            u32(static_cast<uint32_t>(imm));
        }
    }
    /** add qword [base+disp], reg. */
    void
    addMR(unsigned base, int32_t disp, unsigned s)
    {
        rex(true, s, base);
        u8(0x01);
        mem(s, base, disp);
    }
    /** cmp reg, qword [base+disp] (load form). */
    void
    cmpRM(unsigned r, unsigned base, int32_t disp)
    {
        rex(true, r, base);
        u8(0x3B);
        mem(r, base, disp);
    }
    /** cmp byte [base+disp], imm8. */
    void
    cmpM8I(unsigned base, int32_t disp, uint8_t imm)
    {
        rex(false, 0, base);
        u8(0x80);
        mem(7, base, disp);
        u8(imm);
    }
    /** Sign-extend rax into rdx:rax. */
    void
    cqo()
    {
        u8(0x48);
        u8(0x99);
    }
    /** Unsigned rdx:rax / r → quotient rax, remainder rdx. */
    void
    divR(unsigned r)
    {
        rex(true, 0, r);
        u8(0xF7);
        modrm(3, 6, r);
    }
    /** Signed rdx:rax / r → quotient rax, remainder rdx. */
    void
    idivR(unsigned r)
    {
        rex(true, 0, r);
        u8(0xF7);
        modrm(3, 7, r);
    }
    void
    imulRR(unsigned d, unsigned s)
    {
        rex(true, d, s);
        u8(0x0F);
        u8(0xAF);
        modrm(3, d, s);
    }
    void
    shiftI(unsigned ext, unsigned r, unsigned n)
    {
        if (n == 0)
            return;
        rex(true, 0, r);
        u8(0xC1);
        modrm(3, ext, r);
        u8(static_cast<uint8_t>(n));
    }
    void
    shiftCl(unsigned ext, unsigned r)
    {
        rex(true, 0, r);
        u8(0xD3);
        modrm(3, ext, r);
    }
    void
    leaRM(unsigned d, unsigned base, int32_t disp)
    {
        rex(true, d, base);
        u8(0x8D);
        mem(d, base, disp);
    }

    // --- flags and byte registers (rax/rcx/rdx only: no REX needed) ---
    void
    setcc(unsigned cc, unsigned r8)
    {
        u8(0x0F);
        u8(0x90 + cc);
        modrm(3, 0, r8);
    }
    /** and/or r8, r8 (opc 0x20 and, 0x08 or). */
    void
    alu8RR(uint8_t opc, unsigned d8, unsigned s8)
    {
        u8(opc);
        modrm(3, s8, d8);
    }
    void
    movzxRR8(unsigned d, unsigned s8)
    {
        rex(true, d, s8);
        u8(0x0F);
        u8(0xB6);
        modrm(3, d, s8);
    }
    void
    movzxRM8(unsigned d, unsigned base, int32_t disp)
    {
        rex(true, d, base);
        u8(0x0F);
        u8(0xB6);
        mem(d, base, disp);
    }
    void
    movzxRM16(unsigned d, unsigned base, int32_t disp)
    {
        rex(true, d, base);
        u8(0x0F);
        u8(0xB7);
        mem(d, base, disp);
    }
    /** mov r32, dword [base+disp] — zero-extends into the full reg. */
    void
    movRM32(unsigned d, unsigned base, int32_t disp)
    {
        rex(false, d, base);
        u8(0x8B);
        mem(d, base, disp);
    }
    /** mov byte [base+disp], r8. Source must be rax/rcx/rdx (no REX
     *  needed to address its low byte) unless base forces a REX. */
    void
    movMR8(unsigned base, int32_t disp, unsigned s8)
    {
        rex(false, s8, base);
        u8(0x88);
        mem(s8, base, disp);
    }
    void
    movMR16(unsigned base, int32_t disp, unsigned s)
    {
        u8(0x66);
        rex(false, s, base);
        u8(0x89);
        mem(s, base, disp);
    }
    void
    movMR32(unsigned base, int32_t disp, unsigned s)
    {
        rex(false, s, base);
        u8(0x89);
        mem(s, base, disp);
    }
    /** mov byte [base+disp], imm8. */
    void
    movMI8(unsigned base, int32_t disp, uint8_t imm)
    {
        rex(false, 0, base);
        u8(0xC6);
        mem(0, base, disp);
        u8(imm);
    }
    void
    cmovcc(unsigned cc, unsigned d, unsigned s)
    {
        rex(true, d, s);
        u8(0x0F);
        u8(0x40 + cc);
        modrm(3, d, s);
    }

    // --- SSE (xmm0/xmm1 only; no REX.X/B needed for those) ---
    void
    movqXR(unsigned x, unsigned r)
    {
        u8(0x66);
        rex(true, x, r);
        u8(0x0F);
        u8(0x6E);
        modrm(3, x, r);
    }
    void
    movqRX(unsigned r, unsigned x)
    {
        u8(0x66);
        rex(true, x, r);
        u8(0x0F);
        u8(0x7E);
        modrm(3, x, r);
    }
    /** addsd 58, subsd 5C, mulsd 59, divsd 5E. */
    void
    sseRR(uint8_t opc, unsigned xd, unsigned xs)
    {
        u8(0xF2);
        u8(0x0F);
        u8(opc);
        modrm(3, xd, xs);
    }
    void
    ucomisd(unsigned xd, unsigned xs)
    {
        u8(0x66);
        u8(0x0F);
        u8(0x2E);
        modrm(3, xd, xs);
    }
    void
    cvtsi2sd(unsigned x, unsigned r)
    {
        u8(0xF2);
        rex(true, x, r);
        u8(0x0F);
        u8(0x2A);
        modrm(3, x, r);
    }
    void
    cvttsd2si(unsigned r, unsigned x)
    {
        u8(0xF2);
        rex(true, r, x);
        u8(0x0F);
        u8(0x2C);
        modrm(3, r, x);
    }

    // --- stack / control ---
    void
    push(unsigned r)
    {
        rex(false, 0, r);
        u8(0x50 + (r & 7));
    }
    void
    pop(unsigned r)
    {
        rex(false, 0, r);
        u8(0x58 + (r & 7));
    }
    void ret() { u8(0xC3); }
    void
    callR(unsigned r)
    {
        rex(false, 0, r);
        u8(0xFF);
        modrm(3, 2, r);
    }

    void
    jmp(Label &l)
    {
        u8(0xE9);
        emitRel32(l);
    }
    /** jmp reg (indirect). */
    void
    jmpR(unsigned r)
    {
        rex(false, 0, r);
        u8(0xFF);
        modrm(3, 4, r);
    }
    void
    jcc(unsigned cc, Label &l)
    {
        u8(0x0F);
        u8(0x80 + cc);
        emitRel32(l);
    }
    void
    bind(Label &l)
    {
        l.pos = static_cast<int32_t>(pos());
        for (uint32_t f : l.fixups)
            patchRel32(f, l.pos);
        l.fixups.clear();
    }

  private:
    void
    emitRel32(Label &l)
    {
        if (l.pos >= 0) {
            u32(static_cast<uint32_t>(l.pos -
                                      static_cast<int32_t>(pos() + 4)));
        } else {
            l.fixups.push_back(pos());
            u32(0);
        }
    }
    void
    patchRel32(uint32_t at, int32_t target)
    {
        int32_t rel = target - static_cast<int32_t>(at + 4);
        std::memcpy(&code[at], &rel, 4);
    }
};

// ---------------------------------------------------------------------
// Record templates
// ---------------------------------------------------------------------

using ir::FCmpPred;
using ir::ICmpPred;
using ir::Opcode;

uint8_t
icmpCC(uint8_t pred)
{
    switch (static_cast<ICmpPred>(pred)) {
      case ICmpPred::Eq: return CC_E;
      case ICmpPred::Ne: return CC_NE;
      case ICmpPred::Slt: return CC_L;
      case ICmpPred::Sle: return CC_LE;
      case ICmpPred::Sgt: return CC_G;
      case ICmpPred::Sge: return CC_GE;
      case ICmpPred::Ult: return CC_B;
      case ICmpPred::Ule: return CC_BE;
      case ICmpPred::Ugt: return CC_A;
      case ICmpPred::Uge: return CC_AE;
    }
    return CC_E;
}

/** Compile-time prefix sums of the static per-record stat charges. */
struct Pending
{
    uint64_t instrs = 0;
    uint64_t cycles = 0;
    uint64_t base = 0;
    uint64_t mem = 0;
    uint64_t ifp = 0;
    uint64_t ifpCnt = 0;
    uint64_t loads = 0;
    uint64_t stores = 0;
    uint64_t bnd = 0;    ///< BndLdSt class cycles (emitted Ret)
    uint64_t bndCnt = 0; ///< vm.bnd_ldst count (emitted Ret)
    uint64_t promote = 0;///< Promote class cycles (emitted Promote)
};

class Compiler
{
  public:
    Compiler(const BlockCtx &ctx, const MachineBinding &bind)
        : ctx_(ctx), bind_(bind)
    {
        a_.push(RBX);
        a_.push(R12);
        a_.push(R13);
        a_.push(R14);
        a_.push(R15);
        // rdi = RunCtx*. rbx keeps it live for the whole invocation
        // (callee-saved, so it survives helper calls and chained
        // jumps): the call/ret templates read curBlock/retVal/
        // retBounds through it at run time.
        a_.movRR(RBX, RDI);
        a_.movRM(R12, RDI, offsetof(RunCtx, regs));
        a_.movRM(R13, RDI, offsetof(RunCtx, bounds));
        // Chained jumps from other blocks of the same frame land
        // here, with r12/r13 already valid and the stack frame of
        // the originally entered block still open.
        entryOff_ = a_.pos();
    }

    uint32_t entryOff() const { return entryOff_; }

    /**
     * Emit the template for record @p idx; returns false (emitting
     * nothing) when the record has no template and must end the
     * compiled prefix.
     */
    bool emitRecord(const sb::Record &fi, uint32_t idx);

    /** Bail return value: this block's id + the record to resume. */
    uint64_t
    bailValue(uint32_t idx) const
    {
        return kExitBail |
               (static_cast<uint64_t>(ctx_.blockId) << 32) | idx;
    }

    /** Exit for a partial prefix: resume interpretation at @p idx. */
    void
    emitBailExit(uint32_t idx)
    {
        flushPending(pending_);
        a_.movRI(RAX, bailValue(idx));
        a_.jmp(epilogue_);
    }

    /** Bail stubs + epilogue; returns the finished code buffer. */
    const std::vector<uint8_t> &
    finish()
    {
        for (Bail &b : bails_) {
            a_.bind(b.label);
            // Settle the static charges of the records *before* the
            // bailing one (its own charges were not yet accumulated
            // when the bail label was created); the interpreter then
            // re-executes the record and charges it itself.
            flushPending(b.pending);
            a_.movRI(RAX, bailValue(b.idx));
            a_.jmp(epilogue_);
        }
        for (ExtExit &e : extExits_) {
            // Trap/general exits fire only after a call record whose
            // template flushed (and reset) the prefix sums before
            // entering the runtime, so there is nothing to settle.
            a_.bind(e.label);
            a_.movRI(RAX, e.bits |
                              (static_cast<uint64_t>(ctx_.blockId)
                               << 32) |
                              e.idx);
            a_.jmp(epilogue_);
        }
        a_.bind(epilogue_);
        a_.pop(R15);
        a_.pop(R14);
        a_.pop(R13);
        a_.pop(R12);
        a_.pop(RBX);
        a_.ret();
        return a_.code;
    }

  private:
    static int32_t
    regDisp(uint32_t r)
    {
        return static_cast<int32_t>(8 * r);
    }
    static int32_t
    bndDisp(uint32_t r)
    {
        return static_cast<int32_t>(sizeof(Bounds) * r);
    }

    Label &
    bailFor(uint32_t idx)
    {
        // Snapshot the not-yet-flushed static charges: every record's
        // trap predicates run before charges() accumulates its own
        // costs, so the snapshot covers exactly the completed records.
        bails_.push_back({idx, {}, pending_});
        return bails_.back().label;
    }

    Label &
    extExitFor(uint32_t idx, uint64_t bits)
    {
        extExits_.push_back({idx, bits, {}});
        return extExits_.back().label;
    }

    void
    callAbs(const void *fn)
    {
        a_.movRI(RAX, reinterpret_cast<uint64_t>(fn));
        a_.callR(RAX);
    }

    void
    counterAdd(uint64_t *ctr, uint64_t n)
    {
        if (n == 0 || ctr == nullptr)
            return;
        a_.movRI(R11, reinterpret_cast<uint64_t>(ctr));
        a_.aluMI(EXT_ADD, R11, 0, static_cast<int32_t>(n));
    }
    /** *ctr += rax. */
    void
    counterAddRax(uint64_t *ctr)
    {
        a_.movRI(R11, reinterpret_cast<uint64_t>(ctr));
        a_.addMR(R11, 0, RAX);
    }

    /**
     * The batched `pre` + per-record charges of a sync record. All of
     * these are compile-time constants, so instead of emitting ~6
     * read-modify-writes per record they accumulate into running
     * prefix sums, flushed once per exit path (terminator, partial-
     * prefix exit, or bail stub). Nothing inside a block reads these
     * counters — helpers only touch their own stats (cache hit/miss,
     * uTLB), and snapshots happen outside execution — so deferring
     * the stores to the exits is observationally identical.
     */
    void
    charges(const sb::Record &fi, uint32_t instr, uint32_t base,
            uint32_t memCyc, uint32_t ifp, uint32_t ifpCnt)
    {
        pending_.instrs += fi.preInstr + instr;
        pending_.cycles += fi.preCycles + instr;
        pending_.base += fi.preBase + base;
        pending_.mem += memCyc;
        pending_.ifp += fi.preIfp + ifp;
        pending_.ifpCnt += fi.preIfpCnt + ifpCnt;
    }

    void
    flushPending(const Pending &p)
    {
        counterAdd(bind_.instrs, p.instrs);
        counterAdd(bind_.cycles, p.cycles);
        counterAdd(bind_.classBase, p.base);
        counterAdd(bind_.classMem, p.mem);
        counterAdd(bind_.classIfp, p.ifp);
        counterAdd(bind_.cIfpArith, p.ifpCnt);
        counterAdd(bind_.cLoads, p.loads);
        counterAdd(bind_.cStores, p.stores);
        counterAdd(bind_.classBndLdSt, p.bnd);
        counterAdd(bind_.cBndLdSt, p.bndCnt);
        counterAdd(bind_.classPromote, p.promote);
    }

    /**
     * Terminator tail for constant successor @p target: when the
     * target block is already compiled and the dispatch loop's
     * block-entry budget guard cannot fire, jump straight into its
     * chained entry (same frame, r12/r13 live, the entered block's
     * stack frame stays open); otherwise return the target id to the
     * interpreter. Pending charges must already be flushed — the
     * budget guard reads the live instruction counter, and the
     * chained-to block starts its own prefix sums from zero.
     */
    void
    chainOrExit(uint32_t target)
    {
        const sb::Block &tb = ctx_.blocks[target];
        if (ctx_.jitEntries != nullptr &&
            tb.totalInstr <= bind_.maxInstructions) {
            Label fallback;
            a_.movRI(R11, reinterpret_cast<uint64_t>(
                              &ctx_.jitEntries[target]));
            a_.movRM(R11, R11, 0);
            a_.aluRR(0x85, R11, R11);
            a_.jcc(CC_E, fallback); // not compiled (yet / anymore)
            // Replay the interpreter's block-entry budget guard:
            // close to the instruction limit, the dispatch loop must
            // see the block so it can replay it on the general
            // engine for an exact-instruction trap.
            a_.movRI(RAX, reinterpret_cast<uint64_t>(bind_.instrs));
            a_.movRM(RAX, RAX, 0);
            a_.movRI(RCX, bind_.maxInstructions - tb.totalInstr);
            a_.aluRR(0x39, RAX, RCX);
            a_.jcc(CC_A, fallback);
            // The dispatch loop counts entries via noteEnter();
            // chained entries count themselves to keep vm.tier
            // jit_blocks meaning "compiled-block executions".
            if (bind_.tierBlocksRun != nullptr) {
                a_.movRI(RAX, reinterpret_cast<uint64_t>(
                                  bind_.tierBlocksRun));
                a_.aluMI(EXT_ADD, RAX, 0, 1);
            }
            a_.jmpR(R11);
            a_.bind(fallback);
        }
        a_.movRI(RAX, target);
        a_.jmp(epilogue_);
    }

    /** dst = reg value or immediate, by flag. */
    void
    loadVal(unsigned d, bool isReg, uint32_t reg, uint64_t imm)
    {
        if (isReg)
            a_.movRM(d, R12, regDisp(reg));
        else
            a_.movRI(d, imm);
    }

    void
    sextReg(unsigned r, unsigned bits)
    {
        if (bits == 0 || bits >= 64)
            return;
        a_.shiftI(EXT_SHL, r, 64 - bits);
        a_.shiftI(EXT_SAR, r, 64 - bits);
    }

    void
    boundsClear(uint32_t r)
    {
        // Matches `bounds[r] = Bounds::cleared()`: lower = upper = 0,
        // valid = false (the qword store zeroes the padding too, which
        // nothing reads or compares).
        a_.movMI(R13, bndDisp(r) + 0, 0);
        a_.movMI(R13, bndDisp(r) + 8, 0);
        a_.movMI(R13, bndDisp(r) + 16, 0);
    }
    void
    boundsCopy(uint32_t dst, uint32_t src)
    {
        if (dst == src)
            return;
        a_.movRM(RAX, R13, bndDisp(src) + 0);
        a_.movMR(R13, bndDisp(dst) + 0, RAX);
        a_.movRM(RAX, R13, bndDisp(src) + 8);
        a_.movMR(R13, bndDisp(dst) + 8, RAX);
        a_.movRM(RAX, R13, bndDisp(src) + 16);
        a_.movMR(R13, bndDisp(dst) + 16, RAX);
    }
    void
    boundsLiteral(uint32_t dst, const Bounds &b)
    {
        a_.movRI(RAX, b.lower());
        a_.movMR(R13, bndDisp(dst) + 0, RAX);
        a_.movRI(RAX, b.upper());
        a_.movMR(R13, bndDisp(dst) + 8, RAX);
        a_.movRI(RAX, b.valid() ? 1 : 0);
        a_.movMR(R13, bndDisp(dst) + 16, RAX);
    }

    enum class Ck
    {
        None,    // no bounds predicate (record lacks kCheckBounds)
        Reg,     // consult bounds[ckReg]
        Cleared, // bounds register is known-invalid: predicate skipped
    };

    /**
     * The full check-path predicates of ops::checkAccessVerdict, in
     * the interpreter's order, against r14 (raw) / r15 (canon). Any
     * possible trap jumps to this record's bail stub *before* any
     * state was written, so the interpreter re-executes the record and
     * raises the exact trap with exact forensics.
     */
    void
    checkFull(uint32_t idx, Ck ck, uint32_t ckReg, uint64_t size)
    {
        Label &bail = bailFor(idx);
        // Poisoned: raw bits 63:62 nonzero.
        a_.movRR(RAX, R14);
        a_.shiftI(EXT_SHR, RAX, 62);
        a_.jcc(CC_NE, bail);
        // Null guard: canon < pageSize.
        a_.aluRI(EXT_CMP, R15,
                 static_cast<int32_t>(GuestMemory::pageSize));
        a_.jcc(CC_B, bail);
        if (ck == Ck::Reg) {
            Label skip;
            a_.cmpM8I(R13, bndDisp(ckReg) + 16, 0);
            a_.jcc(CC_E, skip);
            a_.cmpRM(R15, R13, bndDisp(ckReg) + 0); // canon < lower?
            a_.jcc(CC_B, bail);
            a_.leaRM(RCX, R15, static_cast<int32_t>(size));
            a_.cmpRM(RCX, R13, bndDisp(ckReg) + 8); // canon+size > upper?
            a_.jcc(CC_A, bail);
            counterAdd(bind_.cImplicitChecks, 1);
            a_.bind(skip);
        }
        // (sbCounters_.checksFull is host-only vm.superblock state,
        // excluded from engine diffs; jitted code does not track it.)
    }

    /** Elided check: only the cImplicitChecks bump if bounds valid. */
    void
    checkElided(Ck ck, uint32_t ckReg)
    {
        if (ck != Ck::Reg)
            return;
        a_.movzxRM8(RAX, R13, bndDisp(ckReg) + 16); // valid_: 0 or 1
        counterAddRax(bind_.cImplicitChecks);
    }

    void
    check(const sb::Record &fi, uint32_t idx, Ck ck, uint32_t ckReg)
    {
        if (fi.flags & sb::kElide)
            checkElided((fi.flags & sb::kCheckBounds) ? ck : Ck::None,
                        ckReg);
        else
            checkFull(idx,
                      (fi.flags & sb::kCheckBounds) ? ck : Ck::None,
                      ckReg, fi.size);
    }

    /**
     * uTLB probe shared by the inlined load/store fast paths: on
     * exit, r11 = host address of the data (page hit, no page cross,
     * utlbHits_ bumped); any other case jumps to @p slow. Mirrors
     * GuestMemory::load/store exactly — the "mem" stat group is part
     * of the engine diff, so hit accounting must not drift. Clobbers
     * rax, rcx and (for loads) rdx; @p offReg picks the scratch that
     * holds the page offset (rdx for loads, rax for stores whose
     * value already sits in rdx).
     */
    void
    utlbProbe(uint64_t size, unsigned offReg, Label &slow)
    {
        unsigned idx = offReg == RDX ? RAX : RCX;
        a_.movRR(idx, R15);
        a_.shiftI(EXT_SHR, idx, GuestMemory::pageShift); // page
        a_.movRR(R11, idx);
        a_.aluRI(EXT_AND, R11,
                 static_cast<int32_t>(GuestMemory::utlbEntries - 1));
        a_.shiftI(EXT_SHL, R11, 4); // * sizeof(UtlbEntry)
        static_assert(sizeof(GuestMemory::UtlbEntry) == 16,
                      "utlbProbe bakes the entry layout");
        unsigned base = offReg == RDX ? RCX : RAX;
        a_.movRI(base,
                 reinterpret_cast<uint64_t>(bind_.mem->utlbForJit()));
        a_.aluRR(0x01, R11, base); // r11 = &utlb_[page & mask]
        a_.cmpRM(idx, R11, 0);     // e.page == page?
        a_.jcc(CC_NE, slow);
        a_.movRR(offReg, R15);
        a_.aluRI(EXT_AND, offReg,
                 static_cast<int32_t>(GuestMemory::pageSize - 1));
        // off + size <= pageSize, as one unsigned compare.
        a_.aluRI(EXT_CMP, offReg,
                 static_cast<int32_t>(GuestMemory::pageSize - size));
        a_.jcc(CC_A, slow);
        a_.movRM(R11, R11, 8);       // e.data
        a_.aluRR(0x01, R11, offReg); // + off
        // counterAdd() scratches r11, which now holds the host
        // address, so bump utlbHits_ through the dead idx register.
        a_.movRI(idx, reinterpret_cast<uint64_t>(
                          bind_.mem->utlbHitsForJit()));
        a_.aluMI(EXT_ADD, idx, 0, 1);
    }

    /** Cache timing + the data access itself (address in r15). */
    void
    memAccess(const sb::Record &fi, bool isStore)
    {
        if (bind_.useCache) {
            // Inline the single-line MRU-hit path of Cache::access
            // (see Cache::JitHooks): nearly every access re-touches
            // the memoized line, and on that path every observable
            // update is a compile-time-known constant, so the helper
            // call (and, at hitLatency 1, the zero-cycle charge) can
            // be skipped entirely.
            Cache::JitHooks h = bind_.l1d->jitHooks();
            Label slowC, joinC, doneC;
            a_.movRR(RAX, R15);
            a_.shiftI(EXT_SHR, RAX, h.lineShift);
            if (fi.size > 1) {
                a_.leaRM(RCX, R15,
                         static_cast<int32_t>(fi.size - 1));
                a_.shiftI(EXT_SHR, RCX, h.lineShift);
                a_.aluRR(0x39, RAX, RCX); // line-crossing access?
                a_.jcc(CC_NE, slowC);
            }
            a_.movRI(RCX, reinterpret_cast<uint64_t>(h.mruLine));
            a_.cmpRM(RAX, RCX, 0);
            a_.jcc(CC_NE, slowC);
            // Hit: lruStamp = ++lruClock_, dirty |= is_write, hits_++.
            a_.movRI(RAX, reinterpret_cast<uint64_t>(h.lruClock));
            a_.movRM(RCX, RAX, 0);
            a_.aluRI(EXT_ADD, RCX, 1);
            a_.movMR(RAX, 0, RCX);
            a_.movRI(RAX, reinterpret_cast<uint64_t>(h.mruPtr));
            a_.movRM(RAX, RAX, 0);
            a_.movMR(RAX,
                     static_cast<int32_t>(
                         offsetof(Cache::Line, lruStamp)),
                     RCX);
            if (isStore)
                a_.movMI8(RAX,
                          static_cast<int32_t>(
                              offsetof(Cache::Line, dirty)),
                          1);
            a_.movRI(RAX, reinterpret_cast<uint64_t>(h.hits));
            a_.aluMI(EXT_ADD, RAX, 0, 1);
            if (h.hitLatency == 1) {
                a_.jmp(doneC); // latency - 1 == 0: nothing to charge
            } else {
                a_.movRI(RAX, h.hitLatency - 1);
                a_.jmp(joinC);
            }
            a_.bind(slowC);
            a_.movRI(RDI, reinterpret_cast<uint64_t>(bind_.l1d));
            a_.movRR(RSI, R15);
            a_.movRI(RDX, fi.size);
            a_.movRI(RCX, isStore ? 1 : 0);
            callAbs(reinterpret_cast<const void *>(&helpCacheAccess));
            a_.bind(joinC);
            counterAddRax(bind_.cycles);
            counterAddRax(bind_.classMem);
            a_.bind(doneC);
        }
        Label slow, done;
        if (isStore) {
            // The value operand is read *after* the fused
            // intermediate register write, matching the interpreter
            // when the value register aliases it. A plain Store
            // carries its value in a|immA; fused stores in d|immC.
            if (fi.op == sb::Op::Store)
                loadVal(RDX, (fi.flags & sb::kAReg) != 0, fi.a,
                        fi.immA);
            else
                loadVal(RDX, (fi.flags & sb::kDReg) != 0, fi.d,
                        fi.immC);
            utlbProbe(fi.ldClass, RAX, slow);
            switch (fi.ldClass) {
              case 1: a_.movMR8(R11, 0, RDX); break;
              case 2: a_.movMR16(R11, 0, RDX); break;
              case 4: a_.movMR32(R11, 0, RDX); break;
              default: a_.movMR(R11, 0, RDX); break;
            }
            a_.jmp(done);
            a_.bind(slow); // uTLB miss or page-crossing access
            a_.movRI(RDI, reinterpret_cast<uint64_t>(bind_.mem));
            a_.movRR(RSI, R15);
            switch (fi.ldClass) {
              case 1:
                callAbs(reinterpret_cast<const void *>(
                    &helpStore<uint8_t>));
                break;
              case 2:
                callAbs(reinterpret_cast<const void *>(
                    &helpStore<uint16_t>));
                break;
              case 4:
                callAbs(reinterpret_cast<const void *>(
                    &helpStore<uint32_t>));
                break;
              default:
                callAbs(reinterpret_cast<const void *>(
                    &helpStore<uint64_t>));
                break;
            }
            a_.bind(done);
            pending_.stores += 1;
        } else {
            utlbProbe(fi.ldClass, RDX, slow);
            switch (fi.ldClass) {
              case 1: a_.movzxRM8(RAX, R11, 0); break;
              case 2: a_.movzxRM16(RAX, R11, 0); break;
              case 4: a_.movRM32(RAX, R11, 0); break;
              default: a_.movRM(RAX, R11, 0); break;
            }
            a_.jmp(done);
            a_.bind(slow); // uTLB miss or page-crossing access
            a_.movRI(RDI, reinterpret_cast<uint64_t>(bind_.mem));
            a_.movRR(RSI, R15);
            switch (fi.ldClass) {
              case 1:
                callAbs(reinterpret_cast<const void *>(
                    &helpLoad<uint8_t>));
                break;
              case 2:
                callAbs(reinterpret_cast<const void *>(
                    &helpLoad<uint16_t>));
                break;
              case 4:
                callAbs(reinterpret_cast<const void *>(
                    &helpLoad<uint32_t>));
                break;
              default:
                callAbs(reinterpret_cast<const void *>(
                    &helpLoad<uint64_t>));
                break;
            }
            a_.bind(done);
            sextReg(RAX, fi.sextBits);
            a_.movMR(R12, regDisp(fi.dst), RAX);
            boundsClear(fi.dst);
            pending_.loads += 1;
        }
    }

    /** Plain-store value template (Store reads value before address,
     *  but there are no prior writes, so order is immaterial). */
    void
    canonFromR14()
    {
        a_.movRR(R15, R14);
        a_.shiftI(EXT_SHL, R15, 64 - layout::addrBits);
        a_.shiftI(EXT_SHR, R15, 64 - layout::addrBits);
    }

    const BlockCtx &ctx_;
    const MachineBinding &bind_;
    Asm a_;
    Label epilogue_;
    /** Code offset of the post-prologue chained entry point. */
    uint32_t entryOff_ = 0;
    /** Accumulated-but-unflushed static charges (prefix sums). */
    Pending pending_;
    struct Bail
    {
        uint32_t idx;
        Label label;
        Pending pending; ///< prefix sums when the bail was created
    };
    std::deque<Bail> bails_;
    /** Post-runtime-call exits (kExitTrapBit / kExitGeneralBit). */
    struct ExtExit
    {
        uint32_t idx;
        uint64_t bits;
        Label label;
    };
    std::deque<ExtExit> extExits_;
};

bool
Compiler::emitRecord(const sb::Record &fi, uint32_t idx)
{
    const bool areg = (fi.flags & sb::kAReg) != 0;
    const bool breg = (fi.flags & sb::kBReg) != 0;
    const bool creg = (fi.flags & sb::kCReg) != 0;
    switch (fi.op) {
      // --- pure (no simulated charges at execution time: those are
      // batched into the next sync record's `pre`) ---
      case sb::Op::MovRR:
        a_.movRM(RAX, R12, regDisp(fi.a));
        a_.movMR(R12, regDisp(fi.dst), RAX);
        boundsCopy(fi.dst, fi.a);
        return true;
      case sb::Op::MovImm:
        a_.movRI(RAX, fi.immA);
        a_.movMR(R12, regDisp(fi.dst), RAX);
        boundsClear(fi.dst);
        return true;
      case sb::Op::AddRR:
        a_.movRM(RAX, R12, regDisp(fi.a));
        a_.movRM(RCX, R12, regDisp(fi.b));
        a_.aluRR(0x01, RAX, RCX);
        sextReg(RAX, fi.sextBits);
        a_.movMR(R12, regDisp(fi.dst), RAX);
        boundsClear(fi.dst);
        return true;
      case sb::Op::AddRI:
        a_.movRM(RAX, R12, regDisp(fi.a));
        if (static_cast<int64_t>(fi.immB) ==
            static_cast<int64_t>(static_cast<int32_t>(fi.immB))) {
            a_.aluRI(EXT_ADD, RAX, static_cast<int32_t>(fi.immB));
        } else {
            a_.movRI(RCX, fi.immB);
            a_.aluRR(0x01, RAX, RCX);
        }
        sextReg(RAX, fi.sextBits);
        a_.movMR(R12, regDisp(fi.dst), RAX);
        boundsClear(fi.dst);
        return true;
      case sb::Op::IntBin: {
        loadVal(RAX, areg, fi.a, fi.immA);
        loadVal(RCX, breg, fi.b, fi.immB);
        switch (static_cast<Opcode>(fi.sub)) {
          case Opcode::Sub: a_.aluRR(0x29, RAX, RCX); break;
          case Opcode::Mul: a_.imulRR(RAX, RCX); break;
          case Opcode::And: a_.aluRR(0x21, RAX, RCX); break;
          case Opcode::Or: a_.aluRR(0x09, RAX, RCX); break;
          case Opcode::Xor: a_.aluRR(0x31, RAX, RCX); break;
          case Opcode::Shl: a_.shiftCl(EXT_SHL, RAX); break;
          case Opcode::LShr:
            if (fi.width) {
                uint64_t m = mask(fi.width);
                if (m <= 0x7FFFFFFFull) {
                    a_.aluRI(EXT_AND, RAX, static_cast<int32_t>(m));
                } else {
                    a_.movRI(RDX, m);
                    a_.aluRR(0x21, RAX, RDX);
                }
            }
            a_.shiftCl(EXT_SHR, RAX);
            break;
          case Opcode::AShr: a_.shiftCl(EXT_SAR, RAX); break;
          default: return false; // no template for this sub-op
        }
        sextReg(RAX, fi.sextBits);
        a_.movMR(R12, regDisp(fi.dst), RAX);
        boundsClear(fi.dst);
        return true;
      }
      case sb::Op::ICmp:
        loadVal(RAX, areg, fi.a, fi.immA);
        loadVal(RCX, breg, fi.b, fi.immB);
        a_.aluRR(0x39, RAX, RCX);
        a_.setcc(icmpCC(fi.sub), RAX);
        a_.movzxRR8(RAX, RAX);
        a_.movMR(R12, regDisp(fi.dst), RAX);
        boundsClear(fi.dst);
        return true;
      case sb::Op::FBin: {
        uint8_t opc;
        switch (static_cast<Opcode>(fi.sub)) {
          case Opcode::FAdd: opc = 0x58; break;
          case Opcode::FSub: opc = 0x5C; break;
          case Opcode::FMul: opc = 0x59; break;
          case Opcode::FDiv: opc = 0x5E; break;
          default: return false;
        }
        loadVal(RAX, areg, fi.a, fi.immA);
        loadVal(RCX, breg, fi.b, fi.immB);
        a_.movqXR(0, RAX);
        a_.movqXR(1, RCX);
        a_.sseRR(opc, 0, 1);
        a_.movqRX(RAX, 0);
        a_.movMR(R12, regDisp(fi.dst), RAX);
        return true; // float ops leave the bounds register alone
      }
      case sb::Op::FNeg:
        // IEEE negation is exactly a sign-bit flip (NaNs included).
        loadVal(RAX, areg, fi.a, fi.immA);
        a_.movRI(RCX, 0x8000000000000000ull);
        a_.aluRR(0x31, RAX, RCX);
        a_.movMR(R12, regDisp(fi.dst), RAX);
        return true;
      case sb::Op::FCmp: {
        loadVal(RAX, areg, fi.a, fi.immA);
        loadVal(RCX, breg, fi.b, fi.immB);
        a_.movqXR(0, RAX);
        a_.movqXR(1, RCX);
        // ucomisd sets ZF/PF/CF; unordered sets all three. Lt/Le use
        // the swapped compare so "unordered => false" falls out of
        // the unsigned-above conditions, same as the C++ operators
        // the interpreter evaluates.
        switch (static_cast<FCmpPred>(fi.sub)) {
          case FCmpPred::Eq:
            a_.ucomisd(0, 1);
            a_.setcc(CC_E, RAX);
            a_.setcc(CC_NP, RCX);
            a_.alu8RR(0x20, RAX, RCX); // and al, cl
            break;
          case FCmpPred::Ne:
            a_.ucomisd(0, 1);
            a_.setcc(CC_NE, RAX);
            a_.setcc(CC_P, RCX);
            a_.alu8RR(0x08, RAX, RCX); // or al, cl
            break;
          case FCmpPred::Lt:
            a_.ucomisd(1, 0);
            a_.setcc(CC_A, RAX);
            break;
          case FCmpPred::Le:
            a_.ucomisd(1, 0);
            a_.setcc(CC_AE, RAX);
            break;
          case FCmpPred::Gt:
            a_.ucomisd(0, 1);
            a_.setcc(CC_A, RAX);
            break;
          case FCmpPred::Ge:
            a_.ucomisd(0, 1);
            a_.setcc(CC_AE, RAX);
            break;
        }
        a_.movzxRR8(RAX, RAX);
        a_.movMR(R12, regDisp(fi.dst), RAX);
        return true;
      }
      case sb::Op::Cast:
        loadVal(RAX, areg, fi.a, fi.immA);
        switch (static_cast<Opcode>(fi.sub)) {
          case Opcode::SIToFP:
            a_.cvtsi2sd(0, RAX);
            a_.movqRX(RAX, 0);
            break;
          case Opcode::FPToSI:
            // cvttsd2si is what the compiled interpreter executes for
            // the double->int64 cast, including the 0x8000.. result
            // on overflow/NaN.
            a_.movqXR(0, RAX);
            a_.cvttsd2si(RAX, 0);
            break;
          case Opcode::SExt:
            sextReg(RAX, static_cast<unsigned>(fi.immB));
            break;
          case Opcode::ZExt:
            if (static_cast<unsigned>(fi.immB) < 64) {
                a_.shiftI(EXT_SHL, RAX,
                          64 - static_cast<unsigned>(fi.immB));
                a_.shiftI(EXT_SHR, RAX,
                          64 - static_cast<unsigned>(fi.immB));
            }
            break;
          case Opcode::Trunc:
            sextReg(RAX, fi.sextBits); // identity when sextBits == 0
            break;
          default: return false;
        }
        a_.movMR(R12, regDisp(fi.dst), RAX);
        return true; // casts leave the bounds register alone
      case sb::Op::Select: {
        Label pick_c, done;
        loadVal(RAX, areg, fi.a, fi.immA);
        a_.aluRR(0x85, RAX, RAX);
        a_.jcc(CC_E, pick_c);
        loadVal(RAX, breg, fi.b, fi.immB);
        a_.movMR(R12, regDisp(fi.dst), RAX);
        if (breg)
            boundsCopy(fi.dst, fi.b);
        else
            boundsClear(fi.dst);
        a_.jmp(done);
        a_.bind(pick_c);
        loadVal(RAX, creg, fi.c, fi.immC);
        a_.movMR(R12, regDisp(fi.dst), RAX);
        if (creg)
            boundsCopy(fi.dst, fi.c);
        else
            boundsClear(fi.dst);
        a_.bind(done);
        return true;
      }
      case sb::Op::GepConst:
        loadVal(RAX, areg, fi.a, fi.immA);
        if (static_cast<int64_t>(fi.immB) ==
            static_cast<int64_t>(static_cast<int32_t>(fi.immB))) {
            a_.aluRI(EXT_ADD, RAX, static_cast<int32_t>(fi.immB));
        } else {
            a_.movRI(RCX, fi.immB);
            a_.aluRR(0x01, RAX, RCX);
        }
        a_.movMR(R12, regDisp(fi.dst), RAX);
        if (areg)
            boundsCopy(fi.dst, fi.a);
        else
            boundsClear(fi.dst);
        return true;
      case sb::Op::GepReg:
        loadVal(RAX, areg, fi.a, fi.immA);
        a_.movRM(RCX, R12, regDisp(fi.c));
        a_.movRI(RDX, fi.immB);
        a_.imulRR(RCX, RDX);
        a_.aluRR(0x01, RAX, RCX);
        a_.movMR(R12, regDisp(fi.dst), RAX);
        if (areg)
            boundsCopy(fi.dst, fi.a);
        else
            boundsClear(fi.dst);
        return true;
      case sb::Op::IfpAdd:
        a_.movRM(RDI, R12, regDisp(fi.a));
        loadVal(RSI, creg, fi.c, fi.immB);
        a_.leaRM(RDX, R13, bndDisp(fi.a));
        callAbs(reinterpret_cast<const void *>(&helpIfpAdd));
        a_.movMR(R12, regDisp(fi.dst), RAX);
        boundsCopy(fi.dst, fi.a);
        return true;
      case sb::Op::IfpIdx:
        a_.movRM(RDI, R12, regDisp(fi.a));
        a_.movRI(RSI, fi.immB);
        callAbs(reinterpret_cast<const void *>(&helpIfpIdx));
        a_.movMR(R12, regDisp(fi.dst), RAX);
        boundsCopy(fi.dst, fi.a);
        return true;
      case sb::Op::IfpBnd:
        a_.movRM(RDI, R12, regDisp(fi.a));
        a_.movMR(R12, regDisp(fi.dst), RDI); // regs[dst] = raw first
        a_.movRI(RSI, fi.immB);
        a_.leaRM(RDX, R13, bndDisp(fi.dst));
        callAbs(reinterpret_cast<const void *>(&helpIfpBnd));
        return true;
      case sb::Op::IfpChk:
        a_.movRM(RDI, R12, regDisp(fi.a));
        a_.leaRM(RSI, R13, bndDisp(fi.a));
        a_.movRI(RDX, fi.immB);
        callAbs(reinterpret_cast<const void *>(&helpIfpChk));
        a_.movMR(R12, regDisp(fi.dst), RAX);
        return true; // bounds register untouched
      case sb::Op::MovGlobalBnd: {
        // Pure function of two immediates: fold at compile time.
        Bounds nb = ops::ifpBnd(TaggedPtr(fi.immA), fi.immB);
        a_.movRI(RAX, fi.immA);
        a_.movMR(R12, regDisp(fi.dst), RAX);
        boundsLiteral(fi.dst, nb);
        return true;
      }

      // --- sync: memory ---
      case sb::Op::Load:
        loadVal(R14, areg, fi.a, fi.immA);
        canonFromR14();
        check(fi, idx, Ck::Reg, fi.a);
        charges(fi, 1, 0, 1, 0, 0);
        memAccess(fi, /*isStore=*/false);
        return true;
      case sb::Op::Store:
        loadVal(R14, breg, fi.b, fi.immB);
        canonFromR14();
        check(fi, idx, Ck::Reg, fi.b);
        charges(fi, 1, 0, 1, 0, 0);
        memAccess(fi, /*isStore=*/true);
        return true;
      case sb::Op::FusedGepLoad:
      case sb::Op::FusedGepStore: {
        // raw = base + (creg ? regs[c] * immB : immB)
        loadVal(R14, areg, fi.a, fi.immA);
        if (creg) {
            a_.movRM(RCX, R12, regDisp(fi.c));
            a_.movRI(RDX, fi.immB);
            a_.imulRR(RCX, RDX);
            a_.aluRR(0x01, R14, RCX);
        } else if (fi.immB != 0) {
            if (static_cast<int64_t>(fi.immB) ==
                static_cast<int64_t>(static_cast<int32_t>(fi.immB))) {
                a_.aluRI(EXT_ADD, R14, static_cast<int32_t>(fi.immB));
            } else {
                a_.movRI(RCX, fi.immB);
                a_.aluRR(0x01, R14, RCX);
            }
        }
        canonFromR14();
        // The interpreter checks against bounds[b] *after* writing
        // bounds[b] = areg ? bounds[a] : cleared; checking the source
        // before any write sees the identical bounds value, so a trap
        // bails with no partial effects.
        check(fi, idx, areg ? Ck::Reg : Ck::Cleared, fi.a);
        charges(fi, fi.sub + 1u, fi.sub, 1, 0, 0);
        a_.movMR(R12, regDisp(fi.b), R14);
        if (areg)
            boundsCopy(fi.b, fi.a);
        else
            boundsClear(fi.b);
        memAccess(fi, fi.op == sb::Op::FusedGepStore);
        return true;
      }
      case sb::Op::FusedIfpAddLoad:
      case sb::Op::FusedIfpAddStore:
        a_.movRM(RDI, R12, regDisp(fi.a));
        loadVal(RSI, creg, fi.c, fi.immB);
        a_.leaRM(RDX, R13, bndDisp(fi.a));
        callAbs(reinterpret_cast<const void *>(&helpIfpAdd));
        a_.movRR(R14, RAX);
        canonFromR14();
        // bounds[b] will be a copy of bounds[a]; check the source.
        check(fi, idx, Ck::Reg, fi.a);
        charges(fi, 2, 0, 1, 1, 1);
        a_.movMR(R12, regDisp(fi.b), R14);
        boundsCopy(fi.b, fi.a);
        memAccess(fi, fi.op == sb::Op::FusedIfpAddStore);
        return true;
      case sb::Op::FusedChkLoad:
      case sb::Op::FusedChkStore:
        a_.movRM(RDI, R12, regDisp(fi.a));
        a_.leaRM(RSI, R13, bndDisp(fi.a));
        a_.movRI(RDX, fi.immB);
        callAbs(reinterpret_cast<const void *>(&helpIfpChk));
        a_.movRR(R14, RAX);
        canonFromR14();
        // ifpchk leaves bounds[b] alone; the dereference consults the
        // *current* bounds[b], exactly as the interpreter does.
        check(fi, idx, Ck::Reg, fi.b);
        charges(fi, 2, 0, 1, 1, 1);
        a_.movMR(R12, regDisp(fi.b), R14);
        memAccess(fi, fi.op == sb::Op::FusedChkStore);
        return true;

      // --- terminators ---
      case sb::Op::Jmp:
        charges(fi, 1, 1, 0, 0, 0);
        flushPending(pending_);
        chainOrExit(fi.target0);
        return true;
      case sb::Op::Br: {
        charges(fi, 1, 1, 0, 0, 0);
        flushPending(pending_);
        loadVal(RDX, areg, fi.a, fi.immA);
        a_.aluRR(0x85, RDX, RDX);
        Label not_taken;
        a_.jcc(CC_E, not_taken); // zero condition falls to target1
        chainOrExit(fi.target0);
        a_.bind(not_taken);
        chainOrExit(fi.target1);
        return true;
      }
      case sb::Op::FusedCmpBr: {
        charges(fi, 2, 2, 0, 0, 0);
        flushPending(pending_);
        loadVal(RAX, areg, fi.a, fi.immA);
        loadVal(RCX, breg, fi.b, fi.immB);
        a_.aluRR(0x39, RAX, RCX);
        a_.setcc(icmpCC(fi.sub), RDX);
        a_.movzxRR8(RDX, RDX);
        a_.movMR(R12, regDisp(fi.dst), RDX);
        boundsClear(fi.dst);
        a_.aluRR(0x85, RDX, RDX);
        Label not_taken;
        a_.jcc(CC_E, not_taken); // zero condition falls to target1
        chainOrExit(fi.target0);
        a_.bind(not_taken);
        chainOrExit(fi.target1);
        return true;
      }

      case sb::Op::Div: {
        // Any div-by-zero bails so the interpreter re-executes the
        // record and raises the exact DivisionByZero trap.
        Label &bail = bailFor(idx);
        charges(fi, 1, 1, 0, 0, 0);
        loadVal(RAX, areg, fi.a, fi.immA);
        loadVal(RCX, breg, fi.b, fi.immB);
        a_.aluRR(0x85, RCX, RCX);
        a_.jcc(CC_E, bail);
        Opcode op = static_cast<Opcode>(fi.sub);
        bool is_rem = op == Opcode::SRem || op == Opcode::URem;
        if (op == Opcode::SDiv || op == Opcode::SRem) {
            // INT64_MIN / -1 faults in idiv; the interpreter defines
            // it as (lhs, 0) — compute that without dividing.
            Label do_div, store;
            a_.aluRI(EXT_CMP, RCX, -1);
            a_.jcc(CC_NE, do_div);
            a_.movRI(RDX, 0x8000000000000000ULL);
            a_.aluRR(0x39, RAX, RDX);
            a_.jcc(CC_NE, do_div);
            if (is_rem)
                a_.movRI(RAX, 0);
            a_.jmp(store);
            a_.bind(do_div);
            a_.cqo();
            a_.idivR(RCX);
            if (is_rem)
                a_.movRR(RAX, RDX);
            a_.bind(store);
        } else {
            a_.movRI(RDX, 0);
            a_.divR(RCX);
            if (is_rem)
                a_.movRR(RAX, RDX);
        }
        sextReg(RAX, fi.sextBits);
        a_.movMR(R12, regDisp(fi.dst), RAX);
        boundsClear(fi.dst);
        return true;
      }

      case sb::Op::Alloca: {
        if (bind_.sp == nullptr)
            return false;
        // On overflow the interpreter re-executes the record (write
        // sp_, then throw), so the emitted path must bail *before*
        // touching sp_ for the replay to start from the same state.
        Label &bail = bailFor(idx);
        charges(fi, 1, 1, 0, 0, 0);
        a_.movRI(R11, reinterpret_cast<uint64_t>(bind_.sp));
        a_.movRM(RAX, R11, 0);
        if (fi.size <=
            static_cast<uint64_t>(
                std::numeric_limits<int32_t>::max())) {
            a_.aluRI(EXT_SUB, RAX, static_cast<int32_t>(fi.size));
        } else {
            a_.movRI(RCX, fi.size);
            a_.aluRR(0x29, RAX, RCX);
        }
        a_.aluRI(EXT_AND, RAX, -16); // roundDown(sp - size, 16)
        a_.movRI(RCX, layout::stackLimit);
        a_.aluRR(0x39, RAX, RCX);
        a_.jcc(CC_B, bail);
        a_.movMR(R11, 0, RAX);
        a_.movMR(R12, regDisp(fi.dst), RAX);
        boundsClear(fi.dst);
        return true;
      }

      case sb::Op::Call:
      case sb::Op::CallPtr: {
        if (!bind_.inlineCalls || bind_.machine == nullptr)
            return false;
        charges(fi, 1, 1, 0, 0, 0);
        // The runtime (and everything below it: callee charges, budget
        // guards, traps) reads the live counters, so the prefix sums
        // must be settled — and restarted — around the call.
        flushPending(pending_);
        pending_ = Pending{};
        // Chained jumps do not maintain frame.curBlock; a trap inside
        // the callee symbolizes the caller from it, so store the
        // compile-time block id before entering the runtime.
        a_.movRM(RAX, RBX, offsetof(RunCtx, curBlock));
        a_.movRI(RCX, ctx_.blockId);
        a_.movMR32(RAX, 0, RCX);
        a_.movRI(RDI, reinterpret_cast<uint64_t>(bind_.machine));
        a_.movRI(RSI, reinterpret_cast<uint64_t>(&fi));
        callAbs(reinterpret_cast<const void *>(&guestCallRuntime));
        a_.aluRI(EXT_CMP, RAX, 1);
        a_.jcc(CC_E, extExitFor(idx, kExitBail | kExitTrapBit));
        a_.jcc(CC_A, extExitFor(idx, kExitBail | kExitGeneralBit));
        return true;
      }

      case sb::Op::Promote: {
        if (!bind_.inlineCalls || bind_.machine == nullptr)
            return false;
        // Own charge is 1 cycle in the Promote class; the runtime adds
        // the engine's extra cycles and counters directly, which is
        // order-independent with the deferred prefix sums (nothing in
        // a block reads the cells).
        charges(fi, 1, 0, 0, 0, 0);
        pending_.promote += 1;
        a_.movRI(RDI, reinterpret_cast<uint64_t>(bind_.machine));
        a_.movRM(RSI, R12, regDisp(fi.a));
        a_.leaRM(RDX, R13, bndDisp(fi.dst));
        callAbs(reinterpret_cast<const void *>(&promoteRuntime));
        a_.movMR(R12, regDisp(fi.dst), RAX);
        return true;
      }

      case sb::Op::Ret: {
        if (!bind_.inlineCalls)
            return false;
        charges(fi, 1, 1, 0, 0, 0);
        // The activation epilogue's saved-bounds reload, exactly as
        // the interpreter's Ret charges it.
        pending_.instrs += ctx_.savedBounds;
        pending_.cycles += ctx_.savedBoundsCycles;
        pending_.bnd += ctx_.savedBoundsCycles;
        pending_.bndCnt += ctx_.savedBounds;
        flushPending(pending_);
        a_.movRM(RCX, RBX, offsetof(RunCtx, retBounds));
        a_.aluRR(0x85, RCX, RCX);
        Label no_bounds;
        a_.jcc(CC_E, no_bounds);
        if (areg) {
            a_.movRM(RAX, R13, bndDisp(fi.a) + 0);
            a_.movMR(RCX, 0, RAX);
            a_.movRM(RAX, R13, bndDisp(fi.a) + 8);
            a_.movMR(RCX, 8, RAX);
            a_.movRM(RAX, R13, bndDisp(fi.a) + 16);
            a_.movMR(RCX, 16, RAX);
        } else {
            a_.movMI(RCX, 0, 0);
            a_.movMI(RCX, 8, 0);
            a_.movMI(RCX, 16, 0);
        }
        a_.bind(no_bounds);
        if (fi.flags & sb::kMisc)
            a_.movRI(RAX, 0);
        else
            loadVal(RAX, areg, fi.a, fi.immA);
        a_.movMR(RBX, offsetof(RunCtx, retVal), RAX);
        counterAdd(bind_.tierInlineRets, 1);
        a_.movRI(RAX, kExitRet);
        a_.jmp(epilogue_);
        return true;
      }

      // --- everything else runs interpreted (heap allocation, frees,
      // object registration, trap) ---
      default:
        return false;
    }
}

bool
isTerminatorOp(sb::Op op)
{
    return op == sb::Op::Jmp || op == sb::Op::Br ||
           op == sb::Op::FusedCmpBr || op == sb::Op::Ret ||
           op == sb::Op::Trap;
}

} // namespace

bool
available()
{
    return ExecArena::supported();
}

const char *
unavailableReason()
{
    return available() ? "" : "host refuses executable mappings";
}

bool
compileBlock(const BlockCtx &ctx, const MachineBinding &bind,
             ExecArena &arena, CompiledBlock &out, uint32_t minCovered)
{
    if (!available())
        return false;
    // Bail-family exit values carry the block id in bits 60:32.
    if (ctx.blockId > kExitBlockMask)
        return false;
    const sb::Block &blk = ctx.blocks[ctx.blockId];
    Compiler c(ctx, bind);
    uint32_t covered = 0;
    bool full = false;
    for (uint32_t i = 0; i < blk.records.size(); ++i) {
        const sb::Record &fi = blk.records[i];
        if (!c.emitRecord(fi, i))
            break;
        ++covered;
        if (isTerminatorOp(fi.op)) {
            full = true;
            break;
        }
    }
    if (covered == 0 || (!full && covered < minCovered))
        return false;
    if (!full)
        c.emitBailExit(covered);
    const std::vector<uint8_t> &code = c.finish();
    const void *fn = arena.add(code.data(), code.size());
    if (fn == nullptr)
        return false;
    out.fn = reinterpret_cast<BlockFn>(const_cast<void *>(fn));
    out.chainEntry =
        reinterpret_cast<const uint8_t *>(fn) + c.entryOff();
    out.covered = covered;
    out.full = full;
    out.codeBytes = static_cast<uint32_t>(code.size());
    return true;
}

#else // !__x86_64__

bool
available()
{
    return false;
}

const char *
unavailableReason()
{
    return "template JIT targets x86-64 only";
}

bool
compileBlock(const sb::Block &, const MachineBinding &, ExecArena &,
             CompiledBlock &, uint32_t)
{
    return false;
}

#endif

} // namespace jit
} // namespace infat
