#include "vm/tier.hh"

namespace infat {

TierController::TierController()
    : stats_("vm.tier"),
      promotions_(stats_.counter("jit_promotions")),
      compileFailures_(stats_.counter("jit_compile_failures")),
      blocksRun_(stats_.counter("jit_blocks")),
      bailouts_(stats_.counter("jit_bailouts")),
      coveredRecords_(stats_.counter("jit_covered_records")),
      fullBlocks_(stats_.counter("jit_full_blocks")),
      codeBytes_(stats_.counter("jit_code_bytes")),
      deopts_(stats_.counter("deopts")),
      thresholdStat_(stats_.counter("promotion_threshold")),
      threadedStat_(stats_.counter("threaded_dispatch")),
      jitStat_(stats_.counter("jit_active")),
      callsInlined_(stats_.counter("call_inlined")),
      callRets_(stats_.counter("call_jit_rets")),
      callTrapUnwinds_(stats_.counter("call_trap_unwinds")),
      callBudgetExits_(stats_.counter("call_budget_exits")),
      callDeoptExits_(stats_.counter("call_deopt_exits"))
{
    stats_.formula("jit_bailout_rate", [this] {
        uint64_t runs = blocksRun_.value();
        return runs == 0 ? 0.0
                         : static_cast<double>(bailouts_.value()) /
                               static_cast<double>(runs);
    });
}

void
TierController::configure(bool threaded, bool jit_on,
                          uint32_t threshold)
{
    threadedStat_.set(threaded ? 1 : 0);
    jitStat_.set(jit_on ? 1 : 0);
    thresholdStat_.set(threshold);
}

int32_t
TierController::compile(const sb::FunctionCode &fc, uint32_t block_id)
{
    // While a deferred deopt is draining, the unit table still holds
    // the stale code live emitted frames will return through; adding
    // new units would hand out ids that the drain is about to clear.
    if (pendingInvalidate_)
        return kRetryLater;
    jit::BlockCtx ctx;
    ctx.blocks = fc.blocks.data();
    ctx.jitEntries = fc.jitEntries.data();
    ctx.blockId = block_id;
    ctx.savedBounds = fc.savedBounds;
    ctx.savedBoundsCycles = fc.savedBoundsCycles;
    jit::CompiledBlock unit;
    if (!jit::compileBlock(ctx, bind_, arena_, unit)) {
        compileFailures_++;
        return -1;
    }
    promotions_++;
    coveredRecords_ += unit.covered;
    if (unit.full)
        fullBlocks_++;
    codeBytes_.set(arena_.bytesUsed());
    units_.push_back(unit);
    // Publish the chained entry: terminators of other compiled blocks
    // in this function may now jump here directly.
    fc.jitEntries[block_id] = unit.chainEntry;
    return static_cast<int32_t>(units_.size() - 1);
}

void
TierController::invalidateAll()
{
    if (units_.empty())
        return;
    deopts_++;
    if (jitFramesLive_ > 0) {
        // Emitted frames on the host stack will still execute stale
        // code until they unwind; keep it mapped. The caller already
        // un-published every unit id and chain entry, so no *new*
        // execution can reach it, and jitGuestCall forces each live
        // frame out through the general-engine unwind path.
        pendingInvalidate_ = true;
        return;
    }
    dropUnits();
}

void
TierController::dropUnits()
{
    units_.clear();
    arena_.releaseAll();
    codeBytes_.set(0);
    pendingInvalidate_ = false;
}

} // namespace infat
