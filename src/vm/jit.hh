/**
 * @file
 * x86-64 template JIT for hot superblocks (tier 2 of vm/tier.hh).
 *
 * A compiled block is the longest *prefix* of a superblock's record
 * array made of records a template covers: every pure record (ALU,
 * moves, geps, single-cycle IFP arithmetic via tiny out-of-line
 * helpers), plain and fused loads/stores with the implicit IFP
 * tag-and-bounds check inlined branchlessly on the hit path, and the
 * in-block terminators (jmp / br / fused cmp+br). Anything else —
 * calls, division, allocation and promote-engine records, ret, trap —
 * ends the prefix: the emitted code exits back to the interpreter with
 * the record index to resume from (a "bailout"), and the interpreter
 * executes the rest of the block with exact semantics.
 *
 * Exactness contract (the same one the superblock engine obeys): a
 * record either executes completely in jitted code — with simulated
 * instruction/cycle/class charges and counters identical to the
 * interpreter's, applied through addresses baked in at compile time —
 * or not at all. In particular a memory record evaluates its check
 * predicates *before* any register/bounds write or counter charge; if
 * any predicate might trap, the code bails out with no record side
 * effects and the interpreter re-executes the record from scratch,
 * raising the exact trap (kind, message, forensics) the general engine
 * would. Cache timing and guest memory go through the simulator's own
 * Cache::access / GuestMemory::load|store, so the timing model and the
 * mem/l1d stat groups move exactly as interpreted execution moves
 * them.
 */

#ifndef INFAT_VM_JIT_HH
#define INFAT_VM_JIT_HH

#include <cstdint>

#include "ifp/bounds.hh"
#include "vm/superblock.hh"

namespace infat {

class Cache;
class GuestMemory;
class ExecArena;

namespace jit {

/** True when this build/host can emit and run jitted blocks. */
bool available();
/** Why not (empty string when available()). */
const char *unavailableReason();

/**
 * Per-invocation state handed to a compiled block (SysV arg 0). Only
 * the frame pointers vary between invocations; everything else a block
 * needs is baked into its code as absolute addresses.
 */
struct RunCtx
{
    uint64_t *regs;
    Bounds *bounds;
};

/**
 * Return-value protocol of a compiled block: bit 63 clear means
 * execution ran to a terminator and the low 32 bits are the next
 * BlockId; bit 63 set means a bailout — bits 62:32 are the BlockId of
 * the block the bail happened in (compiled blocks chain directly into
 * each other, so this is not necessarily the block the interpreter
 * entered) and the low 32 bits are the record index to resume at,
 * with no partial effects from that record applied.
 */
constexpr uint64_t kExitBail = 1ULL << 63;

using BlockFn = uint64_t (*)(RunCtx *);

/** Machine-state addresses baked into emitted code. */
struct MachineBinding
{
    uint64_t *instrs = nullptr;
    uint64_t *cycles = nullptr;
    uint64_t *classBase = nullptr;
    uint64_t *classMem = nullptr;
    uint64_t *classIfp = nullptr;
    uint64_t *cLoads = nullptr;
    uint64_t *cStores = nullptr;
    uint64_t *cImplicitChecks = nullptr;
    uint64_t *cIfpArith = nullptr;
    GuestMemory *mem = nullptr;
    Cache *l1d = nullptr;
    bool useCache = true;
    /**
     * VmConfig::maxInstructions: chained block-to-block jumps replay
     * the dispatch loop's block-entry budget guard before bypassing
     * it, falling back to the interpreter (which replays on the
     * general engine for an exact-instruction trap) when the target
     * block's static charges could cross the limit.
     */
    uint64_t maxInstructions = ~0ULL;
    /** vm.tier.jit_blocks cell; chained entries count themselves. */
    uint64_t *tierBlocksRun = nullptr;
};

/**
 * The function-level context of the block being compiled: terminators
 * chain directly (a tail jump, skipping the interpreter loop head and
 * the prologue/epilogue pair) to any successor whose slot in the
 * per-function entry table is already published, and bail exits
 * identify their own block to the interpreter.
 */
struct BlockCtx
{
    /** The function's block array (for successors' static charges). */
    const sb::Block *blocks = nullptr;
    /** sb::FunctionCode::jitEntries.data(): chained entry points. */
    const void *const *jitEntries = nullptr;
    /** Id of the block being compiled. */
    uint32_t blockId = 0;
};

struct CompiledBlock
{
    BlockFn fn = nullptr;
    /**
     * Entry point that skips the prologue, for direct block-to-block
     * chaining: valid only while r12/r13 already hold the frame's
     * reg/bounds arrays, i.e. when jumped to from another compiled
     * block of the same frame.
     */
    const void *chainEntry = nullptr;
    /** Records the prefix covers (rest runs interpreted). */
    uint32_t covered = 0;
    /** True when the prefix reaches the block terminator. */
    bool full = false;
    uint32_t codeBytes = 0;
};

/**
 * Compile the longest supported prefix of block @p ctx.blockId.
 * Returns false (and leaves @p out untouched) when no leading record
 * has a template, the prefix stops before the terminator with fewer
 * than @p minCovered records (not worth the call-out), or the arena
 * cannot map executable memory.
 */
bool compileBlock(const BlockCtx &ctx, const MachineBinding &bind,
                  ExecArena &arena, CompiledBlock &out,
                  uint32_t minCovered = 4);

} // namespace jit
} // namespace infat

#endif // INFAT_VM_JIT_HH
