/**
 * @file
 * x86-64 template JIT for hot superblocks (tier 2 of vm/tier.hh).
 *
 * A compiled block is the longest *prefix* of a superblock's record
 * array made of records a template covers: every pure record (ALU,
 * moves, geps, single-cycle IFP arithmetic via tiny out-of-line
 * helpers), plain and fused loads/stores with the implicit IFP
 * tag-and-bounds check inlined branchlessly on the hit path, and the
 * in-block terminators (jmp / br / fused cmp+br), plus — since the
 * guest calling convention moved into emitted code — division, stack
 * allocation, promote-engine records, guest calls (through the
 * Machine::jitGuestCall runtime entry, which runs the callee through
 * the normal tiered machinery so hot callees execute their own jitted
 * blocks), and ret. Anything else — heap allocation, frees, object
 * registration, trap — ends the prefix: the emitted code exits back to
 * the interpreter with the record index to resume from (a "bailout"),
 * and the interpreter executes the rest of the block with exact
 * semantics.
 *
 * Exactness contract (the same one the superblock engine obeys): a
 * record either executes completely in jitted code — with simulated
 * instruction/cycle/class charges and counters identical to the
 * interpreter's, applied through addresses baked in at compile time —
 * or not at all. In particular a memory record evaluates its check
 * predicates *before* any register/bounds write or counter charge; if
 * any predicate might trap, the code bails out with no record side
 * effects and the interpreter re-executes the record from scratch,
 * raising the exact trap (kind, message, forensics) the general engine
 * would. Cache timing and guest memory go through the simulator's own
 * Cache::access / GuestMemory::load|store, so the timing model and the
 * mem/l1d stat groups move exactly as interpreted execution moves
 * them.
 */

#ifndef INFAT_VM_JIT_HH
#define INFAT_VM_JIT_HH

#include <cstdint>

#include "ifp/bounds.hh"
#include "vm/superblock.hh"

namespace infat {

class Cache;
class GuestMemory;
class ExecArena;
class Machine;

namespace jit {

/** True when this build/host can emit and run jitted blocks. */
bool available();
/** Why not (empty string when available()). */
const char *unavailableReason();

/**
 * Per-invocation state handed to a compiled block (SysV arg 0). Only
 * the frame pointers vary between invocations; everything else a block
 * needs is baked into its code as absolute addresses.
 */
struct RunCtx
{
    uint64_t *regs;
    Bounds *bounds;
    /**
     * &Frame::curBlock of the executing frame. Chained jumps do not
     * maintain it, so the call template stores its own block id here
     * before entering the runtime: a trap inside the callee must
     * symbolize the caller's exact block for forensics.
     */
    ir::BlockId *curBlock = nullptr;
    /** Guest return value, set by an emitted Ret before kExitRet. */
    uint64_t retVal = 0;
    /** The caller's ret_bounds slot (may be null), for emitted Ret. */
    Bounds *retBounds = nullptr;
};

/**
 * Return-value protocol of a compiled block. Bit 63 clear: either the
 * kExitRet sentinel (an emitted Ret completed the activation and
 * RunCtx::retVal/retBounds hold the result) or the low 32 bits are the
 * next BlockId. Bit 63 set means the block did not run to a plain
 * terminator — bits 60:32 are the BlockId of the block the exit
 * happened in (compiled blocks chain directly into each other, so this
 * is not necessarily the block the interpreter entered) and the low
 * 32 bits are the record index involved:
 *
 *  - neither kExitTrapBit nor kExitGeneralBit: a bailout — resume
 *    interpreting at that record, no partial effects applied;
 *  - kExitTrapBit: a guest trap was raised inside a jitted callee and
 *    parked in Machine::pendingTrap_ (a C++ exception must not unwind
 *    through an emitted frame); the dispatch loop rethrows it;
 *  - kExitGeneralBit: the rest of the activation must replay on the
 *    general engine starting *after* that record (post-call budget
 *    pressure, or a deopt inside the callee forcing every live
 *    emitted frame to unwind).
 */
constexpr uint64_t kExitBail = 1ULL << 63;
constexpr uint64_t kExitTrapBit = 1ULL << 62;
constexpr uint64_t kExitGeneralBit = 1ULL << 61;
/** Block-id field of a bail-family exit value (bits 60:32). */
constexpr uint64_t kExitBlockMask = 0x1FFFFFFFULL;
/** Distinguished non-bail exit: an emitted Ret ended the activation. */
constexpr uint64_t kExitRet = 1ULL << 62;

using BlockFn = uint64_t (*)(RunCtx *);

/** Machine-state addresses baked into emitted code. */
struct MachineBinding
{
    uint64_t *instrs = nullptr;
    uint64_t *cycles = nullptr;
    uint64_t *classBase = nullptr;
    uint64_t *classMem = nullptr;
    uint64_t *classIfp = nullptr;
    uint64_t *cLoads = nullptr;
    uint64_t *cStores = nullptr;
    uint64_t *cImplicitChecks = nullptr;
    uint64_t *cIfpArith = nullptr;
    GuestMemory *mem = nullptr;
    Cache *l1d = nullptr;
    bool useCache = true;
    /**
     * VmConfig::maxInstructions: chained block-to-block jumps replay
     * the dispatch loop's block-entry budget guard before bypassing
     * it, falling back to the interpreter (which replays on the
     * general engine for an exact-instruction trap) when the target
     * block's static charges could cross the limit.
     */
    uint64_t maxInstructions = ~0ULL;
    /** vm.tier.jit_blocks cell; chained entries count themselves. */
    uint64_t *tierBlocksRun = nullptr;
    /** vm.tier.call_jit_rets cell; emitted Rets count themselves. */
    uint64_t *tierInlineRets = nullptr;
    /** BndLdSt class-cycle cell (emitted Ret's saved-bounds reload). */
    uint64_t *classBndLdSt = nullptr;
    /** vm.bnd_ldst counter cell (paired with classBndLdSt). */
    uint64_t *cBndLdSt = nullptr;
    /** Promote class-cycle cell (emitted Promote's own charge). */
    uint64_t *classPromote = nullptr;
    /** &Machine::sp_, for the emitted Alloca stack-pointer update. */
    uint64_t *sp = nullptr;
    /**
     * Runtime-entry receiver for guest calls and promotes. When null
     * (or inlineCalls is false — the jit-nocalls ablation engine),
     * Call/CallPtr/Ret/Alloca/Promote records have no template and the
     * block bails at them as PR 7 did.
     */
    Machine *machine = nullptr;
    bool inlineCalls = true;
};

/**
 * Out-of-line runtime entries for the emitted guest-call convention,
 * defined next to the interpreter in machine.cc so the semantics stay
 * side by side. guestCallRuntime executes one Call/CallPtr record
 * (argument marshalling, depth guard, callee execution through the
 * normal tiered machinery, return write-back) and reports how emitted
 * code must continue; promoteRuntime executes one Promote record's
 * engine decision and returns the (possibly rewritten) pointer.
 */
constexpr uint64_t kCallOk = 0;           ///< continue in emitted code
constexpr uint64_t kCallTrapPending = 1;  ///< exit kExitTrapBit
constexpr uint64_t kCallResumeGeneral = 2;///< exit kExitGeneralBit
uint64_t guestCallRuntime(Machine *m, const sb::Record *rec);
uint64_t promoteRuntime(Machine *m, uint64_t raw, Bounds *out_bounds);

/**
 * The function-level context of the block being compiled: terminators
 * chain directly (a tail jump, skipping the interpreter loop head and
 * the prologue/epilogue pair) to any successor whose slot in the
 * per-function entry table is already published, and bail exits
 * identify their own block to the interpreter.
 */
struct BlockCtx
{
    /** The function's block array (for successors' static charges). */
    const sb::Block *blocks = nullptr;
    /** sb::FunctionCode::jitEntries.data(): chained entry points. */
    const void *const *jitEntries = nullptr;
    /** Id of the block being compiled. */
    uint32_t blockId = 0;
    /**
     * The function's saved-bounds reload charge, replayed by an
     * emitted Ret exactly as Machine::execFunction's epilogue charges
     * it: savedBounds instructions/bnd_ldst ops, savedBoundsCycles
     * cycles in the BndLdSt class.
     */
    uint32_t savedBounds = 0;
    uint32_t savedBoundsCycles = 0;
};

struct CompiledBlock
{
    BlockFn fn = nullptr;
    /**
     * Entry point that skips the prologue, for direct block-to-block
     * chaining: valid only while r12/r13 already hold the frame's
     * reg/bounds arrays, i.e. when jumped to from another compiled
     * block of the same frame.
     */
    const void *chainEntry = nullptr;
    /** Records the prefix covers (rest runs interpreted). */
    uint32_t covered = 0;
    /** True when the prefix reaches the block terminator. */
    bool full = false;
    uint32_t codeBytes = 0;
};

/**
 * Compile the longest supported prefix of block @p ctx.blockId.
 * Returns false (and leaves @p out untouched) when no leading record
 * has a template, the prefix stops before the terminator with fewer
 * than @p minCovered records (not worth the call-out), or the arena
 * cannot map executable memory.
 */
bool compileBlock(const BlockCtx &ctx, const MachineBinding &bind,
                  ExecArena &arena, CompiledBlock &out,
                  uint32_t minCovered = 4);

} // namespace jit
} // namespace infat

#endif // INFAT_VM_JIT_HH
