/**
 * @file
 * Superblock interpreter: per-function predecode into basic blocks of
 * fully-resolved records covering every opcode.
 *
 * The general interpreter (machine.cc) re-derives everything per
 * instruction: operand kinds, cycle classes, field offsets, tracer
 * checks. The superblock engine resolves all of that once per function
 * and then dispatches within a block over a flat record array:
 *
 *  - every operand is a pre-resolved register index or constant
 *    (immediates, global addresses, function indices are folded);
 *  - adjacent instruction pairs the instrumentation pass emits are
 *    fused into single records (icmp+br, gep+load/store,
 *    ifpadd+load/store, ifpchk+load/store, mov-global+ifpbnd);
 *  - the fixed instruction/cycle contribution of a run of pure
 *    (non-throwing, non-memory) records is precomputed and charged in
 *    one shot at the next sync record, instead of per instruction;
 *  - statically redundant implicit checks (same address expression,
 *    same bounds register, no intervening redefinition, access size
 *    covered by an earlier successful check in the same block) skip
 *    the host-side predicate evaluation while still counting in the
 *    simulated check statistics.
 *
 * Everything here is a host-side optimization: simulated instruction
 * counts, cycles, per-class attribution, checksums, trap kinds and
 * messages, and every exported stat are bit-identical to the general
 * path (tools/superblock_diff.cc and tests/superblock_test.cc gate
 * this). The engine is bypassed whenever a trace sink or the
 * differential oracle is attached, and bails out to the general
 * interpreter mid-block when the instruction budget could expire
 * inside a block's batched charges.
 */

#ifndef INFAT_VM_SUPERBLOCK_HH
#define INFAT_VM_SUPERBLOCK_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "ir/function.hh"
#include "mem/address_space.hh"
#include "support/stats.hh"

namespace infat {
namespace ir {
class Module;
} // namespace ir
namespace sb {

/**
 * Record opcodes. "Pure" records cannot throw and touch no memory or
 * variable-cost machinery; their instruction/cycle charges are batched
 * into the `pre*` fields of the next sync record. Sync records apply
 * their pending batch, then their own exact per-instruction charge,
 * before any observable side effect — so at every point where the
 * simulation can trap or interact with the timing model, the counters
 * equal the general path's.
 */
enum class Op : uint8_t
{
    // --- pure ---
    MovRR,       ///< dst = reg a (bounds propagate)
    MovImm,      ///< dst = immA (bounds cleared)
    AddRR,       ///< dst = reg a + reg b
    AddRI,       ///< dst = reg a + immB
    IntBin,      ///< sub = Opcode: Sub/Mul/And/Or/Xor/Shl/LShr/AShr
    ICmp,        ///< sub = ICmpPred
    FBin,        ///< sub = Opcode: FAdd/FSub/FMul/FDiv
    FNeg,        ///< dst = -a (float)
    FCmp,        ///< sub = FCmpPred
    Cast,        ///< sub = Opcode: SIToFP/FPToSI/SExt/ZExt/Trunc
    Select,      ///< dst = a ? b : c (operands a / b|immB / c|immC)
    GepConst,    ///< dst = base(a|immA) + immB (field or imm-index gep)
    GepReg,      ///< dst = base(a|immA) + reg c * immB (reg-index gep)
    IfpAdd,      ///< dst = ifpadd(reg a, delta c|immB)
    IfpIdx,      ///< dst = ifpidx(reg a, immB)
    IfpBnd,      ///< dst = reg a, bounds = ifpbnd(reg a, immB)
    IfpChk,      ///< dst = ifpchk(reg a, bounds[a], immB)
    MovGlobalBnd, ///< dst = immA (global), bounds = ifpbnd(immA, immB)

    // --- sync: memory ---
    Load,            ///< dst = *(addr a|immA), size bytes
    Store,           ///< *(addr b|immB) = value a|immA
    FusedGepLoad,    ///< gep into reg b, then load into dst
    FusedGepStore,   ///< gep into reg b, then store value d|immC
    FusedIfpAddLoad, ///< ifpadd into reg b, then load into dst
    FusedIfpAddStore, ///< ifpadd into reg b, then store value d|immC
    FusedChkLoad,    ///< ifpchk into reg b, then load into dst
    FusedChkStore,   ///< ifpchk into reg b, then store value d|immC

    // --- sync: other ---
    Div,          ///< sub = Opcode: SDiv/SRem/UDiv/URem
    Alloca,       ///< dst = stack slot (size = precomputed slot bytes)
    Call,         ///< resolved callee; args via orig
    CallPtr,      ///< indirect call through value a|immA
    MallocTyped,  ///< dst = malloc(count(a|immA) * size)
    FreePtr,      ///< free(a|immA)
    Promote,      ///< dst = promote(reg a)
    RegisterObj,  ///< dst = register(reg a, immB bytes, layout c)
    DeregisterObj, ///< deregister(a|immA)
    IfpMallocTyped, ///< dst = ifp malloc(count(a|immA) * size, layout c)
    IfpFree,      ///< ifp free(a|immA)

    // --- terminators ---
    Jmp,        ///< goto target0
    Br,         ///< if (a|immA) goto target0 else target1
    FusedCmpBr, ///< icmp (sub) a|immA, b|immB into dst, then branch
    Ret,        ///< return a|immA (kRetNone: void)
    Trap,       ///< workload assert, code immA
};

/** Operand-kind and behaviour flags. */
enum RecordFlags : uint8_t
{
    kAReg = 1,  ///< operand a is a register (else immA)
    kBReg = 2,  ///< operand b is a register (else immB)
    kCReg = 4,  ///< operand c is a register (else immC / immB per op)
    kDReg = 8,  ///< store value is a register d (else immC)
    /** Memory op: perform the implicit IFPR bounds check (the address
     *  operand is a register and implicit checking is configured). */
    kCheckBounds = 16,
    /** Memory op: check statically proven redundant — skip the
     *  predicate evaluation, keep the simulated accounting. */
    kElide = 32,
    /** Ret: void (None operand). Alloca: padded (registered) slot. */
    kMisc = 64,
    /** Call: caller side of the bounds-passing convention holds. */
    kPassBounds = 128,
};

/**
 * One fully-resolved record. Fused records keep the general path's
 * exact sub-step order: intermediate register/bounds writes happen
 * before the access check, which happens before the data access.
 * `nextIp` and `rest` support the mid-block bail-out to the general
 * interpreter when the instruction budget could expire before the
 * block's remaining static charges land.
 */
struct Record
{
    Op op = Op::Jmp;
    uint8_t sub = 0;      ///< secondary opcode / predicate / gep instrs
    uint8_t flags = 0;
    uint8_t sextBits = 0; ///< sign-extend result from this width; 0=no
    uint8_t ldClass = 8;  ///< memory access width class (1/2/4/8)
    uint8_t width = 0;    ///< LShr: operand width to mask to; 0 = none
    ir::Reg dst = 0;
    uint32_t a = 0;
    uint32_t b = 0;       ///< second source / fused intermediate dst
    uint32_t c = 0;       ///< third source / index reg / LayoutId
    uint32_t d = 0;       ///< fused store value register
    uint64_t immA = 0;
    uint64_t immB = 0;
    uint64_t immC = 0;
    uint64_t size = 0;    ///< access bytes / slot bytes / element size

    // Batched charges of the pure run preceding this sync record.
    uint32_t preInstr = 0;
    uint32_t preCycles = 0;
    uint32_t preBase = 0;   ///< CycleClass::Base share of preCycles
    uint32_t preIfp = 0;    ///< CycleClass::IfpArith class cycles
    uint32_t preIfpCnt = 0; ///< vm.ifp_arith counter increments

    /** Static instruction charges after this record to block end. */
    uint32_t rest = 0;
    /** General-path ip of the first instruction after this record. */
    uint32_t nextIp = 0;

    ir::BlockId target0 = 0;
    ir::BlockId target1 = 0;
    /** Original instruction (arg lists, oracle-free heavy ops). */
    const ir::Instr *orig = nullptr;
    /** Pre-resolved direct-call callee. */
    const ir::Function *callee = nullptr;
};

/** Tier-promotion states of Block::jitId (vm/tier.hh). */
constexpr int32_t kJitNone = -1;  // not promoted (yet)
constexpr int32_t kJitNever = -2; // compile failed; never retry

struct Block
{
    std::vector<Record> records;
    /** Sum of all static instruction charges in the block. */
    uint64_t totalInstr = 0;

    // Tier-2 promotion state, owned by the dispatch loop. Host-side
    // bookkeeping only (mutable: predecoded code is semantically
    // const); reset by Machine::invalidateTieredCode.
    mutable uint32_t hotCount = 0;
    mutable int32_t jitId = kJitNone;
};

struct FunctionCode
{
    std::vector<Block> blocks;
    /**
     * Chained entry point of each compiled block (vm/jit.hh), or null
     * while the block is uncompiled. Sized to blocks by predecode;
     * published by TierController::compile and read from emitted code
     * so jitted terminators can jump block-to-block without returning
     * to the dispatch loop. Host-side tier state like Block::jitId
     * (mutable for the same reason); cleared on deoptimization.
     */
    mutable std::vector<const void *> jitEntries;
    /**
     * The function's return-path saved-bounds reload charge (same
     * formula Machine::execFunction uses for the entry-path spill):
     * savedBounds bnd_ldst instructions costing savedBoundsCycles
     * cycles. Precomputed here so the JIT's emitted Ret can replay the
     * charge without consulting the Function at run time.
     */
    uint32_t savedBounds = 0;
    uint32_t savedBoundsCycles = 0;
};

/** Predecode-time configuration (a snapshot of the VmConfig bits the
 *  records bake in, plus the constants needed to fold operands). */
struct PredecodeOptions
{
    bool fuse = true;
    bool checkElim = true;
    bool implicitChecks = true;
    bool superscalar = false;
    bool instrumented = false;
    /** Null-guard boundary (GuestMemory::pageSize). */
    GuestAddr nullGuard = 0;
    /** Resolved raw pointer values of module globals. */
    const std::vector<uint64_t> *globalPtrRaw = nullptr;
    const ir::Module *module = nullptr;
};

/**
 * Counters in the "vm.superblock" stat group, resolved once. All of
 * these describe the host-side engine (predecode shape and how checks
 * were executed); none affect or appear in simulated statistics, and
 * the differential test excludes this group when comparing engines.
 */
struct Stats
{
    explicit Stats(StatGroup &g)
        : functions(g.counter("functions")),
          blocks(g.counter("blocks")),
          records(g.counter("records")),
          fusedRecords(g.counter("fused_records")),
          fusedCmpBr(g.counter("fused_cmp_br")),
          fusedGepLoad(g.counter("fused_gep_load")),
          fusedGepStore(g.counter("fused_gep_store")),
          fusedIfpAddLoad(g.counter("fused_ifpadd_load")),
          fusedIfpAddStore(g.counter("fused_ifpadd_store")),
          fusedChkLoad(g.counter("fused_chk_load")),
          fusedChkStore(g.counter("fused_chk_store")),
          fusedMovBnd(g.counter("fused_mov_bnd")),
          elideSites(g.counter("elide_sites")),
          elideConstSites(g.counter("elide_const_sites")),
          checksFull(g.counter("checks_full")),
          checksElided(g.counter("checks_elided")),
          fusedExec(g.counter("fused_exec"))
    {
        g.formula("check_elim_rate", [this] {
            uint64_t total = checksFull.value() + checksElided.value();
            return total == 0 ? 0.0
                              : static_cast<double>(
                                    checksElided.value()) /
                                    static_cast<double>(total);
        });
    }

    // Predecode-time shape.
    Counter &functions;
    Counter &blocks;
    Counter &records;
    Counter &fusedRecords;
    Counter &fusedCmpBr;
    Counter &fusedGepLoad;
    Counter &fusedGepStore;
    Counter &fusedIfpAddLoad;
    Counter &fusedIfpAddStore;
    Counter &fusedChkLoad;
    Counter &fusedChkStore;
    Counter &fusedMovBnd;
    Counter &elideSites;
    Counter &elideConstSites;
    // Runtime check execution.
    Counter &checksFull;
    Counter &checksElided;
    Counter &fusedExec;
};

/** Predecode @p func into superblock records. */
FunctionCode predecode(const ir::Function &func,
                       const PredecodeOptions &opts, Stats &stats);

} // namespace sb
} // namespace infat

#endif // INFAT_VM_SUPERBLOCK_HH
