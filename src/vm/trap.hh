/**
 * @file
 * Guest traps.
 *
 * A trap models a synchronous hardware exception delivered to the
 * process. In the FPGA prototype a spatial violation surfaces as a
 * segmentation fault from dereferencing a poisoned pointer (paper §A.5);
 * here it surfaces as a C++ exception the harness catches.
 */

#ifndef INFAT_VM_TRAP_HH
#define INFAT_VM_TRAP_HH

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

#include "ifp/bounds.hh"
#include "ifp/tag.hh"
#include "support/logging.hh"

namespace infat {

struct TrapReport;

enum class TrapKind
{
    /** Load/store through a pointer with non-valid poison bits. */
    PoisonedAccess,
    /** Implicit or explicit bounds check failed at dereference. */
    BoundsViolation,
    /** Dereference of (or near) NULL. */
    NullDereference,
    /** Integer division by zero. */
    DivisionByZero,
    /** Guest stack exhausted. */
    StackOverflow,
    /** Workload-level assertion failed (IR Trap instruction). */
    WorkloadAssert,
    /** Indirect call to a bad function index. */
    BadIndirectCall,
    /** Instruction budget exceeded (runaway guard). */
    InstructionLimit,
};

const char *toString(TrapKind kind);

class GuestTrap : public std::runtime_error
{
  public:
    GuestTrap(TrapKind kind, std::string detail)
        : std::runtime_error(std::string(toString(kind)) + ": " + detail),
          kind_(kind)
    {
    }

    TrapKind kind() const { return kind_; }

    /** True for the traps a spatial-memory-safety defense raises. */
    bool
    isSpatialViolation() const
    {
        return kind_ == TrapKind::PoisonedAccess ||
               kind_ == TrapKind::BoundsViolation;
    }

    /**
     * Forensics report (vm/forensics.hh), attached by the machine's
     * top-level trap handler before the trap propagates to the
     * harness. Null when the machine was destroyed before attachment
     * could run (never for traps escaping Machine::run). The report
     * never alters what(): trap messages stay bit-identical across
     * engines and with forensics on or off.
     */
    const TrapReport *report() const { return report_.get(); }
    std::shared_ptr<const TrapReport> reportPtr() const { return report_; }
    void
    attachReport(std::shared_ptr<const TrapReport> report)
    {
        report_ = std::move(report);
    }

  private:
    TrapKind kind_;
    std::shared_ptr<const TrapReport> report_;
};

/**
 * Canonical detail strings for the dereference-check traps. Both the
 * general interpreter's checkAccess and the superblock engine's fused
 * check records build their messages here, so trap verdicts stay
 * bit-identical across engines.
 */
inline std::string
poisonedAccessDetail(TaggedPtr ptr, bool write)
{
    return strfmt("%s at %s", write ? "store" : "load",
                  ptr.toString().c_str());
}

inline std::string
nullDerefDetail(GuestAddr addr)
{
    return strfmt("address %#llx",
                  static_cast<unsigned long long>(addr));
}

inline std::string
boundsViolationDetail(GuestAddr addr, uint64_t size, const Bounds &bounds,
                      bool write)
{
    return strfmt("%s of %llu bytes at %#llx outside %s",
                  write ? "store" : "load",
                  static_cast<unsigned long long>(size),
                  static_cast<unsigned long long>(addr),
                  bounds.toString().c_str());
}

} // namespace infat

#endif // INFAT_VM_TRAP_HH
