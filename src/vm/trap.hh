/**
 * @file
 * Guest traps.
 *
 * A trap models a synchronous hardware exception delivered to the
 * process. In the FPGA prototype a spatial violation surfaces as a
 * segmentation fault from dereferencing a poisoned pointer (paper §A.5);
 * here it surfaces as a C++ exception the harness catches.
 */

#ifndef INFAT_VM_TRAP_HH
#define INFAT_VM_TRAP_HH

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

#include "ifp/bounds.hh"
#include "ifp/tag.hh"
#include "support/logging.hh"

namespace infat {

struct TrapReport;

enum class TrapKind
{
    /** Load/store through a pointer with non-valid poison bits. */
    PoisonedAccess,
    /** Implicit or explicit bounds check failed at dereference. */
    BoundsViolation,
    /**
     * Load/store through a stale pointer: the generation key failed
     * the lock comparison at promote (use-after-free).
     */
    TemporalViolation,
    /**
     * Free-path violation detected by the runtime: double free, free
     * of a stale pointer, or free of an interior/unknown address.
     */
    InvalidFree,
    /** Dereference of (or near) NULL. */
    NullDereference,
    /** Integer division by zero. */
    DivisionByZero,
    /** Guest stack exhausted. */
    StackOverflow,
    /** Workload-level assertion failed (IR Trap instruction). */
    WorkloadAssert,
    /** Indirect call to a bad function index. */
    BadIndirectCall,
    /** Instruction budget exceeded (runaway guard). */
    InstructionLimit,
};

// Header-only (the runtime library throws GuestTrap on free-path
// violations and links below infat_vm, so trap machinery cannot live
// in the vm library's objects).
inline const char *
toString(TrapKind kind)
{
    switch (kind) {
      case TrapKind::PoisonedAccess:
        return "poisoned access";
      case TrapKind::BoundsViolation:
        return "bounds violation";
      case TrapKind::TemporalViolation:
        return "temporal violation";
      case TrapKind::InvalidFree:
        return "invalid free";
      case TrapKind::NullDereference:
        return "null dereference";
      case TrapKind::DivisionByZero:
        return "division by zero";
      case TrapKind::StackOverflow:
        return "stack overflow";
      case TrapKind::WorkloadAssert:
        return "workload assertion";
      case TrapKind::BadIndirectCall:
        return "bad indirect call";
      case TrapKind::InstructionLimit:
        return "instruction limit";
    }
    return "?";
}

class GuestTrap : public std::runtime_error
{
  public:
    GuestTrap(TrapKind kind, std::string detail)
        : std::runtime_error(std::string(toString(kind)) + ": " + detail),
          kind_(kind)
    {
    }

    TrapKind kind() const { return kind_; }

    /** True for the traps a spatial-memory-safety defense raises. */
    bool
    isSpatialViolation() const
    {
        return kind_ == TrapKind::PoisonedAccess ||
               kind_ == TrapKind::BoundsViolation;
    }

    /** True for the traps the temporal (lock-and-key) defense raises. */
    bool
    isTemporalViolation() const
    {
        return kind_ == TrapKind::TemporalViolation ||
               kind_ == TrapKind::InvalidFree;
    }

    /** Any memory-safety detection (spatial or temporal axis). */
    bool
    isSafetyViolation() const
    {
        return isSpatialViolation() || isTemporalViolation();
    }

    /**
     * Forensics report (vm/forensics.hh), attached by the machine's
     * top-level trap handler before the trap propagates to the
     * harness. Null when the machine was destroyed before attachment
     * could run (never for traps escaping Machine::run). The report
     * never alters what(): trap messages stay bit-identical across
     * engines and with forensics on or off.
     */
    const TrapReport *report() const { return report_.get(); }
    std::shared_ptr<const TrapReport> reportPtr() const { return report_; }
    void
    attachReport(std::shared_ptr<const TrapReport> report)
    {
        report_ = std::move(report);
    }

  private:
    TrapKind kind_;
    std::shared_ptr<const TrapReport> report_;
};

/**
 * Canonical detail strings for the dereference-check traps. Both the
 * general interpreter's checkAccess and the superblock engine's fused
 * check records build their messages here, so trap verdicts stay
 * bit-identical across engines.
 */
inline std::string
poisonedAccessDetail(TaggedPtr ptr, bool write)
{
    return strfmt("%s at %s", write ? "store" : "load",
                  ptr.toString().c_str());
}

/**
 * Trap kind for a dereference through a poisoned pointer: temporal
 * staleness gets its own kind, everything else is the classic spatial
 * PoisonedAccess. Shared by the general interpreter and the superblock
 * engine so both throw identical traps (the JIT bails out to the
 * interpreter before any trap is raised).
 */
inline TrapKind
poisonTrapKind(Poison poison)
{
    return poison == Poison::TemporalStale ? TrapKind::TemporalViolation
                                           : TrapKind::PoisonedAccess;
}

inline std::string
invalidFreeDetail(const char *what, TaggedPtr ptr)
{
    return strfmt("%s of %s", what, ptr.toString().c_str());
}

inline std::string
nullDerefDetail(GuestAddr addr)
{
    return strfmt("address %#llx",
                  static_cast<unsigned long long>(addr));
}

inline std::string
boundsViolationDetail(GuestAddr addr, uint64_t size, const Bounds &bounds,
                      bool write)
{
    return strfmt("%s of %llu bytes at %#llx outside %s",
                  write ? "store" : "load",
                  static_cast<unsigned long long>(size),
                  static_cast<unsigned long long>(addr),
                  bounds.toString().c_str());
}

} // namespace infat

#endif // INFAT_VM_TRAP_HH
