/**
 * @file
 * Set-associative cache timing model.
 *
 * The model tracks tags only; data always lives in GuestMemory and is
 * functionally correct regardless of cache state. What the cache provides
 * is hit/miss classification and latency, which is what the paper's
 * evaluation discusses (L1 data cache thrashing in health/ft, and the
 * subheap scheme's metadata sharing reducing misses, §5.2.2).
 *
 * The geometry defaults mirror the CVA6 core used for the FPGA prototype:
 * a 32 KiB 8-way L1D with 16-byte lines and no L2 (Genesys-2 DDR behind).
 */

#ifndef INFAT_CACHE_CACHE_HH
#define INFAT_CACHE_CACHE_HH

#include <cstdint>
#include <vector>

#include "mem/address_space.hh"
#include "support/stats.hh"
#include "support/trace.hh"

namespace infat {

struct CacheConfig
{
    uint64_t sizeBytes = 32 * 1024;
    unsigned assoc = 8;
    unsigned lineBytes = 16;
    unsigned hitLatency = 1;
    unsigned missPenalty = 20;
};

/** Result of one cache access. */
struct CacheAccessResult
{
    bool hit;
    unsigned latency;
};

class Cache
{
  public:
    explicit Cache(std::string name, CacheConfig config = {});

    // The stats members below hold references into stats_, so copying
    // would silently alias another instance's counters.
    Cache(const Cache &) = delete;
    Cache &operator=(const Cache &) = delete;

    /**
     * Access @p len bytes at @p addr. Accesses that span lines touch each
     * line; the returned latency is the worst line's latency (the CVA6
     * LSU serializes split accesses, but one extra cycle is noise here).
     */
    CacheAccessResult access(GuestAddr addr, uint64_t len, bool is_write);

    /**
     * Chain a next cache level: misses are refilled from it and pay
     * its access latency instead of this level's flat missPenalty.
     * The CVA6 FPGA prototype has no L2 (the paper's board goes
     * straight to DDR); the ASIC prediction model adds one.
     */
    void setNextLevel(Cache *next) { nextLevel_ = next; }
    Cache *nextLevel() const { return nextLevel_; }

    /** Invalidate everything (used between benchmark configurations). */
    void flush();

    /**
     * Attach a tracer: misses emit `cache`-category events. The tracer
     * (and its clock) must outlive the cache or be detached first.
     */
    void setTracer(Tracer *tracer) { tracer_ = tracer; }

    uint64_t hits() const { return hits_.value(); }
    uint64_t misses() const { return misses_.value(); }
    uint64_t accesses() const { return hits() + misses(); }

    double
    missRate() const
    {
        uint64_t total = accesses();
        return total == 0 ? 0.0
                          : static_cast<double>(misses()) /
                                static_cast<double>(total);
    }

    StatGroup &stats() { return stats_; }
    const CacheConfig &config() const { return config_; }

    // Public (with jitHooks() below) so the template JIT can inline
    // the single-line MRU-hit fast path of access(); see mruLine_.
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        uint64_t tag = 0;
        uint64_t lruStamp = 0;
    };

    /**
     * Raw state the template JIT (vm/jit.cc) bakes into emitted code
     * to inline the single-line MRU-hit path of access(): compare the
     * line address against *mruLine, and on equality perform exactly
     * the updates accessLine()'s memo path does — (*mruPtr)->lruStamp
     * = ++*lruClock, dirty |= is_write, ++*hits — charging hitLatency.
     * Anything else (multi-line access, memo miss) must fall back to
     * calling access(). All pointers are stable for the cache's
     * lifetime.
     */
    struct JitHooks
    {
        uint64_t *mruLine;
        Line **mruPtr;
        uint64_t *lruClock;
        uint64_t *hits;
        unsigned lineShift;
        unsigned hitLatency;
    };
    JitHooks
    jitHooks()
    {
        return {&mruLine_, &mruPtr_,    &lruClock_,
                hits_.cell(), lineShift_, config_.hitLatency};
    }

  private:
    /** Returns the latency of accessing one line. */
    unsigned accessLine(uint64_t line_addr, bool is_write);

    CacheConfig config_;
    unsigned numSets_;
    // lineBytes and numSets_ are enforced powers of two; the per-access
    // address math uses these shifts instead of runtime divisions.
    unsigned lineShift_ = 0;
    unsigned setShift_ = 0;
    std::vector<Line> lines_;
    /**
     * Line address of the most recent hit, or ~0 when no hit is
     * memoized. Lines are only replaced on a miss and every miss
     * clears this memo, so a repeat access to the memoized line is
     * guaranteed to still hit — the fast path performs the identical
     * stat and LRU updates the way loop would, just without the walk.
     * mruPtr_ stays valid because lines_ never resizes after
     * construction.
     */
    uint64_t mruLine_ = ~0ULL;
    Line *mruPtr_ = nullptr;
    Cache *nextLevel_ = nullptr;
    Tracer *tracer_ = nullptr;
    uint64_t lruClock_ = 0;
    StatGroup stats_;
    // Hot-path stats, resolved once (see stats.hh on reference
    // stability) so per-access cost is a plain increment.
    Counter &hits_;
    Counter &misses_;
    Counter &evictions_;
    Counter &writebacks_;
    Histogram &missLatency_;
};

} // namespace infat

#endif // INFAT_CACHE_CACHE_HH
