#include "cache/cache.hh"

#include "support/bitops.hh"
#include "support/logging.hh"

namespace infat {

Cache::Cache(std::string name, CacheConfig config)
    : config_(config), stats_(std::move(name)),
      hits_(stats_.counter("hits")), misses_(stats_.counter("misses")),
      evictions_(stats_.counter("evictions")),
      writebacks_(stats_.counter("writebacks")),
      missLatency_(stats_.histogram("miss_latency", Histogram::log2(12)))
{
    fatal_if(!isPowerOf2(config_.lineBytes), "cache line size not pow2");
    fatal_if(config_.sizeBytes % (config_.lineBytes * config_.assoc) != 0,
             "cache size not divisible by way size");
    numSets_ = static_cast<unsigned>(
        config_.sizeBytes / (config_.lineBytes * config_.assoc));
    fatal_if(!isPowerOf2(numSets_), "cache set count not pow2");
    lineShift_ = static_cast<unsigned>(log2Floor(config_.lineBytes));
    setShift_ = static_cast<unsigned>(log2Floor(numSets_));
    lines_.resize(static_cast<size_t>(numSets_) * config_.assoc);
    stats_.formula("miss_rate", [this] { return missRate(); });
}

unsigned
Cache::accessLine(uint64_t line_addr, bool is_write)
{
    // No miss (and thus no replacement) has happened since the
    // memoized line last hit, so it must still be resident: skip the
    // way walk. See mruLine_ in the header for the exactness argument.
    if (line_addr == mruLine_) {
        mruPtr_->lruStamp = ++lruClock_;
        mruPtr_->dirty |= is_write;
        hits_++;
        return config_.hitLatency;
    }
    uint64_t set = line_addr & (numSets_ - 1);
    uint64_t tag = line_addr >> setShift_;
    Line *set_base = &lines_[set * config_.assoc];

    for (unsigned way = 0; way < config_.assoc; ++way) {
        Line &line = set_base[way];
        if (line.valid && line.tag == tag) {
            line.lruStamp = ++lruClock_;
            line.dirty |= is_write;
            hits_++;
            mruLine_ = line_addr;
            mruPtr_ = &line;
            return config_.hitLatency;
        }
    }
    misses_++;
    mruLine_ = ~0ULL;

    // Miss: pick a victim, preferring an invalid way, else true LRU.
    Line *victim = set_base;
    for (unsigned way = 1; way < config_.assoc && victim->valid; ++way) {
        Line &line = set_base[way];
        if (!line.valid || line.lruStamp < victim->lruStamp)
            victim = &line;
    }
    if (victim->valid) {
        evictions_++;
        if (victim->dirty)
            writebacks_++;
    }
    victim->valid = true;
    victim->dirty = is_write;
    victim->tag = tag;
    victim->lruStamp = ++lruClock_;

    // Refill from the next level when one is chained; otherwise pay
    // the flat memory penalty.
    unsigned fill;
    if (nextLevel_) {
        fill = nextLevel_
                   ->access(line_addr * config_.lineBytes,
                            config_.lineBytes, false)
                   .latency;
    } else {
        fill = config_.missPenalty;
    }
    unsigned latency = config_.hitLatency + fill;
    missLatency_.sample(latency);
    if (tracer_ && tracer_->enabled(TraceCategory::Cache)) {
        tracer_->instant(TraceCategory::Cache,
                         stats_.name() + (is_write ? ".wmiss" : ".rmiss"),
                         {{"addr", line_addr * config_.lineBytes},
                          {"latency", uint64_t{latency}}});
    }
    return latency;
}

CacheAccessResult
Cache::access(GuestAddr addr, uint64_t len, bool is_write)
{
    GuestAddr canon = layout::canonical(addr);
    uint64_t first_line = canon >> lineShift_;
    uint64_t last_line = len == 0
                             ? first_line
                             : (canon + len - 1) >> lineShift_;

    // Nearly every access fits one line; keep that path branch-light.
    if (first_line == last_line) {
        unsigned latency = accessLine(first_line, is_write);
        return {latency <= config_.hitLatency, latency};
    }
    unsigned worst = config_.hitLatency;
    bool all_hit = true;
    for (uint64_t line = first_line; line <= last_line; ++line) {
        unsigned latency = accessLine(line, is_write);
        if (latency > config_.hitLatency)
            all_hit = false;
        if (latency > worst)
            worst = latency;
    }
    return {all_hit, worst};
}

void
Cache::flush()
{
    for (auto &line : lines_) {
        line.valid = false;
        line.dirty = false;
    }
    mruLine_ = ~0ULL;
}

} // namespace infat
