/**
 * @file
 * Sparse paged model of the guest physical/virtual memory.
 *
 * Pages are materialized lazily on first touch and zero-filled, the same
 * observable behaviour as anonymous mmap under the paper's modified Linux
 * (the experiments run with vm.overcommit_memory=1). The page high-water
 * mark doubles as the "maximum resident size" statistic that the paper
 * reads from `time -v` for Figure 12.
 */

#ifndef INFAT_MEM_GUEST_MEMORY_HH
#define INFAT_MEM_GUEST_MEMORY_HH

#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>

#include "mem/address_space.hh"
#include "support/stats.hh"

namespace infat {

class GuestMemory
{
  public:
    static constexpr unsigned pageShift = 12;
    static constexpr uint64_t pageSize = 1ULL << pageShift;

    GuestMemory() : stats_("mem")
    {
        stats_.formula("resident_bytes",
                       [this] { return double(residentBytes()); });
        stats_.formula("utlb_hit_rate", [this] {
            uint64_t total = utlbHits_ + utlbMisses_;
            return total == 0 ? 0.0
                              : double(utlbHits_) / double(total);
        });
    }

    // stats_ holds a self-referential formula; copying would alias it.
    GuestMemory(const GuestMemory &) = delete;
    GuestMemory &operator=(const GuestMemory &) = delete;

    void read(GuestAddr addr, void *out, uint64_t len);
    void write(GuestAddr addr, const void *in, uint64_t len);

    /** Typed accessors; addresses are canonicalized (tag bits ignored). */
    template <typename T>
    T
    load(GuestAddr addr)
    {
        GuestAddr canon = layout::canonical(addr);
        uint64_t off = canon & (pageSize - 1);
        if ((canon >> pageShift) == utlbPage_ &&
            off + sizeof(T) <= pageSize) {
            ++utlbHits_;
            T value;
            std::memcpy(&value, utlbData_ + off, sizeof(T));
            return value;
        }
        T value;
        read(canon, &value, sizeof(T));
        return value;
    }

    template <typename T>
    void
    store(GuestAddr addr, T value)
    {
        GuestAddr canon = layout::canonical(addr);
        uint64_t off = canon & (pageSize - 1);
        if ((canon >> pageShift) == utlbPage_ &&
            off + sizeof(T) <= pageSize) {
            ++utlbHits_;
            std::memcpy(utlbData_ + off, &value, sizeof(T));
            return;
        }
        write(canon, &value, sizeof(T));
    }

    /** Zero @p len bytes starting at @p addr. */
    void fill(GuestAddr addr, uint8_t byte, uint64_t len);

    /** memcpy within guest memory. Ranges must not overlap. */
    void copy(GuestAddr dst, GuestAddr src, uint64_t len);

    /** Number of distinct pages ever touched. */
    uint64_t pagesTouched() const { return pages_.size(); }

    /** Bytes of guest memory ever touched (resident-set model). */
    uint64_t residentBytes() const { return pages_.size() * pageSize; }

    StatGroup &stats() { return stats_; }

  private:
    uint8_t *pageFor(GuestAddr addr);

    std::unordered_map<uint64_t, std::unique_ptr<uint8_t[]>> pages_;

    /**
     * One-entry page-translation cache ("micro-TLB"): the page the
     * last access touched. Sequential loads/stores — the overwhelmingly
     * common pattern in the workloads — skip the unordered_map lookup
     * entirely. Page storage is heap-allocated and never freed for the
     * lifetime of the GuestMemory, so the cached data pointer stays
     * valid across rehashes. Purely a host-side speedup: no simulated
     * stat or timing changes (the simulated TLB/cache model is the
     * Cache class, not this).
     */
    uint64_t utlbPage_ = ~0ULL;
    uint8_t *utlbData_ = nullptr;
    uint64_t utlbHits_ = 0;
    uint64_t utlbMisses_ = 0;

    StatGroup stats_;
};

} // namespace infat

#endif // INFAT_MEM_GUEST_MEMORY_HH
