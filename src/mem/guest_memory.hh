/**
 * @file
 * Sparse paged model of the guest physical/virtual memory.
 *
 * Pages are materialized lazily on first touch and zero-filled, the same
 * observable behaviour as anonymous mmap under the paper's modified Linux
 * (the experiments run with vm.overcommit_memory=1). The page high-water
 * mark doubles as the "maximum resident size" statistic that the paper
 * reads from `time -v` for Figure 12.
 */

#ifndef INFAT_MEM_GUEST_MEMORY_HH
#define INFAT_MEM_GUEST_MEMORY_HH

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>

#include "mem/address_space.hh"
#include "support/stats.hh"

namespace infat {

class GuestMemory
{
  public:
    static constexpr unsigned pageShift = 12;
    static constexpr uint64_t pageSize = 1ULL << pageShift;

    GuestMemory() : stats_("mem")
    {
        stats_.formula("resident_bytes",
                       [this] { return double(residentBytes()); });
        stats_.formula("utlb_hit_rate", [this] {
            uint64_t total = utlbHits_ + utlbMisses_;
            return total == 0 ? 0.0
                              : double(utlbHits_) / double(total);
        });
    }

    // stats_ holds a self-referential formula; copying would alias it.
    GuestMemory(const GuestMemory &) = delete;
    GuestMemory &operator=(const GuestMemory &) = delete;

    void read(GuestAddr addr, void *out, uint64_t len);
    void write(GuestAddr addr, const void *in, uint64_t len);

    /** Typed accessors; addresses are canonicalized (tag bits ignored). */
    template <typename T>
    T
    load(GuestAddr addr)
    {
        GuestAddr canon = layout::canonical(addr);
        uint64_t off = canon & (pageSize - 1);
        uint64_t page = canon >> pageShift;
        const UtlbEntry &e = utlb_[page & (utlbEntries - 1)];
        if (e.page == page && off + sizeof(T) <= pageSize) {
            ++utlbHits_;
            T value;
            std::memcpy(&value, e.data + off, sizeof(T));
            return value;
        }
        T value;
        read(canon, &value, sizeof(T));
        return value;
    }

    template <typename T>
    void
    store(GuestAddr addr, T value)
    {
        GuestAddr canon = layout::canonical(addr);
        uint64_t off = canon & (pageSize - 1);
        uint64_t page = canon >> pageShift;
        const UtlbEntry &e = utlb_[page & (utlbEntries - 1)];
        if (e.page == page && off + sizeof(T) <= pageSize) {
            ++utlbHits_;
            std::memcpy(e.data + off, &value, sizeof(T));
            return;
        }
        write(canon, &value, sizeof(T));
    }

    /** Zero @p len bytes starting at @p addr. */
    void fill(GuestAddr addr, uint8_t byte, uint64_t len);

    /** memcpy within guest memory. Ranges must not overlap. */
    void copy(GuestAddr dst, GuestAddr src, uint64_t len);

    /**
     * Release the pages fully covered by [addr, addr + len) back to
     * the host, as munmap would. Subsequent touches re-materialize
     * them zero-filled. Invalidates the micro-TLB: the cached data
     * pointer may refer to a page being released, and a later
     * re-materialization of the same guest page lands at a different
     * host address — serving a stale hit there would read freed host
     * memory, not the (zeroed) guest page.
     */
    void unmap(GuestAddr addr, uint64_t len);

    /** Currently mapped pages. */
    uint64_t pagesMapped() const { return pages_.size(); }

    /** High-water mark of simultaneously mapped pages. */
    uint64_t
    pagesTouched() const
    {
        return std::max<uint64_t>(pagesPeak_, pages_.size());
    }

    /**
     * Peak bytes of guest memory simultaneously mapped — the
     * "maximum resident size" model Figure 12 reads. Unaffected by
     * unmap(), exactly as an RSS high-water mark would be.
     */
    uint64_t residentBytes() const { return pagesTouched() * pageSize; }

    StatGroup &stats() { return stats_; }

    /**
     * Direct-mapped page-translation cache ("micro-TLB"), indexed by
     * the low page-number bits. Loads/stores that hit skip the
     * unordered_map lookup entirely; multiple entries keep alternating
     * access streams (object data on one page, allocator or IFP
     * metadata on another) from thrashing the way a single entry did.
     * Page storage is heap-allocated and only freed by unmap() — which
     * invalidates the whole uTLB — so cached data pointers stay valid
     * across rehashes. Purely a host-side speedup: no simulated stat
     * or timing changes (the simulated TLB/cache model is the Cache
     * class, not this).
     *
     * The type, entry count, and hit counter are public so the
     * template JIT (vm/jit.cc) can inline the hit path of load()/
     * store() — which must bump utlbHits_ exactly as the inline
     * members above do, since the "mem" stat group (utlb_hit_rate) is
     * part of the engine-differential comparison.
     */
    static constexpr unsigned utlbEntries = 64; // power of two
    struct UtlbEntry
    {
        uint64_t page = ~0ULL;
        uint8_t *data = nullptr;
    };
    const UtlbEntry *utlbForJit() const { return utlb_; }
    uint64_t *utlbHitsForJit() { return &utlbHits_; }

  private:
    uint8_t *pageFor(GuestAddr addr);

    std::unordered_map<uint64_t, std::unique_ptr<uint8_t[]>> pages_;

    UtlbEntry utlb_[utlbEntries];
    uint64_t utlbHits_ = 0;
    uint64_t utlbMisses_ = 0;
    /** High-water mark of pages_.size(), maintained across unmap(). */
    uint64_t pagesPeak_ = 0;

    StatGroup stats_;
};

} // namespace infat

#endif // INFAT_MEM_GUEST_MEMORY_HH
