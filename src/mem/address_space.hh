/**
 * @file
 * Guest virtual address space layout.
 *
 * The simulated machine is a 64-bit architecture with a 44-bit virtual
 * address space. The upper 16 bits of every pointer carry the In-Fat
 * Pointer tag (paper §3); bits 47:44 — architecturally address bits,
 * but unused by a 44-bit user-level address space — carry the 4-bit
 * temporal generation key (lock-and-key versioning in the style of
 * xTag / temporal fat pointers). User-level canonical addresses have
 * the upper bits clear, which is why the all-zero scheme selector is
 * reserved for legacy pointers and why a generation of zero makes
 * legacy pointers bit-compatible with plain integers.
 *
 * The layout below is the single-process world the VM runs workloads in:
 *
 *   [globalBase, globalLimit)   instrumented + legacy global data
 *   [heapBase,   heapLimit)     runtime-managed heap (both allocators)
 *   [tableBase,  tableLimit)    global metadata table + layout tables
 *   [stackLimit, stackBase)     downward-growing call stack
 */

#ifndef INFAT_MEM_ADDRESS_SPACE_HH
#define INFAT_MEM_ADDRESS_SPACE_HH

#include <cstdint>

namespace infat {

/** A guest virtual address. Tag bits, if any, live above bit 47; the
 *  temporal generation key, if any, lives in bits 47:44. */
using GuestAddr = uint64_t;

namespace layout {

constexpr unsigned addrBits = 44;
constexpr GuestAddr addrMask = (GuestAddr{1} << addrBits) - 1;

/** Temporal generation key: bits 47:44, between the canonical address
 *  and the 16-bit IFP tag. Zero for legacy/never-freed allocations. */
constexpr unsigned genBits = 4;
constexpr unsigned genShift = addrBits;
constexpr uint64_t genMask = ((uint64_t{1} << genBits) - 1) << genShift;
constexpr uint64_t genLimit = uint64_t{1} << genBits;

constexpr GuestAddr globalBase = 0x0000'1000'0000ULL;
constexpr GuestAddr globalLimit = 0x0000'2000'0000ULL;

constexpr GuestAddr heapBase = 0x0000'4000'0000ULL;
constexpr GuestAddr heapLimit = 0x0000'c000'0000ULL;
/** First half of the heap: glibc-model free-list arena. */
constexpr GuestAddr freelistBase = heapBase;
constexpr GuestAddr freelistLimit = 0x0000'8000'0000ULL;
/** Second half: buddy region for the subheap allocator (1 GiB,
 *  naturally aligned so every buddy block is aligned to its size). */
constexpr GuestAddr buddyBase = 0x0000'8000'0000ULL;
constexpr unsigned buddyOrderLog2 = 30;

constexpr GuestAddr tableBase = 0x0001'0000'0000ULL;
constexpr GuestAddr tableLimit = 0x0001'1000'0000ULL;

constexpr GuestAddr stackBase = 0x0fff'f000'0000ULL;
constexpr GuestAddr stackLimit = 0x0ffe'f000'0000ULL;

/** Strip tag and generation bits, producing the canonical 44-bit
 *  address. */
constexpr GuestAddr
canonical(GuestAddr addr)
{
    return addr & addrMask;
}

} // namespace layout

} // namespace infat

#endif // INFAT_MEM_ADDRESS_SPACE_HH
