#include "mem/guest_memory.hh"

#include <algorithm>

#include "support/logging.hh"

namespace infat {

uint8_t *
GuestMemory::pageFor(GuestAddr addr)
{
    uint64_t page_num = layout::canonical(addr) >> pageShift;
    // Probe the micro-TLB first so the chunked read/write/fill paths
    // skip the unordered_map lookup too, not just the typed accessors.
    UtlbEntry &hot = utlb_[page_num & (utlbEntries - 1)];
    if (hot.page == page_num) {
        ++utlbHits_;
        return hot.data;
    }
    auto it = pages_.find(page_num);
    if (it == pages_.end()) {
        auto page = std::make_unique<uint8_t[]>(pageSize);
        std::memset(page.get(), 0, pageSize);
        it = pages_.emplace(page_num, std::move(page)).first;
        stats_.counter("pages_mapped")++;
    }
    pagesPeak_ = std::max<uint64_t>(pagesPeak_, pages_.size());
    // Refill the micro-TLB so the next access to this page takes the
    // inline fast path.
    ++utlbMisses_;
    UtlbEntry &e = utlb_[page_num & (utlbEntries - 1)];
    e.page = page_num;
    e.data = it->second.get();
    return e.data;
}

void
GuestMemory::unmap(GuestAddr addr, uint64_t len)
{
    if (len == 0)
        return;
    GuestAddr start = layout::canonical(addr);
    GuestAddr end = start + len;
    uint64_t first = (start + pageSize - 1) >> pageShift; // round up
    uint64_t last = end >> pageShift;                     // round down
    if (first >= last)
        return;
    // Cached translations may point into pages released below, and a
    // re-materialized page lands at a fresh host address — a stale hit
    // would read freed memory. Invalidate the whole uTLB; the next
    // accesses repopulate it.
    for (UtlbEntry &e : utlb_) {
        e.page = ~0ULL;
        e.data = nullptr;
    }
    for (uint64_t page = first; page < last; ++page)
        pages_.erase(page);
}

void
GuestMemory::read(GuestAddr addr, void *out, uint64_t len)
{
    uint8_t *dst = static_cast<uint8_t *>(out);
    GuestAddr cur = layout::canonical(addr);
    while (len > 0) {
        uint64_t in_page = pageSize - (cur & (pageSize - 1));
        uint64_t chunk = std::min(len, in_page);
        std::memcpy(dst, pageFor(cur) + (cur & (pageSize - 1)), chunk);
        dst += chunk;
        cur += chunk;
        len -= chunk;
    }
}

void
GuestMemory::write(GuestAddr addr, const void *in, uint64_t len)
{
    const uint8_t *src = static_cast<const uint8_t *>(in);
    GuestAddr cur = layout::canonical(addr);
    while (len > 0) {
        uint64_t in_page = pageSize - (cur & (pageSize - 1));
        uint64_t chunk = std::min(len, in_page);
        std::memcpy(pageFor(cur) + (cur & (pageSize - 1)), src, chunk);
        src += chunk;
        cur += chunk;
        len -= chunk;
    }
}

void
GuestMemory::fill(GuestAddr addr, uint8_t byte, uint64_t len)
{
    GuestAddr cur = layout::canonical(addr);
    while (len > 0) {
        uint64_t in_page = pageSize - (cur & (pageSize - 1));
        uint64_t chunk = std::min(len, in_page);
        std::memset(pageFor(cur) + (cur & (pageSize - 1)), byte, chunk);
        cur += chunk;
        len -= chunk;
    }
}

void
GuestMemory::copy(GuestAddr dst, GuestAddr src, uint64_t len)
{
    // Chunked through a bounce buffer so page boundaries are respected.
    uint8_t buf[256];
    while (len > 0) {
        uint64_t chunk = std::min<uint64_t>(len, sizeof(buf));
        read(src, buf, chunk);
        write(dst, buf, chunk);
        src += chunk;
        dst += chunk;
        len -= chunk;
    }
}

} // namespace infat
