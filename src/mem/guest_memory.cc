#include "mem/guest_memory.hh"

#include <algorithm>

#include "support/logging.hh"

namespace infat {

uint8_t *
GuestMemory::pageFor(GuestAddr addr)
{
    uint64_t page_num = layout::canonical(addr) >> pageShift;
    auto it = pages_.find(page_num);
    if (it == pages_.end()) {
        auto page = std::make_unique<uint8_t[]>(pageSize);
        std::memset(page.get(), 0, pageSize);
        it = pages_.emplace(page_num, std::move(page)).first;
        stats_.counter("pages_mapped")++;
    }
    // Refill the micro-TLB so the next access to this page takes the
    // inline fast path.
    ++utlbMisses_;
    utlbPage_ = page_num;
    utlbData_ = it->second.get();
    return utlbData_;
}

void
GuestMemory::read(GuestAddr addr, void *out, uint64_t len)
{
    uint8_t *dst = static_cast<uint8_t *>(out);
    GuestAddr cur = layout::canonical(addr);
    while (len > 0) {
        uint64_t in_page = pageSize - (cur & (pageSize - 1));
        uint64_t chunk = std::min(len, in_page);
        std::memcpy(dst, pageFor(cur) + (cur & (pageSize - 1)), chunk);
        dst += chunk;
        cur += chunk;
        len -= chunk;
    }
}

void
GuestMemory::write(GuestAddr addr, const void *in, uint64_t len)
{
    const uint8_t *src = static_cast<const uint8_t *>(in);
    GuestAddr cur = layout::canonical(addr);
    while (len > 0) {
        uint64_t in_page = pageSize - (cur & (pageSize - 1));
        uint64_t chunk = std::min(len, in_page);
        std::memcpy(pageFor(cur) + (cur & (pageSize - 1)), src, chunk);
        src += chunk;
        cur += chunk;
        len -= chunk;
    }
}

void
GuestMemory::fill(GuestAddr addr, uint8_t byte, uint64_t len)
{
    GuestAddr cur = layout::canonical(addr);
    while (len > 0) {
        uint64_t in_page = pageSize - (cur & (pageSize - 1));
        uint64_t chunk = std::min(len, in_page);
        std::memset(pageFor(cur) + (cur & (pageSize - 1)), byte, chunk);
        cur += chunk;
        len -= chunk;
    }
}

void
GuestMemory::copy(GuestAddr dst, GuestAddr src, uint64_t len)
{
    // Chunked through a bounce buffer so page boundaries are respected.
    uint8_t buf[256];
    while (len > 0) {
        uint64_t chunk = std::min<uint64_t>(len, sizeof(buf));
        read(src, buf, chunk);
        write(dst, buf, chunk);
        src += chunk;
        dst += chunk;
        len -= chunk;
    }
}

} // namespace infat
