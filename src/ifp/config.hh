/**
 * @file
 * All In-Fat Pointer design parameters in one place.
 *
 * Values default to the paper's prototype choices (§3.3, §4): a 16-bit
 * tag with 2 poison + 2 scheme-selector bits, a 16-byte granule and
 * 6-bit offset for the local offset scheme (max object 1008 B, 64 layout
 * entries), 16 subheap control registers with 8-bit subobject indices,
 * and a 4096-row global metadata table.
 */

#ifndef INFAT_IFP_CONFIG_HH
#define INFAT_IFP_CONFIG_HH

#include <cstdint>

namespace infat {

struct IfpConfig
{
    // --- Tag geometry (fixed by the paper's Figure 4) ---
    static constexpr unsigned tagBits = 16;
    static constexpr unsigned poisonBits = 2;
    static constexpr unsigned schemeBits = 2;
    static constexpr unsigned metaBits = 12;

    // --- Local offset scheme ---
    static constexpr unsigned granuleBytes = 16;
    static constexpr unsigned localOffsetBits = 6;
    static constexpr unsigned localSubobjBits = 6;
    /** Max object size: (2^6 - 1) * 16 = 1008 bytes (paper §3.3.1). */
    static constexpr uint64_t localMaxObjectBytes =
        ((1ULL << localOffsetBits) - 1) * granuleBytes;
    static constexpr unsigned localMetadataBytes = 16;

    // --- Subheap scheme ---
    static constexpr unsigned subheapCtrlRegBits = 4;
    static constexpr unsigned numSubheapCtrlRegs = 1u << subheapCtrlRegBits;
    static constexpr unsigned subheapSubobjBits = 8;
    static constexpr unsigned subheapMetadataBytes = 32;

    // --- Global table scheme ---
    static constexpr unsigned globalIndexBits = 12;
    static constexpr unsigned globalTableRows = 1u << globalIndexBits;
    static constexpr unsigned globalRowBytes = 16;

    // --- Layout tables ---
    static constexpr unsigned layoutEntryBytes = 16;
    static constexpr unsigned maxLayoutWalkDepth = 8;

    // --- Temporal scheme (lock-and-key tag versioning) ---
    /**
     * Generation-key width. The key rides in pointer bits 47:44
     * (layout::genBits); the matching lock lives with each scheme's
     * metadata (local-offset word 1, subheap per-slot byte array,
     * global-table row word 0). Generations wrap modulo 2^4, so a
     * stale pointer aliases a live one after exactly 16 reuses of its
     * slot — the documented residual false-negative window.
     */
    static constexpr unsigned temporalGenBits = 4;

    // --- Runtime feature toggles (benchmark configurations) ---
    /** When true, promote behaves as a nop (the "no-promote" variant). */
    bool noPromote = false;
    /** Verify metadata MACs during promote. */
    bool macEnabled = true;
    /** Perform subobject narrowing when layout tables are present. */
    bool narrowingEnabled = true;
    /**
     * Compare the pointer's generation key against the allocation's
     * lock during promote and validate frees (double/stale/interior
     * free detection). Off = the spatial-only PR 7 behaviour.
     */
    bool temporalEnabled = true;

    // --- Timing (cycles; see DESIGN.md §5) ---
    unsigned promoteBaseCycles = 3;
    unsigned macCheckCycles = 2;
    unsigned divisionCycles = 8;
    unsigned layoutStepCycles = 1;
    /** Extra latency of the key/lock comparison on the promote path
     *  (one compare plus, for subheaps, the lock-byte fetch issue). */
    unsigned temporalCheckCycles = 1;
};

} // namespace infat

#endif // INFAT_IFP_CONFIG_HH
