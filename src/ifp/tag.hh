/**
 * @file
 * Pointer tag codec (paper Figure 4).
 *
 * The top 16 bits of every 64-bit pointer form the tag:
 *
 *   bit 63..62  poison bits (valid / oob-recoverable / stale / invalid)
 *   bit 61..60  scheme selector
 *   bit 59..48  scheme metadata + subobject index, layout per scheme:
 *                 local offset:  [59:54] granule offset, [53:48] subobject
 *                 subheap:       [59:56] control reg,    [55:48] subobject
 *                 global table:  [59:48] table row index
 *   bit 47..44  temporal generation key (lock-and-key versioning); the
 *               canonical address space is 44-bit (mem/address_space.hh)
 *
 * An all-zero tag is a canonical user-level pointer, i.e. a legacy
 * pointer carrying no metadata. The scheme selector value 0 is therefore
 * reserved for legacy pointers.
 */

#ifndef INFAT_IFP_TAG_HH
#define INFAT_IFP_TAG_HH

#include <cstdint>
#include <string>

#include "ifp/config.hh"
#include "mem/address_space.hh"
#include "support/bitops.hh"

namespace infat {

/**
 * Poison states (paper §3.2). Any load/store through a pointer whose
 * poison state is not Valid traps.
 */
enum class Poison : uint8_t
{
    Valid = 0,
    /** Out of bounds but recoverable (e.g. one-past-the-end). */
    OutOfBounds = 1,
    /**
     * Temporal staleness: the pointer's generation key failed the
     * lock comparison at promote (its allocation was freed). Sticky
     * like Invalid — dereference traps with TemporalViolation.
     */
    TemporalStale = 2,
    /** Irrecoverable: invalid metadata or post-failure derivation. */
    Invalid = 3,
};

/** Object metadata scheme selector (paper §3.3). */
enum class Scheme : uint8_t
{
    Legacy = 0,
    LocalOffset = 1,
    Subheap = 2,
    GlobalTable = 3,
};

const char *toString(Poison poison);
const char *toString(Scheme scheme);

/**
 * A 64-bit tagged pointer. This is a value type: "pointer" values in
 * guest registers and guest memory are exactly these 64 bits.
 */
class TaggedPtr
{
  public:
    constexpr TaggedPtr() = default;
    constexpr explicit TaggedPtr(uint64_t raw) : raw_(raw) {}

    /** A legacy (untagged, canonical) pointer to @p addr. */
    static constexpr TaggedPtr
    legacy(GuestAddr addr)
    {
        return TaggedPtr(layout::canonical(addr));
    }

    /** Assemble a tagged pointer from fields (the ifpmd instruction). */
    static TaggedPtr make(GuestAddr addr, Scheme scheme, uint64_t meta12,
                          Poison poison = Poison::Valid);

    constexpr uint64_t raw() const { return raw_; }
    constexpr GuestAddr addr() const { return layout::canonical(raw_); }
    constexpr bool isNull() const { return addr() == 0; }

    Poison
    poison() const
    {
        return static_cast<Poison>(bits(raw_, 63, 62));
    }

    Scheme
    scheme() const
    {
        return static_cast<Scheme>(bits(raw_, 61, 60));
    }

    bool isLegacy() const { return scheme() == Scheme::Legacy; }
    bool isPoisoned() const { return poison() != Poison::Valid; }

    /** The whole 12-bit scheme-metadata + subobject-index field. */
    uint64_t meta12() const { return bits(raw_, 59, 48); }

    // --- Per-scheme field accessors ---
    /** Local offset scheme: granules from the pointer to the metadata. */
    uint64_t localGranuleOffset() const { return bits(raw_, 59, 54); }
    uint64_t localSubobjIndex() const { return bits(raw_, 53, 48); }

    /** Subheap scheme: which control register describes the block. */
    uint64_t subheapCtrlIndex() const { return bits(raw_, 59, 56); }
    uint64_t subheapSubobjIndex() const { return bits(raw_, 55, 48); }

    /** Global table scheme: row index into the metadata table. */
    uint64_t globalTableIndex() const { return bits(raw_, 59, 48); }

    /** Temporal generation key (bits 47:44); 0 on legacy pointers. */
    uint64_t
    generation() const
    {
        return (raw_ & layout::genMask) >> layout::genShift;
    }

    /** Scheme-dispatched subobject index (0 for global table/legacy). */
    uint64_t subobjIndex() const;

    // --- Field update (value-returning, register semantics) ---
    TaggedPtr withPoison(Poison poison) const;
    TaggedPtr withAddr(GuestAddr addr) const;
    TaggedPtr withMeta12(uint64_t meta12) const;
    TaggedPtr withSubobjIndex(uint64_t index) const;
    TaggedPtr withLocalGranuleOffset(uint64_t offset) const;
    TaggedPtr withGeneration(uint64_t gen) const;

    /** Maximum representable subobject index for this pointer's scheme. */
    uint64_t maxSubobjIndex() const;

    std::string toString() const;

    constexpr bool operator==(const TaggedPtr &other) const = default;

  private:
    uint64_t raw_ = 0;
};

} // namespace infat

#endif // INFAT_IFP_TAG_HH
