#include "ifp/tag.hh"

#include "support/logging.hh"

namespace infat {

const char *
toString(Poison poison)
{
    switch (poison) {
      case Poison::Valid:
        return "valid";
      case Poison::OutOfBounds:
        return "oob";
      case Poison::TemporalStale:
        return "stale";
      case Poison::Invalid:
        return "invalid";
    }
    return "?";
}

const char *
toString(Scheme scheme)
{
    switch (scheme) {
      case Scheme::Legacy:
        return "legacy";
      case Scheme::LocalOffset:
        return "local-offset";
      case Scheme::Subheap:
        return "subheap";
      case Scheme::GlobalTable:
        return "global-table";
    }
    return "?";
}

TaggedPtr
TaggedPtr::make(GuestAddr addr, Scheme scheme, uint64_t meta12,
                Poison poison)
{
    uint64_t raw = layout::canonical(addr);
    raw = insertBits(raw, 63, 62, static_cast<uint64_t>(poison));
    raw = insertBits(raw, 61, 60, static_cast<uint64_t>(scheme));
    raw = insertBits(raw, 59, 48, meta12);
    return TaggedPtr(raw);
}

uint64_t
TaggedPtr::subobjIndex() const
{
    switch (scheme()) {
      case Scheme::LocalOffset:
        return localSubobjIndex();
      case Scheme::Subheap:
        return subheapSubobjIndex();
      default:
        return 0;
    }
}

TaggedPtr
TaggedPtr::withPoison(Poison poison) const
{
    return TaggedPtr(
        insertBits(raw_, 63, 62, static_cast<uint64_t>(poison)));
}

TaggedPtr
TaggedPtr::withAddr(GuestAddr addr) const
{
    return TaggedPtr((raw_ & ~layout::addrMask) | layout::canonical(addr));
}

TaggedPtr
TaggedPtr::withMeta12(uint64_t meta12) const
{
    return TaggedPtr(insertBits(raw_, 59, 48, meta12));
}

TaggedPtr
TaggedPtr::withSubobjIndex(uint64_t index) const
{
    switch (scheme()) {
      case Scheme::LocalOffset:
        return TaggedPtr(insertBits(raw_, 53, 48, index));
      case Scheme::Subheap:
        return TaggedPtr(insertBits(raw_, 55, 48, index));
      default:
        // Legacy and global-table pointers have no subobject index; the
        // update is architecturally a no-op (paper §3.3.3).
        return *this;
    }
}

TaggedPtr
TaggedPtr::withLocalGranuleOffset(uint64_t offset) const
{
    return TaggedPtr(insertBits(raw_, 59, 54, offset));
}

TaggedPtr
TaggedPtr::withGeneration(uint64_t gen) const
{
    return TaggedPtr((raw_ & ~layout::genMask) |
                     ((gen << layout::genShift) & layout::genMask));
}

uint64_t
TaggedPtr::maxSubobjIndex() const
{
    switch (scheme()) {
      case Scheme::LocalOffset:
        return mask(IfpConfig::localSubobjBits);
      case Scheme::Subheap:
        return mask(IfpConfig::subheapSubobjBits);
      default:
        return 0;
    }
}

std::string
TaggedPtr::toString() const
{
    return strfmt("[%s %s meta=%#llx gen=%llu addr=%#llx]",
                  infat::toString(poison()), infat::toString(scheme()),
                  static_cast<unsigned long long>(meta12()),
                  static_cast<unsigned long long>(generation()),
                  static_cast<unsigned long long>(addr()));
}

} // namespace infat
