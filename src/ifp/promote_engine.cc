#include "ifp/promote_engine.hh"

#include <vector>

#include "ifp/layout_table.hh"
#include "support/bitops.hh"
#include "support/logging.hh"

namespace infat {

const char *
toString(PromoteResult::Outcome outcome)
{
    switch (outcome) {
      case PromoteResult::Outcome::BypassPoisoned:
        return "bypass_poisoned";
      case PromoteResult::Outcome::BypassNull:
        return "bypass_null";
      case PromoteResult::Outcome::BypassLegacy:
        return "bypass_legacy";
      case PromoteResult::Outcome::Retrieved:
        return "retrieved";
      case PromoteResult::Outcome::MetaInvalid:
        return "meta_invalid";
      case PromoteResult::Outcome::TemporalStale:
        return "temporal_stale";
    }
    return "unknown";
}

PromoteEngine::PromoteEngine(GuestMemory &mem, Cache *l1d,
                             const IfpControlRegs &regs,
                             const IfpConfig &config)
    : mem_(mem), l1d_(l1d), regs_(regs), config_(config),
      stats_("promote"), promotes_(stats_.counter("promotes")),
      metaFetches_(stats_.counter("meta_fetches")),
      metaInvalid_(stats_.counter("meta_invalid")),
      bypassInvalid_(stats_.counter("bypass_invalid")),
      bypassNull_(stats_.counter("bypass_null")),
      bypassLegacy_(stats_.counter("bypass_legacy")),
      validPromotes_(stats_.counter("valid_promotes")),
      schemeLocal_(stats_.counter("scheme_local")),
      schemeSubheap_(stats_.counter("scheme_subheap")),
      schemeGlobal_(stats_.counter("scheme_global")),
      macFail_(stats_.counter("mac_fail")),
      bypassStale_(stats_.counter("bypass_stale")),
      temporalStale_(stats_.counter("temporal_stale")),
      slotDivisions_(stats_.counter("slot_divisions")),
      walkDivisions_(stats_.counter("walk_divisions")),
      narrowAttempts_(stats_.counter("narrow_attempts")),
      narrowSuccess_(stats_.counter("narrow_success")),
      narrowFail_(stats_.counter("narrow_fail")),
      promoteCycles_(
          stats_.histogram("promote_cycles", Histogram::log2(12))),
      retrieveCycles_(
          stats_.histogram("retrieve_cycles", Histogram::log2(12))),
      walkDepth_(stats_.histogram(
          "walk_depth", Histogram::linear(0, 1, IfpConfig::maxLayoutWalkDepth)))
{
    stats_.formula("narrow_success_rate", [this] {
        uint64_t attempts = stats_.value("narrow_attempts");
        return attempts == 0
                   ? 0.0
                   : static_cast<double>(stats_.value("narrow_success")) /
                         static_cast<double>(attempts);
    });
}

void
PromoteEngine::fetch(GuestAddr addr, uint64_t len, unsigned &cycles)
{
    metaFetches_++;
    if (l1d_) {
        // The IFP unit's metadata loads are not pipelined with the rest
        // of the promote (paper §5.2.2), so the full latency is charged.
        cycles += l1d_->access(addr, len, false).latency;
    } else {
        cycles += 1;
    }
}

PromoteResult
PromoteEngine::poisonResult(TaggedPtr ptr, unsigned cycles)
{
    PromoteResult result;
    result.outcome = PromoteResult::Outcome::MetaInvalid;
    result.ptr = ptr.withPoison(Poison::Invalid);
    result.bounds = Bounds::cleared();
    result.cycles = cycles;
    metaInvalid_++;
    return result;
}

PromoteResult
PromoteEngine::staleResult(TaggedPtr ptr, unsigned cycles)
{
    PromoteResult result;
    result.outcome = PromoteResult::Outcome::TemporalStale;
    result.ptr = ptr.withPoison(Poison::TemporalStale);
    result.bounds = Bounds::cleared();
    result.cycles = cycles;
    temporalStale_++;
    return result;
}

// The bypass ladder (no-promote, poisoned, null, legacy) is inline in
// promote() — see promote_engine.hh; only retrieval lands here.
PromoteResult
PromoteEngine::promoteRetrieve(TaggedPtr ptr)
{
    validPromotes_++;
    PromoteResult result;
    switch (ptr.scheme()) {
      case Scheme::LocalOffset:
        schemeLocal_++;
        result = retrieveLocalOffset(ptr);
        break;
      case Scheme::Subheap:
        schemeSubheap_++;
        result = retrieveSubheap(ptr);
        break;
      case Scheme::GlobalTable:
        schemeGlobal_++;
        result = retrieveGlobalTable(ptr);
        break;
      default:
        panic("legacy scheme reached retrieval");
    }
    result.cycles += config_.promoteBaseCycles;
    return result;
}

PromoteResult
PromoteEngine::retrieveLocalOffset(TaggedPtr ptr)
{
    unsigned cycles = 0;
    GuestAddr addr = ptr.addr();
    GuestAddr meta_addr = roundDown(addr, IfpConfig::granuleBytes) +
                          ptr.localGranuleOffset() * IfpConfig::granuleBytes;

    fetch(meta_addr, IfpConfig::localMetadataBytes, cycles);
    LocalOffsetMeta meta = LocalOffsetMeta::read(mem_, meta_addr);
    if (config_.macEnabled) {
        cycles += config_.macCheckCycles;
        if (!meta.verify(meta_addr, regs_.macKey)) {
            macFail_++;
            return poisonResult(ptr, cycles);
        }
    } else if (meta.magic != LocalOffsetMeta::magicValue) {
        return poisonResult(ptr, cycles);
    }
    if (meta.objectSize == 0 ||
        meta.objectSize > IfpConfig::localMaxObjectBytes) {
        return poisonResult(ptr, cycles);
    }
    if (generationMismatch(ptr, meta.generation, cycles))
        return staleResult(ptr, cycles);

    // Object base: metadata directly follows the granule-padded object.
    GuestAddr base =
        meta_addr - roundUp(meta.objectSize, IfpConfig::granuleBytes);
    Bounds object_bounds(base, base + meta.objectSize);
    return finish(ptr, object_bounds, meta.layoutTable, cycles);
}

PromoteResult
PromoteEngine::retrieveSubheap(TaggedPtr ptr)
{
    unsigned cycles = 0;
    const SubheapCtrlReg &ctrl = regs_.subheap[ptr.subheapCtrlIndex()];
    if (!ctrl.valid)
        return poisonResult(ptr, cycles);

    GuestAddr addr = ptr.addr();
    GuestAddr block_base = roundDown(addr, 1ULL << ctrl.blockOrderLog2);
    fetch(block_base + ctrl.metaOffset, IfpConfig::subheapMetadataBytes,
          cycles);
    SubheapBlockMeta meta =
        SubheapBlockMeta::read(mem_, block_base, ctrl.metaOffset);
    if (!meta.valid)
        return poisonResult(ptr, cycles);
    if (config_.macEnabled) {
        cycles += config_.macCheckCycles;
        if (!meta.verify(block_base, regs_.macKey)) {
            macFail_++;
            return poisonResult(ptr, cycles);
        }
    }
    if (meta.slotSize == 0 || meta.slotsEnd <= meta.slotsStart ||
        meta.objectSize == 0 || meta.objectSize > meta.slotSize) {
        return poisonResult(ptr, cycles);
    }

    uint64_t rel = addr - block_base;
    if (rel < meta.slotsStart || rel >= meta.slotsEnd) {
        // The pointer does not fall inside the slot array; its object
        // cannot be identified.
        return poisonResult(ptr, cycles);
    }
    // Slot sizes are constrained so hardware division is cheap; model a
    // fast path for powers of two (paper §3.3.2).
    cycles += isPowerOf2(meta.slotSize) ? 1 : config_.divisionCycles;
    slotDivisions_++;
    uint64_t slot = (rel - meta.slotsStart) / meta.slotSize;
    if (config_.temporalEnabled) {
        // Fetch the slot's generation-lock byte from the per-block
        // side array (metadata.hh): one extra cached byte load.
        GuestAddr gen_addr =
            SubheapBlockMeta::genAddr(block_base, ctrl.metaOffset, slot);
        fetch(gen_addr, 1, cycles);
        uint8_t lock = mem_.load<uint8_t>(gen_addr);
        if (generationMismatch(ptr, lock, cycles))
            return staleResult(ptr, cycles);
    }
    GuestAddr base = block_base + meta.slotsStart + slot * meta.slotSize;
    Bounds object_bounds(base, base + meta.objectSize);
    return finish(ptr, object_bounds, meta.layoutTable, cycles);
}

PromoteResult
PromoteEngine::retrieveGlobalTable(TaggedPtr ptr)
{
    unsigned cycles = 0;
    uint64_t index = ptr.globalTableIndex();
    if (regs_.globalTableBase == 0 || index >= regs_.globalTableRows)
        return poisonResult(ptr, cycles);

    fetch(GlobalTableRow::rowAddr(regs_.globalTableBase, index),
          IfpConfig::globalRowBytes, cycles);
    GlobalTableRow row =
        GlobalTableRow::read(mem_, regs_.globalTableBase, index);
    if (!row.valid || row.size == 0)
        return poisonResult(ptr, cycles);
    if (generationMismatch(ptr, row.generation, cycles))
        return staleResult(ptr, cycles);

    Bounds object_bounds(row.base, row.base + row.size);
    // All 12 tag bits are the row index, so there is no subobject index
    // and no narrowing in this scheme (paper §3.3.3).
    return finish(ptr, object_bounds, 0, cycles);
}

PromoteEngine::NarrowResult
PromoteEngine::narrow(const Bounds &object_bounds, GuestAddr table_base,
                      uint64_t subobj_index, GuestAddr addr,
                      unsigned &cycles)
{
    NarrowResult result;
    result.bounds = object_bounds;

    // Collect the parent chain bottom-up (Figure 9c fetch order).
    struct ChainStep
    {
        LayoutEntry entry;
    };
    std::vector<ChainStep> chain;
    uint64_t cur = subobj_index;
    while (cur != 0) {
        if (chain.size() >= IfpConfig::maxLayoutWalkDepth) {
            result.metaInvalid = true;
            return result;
        }
        fetch(table_base + cur * IfpConfig::layoutEntryBytes,
              IfpConfig::layoutEntryBytes, cycles);
        cycles += config_.layoutStepCycles;
        LayoutEntry entry = LayoutTable::fetchEntry(mem_, table_base, cur);
        if (entry.parent >= cur || entry.base >= entry.bound ||
            entry.size == 0) {
            result.metaInvalid = true;
            return result;
        }
        chain.push_back({entry});
        cur = entry.parent;
    }
    walkDepth_.sample(chain.size());
    if (chain.empty())
        return result; // index 0: object bounds, nothing to do

    // The base case needs the root element size to handle objects that
    // are arrays of the type (e.g. malloc(n * sizeof(T))).
    fetch(table_base, IfpConfig::layoutEntryBytes, cycles);
    LayoutEntry root = LayoutTable::fetchEntry(mem_, table_base, 0);
    if (root.size == 0) {
        result.metaInvalid = true;
        return result;
    }

    // Resolve top-down (paper's recursion, iteratively).
    Bounds bounds = object_bounds;
    uint64_t elem_size = root.size;
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
        const LayoutEntry &entry = it->entry;
        GuestAddr elem_base = bounds.lower();
        if (bounds.size() > elem_size) {
            // Parent is an array context: identify the element that
            // contains the address (multi-cycle division, §5.3).
            if (addr < bounds.lower() || addr >= bounds.upper()) {
                // Cannot identify the element; keep the coarser bounds
                // resolved so far (conservative, never poisons).
                result.bounds = bounds;
                return result;
            }
            cycles += config_.divisionCycles;
            walkDivisions_++;
            uint64_t elem = (addr - bounds.lower()) / elem_size;
            elem_base = bounds.lower() + elem * elem_size;
        }
        if (entry.bound > elem_size) {
            result.metaInvalid = true;
            return result;
        }
        bounds = Bounds(elem_base + entry.base, elem_base + entry.bound);
        elem_size = entry.size;
    }

    result.narrowed = true;
    result.bounds = bounds;
    return result;
}

PromoteResult
PromoteEngine::finish(TaggedPtr ptr, Bounds object_bounds,
                      GuestAddr layout_table, unsigned cycles)
{
    PromoteResult result;
    result.outcome = PromoteResult::Outcome::Retrieved;
    result.bounds = object_bounds;

    uint64_t subobj_index = ptr.subobjIndex();
    if (subobj_index != 0) {
        result.narrowAttempted = true;
        narrowAttempts_++;
        if (layout_table != 0 && config_.narrowingEnabled) {
            NarrowResult nr = narrow(object_bounds, layout_table,
                                     subobj_index, ptr.addr(), cycles);
            if (nr.metaInvalid) {
                PromoteResult bad = poisonResult(ptr, cycles);
                bad.narrowAttempted = true;
                return bad;
            }
            result.narrowSucceeded = nr.narrowed;
            result.bounds = nr.bounds;
        }
        if (result.narrowSucceeded)
            narrowSuccess_++;
        else
            narrowFail_++;
    }

    // Fused access check (paper §3.2): update the poison bits so that a
    // wildly out-of-bounds pointer cannot be dereferenced even before an
    // explicit check.
    Poison poison = result.bounds.contains(ptr.addr(), 1)
                        ? Poison::Valid
                        : Poison::OutOfBounds;
    result.ptr = ptr.withPoison(poison);
    result.cycles = cycles;
    return result;
}

} // namespace infat
