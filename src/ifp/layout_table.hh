/**
 * @file
 * Per-type layout tables (paper §3.4, Figure 9).
 *
 * A layout table flattens a type's subobject tree into an array of
 * entries {parent, base, bound, size}. Entry 0 is the object itself;
 * base/bound of every other entry are byte offsets relative to the base
 * of the *parent* subobject (or, when the parent is an array, relative
 * to the array element containing the address). size is the element size
 * for arrays and the full subobject size otherwise, so an entry
 * describes an array exactly when bound - base > size.
 *
 * Each entry occupies 16 bytes in guest memory:
 *   word0: bits 31:0  base, bits 63:32 bound
 *   word1: bits 15:0  parent, bits 47:16 size, bits 63:48 reserved
 *
 * One table is shared by all objects of the same type (paper §3.3).
 */

#ifndef INFAT_IFP_LAYOUT_TABLE_HH
#define INFAT_IFP_LAYOUT_TABLE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "ifp/config.hh"
#include "mem/address_space.hh"

namespace infat {

class GuestMemory;

struct LayoutEntry
{
    uint16_t parent = 0;
    uint32_t base = 0;
    uint32_t bound = 0;
    uint32_t size = 0;

    bool isArray() const { return bound - base > size; }

    /** Encode into the two guest-memory words. */
    void encode(uint64_t &word0, uint64_t &word1) const;
    static LayoutEntry decode(uint64_t word0, uint64_t word1);

    bool operator==(const LayoutEntry &other) const = default;
};

/**
 * A host-side layout table under construction (the compile-time
 * artifact, "__IFP_LT_..." in the paper's Listing 2), plus helpers to
 * materialize it into guest memory and read entries back.
 */
class LayoutTable
{
  public:
    LayoutTable() = default;
    explicit LayoutTable(std::vector<LayoutEntry> entries)
        : entries_(std::move(entries))
    {
    }

    uint16_t
    addEntry(const LayoutEntry &entry)
    {
        entries_.push_back(entry);
        return static_cast<uint16_t>(entries_.size() - 1);
    }

    size_t numEntries() const { return entries_.size(); }
    bool empty() const { return entries_.empty(); }

    const LayoutEntry &entry(size_t i) const { return entries_.at(i); }
    const std::vector<LayoutEntry> &entries() const { return entries_; }

    /** Total guest-memory footprint of the table. */
    uint64_t
    byteSize() const
    {
        return entries_.size() * IfpConfig::layoutEntryBytes;
    }

    /** Write all entries to guest memory at @p base (16-aligned). */
    void writeTo(GuestMemory &mem, GuestAddr base) const;

    /** Read one entry of a materialized table from guest memory. */
    static LayoutEntry fetchEntry(GuestMemory &mem, GuestAddr table_base,
                                  uint64_t index);

    /** Structural sanity: parents precede children, offsets nest. */
    bool verify(std::string *error = nullptr) const;

    std::string toString() const;

  private:
    std::vector<LayoutEntry> entries_;
};

} // namespace infat

#endif // INFAT_IFP_LAYOUT_TABLE_HH
