/**
 * @file
 * In-memory object metadata encodings for the three schemes (paper §3.3).
 *
 * Local offset (16 bytes, appended after the object, granule-aligned):
 *   word0: bits 15:0 object size, bits 63:16 layout-table address
 *          (canonical; 0 = no layout table)
 *   word1: bits 47:0 MAC, bits 55:48 magic 0xA5, bits 59:56 temporal
 *          generation lock, bits 63:60 reserved
 *   The MAC covers (word0, metadata address, generation) so metadata
 *   cannot be replayed at a different location and a stale pointer
 *   cannot be revalidated by rolling the lock back.
 *
 * Subheap block metadata (32 bytes, shared by all objects in a block):
 *   word0: bits 31:0 slot-array start offset, bits 63:32 end offset
 *          (both relative to the block base)
 *   word1: bits 31:0 slot size, bits 63:32 object size
 *   word2: bits 47:0 layout-table address, bit 48 valid flag
 *   word3: bits 47:0 MAC over (word0..word2, block base)
 *   Immediately after the 32 MAC'd bytes sits one generation-lock byte
 *   per slot (xTag-style side array, not MAC'd: it mutates on every
 *   free and re-MACing the block each time would defeat the shared-
 *   metadata design; see DESIGN.md "temporal scheme").
 *
 * Global table row (16 bytes):
 *   word0: bits 47:0 object base address, bit 48 valid flag,
 *          bit 49 layout-table-present (unused: the prototype devotes
 *          all 12 tag bits to the row index, so no narrowing, §3.3.3),
 *          bits 53:50 temporal generation lock
 *   word1: object size
 *   Rows live in runtime-owned memory and carry no MAC (the table is
 *   the integrity root the other schemes defend with MACs).
 */

#ifndef INFAT_IFP_METADATA_HH
#define INFAT_IFP_METADATA_HH

#include <cstdint>

#include "ifp/control_regs.hh"
#include "mem/address_space.hh"

namespace infat {

class GuestMemory;

/** Decoded local-offset metadata. */
struct LocalOffsetMeta
{
    uint64_t objectSize = 0;
    GuestAddr layoutTable = 0; // 0 = none
    uint64_t mac = 0;
    uint8_t magic = 0;
    /** Temporal generation lock (bits 59:56 of word1, MAC-covered). */
    uint8_t generation = 0;

    static constexpr uint8_t magicValue = 0xA5;

    /** Encode + MAC and write to guest memory at @p meta_addr. */
    static void write(GuestMemory &mem, GuestAddr meta_addr,
                      uint64_t object_size, GuestAddr layout_table,
                      const MacKey &key, uint64_t generation = 0);

    /** Read raw words from @p meta_addr and decode (no verification). */
    static LocalOffsetMeta read(GuestMemory &mem, GuestAddr meta_addr);

    /** Verify magic and MAC for metadata loaded from @p meta_addr. */
    bool verify(GuestAddr meta_addr, const MacKey &key) const;

    /** Invalidate metadata in memory (object deallocation). */
    static void erase(GuestMemory &mem, GuestAddr meta_addr);

  private:
    uint64_t word0() const;
};

/** Decoded subheap block metadata. */
struct SubheapBlockMeta
{
    uint32_t slotsStart = 0;
    uint32_t slotsEnd = 0;
    uint32_t slotSize = 0;
    uint32_t objectSize = 0;
    GuestAddr layoutTable = 0;
    bool valid = false;
    uint64_t mac = 0;

    static void write(GuestMemory &mem, GuestAddr block_base,
                      uint32_t meta_offset, const SubheapBlockMeta &meta,
                      const MacKey &key);

    static SubheapBlockMeta read(GuestMemory &mem, GuestAddr block_base,
                                 uint32_t meta_offset);

    bool verify(GuestAddr block_base, const MacKey &key) const;

    static void erase(GuestMemory &mem, GuestAddr block_base,
                      uint32_t meta_offset);

    /**
     * Guest address of slot @p slot's generation-lock byte: the
     * per-slot side array starts right after the 32 MAC'd bytes.
     */
    static GuestAddr
    genAddr(GuestAddr block_base, uint32_t meta_offset, uint64_t slot)
    {
        return block_base + meta_offset + 32 + slot;
    }

  private:
    void encodeWords(uint64_t words[3]) const;
};

/** Decoded global-table row. */
struct GlobalTableRow
{
    GuestAddr base = 0;
    uint64_t size = 0;
    bool valid = false;
    /** Temporal generation lock (bits 53:50 of word0). */
    uint8_t generation = 0;

    static void write(GuestMemory &mem, GuestAddr table_base,
                      uint64_t index, const GlobalTableRow &row);

    static GlobalTableRow read(GuestMemory &mem, GuestAddr table_base,
                               uint64_t index);

    static void erase(GuestMemory &mem, GuestAddr table_base,
                      uint64_t index);

    static GuestAddr
    rowAddr(GuestAddr table_base, uint64_t index)
    {
        return table_base + index * 16;
    }
};

} // namespace infat

#endif // INFAT_IFP_METADATA_HH
