/**
 * @file
 * Architectural control state introduced by In-Fat Pointer.
 *
 * The prototype dedicates 16 control registers to the subheap scheme
 * (paper §3.3.2): each maps a 4-bit tag field to a memory-block size and
 * the offset from block base to the shared block metadata. A further
 * control register holds the global metadata table base (§3.3.3), and
 * the MAC key used by ifpmac/promote is architectural per-process state.
 */

#ifndef INFAT_IFP_CONTROL_REGS_HH
#define INFAT_IFP_CONTROL_REGS_HH

#include <array>
#include <cstdint>

#include "ifp/config.hh"
#include "mem/address_space.hh"

namespace infat {

/** 128-bit key for the metadata MAC. */
struct MacKey
{
    uint64_t k0 = 0;
    uint64_t k1 = 0;
};

/** One subheap control register: implementation-defined mapping from
 *  tag bits to block size and metadata offset (Figure 7's dashed box). */
struct SubheapCtrlReg
{
    bool valid = false;
    /** log2 of the power-of-2 block size. */
    uint8_t blockOrderLog2 = 0;
    /** Offset from block base to the 32-byte common metadata. */
    uint32_t metaOffset = 0;
};

struct IfpControlRegs
{
    std::array<SubheapCtrlReg, IfpConfig::numSubheapCtrlRegs> subheap;

    GuestAddr globalTableBase = 0;
    uint32_t globalTableRows = 0;

    MacKey macKey;
};

} // namespace infat

#endif // INFAT_IFP_CONTROL_REGS_HH
