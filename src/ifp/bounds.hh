/**
 * @file
 * Pointer bounds as held in an In-Fat Pointer Register (IFPR).
 *
 * Each of the 32 general-purpose registers pairs with a 96-bit
 * (2 x 48-bit) bounds register (paper §4.1). A cleared bounds register
 * means the paired pointer is not subject to bounds checking (legacy or
 * demoted pointers).
 */

#ifndef INFAT_IFP_BOUNDS_HH
#define INFAT_IFP_BOUNDS_HH

#include <string>

#include "mem/address_space.hh"
#include "support/logging.hh"

namespace infat {

class Bounds
{
  public:
    constexpr Bounds() = default;
    constexpr Bounds(GuestAddr lower, GuestAddr upper)
        : lower_(lower), upper_(upper), valid_(true)
    {
    }

    /** The cleared state: not subject to checking. */
    static constexpr Bounds
    cleared()
    {
        return Bounds();
    }

    constexpr bool valid() const { return valid_; }
    constexpr GuestAddr lower() const { return lower_; }
    constexpr GuestAddr upper() const { return upper_; }
    constexpr uint64_t size() const { return upper_ - lower_; }

    /**
     * The access-size check (paper §4.1): the address must be at or
     * above the lower bound and addr + size must not exceed the upper
     * bound. Cleared bounds pass everything.
     */
    constexpr bool
    contains(GuestAddr addr, uint64_t access_size) const
    {
        if (!valid_)
            return true;
        GuestAddr canon = layout::canonical(addr);
        return canon >= lower_ && canon + access_size <= upper_;
    }

    /** C legally permits a pointer one past the end (paper footnote 4). */
    constexpr bool
    recoverable(GuestAddr addr) const
    {
        if (!valid_)
            return true;
        GuestAddr canon = layout::canonical(addr);
        return canon >= lower_ && canon <= upper_;
    }

    std::string
    toString() const
    {
        if (!valid_)
            return "[cleared]";
        return strfmt("[%#llx, %#llx)",
                      static_cast<unsigned long long>(lower_),
                      static_cast<unsigned long long>(upper_));
    }

    constexpr bool operator==(const Bounds &other) const = default;

  private:
    GuestAddr lower_ = 0;
    GuestAddr upper_ = 0;
    bool valid_ = false;
};

} // namespace infat

#endif // INFAT_IFP_BOUNDS_HH
