/**
 * @file
 * Semantics of the single-cycle In-Fat Pointer instructions (Table 3).
 *
 * These are the operations the prototype implements in the integer ALU:
 * ifpadd (address computation with tag update), ifpidx (subobject index
 * update), ifpbnd (bounds creation), ifpchk (access-size check),
 * ifpextract (demote), and ifpmd (tag assembly). promote and ifpmac live
 * in the IFP unit (promote_engine.hh / metadata.hh).
 */

#ifndef INFAT_IFP_OPS_HH
#define INFAT_IFP_OPS_HH

#include "ifp/bounds.hh"
#include "ifp/tag.hh"

namespace infat {
namespace ops {

/**
 * ifpadd: compute ptr + delta, updating tag fields and poison bits.
 *
 * For local-offset pointers the granule-offset field tracks the distance
 * to the object metadata, so the field is adjusted by the number of
 * granule boundaries crossed; if the new distance is unrepresentable the
 * metadata is unreachable and the pointer becomes irrecoverably invalid.
 * When @p bounds are valid the result's poison bits reflect an access
 * check at the new address.
 */
TaggedPtr ifpAdd(TaggedPtr ptr, int64_t delta, const Bounds &bounds);

/**
 * ifpidx: set the subobject index field. A no-op for schemes without
 * an index field (legacy, global table). An index the field cannot
 * represent poisons the pointer Invalid — the subobject identity is
 * unrecoverable, same as ifpadd's granule-offset overflow (see
 * DESIGN.md "ifpidx overflow semantics").
 */
TaggedPtr ifpIdx(TaggedPtr ptr, uint64_t subobj_index);

/**
 * ifpbnd: create bounds of @p size bytes starting at the pointer.
 * The upper bound saturates at the top of the canonical address space
 * instead of wrapping.
 */
Bounds ifpBnd(TaggedPtr ptr, uint64_t size);

/** ifpbnd (range form): narrow to an explicit [lower, upper). The
 *  upper limit saturates at the top of the canonical space. */
Bounds ifpBndRange(GuestAddr lower, GuestAddr upper);

/**
 * ifpchk: the access-size check. Checks addr >= lower and
 * addr + access_size <= upper, and returns the pointer with poison bits
 * updated; a failed check poisons the output so a subsequent dereference
 * traps. Cleared bounds pass unconditionally (legacy pointers).
 */
TaggedPtr ifpChk(TaggedPtr ptr, const Bounds &bounds,
                 uint64_t access_size);

/**
 * ifpextract (demote): strip the tag (bits 63:48), producing the plain
 * canonical pointer for handoff to uninstrumented code. The result is
 * a Legacy pointer: scheme, subobject index, and poison bits are all
 * dropped, and the paired IFPR bounds no longer apply.
 */
TaggedPtr demote(TaggedPtr ptr);

/**
 * Verdict of the hardware's implicit dereference check (paper §4.1.1):
 * poison trap, null guard, then the IFPR bounds comparison. The
 * predicates and their order are exactly the interpreter's
 * checkAccess; this entry point exists so fused superblock records
 * (and any other caller that must match trap verdicts bit for bit)
 * evaluate the same sequence without duplicating it.
 */
enum class CheckVerdict : uint8_t
{
    Ok,
    Poisoned,
    Null,
    OutOfBounds,
};

/**
 * Evaluate the implicit-check predicates for one access of
 * @p access_size bytes. @p bounds may be null (address operand is not
 * a register, or implicit checking is configured off), in which case
 * only the poison and null predicates apply. Addresses below
 * @p null_guard (the guest's unmapped first page) are null derefs.
 */
inline CheckVerdict
checkAccessVerdict(TaggedPtr ptr, const Bounds *bounds,
                   uint64_t access_size, GuestAddr null_guard)
{
    if (ptr.isPoisoned())
        return CheckVerdict::Poisoned;
    GuestAddr addr = ptr.addr();
    if (addr < null_guard)
        return CheckVerdict::Null;
    if (bounds && bounds->valid() && !bounds->contains(addr, access_size))
        return CheckVerdict::OutOfBounds;
    return CheckVerdict::Ok;
}

} // namespace ops
} // namespace infat

#endif // INFAT_IFP_OPS_HH
