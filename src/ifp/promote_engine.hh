/**
 * @file
 * The promote operation: pointer bounds retrieval (paper Figures 2 & 5).
 *
 * promote takes a 64-bit tagged pointer and produces an IFPR: either
 * retrieved (and possibly subobject-narrowed) bounds, cleared bounds for
 * legacy/NULL pointers, or a poisoned result when metadata is invalid.
 * This class is the model of the IFP execution unit added to the CVA6
 * execute stage; metadata loads go through the L1 data cache, and the
 * cycle cost of every fetch, MAC check and layout-walk division is
 * accumulated into the result for the timing model.
 */

#ifndef INFAT_IFP_PROMOTE_ENGINE_HH
#define INFAT_IFP_PROMOTE_ENGINE_HH

#include "cache/cache.hh"
#include "ifp/bounds.hh"
#include "ifp/config.hh"
#include "ifp/control_regs.hh"
#include "ifp/metadata.hh"
#include "ifp/tag.hh"
#include "mem/guest_memory.hh"
#include "support/stats.hh"

namespace infat {

struct PromoteResult
{
    enum class Outcome
    {
        /** Input pointer was already invalid; nothing fetched. */
        BypassPoisoned,
        /** NULL pointer; bounds cleared, no lookup. */
        BypassNull,
        /** Legacy pointer; bounds cleared, no lookup. */
        BypassLegacy,
        /** Object metadata fetched and bounds produced. */
        Retrieved,
        /** Metadata fetched but invalid; output poisoned. */
        MetaInvalid,
        /**
         * Metadata valid but the pointer's generation key does not
         * match the allocation's lock: the object was freed (and
         * possibly its slot reused). Output poisoned TemporalStale.
         */
        TemporalStale,
    };

    Outcome outcome = Outcome::BypassPoisoned;
    /** The pointer with poison bits updated by the fused check. */
    TaggedPtr ptr;
    Bounds bounds;
    /** Cycles consumed by the whole promote. */
    unsigned cycles = 0;
    bool narrowAttempted = false;
    bool narrowSucceeded = false;

    bool
    retrieved() const
    {
        return outcome == Outcome::Retrieved;
    }
};

const char *toString(PromoteResult::Outcome outcome);

class PromoteEngine
{
  public:
    /**
     * @param mem   Guest memory the metadata lives in.
     * @param l1d   Data cache used for metadata fetches; may be null
     *              (functional-only runs).
     * @param regs  Architectural control registers (subheap mapping,
     *              global table base, MAC key).
     */
    PromoteEngine(GuestMemory &mem, Cache *l1d, const IfpControlRegs &regs,
                  const IfpConfig &config = {});

    // Holds references into stats_ (see stats.hh on reference
    // stability); copying would alias another instance's stats.
    PromoteEngine(const PromoteEngine &) = delete;
    PromoteEngine &operator=(const PromoteEngine &) = delete;

    /**
     * The hot decision path lives here, inline into both the
     * interpreter and the JIT's promote runtime entry: every bypass
     * outcome (no-promote config, already-poisoned, null, legacy)
     * decides from the pointer bits alone — no metadata fetch, no
     * cache traffic — and call-heavy instrumented code promotes the
     * same few already-clean pointers over and over. Only retrieval
     * (metadata actually read) goes out of line.
     */
    PromoteResult
    promote(TaggedPtr ptr)
    {
        promotes_++;
        unsigned cycles = config_.promoteBaseCycles;
        PromoteResult result;
        if (config_.noPromote) {
            // The no-promote configuration (paper §5.2): promote
            // costs the same as a nop and treats every pointer as
            // legacy.
            result.outcome = PromoteResult::Outcome::BypassLegacy;
            result.ptr = ptr;
            result.bounds = Bounds::cleared();
            result.cycles = 1;
            promoteCycles_.sample(result.cycles);
            return result;
        }
        // Figure 5: an invalid pointer must not drive a metadata
        // lookup (the lookup depends on the pointer value and could
        // fault). A stale pointer is bypassed for the same reason —
        // its slot may by now describe a different live object whose
        // metadata would revalidate it.
        if (ptr.poison() == Poison::Invalid ||
            ptr.poison() == Poison::TemporalStale) {
            result.outcome = PromoteResult::Outcome::BypassPoisoned;
            if (ptr.poison() == Poison::TemporalStale)
                bypassStale_++;
            else
                bypassInvalid_++;
        } else if (ptr.isNull()) {
            result.outcome = PromoteResult::Outcome::BypassNull;
            bypassNull_++;
        } else if (ptr.isLegacy()) {
            // Legacy pointers have bounds cleared, never checked.
            result.outcome = PromoteResult::Outcome::BypassLegacy;
            bypassLegacy_++;
        } else {
            result = promoteRetrieve(ptr);
            promoteCycles_.sample(result.cycles);
            // Retrieval outcomes are exactly Retrieved / MetaInvalid
            // / TemporalStale — all belong in the retrieval histogram.
            retrieveCycles_.sample(result.cycles);
            return result;
        }
        result.ptr = ptr;
        result.bounds = Bounds::cleared();
        result.cycles = cycles;
        promoteCycles_.sample(result.cycles);
        return result;
    }

    StatGroup &stats() { return stats_; }
    const IfpConfig &config() const { return config_; }
    void setConfig(const IfpConfig &config) { config_ = config; }

  private:
    /** The retrieval tail of promote(): scheme dispatch + metadata
     *  fetch. Returns Retrieved, MetaInvalid, or TemporalStale. */
    PromoteResult promoteRetrieve(TaggedPtr ptr);

    /** Charge a metadata fetch of @p len bytes through the cache. */
    void fetch(GuestAddr addr, uint64_t len, unsigned &cycles);

    PromoteResult retrieveLocalOffset(TaggedPtr ptr);
    PromoteResult retrieveSubheap(TaggedPtr ptr);
    PromoteResult retrieveGlobalTable(TaggedPtr ptr);

    /**
     * Subobject bounds narrowing (paper §3.4). Returns the narrowed
     * bounds, or the coarser @p object_bounds when the element
     * containing the address cannot be identified, or nothing when an
     * entry is structurally invalid (output must be poisoned).
     */
    struct NarrowResult
    {
        bool metaInvalid = false;
        bool narrowed = false;
        Bounds bounds;
    };
    NarrowResult narrow(const Bounds &object_bounds, GuestAddr table_base,
                        uint64_t subobj_index, GuestAddr addr,
                        unsigned &cycles);

    /** Assemble a Retrieved result: fused check + optional narrowing. */
    PromoteResult finish(TaggedPtr ptr, Bounds object_bounds,
                         GuestAddr layout_table, unsigned cycles);

    PromoteResult poisonResult(TaggedPtr ptr, unsigned cycles);
    PromoteResult staleResult(TaggedPtr ptr, unsigned cycles);

    /**
     * The lock-and-key comparison (temporal axis): true when temporal
     * checking is on and @p lock disagrees with the pointer's key.
     * Charges the comparison latency either way so timing does not
     * depend on the outcome.
     */
    bool
    generationMismatch(TaggedPtr ptr, uint64_t lock, unsigned &cycles)
    {
        if (!config_.temporalEnabled)
            return false;
        cycles += config_.temporalCheckCycles;
        return ptr.generation() != (lock & (layout::genLimit - 1));
    }

    GuestMemory &mem_;
    Cache *l1d_;
    const IfpControlRegs &regs_;
    IfpConfig config_;
    StatGroup stats_;
    // Hot-path stats, resolved once at construction. Every promote
    // outcome bumps one of these, so none may go through the
    // string-keyed StatGroup::counter() lookup per call.
    Counter &promotes_;
    Counter &metaFetches_;
    Counter &metaInvalid_;
    Counter &bypassInvalid_;
    Counter &bypassNull_;
    Counter &bypassLegacy_;
    Counter &validPromotes_;
    Counter &schemeLocal_;
    Counter &schemeSubheap_;
    Counter &schemeGlobal_;
    Counter &macFail_;
    Counter &bypassStale_;
    Counter &temporalStale_;
    Counter &slotDivisions_;
    Counter &walkDivisions_;
    Counter &narrowAttempts_;
    Counter &narrowSuccess_;
    Counter &narrowFail_;
    /** Cycle cost of each completed promote (bypasses included). */
    Histogram &promoteCycles_;
    /** Cycle cost of retrieval promotes only (metadata actually read). */
    Histogram &retrieveCycles_;
    /** Layout-walk chain depth per narrowing attempt. */
    Histogram &walkDepth_;
};

} // namespace infat

#endif // INFAT_IFP_PROMOTE_ENGINE_HH
