#include "ifp/area_model.hh"

#include "support/bitops.hh"

namespace infat {

namespace {

// Vanilla CVA6 stage decomposition (LUTs). The per-stage values follow
// the paper's Figure 13 left bars; the frontend absorbs the remainder so
// the total matches the reported 37,088 LUTs.
constexpr double vanillaCache = 4201;
constexpr double vanillaRegfiles = 6246;
constexpr double vanillaScoreboard = 2500;
constexpr double vanillaIssueOther = 6030;
constexpr double vanillaExecOther = 3913;
constexpr double vanillaLsu = 9028;
constexpr double vanillaTotalLuts = 37088;
constexpr double vanillaFrontend = vanillaTotalLuts - vanillaCache -
                                   vanillaRegfiles - vanillaScoreboard -
                                   vanillaIssueOther - vanillaExecOther -
                                   vanillaLsu;

constexpr unsigned addrBits = 48;
constexpr unsigned boundsBits = 2 * addrBits;
constexpr unsigned numGprs = 32;

} // namespace

AreaModel::AreaModel(const IfpConfig &config, const AreaPrimitives &prims)
    : config_(config), prims_(prims)
{
}

double
AreaModel::boundsRegfileLuts() const
{
    // A 32 x 96-bit multiported LUTRAM register file; multiport
    // replication makes each bit substantially more expensive than a
    // plain flop (calibrated 1.2 LUT/bit on Kintex-7).
    double storage = numGprs * boundsBits * (prims_.lutPerRegBit * 3.4);
    return storage;
}

double
AreaModel::issueForwardingLuts() const
{
    double forwarding = boundsBits * 6 /* sources */ * 3 /* ports */ *
                        prims_.lutPerMuxInputBit;
    double scoreboard = numGprs * 8 * prims_.lutPerRegBit;
    double wb_port = boundsBits * 4 * prims_.lutPerMuxInputBit;
    // Operand-forwarding replication for the widened operands observed
    // in synthesis (calibrated constant).
    double replication = 1800;
    return forwarding + scoreboard + wb_port + replication;
}

double
AreaModel::lsuGrowthLuts() const
{
    double buffers = 16 * boundsBits * prims_.lutPerRegBit;
    double check_cmps = 2 /* ports */ * 2 * addrBits * prims_.lutPerCmpBit;
    double poison_check = 2 * 16 * prims_.lutPerCmpBit;
    double ldst_bnd = 2 * boundsBits * prims_.lutPerAdderBit;
    double routing = boundsBits * 4 * prims_.lutPerMuxInputBit;
    // Widened data path to the D$ for 128-bit bounds traffic plus
    // misaligned-split control (calibrated).
    double widening = 3300;
    return buffers + check_cmps + poison_check + ldst_bnd + routing +
           widening;
}

double
AreaModel::walkerLuts() const
{
    // Iterative restoring divider for array-of-struct element location.
    double divider = addrBits * prims_.lutPerDividerStage;
    double fsm = (IfpConfig::maxLayoutWalkDepth + 4) * prims_.lutPerFsmState;
    double datapath = 4 * addrBits * prims_.lutPerAdderBit;
    return divider + fsm + datapath;
}

double
AreaModel::schemesLuts() const
{
    double local = 2 * addrBits * prims_.lutPerAdderBit +
                   128 * prims_.lutPerRegBit +
                   2 * addrBits * prims_.lutPerCmpBit +
                   5 * prims_.lutPerFsmState +
                   boundsBits * prims_.lutPerRegBit;
    double subheap = 3 * addrBits * prims_.lutPerAdderBit +
                     256 * prims_.lutPerRegBit +
                     2 * addrBits * prims_.lutPerCmpBit +
                     7 * prims_.lutPerFsmState +
                     20 * prims_.lutPerDividerStage + // slot divider
                     boundsBits * prims_.lutPerRegBit;
    double global = addrBits * prims_.lutPerAdderBit +
                    128 * prims_.lutPerRegBit +
                    (addrBits + 16) * prims_.lutPerCmpBit +
                    4 * prims_.lutPerFsmState +
                    boundsBits * prims_.lutPerRegBit;
    double dispatch = 3 * boundsBits * prims_.lutPerMuxInputBit +
                      256 * prims_.lutPerRegBit;
    return local + subheap + global + dispatch;
}

double
AreaModel::macUnitLuts() const
{
    // Two unrolled SipHash rounds plus state/key registers and control.
    double round = 4 * 64 * prims_.lutPerAdderBit +
                   6 * 64 * prims_.lutPerCmpBit;
    double regs = (256 + 128) * prims_.lutPerRegBit;
    double fsm = 6 * prims_.lutPerFsmState;
    return 2 * round + regs + fsm;
}

double
AreaModel::ifpUnitLuts() const
{
    double control = (64 + boundsBits + 64) * prims_.lutPerRegBit +
                     boundsBits * 5 * prims_.lutPerMuxInputBit +
                     14 * prims_.lutPerFsmState +
                     512 * prims_.lutPerRegBit + // mem interface
                     2 * 512 * prims_.lutPerRegBit + // load queue
                     150; // exception reporting (calibrated)
    return walkerLuts() + schemesLuts() + macUnitLuts() + control;
}

double
AreaModel::decodeGrowthLuts() const
{
    double decode = 30 * prims_.lutPerDecodeTerm;
    double alu_tag_ops = addrBits * prims_.lutPerAdderBit +
                         16 * 4 * prims_.lutPerMuxInputBit;
    return decode + alu_tag_ops;
}

std::vector<StageArea>
AreaModel::stages() const
{
    double csrs = IfpConfig::numSubheapCtrlRegs * 40 * prims_.lutPerRegBit;
    double counters = 16 * 64 * prims_.lutPerRegBit;
    double cache_bw = 814; // D$ bandwidth improvement (calibrated)

    std::vector<StageArea> rows;
    rows.push_back({"Frontend", vanillaFrontend, 0, {}});
    rows.push_back({"Decode", 0, decodeGrowthLuts(), {}});
    rows.push_back({"Issue",
                    vanillaRegfiles + vanillaScoreboard + vanillaIssueOther,
                    boundsRegfileLuts() + issueForwardingLuts(),
                    {{"bounds regfile", boundsRegfileLuts()},
                     {"forwarding/wb", issueForwardingLuts()}}});
    rows.push_back({"Execute (other)", vanillaExecOther,
                    csrs + counters,
                    {{"control regs", csrs}, {"perf counters", counters}}});
    rows.push_back({"Execute (LSU)", vanillaLsu, lsuGrowthLuts(), {}});
    rows.push_back({"Execute (IFP unit)", 0, ifpUnitLuts(),
                    ifpUnitBreakdown()});
    rows.push_back({"Cache", vanillaCache, cache_bw, {}});
    return rows;
}

std::vector<AreaItem>
AreaModel::ifpUnitBreakdown() const
{
    double rest = ifpUnitLuts() - walkerLuts() - schemesLuts();
    return {{"layout table walker", walkerLuts()},
            {"object metadata schemes", schemesLuts()},
            {"MAC + control", rest}};
}

double
AreaModel::vanillaTotal() const
{
    return vanillaTotalLuts;
}

double
AreaModel::growthTotal() const
{
    double total = 0;
    for (const auto &row : stages())
        total += row.growthLuts;
    return total;
}

double
AreaModel::growthWithoutWalker() const
{
    return growthTotal() - walkerLuts();
}

} // namespace infat
