#include "ifp/metadata.hh"

#include "mem/guest_memory.hh"
#include "support/bitops.hh"
#include "support/logging.hh"
#include "support/siphash.hh"

namespace infat {

// --- LocalOffsetMeta ---

uint64_t
LocalOffsetMeta::word0() const
{
    return (objectSize & mask(16)) |
           (layout::canonical(layoutTable) << 16);
}

void
LocalOffsetMeta::write(GuestMemory &mem, GuestAddr meta_addr,
                       uint64_t object_size, GuestAddr layout_table,
                       const MacKey &key, uint64_t generation)
{
    panic_if(object_size > mask(16), "local-offset object too large");
    LocalOffsetMeta meta;
    meta.objectSize = object_size;
    meta.layoutTable = layout::canonical(layout_table);
    uint64_t gen = generation & mask(4);
    uint64_t w0 = meta.word0();
    // Fold the generation lock into the MAC's address word so rolling
    // the lock bits back cannot revalidate a stale pointer.
    uint64_t m = mac48(w0, layout::canonical(meta_addr) | (gen << 56),
                       key.k0, key.k1);
    uint64_t w1 = m | (static_cast<uint64_t>(magicValue) << 48) |
                  (gen << 56);
    mem.store<uint64_t>(meta_addr, w0);
    mem.store<uint64_t>(meta_addr + 8, w1);
}

LocalOffsetMeta
LocalOffsetMeta::read(GuestMemory &mem, GuestAddr meta_addr)
{
    uint64_t w0 = mem.load<uint64_t>(meta_addr);
    uint64_t w1 = mem.load<uint64_t>(meta_addr + 8);
    LocalOffsetMeta meta;
    meta.objectSize = bits(w0, 15, 0);
    meta.layoutTable = bits(w0, 63, 16);
    meta.mac = bits(w1, 47, 0);
    meta.magic = static_cast<uint8_t>(bits(w1, 55, 48));
    meta.generation = static_cast<uint8_t>(bits(w1, 59, 56));
    return meta;
}

bool
LocalOffsetMeta::verify(GuestAddr meta_addr, const MacKey &key) const
{
    if (magic != magicValue)
        return false;
    uint64_t expect =
        mac48(word0(),
              layout::canonical(meta_addr) |
                  (static_cast<uint64_t>(generation) << 56),
              key.k0, key.k1);
    return mac == expect;
}

void
LocalOffsetMeta::erase(GuestMemory &mem, GuestAddr meta_addr)
{
    mem.store<uint64_t>(meta_addr, 0);
    mem.store<uint64_t>(meta_addr + 8, 0);
}

// --- SubheapBlockMeta ---

void
SubheapBlockMeta::encodeWords(uint64_t words[3]) const
{
    words[0] = static_cast<uint64_t>(slotsStart) |
               (static_cast<uint64_t>(slotsEnd) << 32);
    words[1] = static_cast<uint64_t>(slotSize) |
               (static_cast<uint64_t>(objectSize) << 32);
    words[2] = layout::canonical(layoutTable) |
               (static_cast<uint64_t>(valid ? 1 : 0) << 48);
}

void
SubheapBlockMeta::write(GuestMemory &mem, GuestAddr block_base,
                        uint32_t meta_offset, const SubheapBlockMeta &meta,
                        const MacKey &key)
{
    uint64_t words[4];
    meta.encodeWords(words);
    words[3] = layout::canonical(block_base);
    uint64_t m = mac48Words(words, 4, key.k0, key.k1);
    GuestAddr addr = block_base + meta_offset;
    mem.store<uint64_t>(addr, words[0]);
    mem.store<uint64_t>(addr + 8, words[1]);
    mem.store<uint64_t>(addr + 16, words[2]);
    mem.store<uint64_t>(addr + 24, m);
}

SubheapBlockMeta
SubheapBlockMeta::read(GuestMemory &mem, GuestAddr block_base,
                       uint32_t meta_offset)
{
    GuestAddr addr = block_base + meta_offset;
    uint64_t w0 = mem.load<uint64_t>(addr);
    uint64_t w1 = mem.load<uint64_t>(addr + 8);
    uint64_t w2 = mem.load<uint64_t>(addr + 16);
    uint64_t w3 = mem.load<uint64_t>(addr + 24);
    SubheapBlockMeta meta;
    meta.slotsStart = static_cast<uint32_t>(bits(w0, 31, 0));
    meta.slotsEnd = static_cast<uint32_t>(bits(w0, 63, 32));
    meta.slotSize = static_cast<uint32_t>(bits(w1, 31, 0));
    meta.objectSize = static_cast<uint32_t>(bits(w1, 63, 32));
    meta.layoutTable = bits(w2, 47, 0);
    meta.valid = bits(w2, 48, 48) != 0;
    meta.mac = bits(w3, 47, 0);
    return meta;
}

bool
SubheapBlockMeta::verify(GuestAddr block_base, const MacKey &key) const
{
    if (!valid)
        return false;
    uint64_t words[4];
    encodeWords(words);
    words[3] = layout::canonical(block_base);
    return mac == mac48Words(words, 4, key.k0, key.k1);
}

void
SubheapBlockMeta::erase(GuestMemory &mem, GuestAddr block_base,
                        uint32_t meta_offset)
{
    GuestAddr addr = block_base + meta_offset;
    for (unsigned i = 0; i < 4; ++i)
        mem.store<uint64_t>(addr + i * 8, 0);
}

// --- GlobalTableRow ---

void
GlobalTableRow::write(GuestMemory &mem, GuestAddr table_base,
                      uint64_t index, const GlobalTableRow &row)
{
    GuestAddr addr = rowAddr(table_base, index);
    uint64_t w0 = layout::canonical(row.base) |
                  (static_cast<uint64_t>(row.valid ? 1 : 0) << 48) |
                  (static_cast<uint64_t>(row.generation & mask(4)) << 50);
    mem.store<uint64_t>(addr, w0);
    mem.store<uint64_t>(addr + 8, row.size);
}

GlobalTableRow
GlobalTableRow::read(GuestMemory &mem, GuestAddr table_base,
                     uint64_t index)
{
    GuestAddr addr = rowAddr(table_base, index);
    uint64_t w0 = mem.load<uint64_t>(addr);
    GlobalTableRow row;
    row.base = bits(w0, 43, 0);
    row.valid = bits(w0, 48, 48) != 0;
    row.generation = static_cast<uint8_t>(bits(w0, 53, 50));
    row.size = mem.load<uint64_t>(addr + 8);
    return row;
}

void
GlobalTableRow::erase(GuestMemory &mem, GuestAddr table_base,
                      uint64_t index)
{
    GuestAddr addr = rowAddr(table_base, index);
    mem.store<uint64_t>(addr, 0);
    mem.store<uint64_t>(addr + 8, 0);
}

} // namespace infat
