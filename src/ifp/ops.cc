#include "ifp/ops.hh"

#include "ifp/config.hh"
#include "support/bitops.hh"

namespace infat {
namespace ops {

TaggedPtr
ifpAdd(TaggedPtr ptr, int64_t delta, const Bounds &bounds)
{
    GuestAddr old_addr = ptr.addr();
    GuestAddr new_addr = layout::canonical(
        old_addr + static_cast<uint64_t>(delta));
    TaggedPtr result = ptr.withAddr(new_addr);

    if (ptr.poison() == Poison::Invalid)
        return result; // invalid is sticky

    if (ptr.scheme() == Scheme::LocalOffset) {
        int64_t granules_crossed =
            (static_cast<int64_t>(roundDown(new_addr,
                                            IfpConfig::granuleBytes)) -
             static_cast<int64_t>(roundDown(old_addr,
                                            IfpConfig::granuleBytes))) /
            static_cast<int64_t>(IfpConfig::granuleBytes);
        int64_t new_offset =
            static_cast<int64_t>(ptr.localGranuleOffset()) -
            granules_crossed;
        if (new_offset < 0 ||
            new_offset > static_cast<int64_t>(
                             mask(IfpConfig::localOffsetBits))) {
            // Metadata no longer reachable: irrecoverable.
            return result.withPoison(Poison::Invalid);
        }
        result = result.withLocalGranuleOffset(
            static_cast<uint64_t>(new_offset));
    }

    if (bounds.valid()) {
        Poison poison = bounds.contains(new_addr, 1) ? Poison::Valid
                                                     : Poison::OutOfBounds;
        result = result.withPoison(poison);
    }
    return result;
}

TaggedPtr
ifpIdx(TaggedPtr ptr, uint64_t subobj_index)
{
    if (ptr.poison() == Poison::Invalid)
        return ptr;
    if (subobj_index > ptr.maxSubobjIndex())
        return ptr.withSubobjIndex(0);
    return ptr.withSubobjIndex(subobj_index);
}

Bounds
ifpBnd(TaggedPtr ptr, uint64_t size)
{
    GuestAddr addr = ptr.addr();
    return Bounds(addr, addr + size);
}

Bounds
ifpBndRange(GuestAddr lower, GuestAddr upper)
{
    return Bounds(layout::canonical(lower), layout::canonical(upper));
}

TaggedPtr
ifpChk(TaggedPtr ptr, const Bounds &bounds, uint64_t access_size)
{
    if (!bounds.valid())
        return ptr; // unchecked (legacy / demoted)
    if (ptr.poison() == Poison::Invalid)
        return ptr;
    Poison poison = bounds.contains(ptr.addr(), access_size)
                        ? Poison::Valid
                        : Poison::OutOfBounds;
    return ptr.withPoison(poison);
}

TaggedPtr
demote(TaggedPtr ptr)
{
    return ptr;
}

} // namespace ops
} // namespace infat
