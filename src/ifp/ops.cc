#include "ifp/ops.hh"

#include "ifp/config.hh"
#include "support/bitops.hh"

namespace infat {
namespace ops {

TaggedPtr
ifpAdd(TaggedPtr ptr, int64_t delta, const Bounds &bounds)
{
    GuestAddr old_addr = ptr.addr();
    GuestAddr new_addr = layout::canonical(
        old_addr + static_cast<uint64_t>(delta));
    TaggedPtr result = ptr.withAddr(new_addr);

    if (ptr.poison() == Poison::Invalid ||
        ptr.poison() == Poison::TemporalStale)
        return result; // invalid / stale are sticky

    if (ptr.scheme() == Scheme::LocalOffset) {
        int64_t granules_crossed =
            (static_cast<int64_t>(roundDown(new_addr,
                                            IfpConfig::granuleBytes)) -
             static_cast<int64_t>(roundDown(old_addr,
                                            IfpConfig::granuleBytes))) /
            static_cast<int64_t>(IfpConfig::granuleBytes);
        int64_t new_offset =
            static_cast<int64_t>(ptr.localGranuleOffset()) -
            granules_crossed;
        if (new_offset < 0 ||
            new_offset > static_cast<int64_t>(
                             mask(IfpConfig::localOffsetBits))) {
            // Metadata no longer reachable: irrecoverable.
            return result.withPoison(Poison::Invalid);
        }
        result = result.withLocalGranuleOffset(
            static_cast<uint64_t>(new_offset));
    }

    if (bounds.valid()) {
        Poison poison = bounds.contains(new_addr, 1) ? Poison::Valid
                                                     : Poison::OutOfBounds;
        result = result.withPoison(poison);
    }
    return result;
}

TaggedPtr
ifpIdx(TaggedPtr ptr, uint64_t subobj_index)
{
    if (ptr.poison() == Poison::Invalid ||
        ptr.poison() == Poison::TemporalStale)
        return ptr;
    // Legacy and global-table pointers carry no subobject-index field;
    // the instruction is a no-op for them (narrowing happens through
    // the table row's own layout pointer instead).
    if (ptr.maxSubobjIndex() == 0)
        return ptr;
    // An unrepresentable index means the subobject identity is lost.
    // Like ifpadd's granule-offset overflow, that is irrecoverable:
    // poison instead of silently widening to whole-object bounds
    // (DESIGN.md "ifpidx overflow semantics").
    if (subobj_index > ptr.maxSubobjIndex())
        return ptr.withPoison(Poison::Invalid);
    return ptr.withSubobjIndex(subobj_index);
}

Bounds
ifpBnd(TaggedPtr ptr, uint64_t size)
{
    GuestAddr lower = ptr.addr();
    // Saturate at the top of the canonical space: lower is canonical
    // (< 2^addrBits) but lower + size can pass it -- or wrap the full
    // 64-bit range -- and an upper below lower would turn contains()
    // into a pass-nothing or pass-everything predicate.
    GuestAddr upper = lower + size;
    if (upper < lower || upper > layout::addrMask + 1)
        upper = layout::addrMask + 1;
    return Bounds(lower, upper);
}

Bounds
ifpBndRange(GuestAddr lower, GuestAddr upper)
{
    // The range form takes explicit integers, not tagged pointers:
    // saturate the upper limit rather than canonicalizing it, which
    // would wrap 2^addrBits (one past the last canonical byte) to 0.
    if (upper > layout::addrMask + 1)
        upper = layout::addrMask + 1;
    return Bounds(layout::canonical(lower), upper);
}

TaggedPtr
ifpChk(TaggedPtr ptr, const Bounds &bounds, uint64_t access_size)
{
    if (!bounds.valid())
        return ptr; // unchecked (legacy / demoted)
    if (ptr.poison() == Poison::Invalid ||
        ptr.poison() == Poison::TemporalStale)
        return ptr;
    Poison poison = bounds.contains(ptr.addr(), access_size)
                        ? Poison::Valid
                        : Poison::OutOfBounds;
    return ptr.withPoison(poison);
}

TaggedPtr
demote(TaggedPtr ptr)
{
    return TaggedPtr(layout::canonical(ptr.raw()));
}

} // namespace ops
} // namespace infat
