/**
 * @file
 * Structural FPGA-area model for the hardware changes (paper §5.3).
 *
 * We cannot synthesize RTL here, so Figure 13 is reproduced with a
 * structural cost model: every hardware block the design adds is
 * described as an inventory of primitives (register bits, adder bits,
 * comparator bits, mux inputs, divider stages, state-machine states),
 * each with a LUT-equivalent cost. The primitive costs are calibrated
 * once so the *vanilla* CVA6 stage totals match the paper's reported
 * decomposition; the *growth* column is then computed from the actual
 * inventory implied by IfpConfig (bounds-register width and count,
 * number of schemes, walker depth, etc.), so design-parameter changes
 * move the model the way they would move the RTL.
 */

#ifndef INFAT_IFP_AREA_MODEL_HH
#define INFAT_IFP_AREA_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "ifp/config.hh"

namespace infat {

/** LUT-equivalent costs of synthesis primitives (calibration knobs). */
struct AreaPrimitives
{
    double lutPerRegBit = 0.35;     // register bit incl. write mux
    double lutPerAdderBit = 1.0;    // carry-chain adder/subtractor bit
    double lutPerCmpBit = 0.5;      // comparator bit
    double lutPerMuxInputBit = 0.3; // one 1-bit mux leg
    double lutPerDividerStage = 55; // one radix-2 restoring stage (48b)
    double lutPerFsmState = 18;     // control FSM state
    double lutPerDecodeTerm = 6;    // instruction decode product term
};

struct AreaItem
{
    std::string component;
    double luts;
};

/** One pipeline-stage row of Figure 13: vanilla LUTs and LUT growth. */
struct StageArea
{
    std::string stage;
    double vanillaLuts;
    double growthLuts;
    std::vector<AreaItem> breakdown;
};

class AreaModel
{
  public:
    explicit AreaModel(const IfpConfig &config = {},
                       const AreaPrimitives &prims = {});

    /** Per-stage vanilla/growth rows (Figure 13's stacked bars). */
    std::vector<StageArea> stages() const;

    /** Breakdown inside the IFP unit (walker vs schemes vs rest). */
    std::vector<AreaItem> ifpUnitBreakdown() const;

    double vanillaTotal() const;
    double growthTotal() const;

    /** Growth with the layout walker removed (paper §5.3's trade-off). */
    double growthWithoutWalker() const;

  private:
    double boundsRegfileLuts() const;
    double issueForwardingLuts() const;
    double lsuGrowthLuts() const;
    double ifpUnitLuts() const;
    double walkerLuts() const;
    double schemesLuts() const;
    double macUnitLuts() const;
    double decodeGrowthLuts() const;

    IfpConfig config_;
    AreaPrimitives prims_;
};

} // namespace infat

#endif // INFAT_IFP_AREA_MODEL_HH
