#include "ifp/layout_table.hh"

#include "mem/guest_memory.hh"
#include "support/bitops.hh"
#include "support/logging.hh"

namespace infat {

void
LayoutEntry::encode(uint64_t &word0, uint64_t &word1) const
{
    word0 = static_cast<uint64_t>(base) |
            (static_cast<uint64_t>(bound) << 32);
    word1 = static_cast<uint64_t>(parent) |
            (static_cast<uint64_t>(size) << 16);
}

LayoutEntry
LayoutEntry::decode(uint64_t word0, uint64_t word1)
{
    LayoutEntry entry;
    entry.base = static_cast<uint32_t>(bits(word0, 31, 0));
    entry.bound = static_cast<uint32_t>(bits(word0, 63, 32));
    entry.parent = static_cast<uint16_t>(bits(word1, 15, 0));
    entry.size = static_cast<uint32_t>(bits(word1, 47, 16));
    return entry;
}

void
LayoutTable::writeTo(GuestMemory &mem, GuestAddr base) const
{
    panic_if(base & 0xf, "layout table base not 16-byte aligned");
    GuestAddr cur = base;
    for (const auto &entry : entries_) {
        uint64_t word0, word1;
        entry.encode(word0, word1);
        mem.store<uint64_t>(cur, word0);
        mem.store<uint64_t>(cur + 8, word1);
        cur += IfpConfig::layoutEntryBytes;
    }
}

LayoutEntry
LayoutTable::fetchEntry(GuestMemory &mem, GuestAddr table_base,
                        uint64_t index)
{
    GuestAddr addr = table_base + index * IfpConfig::layoutEntryBytes;
    return LayoutEntry::decode(mem.load<uint64_t>(addr),
                               mem.load<uint64_t>(addr + 8));
}

bool
LayoutTable::verify(std::string *error) const
{
    auto fail = [&](std::string msg) {
        if (error)
            *error = std::move(msg);
        return false;
    };

    if (entries_.empty())
        return fail("layout table has no entries");
    const LayoutEntry &root = entries_[0];
    if (root.parent != 0)
        return fail("entry 0 must be its own parent");
    if (root.base != 0)
        return fail("entry 0 base must be 0");

    for (size_t i = 1; i < entries_.size(); ++i) {
        const LayoutEntry &entry = entries_[i];
        if (entry.parent >= i)
            return fail(strfmt("entry %zu parent %u does not precede it",
                               i, entry.parent));
        if (entry.base >= entry.bound)
            return fail(strfmt("entry %zu has empty range", i));
        if (entry.size == 0)
            return fail(strfmt("entry %zu has zero size", i));
        if ((entry.bound - entry.base) % entry.size != 0)
            return fail(strfmt("entry %zu span not multiple of size", i));
        const LayoutEntry &parent = entries_[entry.parent];
        // Child offsets are relative to one parent *element*.
        if (entry.bound > parent.size)
            return fail(strfmt("entry %zu exceeds parent element", i));
    }
    return true;
}

std::string
LayoutTable::toString() const
{
    std::string out;
    for (size_t i = 0; i < entries_.size(); ++i) {
        const LayoutEntry &entry = entries_[i];
        out += strfmt("%zu: parent=%u [%u, %u) size=%u%s\n", i,
                      entry.parent, entry.base, entry.bound, entry.size,
                      entry.isArray() ? " (array)" : "");
    }
    return out;
}

} // namespace infat
