#include "compiler/escape.hh"

#include <map>

#include "support/logging.hh"

namespace infat {

using namespace ir;

namespace {

/** A root is either an alloca (by dst register) or a global. */
struct Root
{
    bool isGlobal;
    uint32_t id; // alloca dst reg, or global id

    auto operator<=>(const Root &) const = default;
};

class FunctionAnalysis
{
  public:
    FunctionAnalysis(const Function &func, FunctionEscapes &out,
                     std::set<GlobalId> &global_out)
        : func_(func), out_(out), globalOut_(global_out)
    {
    }

    void
    run()
    {
        if (func_.isNative() || func_.numBlocks() == 0)
            return;
        seedRoots();
        // Fixpoint: registers are mutable, so derivations can flow
        // around loops.
        bool changed = true;
        while (changed) {
            changed = false;
            for (const BasicBlock &block : func_.blocks()) {
                for (const Instr &instr : block.instrs)
                    changed |= propagate(instr);
            }
        }
        for (const BasicBlock &block : func_.blocks()) {
            for (const Instr &instr : block.instrs)
                collectEscapes(instr);
        }
    }

  private:
    void
    seedRoots()
    {
        for (const BasicBlock &block : func_.blocks()) {
            for (const Instr &instr : block.instrs) {
                if (instr.op == Opcode::Alloca) {
                    roots_[instr.dst].insert({false, instr.dst});
                } else if (instr.op == Opcode::Mov &&
                           instr.a.kind == Operand::Kind::Global) {
                    roots_[instr.dst].insert(
                        {true, static_cast<uint32_t>(instr.a.payload)});
                }
            }
        }
    }

    bool
    mergeInto(Reg dst, const Operand &src)
    {
        if (!src.isReg())
            return false;
        auto it = roots_.find(static_cast<Reg>(src.payload));
        if (it == roots_.end())
            return false;
        auto &dst_set = roots_[dst];
        size_t before = dst_set.size();
        dst_set.insert(it->second.begin(), it->second.end());
        return dst_set.size() != before;
    }

    bool
    propagate(const Instr &instr)
    {
        if (instr.dst == noReg)
            return false;
        switch (instr.op) {
          case Opcode::Mov:
          case Opcode::GepField:
          case Opcode::GepIndex:
          case Opcode::Add:
          case Opcode::Sub:
          case Opcode::And:
          case Opcode::Or:
            return mergeInto(instr.dst, instr.a);
          case Opcode::Select:
            return mergeInto(instr.dst, instr.b) |
                   mergeInto(instr.dst, instr.c);
          default:
            return false;
        }
    }

    void
    escapeRootsOf(const Operand &operand)
    {
        if (!operand.isReg())
            return;
        auto it = roots_.find(static_cast<Reg>(operand.payload));
        if (it == roots_.end())
            return;
        for (const Root &root : it->second) {
            if (root.isGlobal)
                globalOut_.insert(root.id);
            else
                out_.escapingAllocas.insert(root.id);
        }
    }

    void
    collectEscapes(const Instr &instr)
    {
        switch (instr.op) {
          case Opcode::Store:
            // Storing the pointer *value*; the store's address operand
            // (b) is a use, not an escape.
            escapeRootsOf(instr.a);
            break;
          case Opcode::Call:
          case Opcode::CallPtr:
            for (const Operand &arg : instr.args)
                escapeRootsOf(arg);
            break;
          case Opcode::Ret:
            escapeRootsOf(instr.a);
            break;
          case Opcode::GepIndex:
            // A dynamic index defeats static bounds reasoning.
            if (instr.b.isReg())
                escapeRootsOf(instr.a);
            break;
          case Opcode::FreePtr:
            escapeRootsOf(instr.a);
            break;
          default:
            break;
        }
    }

    const Function &func_;
    FunctionEscapes &out_;
    std::set<GlobalId> &globalOut_;
    std::map<Reg, std::set<Root>> roots_;
};

} // namespace

ModuleEscapes
analyzeEscapes(const Module &module)
{
    ModuleEscapes result;
    result.functions.resize(module.numFunctions());
    for (size_t i = 0; i < module.numFunctions(); ++i) {
        const Function *func = module.function(static_cast<FuncId>(i));
        FunctionAnalysis(*func, result.functions[i],
                         result.escapingGlobals)
            .run();
    }
    return result;
}

} // namespace infat
