/**
 * @file
 * Layout-table generation from IR types (paper §3.4, Figure 9).
 *
 * Tables are generated in DFS preorder over the subobject tree. This
 * ordering has a crucial property the instrumentation relies on: the
 * layout-table index of a field is always the parent's index plus a
 * statically known *relative* delta, no matter which root type the
 * table was generated for. The ifpidx instruction therefore only needs
 * a static immediate delta, and a `NestedTy *` pointer can be narrowed
 * correctly whether it points into a `struct S` or at a standalone
 * allocation.
 *
 * One table is generated per root type and shared by all objects of the
 * type; types without subobjects (scalars, arrays of scalars as whole
 * allocations are described by their object bounds alone) get no table.
 */

#ifndef INFAT_COMPILER_LAYOUT_GEN_HH
#define INFAT_COMPILER_LAYOUT_GEN_HH

#include <map>
#include <vector>

#include "ifp/layout_table.hh"
#include "ir/instr.hh"
#include "ir/type.hh"

namespace infat {

/** Module-wide registry of generated layout tables. */
class LayoutRegistry
{
  public:
    /**
     * Get (generating on demand) the layout table id for allocations of
     * @p type. Returns ir::noLayout when the type has no subobjects.
     */
    ir::LayoutId tableFor(const ir::Type *type);

    /** Lookup without generation; ir::noLayout when never generated. */
    ir::LayoutId
    find(const ir::Type *type) const
    {
        auto it = byType_.find(type);
        return it == byType_.end() ? ir::noLayout : it->second;
    }

    const LayoutTable &table(ir::LayoutId id) const
    {
        return tables_.at(id);
    }
    size_t numTables() const { return tables_.size(); }
    const std::vector<LayoutTable> &tables() const { return tables_; }

  private:
    std::vector<LayoutTable> tables_;
    std::map<const ir::Type *, ir::LayoutId> byType_;
};

/**
 * Number of layout-table entries in the subtree rooted at @p type
 * (including the entry for the root itself).
 */
uint64_t layoutSubtreeEntries(const ir::Type *type);

/**
 * The static subobject-index delta for taking the address of
 * @p field_index within @p struct_type: new index = pointer's current
 * index + delta. This is the immediate carried by ifpidx.
 */
uint64_t layoutFieldDelta(const ir::StructType *struct_type,
                          unsigned field_index);

/** Build the full layout table for a root type (exposed for tests). */
LayoutTable buildLayoutTable(const ir::Type *root);

} // namespace infat

#endif // INFAT_COMPILER_LAYOUT_GEN_HH
