/**
 * @file
 * The In-Fat Pointer compiler instrumentation pass (paper §3.1, §4.2).
 *
 * Rewrites a module in place:
 *  - escaping stack objects: the alloca is padded for metadata and a
 *    RegisterObj / DeregisterObj pair brackets the object lifetime
 *    (IFP_Register / IFP_Deregister in the paper's Listing 2);
 *  - escaping globals are marked for registration at startup (the
 *    "getptr" mechanism collapses to startup registration here);
 *  - typed heap allocation sites become runtime-allocator calls that
 *    carry the layout table (IfpMallocTyped); calls to plain malloc()
 *    (allocation wrappers, function-pointer indirection) also route to
 *    the runtime but without a layout table, reproducing the failed
 *    narrowing the paper reports for CoreMark/bzip2/wolfcrypt;
 *  - field GEPs lower to ifpadd + ifpidx + ifpbnd (static subobject
 *    narrowing); when the derived pointer's only use is as the address
 *    of loads/stores, the ifpidx/ifpbnd pair is dead (nothing ever
 *    reads the index or the narrowed bounds register) and is not
 *    emitted, matching what DCE does to the paper's LLVM-based pass;
 *    array GEPs lower to ifpadd only, keeping index and bounds;
 *  - pointer loads are followed by a promote;
 *  - the number of bounds registers each function saves across calls is
 *    recorded for ldbnd/stbnd accounting (paper §4.1.2).
 */

#ifndef INFAT_COMPILER_INSTRUMENT_HH
#define INFAT_COMPILER_INSTRUMENT_HH

#include "compiler/layout_gen.hh"
#include "ir/module.hh"

namespace infat {

struct InstrumentOptions
{
    /**
     * When true, emit an explicit ifpchk before every dereference
     * instead of relying on the LSU's implicit checking (paper §4.1.1
     * proposes implicit checks exactly to avoid this instruction
     * overhead; the option exists for the ablation benchmark).
     */
    bool explicitChecks = false;
};

struct InstrumentStats
{
    uint64_t instrumentedGlobals = 0;
    uint64_t globalsWithLayout = 0;
    uint64_t allocaSites = 0;
    uint64_t allocaSitesWithLayout = 0;
    uint64_t mallocSitesTyped = 0;
    uint64_t mallocSitesUntyped = 0;
    uint64_t promotesInserted = 0;
    uint64_t gepsLowered = 0;
};

struct InstrumentResult
{
    LayoutRegistry layouts;
    InstrumentStats stats;
};

/**
 * Instrument @p module in place. Functions flagged uninstrumented and
 * native functions are left alone (legacy code).
 */
InstrumentResult instrumentModule(ir::Module &module,
                                  const InstrumentOptions &options = {});

} // namespace infat

#endif // INFAT_COMPILER_INSTRUMENT_HH
