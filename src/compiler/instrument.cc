#include "compiler/instrument.hh"

#include <algorithm>
#include <map>
#include <set>

#include "compiler/escape.hh"
#include "support/logging.hh"

namespace infat {

using namespace ir;

namespace {

class FunctionInstrumenter
{
  public:
    FunctionInstrumenter(Module &module, Function &func,
                         const FunctionEscapes &escapes,
                         const std::set<GlobalId> &escaping_globals,
                         LayoutRegistry &layouts, InstrumentStats &stats,
                         const InstrumentOptions &options)
        : module_(module), func_(func), escapes_(escapes),
          escapingGlobals_(escaping_globals), layouts_(layouts),
          stats_(stats), options_(options)
    {
    }

    void
    run()
    {
        classifyUses();
        for (size_t b = 0; b < func_.numBlocks(); ++b)
            rewriteBlock(func_.block(static_cast<BlockId>(b)));
        computeSavedBounds();
    }

  private:
    /**
     * Mark registers with uses beyond "address of a load/store": only
     * those need their subobject index and narrowed bounds maintained
     * (an immediately-dereferenced temporary never exposes either, so
     * the tag updates would be dead code).
     */
    void
    classifyUses()
    {
        auto mark = [&](const Operand &operand) {
            if (operand.isReg())
                complexUse_.insert(static_cast<Reg>(operand.payload));
        };
        for (const BasicBlock &block : func_.blocks()) {
            for (const Instr &instr : block.instrs) {
                switch (instr.op) {
                  case Opcode::Load:
                    break; // address-only use of a
                  case Opcode::Store:
                    mark(instr.a); // the stored value escapes
                    break;
                  default:
                    mark(instr.a);
                    mark(instr.b);
                    mark(instr.c);
                    break;
                }
                for (const Operand &arg : instr.args)
                    mark(arg);
            }
        }
    }

    bool
    needsTagMaintenance(Reg reg) const
    {
        return complexUse_.count(reg) != 0;
    }

    const Type *
    allocationRootType(const Instr &alloca_instr) const
    {
        const Type *type = alloca_instr.type;
        if (alloca_instr.imm0 > 1)
            return type; // array allocation: table of the element type
        return type;
    }

    void
    rewriteBlock(BasicBlock &block)
    {
        std::vector<Instr> out;
        out.reserve(block.instrs.size() + 8);
        for (Instr &instr : block.instrs)
            rewriteInstr(instr, out);
        block.instrs = std::move(out);
    }

    void
    rewriteInstr(Instr &instr, std::vector<Instr> &out)
    {
        switch (instr.op) {
          case Opcode::Alloca:
            rewriteAlloca(instr, out);
            return;
          case Opcode::MallocTyped: {
            instr.op = Opcode::IfpMallocTyped;
            instr.layout = layouts_.tableFor(instr.type);
            ++stats_.mallocSitesTyped;
            out.push_back(instr);
            return;
          }
          case Opcode::FreePtr:
            instr.op = Opcode::IfpFree;
            out.push_back(instr);
            return;
          case Opcode::Call:
            rewriteCall(instr, out);
            return;
          case Opcode::GepField:
            lowerGepField(instr, out);
            return;
          case Opcode::GepIndex:
            lowerGepIndex(instr, out);
            return;
          case Opcode::Load: {
            emitExplicitCheck(instr.a, instr.type, out);
            out.push_back(instr);
            if (instr.type && instr.type->isPtr()) {
                // A pointer fresh from memory has no IFPR bounds; the
                // promote recomputes them from the tag (paper §3.2).
                Instr promote;
                promote.op = Opcode::Promote;
                promote.type = instr.type;
                promote.dst = instr.dst;
                promote.a = Operand::reg(instr.dst);
                out.push_back(promote);
                ++stats_.promotesInserted;
            }
            return;
          }
          case Opcode::Mov: {
            out.push_back(instr);
            if (instr.a.kind == Operand::Kind::Global) {
                auto gid = static_cast<GlobalId>(instr.a.payload);
                if (escapingGlobals_.count(gid)) {
                    markGlobal(gid);
                    // The registered global's size is static; narrow
                    // immediately instead of promoting.
                    Instr bnd;
                    bnd.op = Opcode::IfpBnd;
                    bnd.type = instr.type;
                    bnd.dst = instr.dst;
                    bnd.a = Operand::reg(instr.dst);
                    bnd.imm0 = module_.global(gid).type->size();
                    out.push_back(bnd);
                }
            }
            return;
          }
          case Opcode::Store:
            emitExplicitCheck(instr.b, instr.type, out);
            out.push_back(instr);
            return;
          case Opcode::Ret: {
            emitDeregisters(out);
            out.push_back(instr);
            return;
          }
          default:
            out.push_back(instr);
            return;
        }
    }

    void
    rewriteAlloca(Instr &instr, std::vector<Instr> &out)
    {
        if (!escapes_.escapingAllocas.count(instr.dst)) {
            out.push_back(instr);
            return;
        }
        ++stats_.allocaSites;
        const Type *type = instr.type;
        uint64_t object_size = type->size() * instr.imm0;
        LayoutId layout = layouts_.tableFor(
            instr.imm0 > 1 ? type : allocationRootType(instr));
        if (layout != noLayout)
            ++stats_.allocaSitesWithLayout;

        Reg raw = func_.newReg();
        Reg tagged = instr.dst;
        instr.dst = raw;
        instr.imm1 = 1; // padded for in-band metadata
        out.push_back(instr);

        Instr reg_obj;
        reg_obj.op = Opcode::RegisterObj;
        reg_obj.type = type;
        reg_obj.dst = tagged;
        reg_obj.a = Operand::reg(raw);
        reg_obj.imm0 = object_size;
        reg_obj.layout = layout;
        out.push_back(reg_obj);
        registeredAllocas_.push_back(tagged);
    }

    void
    rewriteCall(Instr &instr, std::vector<Instr> &out)
    {
        const Function *callee = module_.function(instr.callee);
        // Allocator calls are rewritten to the runtime library
        // (paper §4.2.1). Plain malloc has no type information, so no
        // layout table can be attached.
        if (callee->isNative() && callee->name() == "malloc" &&
            instr.args.size() == 1) {
            Instr alloc;
            alloc.op = Opcode::IfpMallocTyped;
            alloc.type = module_.types().i8();
            alloc.dst = instr.dst;
            alloc.a = instr.args[0];
            alloc.layout = noLayout;
            ++stats_.mallocSitesUntyped;
            out.push_back(alloc);
            return;
        }
        if (callee->isNative() && callee->name() == "free" &&
            instr.args.size() == 1) {
            Instr free_instr;
            free_instr.op = Opcode::IfpFree;
            free_instr.a = instr.args[0];
            out.push_back(free_instr);
            return;
        }
        out.push_back(instr);
    }

    void
    lowerGepField(Instr &instr, std::vector<Instr> &out)
    {
        ++stats_.gepsLowered;
        const auto *st = static_cast<const StructType *>(instr.type);
        auto field = static_cast<unsigned>(instr.imm0);
        uint64_t offset = st->fieldOffset(field);
        const Type *field_type = st->field(field);

        // A temporary that is only ever dereferenced exposes neither
        // its subobject index nor its bounds register: the updates are
        // dead and DCE'd (the implicit check still covers the access).
        bool maintain = needsTagMaintenance(instr.dst);

        Instr add;
        add.op = Opcode::IfpAdd;
        add.type = module_.types().ptr(field_type);
        add.dst = instr.dst;
        add.a = instr.a;
        add.b = Operand::immInt(offset);
        // imm1 is unused by ifpadd; when the field pointer gets tag
        // maintenance (ifpidx/ifpbnd below) it carries the field size
        // so the differential oracle knows the claimed sub-extent.
        if (maintain)
            add.imm1 = field_type->size();
        out.push_back(add);

        if (!maintain)
            return;

        Instr idx;
        idx.op = Opcode::IfpIdx;
        idx.type = add.type;
        idx.dst = instr.dst;
        idx.a = Operand::reg(instr.dst);
        idx.imm0 = layoutFieldDelta(st, field);
        out.push_back(idx);

        Instr bnd;
        bnd.op = Opcode::IfpBnd;
        bnd.type = add.type;
        bnd.dst = instr.dst;
        bnd.a = Operand::reg(instr.dst);
        bnd.imm0 = field_type->size();
        out.push_back(bnd);
    }

    void
    lowerGepIndex(Instr &instr, std::vector<Instr> &out)
    {
        ++stats_.gepsLowered;
        uint64_t elem_size = instr.type->size();

        Instr add;
        add.op = Opcode::IfpAdd;
        add.type = module_.types().ptr(instr.type);
        add.dst = instr.dst;
        add.a = instr.a;

        if (!instr.b.isReg()) {
            add.b = Operand::immInt(instr.b.payload * elem_size);
            out.push_back(add);
            return;
        }
        if (elem_size == 1) {
            add.b = instr.b;
            out.push_back(add);
            return;
        }
        Reg scaled = func_.newReg();
        Instr mul;
        mul.op = Opcode::Mul;
        mul.type = module_.types().i64();
        mul.dst = scaled;
        mul.a = instr.b;
        mul.b = Operand::immInt(elem_size);
        out.push_back(mul);
        add.b = Operand::reg(scaled);
        out.push_back(add);
    }

    /** Explicit access-size check (ablation mode, §4.1.1). */
    void
    emitExplicitCheck(const Operand &addr, const Type *type,
                      std::vector<Instr> &out)
    {
        if (!options_.explicitChecks || !addr.isReg() || !type)
            return;
        Instr chk;
        chk.op = Opcode::IfpChk;
        chk.type = type;
        chk.dst = static_cast<Reg>(addr.payload);
        chk.a = addr;
        chk.imm0 = type->size();
        out.push_back(chk);
    }

    void
    emitDeregisters(std::vector<Instr> &out)
    {
        for (Reg tagged : registeredAllocas_) {
            Instr dereg;
            dereg.op = Opcode::DeregisterObj;
            dereg.a = Operand::reg(tagged);
            out.push_back(dereg);
        }
    }

    void
    markGlobal(GlobalId gid)
    {
        Global &global = module_.global(gid);
        if (!global.instrumented) {
            global.instrumented = true;
            ++stats_.instrumentedGlobals;
            if (layouts_.tableFor(global.type) != noLayout)
                ++stats_.globalsWithLayout;
        }
    }

    /**
     * Conservative estimate of callee-saved bounds registers: pointer
     * registers defined before some call and used after one must
     * survive in callee-saved bounds registers (paper §4.1.2).
     */
    void
    computeSavedBounds()
    {
        std::map<Reg, size_t> first_def;
        std::map<Reg, size_t> last_use;
        std::vector<size_t> call_positions;
        std::map<Reg, bool> is_ptr;

        // Incoming pointer arguments arrive with bounds in their
        // paired registers ("defined" at entry).
        for (size_t p = 0; p < func_.numParams(); ++p) {
            if (func_.paramType(p)->isPtr()) {
                first_def[static_cast<Reg>(p)] = 0;
                is_ptr[static_cast<Reg>(p)] = true;
            }
        }

        size_t pos = 0;
        for (const BasicBlock &block : func_.blocks()) {
            for (const Instr &instr : block.instrs) {
                ++pos;
                if (instr.op == Opcode::Call ||
                    instr.op == Opcode::CallPtr ||
                    instr.op == Opcode::IfpMallocTyped) {
                    call_positions.push_back(pos);
                }
                for (const Operand *operand :
                     {&instr.a, &instr.b, &instr.c}) {
                    if (operand->isReg())
                        last_use[static_cast<Reg>(operand->payload)] = pos;
                }
                for (const Operand &arg : instr.args) {
                    if (arg.isReg())
                        last_use[static_cast<Reg>(arg.payload)] = pos;
                }
                if (instr.dst != noReg &&
                    !first_def.count(instr.dst)) {
                    first_def[instr.dst] = pos;
                    bool ptr = instr.op == Opcode::Alloca ||
                               instr.op == Opcode::RegisterObj ||
                               instr.op == Opcode::IfpMallocTyped ||
                               instr.op == Opcode::IfpAdd ||
                               (instr.type && instr.type->isPtr());
                    is_ptr[instr.dst] = ptr;
                }
            }
        }
        if (call_positions.empty()) {
            func_.setSavedBoundsRegs(0);
            return;
        }
        unsigned saved = 0;
        for (const auto &[reg, def_pos] : first_def) {
            if (!is_ptr[reg])
                continue;
            auto use_it = last_use.find(reg);
            if (use_it == last_use.end())
                continue;
            bool live_across = std::any_of(
                call_positions.begin(), call_positions.end(),
                [&](size_t c) {
                    return def_pos < c && c < use_it->second;
                });
            if (live_across)
                ++saved;
        }
        func_.setSavedBoundsRegs(std::min(saved, 8u));
    }

    Module &module_;
    Function &func_;
    const FunctionEscapes &escapes_;
    const std::set<GlobalId> &escapingGlobals_;
    LayoutRegistry &layouts_;
    InstrumentStats &stats_;
    const InstrumentOptions &options_;
    std::vector<Reg> registeredAllocas_;
    std::set<Reg> complexUse_;
};

} // namespace

InstrumentResult
instrumentModule(Module &module, const InstrumentOptions &options)
{
    InstrumentResult result;
    ModuleEscapes escapes = analyzeEscapes(module);
    for (size_t i = 0; i < module.numFunctions(); ++i) {
        Function *func = module.function(static_cast<FuncId>(i));
        if (func->isNative() || !func->isInstrumented())
            continue;
        FunctionInstrumenter(module, *func, escapes.functions[i],
                             escapes.escapingGlobals, result.layouts,
                             result.stats, options)
            .run();
    }
    return result;
}

} // namespace infat
