/**
 * @file
 * Escape analysis: which objects need In-Fat Pointer metadata.
 *
 * The compiler instruments an object when the safety of accesses
 * through it cannot be statically determined (paper §3.1). The policy
 * here mirrors the paper's example and errs conservative:
 *
 *  - a stack object (alloca) is instrumented when its address (or any
 *    pointer derived from it) is stored to memory as a value, passed to
 *    a call, returned, or indexed with a non-constant index;
 *  - a global is instrumented under the same conditions; globals only
 *    referenced by name (direct load/store of their fields) stay
 *    uninstrumented, matching §4.2.2.
 */

#ifndef INFAT_COMPILER_ESCAPE_HH
#define INFAT_COMPILER_ESCAPE_HH

#include <set>

#include "ir/module.hh"

namespace infat {

struct FunctionEscapes
{
    /** Registers holding allocas whose object must be instrumented. */
    std::set<ir::Reg> escapingAllocas;
};

struct ModuleEscapes
{
    /** Per-function results, indexed by function id. */
    std::vector<FunctionEscapes> functions;
    /** Globals that must be instrumented. */
    std::set<ir::GlobalId> escapingGlobals;
};

ModuleEscapes analyzeEscapes(const ir::Module &module);

} // namespace infat

#endif // INFAT_COMPILER_ESCAPE_HH
