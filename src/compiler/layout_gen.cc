#include "compiler/layout_gen.hh"

#include "support/logging.hh"

namespace infat {

using ir::ArrayType;
using ir::StructType;
using ir::Type;

namespace {

/** Entries contributed by the subtree of one field of type @p type. */
uint64_t
entriesForField(const Type *type)
{
    if (type->isStruct()) {
        const auto *st = static_cast<const StructType *>(type);
        uint64_t n = 1;
        for (size_t i = 0; i < st->numFields(); ++i)
            n += entriesForField(st->field(i));
        return n;
    }
    if (type->isArray()) {
        const auto *at = static_cast<const ArrayType *>(type);
        const Type *elem = at->elem();
        // The array entry doubles as the element context (Figure 9:
        // S.array has one entry; the element struct's fields hang
        // directly off it).
        uint64_t n = 1;
        if (elem->isStruct()) {
            const auto *st = static_cast<const StructType *>(elem);
            for (size_t i = 0; i < st->numFields(); ++i)
                n += entriesForField(st->field(i));
        } else if (elem->isArray()) {
            n += entriesForField(elem);
        }
        return n;
    }
    return 1;
}

class TableBuilder
{
  public:
    LayoutTable
    build(const Type *root)
    {
        LayoutEntry root_entry;
        root_entry.parent = 0;
        root_entry.base = 0;
        if (root->isArray()) {
            const auto *at = static_cast<const ArrayType *>(root);
            root_entry.bound = static_cast<uint32_t>(at->size());
            root_entry.size = static_cast<uint32_t>(at->elem()->size());
            table_.addEntry(root_entry);
            addElementChildren(0, at->elem());
        } else {
            root_entry.bound = static_cast<uint32_t>(root->size());
            root_entry.size = static_cast<uint32_t>(root->size());
            table_.addEntry(root_entry);
            addElementChildren(0, root);
        }
        return std::move(table_);
    }

  private:
    /** Add the children living inside one element of entry @p parent. */
    void
    addElementChildren(uint16_t parent, const Type *elem)
    {
        if (elem->isStruct()) {
            const auto *st = static_cast<const StructType *>(elem);
            for (size_t i = 0; i < st->numFields(); ++i) {
                addField(parent, st->field(i),
                         static_cast<uint32_t>(st->fieldOffset(i)));
            }
        } else if (elem->isArray()) {
            addField(parent, elem, 0);
        }
    }

    void
    addField(uint16_t parent, const Type *type, uint32_t base)
    {
        LayoutEntry entry;
        entry.parent = parent;
        entry.base = base;
        if (type->isArray()) {
            const auto *at = static_cast<const ArrayType *>(type);
            entry.bound = base + static_cast<uint32_t>(at->size());
            entry.size = static_cast<uint32_t>(at->elem()->size());
            auto idx = static_cast<uint16_t>(table_.numEntries());
            table_.addEntry(entry);
            addElementChildren(idx, at->elem());
        } else {
            entry.bound = base + static_cast<uint32_t>(type->size());
            entry.size = static_cast<uint32_t>(type->size());
            auto idx = static_cast<uint16_t>(table_.numEntries());
            table_.addEntry(entry);
            if (type->isStruct())
                addElementChildren(idx, type);
        }
    }

    LayoutTable table_;
};

} // namespace

uint64_t
layoutSubtreeEntries(const Type *type)
{
    return entriesForField(type);
}

uint64_t
layoutFieldDelta(const StructType *struct_type, unsigned field_index)
{
    panic_if(field_index >= struct_type->numFields(),
             "field index out of range");
    uint64_t delta = 1;
    for (unsigned i = 0; i < field_index; ++i)
        delta += entriesForField(struct_type->field(i));
    return delta;
}

LayoutTable
buildLayoutTable(const Type *root)
{
    return TableBuilder().build(root);
}

ir::LayoutId
LayoutRegistry::tableFor(const Type *type)
{
    auto it = byType_.find(type);
    if (it != byType_.end())
        return it->second;

    // Types without subobjects need no table: their object bounds are
    // already the finest granularity.
    if (layoutSubtreeEntries(type) <= 1) {
        byType_.emplace(type, ir::noLayout);
        return ir::noLayout;
    }

    LayoutTable table = buildLayoutTable(type);
    std::string error;
    panic_if(!table.verify(&error), "generated bad layout table for %s: %s",
             type->toString().c_str(), error.c_str());
    auto id = static_cast<ir::LayoutId>(tables_.size());
    tables_.push_back(std::move(table));
    byType_.emplace(type, id);
    return id;
}

} // namespace infat
