#include "oracle/oracle.hh"

#include <algorithm>

namespace infat {
namespace oracle {

const char *
toString(Verdict verdict)
{
    switch (verdict) {
      case Verdict::Unknown:
        return "unknown";
      case Verdict::InBounds:
        return "in-bounds";
      case Verdict::OutOfBounds:
        return "out-of-bounds";
      case Verdict::IntraObject:
        return "intra-object";
      case Verdict::Stale:
        return "stale";
    }
    return "?";
}

namespace {
constexpr size_t kMaxDiscrepancies = 32;
} // namespace

ShadowOracle::ShadowOracle()
    : stats_("oracle"),
      cChecks_(stats_.counter("checks")),
      cAbstained_(stats_.counter("abstained")),
      cTruePositives_(stats_.counter("true_positives")),
      cTrueNegatives_(stats_.counter("true_negatives")),
      cFalseNegatives_(stats_.counter("false_negatives")),
      cFalsePositives_(stats_.counter("false_positives")),
      cOobVerdicts_(stats_.counter("oob_verdicts")),
      cIntraVerdicts_(stats_.counter("intra_verdicts")),
      cStaleVerdicts_(stats_.counter("stale_verdicts")),
      cTemporalTruePositives_(
          stats_.counter("temporal_true_positives")),
      cTemporalFalseNegatives_(
          stats_.counter("temporal_false_negatives")),
      cTemporalFalsePositives_(
          stats_.counter("temporal_false_positives")),
      cFreeChecks_(stats_.counter("free_checks")),
      cObjects_(stats_.counter("objects_tracked")),
      cShadowStores_(stats_.counter("shadow_stores"))
{
}

Prov
ShadowOracle::registerObject(GuestAddr base, uint64_t size,
                             ObjectKind kind)
{
    auto stale = liveByBase_.find(base);
    if (stale != liveByBase_.end())
        objects_[stale->second - 1].live = false;

    objects_.push_back(Object{base, size, kind, true});
    uint32_t id = static_cast<uint32_t>(objects_.size());
    liveByBase_[base] = id;
    lastByBase_[base] = id;
    if (kind == ObjectKind::Stack)
        stackLifo_.push_back(id);
    ++cObjects_;
    return Prov{id, 0, 0};
}

void
ShadowOracle::freeObjectAt(GuestAddr base)
{
    auto it = liveByBase_.find(base);
    if (it == liveByBase_.end())
        return;
    objects_[it->second - 1].live = false;
    liveByBase_.erase(it);
}

void
ShadowOracle::unwindStack(GuestAddr sp)
{
    while (!stackLifo_.empty()) {
        Object &obj = objects_[stackLifo_.back() - 1];
        if (obj.live && obj.base >= sp)
            break; // caller's objects (and above) stay live
        if (obj.live) {
            obj.live = false;
            liveByBase_.erase(obj.base);
        }
        stackLifo_.pop_back();
    }
}

void
ShadowOracle::enterFrame(unsigned depth, size_t num_regs)
{
    if (frames_.size() <= depth)
        frames_.resize(depth + 1);
    std::vector<Prov> &regs = frames_[depth];
    regs.assign(num_regs, Prov{});
    size_t n = std::min(stagedArgs_.size(), num_regs);
    for (size_t i = 0; i < n; i++)
        regs[i] = stagedArgs_[i];
    stagedArgs_.clear();
}

void
ShadowOracle::stageCallArgs(std::vector<Prov> args)
{
    stagedArgs_ = std::move(args);
}

void
ShadowOracle::noteGlobal(uint32_t global_id, const Prov &prov)
{
    if (globals_.size() <= global_id)
        globals_.resize(global_id + 1);
    globals_[global_id] = prov;
}

Prov
ShadowOracle::globalProv(uint32_t global_id) const
{
    if (global_id >= globals_.size())
        return Prov{};
    return globals_[global_id];
}

void
ShadowOracle::recordStore(GuestAddr addr, uint64_t raw, const Prov &prov)
{
    if (!prov.valid()) {
        // A plain data value overwrote whatever pointer (if any) lived
        // here; dropping the slot keeps the map proportional to live
        // pointer stores.
        shadowMem_.erase(addr);
        return;
    }
    shadowMem_[addr] = Slot{raw, prov};
    ++cShadowStores_;
}

void
ShadowOracle::clobberStore(GuestAddr addr)
{
    // Narrow stores at other offsets of an existing slot are caught by
    // loadProv's raw-value comparison instead of eager invalidation.
    shadowMem_.erase(addr);
}

Prov
ShadowOracle::loadProv(GuestAddr addr, uint64_t raw) const
{
    auto it = shadowMem_.find(addr);
    if (it == shadowMem_.end() || it->second.raw != raw)
        return Prov{};
    return it->second.prov;
}

Verdict
ShadowOracle::classify(const Prov &prov, GuestAddr addr,
                       uint64_t size) const
{
    if (!prov.valid())
        return Verdict::Unknown;
    const Object &obj = objects_[prov.objId - 1];
    if (!obj.live)
        return Verdict::Stale; // freed (or superseded at this base)
    if (addr < obj.base || addr + size > obj.base + obj.size)
        return Verdict::OutOfBounds;
    if (prov.hasSub() &&
        (addr < prov.subLower || addr + size > prov.subUpper)) {
        return Verdict::IntraObject;
    }
    return Verdict::InBounds;
}

void
ShadowOracle::check(const Prov &prov, GuestAddr addr, uint64_t size,
                    bool write, bool ifp_traps, bool ifp_temporal)
{
    ++cChecks_;
    Verdict verdict = classify(prov, addr, size);
    switch (verdict) {
      case Verdict::Unknown:
        ++cAbstained_;
        return;
      case Verdict::InBounds:
        if (ifp_traps) {
            // A trap on a live, in-bounds access is over-blocking
            // whichever axis raised it; a temporal one additionally
            // lands in the temporal FP counter the acceptance gates
            // pin to zero.
            ++cFalsePositives_;
            if (ifp_temporal)
                ++cTemporalFalsePositives_;
            record(false, verdict, prov, addr, size, write);
        } else {
            ++cTrueNegatives_;
        }
        return;
      case Verdict::OutOfBounds:
      case Verdict::IntraObject:
        ++(verdict == Verdict::OutOfBounds ? cOobVerdicts_
                                           : cIntraVerdicts_);
        if (ifp_traps) {
            ++cTruePositives_;
        } else {
            ++cFalseNegatives_;
            record(true, verdict, prov, addr, size, write);
        }
        return;
      case Verdict::Stale:
        // Temporal ground truth: the object is dead, so any trap —
        // temporal or spatial (e.g. erased metadata poisoning the
        // promote) — means the defense caught the use-after-free.
        // These feed separate counters so the spatial zero-FN gates
        // keep their meaning.
        ++cStaleVerdicts_;
        if (ifp_traps) {
            ++cTemporalTruePositives_;
        } else {
            ++cTemporalFalseNegatives_;
            record(true, verdict, prov, addr, size, write);
        }
        return;
    }
}

void
ShadowOracle::checkFree(GuestAddr base, bool ifp_traps,
                        const Prov &prov)
{
    ++cFreeChecks_;
    if (prov.valid()) {
        // The pointer's provenance disambiguates the recycled-slot
        // case the base lookup cannot: after free + same-size malloc
        // the base is live again under a *new* object, but a re-free
        // through the old pointer is still a stale free.
        const Object &obj = objects_[prov.objId - 1];
        auto live = liveByBase_.find(base);
        if (obj.live && live != liveByBase_.end() &&
            live->second == prov.objId) {
            if (ifp_traps) {
                ++cTemporalFalsePositives_;
                ++cFalsePositives_;
            }
            return;
        }
        // Dead (freed or superseded) provenance, or a pointer that
        // does not address its own object's base: an invalid free.
        if (ifp_traps)
            ++cTemporalTruePositives_;
        else
            ++cTemporalFalseNegatives_;
        return;
    }
    if (liveByBase_.count(base) != 0) {
        if (ifp_traps) {
            // Trapping a correct free of a live object would break
            // real programs: a temporal (and overall) false positive.
            ++cTemporalFalsePositives_;
            ++cFalsePositives_;
        }
        return;
    }
    if (lastByBase_.count(base) == 0)
        return; // never tracked here: abstain
    // Tracked before but not live now: a double (or stale) free.
    if (ifp_traps)
        ++cTemporalTruePositives_;
    else
        ++cTemporalFalseNegatives_;
}

void
ShadowOracle::record(bool false_negative, Verdict verdict,
                     const Prov &prov, GuestAddr addr, uint64_t size,
                     bool write)
{
    if (discrepancies_.size() >= kMaxDiscrepancies)
        return;
    Discrepancy d;
    d.falseNegative = false_negative;
    d.verdict = verdict;
    d.addr = addr;
    d.size = size;
    d.write = write;
    const Object &obj = objects_[prov.objId - 1];
    d.objBase = obj.base;
    d.objSize = obj.size;
    d.subLower = prov.subLower;
    d.subUpper = prov.subUpper;
    discrepancies_.push_back(d);
}

} // namespace oracle
} // namespace infat
