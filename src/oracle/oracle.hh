/**
 * @file
 * Shadow-memory differential bounds oracle.
 *
 * The IFP machinery's verdict on every checked load/store is derived
 * from tagged-pointer poison bits, MAC-verified metadata, and layout
 * tables — lots of moving parts, each of which can fail silently. The
 * oracle is an independent second opinion: it tracks ground-truth
 * object extents (registered when the runtime allocates and when
 * instrumentation registers stack objects and globals) plus the
 * subobject extent each instrumented field-entry claims, propagates
 * that provenance alongside the interpreter's registers and through
 * memory via a shadow map, and classifies each access itself as
 * in-bounds / out-of-bounds / intra-object-violation. Diffing the two
 * verdicts surfaces:
 *
 *  - false negatives: the oracle says violation, the IFP machinery
 *    let the access pass (a hole in the defense);
 *  - false positives: the oracle says in-bounds, the IFP machinery
 *    trapped (over-blocking that would break real programs).
 *
 * The oracle deliberately mirrors what the defense *claims* to protect:
 * only instrumented objects get provenance, and a subobject extent is
 * recorded exactly where instrumentation narrows bounds (the IfpAdd
 * field-size annotation, see instrument.cc::lowerGepField). Accesses
 * with no provenance — legacy arena, uninstrumented locals, pointers
 * laundered through byte-wise memory — are counted as *abstained*, not
 * guessed at: an oracle that guesses produces discrepancy noise instead
 * of bugs.
 *
 * Verdict diffs are recorded in a StatGroup ("oracle") so suites can
 * export per-cell false-negative/false-positive counts through the
 * stat registry (--stats-json).
 */

#ifndef INFAT_ORACLE_ORACLE_HH
#define INFAT_ORACLE_ORACLE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "mem/address_space.hh"
#include "support/stats.hh"

namespace infat {
namespace oracle {

enum class ObjectKind
{
    Stack,
    Heap,
    Global,
};

/** The oracle's independent classification of one access. */
enum class Verdict
{
    /** No provenance: the oracle abstains. */
    Unknown,
    /** Within the object and, if narrowed, within the subobject. */
    InBounds,
    /** Outside the ground-truth object extent. */
    OutOfBounds,
    /** Inside the object but outside the claimed subobject extent. */
    IntraObject,
    /**
     * Provenance refers to an object that is no longer live (freed, or
     * superseded by a re-registration at the same base): any access
     * through it is a temporal violation (use-after-free).
     */
    Stale,
};

const char *toString(Verdict verdict);

/**
 * Ground-truth provenance carried alongside one interpreter register
 * (or one pointer-sized shadow-memory slot): which tracked object the
 * pointer derives from, and — when instrumentation entered a subobject
 * — the byte extent of that subobject.
 */
struct Prov
{
    /** 1-based id into the oracle's object log; 0 = no provenance. */
    uint32_t objId = 0;
    /** Subobject extent [subLower, subUpper); subUpper 0 = none. */
    GuestAddr subLower = 0;
    GuestAddr subUpper = 0;

    bool valid() const { return objId != 0; }
    bool hasSub() const { return subUpper != 0; }
};

/** One recorded verdict disagreement, for diagnostics. */
struct Discrepancy
{
    bool falseNegative = false; ///< else false positive
    Verdict verdict = Verdict::Unknown;
    GuestAddr addr = 0;
    uint64_t size = 0;
    bool write = false;
    GuestAddr objBase = 0;
    uint64_t objSize = 0;
    GuestAddr subLower = 0;
    GuestAddr subUpper = 0;
};

class ShadowOracle
{
  public:
    ShadowOracle();

    // --- Object lifecycle -------------------------------------------
    /**
     * Track a new object extent [base, base + size) and return the
     * provenance to seed into the defining register. A still-live
     * object at the same base is superseded (its provenance goes
     * stale, so accesses through old pointers abstain rather than
     * mis-classify).
     */
    Prov registerObject(GuestAddr base, uint64_t size, ObjectKind kind);
    /** Kill the live object at @p base; idempotent. */
    void freeObjectAt(GuestAddr base);
    /**
     * Kill live stack objects below the restored stack pointer.
     * The stack grows down, so after a call returns every object the
     * callee allocated sits below the caller's saved sp.
     */
    void unwindStack(GuestAddr sp);

    // --- Per-frame register provenance ------------------------------
    /**
     * (Re)initialize the provenance array for the frame at @p depth
     * with @p num_regs cleared slots, then seed staged call-argument
     * provenance into the leading parameter registers.
     */
    void enterFrame(unsigned depth, size_t num_regs);
    /** Provenance array for the frame at @p depth (valid after
     *  enterFrame; element pointers stay valid across nested calls). */
    Prov *frameRegs(unsigned depth) { return frames_[depth].data(); }
    /** Stage callee-argument provenance for the next enterFrame. */
    void stageCallArgs(std::vector<Prov> args);
    void setRetProv(const Prov &prov) { retProv_ = prov; }
    Prov
    takeRetProv()
    {
        Prov p = retProv_;
        retProv_ = Prov{};
        return p;
    }
    /** Native callees neither consume staged args nor set a return
     *  provenance; clear both at the boundary. */
    void
    clearCallState()
    {
        stagedArgs_.clear();
        retProv_ = Prov{};
    }

    // --- Global provenance ------------------------------------------
    void noteGlobal(uint32_t global_id, const Prov &prov);
    Prov globalProv(uint32_t global_id) const;

    // --- Shadow memory for pointer-sized stores ---------------------
    /**
     * Record the provenance flowing through an 8-byte store. The raw
     * stored value is remembered too: a later load only inherits the
     * provenance if memory still holds the same bits, so partial
     * overwrites and native (libc-model) writes make the slot stale
     * instead of wrong.
     */
    void recordStore(GuestAddr addr, uint64_t raw, const Prov &prov);
    /** A narrower store landed at @p addr: drop any slot there. */
    void clobberStore(GuestAddr addr);
    /** Provenance for an 8-byte load of @p raw from @p addr. */
    Prov loadProv(GuestAddr addr, uint64_t raw) const;

    // --- Classification ---------------------------------------------
    Verdict classify(const Prov &prov, GuestAddr addr,
                     uint64_t size) const;
    /**
     * Diff the oracle's verdict against the IFP machinery's:
     * @p ifp_traps is whether the checked access is about to trap
     * (poison, null, or implicit bounds-check failure) and
     * @p ifp_temporal whether that trap is the temporal kind (a
     * TemporalStale poison, i.e. a failed generation-lock comparison).
     * Stale verdicts feed the temporal TP/FN counters, which are kept
     * separate from the spatial ones so the spatial zero-FN gates stay
     * meaningful; a temporal trap on a live in-bounds access counts as
     * both a temporal and an overall false positive.
     */
    void check(const Prov &prov, GuestAddr addr, uint64_t size,
               bool write, bool ifp_traps, bool ifp_temporal = false);

    /**
     * Temporal ground truth for one free of the object at @p base:
     * live object = a correct free (an InvalidFree trap would be a
     * temporal false positive); a base the oracle has tracked before
     * but that is not live = double/stale free (no trap = temporal
     * false negative); never-tracked base = abstain.
     *
     * When the freeing pointer's provenance is available, it takes
     * precedence over the base lookup: a freed slot can be live again
     * under a *new* object (recycled by the allocator), and only the
     * provenance can tell a correct free of the new object from a
     * stale re-free through the old pointer.
     */
    void checkFree(GuestAddr base, bool ifp_traps,
                   const Prov &prov = Prov{});

    // --- Results ----------------------------------------------------
    StatGroup &stats() { return stats_; }
    uint64_t checks() const { return cChecks_.value(); }
    uint64_t abstained() const { return cAbstained_.value(); }
    uint64_t truePositives() const { return cTruePositives_.value(); }
    uint64_t trueNegatives() const { return cTrueNegatives_.value(); }
    uint64_t falseNegatives() const { return cFalseNegatives_.value(); }
    uint64_t falsePositives() const { return cFalsePositives_.value(); }
    uint64_t
    temporalTruePositives() const
    {
        return cTemporalTruePositives_.value();
    }
    uint64_t
    temporalFalseNegatives() const
    {
        return cTemporalFalseNegatives_.value();
    }
    uint64_t
    temporalFalsePositives() const
    {
        return cTemporalFalsePositives_.value();
    }
    /** First few disagreements, capped, for error messages. */
    const std::vector<Discrepancy> &discrepancies() const
    {
        return discrepancies_;
    }

  private:
    struct Object
    {
        GuestAddr base = 0;
        uint64_t size = 0;
        ObjectKind kind = ObjectKind::Heap;
        bool live = false;
    };

    struct Slot
    {
        uint64_t raw = 0;
        Prov prov;
    };

    void record(bool false_negative, Verdict verdict, const Prov &prov,
                GuestAddr addr, uint64_t size, bool write);

    /** Append-only object log; Prov::objId is 1 + index, so stale
     *  provenance never aliases a reused id. */
    std::vector<Object> objects_;
    std::unordered_map<GuestAddr, uint32_t> liveByBase_;
    /** Most recent object id ever tracked at each base (live or not):
     *  distinguishes a double free from a free of an address the
     *  oracle never saw (which it abstains on). */
    std::unordered_map<GuestAddr, uint32_t> lastByBase_;
    /** Allocation-ordered live-ish stack object ids for unwindStack. */
    std::vector<uint32_t> stackLifo_;

    std::vector<std::vector<Prov>> frames_;
    std::vector<Prov> stagedArgs_;
    Prov retProv_;
    std::vector<Prov> globals_;

    std::unordered_map<GuestAddr, Slot> shadowMem_;

    StatGroup stats_;
    Counter &cChecks_;
    Counter &cAbstained_;
    Counter &cTruePositives_;
    Counter &cTrueNegatives_;
    Counter &cFalseNegatives_;
    Counter &cFalsePositives_;
    Counter &cOobVerdicts_;
    Counter &cIntraVerdicts_;
    Counter &cStaleVerdicts_;
    Counter &cTemporalTruePositives_;
    Counter &cTemporalFalseNegatives_;
    Counter &cTemporalFalsePositives_;
    Counter &cFreeChecks_;
    Counter &cObjects_;
    Counter &cShadowStores_;

    std::vector<Discrepancy> discrepancies_;
};

} // namespace oracle
} // namespace infat

#endif // INFAT_ORACLE_ORACLE_HH
