#include "oracle/fault.hh"

#include <cstdio>
#include <memory>

#include "compiler/layout_gen.hh"
#include "ifp/config.hh"
#include "ifp/control_regs.hh"
#include "ifp/ops.hh"
#include "ifp/promote_engine.hh"
#include "ifp/tag.hh"
#include "ir/module.hh"
#include "mem/guest_memory.hh"
#include "runtime/runtime.hh"
#include "support/bitops.hh"
#include "support/logging.hh"
#include "support/rng.hh"
#include "support/thread_pool.hh"

namespace infat {
namespace oracle {

const char *
toString(FaultTarget target)
{
    switch (target) {
      case FaultTarget::PointerBits:
        return "pointer_bits";
      case FaultTarget::LocalMeta:
        return "local_meta";
      case FaultTarget::SubheapMeta:
        return "subheap_meta";
      case FaultTarget::GlobalRow:
        return "global_row";
      case FaultTarget::LayoutEntry:
        return "layout_entry";
    }
    return "?";
}

namespace {

/**
 * One trial's isolated world: its own guest memory, control registers,
 * runtime, and promote engine, plus a single allocated object. Trials
 * share nothing, which is what makes the campaign pool-parallel.
 */
struct World
{
    GuestMemory mem;
    IfpControlRegs regs;
    ir::Module module;
    LayoutRegistry layouts;
    std::unique_ptr<Runtime> runtime;
    std::unique_ptr<PromoteEngine> engine;

    IfpAllocation alloc;
    uint64_t objSize = 0;
    ir::LayoutId layoutId = ir::noLayout;
    const ir::StructType *structType = nullptr;
    /** Subobject probe: the [8 x i64] field of the test struct. */
    uint64_t fieldLayoutIndex = 0;
    uint64_t fieldOffset = 8;
    uint64_t fieldSize = 64;
};

/**
 * Observable behaviour of one pointer at one probe: whether a
 * dereference traps, whether metadata verification failed, and what
 * bounds the promote produced. Two signatures comparing equal means
 * the corruption is invisible to this probe.
 */
struct Signature
{
    GuestAddr addr = 0;
    bool trapped = false;
    bool metaInvalid = false;
    bool boundsValid = false;
    GuestAddr lower = 0;
    GuestAddr upper = 0;

    bool operator==(const Signature &) const = default;
};

Signature
probePtr(PromoteEngine &engine, TaggedPtr ptr, uint64_t probe_size)
{
    Signature s;
    s.addr = ptr.addr();
    if (ptr.isPoisoned()) {
        s.trapped = true;
        return s;
    }
    // Mirrors Machine::checkAccess: the guard page traps null-ish
    // pointers even without bounds.
    if (s.addr < GuestMemory::pageSize) {
        s.trapped = true;
        return s;
    }
    PromoteResult res = engine.promote(ptr);
    s.metaInvalid =
        res.outcome == PromoteResult::Outcome::MetaInvalid;
    if (res.ptr.isPoisoned()) {
        s.trapped = true;
        return s;
    }
    s.boundsValid = res.bounds.valid();
    if (s.boundsValid) {
        s.lower = res.bounds.lower();
        s.upper = res.bounds.upper();
        if (!res.bounds.contains(s.addr, probe_size))
            s.trapped = true;
    }
    return s;
}

/** Base-extent probe plus (when a layout is attached) a probe of a
 *  subobject pointer narrowed into the array field. */
struct ProbeSet
{
    Signature base;
    Signature sub;
    bool hasSub = false;

    bool
    operator==(const ProbeSet &o) const
    {
        return base == o.base && hasSub == o.hasSub &&
               (!hasSub || sub == o.sub);
    }

    bool
    detectedVersus(const ProbeSet &clean) const
    {
        return (base.trapped && !clean.base.trapped) ||
               (hasSub && sub.trapped && !clean.sub.trapped);
    }
};

TaggedPtr
subobjectPtr(const World &world, TaggedPtr ptr)
{
    TaggedPtr p = ops::ifpIdx(ptr, world.fieldLayoutIndex);
    return ops::ifpAdd(p, static_cast<int64_t>(world.fieldOffset),
                       Bounds());
}

ProbeSet
probeWorld(World &world, TaggedPtr ptr, uint64_t base_probe_size)
{
    ProbeSet set;
    set.base = probePtr(*world.engine, ptr, base_probe_size);
    set.hasSub = world.layoutId != ir::noLayout &&
                 ptr.scheme() != Scheme::GlobalTable &&
                 ptr.scheme() != Scheme::Legacy;
    if (set.hasSub) {
        set.sub = probePtr(*world.engine, subobjectPtr(world, ptr),
                           world.fieldSize);
    }
    return set;
}

std::unique_ptr<World>
makeWorld(FaultTarget target, Rng &rng)
{
    auto world = std::make_unique<World>();
    ir::TypeContext &types = world->module.types();
    const ir::StructType *st = types.createStruct(
        "fault_s",
        {types.i64(), types.array(types.i64(), 8), types.i64()});
    world->structType = st;
    world->fieldLayoutIndex = layoutFieldDelta(st, 1);

    AllocatorKind kind = AllocatorKind::Wrapped;
    bool with_layout = true;
    world->objSize = st->size();
    switch (target) {
      case FaultTarget::PointerBits:
        // Cover all three metadata schemes.
        switch (rng.below(3)) {
          case 0:
            break; // wrapped small: local offset
          case 1:
            world->objSize = 2048; // wrapped big: global table
            with_layout = false;
            break;
          default:
            kind = AllocatorKind::Subheap;
            break;
        }
        break;
      case FaultTarget::LocalMeta:
        break;
      case FaultTarget::SubheapMeta:
        kind = AllocatorKind::Subheap;
        break;
      case FaultTarget::GlobalRow:
        world->objSize = 2048;
        with_layout = false;
        break;
      case FaultTarget::LayoutEntry:
        break;
    }

    if (with_layout)
        world->layoutId = world->layouts.tableFor(st);
    world->runtime = std::make_unique<Runtime>(world->mem, world->regs,
                                               kind, true);
    world->runtime->init(&world->layouts);
    world->engine =
        std::make_unique<PromoteEngine>(world->mem, nullptr, world->regs);

    RuntimeCost cost;
    world->alloc =
        world->runtime->ifpMalloc(world->objSize, world->layoutId, cost);
    return world;
}

void
flipBit(GuestMemory &mem, GuestAddr base, uint64_t bit)
{
    GuestAddr byte_addr = base + bit / 8;
    uint8_t value = mem.load<uint8_t>(byte_addr);
    mem.store<uint8_t>(byte_addr, value ^ (1u << (bit % 8)));
}

/** Guest address of the record the trial corrupts. */
GuestAddr
recordAddr(const World &world, FaultTarget target)
{
    TaggedPtr ptr = world.alloc.ptr;
    switch (target) {
      case FaultTarget::LocalMeta:
        return roundDown(ptr.addr(), IfpConfig::granuleBytes) +
               ptr.localGranuleOffset() * IfpConfig::granuleBytes;
      case FaultTarget::SubheapMeta: {
        const SubheapCtrlReg &ctrl =
            world.regs.subheap[ptr.subheapCtrlIndex()];
        GuestAddr block =
            roundDown(ptr.addr(), 1ULL << ctrl.blockOrderLog2);
        return block + ctrl.metaOffset;
      }
      case FaultTarget::GlobalRow:
        return world.regs.globalTableBase +
               ptr.globalTableIndex() * IfpConfig::globalRowBytes;
      default:
        return 0;
    }
}

struct TrialResult
{
    FaultTarget target = FaultTarget::PointerBits;
    FaultOutcome outcome = FaultOutcome::Unexplained;
    std::string bucket;
    std::string detail;
};

TrialResult
runTrial(const FaultCampaignConfig &config, uint64_t trial)
{
    Rng rng(config.seed ^ (trial * 0x9e3779b97f4a7c15ULL + 1));
    FaultTarget target =
        static_cast<FaultTarget>(trial % kNumFaultTargets);

    TrialResult result;
    result.target = target;

    auto world = makeWorld(target, rng);
    TaggedPtr clean_ptr = world->alloc.ptr;

    // Pointer flips model a stray write through the pointer value, so
    // the probe is a one-byte dereference at wherever the corrupted
    // pointer lands; metadata flips leave the pointer alone, so the
    // probe covers the object's full ground-truth extent.
    uint64_t base_probe_size =
        target == FaultTarget::PointerBits ? 1 : world->objSize;

    ProbeSet clean = probeWorld(*world, clean_ptr, base_probe_size);
    fatal_if(clean.base.trapped || (clean.hasSub && clean.sub.trapped),
             "fault campaign: clean probe trapped (trial %llu)",
             static_cast<unsigned long long>(trial));

    uint64_t bit = 0;
    TaggedPtr probe_target = clean_ptr;
    switch (target) {
      case FaultTarget::PointerBits:
        bit = rng.below(64);
        probe_target = TaggedPtr(clean_ptr.raw() ^ (1ULL << bit));
        break;
      case FaultTarget::LocalMeta:
        bit = rng.below(8 * IfpConfig::localMetadataBytes);
        flipBit(world->mem, recordAddr(*world, target), bit);
        break;
      case FaultTarget::SubheapMeta:
        bit = rng.below(8 * IfpConfig::subheapMetadataBytes);
        flipBit(world->mem, recordAddr(*world, target), bit);
        break;
      case FaultTarget::GlobalRow:
        bit = rng.below(8 * IfpConfig::globalRowBytes);
        flipBit(world->mem, recordAddr(*world, target), bit);
        break;
      case FaultTarget::LayoutEntry: {
        uint64_t entries = layoutSubtreeEntries(world->structType);
        uint64_t entry = rng.below(entries);
        bit = rng.below(8 * IfpConfig::layoutEntryBytes);
        flipBit(world->mem,
                world->runtime->layoutAddr(world->layoutId) +
                    entry * IfpConfig::layoutEntryBytes,
                bit);
        break;
      }
    }

    ProbeSet corrupt = probeWorld(*world, probe_target, base_probe_size);

    if (corrupt == clean) {
        result.outcome = FaultOutcome::Benign;
        return result;
    }
    if (corrupt.detectedVersus(clean)) {
        result.outcome = FaultOutcome::Detected;
        return result;
    }

    // Undetected and semantically visible: explain it or fail.
    switch (target) {
      case FaultTarget::PointerBits:
        if (bit >= 48 && bit <= 61) {
            // Scheme / meta12 bits carry no MAC; integrity relies on
            // the flipped value failing the *metadata* checks, and a
            // flip that reaches other valid metadata (or turns the
            // pointer legacy) is by-design undetectable (§4.1).
            result.outcome = FaultOutcome::ExplainedUndetected;
            result.bucket = "tag_bits_unmaced";
            return result;
        }
        if (bit < 48 && corrupt.base.boundsValid &&
            corrupt.base.lower <= corrupt.base.addr &&
            corrupt.base.addr < corrupt.base.upper) {
            // The flipped address still lands inside a valid extent;
            // a spatial defense cannot distinguish it from a legal
            // pointer to that location.
            result.outcome = FaultOutcome::ExplainedUndetected;
            result.bucket = "addr_flip_aliases_extent";
            return result;
        }
        break;
      case FaultTarget::GlobalRow:
        // Global-table rows are the integrity *root* (trusted like
        // page tables) and carry no MAC; §4.1 protects them by memory
        // isolation, which the campaign deliberately bypasses.
        result.outcome = FaultOutcome::ExplainedUndetected;
        result.bucket = "global_row_unmaced";
        return result;
      case FaultTarget::LayoutEntry:
        // Layout tables are compiler-emitted read-only data without a
        // MAC (§3.4): corruption shifts narrowing, it cannot forge
        // object bounds.
        result.outcome = FaultOutcome::ExplainedUndetected;
        result.bucket = "layout_table_unmaced";
        return result;
      case FaultTarget::LocalMeta:
      case FaultTarget::SubheapMeta:
        // Every semantically visible metadata flip must trip the
        // magic/MAC check; fall through to unexplained.
        break;
    }

    result.outcome = FaultOutcome::Unexplained;
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "trial %llu target=%s bit=%llu clean_addr=%llx "
                  "corrupt_addr=%llx corrupt_trap=%d",
                  static_cast<unsigned long long>(trial),
                  toString(target),
                  static_cast<unsigned long long>(bit),
                  static_cast<unsigned long long>(clean.base.addr),
                  static_cast<unsigned long long>(corrupt.base.addr),
                  corrupt.base.trapped ? 1 : 0);
    result.detail = buf;
    return result;
}

} // namespace

void
FaultCampaignResult::addToStats(StatGroup &group) const
{
    group.counter("trials").set(trials);
    group.counter("detected").set(detected);
    group.counter("benign").set(benign);
    group.counter("explained_undetected").set(explainedUndetected);
    group.counter("unexplained").set(unexplained);
    for (const auto &[name, count] : buckets)
        group.counter("bucket_" + name).set(count);
    for (const auto &[name, counts] : perTarget) {
        group.counter("target_" + name + "_detected").set(counts[0]);
        group.counter("target_" + name + "_benign").set(counts[1]);
        group.counter("target_" + name + "_explained").set(counts[2]);
        group.counter("target_" + name + "_unexplained").set(counts[3]);
    }
}

FaultCampaignResult
runFaultCampaign(const FaultCampaignConfig &config)
{
    std::vector<TrialResult> results(config.trials);
    ThreadPool pool(config.jobs);
    pool.forEach(config.trials, [&](size_t trial) {
        results[trial] = runTrial(config, trial);
    });

    FaultCampaignResult campaign;
    campaign.trials = config.trials;
    for (const TrialResult &r : results) {
        auto &per = campaign.perTarget[toString(r.target)];
        switch (r.outcome) {
          case FaultOutcome::Detected:
            campaign.detected++;
            per[0]++;
            break;
          case FaultOutcome::Benign:
            campaign.benign++;
            per[1]++;
            break;
          case FaultOutcome::ExplainedUndetected:
            campaign.explainedUndetected++;
            campaign.buckets[r.bucket]++;
            per[2]++;
            break;
          case FaultOutcome::Unexplained:
            campaign.unexplained++;
            per[3]++;
            if (campaign.unexplainedDetails.size() < 16)
                campaign.unexplainedDetails.push_back(r.detail);
            break;
        }
    }
    return campaign;
}

} // namespace oracle
} // namespace infat
