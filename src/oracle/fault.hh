/**
 * @file
 * Metadata fault-injection campaign.
 *
 * The paper's integrity story (§3.5, §4.1): tagged-pointer corruption
 * is caught by the poison bits and by the metadata indirection (a bad
 * granule offset / control-register index / table row lands on memory
 * that fails the magic-number and MAC checks), and object metadata
 * corruption is caught by the 48-bit SipHash MAC over the metadata
 * words. The campaign exercises that story directly: it builds a small
 * isolated world (runtime + promote engine, no interpreter), allocates
 * one object per trial, flips a single seeded-random bit in a tagged
 * pointer, a metadata record, a global-table row, or a layout-table
 * entry, and re-runs promote + bounds probes to see whether the
 * corruption is detected, semantically inert, or — for the bits the
 * design deliberately leaves uncovered — *explainably* undetected.
 *
 * Every undetected, non-benign corruption must fall into a named
 * explanation bucket (e.g. tag bits carry no MAC; an address flip that
 * stays inside a valid extent is indistinguishable from a legal
 * pointer); anything else is counted as `unexplained` and fails the
 * campaign. Trials are deterministic per (seed, trial index) and
 * independent, so they run pool-parallel (support/thread_pool.hh).
 */

#ifndef INFAT_ORACLE_FAULT_HH
#define INFAT_ORACLE_FAULT_HH

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "support/stats.hh"

namespace infat {
namespace oracle {

enum class FaultTarget
{
    /** Flip one of the 64 bits of the tagged pointer itself. */
    PointerBits,
    /** Flip a bit in a local-offset 16-byte metadata record. */
    LocalMeta,
    /** Flip a bit in a subheap 32-byte block metadata record. */
    SubheapMeta,
    /** Flip a bit in a 16-byte global-table row. */
    GlobalRow,
    /** Flip a bit in a materialized layout-table entry. */
    LayoutEntry,
};

constexpr unsigned kNumFaultTargets = 5;

const char *toString(FaultTarget target);

struct FaultCampaignConfig
{
    /** Total single-bit-flip trials, spread round-robin over targets. */
    uint64_t trials = 1200;
    uint64_t seed = 0x1FA7'F417ULL;
    /** Worker threads (0 = run serially on the caller). */
    unsigned jobs = 0;
};

/** How one trial ended. */
enum class FaultOutcome
{
    /** Promote/poison/bounds machinery caught the corruption. */
    Detected,
    /** The flipped bit is semantically inert (reserved/ignored). */
    Benign,
    /** Undetected but in a named, by-design-uncovered bucket. */
    ExplainedUndetected,
    /** Undetected, semantically visible, and not explainable: a bug. */
    Unexplained,
};

struct FaultCampaignResult
{
    uint64_t trials = 0;
    uint64_t detected = 0;
    uint64_t benign = 0;
    uint64_t explainedUndetected = 0;
    uint64_t unexplained = 0;

    /** Explanation bucket -> count (ExplainedUndetected trials). */
    std::map<std::string, uint64_t> buckets;
    /** Per-target counts: [detected, benign, explained, unexplained]. */
    std::map<std::string, std::array<uint64_t, 4>> perTarget;
    /** Details of the first few unexplained trials. */
    std::vector<std::string> unexplainedDetails;

    bool
    pass() const
    {
        return unexplained == 0 && detected > 0 &&
               perTarget.size() == kNumFaultTargets;
    }

    /** Record campaign counters into @p group for --stats-json. */
    void addToStats(StatGroup &group) const;
};

FaultCampaignResult runFaultCampaign(const FaultCampaignConfig &config);

} // namespace oracle
} // namespace infat

#endif // INFAT_ORACLE_FAULT_HH
