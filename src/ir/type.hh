/**
 * @file
 * The IR type system.
 *
 * Workloads are written against a small typed IR (DESIGN.md §2). Types
 * carry C-like layout (size, alignment, field offsets) because the
 * layout-table generator and the instrumentation pass need exactly the
 * information a C compiler's record layout provides.
 *
 * Types are interned in a TypeContext and referenced by pointer;
 * equality is pointer equality. Struct types may be created opaque and
 * have their body set later so recursive types (list nodes, tree nodes)
 * can be expressed.
 */

#ifndef INFAT_IR_TYPE_HH
#define INFAT_IR_TYPE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace infat {
namespace ir {

enum class TypeKind : uint8_t
{
    Void,
    Int,   // i8 / i16 / i32 / i64
    F64,
    Ptr,   // typed or opaque (void *) pointer
    Struct,
    Array,
};

class Type
{
  public:
    virtual ~Type() = default;

    TypeKind kind() const { return kind_; }

    bool isVoid() const { return kind_ == TypeKind::Void; }
    bool isInt() const { return kind_ == TypeKind::Int; }
    bool isF64() const { return kind_ == TypeKind::F64; }
    bool isPtr() const { return kind_ == TypeKind::Ptr; }
    bool isStruct() const { return kind_ == TypeKind::Struct; }
    bool isArray() const { return kind_ == TypeKind::Array; }
    bool isAggregate() const { return isStruct() || isArray(); }

    /** Size in bytes, including struct tail padding. */
    virtual uint64_t size() const = 0;
    virtual uint64_t align() const = 0;

    virtual std::string toString() const = 0;

  protected:
    explicit Type(TypeKind kind) : kind_(kind) {}

  private:
    TypeKind kind_;
};

class VoidType : public Type
{
  public:
    VoidType() : Type(TypeKind::Void) {}
    uint64_t size() const override { return 0; }
    uint64_t align() const override { return 1; }
    std::string toString() const override { return "void"; }
};

class IntType : public Type
{
  public:
    explicit IntType(unsigned bits) : Type(TypeKind::Int), bits_(bits) {}

    unsigned bits() const { return bits_; }
    uint64_t size() const override { return bits_ / 8; }
    uint64_t align() const override { return bits_ / 8; }
    std::string toString() const override;

  private:
    unsigned bits_;
};

class F64Type : public Type
{
  public:
    F64Type() : Type(TypeKind::F64) {}
    uint64_t size() const override { return 8; }
    uint64_t align() const override { return 8; }
    std::string toString() const override { return "f64"; }
};

class PtrType : public Type
{
  public:
    /** @param pointee may be null for an opaque (void *) pointer. */
    explicit PtrType(const Type *pointee)
        : Type(TypeKind::Ptr), pointee_(pointee)
    {
    }

    const Type *pointee() const { return pointee_; }
    bool isOpaque() const { return pointee_ == nullptr; }

    uint64_t size() const override { return 8; }
    uint64_t align() const override { return 8; }
    std::string toString() const override;

  private:
    const Type *pointee_;
};

class StructType : public Type
{
  public:
    explicit StructType(std::string name)
        : Type(TypeKind::Struct), name_(std::move(name))
    {
    }

    /** Set the field list; computes C-like offsets and padding. */
    void setBody(std::vector<const Type *> fields);

    bool isOpaqueStruct() const { return !hasBody_; }
    const std::string &name() const { return name_; }

    size_t numFields() const { return fields_.size(); }
    const Type *field(size_t i) const { return fields_.at(i); }
    uint64_t fieldOffset(size_t i) const { return offsets_.at(i); }

    uint64_t size() const override;
    uint64_t align() const override;
    std::string toString() const override { return "%" + name_; }

  private:
    std::string name_;
    bool hasBody_ = false;
    std::vector<const Type *> fields_;
    std::vector<uint64_t> offsets_;
    uint64_t size_ = 0;
    uint64_t align_ = 1;
};

class ArrayType : public Type
{
  public:
    ArrayType(const Type *elem, uint64_t count)
        : Type(TypeKind::Array), elem_(elem), count_(count)
    {
    }

    const Type *elem() const { return elem_; }
    uint64_t count() const { return count_; }

    uint64_t size() const override { return elem_->size() * count_; }
    uint64_t align() const override { return elem_->align(); }
    std::string toString() const override;

  private:
    const Type *elem_;
    uint64_t count_;
};

/** Owns and interns all types of one module. */
class TypeContext
{
  public:
    TypeContext();

    const VoidType *voidTy() const { return &voidTy_; }
    const IntType *i8() const { return &i8_; }
    const IntType *i16() const { return &i16_; }
    const IntType *i32() const { return &i32_; }
    const IntType *i64() const { return &i64_; }
    const F64Type *f64() const { return &f64_; }

    const IntType *intTy(unsigned bits) const;

    const PtrType *ptr(const Type *pointee);
    const PtrType *opaquePtr() { return ptr(nullptr); }

    /** Create a named struct; body may be set later (recursion). */
    StructType *createStruct(const std::string &name);
    StructType *
    createStruct(const std::string &name,
                 std::vector<const Type *> fields)
    {
        StructType *s = createStruct(name);
        s->setBody(std::move(fields));
        return s;
    }

    const ArrayType *array(const Type *elem, uint64_t count);

    /** Find a struct by name; null when absent. */
    StructType *structByName(const std::string &name) const;

  private:
    VoidType voidTy_;
    IntType i8_{8}, i16_{16}, i32_{32}, i64_{64};
    F64Type f64_;
    std::vector<std::unique_ptr<PtrType>> ptrs_;
    std::vector<std::unique_ptr<StructType>> structs_;
    std::vector<std::unique_ptr<ArrayType>> arrays_;
};

} // namespace ir
} // namespace infat

#endif // INFAT_IR_TYPE_HH
