#include "ir/type.hh"

#include "support/bitops.hh"
#include "support/logging.hh"

namespace infat {
namespace ir {

std::string
IntType::toString() const
{
    return strfmt("i%u", bits_);
}

std::string
PtrType::toString() const
{
    return pointee_ ? pointee_->toString() + "*" : "void*";
}

void
StructType::setBody(std::vector<const Type *> fields)
{
    panic_if(hasBody_, "struct %s body set twice", name_.c_str());
    fields_ = std::move(fields);
    offsets_.clear();
    uint64_t offset = 0;
    align_ = 1;
    for (const Type *field : fields_) {
        panic_if(field->isVoid(), "void struct field");
        offset = roundUp(offset, field->align());
        offsets_.push_back(offset);
        offset += field->size();
        if (field->align() > align_)
            align_ = field->align();
    }
    size_ = roundUp(offset, align_);
    if (size_ == 0)
        size_ = align_; // empty structs still occupy storage
    hasBody_ = true;
}

uint64_t
StructType::size() const
{
    panic_if(!hasBody_, "size of opaque struct %s", name_.c_str());
    return size_;
}

uint64_t
StructType::align() const
{
    panic_if(!hasBody_, "align of opaque struct %s", name_.c_str());
    return align_;
}

std::string
ArrayType::toString() const
{
    return strfmt("[%llu x %s]", static_cast<unsigned long long>(count_),
                  elem_->toString().c_str());
}

TypeContext::TypeContext() = default;

const IntType *
TypeContext::intTy(unsigned bits) const
{
    switch (bits) {
      case 8:
        return &i8_;
      case 16:
        return &i16_;
      case 32:
        return &i32_;
      case 64:
        return &i64_;
      default:
        panic("unsupported integer width %u", bits);
    }
}

const PtrType *
TypeContext::ptr(const Type *pointee)
{
    for (const auto &p : ptrs_) {
        if (p->pointee() == pointee)
            return p.get();
    }
    ptrs_.push_back(std::make_unique<PtrType>(pointee));
    return ptrs_.back().get();
}

StructType *
TypeContext::createStruct(const std::string &name)
{
    panic_if(structByName(name) != nullptr, "duplicate struct %s",
             name.c_str());
    structs_.push_back(std::make_unique<StructType>(name));
    return structs_.back().get();
}

const ArrayType *
TypeContext::array(const Type *elem, uint64_t count)
{
    for (const auto &a : arrays_) {
        if (a->elem() == elem && a->count() == count)
            return a.get();
    }
    arrays_.push_back(std::make_unique<ArrayType>(elem, count));
    return arrays_.back().get();
}

StructType *
TypeContext::structByName(const std::string &name) const
{
    for (const auto &s : structs_) {
        if (s->name() == name)
            return s.get();
    }
    return nullptr;
}

} // namespace ir
} // namespace infat
