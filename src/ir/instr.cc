#include "ir/instr.hh"

#include <bit>

namespace infat {
namespace ir {

Operand
Operand::immF64(double v)
{
    return {Kind::ImmF64, std::bit_cast<uint64_t>(v)};
}

const char *
toString(Opcode op)
{
    switch (op) {
      case Opcode::Mov: return "mov";
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::Mul: return "mul";
      case Opcode::SDiv: return "sdiv";
      case Opcode::UDiv: return "udiv";
      case Opcode::SRem: return "srem";
      case Opcode::URem: return "urem";
      case Opcode::And: return "and";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::Shl: return "shl";
      case Opcode::LShr: return "lshr";
      case Opcode::AShr: return "ashr";
      case Opcode::ICmp: return "icmp";
      case Opcode::FAdd: return "fadd";
      case Opcode::FSub: return "fsub";
      case Opcode::FMul: return "fmul";
      case Opcode::FDiv: return "fdiv";
      case Opcode::FNeg: return "fneg";
      case Opcode::FCmp: return "fcmp";
      case Opcode::SIToFP: return "sitofp";
      case Opcode::FPToSI: return "fptosi";
      case Opcode::SExt: return "sext";
      case Opcode::ZExt: return "zext";
      case Opcode::Trunc: return "trunc";
      case Opcode::Select: return "select";
      case Opcode::Load: return "load";
      case Opcode::Store: return "store";
      case Opcode::Alloca: return "alloca";
      case Opcode::GepField: return "gep.field";
      case Opcode::GepIndex: return "gep.index";
      case Opcode::Jmp: return "jmp";
      case Opcode::Br: return "br";
      case Opcode::Call: return "call";
      case Opcode::CallPtr: return "call.ptr";
      case Opcode::Ret: return "ret";
      case Opcode::Trap: return "trap";
      case Opcode::MallocTyped: return "malloc.typed";
      case Opcode::FreePtr: return "free";
      case Opcode::Promote: return "ifp.promote";
      case Opcode::IfpAdd: return "ifp.add";
      case Opcode::IfpIdx: return "ifp.idx";
      case Opcode::IfpBnd: return "ifp.bnd";
      case Opcode::IfpChk: return "ifp.chk";
      case Opcode::RegisterObj: return "ifp.register";
      case Opcode::DeregisterObj: return "ifp.deregister";
      case Opcode::IfpMallocTyped: return "ifp.malloc";
      case Opcode::IfpFree: return "ifp.free";
    }
    return "?";
}

bool
Instr::isTerminator() const
{
    switch (op) {
      case Opcode::Jmp:
      case Opcode::Br:
      case Opcode::Ret:
      case Opcode::Trap:
        return true;
      default:
        return false;
    }
}

bool
Instr::writesDst() const
{
    switch (op) {
      case Opcode::Store:
      case Opcode::Jmp:
      case Opcode::Br:
      case Opcode::Ret:
      case Opcode::Trap:
      case Opcode::FreePtr:
      case Opcode::DeregisterObj:
      case Opcode::IfpFree:
        return false;
      case Opcode::Call:
      case Opcode::CallPtr:
        return dst != noReg;
      default:
        return true;
    }
}

bool
Instr::isIfpOp() const
{
    switch (op) {
      case Opcode::Promote:
      case Opcode::IfpAdd:
      case Opcode::IfpIdx:
      case Opcode::IfpBnd:
      case Opcode::IfpChk:
      case Opcode::RegisterObj:
      case Opcode::DeregisterObj:
      case Opcode::IfpMallocTyped:
      case Opcode::IfpFree:
        return true;
      default:
        return false;
    }
}

} // namespace ir
} // namespace infat
