/**
 * @file
 * A module: types, globals, and functions of one guest program.
 */

#ifndef INFAT_IR_MODULE_HH
#define INFAT_IR_MODULE_HH

#include <memory>
#include <string>
#include <vector>

#include "ir/function.hh"
#include "ir/type.hh"

namespace infat {
namespace ir {

struct Global
{
    GlobalId id = 0;
    std::string name;
    const Type *type = nullptr;
    /** Whether the global needs In-Fat Pointer metadata (its address
     *  escapes); decided by the instrumentation pass. */
    bool instrumented = false;
    /** Optional initial bytes; zero-filled when shorter than the type. */
    std::vector<uint8_t> init;
};

class Module
{
  public:
    Module() = default;
    Module(const Module &) = delete;
    Module &operator=(const Module &) = delete;

    TypeContext &types() { return types_; }
    const TypeContext &types() const { return types_; }

    Function *createFunction(const std::string &name,
                             std::vector<const Type *> param_types,
                             const Type *ret_type);

    /**
     * Declare a native (host-implemented) function, e.g. the legacy
     * libc model. Native functions have no blocks.
     */
    Function *declareNative(const std::string &name,
                            std::vector<const Type *> param_types,
                            const Type *ret_type);

    Function *functionByName(const std::string &name) const;
    Function *function(FuncId id) const { return funcs_.at(id).get(); }
    size_t numFunctions() const { return funcs_.size(); }

    GlobalId addGlobal(const std::string &name, const Type *type,
                       std::vector<uint8_t> init = {});
    Global &global(GlobalId id) { return globals_.at(id); }
    const Global &global(GlobalId id) const { return globals_.at(id); }
    size_t numGlobals() const { return globals_.size(); }
    std::vector<Global> &globals() { return globals_; }
    const std::vector<Global> &globals() const { return globals_; }

  private:
    TypeContext types_;
    std::vector<std::unique_ptr<Function>> funcs_;
    std::vector<Global> globals_;
};

} // namespace ir
} // namespace infat

#endif // INFAT_IR_MODULE_HH
