/**
 * @file
 * Functions and basic blocks.
 */

#ifndef INFAT_IR_FUNCTION_HH
#define INFAT_IR_FUNCTION_HH

#include <string>
#include <vector>

#include "ir/instr.hh"

namespace infat {
namespace ir {

struct BasicBlock
{
    std::string name;
    std::vector<Instr> instrs;

    bool
    terminated() const
    {
        return !instrs.empty() && instrs.back().isTerminator();
    }

    /** The block's terminator; only valid on terminated blocks. */
    const Instr &terminator() const { return instrs.back(); }
};

class Function
{
  public:
    Function(FuncId id, std::string name,
             std::vector<const Type *> param_types, const Type *ret_type)
        : id_(id), name_(std::move(name)),
          paramTypes_(std::move(param_types)), retType_(ret_type)
    {
        // Registers 0..N-1 are the incoming arguments.
        numRegs_ = static_cast<Reg>(paramTypes_.size());
    }

    FuncId id() const { return id_; }
    const std::string &name() const { return name_; }
    const Type *retType() const { return retType_; }
    size_t numParams() const { return paramTypes_.size(); }
    const Type *paramType(size_t i) const { return paramTypes_.at(i); }

    /** Native functions are host-implemented (the legacy libc model). */
    bool isNative() const { return native_; }
    void setNative(bool native) { native_ = native; }

    /**
     * Uninstrumented functions model code compiled without In-Fat
     * Pointer support: the instrumentation pass skips them, and calls
     * into them clear argument bounds.
     */
    bool isInstrumented() const { return instrumented_; }
    void setInstrumented(bool on) { instrumented_ = on; }

    Reg
    newReg()
    {
        return numRegs_++;
    }
    Reg numRegs() const { return numRegs_; }

    BlockId
    addBlock(std::string name)
    {
        blocks_.push_back({std::move(name), {}});
        return static_cast<BlockId>(blocks_.size() - 1);
    }

    BasicBlock &block(BlockId id) { return blocks_.at(id); }
    const BasicBlock &block(BlockId id) const { return blocks_.at(id); }
    size_t numBlocks() const { return blocks_.size(); }
    std::vector<BasicBlock> &blocks() { return blocks_; }
    const std::vector<BasicBlock> &blocks() const { return blocks_; }

    /**
     * Number of bounds registers the callee saves/restores across its
     * body (ldbnd/stbnd accounting, paper §4.1.2). Computed by the
     * instrumentation pass.
     */
    unsigned savedBoundsRegs() const { return savedBoundsRegs_; }
    void setSavedBoundsRegs(unsigned n) { savedBoundsRegs_ = n; }

  private:
    FuncId id_;
    std::string name_;
    std::vector<const Type *> paramTypes_;
    const Type *retType_;
    bool native_ = false;
    bool instrumented_ = true;
    Reg numRegs_ = 0;
    unsigned savedBoundsRegs_ = 0;
    std::vector<BasicBlock> blocks_;
};

} // namespace ir
} // namespace infat

#endif // INFAT_IR_FUNCTION_HH
