/**
 * @file
 * Human-readable rendering of modules and functions (debug aid).
 */

#ifndef INFAT_IR_PRINTER_HH
#define INFAT_IR_PRINTER_HH

#include <string>

#include "ir/module.hh"

namespace infat {
namespace ir {

std::string print(const Instr &instr, const Module &module);
std::string print(const Function &func, const Module &module);
std::string print(const Module &module);

} // namespace ir
} // namespace infat

#endif // INFAT_IR_PRINTER_HH
