#include "ir/builder.hh"

#include "support/logging.hh"

namespace infat {
namespace ir {

FunctionBuilder::FunctionBuilder(Module &module, Function *func)
    : module_(module), func_(func)
{
    if (func_->numBlocks() == 0)
        func_->addBlock("entry");
    cur_ = 0;
}

FunctionBuilder::FunctionBuilder(Module &module, const std::string &name,
                                 std::vector<const Type *> param_types,
                                 const Type *ret_type)
    : FunctionBuilder(module, module.createFunction(
                                  name, std::move(param_types), ret_type))
{
}

Instr &
FunctionBuilder::emit(Instr instr)
{
    BasicBlock &block = func_->block(cur_);
    panic_if(block.terminated(),
             "emitting into terminated block %s of %s",
             block.name.c_str(), func_->name().c_str());
    block.instrs.push_back(std::move(instr));
    return block.instrs.back();
}

Value
FunctionBuilder::newValue(const Type *type)
{
    return {func_->newReg(), type};
}

const Type *
FunctionBuilder::pointeeOf(Value ptr, const char *what) const
{
    panic_if(!ptr.type || !ptr.type->isPtr(), "%s on non-pointer in %s",
             what, func_->name().c_str());
    const Type *pointee = static_cast<const PtrType *>(ptr.type)->pointee();
    panic_if(pointee == nullptr, "%s through opaque pointer in %s", what,
             func_->name().c_str());
    return pointee;
}

Value
FunctionBuilder::arg(unsigned i)
{
    panic_if(i >= func_->numParams(), "arg %u out of range", i);
    return {static_cast<Reg>(i), func_->paramType(i)};
}

Value
FunctionBuilder::iconst(int64_t v)
{
    Value dst = newValue(types().i64());
    Instr instr;
    instr.op = Opcode::Mov;
    instr.type = dst.type;
    instr.dst = dst.reg;
    instr.a = Operand::immInt(static_cast<uint64_t>(v));
    emit(instr);
    return dst;
}

Value
FunctionBuilder::iconst32(int64_t v)
{
    Value dst = newValue(types().i32());
    Instr instr;
    instr.op = Opcode::Mov;
    instr.type = dst.type;
    instr.dst = dst.reg;
    instr.a = Operand::immInt(static_cast<uint64_t>(v) & 0xffffffffu);
    emit(instr);
    return dst;
}

Value
FunctionBuilder::fconst(double v)
{
    Value dst = newValue(types().f64());
    Instr instr;
    instr.op = Opcode::Mov;
    instr.type = dst.type;
    instr.dst = dst.reg;
    instr.a = Operand::immF64(v);
    emit(instr);
    return dst;
}

Value
FunctionBuilder::nullPtr(const Type *pointee)
{
    Value dst = newValue(types().ptr(pointee));
    Instr instr;
    instr.op = Opcode::Mov;
    instr.type = dst.type;
    instr.dst = dst.reg;
    instr.a = Operand::immInt(0);
    emit(instr);
    return dst;
}

Value
FunctionBuilder::var(const Type *type)
{
    return newValue(type);
}

void
FunctionBuilder::assign(Value dest, Value src)
{
    Instr instr;
    instr.op = Opcode::Mov;
    instr.type = dest.type;
    instr.dst = dest.reg;
    instr.a = Operand::reg(src.reg);
    emit(instr);
}

namespace {

Instr
binInstr(Opcode op, const Type *type, Reg dst, Value a, Value b)
{
    Instr instr;
    instr.op = op;
    instr.type = type;
    instr.dst = dst;
    instr.a = Operand::reg(a.reg);
    instr.b = Operand::reg(b.reg);
    return instr;
}

} // namespace

#define BIN_OP(method, opcode)                                              \
    Value FunctionBuilder::method(Value a, Value b)                         \
    {                                                                       \
        Value dst = newValue(a.type);                                       \
        emit(binInstr(Opcode::opcode, a.type, dst.reg, a, b));              \
        return dst;                                                         \
    }

BIN_OP(add, Add)
BIN_OP(sub, Sub)
BIN_OP(mul, Mul)
BIN_OP(sdiv, SDiv)
BIN_OP(udiv, UDiv)
BIN_OP(srem, SRem)
BIN_OP(urem, URem)
BIN_OP(and_, And)
BIN_OP(or_, Or)
BIN_OP(xor_, Xor)
BIN_OP(shl, Shl)
BIN_OP(lshr, LShr)
BIN_OP(ashr, AShr)
BIN_OP(fadd, FAdd)
BIN_OP(fsub, FSub)
BIN_OP(fmul, FMul)
BIN_OP(fdiv, FDiv)

#undef BIN_OP

Value
FunctionBuilder::addImm(Value a, int64_t imm)
{
    Value dst = newValue(a.type);
    Instr instr;
    instr.op = Opcode::Add;
    instr.type = a.type;
    instr.dst = dst.reg;
    instr.a = Operand::reg(a.reg);
    instr.b = Operand::immInt(static_cast<uint64_t>(imm));
    emit(instr);
    return dst;
}

Value
FunctionBuilder::mulImm(Value a, int64_t imm)
{
    Value dst = newValue(a.type);
    Instr instr;
    instr.op = Opcode::Mul;
    instr.type = a.type;
    instr.dst = dst.reg;
    instr.a = Operand::reg(a.reg);
    instr.b = Operand::immInt(static_cast<uint64_t>(imm));
    emit(instr);
    return dst;
}

Value
FunctionBuilder::icmp(ICmpPred pred, Value a, Value b)
{
    Value dst = newValue(types().i64());
    Instr instr = binInstr(Opcode::ICmp, dst.type, dst.reg, a, b);
    instr.icmp = pred;
    emit(instr);
    return dst;
}

Value
FunctionBuilder::fneg(Value a)
{
    Value dst = newValue(a.type);
    Instr instr;
    instr.op = Opcode::FNeg;
    instr.type = a.type;
    instr.dst = dst.reg;
    instr.a = Operand::reg(a.reg);
    emit(instr);
    return dst;
}

Value
FunctionBuilder::fcmp(FCmpPred pred, Value a, Value b)
{
    Value dst = newValue(types().i64());
    Instr instr = binInstr(Opcode::FCmp, dst.type, dst.reg, a, b);
    instr.fcmp = pred;
    emit(instr);
    return dst;
}

Value
FunctionBuilder::sitofp(Value a)
{
    Value dst = newValue(types().f64());
    Instr instr;
    instr.op = Opcode::SIToFP;
    instr.type = dst.type;
    instr.dst = dst.reg;
    instr.a = Operand::reg(a.reg);
    emit(instr);
    return dst;
}

Value
FunctionBuilder::fptosi(Value a)
{
    Value dst = newValue(types().i64());
    Instr instr;
    instr.op = Opcode::FPToSI;
    instr.type = dst.type;
    instr.dst = dst.reg;
    instr.a = Operand::reg(a.reg);
    emit(instr);
    return dst;
}

namespace {

Instr
convInstr(Opcode op, const Type *to, Reg dst, Value a)
{
    Instr instr;
    instr.op = op;
    instr.type = to;
    instr.dst = dst;
    instr.a = Operand::reg(a.reg);
    return instr;
}

} // namespace

Value
FunctionBuilder::sext(Value a, const Type *to)
{
    Value dst = newValue(to);
    emit(convInstr(Opcode::SExt, to, dst.reg, a));
    return dst;
}

Value
FunctionBuilder::zext(Value a, const Type *to)
{
    Value dst = newValue(to);
    emit(convInstr(Opcode::ZExt, to, dst.reg, a));
    return dst;
}

Value
FunctionBuilder::trunc(Value a, const Type *to)
{
    Value dst = newValue(to);
    emit(convInstr(Opcode::Trunc, to, dst.reg, a));
    return dst;
}

Value
FunctionBuilder::select(Value cond, Value a, Value b)
{
    Value dst = newValue(a.type);
    Instr instr;
    instr.op = Opcode::Select;
    instr.type = a.type;
    instr.dst = dst.reg;
    instr.a = Operand::reg(cond.reg);
    instr.b = Operand::reg(a.reg);
    instr.c = Operand::reg(b.reg);
    emit(instr);
    return dst;
}

Value
FunctionBuilder::load(Value ptr)
{
    const Type *pointee = pointeeOf(ptr, "load");
    Value dst = newValue(pointee);
    Instr instr;
    instr.op = Opcode::Load;
    instr.type = pointee;
    instr.dst = dst.reg;
    instr.a = Operand::reg(ptr.reg);
    emit(instr);
    return dst;
}

void
FunctionBuilder::store(Value value, Value ptr)
{
    const Type *pointee = pointeeOf(ptr, "store");
    Instr instr;
    instr.op = Opcode::Store;
    instr.type = pointee;
    instr.a = Operand::reg(value.reg);
    instr.b = Operand::reg(ptr.reg);
    emit(instr);
}

Value
FunctionBuilder::stackAlloc(const Type *type, uint64_t count)
{
    Value dst = newValue(types().ptr(type));
    Instr instr;
    instr.op = Opcode::Alloca;
    instr.type = type;
    instr.dst = dst.reg;
    instr.imm0 = count;
    // Allocas conventionally live in the entry block; hoist there,
    // before its terminator if it is already closed.
    BasicBlock &entry = func_->block(0);
    if (entry.terminated())
        entry.instrs.insert(entry.instrs.end() - 1, instr);
    else
        entry.instrs.push_back(instr);
    return dst;
}

Value
FunctionBuilder::fieldPtr(Value ptr, unsigned field)
{
    const Type *pointee = pointeeOf(ptr, "fieldPtr");
    panic_if(!pointee->isStruct(), "fieldPtr on non-struct pointer");
    const auto *st = static_cast<const StructType *>(pointee);
    panic_if(field >= st->numFields(), "field %u out of range of %s",
             field, st->name().c_str());
    Value dst = newValue(types().ptr(st->field(field)));
    Instr instr;
    instr.op = Opcode::GepField;
    instr.type = pointee;
    instr.dst = dst.reg;
    instr.a = Operand::reg(ptr.reg);
    instr.imm0 = field;
    emit(instr);
    return dst;
}

Value
FunctionBuilder::elemPtr(Value ptr, Value index)
{
    const Type *pointee = pointeeOf(ptr, "elemPtr");
    const Type *elem = pointee;
    if (pointee->isArray())
        elem = static_cast<const ArrayType *>(pointee)->elem();
    Value dst = newValue(types().ptr(elem));
    Instr instr;
    instr.op = Opcode::GepIndex;
    instr.type = elem;
    instr.dst = dst.reg;
    instr.a = Operand::reg(ptr.reg);
    instr.b = Operand::reg(index.reg);
    emit(instr);
    return dst;
}

Value
FunctionBuilder::elemPtr(Value ptr, int64_t index)
{
    const Type *pointee = pointeeOf(ptr, "elemPtr");
    const Type *elem = pointee;
    if (pointee->isArray())
        elem = static_cast<const ArrayType *>(pointee)->elem();
    Value dst = newValue(types().ptr(elem));
    Instr instr;
    instr.op = Opcode::GepIndex;
    instr.type = elem;
    instr.dst = dst.reg;
    instr.a = Operand::reg(ptr.reg);
    instr.b = Operand::immInt(static_cast<uint64_t>(index));
    emit(instr);
    return dst;
}

Value
FunctionBuilder::loadField(Value ptr, unsigned field)
{
    return load(fieldPtr(ptr, field));
}

void
FunctionBuilder::storeField(Value ptr, unsigned field, Value value)
{
    store(value, fieldPtr(ptr, field));
}

Value
FunctionBuilder::globalAddr(GlobalId id)
{
    const Global &g = module_.global(id);
    Value dst = newValue(types().ptr(g.type));
    Instr instr;
    instr.op = Opcode::Mov;
    instr.type = dst.type;
    instr.dst = dst.reg;
    instr.a = Operand::global(id);
    emit(instr);
    return dst;
}

Value
FunctionBuilder::call(const std::string &callee, std::vector<Value> args)
{
    Function *target = module_.functionByName(callee);
    panic_if(target == nullptr, "call to unknown function %s",
             callee.c_str());
    panic_if(!target->isNative() && args.size() != target->numParams(),
             "call to %s with %zu args, expected %zu", callee.c_str(),
             args.size(), target->numParams());
    Value dst;
    if (!target->retType()->isVoid())
        dst = newValue(target->retType());
    Instr instr;
    instr.op = Opcode::Call;
    instr.type = target->retType();
    instr.dst = dst.valid() ? dst.reg : noReg;
    instr.callee = target->id();
    for (const Value &arg : args)
        instr.args.push_back(Operand::reg(arg.reg));
    emit(instr);
    return dst;
}

Value
FunctionBuilder::callPtr(Value target, const Type *ret_type,
                         std::vector<Value> args)
{
    Value dst;
    if (!ret_type->isVoid())
        dst = newValue(ret_type);
    Instr instr;
    instr.op = Opcode::CallPtr;
    instr.type = ret_type;
    instr.dst = dst.valid() ? dst.reg : noReg;
    instr.a = Operand::reg(target.reg);
    for (const Value &arg : args)
        instr.args.push_back(Operand::reg(arg.reg));
    emit(instr);
    return dst;
}

Value
FunctionBuilder::funcAddr(const std::string &callee)
{
    Function *target = module_.functionByName(callee);
    panic_if(target == nullptr, "funcAddr of unknown function %s",
             callee.c_str());
    Value dst = newValue(types().i64());
    Instr instr;
    instr.op = Opcode::Mov;
    instr.type = dst.type;
    instr.dst = dst.reg;
    instr.a = Operand::funcAddr(target->id());
    emit(instr);
    return dst;
}

Value
FunctionBuilder::mallocTyped(const Type *type, Value count)
{
    Value dst = newValue(types().ptr(type));
    Instr instr;
    instr.op = Opcode::MallocTyped;
    instr.type = type;
    instr.dst = dst.reg;
    instr.a = Operand::reg(count.reg);
    emit(instr);
    return dst;
}

Value
FunctionBuilder::mallocTyped(const Type *type)
{
    Value dst = newValue(types().ptr(type));
    Instr instr;
    instr.op = Opcode::MallocTyped;
    instr.type = type;
    instr.dst = dst.reg;
    instr.a = Operand::immInt(1);
    emit(instr);
    return dst;
}

void
FunctionBuilder::freePtr(Value ptr)
{
    Instr instr;
    instr.op = Opcode::FreePtr;
    instr.a = Operand::reg(ptr.reg);
    emit(instr);
}

BlockId
FunctionBuilder::newBlock(const std::string &name)
{
    return func_->addBlock(name);
}

void
FunctionBuilder::setBlock(BlockId block)
{
    cur_ = block;
}

void
FunctionBuilder::br(Value cond, BlockId if_true, BlockId if_false)
{
    Instr instr;
    instr.op = Opcode::Br;
    instr.a = Operand::reg(cond.reg);
    instr.target0 = if_true;
    instr.target1 = if_false;
    emit(instr);
}

void
FunctionBuilder::jmp(BlockId target)
{
    Instr instr;
    instr.op = Opcode::Jmp;
    instr.target0 = target;
    emit(instr);
}

void
FunctionBuilder::ret(Value value)
{
    Instr instr;
    instr.op = Opcode::Ret;
    instr.type = value.type;
    instr.a = Operand::reg(value.reg);
    emit(instr);
}

void
FunctionBuilder::retVoid()
{
    Instr instr;
    instr.op = Opcode::Ret;
    emit(instr);
}

void
FunctionBuilder::trap(uint64_t code)
{
    Instr instr;
    instr.op = Opcode::Trap;
    instr.imm0 = code;
    emit(instr);
}

Value
FunctionBuilder::ptrCast(Value ptr, const Type *pointee)
{
    // Pointer casts are free at runtime; they only retype the handle.
    return {ptr.reg, types().ptr(pointee)};
}

Value
FunctionBuilder::opaqueCast(Value ptr)
{
    return {ptr.reg, types().opaquePtr()};
}

} // namespace ir
} // namespace infat
