#include "ir/module.hh"

#include "support/logging.hh"

namespace infat {
namespace ir {

Function *
Module::createFunction(const std::string &name,
                       std::vector<const Type *> param_types,
                       const Type *ret_type)
{
    panic_if(functionByName(name) != nullptr, "duplicate function %s",
             name.c_str());
    auto id = static_cast<FuncId>(funcs_.size());
    funcs_.push_back(std::make_unique<Function>(
        id, name, std::move(param_types), ret_type));
    return funcs_.back().get();
}

Function *
Module::declareNative(const std::string &name,
                      std::vector<const Type *> param_types,
                      const Type *ret_type)
{
    Function *f = createFunction(name, std::move(param_types), ret_type);
    f->setNative(true);
    f->setInstrumented(false);
    return f;
}

Function *
Module::functionByName(const std::string &name) const
{
    for (const auto &f : funcs_) {
        if (f->name() == name)
            return f.get();
    }
    return nullptr;
}

GlobalId
Module::addGlobal(const std::string &name, const Type *type,
                  std::vector<uint8_t> init)
{
    auto id = static_cast<GlobalId>(globals_.size());
    globals_.push_back({id, name, type, false, std::move(init)});
    return id;
}

} // namespace ir
} // namespace infat
