/**
 * @file
 * Structural well-formedness checks for modules.
 *
 * Catches builder and instrumentation bugs before the VM runs a module:
 * unterminated blocks, branch targets out of range, register ids out of
 * range, call arity mismatches, allocas outside the entry block, and
 * type mismatches on memory operations.
 */

#ifndef INFAT_IR_VERIFIER_HH
#define INFAT_IR_VERIFIER_HH

#include <string>
#include <vector>

#include "ir/module.hh"

namespace infat {
namespace ir {

/** Returns human-readable problems; empty = module is well-formed. */
std::vector<std::string> verify(const Module &module);

/** Verify and fatal() on the first problem (harness entry point). */
void verifyOrDie(const Module &module);

} // namespace ir
} // namespace infat

#endif // INFAT_IR_VERIFIER_HH
