/**
 * @file
 * Fluent builder for writing IR functions in C++.
 *
 * The 18 evaluation workloads and the Juliet suite are all written
 * against this API. A Value is a typed handle to a virtual register;
 * because the IR is non-SSA, var()/assign() give mutable variables for
 * loop counters and accumulators without any phi machinery.
 */

#ifndef INFAT_IR_BUILDER_HH
#define INFAT_IR_BUILDER_HH

#include <string>
#include <vector>

#include "ir/module.hh"

namespace infat {
namespace ir {

struct Value
{
    Reg reg = noReg;
    const Type *type = nullptr;

    bool valid() const { return reg != noReg; }
};

class FunctionBuilder
{
  public:
    FunctionBuilder(Module &module, Function *func);

    /** Create a function and position at its entry block. */
    FunctionBuilder(Module &module, const std::string &name,
                    std::vector<const Type *> param_types,
                    const Type *ret_type);

    Module &module() { return module_; }
    Function *function() { return func_; }
    TypeContext &types() { return module_.types(); }

    // --- Values ---
    Value arg(unsigned i);
    Value iconst(int64_t v);
    Value iconst32(int64_t v);
    Value fconst(double v);
    Value nullPtr(const Type *pointee = nullptr);

    /** A fresh mutable variable of @p type (uninitialized). */
    Value var(const Type *type);
    /** Emit mov into an existing variable's register. */
    void assign(Value dest, Value src);

    // --- Integer arithmetic (result type follows lhs) ---
    Value add(Value a, Value b);
    Value sub(Value a, Value b);
    Value mul(Value a, Value b);
    Value sdiv(Value a, Value b);
    Value udiv(Value a, Value b);
    Value srem(Value a, Value b);
    Value urem(Value a, Value b);
    Value and_(Value a, Value b);
    Value or_(Value a, Value b);
    Value xor_(Value a, Value b);
    Value shl(Value a, Value b);
    Value lshr(Value a, Value b);
    Value ashr(Value a, Value b);
    Value addImm(Value a, int64_t imm);
    Value mulImm(Value a, int64_t imm);

    Value icmp(ICmpPred pred, Value a, Value b);
    Value eq(Value a, Value b) { return icmp(ICmpPred::Eq, a, b); }
    Value ne(Value a, Value b) { return icmp(ICmpPred::Ne, a, b); }
    Value slt(Value a, Value b) { return icmp(ICmpPred::Slt, a, b); }
    Value sle(Value a, Value b) { return icmp(ICmpPred::Sle, a, b); }
    Value sgt(Value a, Value b) { return icmp(ICmpPred::Sgt, a, b); }
    Value sge(Value a, Value b) { return icmp(ICmpPred::Sge, a, b); }
    Value ult(Value a, Value b) { return icmp(ICmpPred::Ult, a, b); }

    // --- Floating point ---
    Value fadd(Value a, Value b);
    Value fsub(Value a, Value b);
    Value fmul(Value a, Value b);
    Value fdiv(Value a, Value b);
    Value fneg(Value a);
    Value fcmp(FCmpPred pred, Value a, Value b);
    Value flt(Value a, Value b) { return fcmp(FCmpPred::Lt, a, b); }
    Value fgt(Value a, Value b) { return fcmp(FCmpPred::Gt, a, b); }
    Value sitofp(Value a);
    Value fptosi(Value a);

    Value sext(Value a, const Type *to);
    Value zext(Value a, const Type *to);
    Value trunc(Value a, const Type *to);
    Value select(Value cond, Value a, Value b);

    // --- Memory ---
    Value load(Value ptr);
    void store(Value value, Value ptr);
    Value stackAlloc(const Type *type, uint64_t count = 1);
    /** &ptr->field (struct field address). */
    Value fieldPtr(Value ptr, unsigned field);
    /** ptr + index (array element address; sees through array types). */
    Value elemPtr(Value ptr, Value index);
    Value elemPtr(Value ptr, int64_t index);
    /** Load ptr->field (fieldPtr + load). */
    Value loadField(Value ptr, unsigned field);
    /** Store into ptr->field. */
    void storeField(Value ptr, unsigned field, Value value);
    /** Address of a module global. */
    Value globalAddr(GlobalId id);

    // --- Calls and allocation ---
    Value call(const std::string &callee, std::vector<Value> args = {});
    Value callPtr(Value target, const Type *ret_type,
                  std::vector<Value> args = {});
    Value funcAddr(const std::string &callee);
    Value mallocTyped(const Type *type, Value count);
    Value mallocTyped(const Type *type);
    void freePtr(Value ptr);

    // --- Control flow ---
    BlockId newBlock(const std::string &name);
    void setBlock(BlockId block);
    BlockId currentBlock() const { return cur_; }
    void br(Value cond, BlockId if_true, BlockId if_false);
    void jmp(BlockId target);
    void ret(Value value);
    void retVoid();
    void trap(uint64_t code);

    /** Cast a pointer value to another pointer type (free, no instr). */
    Value ptrCast(Value ptr, const Type *pointee);
    Value opaqueCast(Value ptr);

  private:
    Instr &emit(Instr instr);
    Value newValue(const Type *type);
    const Type *pointeeOf(Value ptr, const char *what) const;

    Module &module_;
    Function *func_;
    BlockId cur_ = 0;
};

} // namespace ir
} // namespace infat

#endif // INFAT_IR_BUILDER_HH
