#include "ir/verifier.hh"

#include "ir/printer.hh"
#include "support/logging.hh"

namespace infat {
namespace ir {

namespace {

class FunctionVerifier
{
  public:
    FunctionVerifier(const Module &module, const Function &func,
                     std::vector<std::string> &problems)
        : module_(module), func_(func), problems_(problems)
    {
    }

    void
    run()
    {
        if (func_.isNative()) {
            if (func_.numBlocks() != 0)
                report("native function has blocks");
            return;
        }
        if (func_.numBlocks() == 0) {
            report("function has no blocks");
            return;
        }
        for (size_t b = 0; b < func_.numBlocks(); ++b) {
            const BasicBlock &block = func_.block(static_cast<BlockId>(b));
            if (!block.terminated()) {
                report(strfmt("block b%zu not terminated", b));
                continue;
            }
            for (size_t i = 0; i < block.instrs.size(); ++i) {
                const Instr &instr = block.instrs[i];
                if (instr.isTerminator() && i + 1 != block.instrs.size())
                    report(strfmt("terminator mid-block in b%zu", b));
                checkInstr(instr, b != 0);
            }
        }
    }

  private:
    void
    report(const std::string &what)
    {
        problems_.push_back(
            strfmt("%s: %s", func_.name().c_str(), what.c_str()));
    }

    void
    checkOperand(const Operand &operand)
    {
        switch (operand.kind) {
          case Operand::Kind::Reg:
            if (operand.payload >= func_.numRegs())
                report(strfmt("register r%llu out of range",
                              static_cast<unsigned long long>(
                                  operand.payload)));
            break;
          case Operand::Kind::Global:
            if (operand.payload >= module_.numGlobals())
                report("global id out of range");
            break;
          case Operand::Kind::FuncAddr:
            if (operand.payload >= module_.numFunctions())
                report("function id out of range");
            break;
          default:
            break;
        }
    }

    void
    checkInstr(const Instr &instr, bool not_entry)
    {
        checkOperand(instr.a);
        checkOperand(instr.b);
        checkOperand(instr.c);
        for (const Operand &arg : instr.args)
            checkOperand(arg);
        if (instr.dst != noReg && instr.dst >= func_.numRegs())
            report("dst register out of range");

        switch (instr.op) {
          case Opcode::Alloca:
            if (not_entry)
                report("alloca outside entry block");
            if (!instr.type || instr.type->isVoid())
                report("alloca without type");
            break;
          case Opcode::Load:
          case Opcode::Store:
            if (!instr.type || instr.type->isAggregate() ||
                instr.type->isVoid()) {
                report(strfmt("%s of non-scalar type",
                              toString(instr.op)));
            }
            break;
          case Opcode::GepField: {
            if (!instr.type || !instr.type->isStruct()) {
                report("gep.field without struct type");
                break;
            }
            const auto *st = static_cast<const StructType *>(instr.type);
            if (instr.imm0 >= st->numFields())
                report("gep.field index out of range");
            break;
          }
          case Opcode::GepIndex:
            if (!instr.type || instr.type->isVoid())
                report("gep.index without element type");
            break;
          case Opcode::Jmp:
            checkTarget(instr.target0);
            break;
          case Opcode::Br:
            checkTarget(instr.target0);
            checkTarget(instr.target1);
            break;
          case Opcode::Call: {
            if (instr.callee >= module_.numFunctions()) {
                report("callee id out of range");
                break;
            }
            const Function *callee = module_.function(instr.callee);
            if (!callee->isNative() &&
                instr.args.size() != callee->numParams()) {
                report(strfmt("call to %s arity mismatch",
                              callee->name().c_str()));
            }
            break;
          }
          case Opcode::MallocTyped:
          case Opcode::IfpMallocTyped:
            if (!instr.type || instr.type->isVoid())
                report("malloc without type");
            break;
          default:
            break;
        }
    }

    void
    checkTarget(BlockId target)
    {
        if (target >= func_.numBlocks())
            report(strfmt("branch target b%u out of range", target));
    }

    const Module &module_;
    const Function &func_;
    std::vector<std::string> &problems_;
};

} // namespace

std::vector<std::string>
verify(const Module &module)
{
    std::vector<std::string> problems;
    for (size_t i = 0; i < module.numFunctions(); ++i) {
        const Function *func = module.function(static_cast<FuncId>(i));
        FunctionVerifier(module, *func, problems).run();
    }
    return problems;
}

void
verifyOrDie(const Module &module)
{
    auto problems = verify(module);
    if (!problems.empty())
        fatal("IR verification failed: %s", problems.front().c_str());
}

} // namespace ir
} // namespace infat
