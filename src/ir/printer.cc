#include "ir/printer.hh"

#include <bit>

#include "support/logging.hh"

namespace infat {
namespace ir {

namespace {

std::string
printOperand(const Operand &operand, const Module &module)
{
    switch (operand.kind) {
      case Operand::Kind::None:
        return "_";
      case Operand::Kind::Reg:
        return strfmt("r%llu",
                      static_cast<unsigned long long>(operand.payload));
      case Operand::Kind::ImmInt:
        return strfmt("%lld", static_cast<long long>(operand.payload));
      case Operand::Kind::ImmF64:
        return strfmt("%g", std::bit_cast<double>(operand.payload));
      case Operand::Kind::Global:
        return "@" + module.global(
                         static_cast<GlobalId>(operand.payload)).name;
      case Operand::Kind::FuncAddr:
        return "&" + module.function(
                         static_cast<FuncId>(operand.payload))->name();
    }
    return "?";
}

} // namespace

std::string
print(const Instr &instr, const Module &module)
{
    std::string out;
    if (instr.dst != noReg)
        out += strfmt("r%u = ", instr.dst);
    out += toString(instr.op);
    if (instr.type)
        out += strfmt(" <%s>", instr.type->toString().c_str());
    for (const Operand *operand : {&instr.a, &instr.b, &instr.c}) {
        if (!operand->isNone())
            out += " " + printOperand(*operand, module);
    }
    switch (instr.op) {
      case Opcode::GepField:
      case Opcode::IfpIdx:
      case Opcode::IfpBnd:
      case Opcode::IfpChk:
      case Opcode::RegisterObj:
      case Opcode::Alloca:
      case Opcode::Trap:
        out += strfmt(" #%llu",
                      static_cast<unsigned long long>(instr.imm0));
        break;
      case Opcode::Jmp:
        out += strfmt(" ->b%u", instr.target0);
        break;
      case Opcode::Br:
        out += strfmt(" ->b%u, b%u", instr.target0, instr.target1);
        break;
      case Opcode::Call:
        out += " " + module.function(instr.callee)->name();
        [[fallthrough]];
      case Opcode::CallPtr:
        out += "(";
        for (size_t i = 0; i < instr.args.size(); ++i) {
            if (i)
                out += ", ";
            out += printOperand(instr.args[i], module);
        }
        out += ")";
        break;
      default:
        break;
    }
    if (instr.layout != noLayout)
        out += strfmt(" layout=%u", instr.layout);
    return out;
}

std::string
print(const Function &func, const Module &module)
{
    std::string out = strfmt("func %s(", func.name().c_str());
    for (size_t i = 0; i < func.numParams(); ++i) {
        if (i)
            out += ", ";
        out += strfmt("r%zu: %s", i,
                      func.paramType(i)->toString().c_str());
    }
    out += strfmt(") -> %s", func.retType()->toString().c_str());
    if (func.isNative())
        return out + " [native]\n";
    if (!func.isInstrumented())
        out += " [uninstrumented]";
    out += "\n";
    for (size_t b = 0; b < func.numBlocks(); ++b) {
        const BasicBlock &block = func.block(static_cast<BlockId>(b));
        out += strfmt("b%zu (%s):\n", b, block.name.c_str());
        for (const Instr &instr : block.instrs)
            out += "    " + print(instr, module) + "\n";
    }
    return out;
}

std::string
print(const Module &module)
{
    std::string out;
    for (const auto &global : module.globals()) {
        out += strfmt("global @%s: %s%s\n", global.name.c_str(),
                      global.type->toString().c_str(),
                      global.instrumented ? " [instrumented]" : "");
    }
    for (size_t i = 0; i < module.numFunctions(); ++i)
        out += print(*module.function(static_cast<FuncId>(i)), module);
    return out;
}

} // namespace ir
} // namespace infat
