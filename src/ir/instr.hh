/**
 * @file
 * IR instructions.
 *
 * The IR is a typed, non-SSA register machine: a function has an
 * unbounded set of mutable virtual registers, basic blocks, and explicit
 * control flow. This mirrors what reaches a backend after register-level
 * lowering and makes dynamic instruction counts a faithful stand-in for
 * executed machine instructions (DESIGN.md §6).
 *
 * Two instruction groups exist:
 *  - the base ISA (arithmetic, memory, control, typed allocation), which
 *    workload builders emit;
 *  - the In-Fat Pointer extension (Promote, IfpAdd, IfpIdx, IfpBnd,
 *    IfpChk, RegisterObj, ...), which only the instrumentation pass
 *    emits, mirroring the paper's Table 3.
 */

#ifndef INFAT_IR_INSTR_HH
#define INFAT_IR_INSTR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "ir/type.hh"

namespace infat {
namespace ir {

using Reg = uint32_t;
constexpr Reg noReg = ~0u;

using BlockId = uint32_t;
using FuncId = uint32_t;
using GlobalId = uint32_t;
using LayoutId = uint32_t;
constexpr LayoutId noLayout = ~0u;

enum class Opcode : uint8_t
{
    // Data movement and arithmetic
    Mov,   // dst = a (raw 64-bit move; also materializes immediates)
    Add, Sub, Mul, SDiv, UDiv, SRem, URem,
    And, Or, Xor, Shl, LShr, AShr,
    ICmp,  // dst = pred(a, b), pred in `icmp`
    FAdd, FSub, FMul, FDiv, FNeg,
    FCmp,  // dst = pred(a, b), pred in `fcmp`
    SIToFP, FPToSI,
    SExt, ZExt, Trunc, // integer width conversion; type = result type
    Select, // dst = a ? b : c

    // Memory
    Load,     // dst = *(type *)a
    Store,    // *(type *)b = a
    Alloca,   // dst = &stack slot (type x imm0); entry block only
    GepField, // dst = &((type *)a)->field[imm0]
    GepIndex, // dst = (type *)a + b

    // Control flow
    Jmp,  // goto target0
    Br,   // if (a) goto target0 else goto target1
    Call, // dst = callee(args); callee = func field
    CallPtr, // dst = (*a)(args); a holds a function index value
    Ret,  // return a (or nothing)
    Trap, // workload-level assertion failure (imm0 = code)

    // Typed heap allocation (pre-instrumentation form)
    MallocTyped, // dst = malloc(a x sizeof(type))
    FreePtr,     // free(a)

    // --- In-Fat Pointer extension (inserted by instrumentation) ---
    Promote, // dst IFPR <- bounds retrieval on pointer a
    IfpAdd,  // dst = a + b, with tag update and bounds poison update
    IfpIdx,  // dst = a with subobject index imm0
    IfpBnd,  // set bounds of pointer a to [a, a + imm0)
    IfpChk,  // explicit access-size check of a against its bounds
    RegisterObj,   // dst = tagged ptr; register object at a, size imm0,
                   // layout `layout`
    DeregisterObj, // clean up metadata for tagged pointer a
    IfpMallocTyped, // dst = runtime alloc (a x sizeof(type)), layout set
    IfpFree,        // runtime free of tagged pointer a
};

const char *toString(Opcode op);

enum class ICmpPred : uint8_t
{
    Eq, Ne, Slt, Sle, Sgt, Sge, Ult, Ule, Ugt, Uge,
};

enum class FCmpPred : uint8_t
{
    Eq, Ne, Lt, Le, Gt, Ge,
};

struct Operand
{
    enum class Kind : uint8_t
    {
        None,
        Reg,
        ImmInt,
        ImmF64,
        Global,   // address of module global (payload = GlobalId)
        FuncAddr, // function index as a value (payload = FuncId)
    };

    Kind kind = Kind::None;
    uint64_t payload = 0; // reg id, raw immediate bits, or global id

    Operand() = default;

    static Operand
    reg(Reg r)
    {
        return {Kind::Reg, r};
    }
    static Operand
    immInt(uint64_t v)
    {
        return {Kind::ImmInt, v};
    }
    static Operand immF64(double v);
    static Operand
    global(GlobalId g)
    {
        return {Kind::Global, g};
    }
    static Operand
    funcAddr(FuncId f)
    {
        return {Kind::FuncAddr, f};
    }

    bool isNone() const { return kind == Kind::None; }
    bool isReg() const { return kind == Kind::Reg; }

  private:
    Operand(Kind k, uint64_t p) : kind(k), payload(p) {}
};

struct Instr
{
    Opcode op = Opcode::Mov;
    /** Result / pointee / element / allocated type, per opcode. */
    const Type *type = nullptr;
    Reg dst = noReg;
    Operand a, b, c;
    uint64_t imm0 = 0;
    uint64_t imm1 = 0;
    ICmpPred icmp = ICmpPred::Eq;
    FCmpPred fcmp = FCmpPred::Eq;
    BlockId target0 = 0;
    BlockId target1 = 0;
    FuncId callee = 0;
    LayoutId layout = noLayout;
    std::vector<Operand> args;

    bool isTerminator() const;
    bool isIfpOp() const;
    /**
     * Whether executing this instruction writes `dst` (and its paired
     * bounds register, where the opcode touches bounds at all). Calls
     * with dst == noReg discard their result and write nothing. The
     * predecoder uses this to invalidate cached check facts.
     */
    bool writesDst() const;
};

} // namespace ir
} // namespace infat

#endif // INFAT_IR_INSTR_HH
