/**
 * @file
 * Differential gate for tiered execution (vm/tier.hh): every workload,
 * in both an uninstrumented and an instrumented configuration, must
 * produce bit-identical simulated results (checksum, instruction and
 * cycle counts, and the full stat snapshot) under every host execution
 * tier:
 *
 *   superblock  switch-dispatched superblock interpreter (PR 4)
 *   threaded    tier 1: direct-threaded (computed-goto) dispatch
 *   jit         tier 2: x86-64 template JIT for hot blocks, with a
 *               low promotion threshold so even short workloads
 *               promote, execute jitted code, and exercise bailouts
 *
 * The only stat groups allowed to differ are "vm.superblock" and
 * "vm.tier", which describe the host engine itself. On hosts where the
 * template JIT is unavailable (non-x86-64, or W^X mapping denied) the
 * jit tier degrades to the threaded interpreter; the comparison still
 * runs, and the end-of-run summary records why no block was promoted.
 *
 * Exits non-zero and prints every divergence when any tier disagrees
 * with the general interpreter. Registered as a ctest
 * (infat_tier_diff).
 */

#include <cstdio>
#include <string>
#include <vector>

#include "vm/jit.hh"
#include "workloads/harness.hh"
#include "workloads/workload.hh"

using namespace infat;
using namespace infat::workloads;

namespace {

int failures = 0;

void
reportMismatch(const std::string &where, const std::string &what,
               const std::string &general_val,
               const std::string &tier_val)
{
    ++failures;
    std::fprintf(stderr, "MISMATCH %s: %s general=%s tier=%s\n",
                 where.c_str(), what.c_str(), general_val.c_str(),
                 tier_val.c_str());
}

void
compareU64(const std::string &where, const std::string &what,
           uint64_t general_val, uint64_t tier_val)
{
    if (general_val != tier_val)
        reportMismatch(where, what, std::to_string(general_val),
                       std::to_string(tier_val));
}

/** Compare snapshots both ways, ignoring the host-engine groups. */
void
compareStats(const std::string &where, const StatSnapshot &general_s,
             const StatSnapshot &tier_s)
{
    for (int dir = 0; dir < 2; ++dir) {
        const StatSnapshot &a = dir == 0 ? general_s : tier_s;
        const StatSnapshot &b = dir == 0 ? tier_s : general_s;
        for (const StatSnapshot::Group &ga : a.groups) {
            if (ga.name == "vm.superblock" || ga.name == "vm.tier")
                continue;
            const StatSnapshot::Group *gb = b.findGroup(ga.name);
            if (!gb) {
                reportMismatch(where, "group " + ga.name,
                               dir == 0 ? "present" : "absent",
                               dir == 0 ? "absent" : "present");
                continue;
            }
            if (dir != 0)
                continue; // contents compared on the first pass
            for (const auto &[name, v] : ga.scalars)
                compareU64(where, ga.name + "." + name, v,
                           gb->scalars.count(name)
                               ? gb->scalars.at(name)
                               : ~0ULL);
            for (const auto &[name, v] : ga.formulas) {
                auto it = gb->formulas.find(name);
                if (it == gb->formulas.end() || it->second != v)
                    reportMismatch(where, ga.name + "." + name,
                                   std::to_string(v),
                                   it == gb->formulas.end()
                                       ? "absent"
                                       : std::to_string(it->second));
            }
            for (const auto &[name, h] : ga.histograms) {
                auto it = gb->histograms.find(name);
                if (it == gb->histograms.end()) {
                    reportMismatch(where, ga.name + "." + name,
                                   "present", "absent");
                    continue;
                }
                compareU64(where, ga.name + "." + name + ".count",
                           h.count, it->second.count);
                compareU64(where, ga.name + "." + name + ".sum", h.sum,
                           it->second.sum);
            }
            for (const auto &[name, d] : ga.distributions) {
                auto it = gb->distributions.find(name);
                if (it == gb->distributions.end()) {
                    reportMismatch(where, ga.name + "." + name,
                                   "present", "absent");
                    continue;
                }
                compareU64(where, ga.name + "." + name + ".count",
                           d.count, it->second.count);
                compareU64(where, ga.name + "." + name + ".sum", d.sum,
                           it->second.sum);
                compareU64(where, ga.name + "." + name + ".min", d.min,
                           it->second.min);
                compareU64(where, ga.name + "." + name + ".max", d.max,
                           it->second.max);
            }
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    // --require-jit: refuse to pass when the template JIT does not
    // back this host (CI's jit-smoke job on x86-64 runners; without
    // the flag, unavailable hosts still run the comparison with the
    // jit tier degraded to the threaded interpreter).
    bool require_jit = false;
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]) == "--require-jit")
            require_jit = true;
    if (require_jit && !jit::available()) {
        std::fprintf(stderr,
                     "tier_diff: --require-jit but the template JIT "
                     "is unavailable on this host (%s)\n",
                     jit::unavailableReason());
        return 1;
    }

    const Config configs[] = {Config::Baseline, Config::Subheap};
    const char *tiers[] = {"superblock", "threaded", "jit"};

    int runs = 0;
    uint64_t jit_promotions = 0;
    uint64_t jit_blocks = 0;
    uint64_t jit_bailouts = 0;
    uint64_t jit_calls_inlined = 0;
    uint64_t jit_call_rets = 0;
    for (const Workload &workload : all()) {
        for (Config config : configs) {
            EngineTuning general;
            general.superblocks = false;
            setEngineTuning(general);
            RunResult ref = runWorkload(workload, config);

            for (const char *tier : tiers) {
                std::string where = std::string(workload.name) + "/" +
                                    toString(config) + "/" + tier;
                EngineTuning tuning;
                if (!engineTuningForName(tier, tuning)) {
                    std::fprintf(stderr, "unknown tier %s\n", tier);
                    return 1;
                }
                // Low threshold: promote (and bail from) jitted code
                // even in short workloads.
                if (tuning.jit)
                    tuning.jitThreshold = 8;
                setEngineTuning(tuning);
                RunResult got = runWorkload(workload, config);

                compareU64(where, "checksum", ref.checksum,
                           got.checksum);
                compareU64(where, "instructions", ref.instructions,
                           got.instructions);
                compareU64(where, "cycles", ref.cycles, got.cycles);
                compareStats(where, ref.stats, got.stats);

                if (got.stats.scalar("vm.superblock", "functions") ==
                    0) {
                    ++failures;
                    std::fprintf(stderr,
                                 "MISMATCH %s: superblock engine was "
                                 "not active (0 functions "
                                 "predecoded)\n",
                                 where.c_str());
                }
                if (tuning.jit) {
                    jit_promotions += got.stats.scalar(
                        "vm.tier", "jit_promotions");
                    jit_blocks +=
                        got.stats.scalar("vm.tier", "jit_blocks");
                    jit_bailouts +=
                        got.stats.scalar("vm.tier", "jit_bailouts");
                    jit_calls_inlined += got.stats.scalar(
                        "vm.tier", "call_inlined");
                    jit_call_rets += got.stats.scalar(
                        "vm.tier", "call_jit_rets");
                }
                ++runs;
            }
        }
    }

    // The jit tier must have really executed jitted code somewhere in
    // the matrix (otherwise this gate silently degrades to comparing
    // the threaded interpreter against itself). Only enforceable when
    // the template JIT backs this host.
    if (jit::available()) {
        if (jit_promotions == 0 || jit_blocks == 0) {
            ++failures;
            std::fprintf(stderr,
                         "MISMATCH: template JIT is available but "
                         "promoted %llu block(s) and ran %llu — the "
                         "jit tier was never exercised\n",
                         (unsigned long long)jit_promotions,
                         (unsigned long long)jit_blocks);
        }
        // The suite is call-heavy (recursive treeadd, bisort, ...):
        // with the emitted guest calling convention live, jitted call
        // sites and emitted returns must both have fired. A zero here
        // means every call still bails to the interpreter — the
        // inlining regressed even though results stayed identical.
        if (jit_calls_inlined == 0 || jit_call_rets == 0) {
            ++failures;
            std::fprintf(stderr,
                         "MISMATCH: template JIT is available but "
                         "inlined %llu guest call(s) and emitted %llu "
                         "jit return(s) — the call convention was "
                         "never exercised\n",
                         (unsigned long long)jit_calls_inlined,
                         (unsigned long long)jit_call_rets);
        }
    } else {
        std::fprintf(stderr,
                     "note: template JIT unavailable on this host "
                     "(%s); jit tier ran as threaded interpreter\n",
                     jit::unavailableReason());
    }

    if (failures != 0) {
        std::fprintf(stderr,
                     "tier_diff: %d divergence(s) across %d runs\n",
                     failures, runs);
        return 1;
    }
    std::printf("tier_diff: %d runs bit-identical (all workloads x "
                "{baseline, subheap} x {superblock, threaded, jit}); "
                "jit promoted %llu block(s), ran %llu, bailed %llu, "
                "inlined %llu call(s), emitted %llu ret(s)\n",
                runs, (unsigned long long)jit_promotions,
                (unsigned long long)jit_blocks,
                (unsigned long long)jit_bailouts,
                (unsigned long long)jit_calls_inlined,
                (unsigned long long)jit_call_rets);
    return 0;
}
